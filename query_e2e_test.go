// End-to-end query-plane verification: sealed rollup windows persisted
// through the winstore must answer /query/services over real HTTP with
// exactly the per-service totals the ground-truth counting sink observed —
// and a process "restart" (fresh store opened on the same directory, second
// HTTP server) must return the byte-identical response from disk alone.
// Runs under -race in CI.
package repro

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/queryapi"
	"repro/internal/rollup"
	"repro/internal/stream"
	"repro/internal/winstore"
	"repro/internal/workload"
)

// queryWire mirrors the /query/* response shape for decoding.
type queryWire struct {
	Dimension string `json:"dimension"`
	From      int64  `json:"from"`
	To        int64  `json:"to"`
	StepSecs  int64  `json:"step_secs"`
	Buckets   []struct {
		Start  int64 `json:"start"`
		Series []struct {
			Key     string `json:"key"`
			Bytes   uint64 `json:"bytes"`
			Packets uint64 `json:"packets"`
			Flows   uint64 `json:"flows"`
		} `json:"series"`
	} `json:"buckets"`
}

// serveQuery runs a queryapi server over store on a fresh loopback listener
// and returns its base URL plus a shutdown func that waits for Serve.
func serveQuery(t *testing.T, store *winstore.Store) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := queryapi.New(store, queryapi.WithListener(ln))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	url := "http://" + srv.Addr()
	return url, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("query server: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("query server did not shut down")
		}
	}
}

// httpGet fetches url and returns the body, requiring a 200.
func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// TestQueryPlaneEndToEnd drives generated flows through the deployment
// wiring — workload generator → NetFlow v9 over a real UDP socket → 8
// correlation lanes → MultiSink fanning out to the counting sink and a
// rollup sink with short windows whose seals persist into a winstore — then
// asserts /query/services over HTTP reproduces the counting sink's
// per-service byte and flow totals exactly, and that a restart (fresh
// winstore.Open on the same directory behind a second server) answers the
// same query byte-identically from disk.
func TestQueryPlaneEndToEnd(t *testing.T) {
	nfConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if uc, ok := nfConn.(*net.UDPConn); ok {
		uc.SetReadBuffer(4 << 20)
	}

	u := workload.NewUniverse(workload.DefaultConfig())
	table, err := u.BGPTable()
	if err != nil {
		t.Fatal(err)
	}
	table.Freeze()

	dir := t.TempDir()
	const partDur = 15 * time.Second
	store, err := winstore.Open(winstore.Config{Dir: dir, PartDur: partDur})
	if err != nil {
		t.Fatal(err)
	}

	counting := core.NewCountingSink()
	// Short 10s windows over a ~20s flow span: several seals, two
	// store partitions.
	engine := rollup.New(10*time.Second, 8)
	rsink := rollup.NewSink(engine,
		rollup.WithTable(table),
		rollup.WithBlocklist(u.Blocklist),
		rollup.WithOnSeal(func(ws []rollup.Window) {
			if err := store.Add(ws); err != nil {
				t.Errorf("store.Add: %v", err)
			}
		}))

	cfg := core.DefaultConfig()
	cfg.Lanes = 8
	c := core.New(cfg,
		core.WithSink(core.MultiSink{counting, rsink}),
		core.WithSources(stream.NewFlowUDPSource(nfConn)),
	)
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- c.Run(ctx) }()

	g := workload.NewGenerator(u, 99)
	base := time.Date(2022, 5, 25, 12, 0, 0, 0, time.UTC)
	dns := g.DNSBatch(base, 4000)
	if got := c.OfferDNSBatch(dns); got != len(dns) {
		t.Fatalf("DNS batch: offered %d, accepted %d", len(dns), got)
	}
	deadline := time.After(30 * time.Second)
	for {
		if st := c.Stats(); st.DNSRecords+st.DNSInvalid == uint64(len(dns)) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("fills stuck: %+v", c.Stats())
		case <-time.After(time.Millisecond):
		}
	}

	udp, err := net.Dial("udp", nfConn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	nfSink := stream.NewFlowUDPSink(udp, 7, 10)
	const wantFlows = 40_000
	const maxLag = 1024
	sent := 0
	waitProcessed := func(target uint64) {
		deadline := time.After(60 * time.Second)
		for c.Stats().Flows < target {
			select {
			case <-deadline:
				t.Fatalf("flows stuck at %d of %d: %+v", c.Stats().Flows, sent, c.Stats())
			case <-time.After(200 * time.Microsecond):
			}
		}
	}
	for batch := 0; sent < wantFlows; batch++ {
		ts := base.Add(time.Duration(batch) * time.Second)
		for _, fr := range g.FlowBatch(ts, 2000) {
			if !fr.SrcIP.Is4() || !fr.DstIP.Is4() {
				continue // the v9 standard template here is IPv4
			}
			if err := nfSink.Send(fr); err != nil {
				t.Fatal(err)
			}
			sent++
			if sent%256 == 0 {
				if err := nfSink.Flush(); err != nil {
					t.Fatal(err)
				}
				if sent > maxLag {
					waitProcessed(uint64(sent - maxLag))
				}
			}
		}
	}
	if err := nfSink.Flush(); err != nil {
		t.Fatal(err)
	}
	waitProcessed(uint64(sent))

	udp.Close()
	cancel() // drain: rsink.Close seals every window → OnSeal → store.Add
	if err := <-runDone; err != nil {
		t.Fatalf("Run = %v", err)
	}
	if st := c.Stats(); st.Written != uint64(sent) {
		t.Fatalf("written %d != sent %d", st.Written, sent)
	}

	sstats := store.Stats()
	if sstats.Partitions < 2 || sstats.Windows == 0 {
		t.Fatalf("store did not partition the run: %+v", sstats)
	}
	if sstats.WriteErrors != 0 {
		t.Fatalf("store write errors: %+v", sstats)
	}

	// Query the live store over real HTTP: defaults cover the whole span in
	// one bucket; no top cutoff, so every service appears.
	const q = "/query/services"
	url1, stop1 := serveQuery(t, store)
	body1 := httpGet(t, url1+q)
	stop1()

	var resp queryWire
	if err := json.Unmarshal(body1, &resp); err != nil {
		t.Fatalf("decode %s: %v", q, err)
	}
	if resp.Dimension != "services" || len(resp.Buckets) == 0 {
		t.Fatalf("unexpected response shape: %+v", resp)
	}
	gotBytes := make(map[string]uint64)
	gotFlows := make(map[string]uint64)
	var totalFlows uint64
	for _, b := range resp.Buckets {
		for _, s := range b.Series {
			key := s.Key
			if key == "NULL" {
				key = "" // the query plane spells uncorrelated traffic NULL
			}
			gotBytes[key] += s.Bytes
			gotFlows[key] += s.Flows
			totalFlows += s.Flows
		}
	}
	if want := counting.Bytes(); !reflect.DeepEqual(gotBytes, want) {
		t.Fatalf("per-service bytes diverge: query %d services, counting %d", len(gotBytes), len(want))
	}
	if want := counting.Flows(); !reflect.DeepEqual(gotFlows, want) {
		t.Fatalf("per-service flows diverge: query %d services, counting %d", len(gotFlows), len(want))
	}
	if totalFlows != uint64(sent) {
		t.Fatalf("query total flows = %d, want %d", totalFlows, sent)
	}

	// Restart: everything the query plane served must live on disk. A fresh
	// store over the same directory behind a second server answers the same
	// query byte-for-byte.
	if err := store.Close(); err != nil {
		t.Fatalf("store.Close: %v", err)
	}
	store2, err := winstore.Open(winstore.Config{Dir: dir, PartDur: partDur})
	if err != nil {
		t.Fatal(err)
	}
	if st := store2.Stats(); st.LoadErrors != 0 {
		t.Fatalf("reopen load errors: %+v", st)
	}
	url2, stop2 := serveQuery(t, store2)
	body2 := httpGet(t, url2+q)
	stop2()
	if string(body1) != string(body2) {
		t.Fatalf("restart answer diverges:\nlive: %s\ndisk: %s", body1, body2)
	}
	if err := store2.Close(); err != nil {
		t.Fatalf("store2.Close: %v", err)
	}
}
