// Chaos end-to-end tests: the pipeline under load while failpoints kill
// the sink, panic a correlation lane, and starve the disk mid-checkpoint.
// The process must survive every injected fault, the queue invariant
// Offered == Enqueued + Dropped + Sampled must hold against the test's own
// offer counts, and the attributed totals must reconcile exactly with the
// retry wrapper's spill/drop accounting — chaos may delay records, never
// lose them silently.
package repro

import (
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/stream"
	"repro/internal/workload"
)

// chaosConfig sizes a pipeline small enough that injected stalls back
// pressure into the queues, with the adaptive sampler armed so overload
// degrades through the accounted channels.
func chaosConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Lanes = 2
	cfg.FillLanes = 2
	cfg.FillQueueCap = 512
	cfg.LookQueueCap = 512
	cfg.WriteQueueCap = 1024
	cfg.WriteBatchSize = 32
	cfg.WriteFlushInterval = 5 * time.Millisecond
	cfg.SampleLowWater = 0.5
	cfg.SampleHighWater = 0.9
	return cfg
}

// faultHits returns the named failpoint's lifetime fire count.
func faultHits(t *testing.T, name string) uint64 {
	t.Helper()
	for _, st := range fault.List() {
		if st.Name == name {
			return st.Hits
		}
	}
	t.Fatalf("failpoint %s not registered", name)
	return 0
}

// TestChaosPipelineE2E runs the PR-gating chaos scenario:
//
//   - core.sink.write armed with a bounded error budget kills the sink for
//     the first few batches — the RetrySink must spill them, replay them in
//     order once the outage ends, and deliver every record exactly once;
//   - core.look.record armed with a panic budget poisons individual flow
//     records — each drops its own output slot, counted in Poisoned, while
//     the lane worker survives;
//   - snapshot.write/sync/rename faults starve the disk mid-checkpoint —
//     every failed checkpoint must leave the previous good generation
//     byte-identical on disk.
//
// Afterwards the stage queues, the pipeline's Written counter, the retry
// wrapper's ledger, and the inner sink's totals must all agree.
func TestChaosPipelineE2E(t *testing.T) {
	defer fault.DisableAll()
	const lookPanics = 5
	if err := fault.Enable("core.look.record", "5*panic(chaos lane)"); err != nil {
		t.Fatal(err)
	}
	const sinkOutage = 4
	if err := fault.Enable("core.sink.write", "4*error(chaos outage)"); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	spillPath := filepath.Join(dir, "spill.jsonl")
	inner := core.NewCountingSink()
	rs, err := core.NewRetrySink(inner, core.RetryConfig{
		MaxRetries: 1,
		Backoff:    time.Millisecond,
		SpillPath:  spillPath,
	})
	if err != nil {
		t.Fatal(err)
	}

	cfg := chaosConfig()
	c := core.New(cfg, core.WithSink(rs))
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- c.Run(ctx) }()

	// Load while the faults are armed: enough flow batches that the write
	// stage sees the whole outage arc (fail → retry → spill ×3 → replay).
	u := workload.NewUniverse(workload.DefaultConfig())
	g := workload.NewGenerator(u, 42)
	ts := time.Date(2022, 5, 25, 12, 0, 0, 0, time.UTC)
	var offeredDNS, offeredFlows, acceptedDNS, acceptedFlows uint64
	for b := 0; b < 50; b++ {
		ts = ts.Add(100 * time.Millisecond)
		dns := g.DNSBatch(ts, 100)
		acceptedDNS += uint64(c.OfferDNSBatch(dns))
		offeredDNS += uint64(len(dns))
		flows := g.FlowBatch(ts, 200)
		acceptedFlows += uint64(c.OfferFlowBatch(flows))
		offeredFlows += uint64(len(flows))
		time.Sleep(time.Millisecond) // let workers interleave with the faults
	}

	// Disk starvation mid-run: a good checkpoint, then three fault-driven
	// failures (torn write, failed fsync, failed rename), each of which must
	// leave the good generation untouched, then recovery.
	snapPath := filepath.Join(dir, "store.snapshot")
	if err := c.Checkpoint(snapPath); err != nil {
		t.Fatalf("good checkpoint: %v", err)
	}
	good, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range []struct{ name, spec string }{
		{"snapshot.write", "1*shortwrite(64)"},
		{"snapshot.sync", "1*error(disk full)"},
		{"snapshot.rename", "1*error(disk full)"},
	} {
		if err := fault.Enable(fp.name, fp.spec); err != nil {
			t.Fatal(err)
		}
		if err := c.Checkpoint(snapPath); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("%s: Checkpoint err = %v, want injected", fp.name, err)
		}
		after, err := os.ReadFile(snapPath)
		if err != nil {
			t.Fatalf("%s: good generation gone: %v", fp.name, err)
		}
		if string(after) != string(good) {
			t.Fatalf("%s: failed checkpoint corrupted the previous generation (%d -> %d bytes)",
				fp.name, len(good), len(after))
		}
	}
	if err := c.Checkpoint(snapPath); err != nil {
		t.Fatalf("checkpoint after disk recovery: %v", err)
	}

	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("pipeline died under chaos: %v", err)
	}

	// Queue invariant against the test's own offer counts.
	st := c.Stats()
	if got := st.FillQueue.Enqueued + st.FillQueue.Dropped + st.FillQueue.Sampled; got != offeredDNS {
		t.Fatalf("fill queue unaccounted loss: %d accounted, %d offered", got, offeredDNS)
	}
	if got := st.LookQueue.Enqueued + st.LookQueue.Dropped + st.LookQueue.Sampled; got != offeredFlows {
		t.Fatalf("look queue unaccounted loss: %d accounted, %d offered", got, offeredFlows)
	}
	if offeredFlows-acceptedFlows != st.LookQueue.Dropped {
		t.Fatalf("producer-side flow drops %d != look Dropped %d", offeredFlows-acceptedFlows, st.LookQueue.Dropped)
	}
	if offeredDNS-acceptedDNS != st.FillQueue.Dropped {
		t.Fatalf("producer-side dns drops %d != fill Dropped %d", offeredDNS-acceptedDNS, st.FillQueue.Dropped)
	}

	// Panic containment: exactly the armed budget of records poisoned, each
	// missing from the write stage but present in the supervision counters.
	if st.Poisoned != lookPanics {
		t.Fatalf("Poisoned = %d, want %d", st.Poisoned, lookPanics)
	}
	if st.Panics < lookPanics {
		t.Fatalf("Panics = %d, want >= %d", st.Panics, lookPanics)
	}
	var lookSup *core.SupervisedStatus
	for i := range st.Supervised {
		if st.Supervised[i].Name == "look" {
			lookSup = &st.Supervised[i]
		}
	}
	if lookSup == nil || lookSup.Panics != lookPanics {
		t.Fatalf("look supervision = %+v, want %d panics", lookSup, lookPanics)
	}
	if got := faultHits(t, "core.look.record"); got != lookPanics {
		t.Fatalf("core.look.record hits = %d, want %d", got, lookPanics)
	}
	if st.WriteQueue.Offered() != st.LookQueue.Dequeued-st.Poisoned {
		t.Fatalf("write offered %d != look dequeued %d - poisoned %d",
			st.WriteQueue.Offered(), st.LookQueue.Dequeued, st.Poisoned)
	}
	if st.Written != st.WriteQueue.Dequeued {
		t.Fatalf("written %d != write queue dequeued %d", st.Written, st.WriteQueue.Dequeued)
	}

	// Sink-outage reconciliation: every record handed to the retry wrapper
	// is delivered, still queued, or counted dropped — and the outage
	// actually exercised the spill/replay machinery.
	rstats := rs.Stats()
	if st.Written != rstats.Delivered+uint64(rstats.SpillDepth)+rstats.Dropped {
		t.Fatalf("retry ledger does not reconcile: written %d, delivered %d + depth %d + dropped %d",
			st.Written, rstats.Delivered, rstats.SpillDepth, rstats.Dropped)
	}
	if rstats.Spilled == 0 || rstats.Replayed == 0 || rstats.Retries == 0 {
		t.Fatalf("sink outage left no trace: %+v", rstats)
	}
	if rstats.Dropped != 0 || rstats.DroppedBatches != 0 {
		t.Fatalf("bounded outage dropped records: %+v", rstats)
	}
	if rstats.SpillDepth != 0 {
		t.Fatalf("backlog not fully replayed after outage: depth %d", rstats.SpillDepth)
	}
	if got := faultHits(t, "core.sink.write"); got != sinkOutage {
		t.Fatalf("core.sink.write hits = %d, want %d", got, sinkOutage)
	}

	// The inner sink saw exactly the delivered records, once each.
	var total uint64
	for _, n := range inner.Flows() {
		total += n
	}
	if total != rstats.Delivered {
		t.Fatalf("inner sink saw %d records, wrapper delivered %d", total, rstats.Delivered)
	}
	// Run closed the sink chain on drain; a fully replayed outage leaves an
	// empty spill file behind.
	if fi, err := os.Stat(spillPath); err == nil && fi.Size() != 0 {
		t.Fatalf("spill file not drained: %d bytes", fi.Size())
	}
	t.Logf("chaos: offered %d+%d, written %d, spilled %d, replayed %d, poisoned %d",
		offeredDNS, offeredFlows, st.Written, rstats.Spilled, rstats.Replayed, st.Poisoned)
}

// TestChaosSoak is the nightly kill-a-sink soak: sustained generator
// traffic over a real loopback socket while a chaos goroutine repeatedly
// arms a sink outage and a lane-panic budget. After minutes of flapping
// the accounting must still balance to the record. Runs only when
// FLOWDNS_SOAK is set to a duration; PR CI skips it.
func TestChaosSoak(t *testing.T) {
	soak := os.Getenv("FLOWDNS_SOAK")
	if soak == "" {
		t.Skip("set FLOWDNS_SOAK=60s to run the chaos soak")
	}
	dur, err := time.ParseDuration(soak)
	if err != nil {
		t.Fatalf("bad FLOWDNS_SOAK %q: %v", soak, err)
	}
	defer fault.DisableAll()

	nfConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inner := core.NewCountingSink()
	rs, err := core.NewRetrySink(inner, core.RetryConfig{
		MaxRetries: 1,
		Backoff:    time.Millisecond,
		SpillPath:  filepath.Join(t.TempDir(), "spill.jsonl"),
	})
	if err != nil {
		t.Fatal(err)
	}
	src := stream.NewFlowUDPSource(nfConn)
	c := core.New(chaosConfig(), core.WithSink(rs), core.WithSources(src))
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- c.Run(ctx) }()

	// The chaos clock: every quarter second the sink dies for a bounded
	// burst of writes and a handful of flow records turn poisonous.
	chaosDone := make(chan struct{})
	chaosStop := make(chan struct{})
	go func() {
		defer close(chaosDone)
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-chaosStop:
				return
			case <-tick.C:
				if err := fault.Enable("core.sink.write", "8*error(soak outage)"); err != nil {
					t.Error(err)
					return
				}
				if err := fault.Enable("core.look.record", "3*panic(soak poison)"); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	udp, err := net.Dial("udp", nfConn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	nfSink := stream.NewFlowUDPSink(udp, 7, 20)
	u := workload.NewUniverse(workload.DefaultConfig())
	g := workload.NewGenerator(u, 7)
	ts := time.Date(2022, 5, 25, 12, 0, 0, 0, time.UTC)
	stopAt := time.Now().Add(dur)
	var offeredDNS uint64
	for time.Now().Before(stopAt) {
		ts = ts.Add(50 * time.Millisecond)
		dns := g.DNSBatch(ts, 200)
		c.OfferDNSBatch(dns)
		offeredDNS += uint64(len(dns))
		for _, fr := range g.FlowBatch(ts, 400) {
			if !fr.SrcIP.Is4() || !fr.DstIP.Is4() {
				continue
			}
			if err := nfSink.Send(fr); err != nil {
				t.Fatal(err)
			}
		}
		if err := nfSink.Flush(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Stop the chaos before the drain so the final replay runs against a
	// healthy sink — the nightly question is whether the books balance
	// after flapping, not whether an eternally dead endpoint loses data.
	close(chaosStop)
	<-chaosDone
	fault.DisableAll()
	udp.Close()
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("pipeline died during soak: %v", err)
	}
	srcStats := src.Stats()

	st := c.Stats()
	rstats := rs.Stats()
	t.Logf("chaos soak: %v, source %+v, written %d, retry %+v, poisoned %d panics %d",
		dur, srcStats, st.Written, rstats, st.Poisoned, st.Panics)
	if rstats.Spilled == 0 || st.Poisoned == 0 {
		t.Fatalf("soak chaos never bit: retry %+v poisoned %d", rstats, st.Poisoned)
	}
	if got := st.FillQueue.Enqueued + st.FillQueue.Dropped + st.FillQueue.Sampled; got != offeredDNS {
		t.Fatalf("fill queue unaccounted loss: %d accounted, %d offered", got, offeredDNS)
	}
	if st.LookQueue.Offered() != srcStats.Records {
		t.Fatalf("look queues account %d records, source offered %d", st.LookQueue.Offered(), srcStats.Records)
	}
	if srcStats.Dropped != st.LookQueue.Dropped {
		t.Fatalf("source dropped %d != look queue Dropped %d", srcStats.Dropped, st.LookQueue.Dropped)
	}
	if st.WriteQueue.Offered() != st.LookQueue.Dequeued-st.Poisoned {
		t.Fatalf("write offered %d != look dequeued %d - poisoned %d",
			st.WriteQueue.Offered(), st.LookQueue.Dequeued, st.Poisoned)
	}
	if st.Written != st.WriteQueue.Dequeued {
		t.Fatalf("written %d != write queue dequeued %d", st.Written, st.WriteQueue.Dequeued)
	}
	if st.Written != rstats.Delivered+uint64(rstats.SpillDepth)+rstats.Dropped {
		t.Fatalf("retry ledger does not reconcile: written %d, delivered %d + depth %d + dropped %d",
			st.Written, rstats.Delivered, rstats.SpillDepth, rstats.Dropped)
	}
	var total uint64
	for _, n := range inner.Flows() {
		total += n
	}
	if total != rstats.Delivered {
		t.Fatalf("inner sink saw %d records, wrapper delivered %d", total, rstats.Delivered)
	}
}
