// Cross-module integration tests: generator → wire codecs → loopback
// sockets → stream sources → correlator → sink, plus variant behaviour
// assertions that span packages.
package repro

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/netflow"
	"repro/internal/stream"
	"repro/internal/workload"
)

// TestLoopbackPipeline drives the full deployment wiring over real sockets
// through the v2 API: DNS responses framed over TCP into a listener
// source, NetFlow v9 over UDP, one correlator run under a cancellable
// context.
func TestLoopbackPipeline(t *testing.T) {
	dnsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nfConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	sink := core.NewCountingSink()
	// The full sharded topology: DNS TCP stream → 8 fill lanes (parallel
	// batched FillUp) → 8 correlation lanes → sink.
	cfg := core.DefaultConfig()
	cfg.Lanes = 8
	cfg.FillLanes = 8
	cfg.FillUpWorkers = 8
	c := core.New(cfg,
		core.WithSink(sink),
		core.WithSources(stream.NewDNSListener(dnsLn), stream.NewFlowUDPSource(nfConn)),
	)
	if c.Lanes() != 8 || c.FillLanes() != 8 {
		t.Fatalf("lanes = %d, fill lanes = %d", c.Lanes(), c.FillLanes())
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- c.Run(ctx) }()

	// Emit a deterministic session set: every service announced, then a
	// known flow per service.
	base := time.Now()
	dnsConn, err := net.Dial("tcp", dnsLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	dnsSink := stream.NewDNSTCPSink(dnsConn)
	const services = 50
	for i := 0; i < services; i++ {
		name := fmt.Sprintf("svc%02d.example", i)
		edge := fmt.Sprintf("edge%02d.cdn.example", i)
		addr := netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)})
		err := dnsSink.Send(&dnswire.Message{
			Header:    dnswire.Header{ID: uint16(i), Response: true},
			Questions: []dnswire.Question{{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN}},
			Answers: []dnswire.Record{
				{Name: name, Type: dnswire.TypeCNAME, Class: dnswire.ClassIN, TTL: 300, Target: edge},
				{Name: edge, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60, Addr: addr},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	dnsConn.Close()

	// Wait for fills to land.
	deadline := time.After(5 * time.Second)
	for {
		if st := c.Stats(); st.DNSRecords == 2*services {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("fills stuck: %+v", c.Stats())
		case <-time.After(time.Millisecond):
		}
	}

	udp, err := net.Dial("udp", nfConn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	nfSink := stream.NewFlowUDPSink(udp, 9, 10)
	for i := 0; i < services; i++ {
		err := nfSink.Send(netflow.FlowRecord{
			Timestamp: base.Add(time.Second),
			SrcIP:     netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)}),
			DstIP:     netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}),
			SrcPort:   443, DstPort: 50000, Proto: netflow.ProtoTCP,
			Packets: 10, Bytes: 1000,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := nfSink.Flush(); err != nil {
		t.Fatal(err)
	}

	deadline = time.After(5 * time.Second)
	for {
		if st := c.Stats(); st.Flows == services {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("flows stuck: %+v", c.Stats())
		case <-time.After(time.Millisecond):
		}
	}

	udp.Close()
	cancel() // graceful drain: sources close, queues drain into the sink
	if err := <-runDone; err != nil {
		t.Fatalf("Run = %v", err)
	}

	st := c.Stats()
	if st.CorrelationRate() != 1.0 {
		t.Fatalf("correlation rate = %v, want 1.0 (every flow announced)", st.CorrelationRate())
	}
	if st.LossRate() != 0 {
		t.Fatalf("loss = %v", st.LossRate())
	}
	counts := sink.Bytes()
	for i := 0; i < services; i++ {
		name := fmt.Sprintf("svc%02d.example", i)
		if counts[name] != 1000 {
			t.Fatalf("bytes[%s] = %d", name, counts[name])
		}
	}
}

// TestShardedLanesEndToEnd drives the sharded correlator end to end with
// the synthetic workload generator: DNS announcements through the ingest
// façade, flows over a real UDP socket in NetFlow v9, eight correlation
// lanes, and a counting sink. It asserts the correlated fraction and — the
// lane-sharding invariant — exactly-once delivery: every flow that entered
// the pipeline reaches the sink exactly once, no duplicates from lane
// fan-out and no drops between lanes and the write stage.
func TestShardedLanesEndToEnd(t *testing.T) {
	nfConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Lanes = 8
	sink := core.NewCountingSink()
	c := core.New(cfg,
		core.WithSink(sink),
		core.WithSources(stream.NewFlowUDPSource(nfConn)),
	)
	if c.Lanes() != 8 {
		t.Fatalf("lanes = %d", c.Lanes())
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- c.Run(ctx) }()

	// Announce the service universe, then stream its flows over UDP.
	u := workload.NewUniverse(workload.DefaultConfig())
	g := workload.NewGenerator(u, 42)
	base := time.Date(2022, 5, 25, 12, 0, 0, 0, time.UTC)
	dns := g.DNSBatch(base, 1200)
	if got := c.OfferDNSBatch(dns); got != len(dns) {
		t.Fatalf("DNS batch: offered %d, accepted %d", len(dns), got)
	}
	deadline := time.After(10 * time.Second)
	for {
		if st := c.Stats(); st.DNSRecords+st.DNSInvalid == uint64(len(dns)) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("fills stuck: %+v", c.Stats())
		case <-time.After(time.Millisecond):
		}
	}

	udp, err := net.Dial("udp", nfConn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	nfSink := stream.NewFlowUDPSink(udp, 7, 10)
	const flows = 2000
	sent := 0
	for _, fr := range g.FlowBatch(base.Add(time.Second), flows) {
		if !fr.SrcIP.Is4() || !fr.DstIP.Is4() {
			continue // v9 standard template here is IPv4
		}
		if err := nfSink.Send(fr); err != nil {
			t.Fatal(err)
		}
		sent++
		if sent%200 == 0 {
			if err := nfSink.Flush(); err != nil {
				t.Fatal(err)
			}
			time.Sleep(time.Millisecond) // let the reader keep pace with loopback bursts
		}
	}
	if err := nfSink.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline = time.After(10 * time.Second)
	for {
		if st := c.Stats(); st.Flows == uint64(sent) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("flows stuck at %d of %d: %+v", c.Stats().Flows, sent, c.Stats())
		case <-time.After(time.Millisecond):
		}
	}

	udp.Close()
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("Run = %v", err)
	}

	st := c.Stats()
	// Exactly-once: everything the lanes accepted reached the sink, once.
	if st.LookQueue.Dropped != 0 || st.WriteQueue.Dropped != 0 {
		t.Fatalf("internal drops: look=%d write=%d", st.LookQueue.Dropped, st.WriteQueue.Dropped)
	}
	if st.Written != st.Flows {
		t.Fatalf("written %d != processed flows %d", st.Written, st.Flows)
	}
	total := uint64(0)
	for _, n := range sink.Flows() {
		total += n
	}
	if total != st.Flows {
		t.Fatalf("sink saw %d flows, pipeline processed %d", total, st.Flows)
	}
	// Correlated fraction: the generator announces most flow sources via
	// DNS first, so well over half the flows must resolve.
	if rate := st.CorrelationRateFlows(); rate < 0.5 {
		t.Fatalf("correlated fraction = %.3f, want >= 0.5 (stats %+v)", rate, st)
	}
	if st.Lanes != 8 {
		t.Fatalf("stats lanes = %d", st.Lanes)
	}
}

// TestVariantBehaviourCrossModule replays one synthetic day through every
// variant and asserts the paper's cross-variant ordering end to end.
func TestVariantBehaviourCrossModule(t *testing.T) {
	u := workload.NewUniverse(workload.DefaultConfig())
	run := func(v core.Variant) core.Stats {
		c := core.New(core.ConfigForVariant(v))
		g := workload.NewGenerator(u, 99)
		base := time.Date(2022, 5, 25, 0, 0, 0, 0, time.UTC)
		for h := 0; h < 24; h++ {
			ts := base.Add(time.Duration(h) * time.Hour)
			for _, rec := range g.DNSBatch(ts, 300) {
				c.IngestDNS(rec)
			}
			for _, fr := range g.FlowBatch(ts, 3000) {
				c.CorrelateFlow(fr)
			}
		}
		return c.Stats()
	}
	main := run(core.VariantMain)
	noRot := run(core.VariantNoRotation)
	noClear := run(core.VariantNoClearUp)

	if noRot.CorrelationRate() >= main.CorrelationRate() {
		t.Fatalf("NoRotation corr %.3f !< Main %.3f",
			noRot.CorrelationRate(), main.CorrelationRate())
	}
	if noClear.CorrelationRate() < main.CorrelationRate()-0.01 {
		t.Fatalf("NoClearUp corr %.3f below Main %.3f",
			noClear.CorrelationRate(), main.CorrelationRate())
	}
	if noClear.IPNameEntries <= main.IPNameEntries {
		t.Fatalf("NoClearUp state %d !> Main %d", noClear.IPNameEntries, main.IPNameEntries)
	}
	if main.IPNameRotations == 0 || noClear.IPNameRotations != 0 {
		t.Fatalf("rotation counters wrong: main=%d noClear=%d",
			main.IPNameRotations, noClear.IPNameRotations)
	}
}

// TestWireFidelity round-trips generator output through both wire codecs
// and checks nothing is lost or altered on the way to the correlator.
func TestWireFidelity(t *testing.T) {
	u := workload.NewUniverse(workload.DefaultConfig())
	g := workload.NewGenerator(u, 5)
	ts := time.Unix(1653475200, 0)

	// DNS path: flatten -> message -> wire -> decode -> flatten.
	recs := g.DNSBatch(ts, 50)
	reassembled := 0
	for _, rec := range recs {
		msg := &dnswire.Message{Header: dnswire.Header{Response: true}}
		r := dnswire.Record{Name: rec.Query, Type: rec.RType, Class: dnswire.ClassIN, TTL: rec.TTL}
		if rec.RType == dnswire.TypeCNAME {
			r.Target = rec.Answer
		} else {
			if !rec.Addr.IsValid() {
				t.Fatalf("generator emitted A/AAAA record without typed address: %+v", rec)
			}
			r.Addr = rec.Addr
		}
		msg.Answers = []dnswire.Record{r}
		wire, err := dnswire.Encode(msg)
		if err != nil {
			t.Fatalf("encode %+v: %v", rec, err)
		}
		got, err := dnswire.Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		flat := stream.FlattenResponse(got, ts)
		if len(flat) != 1 {
			t.Fatalf("flatten = %d records", len(flat))
		}
		if flat[0].Query != rec.Query || flat[0].Answer != rec.Answer || flat[0].TTL != rec.TTL {
			t.Fatalf("wire round trip altered record: %+v -> %+v", rec, flat[0])
		}
		reassembled++
	}
	if reassembled == 0 {
		t.Fatal("no records exercised")
	}

	// NetFlow path: v9 template encode/decode for IPv4 flows.
	flows := g.FlowBatch(ts, 200)
	cache := netflow.NewTemplateCache()
	for _, fr := range flows {
		if !fr.SrcIP.Is4() || !fr.DstIP.Is4() {
			continue
		}
		pkt, err := netflow.EncodeV9(netflow.V9Header{SourceID: 1}, netflow.StandardTemplate(),
			[]netflow.FlowRecord{fr})
		if err != nil {
			t.Fatal(err)
		}
		got, err := netflow.DecodeV9(pkt, cache)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Records) != 1 {
			t.Fatalf("records = %d", len(got.Records))
		}
		g := got.Records[0]
		if g.SrcIP != fr.SrcIP || g.Bytes != fr.Bytes || g.DstPort != fr.DstPort {
			t.Fatalf("v9 round trip altered flow: %+v -> %+v", fr, g)
		}
	}
}
