package repro

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/netflow"
	"repro/internal/stream"
	"repro/internal/workload"
)

// TestKillAndResumePipeline is the warm-restart acceptance test: run a
// pipeline, feed it DNS answers, shut it down (graceful drain writes the
// final checkpoint), then boot a second pipeline from the checkpoint and
// feed it ONLY flows. Every flow correlates — the second process never saw
// a DNS record, so each attribution is knowledge that survived the restart
// through the snapshot. Run under -race in CI.
func TestKillAndResumePipeline(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "store.snapshot")
	const services = 40
	base := time.Now()

	// --- Incarnation 1: DNS only, then die. ---
	{
		dnsLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Lanes = 4
		cfg.FillLanes = 4
		cfg.SnapshotPath = snapPath
		cfg.SnapshotEvery = 50 * time.Millisecond // exercise the periodic checkpointer too
		c := core.New(cfg, core.WithSources(stream.NewDNSListener(dnsLn)))
		ctx, cancel := context.WithCancel(context.Background())
		runDone := make(chan error, 1)
		go func() { runDone <- c.Run(ctx) }()

		dnsConn, err := net.Dial("tcp", dnsLn.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		dnsSink := stream.NewDNSTCPSink(dnsConn)
		for i := 0; i < services; i++ {
			name := fmt.Sprintf("svc%02d.example", i)
			edge := fmt.Sprintf("edge%02d.cdn.example", i)
			addr := netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)})
			err := dnsSink.Send(&dnswire.Message{
				Header:    dnswire.Header{ID: uint16(i), Response: true},
				Questions: []dnswire.Question{{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN}},
				Answers: []dnswire.Record{
					{Name: name, Type: dnswire.TypeCNAME, Class: dnswire.ClassIN, TTL: 300, Target: edge},
					{Name: edge, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 3600, Addr: addr},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		dnsConn.Close()

		deadline := time.After(5 * time.Second)
		for {
			if st := c.Stats(); st.DNSRecords == 2*services {
				break
			}
			select {
			case <-deadline:
				t.Fatalf("fills stuck: %+v", c.Stats())
			case <-time.After(time.Millisecond):
			}
		}
		// Let at least one periodic checkpoint fire before the kill, so the
		// ticker path is exercised, not only the final drain checkpoint.
		time.Sleep(120 * time.Millisecond)
		cancel()
		if err := <-runDone; err != nil {
			t.Fatalf("incarnation 1 Run = %v", err)
		}
		if st := c.Stats(); st.Checkpoints < 2 { // >=1 periodic + the final one
			t.Fatalf("checkpoints = %d, want >= 2 (stats %+v)", st.Checkpoints, st)
		}
		if _, err := os.Stat(snapPath); err != nil {
			t.Fatalf("no checkpoint written: %v", err)
		}
	}

	// --- Incarnation 2: flows only; attribution must come from the snapshot. ---
	{
		nfConn, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Lanes = 8 // different layout on purpose: restore re-places by hash
		cfg.SnapshotPath = snapPath
		sink := core.NewCountingSink()
		c := core.New(cfg, core.WithSink(sink), core.WithSources(stream.NewFlowUDPSource(nfConn)))
		rst, rerr := c.RestoreResult()
		if rerr != nil {
			t.Fatalf("restore: %v", rerr)
		}
		if rst.Entries == 0 {
			t.Fatalf("restore stats = %+v, want warm state", rst)
		}
		ctx, cancel := context.WithCancel(context.Background())
		runDone := make(chan error, 1)
		go func() { runDone <- c.Run(ctx) }()

		udp, err := net.Dial("udp", nfConn.LocalAddr().String())
		if err != nil {
			t.Fatal(err)
		}
		nfSink := stream.NewFlowUDPSink(udp, 9, 10)
		for i := 0; i < services; i++ {
			err := nfSink.Send(netflow.FlowRecord{
				Timestamp: base.Add(time.Second),
				SrcIP:     netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)}),
				DstIP:     netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}),
				SrcPort:   443, DstPort: 50000, Proto: netflow.ProtoTCP,
				Packets: 10, Bytes: 1000,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := nfSink.Flush(); err != nil {
			t.Fatal(err)
		}
		deadline := time.After(5 * time.Second)
		for {
			if st := c.Stats(); st.Flows == services {
				break
			}
			select {
			case <-deadline:
				t.Fatalf("flows stuck: %+v", c.Stats())
			case <-time.After(time.Millisecond):
			}
		}
		udp.Close()
		cancel()
		if err := <-runDone; err != nil {
			t.Fatalf("incarnation 2 Run = %v", err)
		}

		st := c.Stats()
		if st.DNSRecords != 0 {
			t.Fatalf("incarnation 2 saw %d DNS records; the test is broken", st.DNSRecords)
		}
		if st.CorrelationRate() != 1.0 {
			t.Fatalf("correlation rate after restart = %v, want 1.0 (restored state missing)", st.CorrelationRate())
		}
		counts := sink.Bytes()
		for i := 0; i < services; i++ {
			name := fmt.Sprintf("svc%02d.example", i)
			if counts[name] != 1000 {
				t.Fatalf("bytes[%s] = %d, want 1000 (CNAME walk through restored NAME-CNAME store)", name, counts[name])
			}
		}
	}
}

// TestLoopbackSoak is the nightly soak: sustained generator traffic over
// real loopback sockets with aggressive checkpoint cadence, under -race.
// It only runs when FLOWDNS_SOAK is set to a duration ("60s" in the nightly
// workflow); PR CI skips it.
func TestLoopbackSoak(t *testing.T) {
	soak := os.Getenv("FLOWDNS_SOAK")
	if soak == "" {
		t.Skip("set FLOWDNS_SOAK=60s to run the soak")
	}
	dur, err := time.ParseDuration(soak)
	if err != nil {
		t.Fatalf("bad FLOWDNS_SOAK %q: %v", soak, err)
	}

	nfConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(t.TempDir(), "store.snapshot")
	cfg := core.DefaultConfig()
	cfg.Lanes = 8
	cfg.FillLanes = 8
	cfg.SnapshotPath = snapPath
	cfg.SnapshotEvery = 250 * time.Millisecond // stress checkpoint-vs-fill concurrency
	sink := core.NewCountingSink()
	c := core.New(cfg, core.WithSink(sink), core.WithSources(stream.NewFlowUDPSource(nfConn)))
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- c.Run(ctx) }()

	udp, err := net.Dial("udp", nfConn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	nfSink := stream.NewFlowUDPSink(udp, 7, 10)

	u := workload.NewUniverse(workload.DefaultConfig())
	g := workload.NewGenerator(u, 99)
	ts := time.Date(2022, 5, 25, 12, 0, 0, 0, time.UTC)
	stopAt := time.Now().Add(dur)
	var sent uint64
	for time.Now().Before(stopAt) {
		ts = ts.Add(250 * time.Millisecond)
		dns := g.DNSBatch(ts, 200)
		c.OfferDNSBatch(dns)
		for _, fr := range g.FlowBatch(ts, 400) {
			if !fr.SrcIP.Is4() || !fr.DstIP.Is4() {
				continue
			}
			if err := nfSink.Send(fr); err != nil {
				t.Fatal(err)
			}
			sent++
		}
		if err := nfSink.Flush(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond) // let the UDP reader keep pace
	}
	udp.Close()
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("Run = %v", err)
	}

	st := c.Stats()
	t.Logf("soak: %v, sent %d flows, stats %+v", dur, sent, st)
	if st.Flows == 0 || st.Correlated == 0 {
		t.Fatalf("soak processed nothing: %+v", st)
	}
	if st.CheckpointErrors != 0 {
		t.Fatalf("checkpoint errors during soak: %d", st.CheckpointErrors)
	}
	if st.Checkpoints == 0 {
		t.Fatal("no checkpoints written during soak")
	}
	// The checkpoint left behind must be a valid warm-boot source.
	cfg2 := core.DefaultConfig()
	cfg2.SnapshotPath = snapPath
	c2 := core.New(cfg2)
	if rst, err := c2.RestoreResult(); err != nil || rst.Entries == 0 {
		t.Fatalf("post-soak restore: %+v, %v", rst, err)
	}
}
