// Package snapshot implements the FlowDNS warm-restart checkpoint format:
// a versioned, length-prefixed binary codec for the correlation store's
// contents. A cold-started correlator silently degrades correlation rates
// for hours while its DNS cache re-warms; a checkpoint written on the
// clear-up cadence (and once more on graceful drain) lets the next boot
// resume from the accumulated answer state instead.
//
// # Format
//
// A snapshot is a file header, any number of sections, and an end marker:
//
//	header : "FDSN" | version u16 | flags u16 | created i64 | crc u32
//	section: 'S' | family u8 | gen u8 | flags u8 | split u32 | count u32 |
//	         payloadLen u32 | crc u32 | payload
//	end    : 'E' | sections u32 | crc u32
//
// All integers are little-endian. Every region carries a CRC32 (IEEE) over
// its preceding bytes — the file header over its first 16 bytes, a section
// over its header-sans-marker plus payload, the end marker over its first
// 5 bytes — so any single corrupted byte is detected, and a missing end
// marker distinguishes a truncated file from a complete one.
//
// A section holds entries of one (family, generation, split, key space)
// cell of the store. Large cells are split across several sections (the
// writer rotates at sectionMaxBytes), which both bounds the reader's
// allocation per section and gives a restoring correlator natural units to
// fan out across its fill lanes. A section payload is count entries:
//
//	entry: keyLen uvarint | key | valueLen uvarint | value | exp i64
//
// exp is the entry's absolute expiry in UnixNano (0 = never expires),
// exactly as the store's typed cmap entries carry it, so restore can drop
// already-expired entries without re-deriving TTLs.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/fault"
)

// Version is the format version this package writes. Readers reject files
// with a greater version; older versions remain readable as the format
// evolves.
const Version = 1

// Magic identifies a snapshot file.
const Magic = "FDSN"

const (
	headerLen     = 20 // magic(4) version(2) flags(2) created(8) crc(4)
	sectionHdrLen = 20 // 'S'(1) family(1) gen(1) flags(1) split(4) count(4) payloadLen(4) crc(4)
	endLen        = 9  // 'E'(1) sections(4) crc(4)

	sectionMarker = 'S'
	endMarker     = 'E'

	// sectionMaxBytes bounds one section's payload: the writer rotates to a
	// fresh section when the current one exceeds it, and the reader rejects
	// claimed lengths above it before allocating — a fuzzed or corrupted
	// length field can never force a huge allocation.
	sectionMaxBytes = 1 << 22

	// entryMinBytes is the smallest possible encoded entry (empty key,
	// empty value, fixed expiry); the reader cross-checks a section's count
	// against its payload length with it before decoding.
	entryMinBytes = 1 + 1 + 8
)

// SectionFlagBinaryKeys marks a section whose keys belong to the store's
// 16-byte binary key space rather than the string key space. The two are
// separate namespaces in the map (a 16-byte string key is not a binary
// key), so restore must re-insert into the space the entries came from.
const SectionFlagBinaryKeys = 1 << 0

// ErrCorrupt reports a structurally invalid or checksum-failing snapshot.
// Errors from Reader and Section wrap it; restore callers match with
// errors.Is and fall back to a cold start.
var ErrCorrupt = errors.New("snapshot: corrupt")

// ErrVersion reports a snapshot written by a newer format version.
var ErrVersion = errors.New("snapshot: unsupported version")

// Section identifies one run of entries: which map family (the producer's
// own numbering — core uses 0 for IP-NAME, 1 for NAME-CNAME), which
// generation (0 active, 1 inactive, 2 long), which split it was written
// from, and whether the keys are binary (SectionFlagBinaryKeys). One store
// cell may span several Sections.
type Section struct {
	Family uint8
	Gen    uint8
	Flags  uint8
	Split  uint32
	Count  uint32

	payload []byte
}

// BinaryKeys reports whether the section's keys belong to the binary key
// space.
func (s *Section) BinaryKeys() bool { return s.Flags&SectionFlagBinaryKeys != 0 }

// ForEach decodes the section's entries in order. key and value alias the
// section's payload buffer and must not be retained past fn's return
// without a copy. fn's error aborts the walk and is returned verbatim.
func (s *Section) ForEach(fn func(key, value []byte, exp int64) error) error {
	p := s.payload
	for i := uint32(0); i < s.Count; i++ {
		key, rest, err := readBlob(p)
		if err != nil {
			return fmt.Errorf("%w: section entry %d key: %v", ErrCorrupt, i, err)
		}
		value, rest, err := readBlob(rest)
		if err != nil {
			return fmt.Errorf("%w: section entry %d value: %v", ErrCorrupt, i, err)
		}
		if len(rest) < 8 {
			return fmt.Errorf("%w: section entry %d: short expiry", ErrCorrupt, i)
		}
		exp := int64(binary.LittleEndian.Uint64(rest))
		p = rest[8:]
		if err := fn(key, value, exp); err != nil {
			return err
		}
	}
	if len(p) != 0 {
		return fmt.Errorf("%w: %d trailing payload bytes after %d entries", ErrCorrupt, len(p), s.Count)
	}
	return nil
}

// readBlob decodes one uvarint-length-prefixed byte string.
func readBlob(p []byte) (blob, rest []byte, err error) {
	n, used := binary.Uvarint(p)
	if used <= 0 || n > uint64(len(p)-used) {
		return nil, nil, errors.New("bad length prefix")
	}
	return p[used : used+int(n)], p[used+int(n):], nil
}

// Writer streams a snapshot: a file header up front, then sections opened
// with Begin and filled with Entry, then an end marker from Close. Entries
// accumulate in a reused payload buffer; a section that outgrows
// sectionMaxBytes is flushed and transparently reopened with the same
// identity, so callers never worry about section sizing.
type Writer struct {
	w        *bufio.Writer
	cur      Section
	open     bool
	payload  []byte
	sections uint32
	scratch  [sectionHdrLen]byte
}

// NewWriter writes the file header to w and returns a Writer. created
// stamps the header (UnixNano; the caller supplies it so deterministic
// writers stay deterministic).
func NewWriter(w io.Writer, created int64) (*Writer, error) {
	sw := &Writer{w: bufio.NewWriterSize(w, 1<<16)}
	var hdr [headerLen]byte
	copy(hdr[:4], Magic)
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(created))
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(hdr[:16]))
	if _, err := sw.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return sw, nil
}

// Begin opens a section. Any open section is flushed first.
func (w *Writer) Begin(family, gen, flags uint8, split uint32) error {
	if err := w.flushSection(); err != nil {
		return err
	}
	w.cur = Section{Family: family, Gen: gen, Flags: flags, Split: split}
	w.open = true
	return nil
}

// Entry appends one entry to the open section, rotating to a fresh section
// of the same identity when the payload is full. The key and value bytes
// are copied immediately.
func (w *Writer) Entry(key []byte, value string, exp int64) error {
	if !w.open {
		return errors.New("snapshot: Entry without Begin")
	}
	var pfx [binary.MaxVarintLen64]byte
	w.payload = append(w.payload, pfx[:binary.PutUvarint(pfx[:], uint64(len(key)))]...)
	w.payload = append(w.payload, key...)
	w.payload = append(w.payload, pfx[:binary.PutUvarint(pfx[:], uint64(len(value)))]...)
	w.payload = append(w.payload, value...)
	w.payload = binary.LittleEndian.AppendUint64(w.payload, uint64(exp))
	w.cur.Count++
	if len(w.payload) >= sectionMaxBytes {
		id := w.cur
		if err := w.flushSection(); err != nil {
			return err
		}
		w.cur = Section{Family: id.Family, Gen: id.Gen, Flags: id.Flags, Split: id.Split}
		w.open = true
	}
	return nil
}

// flushSection writes the open section, if any. Empty sections are elided.
func (w *Writer) flushSection() error {
	if !w.open {
		return nil
	}
	w.open = false
	if w.cur.Count == 0 {
		return nil
	}
	hdr := w.scratch[:]
	hdr[0] = sectionMarker
	hdr[1] = w.cur.Family
	hdr[2] = w.cur.Gen
	hdr[3] = w.cur.Flags
	binary.LittleEndian.PutUint32(hdr[4:8], w.cur.Split)
	binary.LittleEndian.PutUint32(hdr[8:12], w.cur.Count)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(w.payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[1:16])
	crc.Write(w.payload)
	binary.LittleEndian.PutUint32(hdr[16:20], crc.Sum32())
	if _, err := w.w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.w.Write(w.payload); err != nil {
		return err
	}
	w.payload = w.payload[:0]
	w.sections++
	return nil
}

// Close flushes the open section, writes the end marker, and flushes the
// underlying buffered writer. The Writer is unusable afterwards.
func (w *Writer) Close() error {
	if err := w.flushSection(); err != nil {
		return err
	}
	var end [endLen]byte
	end[0] = endMarker
	binary.LittleEndian.PutUint32(end[1:5], w.sections)
	binary.LittleEndian.PutUint32(end[5:9], crc32.ChecksumIEEE(end[:5]))
	if _, err := w.w.Write(end[:]); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader validates and iterates a snapshot stream.
type Reader struct {
	r        *bufio.Reader
	created  int64
	version  uint16
	sections uint32
	done     bool
}

// NewReader validates the file header of r.
func NewReader(r io.Reader) (*Reader, error) {
	sr := &Reader{r: bufio.NewReaderSize(r, 1<<16)}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if string(hdr[:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:4])
	}
	if got, want := binary.LittleEndian.Uint32(hdr[16:20]), crc32.ChecksumIEEE(hdr[:16]); got != want {
		return nil, fmt.Errorf("%w: header crc %08x != %08x", ErrCorrupt, got, want)
	}
	sr.version = binary.LittleEndian.Uint16(hdr[4:6])
	if sr.version > Version {
		return nil, fmt.Errorf("%w: file version %d > %d", ErrVersion, sr.version, Version)
	}
	sr.created = int64(binary.LittleEndian.Uint64(hdr[8:16]))
	return sr, nil
}

// Created returns the header's creation stamp (UnixNano).
func (r *Reader) Created() int64 { return r.created }

// Next returns the next section, or io.EOF after a valid end marker. Any
// other error means the file is corrupt or truncated; sections already
// returned were CRC-validated and are safe to have applied.
func (r *Reader) Next() (*Section, error) {
	if r.done {
		return nil, io.EOF
	}
	marker, err := r.r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: missing end marker: %v", ErrCorrupt, err)
	}
	switch marker {
	case endMarker:
		var end [endLen]byte
		end[0] = endMarker
		if _, err := io.ReadFull(r.r, end[1:]); err != nil {
			return nil, fmt.Errorf("%w: short end marker: %v", ErrCorrupt, err)
		}
		if got, want := binary.LittleEndian.Uint32(end[5:9]), crc32.ChecksumIEEE(end[:5]); got != want {
			return nil, fmt.Errorf("%w: end crc %08x != %08x", ErrCorrupt, got, want)
		}
		if got := binary.LittleEndian.Uint32(end[1:5]); got != r.sections {
			return nil, fmt.Errorf("%w: end marker counts %d sections, read %d", ErrCorrupt, got, r.sections)
		}
		r.done = true
		return nil, io.EOF
	case sectionMarker:
	default:
		return nil, fmt.Errorf("%w: unknown marker %#02x", ErrCorrupt, marker)
	}
	var hdr [sectionHdrLen]byte
	hdr[0] = sectionMarker
	if _, err := io.ReadFull(r.r, hdr[1:]); err != nil {
		return nil, fmt.Errorf("%w: short section header: %v", ErrCorrupt, err)
	}
	s := &Section{
		Family: hdr[1],
		Gen:    hdr[2],
		Flags:  hdr[3],
		Split:  binary.LittleEndian.Uint32(hdr[4:8]),
		Count:  binary.LittleEndian.Uint32(hdr[8:12]),
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[12:16])
	// Sanity before allocating: the writer never produces an oversized or
	// under-filled section, so claimed lengths beyond these bounds are
	// corruption (or a fuzzer), not data.
	if payloadLen > 2*sectionMaxBytes {
		return nil, fmt.Errorf("%w: section payload %d exceeds limit", ErrCorrupt, payloadLen)
	}
	if uint64(s.Count)*entryMinBytes > uint64(payloadLen) {
		return nil, fmt.Errorf("%w: %d entries cannot fit %d payload bytes", ErrCorrupt, s.Count, payloadLen)
	}
	s.payload = make([]byte, payloadLen)
	if _, err := io.ReadFull(r.r, s.payload); err != nil {
		return nil, fmt.Errorf("%w: short section payload: %v", ErrCorrupt, err)
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[1:16])
	crc.Write(s.payload)
	if got, want := binary.LittleEndian.Uint32(hdr[16:20]), crc.Sum32(); got != want {
		return nil, fmt.Errorf("%w: section crc %08x != %08x", ErrCorrupt, got, want)
	}
	r.sections++
	return s, nil
}

// Failpoints on the checkpoint write path, mirroring the winstore segment
// points: "write" covers the encode (and supports shortwrite for torn
// files), "sync" the fsync, "rename" the final publish. Every injected
// fault lands on the temp file before the rename, so the crash-safety
// sweeps can prove the previous snapshot generation is never lost.
var (
	fpSnapWrite  = fault.New("snapshot.write")
	fpSnapSync   = fault.New("snapshot.sync")
	fpSnapRename = fault.New("snapshot.rename")
)

// syncDir fsyncs a directory so the renamed snapshot's directory entry is
// durable, not just its data blocks.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFile writes a snapshot atomically: fill writes sections into a
// temporary file in path's directory, which is fsynced and renamed over
// path only after Close succeeds, then the directory is fsynced so the
// rename itself survives a power cut. A crash mid-checkpoint leaves the
// previous snapshot intact; readers never observe a partial file.
func WriteFile(path string, created int64, fill func(*Writer) error) (err error) {
	if err = fpSnapWrite.Inject(); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w, err := NewWriter(fpSnapWrite.Writer(f), created)
	if err != nil {
		return err
	}
	if err = fill(w); err != nil {
		return err
	}
	if err = w.Close(); err != nil {
		return err
	}
	if err = fpSnapSync.Inject(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = fpSnapRename.Inject(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(dir)
}
