package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// testEntry is one (section identity, key, value, exp) tuple used to build
// and verify snapshots.
type testEntry struct {
	key   string
	value string
	exp   int64
}

type testSection struct {
	family, gen, flags uint8
	split              uint32
	entries            []testEntry
}

// encode writes the sections through the Writer and returns the file bytes.
func encode(t *testing.T, created int64, secs []testSection) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, created)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range secs {
		if err := w.Begin(s.family, s.gen, s.flags, s.split); err != nil {
			t.Fatal(err)
		}
		for _, e := range s.entries {
			if err := w.Entry([]byte(e.key), e.value, e.exp); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decode reads everything back, flattening rotated sections by identity.
func decode(t *testing.T, data []byte) (int64, map[string][]testEntry) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]testEntry)
	for {
		sec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("%d/%d/%d/%d", sec.Family, sec.Gen, sec.Flags, sec.Split)
		err = sec.ForEach(func(key, value []byte, exp int64) error {
			out[id] = append(out[id], testEntry{key: string(key), value: string(value), exp: exp})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return r.Created(), out
}

func TestRoundTrip(t *testing.T) {
	secs := []testSection{
		{family: 0, gen: 0, flags: SectionFlagBinaryKeys, split: 3, entries: []testEntry{
			{key: "0123456789abcdef", value: "svc.example", exp: 12345},
			{key: "fedcba9876543210", value: "", exp: 0},
		}},
		{family: 1, gen: 2, split: 0, entries: []testEntry{
			{key: "edge.cdn.example", value: "svc.example", exp: -7},
			{key: "", value: "v", exp: 1 << 60},
		}},
		{family: 0, gen: 1, split: 9, entries: nil}, // empty: elided entirely
	}
	data := encode(t, 42, secs)
	created, got := decode(t, data)
	if created != 42 {
		t.Fatalf("created = %d, want 42", created)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d section identities, want 2 (empty elided): %v", len(got), got)
	}
	for _, want := range secs[:2] {
		id := fmt.Sprintf("%d/%d/%d/%d", want.family, want.gen, want.flags, want.split)
		if len(got[id]) != len(want.entries) {
			t.Fatalf("section %s: %d entries, want %d", id, len(got[id]), len(want.entries))
		}
		for i, e := range want.entries {
			if got[id][i] != e {
				t.Fatalf("section %s entry %d = %+v, want %+v", id, i, got[id][i], e)
			}
		}
	}
}

// TestSectionRotation checks that a cell larger than sectionMaxBytes is
// split across several sections with the same identity and that every entry
// survives.
func TestSectionRotation(t *testing.T) {
	value := string(bytes.Repeat([]byte{'x'}, 1<<16))
	const n = 80 // 80 * 64KiB = 5 MiB > sectionMaxBytes (4 MiB)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(0, 0, 0, 7); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Entry([]byte(fmt.Sprintf("key-%03d", i)), value, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sections, entries := 0, 0
	for {
		sec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if sec.Family != 0 || sec.Gen != 0 || sec.Split != 7 {
			t.Fatalf("rotated section changed identity: %+v", sec)
		}
		sections++
		err = sec.ForEach(func(key, value []byte, exp int64) error {
			if exp != int64(entries) {
				return fmt.Errorf("entry order broken: exp %d at position %d", exp, entries)
			}
			entries++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if sections < 2 {
		t.Fatalf("expected rotation to produce >1 section, got %d", sections)
	}
	if entries != n {
		t.Fatalf("decoded %d entries, want %d", entries, n)
	}
}

// readAll fully consumes a snapshot byte stream, returning the first error.
func readAll(data []byte) error {
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	for {
		sec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := sec.ForEach(func(key, value []byte, exp int64) error { return nil }); err != nil {
			return err
		}
	}
}

// TestTruncationDetected cuts a valid snapshot at every possible length and
// requires the reader to report corruption (never succeed, never panic) —
// the crash-mid-write detection the atomic rename backs up.
func TestTruncationDetected(t *testing.T) {
	data := encode(t, 9, []testSection{
		{family: 0, gen: 0, flags: SectionFlagBinaryKeys, split: 1, entries: []testEntry{
			{key: "0123456789abcdef", value: "a.example", exp: 99},
		}},
		{family: 1, gen: 0, split: 0, entries: []testEntry{
			{key: "cname.example", value: "svc.example", exp: 0},
		}},
	})
	if err := readAll(data); err != nil {
		t.Fatalf("intact file: %v", err)
	}
	for cut := 0; cut < len(data); cut++ {
		if err := readAll(data[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d/%d bytes: err = %v, want ErrCorrupt", cut, len(data), err)
		}
	}
}

// TestCorruptionDetected flips one byte at a time through the whole file
// and requires every flip to surface as ErrCorrupt or ErrVersion, or —
// only for flips inside a section payload or its CRC — to be caught by the
// section checksum. No flip may both decode fully and go undetected.
func TestCorruptionDetected(t *testing.T) {
	data := encode(t, 9, []testSection{
		{family: 0, gen: 0, flags: SectionFlagBinaryKeys, split: 1, entries: []testEntry{
			{key: "0123456789abcdef", value: "a.example", exp: 99},
		}},
	})
	for i := range data {
		mut := bytes.Clone(data)
		mut[i] ^= 0x40
		err := readAll(mut)
		if err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("flip at byte %d: err = %v, want ErrCorrupt or ErrVersion", i, err)
		}
	}
}

func TestVersionGate(t *testing.T) {
	data := encode(t, 1, nil)
	binary.LittleEndian.PutUint16(data[4:6], Version+1)
	// Recompute the header CRC so only the version is "wrong".
	fixHeaderCRC(data)
	_, err := NewReader(bytes.NewReader(data))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: err = %v, want ErrVersion", err)
	}
}

func fixHeaderCRC(data []byte) {
	binary.LittleEndian.PutUint32(data[16:20], crc32.ChecksumIEEE(data[:16]))
}

// TestOversizedClaimsRejected makes sure corrupted length/count fields are
// rejected before any large allocation.
func TestOversizedClaimsRejected(t *testing.T) {
	data := encode(t, 1, []testSection{
		{family: 0, gen: 0, split: 0, entries: []testEntry{{key: "k", value: "v", exp: 1}}},
	})
	// The section header starts right after the 20-byte file header;
	// payloadLen is at offset 12, count at offset 8 within it.
	sec := data[headerLen:]
	binary.LittleEndian.PutUint32(sec[12:16], 1<<30)
	err := readAll(data)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized payloadLen: err = %v, want ErrCorrupt", err)
	}
}

func TestEntryWithoutBegin(t *testing.T) {
	w, err := NewWriter(io.Discard, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Entry([]byte("k"), "v", 0); err == nil {
		t.Fatal("Entry before Begin succeeded")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.snapshot")

	// First write succeeds.
	err := WriteFile(path, 1, func(w *Writer) error {
		if err := w.Begin(0, 0, 0, 0); err != nil {
			return err
		}
		return w.Entry([]byte("k"), "v1", 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Second write fails mid-fill: the first file must survive untouched
	// and no temp litter may remain.
	boom := errors.New("boom")
	err = WriteFile(path, 2, func(w *Writer) error {
		if err := w.Begin(0, 0, 0, 0); err != nil {
			return err
		}
		if err := w.Entry([]byte("k"), "v2", 0); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("fill error not propagated: %v", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, after) {
		t.Fatal("failed checkpoint damaged the previous snapshot")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp file left behind: %v", ents)
	}
}

// TestRandomRoundTrip drives the codec with generated section layouts and
// entry shapes (empty keys, long values, negative and boundary expiries).
func TestRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		var secs []testSection
		for s := rng.Intn(6); s >= 0; s-- {
			sec := testSection{
				family: uint8(rng.Intn(2)),
				gen:    uint8(rng.Intn(3)),
				flags:  uint8(rng.Intn(2)), // SectionFlagBinaryKeys or none
				split:  uint32(rng.Intn(16)),
			}
			for e := rng.Intn(50); e >= 0; e-- {
				key := make([]byte, rng.Intn(40))
				val := make([]byte, rng.Intn(200))
				rng.Read(key)
				rng.Read(val)
				sec.entries = append(sec.entries, testEntry{
					key: string(key), value: string(val), exp: rng.Int63() - rng.Int63(),
				})
			}
			secs = append(secs, sec)
		}
		data := encode(t, int64(trial), secs)
		if err := readAll(data); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, got := decode(t, data)
		want := make(map[string][]testEntry)
		for _, s := range secs {
			if len(s.entries) == 0 {
				continue
			}
			id := fmt.Sprintf("%d/%d/%d/%d", s.family, s.gen, s.flags, s.split)
			want[id] = append(want[id], s.entries...)
		}
		for id, entries := range want {
			if len(got[id]) != len(entries) {
				t.Fatalf("trial %d section %s: %d entries, want %d", trial, id, len(got[id]), len(entries))
			}
			for i := range entries {
				if got[id][i] != entries[i] {
					t.Fatalf("trial %d section %s entry %d mismatch", trial, id, i)
				}
			}
		}
	}
}
