package snapshot

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/fault"
)

// writeSnap checkpoints secs to path through WriteFile.
func writeSnap(path string, created int64, secs []testSection) error {
	return WriteFile(path, created, func(w *Writer) error {
		for _, s := range secs {
			if err := w.Begin(s.family, s.gen, s.flags, s.split); err != nil {
				return err
			}
			for _, e := range s.entries {
				if err := w.Entry([]byte(e.key), e.value, e.exp); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// readSnap loads a snapshot file through the real reader.
func readSnap(t *testing.T, path string) (int64, map[string][]testEntry) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("previous checkpoint unreadable: %v", err)
	}
	return decode(t, data)
}

// TestCheckpointFaultSweep drives ENOSPC, torn-write, and failed-rename
// faults through every stage of WriteFile and proves a fault mid-checkpoint
// never loses the previous good generation: the old file still decodes
// identically, no temp litter remains, and the next checkpoint lands.
func TestCheckpointFaultSweep(t *testing.T) {
	genA := []testSection{{family: 1, gen: 0, entries: []testEntry{
		{key: "203.0.113.7", value: "cdn.example", exp: 100},
		{key: "203.0.113.8", value: "video.example", exp: 120},
	}}}
	genB := []testSection{{family: 1, gen: 1, entries: []testEntry{
		{key: "203.0.113.9", value: "mail.example", exp: 140},
	}}}
	sweeps := []struct{ point, spec string }{
		{"snapshot.write", "1*error(no space left on device)"},
		{"snapshot.write", "1*shortwrite(32)"}, // torn mid-checkpoint
		{"snapshot.write", "1*shortwrite(0)"},  // torn before the header
		{"snapshot.sync", "1*error(input/output error)"},
		{"snapshot.rename", "1*error(no space left on device)"},
	}
	for _, sw := range sweeps {
		t.Run(sw.point+"/"+sw.spec, func(t *testing.T) {
			defer fault.DisableAll()
			dir := t.TempDir()
			path := filepath.Join(dir, "flowdns.snap")
			if err := writeSnap(path, 111, genA); err != nil {
				t.Fatalf("good checkpoint: %v", err)
			}
			wantCreated, wantEntries := readSnap(t, path)

			if err := fault.Enable(sw.point, sw.spec); err != nil {
				t.Fatal(err)
			}
			err := writeSnap(path, 222, genB)
			if err == nil {
				t.Fatal("faulted checkpoint reported success")
			}
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("error lost injection provenance: %v", err)
			}
			gotCreated, gotEntries := readSnap(t, path)
			if gotCreated != wantCreated || !reflect.DeepEqual(gotEntries, wantEntries) {
				t.Fatal("previous checkpoint changed under a failed write")
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 1 {
				t.Fatalf("temp litter after fault: %d entries in dir", len(entries))
			}

			// The fault budget is spent: the next checkpoint succeeds and
			// replaces the generation.
			if err := writeSnap(path, 222, genB); err != nil {
				t.Fatalf("post-fault checkpoint: %v", err)
			}
			if created, _ := readSnap(t, path); created != 222 {
				t.Fatalf("recovered checkpoint Created = %d, want 222", created)
			}
		})
	}
}
