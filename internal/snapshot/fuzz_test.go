package snapshot

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzSnapshotDecode drives the reader with arbitrary bytes. The decoder
// must never panic and never over-allocate for a claimed section size; on
// any structural damage it must fail with ErrCorrupt or ErrVersion, and a
// stream it does accept must re-encode to an equivalent section sequence
// (decode → encode → decode fixpoint).
func FuzzSnapshotDecode(f *testing.F) {
	// Seed with valid snapshots of increasing shape complexity so the
	// fuzzer starts from the interesting region of the format.
	seed := func(fill func(w *Writer) error) []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 7)
		if err != nil {
			f.Fatal(err)
		}
		if err := fill(w); err != nil {
			f.Fatal(err)
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add(seed(func(w *Writer) error { return nil }))
	f.Add(seed(func(w *Writer) error {
		if err := w.Begin(0, 0, SectionFlagBinaryKeys, 3); err != nil {
			return err
		}
		return w.Entry([]byte("0123456789abcdef"), "svc.example", 123456789)
	}))
	f.Add(seed(func(w *Writer) error {
		if err := w.Begin(1, 2, 0, 0); err != nil {
			return err
		}
		if err := w.Entry([]byte("edge.cdn.example"), "svc.example", -1); err != nil {
			return err
		}
		if err := w.Entry(nil, "", 0); err != nil {
			return err
		}
		if err := w.Begin(0, 1, SectionFlagBinaryKeys, 9); err != nil {
			return err
		}
		return w.Entry(bytes.Repeat([]byte{0xff}, 16), "x", 1<<62)
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		type secRec struct {
			family, gen, flags uint8
			split              uint32
			keys, values       [][]byte
			exps               []int64
		}
		decodeAll := func(data []byte) ([]secRec, error) {
			r, err := NewReader(bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			var out []secRec
			for {
				sec, err := r.Next()
				if err == io.EOF {
					return out, nil
				}
				if err != nil {
					return nil, err
				}
				rec := secRec{family: sec.Family, gen: sec.Gen, flags: sec.Flags, split: sec.Split}
				err = sec.ForEach(func(key, value []byte, exp int64) error {
					rec.keys = append(rec.keys, bytes.Clone(key))
					rec.values = append(rec.values, bytes.Clone(value))
					rec.exps = append(rec.exps, exp)
					return nil
				})
				if err != nil {
					return nil, err
				}
				out = append(out, rec)
			}
		}

		secs, err := decodeAll(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}

		// Accepted input: re-encode and decode again; entries must survive.
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range secs {
			if err := w.Begin(s.family, s.gen, s.flags, s.split); err != nil {
				t.Fatal(err)
			}
			for i := range s.keys {
				if err := w.Entry(s.keys[i], string(s.values[i]), s.exps[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		again, err := decodeAll(buf.Bytes())
		if err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", err)
		}
		var want, got int
		for _, s := range secs {
			want += len(s.keys)
		}
		for _, s := range again {
			got += len(s.keys)
		}
		if want != got {
			t.Fatalf("re-encode lost entries: %d -> %d", want, got)
		}
	})
}
