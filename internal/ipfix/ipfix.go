// Package ipfix implements an IPFIX (RFC 7011) message codec.
//
// The paper's introduction names IPFIX alongside NetFlow as the flow
// protocols ISPs export ("e.g. Netflow [7], IPFIX [2]"), and §3 notes the
// system "is not bound to NetFlow data and can be adapted to use other
// data formats containing IP addresses and timestamps". This package is
// that adaptation for IPFIX: message header, template sets (set ID 2),
// options template sets (ID 3, accepted and skipped), data sets (ID ≥ 256),
// enterprise-number field specifiers, variable-length fields (RFC 7011
// §7), and a template cache scoped per observation domain.
//
// The information elements FlowDNS consumes are the IANA standard ones:
// sourceIPv4Address(8), destinationIPv4Address(12), sourceIPv6Address(27),
// destinationIPv6Address(28), sourceTransportPort(7),
// destinationTransportPort(11), protocolIdentifier(4), octetDeltaCount(1),
// packetDeltaCount(2), flowStartMilliseconds(152).
package ipfix

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"repro/internal/netflow"
)

// Wire constants (RFC 7011 §3).
const (
	Version            = 10
	headerLen          = 16
	setHeaderLen       = 4
	templateSetID      = 2
	optionsTemplateSet = 3
	minDataSetID       = 256
	// varLen marks a variable-length information element in a template.
	varLen = 0xFFFF
)

// IANA information element IDs used by FlowDNS.
const (
	IEOctetDeltaCount     = 1
	IEPacketDeltaCount    = 2
	IEProtocolIdentifier  = 4
	IESourceTransportPort = 7
	IESourceIPv4Address   = 8
	IEDestTransportPort   = 11
	IEDestIPv4Address     = 12
	IESourceIPv6Address   = 27
	IEDestIPv6Address     = 28
	IEFlowStartMillis     = 152
	IEFlowEndMillis       = 153
	IEInterfaceName       = 82 // commonly variable-length; exercised in tests
	IEApplicationName     = 96
)

// Errors returned by the codec.
var (
	ErrShort         = errors.New("ipfix: message shorter than header")
	ErrVersion       = errors.New("ipfix: not an IPFIX message")
	ErrLength        = errors.New("ipfix: header length disagrees with payload")
	ErrSetLength     = errors.New("ipfix: set length invalid")
	ErrBadTemplate   = errors.New("ipfix: malformed template set")
	ErrVarLenOverrun = errors.New("ipfix: variable-length field overruns set")
	ErrTemplateScope = errors.New("ipfix: template id below 256")
)

// FieldSpec is one field specifier: an information element, its wire
// length (0xFFFF = variable), and an optional enterprise number.
type FieldSpec struct {
	ID         uint16
	Length     uint16
	Enterprise uint32 // 0 = IANA
}

// Variable reports whether the field is variable-length.
func (f FieldSpec) Variable() bool { return f.Length == varLen }

// Template is an IPFIX template record.
type Template struct {
	ID     uint16
	Fields []FieldSpec
}

// fixedLen returns the fixed wire length of a record under t, or -1 when
// any field is variable-length (records must then be walked field by
// field).
func (t *Template) fixedLen() int {
	n := 0
	for _, f := range t.Fields {
		if f.Variable() {
			return -1
		}
		n += int(f.Length)
	}
	return n
}

// Header is the 16-byte IPFIX message header.
type Header struct {
	Length         uint16
	ExportTime     uint32 // seconds since epoch
	SequenceNumber uint32
	DomainID       uint32 // observation domain
}

// Message is a decoded IPFIX message.
type Message struct {
	Header          Header
	Templates       []Template
	Records         []netflow.FlowRecord
	UnknownDataSets int
	SkippedOptions  int
}

// Cache stores templates per (observation domain, template id).
type Cache struct {
	mu sync.RWMutex
	m  map[uint64]Template
}

// NewCache returns an empty template cache.
func NewCache() *Cache { return &Cache{m: make(map[uint64]Template)} }

// Put stores a template.
func (c *Cache) Put(domain uint32, t Template) {
	c.mu.Lock()
	c.m[uint64(domain)<<16|uint64(t.ID)] = t
	c.mu.Unlock()
}

// Get retrieves a template.
func (c *Cache) Get(domain uint32, id uint16) (Template, bool) {
	c.mu.RLock()
	t, ok := c.m[uint64(domain)<<16|uint64(id)]
	c.mu.RUnlock()
	return t, ok
}

// Len returns the number of cached templates.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// StandardTemplate is the IPv4 flow template FlowDNS's IPFIX exporters use
// (template 256).
func StandardTemplate() Template {
	return Template{
		ID: 256,
		Fields: []FieldSpec{
			{ID: IESourceIPv4Address, Length: 4},
			{ID: IEDestIPv4Address, Length: 4},
			{ID: IESourceTransportPort, Length: 2},
			{ID: IEDestTransportPort, Length: 2},
			{ID: IEProtocolIdentifier, Length: 1},
			{ID: IEPacketDeltaCount, Length: 8},
			{ID: IEOctetDeltaCount, Length: 8},
			{ID: IEFlowStartMillis, Length: 8},
		},
	}
}

// StandardTemplateV6 mirrors StandardTemplate for IPv6 (template 257).
func StandardTemplateV6() Template {
	t := StandardTemplate()
	t.ID = 257
	t.Fields[0] = FieldSpec{ID: IESourceIPv6Address, Length: 16}
	t.Fields[1] = FieldSpec{ID: IEDestIPv6Address, Length: 16}
	return t
}

// Encode builds one IPFIX message carrying a template set announcing t and
// one data set of records encoded under it.
func Encode(h Header, t Template, records []netflow.FlowRecord) ([]byte, error) {
	if t.ID < minDataSetID {
		return nil, ErrTemplateScope
	}
	buf := make([]byte, headerLen)

	// Template set.
	setStart := len(buf)
	buf = binary.BigEndian.AppendUint16(buf, templateSetID)
	buf = binary.BigEndian.AppendUint16(buf, 0) // backfilled
	buf = binary.BigEndian.AppendUint16(buf, t.ID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(t.Fields)))
	for _, f := range t.Fields {
		id := f.ID
		if f.Enterprise != 0 {
			id |= 0x8000
		}
		buf = binary.BigEndian.AppendUint16(buf, id)
		buf = binary.BigEndian.AppendUint16(buf, f.Length)
		if f.Enterprise != 0 {
			buf = binary.BigEndian.AppendUint32(buf, f.Enterprise)
		}
	}
	binary.BigEndian.PutUint16(buf[setStart+2:], uint16(len(buf)-setStart))

	// Data set.
	if len(records) > 0 {
		setStart = len(buf)
		buf = binary.BigEndian.AppendUint16(buf, t.ID)
		buf = binary.BigEndian.AppendUint16(buf, 0)
		for i := range records {
			var err error
			buf, err = appendRecord(buf, t, &records[i])
			if err != nil {
				return nil, err
			}
		}
		binary.BigEndian.PutUint16(buf[setStart+2:], uint16(len(buf)-setStart))
	}

	// Header.
	binary.BigEndian.PutUint16(buf[0:], Version)
	binary.BigEndian.PutUint16(buf[2:], uint16(len(buf)))
	binary.BigEndian.PutUint32(buf[4:], h.ExportTime)
	binary.BigEndian.PutUint32(buf[8:], h.SequenceNumber)
	binary.BigEndian.PutUint32(buf[12:], h.DomainID)
	return buf, nil
}

func appendRecord(buf []byte, t Template, r *netflow.FlowRecord) ([]byte, error) {
	for _, f := range t.Fields {
		switch f.ID {
		case IESourceIPv4Address:
			if !r.SrcIP.Is4() {
				return nil, fmt.Errorf("ipfix: template %d needs IPv4 src, have %v", t.ID, r.SrcIP)
			}
			a := r.SrcIP.As4()
			buf = append(buf, a[:]...)
		case IEDestIPv4Address:
			if !r.DstIP.Is4() {
				return nil, fmt.Errorf("ipfix: template %d needs IPv4 dst, have %v", t.ID, r.DstIP)
			}
			a := r.DstIP.As4()
			buf = append(buf, a[:]...)
		case IESourceIPv6Address:
			a := r.SrcIP.As16()
			buf = append(buf, a[:]...)
		case IEDestIPv6Address:
			a := r.DstIP.As16()
			buf = append(buf, a[:]...)
		case IESourceTransportPort:
			buf = binary.BigEndian.AppendUint16(buf, r.SrcPort)
		case IEDestTransportPort:
			buf = binary.BigEndian.AppendUint16(buf, r.DstPort)
		case IEProtocolIdentifier:
			buf = append(buf, r.Proto)
		case IEPacketDeltaCount:
			buf = binary.BigEndian.AppendUint64(buf, r.Packets)
		case IEOctetDeltaCount:
			buf = binary.BigEndian.AppendUint64(buf, r.Bytes)
		case IEFlowStartMillis:
			buf = binary.BigEndian.AppendUint64(buf, uint64(r.Timestamp.UnixMilli()))
		default:
			if f.Variable() {
				// Unknown variable-length elements encode as empty.
				buf = append(buf, 0)
				continue
			}
			for i := 0; i < int(f.Length); i++ {
				buf = append(buf, 0)
			}
		}
	}
	return buf, nil
}

// Decode parses one IPFIX message, resolving data sets against cache
// (updated with any announced templates).
func Decode(pkt []byte, cache *Cache) (*Message, error) {
	if len(pkt) < headerLen {
		return nil, ErrShort
	}
	if binary.BigEndian.Uint16(pkt) != Version {
		return nil, ErrVersion
	}
	m := &Message{Header: Header{
		Length:         binary.BigEndian.Uint16(pkt[2:]),
		ExportTime:     binary.BigEndian.Uint32(pkt[4:]),
		SequenceNumber: binary.BigEndian.Uint32(pkt[8:]),
		DomainID:       binary.BigEndian.Uint32(pkt[12:]),
	}}
	if int(m.Header.Length) != len(pkt) {
		return nil, ErrLength
	}
	off := headerLen
	for off+setHeaderLen <= len(pkt) {
		setID := binary.BigEndian.Uint16(pkt[off:])
		setLen := int(binary.BigEndian.Uint16(pkt[off+2:]))
		if setLen < setHeaderLen || off+setLen > len(pkt) {
			return nil, ErrSetLength
		}
		body := pkt[off+setHeaderLen : off+setLen]
		switch {
		case setID == templateSetID:
			if err := decodeTemplateSet(body, m, cache); err != nil {
				return nil, err
			}
		case setID == optionsTemplateSet:
			m.SkippedOptions++
		case setID >= minDataSetID:
			if err := decodeDataSet(setID, body, m, cache); err != nil {
				return nil, err
			}
		}
		off += setLen
	}
	return m, nil
}

func decodeTemplateSet(body []byte, m *Message, cache *Cache) error {
	off := 0
	// Multiple template records per set; trailing padding < 4 bytes allowed.
	for off+4 <= len(body) {
		id := binary.BigEndian.Uint16(body[off:])
		count := int(binary.BigEndian.Uint16(body[off+2:]))
		off += 4
		if id == 0 && count == 0 {
			break // padding
		}
		if id < minDataSetID || count == 0 {
			return ErrBadTemplate
		}
		t := Template{ID: id, Fields: make([]FieldSpec, 0, count)}
		for i := 0; i < count; i++ {
			if off+4 > len(body) {
				return ErrBadTemplate
			}
			rawID := binary.BigEndian.Uint16(body[off:])
			length := binary.BigEndian.Uint16(body[off+2:])
			off += 4
			fs := FieldSpec{ID: rawID & 0x7FFF, Length: length}
			if rawID&0x8000 != 0 {
				if off+4 > len(body) {
					return ErrBadTemplate
				}
				fs.Enterprise = binary.BigEndian.Uint32(body[off:])
				off += 4
			}
			if length == 0 {
				return ErrBadTemplate
			}
			t.Fields = append(t.Fields, fs)
		}
		m.Templates = append(m.Templates, t)
		if cache != nil {
			cache.Put(m.Header.DomainID, t)
		}
	}
	return nil
}

func decodeDataSet(setID uint16, body []byte, m *Message, cache *Cache) error {
	var t Template
	ok := false
	if cache != nil {
		t, ok = cache.Get(m.Header.DomainID, setID)
	}
	if !ok {
		for _, cand := range m.Templates {
			if cand.ID == setID {
				t, ok = cand, true
				break
			}
		}
	}
	if !ok {
		m.UnknownDataSets++
		return nil
	}
	fixed := t.fixedLen()
	hdrTime := time.Unix(int64(m.Header.ExportTime), 0)
	off := 0
	for {
		// RFC 7011 §3.3.1: padding shorter than one record may follow.
		if fixed > 0 {
			if off+fixed > len(body) {
				break
			}
		} else if off >= len(body) {
			break
		}
		rec, n, err := decodeRecord(body[off:], t)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		if rec.Timestamp.IsZero() {
			rec.Timestamp = hdrTime
		}
		m.Records = append(m.Records, rec)
		off += n
		if fixed < 0 && len(body)-off < 4 {
			// variable-length records: stop at sub-record-header padding
			break
		}
	}
	return nil
}

func decodeRecord(b []byte, t Template) (netflow.FlowRecord, int, error) {
	var r netflow.FlowRecord
	off := 0
	for _, f := range t.Fields {
		length := int(f.Length)
		if f.Variable() {
			if off >= len(b) {
				return r, 0, ErrVarLenOverrun
			}
			length = int(b[off])
			off++
			if length == 255 {
				if off+2 > len(b) {
					return r, 0, ErrVarLenOverrun
				}
				length = int(binary.BigEndian.Uint16(b[off:]))
				off += 2
			}
		}
		if off+length > len(b) {
			return r, 0, ErrVarLenOverrun
		}
		v := b[off : off+length]
		if f.Enterprise == 0 {
			applyField(&r, f.ID, v)
		}
		off += length
	}
	return r, off, nil
}

func applyField(r *netflow.FlowRecord, id uint16, v []byte) {
	switch id {
	case IESourceIPv4Address:
		if len(v) == 4 {
			r.SrcIP = netip.AddrFrom4([4]byte(v))
		}
	case IEDestIPv4Address:
		if len(v) == 4 {
			r.DstIP = netip.AddrFrom4([4]byte(v))
		}
	case IESourceIPv6Address:
		if len(v) == 16 {
			r.SrcIP = netip.AddrFrom16([16]byte(v))
		}
	case IEDestIPv6Address:
		if len(v) == 16 {
			r.DstIP = netip.AddrFrom16([16]byte(v))
		}
	case IESourceTransportPort:
		r.SrcPort = uint16(beUint(v))
	case IEDestTransportPort:
		r.DstPort = uint16(beUint(v))
	case IEProtocolIdentifier:
		r.Proto = uint8(beUint(v))
	case IEPacketDeltaCount:
		r.Packets = beUint(v)
	case IEOctetDeltaCount:
		r.Bytes = beUint(v)
	case IEFlowStartMillis:
		if ms := beUint(v); ms != 0 {
			r.Timestamp = time.UnixMilli(int64(ms))
		}
	}
}

func beUint(b []byte) uint64 {
	if len(b) > 8 {
		b = b[len(b)-8:]
	}
	var n uint64
	for _, c := range b {
		n = n<<8 | uint64(c)
	}
	return n
}
