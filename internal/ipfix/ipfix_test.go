package ipfix

import (
	"encoding/binary"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netflow"
)

func sampleFlows() []netflow.FlowRecord {
	return []netflow.FlowRecord{
		{
			Timestamp: time.UnixMilli(1653475200123),
			SrcIP:     netip.MustParseAddr("198.51.100.7"),
			DstIP:     netip.MustParseAddr("203.0.113.9"),
			SrcPort:   443, DstPort: 51234, Proto: netflow.ProtoTCP,
			Packets: 99, Bytes: 123456,
		},
		{
			Timestamp: time.UnixMilli(1653475201000),
			SrcIP:     netip.MustParseAddr("192.0.2.1"),
			DstIP:     netip.MustParseAddr("198.51.100.99"),
			SrcPort:   53, DstPort: 40000, Proto: netflow.ProtoUDP,
			Packets: 1, Bytes: 80,
		},
	}
}

func TestRoundTrip(t *testing.T) {
	cache := NewCache()
	flows := sampleFlows()
	pkt, err := Encode(Header{ExportTime: 1653475200, DomainID: 7, SequenceNumber: 3},
		StandardTemplate(), flows)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(pkt, cache)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.DomainID != 7 || m.Header.SequenceNumber != 3 {
		t.Fatalf("header = %+v", m.Header)
	}
	if len(m.Templates) != 1 || m.Templates[0].ID != 256 || len(m.Templates[0].Fields) != 8 {
		t.Fatalf("templates = %+v", m.Templates)
	}
	if len(m.Records) != 2 {
		t.Fatalf("records = %d", len(m.Records))
	}
	for i, want := range flows {
		g := m.Records[i]
		if g.SrcIP != want.SrcIP || g.DstIP != want.DstIP || g.Bytes != want.Bytes ||
			g.Packets != want.Packets || g.SrcPort != want.SrcPort ||
			g.DstPort != want.DstPort || g.Proto != want.Proto ||
			!g.Timestamp.Equal(want.Timestamp) {
			t.Fatalf("record %d: got %+v want %+v", i, g, want)
		}
	}
	if cache.Len() != 1 {
		t.Fatalf("cache len = %d", cache.Len())
	}
}

func TestRoundTripIPv6(t *testing.T) {
	fr := netflow.FlowRecord{
		Timestamp: time.UnixMilli(1653475200000),
		SrcIP:     netip.MustParseAddr("2001:db8::7"),
		DstIP:     netip.MustParseAddr("2001:db8:1::9"),
		SrcPort:   443, DstPort: 50000, Proto: netflow.ProtoTCP, Packets: 5, Bytes: 7000,
	}
	pkt, err := Encode(Header{DomainID: 2}, StandardTemplateV6(), []netflow.FlowRecord{fr})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(pkt, NewCache())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Records) != 1 || m.Records[0].SrcIP != fr.SrcIP {
		t.Fatalf("v6 = %+v", m.Records)
	}
}

func TestCacheAcrossMessages(t *testing.T) {
	cache := NewCache()
	tmpl := StandardTemplate()
	p1, err := Encode(Header{DomainID: 5}, tmpl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(p1, cache); err != nil {
		t.Fatal(err)
	}
	// Hand-build a data-only message for template 256.
	fr := sampleFlows()[0]
	full, err := Encode(Header{DomainID: 5}, tmpl, []netflow.FlowRecord{fr})
	if err != nil {
		t.Fatal(err)
	}
	tmplSetLen := int(binary.BigEndian.Uint16(full[18:]))
	dataOnly := append(append([]byte{}, full[:16]...), full[16+tmplSetLen:]...)
	binary.BigEndian.PutUint16(dataOnly[2:], uint16(len(dataOnly)))
	m, err := Decode(dataOnly, cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Records) != 1 || m.Records[0].SrcIP != fr.SrcIP {
		t.Fatalf("cached decode = %+v", m.Records)
	}
	// Different observation domain: template must not leak.
	dataOnly[15] = 6
	m2, err := Decode(dataOnly, cache)
	if err != nil {
		t.Fatal(err)
	}
	if m2.UnknownDataSets != 1 || len(m2.Records) != 0 {
		t.Fatalf("template leaked: %+v", m2)
	}
}

func TestEnterpriseFieldSkipped(t *testing.T) {
	// Template with a 4-byte enterprise-specific field between standard
	// fields: the value must be skipped, standard fields still decoded.
	tmpl := Template{
		ID: 300,
		Fields: []FieldSpec{
			{ID: IESourceIPv4Address, Length: 4},
			{ID: 77, Length: 4, Enterprise: 29305},
			{ID: IEOctetDeltaCount, Length: 8},
		},
	}
	fr := netflow.FlowRecord{
		SrcIP: netip.MustParseAddr("10.0.0.1"),
		DstIP: netip.MustParseAddr("10.0.0.2"),
		Bytes: 4242,
	}
	pkt, err := Encode(Header{DomainID: 1, ExportTime: 1000}, tmpl, []netflow.FlowRecord{fr})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(pkt, NewCache())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Templates) != 1 || m.Templates[0].Fields[1].Enterprise != 29305 {
		t.Fatalf("enterprise spec lost: %+v", m.Templates)
	}
	if len(m.Records) != 1 || m.Records[0].Bytes != 4242 {
		t.Fatalf("records = %+v", m.Records)
	}
	if m.Records[0].Timestamp.Unix() != 1000 {
		t.Fatalf("export-time fallback not applied: %v", m.Records[0].Timestamp)
	}
}

func TestVariableLengthField(t *testing.T) {
	// Template with a variable-length interfaceName between fixed fields.
	tmpl := Template{
		ID: 301,
		Fields: []FieldSpec{
			{ID: IESourceIPv4Address, Length: 4},
			{ID: IEInterfaceName, Length: varLen},
			{ID: IEOctetDeltaCount, Length: 8},
		},
	}
	// Hand-encode one record: src, varlen "eth0", bytes.
	var body []byte
	body = append(body, 10, 0, 0, 9)
	body = append(body, 4)
	body = append(body, "eth0"...)
	body = binary.BigEndian.AppendUint64(body, 777)

	var pkt []byte
	pkt = make([]byte, 16)
	// template set
	ts := []byte{0, 2, 0, 0, 1, 45, 0, 3}
	ts = append(ts, 0, IESourceIPv4Address, 0, 4)
	ts = append(ts, 0, IEInterfaceName, 0xFF, 0xFF)
	ts = append(ts, 0, IEOctetDeltaCount, 0, 8)
	binary.BigEndian.PutUint16(ts[2:], uint16(len(ts)))
	pkt = append(pkt, ts...)
	ds := []byte{1, 45, 0, 0}
	ds = append(ds, body...)
	binary.BigEndian.PutUint16(ds[2:], uint16(len(ds)))
	pkt = append(pkt, ds...)
	binary.BigEndian.PutUint16(pkt[0:], Version)
	binary.BigEndian.PutUint16(pkt[2:], uint16(len(pkt)))
	binary.BigEndian.PutUint32(pkt[4:], 1653475200)

	m, err := Decode(pkt, NewCache())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Records) != 1 {
		t.Fatalf("records = %d", len(m.Records))
	}
	if m.Records[0].SrcIP != netip.MustParseAddr("10.0.0.9") || m.Records[0].Bytes != 777 {
		t.Fatalf("record = %+v", m.Records[0])
	}
	_ = tmpl
}

func TestVariableLengthLongForm(t *testing.T) {
	// 255-prefixed 2-byte length form (RFC 7011 §7).
	var rec []byte
	rec = append(rec, 10, 0, 0, 1)
	rec = append(rec, 255, 0x01, 0x04) // 260 bytes follow
	rec = append(rec, make([]byte, 260)...)
	rec = binary.BigEndian.AppendUint64(rec, 55)
	tmpl := Template{ID: 302, Fields: []FieldSpec{
		{ID: IESourceIPv4Address, Length: 4},
		{ID: IEApplicationName, Length: varLen},
		{ID: IEOctetDeltaCount, Length: 8},
	}}
	got, n, err := decodeRecord(rec, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(rec) || got.Bytes != 55 {
		t.Fatalf("n=%d rec=%+v", n, got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 4), nil); err != ErrShort {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, 16)
	bad[1] = 9
	binary.BigEndian.PutUint16(bad[2:], 16)
	if _, err := Decode(bad, nil); err != ErrVersion {
		t.Errorf("version: %v", err)
	}
	lenMismatch := make([]byte, 16)
	binary.BigEndian.PutUint16(lenMismatch[0:], Version)
	binary.BigEndian.PutUint16(lenMismatch[2:], 99)
	if _, err := Decode(lenMismatch, nil); err != ErrLength {
		t.Errorf("length: %v", err)
	}
	// Set claiming more than the message holds.
	overrun := make([]byte, 24)
	binary.BigEndian.PutUint16(overrun[0:], Version)
	binary.BigEndian.PutUint16(overrun[2:], 24)
	binary.BigEndian.PutUint16(overrun[16:], 2)
	binary.BigEndian.PutUint16(overrun[18:], 100)
	if _, err := Decode(overrun, nil); err != ErrSetLength {
		t.Errorf("set length: %v", err)
	}
	if _, err := Encode(Header{}, Template{ID: 10}, nil); err != ErrTemplateScope {
		t.Errorf("template scope: %v", err)
	}
}

func TestOptionsTemplateSkipped(t *testing.T) {
	pkt := make([]byte, 16)
	opts := []byte{0, 3, 0, 8, 1, 44, 0, 0}
	pkt = append(pkt, opts...)
	binary.BigEndian.PutUint16(pkt[0:], Version)
	binary.BigEndian.PutUint16(pkt[2:], uint16(len(pkt)))
	m, err := Decode(pkt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.SkippedOptions != 1 {
		t.Fatalf("SkippedOptions = %d", m.SkippedOptions)
	}
}

// Property: the decoder never panics on arbitrary bytes.
func TestQuickDecodeNeverPanics(t *testing.T) {
	cache := NewCache()
	f := func(data []byte) bool {
		_, _ = Decode(data, cache)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: encode→decode is the identity on standard-template records.
func TestQuickRoundTrip(t *testing.T) {
	f := func(src, dst [4]byte, sp, dp uint16, proto uint8, pkts, bytes uint32, ms uint32) bool {
		fr := netflow.FlowRecord{
			Timestamp: time.UnixMilli(int64(ms) + 1),
			SrcIP:     netip.AddrFrom4(src), DstIP: netip.AddrFrom4(dst),
			SrcPort: sp, DstPort: dp, Proto: proto,
			Packets: uint64(pkts), Bytes: uint64(bytes),
		}
		pkt, err := Encode(Header{DomainID: 1}, StandardTemplate(), []netflow.FlowRecord{fr})
		if err != nil {
			return false
		}
		m, err := Decode(pkt, NewCache())
		if err != nil || len(m.Records) != 1 {
			return false
		}
		g := m.Records[0]
		return g.SrcIP == fr.SrcIP && g.DstIP == fr.DstIP && g.SrcPort == sp &&
			g.DstPort == dp && g.Proto == proto && g.Packets == uint64(pkts) &&
			g.Bytes == uint64(bytes) && g.Timestamp.Equal(fr.Timestamp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecode(b *testing.B) {
	pkt, err := Encode(Header{DomainID: 1, ExportTime: 1}, StandardTemplate(), sampleFlows())
	if err != nil {
		b.Fatal(err)
	}
	cache := NewCache()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(pkt, cache); err != nil {
			b.Fatal(err)
		}
	}
}
