package ipfix

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/netflow"
)

// FuzzDecode asserts the IPFIX decoder never panics on arbitrary
// datagrams — including mangled template sets, enterprise-number field
// specifiers, and variable-length fields, the trickiest parts of RFC 7011
// — with a cold, nil, and warm template cache.
func FuzzDecode(f *testing.F) {
	rec := netflow.FlowRecord{
		Timestamp: time.UnixMilli(1653475200123),
		SrcIP:     netip.AddrFrom4([4]byte{198, 51, 100, 7}),
		DstIP:     netip.AddrFrom4([4]byte{203, 0, 113, 9}),
		SrcPort:   443, DstPort: 50000, Proto: 6, Packets: 10, Bytes: 1500,
	}
	valid, err := Encode(Header{ExportTime: 1653475200, DomainID: 42}, StandardTemplate(), []netflow.FlowRecord{rec})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:16])                                                // header only
	f.Add(valid[:20])                                                // truncated set header
	f.Add([]byte{})                                                  // empty
	f.Add([]byte{0, 10, 0, 16, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 16}) // header length lies
	// A template with an enterprise-number field and a variable-length
	// field, then a data set under it.
	varTmpl := []byte{
		0, 10, 0, 40, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 42, // header (len 40)
		0, 2, 0, 16, // template set, len 16
		1, 0, 0, 2, // template id 256, 2 fields
		0x80, 82, 0xFF, 0xFF, 0, 0, 0, 9, // enterprise(9) IE 82, varlen
		0, 4, 0, 1, // protocolIdentifier, 1 byte
		1, 0, 0, 8, // data set id 256, len 8
		2, 0xAB, 0xCD, 6, // varlen len=2 + payload + proto
	}
	f.Add(varTmpl)
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := Decode(data, NewCache()); err != nil {
			_ = err
		}
		if _, err := Decode(data, nil); err != nil {
			_ = err
		}
		warm := NewCache()
		warm.Put(42, StandardTemplate())
		m, err := Decode(data, warm)
		if err != nil {
			return
		}
		for i := range m.Records {
			_ = m.Records[i].IsValid()
		}
	})
}
