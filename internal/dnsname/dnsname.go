// Package dnsname implements RFC 1035 domain-name syntax rules.
//
// FlowDNS §5 ("Invalid Domain Names") checks every correlated domain against
// three rules from RFC 1035 and measures the traffic attributed to names
// that violate them:
//
//  1. the total length of the domain name is 255 bytes or less;
//  2. each label is limited to 63 bytes;
//  3. each label starts with a letter, ends with a letter or digit, and
//     interior characters are letters, digits, and hyphens (the classic
//     LDH / "preferred name syntax" rule).
//
// The paper reports 666k violating names in one day, with "disallowed
// interior characters" the most common violation and the underscore present
// in 87% of malformed names. This package classifies violations so the
// experiment harness can reproduce that breakdown.
package dnsname

import "strings"

// Violation identifies which RFC 1035 rule a domain name breaks.
type Violation int

const (
	// OK means the name satisfies all checked rules.
	OK Violation = iota
	// TooLong means the whole name exceeds 255 bytes.
	TooLong
	// LabelTooLong means some label exceeds 63 bytes.
	LabelTooLong
	// EmptyLabel means the name contains an empty label ("a..b", leading
	// dot, or is empty altogether).
	EmptyLabel
	// BadStart means a label starts with a character that is not a letter.
	BadStart
	// BadEnd means a label ends with a character that is not a letter or
	// digit.
	BadEnd
	// BadInterior means a label contains an interior character outside
	// letters, digits, and hyphen. This is the paper's most common
	// violation; underscores land here.
	BadInterior
)

// String returns the violation name used in reports.
func (v Violation) String() string {
	switch v {
	case OK:
		return "ok"
	case TooLong:
		return "name-too-long"
	case LabelTooLong:
		return "label-too-long"
	case EmptyLabel:
		return "empty-label"
	case BadStart:
		return "bad-label-start"
	case BadEnd:
		return "bad-label-end"
	case BadInterior:
		return "bad-interior-char"
	default:
		return "unknown"
	}
}

// MaxNameLen is the RFC 1035 limit on the presentation length of a name.
const MaxNameLen = 255

// MaxLabelLen is the RFC 1035 limit on a single label.
const MaxLabelLen = 63

// Normalize lowercases a name and strips one trailing dot, the canonical
// form FlowDNS stores in its hashmaps so that "CDN.Example.COM." and
// "cdn.example.com" correlate to the same entry.
//
// The common case — a name that is already lowercase with no trailing dot,
// which is what resolvers emit for the overwhelming majority of records —
// returns the input string unchanged with zero allocations; a trailing dot
// alone still costs nothing (the result is a substring of the input). Only
// a name that actually contains an uppercase byte pays for one output
// buffer, filled in the same single pass that found the byte (strings.
// ToLower would rescan from the start).
func Normalize(name string) string {
	if n := len(name); n > 0 && name[n-1] == '.' {
		name = name[:n-1]
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c < 'A' || c > 'Z' {
			continue
		}
		// First uppercase byte: lowercase the rest into a fresh buffer,
		// resuming at i rather than rescanning the prefix. A Builder makes
		// the buffer-to-string handoff free, so the slow path costs exactly
		// one allocation.
		var sb strings.Builder
		sb.Grow(len(name))
		sb.WriteString(name[:i])
		for j := i; j < len(name); j++ {
			c := name[j]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			sb.WriteByte(c)
		}
		return sb.String()
	}
	return name
}

func isLetter(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isLDH(c byte) bool { return isLetter(c) || isDigit(c) || c == '-' }

// Check validates name (with or without a trailing dot) against the three
// RFC 1035 rules and returns the first violation found, scanning rules in
// the order the paper lists them: total length, label length, label syntax.
func Check(name string) Violation {
	name = strings.TrimSuffix(name, ".")
	if len(name) > MaxNameLen {
		return TooLong
	}
	if name == "" {
		return EmptyLabel
	}
	start := 0
	for i := 0; i <= len(name); i++ {
		if i != len(name) && name[i] != '.' {
			continue
		}
		label := name[start:i]
		start = i + 1
		if v := checkLabel(label); v != OK {
			return v
		}
	}
	return OK
}

func checkLabel(label string) Violation {
	if label == "" {
		return EmptyLabel
	}
	if len(label) > MaxLabelLen {
		return LabelTooLong
	}
	if !isLetter(label[0]) {
		return BadStart
	}
	last := label[len(label)-1]
	if !isLetter(last) && !isDigit(last) {
		return BadEnd
	}
	for i := 1; i < len(label)-1; i++ {
		if !isLDH(label[i]) {
			return BadInterior
		}
	}
	return OK
}

// Valid reports whether name passes all rules.
func Valid(name string) bool { return Check(name) == OK }

// HasUnderscore reports whether the name contains an underscore anywhere.
// The paper finds '_' in 87% of malformatted domains (service-discovery
// names like _sip._tcp.example.com are the usual culprits).
func HasUnderscore(name string) bool { return strings.IndexByte(name, '_') >= 0 }

// Labels splits a normalized name into its labels. An empty name yields nil.
func Labels(name string) []string {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return nil
	}
	return strings.Split(name, ".")
}

// Report summarizes violations across a set of names; used by the fig5 /
// invalid-domain experiments.
type Report struct {
	Total       int               // names checked
	Invalid     int               // names with any violation
	ByViolation map[Violation]int // first-violation histogram
	Underscore  int               // invalid names containing '_'
}

// NewReport returns an empty report ready for Add.
func NewReport() *Report {
	return &Report{ByViolation: make(map[Violation]int)}
}

// Add checks one name and folds it into the report. It returns the
// violation so callers can tag traffic volume by category.
func (r *Report) Add(name string) Violation {
	r.Total++
	v := Check(name)
	if v != OK {
		r.Invalid++
		r.ByViolation[v]++
		if HasUnderscore(name) {
			r.Underscore++
		}
	}
	return v
}

// UnderscoreShare returns the fraction of invalid names containing an
// underscore (paper: 0.87).
func (r *Report) UnderscoreShare() float64 {
	if r.Invalid == 0 {
		return 0
	}
	return float64(r.Underscore) / float64(r.Invalid)
}

// InvalidShare returns Invalid/Total (paper: 1.7% of all domain names).
func (r *Report) InvalidShare() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Invalid) / float64(r.Total)
}
