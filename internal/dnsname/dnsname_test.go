package dnsname

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCheckValidNames(t *testing.T) {
	valid := []string{
		"example.com",
		"example.com.",
		"a.b.c.com",
		"cdn-edge-3.fra1.example.net",
		"x1.y2.z3",
		"a",
		"abc123.example.org",
		strings.Repeat("a", 63) + ".com",
	}
	for _, name := range valid {
		if v := Check(name); v != OK {
			t.Errorf("Check(%q) = %v, want OK", name, v)
		}
	}
}

func TestCheckViolations(t *testing.T) {
	cases := []struct {
		name string
		want Violation
	}{
		{strings.Repeat("a.", 130) + "com", TooLong},
		{strings.Repeat("a", 64) + ".com", LabelTooLong},
		{"", EmptyLabel},
		{".", EmptyLabel},
		{"a..b.com", EmptyLabel},
		{".example.com", EmptyLabel},
		{"1example.com", BadStart},
		{"-lead.example.com", BadStart},
		{"_sip.example.com", BadStart},
		{"trail-.example.com", BadEnd},
		{"example.com-", BadEnd},
		{"foo_bar.example.com", BadInterior},
		{"a_b.com", BadInterior},
		{"sp ace.example.com", BadInterior},
		{"emoji\xf0\x9f\x98\x80x.example.com", BadInterior},
	}
	for _, c := range cases {
		if got := Check(c.name); got != c.want {
			t.Errorf("Check(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCheckTrailingDotEquivalence(t *testing.T) {
	names := []string{"example.com", "foo_bar.net", "1bad.org", strings.Repeat("a", 64) + ".com"}
	for _, n := range names {
		if Check(n) != Check(n+".") {
			t.Errorf("Check(%q) != Check(%q.)", n, n)
		}
	}
}

func TestNormalize(t *testing.T) {
	// allocs pins the fast path: already-lowercase input (with or without a
	// trailing dot) must come back without any allocation — this runs once
	// per ingested DNS record.
	cases := []struct {
		in, want string
		allocs   float64
	}{
		{"Example.COM.", "example.com", 1},
		{"example.com", "example.com", 0},
		{"example.com.", "example.com", 0},
		{"CDN.EXAMPLE.NET", "cdn.example.net", 1},
		{"already.lower", "already.lower", 0},
		{"MIXED.case.Tail", "mixed.case.tail", 1},
		{"x", "x", 0},
		{"X", "x", 1},
		{"digits-123.and-hyphens.example", "digits-123.and-hyphens.example", 0},
		{"_service._tcp.example.com", "_service._tcp.example.com", 0},
		{".", "", 0},
		{"", "", 0},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
		if allocs := testing.AllocsPerRun(100, func() { Normalize(c.in) }); allocs != c.allocs {
			t.Errorf("Normalize(%q) allocates %v per run, want %v", c.in, allocs, c.allocs)
		}
	}
}

func TestNormalizeReturnsInputUnchanged(t *testing.T) {
	// The zero-alloc fast path must hand back the very same string (not a
	// copy): the interner downstream relies on lowercase names being stable.
	in := "cdn.example.com"
	if got := Normalize(in); got != in {
		t.Fatalf("Normalize changed %q to %q", in, got)
	}
}

func TestHasUnderscore(t *testing.T) {
	if !HasUnderscore("_dmarc.example.com") {
		t.Error("underscore not detected")
	}
	if HasUnderscore("example.com") {
		t.Error("false positive underscore")
	}
}

func TestLabels(t *testing.T) {
	got := Labels("a.b.c.com.")
	want := []string{"a", "b", "c", "com"}
	if len(got) != len(want) {
		t.Fatalf("Labels = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Labels = %v, want %v", got, want)
		}
	}
	if Labels("") != nil {
		t.Error("Labels(\"\") != nil")
	}
}

func TestValid(t *testing.T) {
	if !Valid("example.com") || Valid("foo_bar.com") {
		t.Error("Valid misclassifies")
	}
}

func TestReport(t *testing.T) {
	r := NewReport()
	r.Add("good.example.com")
	r.Add("has_underscore.example.com")
	r.Add("another_bad.example.com")
	r.Add("-lead.example.com")
	if r.Total != 4 || r.Invalid != 3 {
		t.Fatalf("Total=%d Invalid=%d; want 4,3", r.Total, r.Invalid)
	}
	if r.ByViolation[BadInterior] != 2 || r.ByViolation[BadStart] != 1 {
		t.Fatalf("ByViolation = %v", r.ByViolation)
	}
	if got := r.UnderscoreShare(); got != 2.0/3.0 {
		t.Fatalf("UnderscoreShare = %v, want 2/3", got)
	}
	if got := r.InvalidShare(); got != 0.75 {
		t.Fatalf("InvalidShare = %v, want 0.75", got)
	}
}

func TestReportEmpty(t *testing.T) {
	r := NewReport()
	if r.UnderscoreShare() != 0 || r.InvalidShare() != 0 {
		t.Error("empty report shares must be 0")
	}
}

// Property: Check never panics and Normalize is idempotent for any input.
func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		n := Normalize(s)
		_ = Check(s)
		return Normalize(n) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: any name built from valid LDH labels within limits passes Check.
func TestQuickConstructedValidNames(t *testing.T) {
	f := func(seed uint32, nLabels uint8) bool {
		labels := int(nLabels%5) + 1
		parts := make([]string, labels)
		r := seed
		next := func() uint32 { r = r*1664525 + 1013904223; return r }
		for i := range parts {
			l := int(next()%10) + 1
			b := make([]byte, l)
			b[0] = byte('a' + next()%26)
			for j := 1; j < l-1; j++ {
				switch next() % 3 {
				case 0:
					b[j] = byte('a' + next()%26)
				case 1:
					b[j] = byte('0' + next()%10)
				default:
					b[j] = '-'
				}
			}
			if l > 1 {
				if next()%2 == 0 {
					b[l-1] = byte('a' + next()%26)
				} else {
					b[l-1] = byte('0' + next()%10)
				}
			}
			parts[i] = string(b)
		}
		name := strings.Join(parts, ".")
		if len(name) > MaxNameLen {
			return true // out of scope for this property
		}
		return Check(name) == OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestViolationString(t *testing.T) {
	for v, want := range map[Violation]string{
		OK: "ok", TooLong: "name-too-long", LabelTooLong: "label-too-long",
		EmptyLabel: "empty-label", BadStart: "bad-label-start",
		BadEnd: "bad-label-end", BadInterior: "bad-interior-char",
		Violation(99): "unknown",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
}

func BenchmarkCheck(b *testing.B) {
	name := "edge-42.fra1.cdn.example-service.com"
	for i := 0; i < b.N; i++ {
		Check(name)
	}
}

func BenchmarkNormalize(b *testing.B) {
	name := "Edge-42.FRA1.cdn.Example-Service.COM."
	for i := 0; i < b.N; i++ {
		Normalize(name)
	}
}
