package cmap

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetGet(t *testing.T) {
	m := New()
	m.Set("a.example.com", "svc.example.com")
	v, ok := m.Get("a.example.com")
	if !ok || v != "svc.example.com" {
		t.Fatalf("Get = %q, %v; want svc.example.com, true", v, ok)
	}
	if _, ok := m.Get("missing"); ok {
		t.Fatal("Get(missing) reported present")
	}
}

func TestSetOverwrites(t *testing.T) {
	m := New()
	m.Set("k", "v1")
	m.Set("k", "v2")
	if v, _ := m.Get("k"); v != "v2" {
		t.Fatalf("overwrite: got %q, want v2", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestSetIfAbsent(t *testing.T) {
	m := New()
	if !m.SetIfAbsent("k", "v1") {
		t.Fatal("first SetIfAbsent returned false")
	}
	if m.SetIfAbsent("k", "v2") {
		t.Fatal("second SetIfAbsent returned true")
	}
	if v, _ := m.Get("k"); v != "v1" {
		t.Fatalf("value = %q, want v1", v)
	}
}

func TestRemove(t *testing.T) {
	m := New()
	m.Set("k", "v")
	if !m.Remove("k") {
		t.Fatal("Remove existing returned false")
	}
	if m.Remove("k") {
		t.Fatal("Remove missing returned true")
	}
	if m.Has("k") {
		t.Fatal("key still present after Remove")
	}
}

func TestLenAndClear(t *testing.T) {
	m := NewWithShards(8)
	for i := 0; i < 100; i++ {
		m.Set(strconv.Itoa(i), "v")
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d, want 100", m.Len())
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("Len after Clear = %d, want 0", m.Len())
	}
}

func TestItemsAndRange(t *testing.T) {
	m := New()
	want := map[string]string{"a": "1", "b": "2", "c": "3"}
	for k, v := range want {
		m.Set(k, v)
	}
	got := m.Items()
	if len(got) != len(want) {
		t.Fatalf("Items len = %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Items[%q] = %q, want %q", k, got[k], v)
		}
	}
	n := 0
	m.Range(func(k, v string) bool { n++; return true })
	if n != len(want) {
		t.Fatalf("Range visited %d, want %d", n, len(want))
	}
	n = 0
	m.Range(func(k, v string) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range early-stop visited %d, want 1", n)
	}
}

func TestRemoveIf(t *testing.T) {
	m := New()
	for i := 0; i < 50; i++ {
		m.Set(strconv.Itoa(i), strconv.Itoa(i%2))
	}
	removed := m.RemoveIf(func(k, v string) bool { return v == "0" })
	if removed != 25 {
		t.Fatalf("RemoveIf removed %d, want 25", removed)
	}
	if m.Len() != 25 {
		t.Fatalf("Len = %d, want 25", m.Len())
	}
	m.Range(func(k, v string) bool {
		if v != "1" {
			t.Errorf("unexpected survivor %q=%q", k, v)
		}
		return true
	})
}

func TestSnapshotRotation(t *testing.T) {
	active := NewWithShards(16)
	inactive := NewWithShards(16)
	inactive.Set("stale", "old-generation")
	for i := 0; i < 200; i++ {
		active.Set("k"+strconv.Itoa(i), "v")
	}
	active.Snapshot(inactive)
	if active.Len() != 0 {
		t.Fatalf("active Len after rotation = %d, want 0", active.Len())
	}
	if inactive.Len() != 200 {
		t.Fatalf("inactive Len = %d, want 200", inactive.Len())
	}
	if inactive.Has("stale") {
		t.Fatal("rotation must overwrite previous inactive contents")
	}
	// Active remains usable after handover.
	active.Set("fresh", "v")
	if !active.Has("fresh") {
		t.Fatal("active unusable after Snapshot")
	}
}

func TestSnapshotMismatchedShards(t *testing.T) {
	active := NewWithShards(4)
	inactive := NewWithShards(7) // non power of two, different count
	for i := 0; i < 64; i++ {
		active.Set(strconv.Itoa(i), "v")
	}
	active.Snapshot(inactive)
	if inactive.Len() != 64 || active.Len() != 0 {
		t.Fatalf("got inactive=%d active=%d, want 64/0", inactive.Len(), active.Len())
	}
}

func TestSnapshotNilDst(t *testing.T) {
	m := New()
	m.Set("k", "v")
	m.Snapshot(nil) // must not panic
	if !m.Has("k") {
		t.Fatal("Snapshot(nil) mutated the map")
	}
}

func TestNewWithShardsClamps(t *testing.T) {
	m := NewWithShards(0)
	if m.ShardCount() != 1 {
		t.Fatalf("ShardCount = %d, want 1", m.ShardCount())
	}
	m.Set("k", "v")
	if !m.Has("k") {
		t.Fatal("single-shard map broken")
	}
}

func TestNonPowerOfTwoShards(t *testing.T) {
	m := NewWithShards(10) // FlowDNS uses NUM_SPLIT=10
	for i := 0; i < 1000; i++ {
		m.Set(fmt.Sprintf("key-%d", i), strconv.Itoa(i))
	}
	for i := 0; i < 1000; i++ {
		v, ok := m.Get(fmt.Sprintf("key-%d", i))
		if !ok || v != strconv.Itoa(i) {
			t.Fatalf("key-%d: got %q,%v", i, v, ok)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	const workers = 16
	const perWorker = 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := fmt.Sprintf("w%d-%d", w, i)
				m.Set(k, "v")
				if _, ok := m.Get(k); !ok {
					t.Errorf("own write not visible: %s", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", m.Len(), workers*perWorker)
	}
}

func TestConcurrentRotationDuringWrites(t *testing.T) {
	// Simulates FillUp workers writing while the clear-up rotation runs.
	active := New()
	inactive := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
				active.Set(strconv.Itoa(i), "v")
				i++
			}
		}
	}()
	for r := 0; r < 50; r++ {
		active.Snapshot(inactive)
	}
	close(stop)
	wg.Wait()
}

// Property: a cmap behaves like a plain map under a sequential workload.
func TestQuickSequentialEquivalence(t *testing.T) {
	f := func(keys []string, values []string) bool {
		m := NewWithShards(10)
		ref := map[string]string{}
		for i, k := range keys {
			v := "v"
			if i < len(values) {
				v = values[i]
			}
			m.Set(k, v)
			ref[k] = v
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := m.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Snapshot moves exactly the active contents.
func TestQuickSnapshotMoves(t *testing.T) {
	f := func(keys []string) bool {
		a, b := NewWithShards(8), NewWithShards(8)
		ref := map[string]bool{}
		for _, k := range keys {
			a.Set(k, "x")
			ref[k] = true
		}
		a.Snapshot(b)
		if a.Len() != 0 || b.Len() != len(ref) {
			return false
		}
		for k := range ref {
			if !b.Has(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSet(b *testing.B) {
	m := NewWithShards(32)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("198.51.%d.%d", i/256, i%256)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Set(keys[i&1023], "cdn.example.com")
	}
}

func BenchmarkGetParallel(b *testing.B) {
	m := NewWithShards(32)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("198.51.%d.%d", i/256, i%256)
		m.Set(keys[i], "cdn.example.com")
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.Get(keys[i&1023])
			i++
		}
	})
}

func TestGetBytesFindsStringKeys(t *testing.T) {
	m := NewWithShards(8)
	m.Set("198.51.100.7", "cdn.example")
	if v, ok := m.GetBytes([]byte("198.51.100.7")); !ok || v != "cdn.example" {
		t.Fatalf("GetBytes = %q, %v", v, ok)
	}
	if _, ok := m.GetBytes([]byte("198.51.100.8")); ok {
		t.Fatal("GetBytes found absent key")
	}
	// Hash equivalence: byte and string forms must agree, or shard
	// selection would diverge between fills and lookups.
	if Hash("198.51.100.7") != HashBytes([]byte("198.51.100.7")) {
		t.Fatal("Hash and HashBytes disagree")
	}
}

func TestSetBytesHashRoundTrip(t *testing.T) {
	m := NewWithShards(8)
	key := []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 198, 51, 100, 7}
	h := HashBytes(key)
	m.SetBytesHash(h, key, "svc.example")
	if v, ok := m.GetBytesHash(h, key); !ok || v != "svc.example" {
		t.Fatalf("GetBytesHash = %q, %v", v, ok)
	}
	// The map must have copied the key: mutating the caller's buffer must
	// not corrupt the stored entry.
	key[15] = 9
	h2 := HashBytes(key)
	if _, ok := m.GetBytesHash(h2, key); ok {
		t.Fatal("mutated key still matches")
	}
	key[15] = 7
	if v, ok := m.GetBytesHash(h, key); !ok || v != "svc.example" {
		t.Fatalf("original key lost after caller mutation: %q, %v", v, ok)
	}
}

func TestEmptyTracksEntryCount(t *testing.T) {
	m := NewWithShards(4)
	if !m.Empty() {
		t.Fatal("fresh map not empty")
	}
	m.Set("a", "1")
	m.Set("a", "2") // replace: still one entry
	m.Set("b", "3")
	if m.Empty() {
		t.Fatal("map with entries reports empty")
	}
	m.Remove("a")
	m.Remove("a") // absent: no double decrement
	m.Remove("b")
	if !m.Empty() {
		t.Fatal("drained map not empty")
	}
	m.SetIfAbsent("c", "4")
	m.SetIfAbsent("c", "5")
	if m.Empty() {
		t.Fatal("SetIfAbsent not counted")
	}
	m.Clear()
	if !m.Empty() {
		t.Fatal("cleared map not empty")
	}
	m.Set("d", "6")
	m.Set("e", "7")
	if n := m.RemoveIf(func(k, _ string) bool { return k == "d" }); n != 1 {
		t.Fatalf("RemoveIf = %d", n)
	}
	if m.Empty() {
		t.Fatal("RemoveIf over-decremented")
	}
	m.RemoveIf(func(string, string) bool { return true })
	if !m.Empty() {
		t.Fatal("full RemoveIf left count")
	}
}

func TestEmptyAcrossSnapshot(t *testing.T) {
	src, dst := NewWithShards(4), NewWithShards(4)
	src.Set("a", "1")
	src.Set("b", "2")
	dst.Set("stale", "x")
	src.Snapshot(dst)
	if !src.Empty() {
		t.Fatal("source not empty after snapshot")
	}
	if dst.Empty() {
		t.Fatal("dest empty after snapshot")
	}
	if dst.Len() != 2 {
		t.Fatalf("dst.Len = %d", dst.Len())
	}
	// Mismatched shard counts take the copy path; counts must still track.
	src2, dst2 := NewWithShards(4), NewWithShards(8)
	src2.Set("c", "3")
	src2.Snapshot(dst2)
	if !src2.Empty() || dst2.Empty() {
		t.Fatalf("copy-path snapshot counts wrong: src empty=%v dst empty=%v",
			src2.Empty(), dst2.Empty())
	}
}
