package cmap

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetGet(t *testing.T) {
	m := New()
	m.Set("a.example.com", "svc.example.com")
	v, ok := m.Get("a.example.com")
	if !ok || v != "svc.example.com" {
		t.Fatalf("Get = %q, %v; want svc.example.com, true", v, ok)
	}
	if _, ok := m.Get("missing"); ok {
		t.Fatal("Get(missing) reported present")
	}
}

func TestSetOverwrites(t *testing.T) {
	m := New()
	m.Set("k", "v1")
	m.Set("k", "v2")
	if v, _ := m.Get("k"); v != "v2" {
		t.Fatalf("overwrite: got %q, want v2", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestSetIfAbsent(t *testing.T) {
	m := New()
	if !m.SetIfAbsent("k", "v1") {
		t.Fatal("first SetIfAbsent returned false")
	}
	if m.SetIfAbsent("k", "v2") {
		t.Fatal("second SetIfAbsent returned true")
	}
	if v, _ := m.Get("k"); v != "v1" {
		t.Fatalf("value = %q, want v1", v)
	}
}

func TestRemove(t *testing.T) {
	m := New()
	m.Set("k", "v")
	if !m.Remove("k") {
		t.Fatal("Remove existing returned false")
	}
	if m.Remove("k") {
		t.Fatal("Remove missing returned true")
	}
	if m.Has("k") {
		t.Fatal("key still present after Remove")
	}
}

func TestLenAndClear(t *testing.T) {
	m := NewWithShards(8)
	for i := 0; i < 100; i++ {
		m.Set(strconv.Itoa(i), "v")
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d, want 100", m.Len())
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("Len after Clear = %d, want 0", m.Len())
	}
}

func TestItemsAndRange(t *testing.T) {
	m := New()
	want := map[string]string{"a": "1", "b": "2", "c": "3"}
	for k, v := range want {
		m.Set(k, v)
	}
	got := m.Items()
	if len(got) != len(want) {
		t.Fatalf("Items len = %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Items[%q] = %q, want %q", k, got[k], v)
		}
	}
	n := 0
	m.Range(func(k, v string) bool { n++; return true })
	if n != len(want) {
		t.Fatalf("Range visited %d, want %d", n, len(want))
	}
	n = 0
	m.Range(func(k, v string) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range early-stop visited %d, want 1", n)
	}
}

func TestRemoveIf(t *testing.T) {
	m := New()
	for i := 0; i < 50; i++ {
		m.Set(strconv.Itoa(i), strconv.Itoa(i%2))
	}
	removed := m.RemoveIf(func(k, v string, _ int64) bool { return v == "0" })
	if removed != 25 {
		t.Fatalf("RemoveIf removed %d, want 25", removed)
	}
	if m.Len() != 25 {
		t.Fatalf("Len = %d, want 25", m.Len())
	}
	m.Range(func(k, v string) bool {
		if v != "1" {
			t.Errorf("unexpected survivor %q=%q", k, v)
		}
		return true
	})
}

func TestSnapshotRotation(t *testing.T) {
	active := NewWithShards(16)
	inactive := NewWithShards(16)
	inactive.Set("stale", "old-generation")
	for i := 0; i < 200; i++ {
		active.Set("k"+strconv.Itoa(i), "v")
	}
	active.Snapshot(inactive)
	if active.Len() != 0 {
		t.Fatalf("active Len after rotation = %d, want 0", active.Len())
	}
	if inactive.Len() != 200 {
		t.Fatalf("inactive Len = %d, want 200", inactive.Len())
	}
	if inactive.Has("stale") {
		t.Fatal("rotation must overwrite previous inactive contents")
	}
	// Active remains usable after handover.
	active.Set("fresh", "v")
	if !active.Has("fresh") {
		t.Fatal("active unusable after Snapshot")
	}
}

func TestSnapshotMismatchedShards(t *testing.T) {
	active := NewWithShards(4)
	inactive := NewWithShards(7) // non power of two, different count
	for i := 0; i < 64; i++ {
		active.Set(strconv.Itoa(i), "v")
	}
	active.Snapshot(inactive)
	if inactive.Len() != 64 || active.Len() != 0 {
		t.Fatalf("got inactive=%d active=%d, want 64/0", inactive.Len(), active.Len())
	}
}

func TestSnapshotNilDst(t *testing.T) {
	m := New()
	m.Set("k", "v")
	m.Snapshot(nil) // must not panic
	if !m.Has("k") {
		t.Fatal("Snapshot(nil) mutated the map")
	}
}

func TestNewWithShardsClamps(t *testing.T) {
	m := NewWithShards(0)
	if m.ShardCount() != 1 {
		t.Fatalf("ShardCount = %d, want 1", m.ShardCount())
	}
	m.Set("k", "v")
	if !m.Has("k") {
		t.Fatal("single-shard map broken")
	}
}

func TestNonPowerOfTwoShards(t *testing.T) {
	m := NewWithShards(10) // FlowDNS uses NUM_SPLIT=10
	for i := 0; i < 1000; i++ {
		m.Set(fmt.Sprintf("key-%d", i), strconv.Itoa(i))
	}
	for i := 0; i < 1000; i++ {
		v, ok := m.Get(fmt.Sprintf("key-%d", i))
		if !ok || v != strconv.Itoa(i) {
			t.Fatalf("key-%d: got %q,%v", i, v, ok)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	const workers = 16
	const perWorker = 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := fmt.Sprintf("w%d-%d", w, i)
				m.Set(k, "v")
				if _, ok := m.Get(k); !ok {
					t.Errorf("own write not visible: %s", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", m.Len(), workers*perWorker)
	}
}

func TestConcurrentRotationDuringWrites(t *testing.T) {
	// Simulates FillUp workers writing while the clear-up rotation runs.
	active := New()
	inactive := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
				active.Set(strconv.Itoa(i), "v")
				i++
			}
		}
	}()
	for r := 0; r < 50; r++ {
		active.Snapshot(inactive)
	}
	close(stop)
	wg.Wait()
}

// Property: a cmap behaves like a plain map under a sequential workload.
func TestQuickSequentialEquivalence(t *testing.T) {
	f := func(keys []string, values []string) bool {
		m := NewWithShards(10)
		ref := map[string]string{}
		for i, k := range keys {
			v := "v"
			if i < len(values) {
				v = values[i]
			}
			m.Set(k, v)
			ref[k] = v
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := m.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Snapshot moves exactly the active contents.
func TestQuickSnapshotMoves(t *testing.T) {
	f := func(keys []string) bool {
		a, b := NewWithShards(8), NewWithShards(8)
		ref := map[string]bool{}
		for _, k := range keys {
			a.Set(k, "x")
			ref[k] = true
		}
		a.Snapshot(b)
		if a.Len() != 0 || b.Len() != len(ref) {
			return false
		}
		for k := range ref {
			if !b.Has(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSet(b *testing.B) {
	m := NewWithShards(32)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("198.51.%d.%d", i/256, i%256)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Set(keys[i&1023], "cdn.example.com")
	}
}

func BenchmarkGetParallel(b *testing.B) {
	m := NewWithShards(32)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("198.51.%d.%d", i/256, i%256)
		m.Set(keys[i], "cdn.example.com")
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.Get(keys[i&1023])
			i++
		}
	})
}

func TestGetBytesFindsStringKeys(t *testing.T) {
	m := NewWithShards(8)
	m.Set("198.51.100.7", "cdn.example")
	if v, ok := m.GetBytes([]byte("198.51.100.7")); !ok || v != "cdn.example" {
		t.Fatalf("GetBytes = %q, %v", v, ok)
	}
	if _, ok := m.GetBytes([]byte("198.51.100.8")); ok {
		t.Fatal("GetBytes found absent key")
	}
	// Hash equivalence: byte and string forms must agree, or shard
	// selection would diverge between fills and lookups.
	if Hash("198.51.100.7") != HashBytes([]byte("198.51.100.7")) {
		t.Fatal("Hash and HashBytes disagree")
	}
}

func TestSetBytesHashRoundTrip(t *testing.T) {
	m := NewWithShards(8)
	key := []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 198, 51, 100, 7}
	h := HashBytes(key)
	m.SetBytesHash(h, key, "svc.example")
	if v, ok := m.GetBytesHash(h, key); !ok || v != "svc.example" {
		t.Fatalf("GetBytesHash = %q, %v", v, ok)
	}
	// The map must have copied the key: mutating the caller's buffer must
	// not corrupt the stored entry.
	key[15] = 9
	h2 := HashBytes(key)
	if _, ok := m.GetBytesHash(h2, key); ok {
		t.Fatal("mutated key still matches")
	}
	key[15] = 7
	if v, ok := m.GetBytesHash(h, key); !ok || v != "svc.example" {
		t.Fatalf("original key lost after caller mutation: %q, %v", v, ok)
	}
}

func TestEmptyTracksEntryCount(t *testing.T) {
	m := NewWithShards(4)
	if !m.Empty() {
		t.Fatal("fresh map not empty")
	}
	m.Set("a", "1")
	m.Set("a", "2") // replace: still one entry
	m.Set("b", "3")
	if m.Empty() {
		t.Fatal("map with entries reports empty")
	}
	m.Remove("a")
	m.Remove("a") // absent: no double decrement
	m.Remove("b")
	if !m.Empty() {
		t.Fatal("drained map not empty")
	}
	m.SetIfAbsent("c", "4")
	m.SetIfAbsent("c", "5")
	if m.Empty() {
		t.Fatal("SetIfAbsent not counted")
	}
	m.Clear()
	if !m.Empty() {
		t.Fatal("cleared map not empty")
	}
	m.Set("d", "6")
	m.Set("e", "7")
	if n := m.RemoveIf(func(k, _ string, _ int64) bool { return k == "d" }); n != 1 {
		t.Fatalf("RemoveIf = %d", n)
	}
	if m.Empty() {
		t.Fatal("RemoveIf over-decremented")
	}
	m.RemoveIf(func(string, string, int64) bool { return true })
	if !m.Empty() {
		t.Fatal("full RemoveIf left count")
	}
}

func TestEmptyAcrossSnapshot(t *testing.T) {
	src, dst := NewWithShards(4), NewWithShards(4)
	src.Set("a", "1")
	src.Set("b", "2")
	dst.Set("stale", "x")
	src.Snapshot(dst)
	if !src.Empty() {
		t.Fatal("source not empty after snapshot")
	}
	if dst.Empty() {
		t.Fatal("dest empty after snapshot")
	}
	if dst.Len() != 2 {
		t.Fatalf("dst.Len = %d", dst.Len())
	}
	// Mismatched shard counts take the copy path; counts must still track.
	src2, dst2 := NewWithShards(4), NewWithShards(8)
	src2.Set("c", "3")
	src2.Snapshot(dst2)
	if !src2.Empty() || dst2.Empty() {
		t.Fatalf("copy-path snapshot counts wrong: src empty=%v dst empty=%v",
			src2.Empty(), dst2.Empty())
	}
}

// --- typed expiry entries and batched inserts (fill-path PR) ---

func TestExpireRoundTrip(t *testing.T) {
	m := New()
	h := Hash("k")
	m.SetHashExpire(h, "k", "v", 12345)
	v, exp, ok := m.GetHashExpire(h, "k")
	if !ok || v != "v" || exp != 12345 {
		t.Fatalf("GetHashExpire = %q, %d, %v", v, exp, ok)
	}
	// Plain sets store exp 0 ("never expires").
	m.SetHash(h, "k", "v2")
	if _, exp, _ := m.GetHashExpire(h, "k"); exp != 0 {
		t.Fatalf("plain SetHash left exp %d, want 0", exp)
	}
	// Byte keys of lengths other than 16 share the string key space.
	key := []byte("bk")
	bh := HashBytes(key)
	m.SetBytesHashExpire(bh, key, "bv", 77)
	if v, exp, ok := m.GetBytesHashExpire(bh, key); !ok || v != "bv" || exp != 77 {
		t.Fatalf("GetBytesHashExpire = %q, %d, %v", v, exp, ok)
	}
	if v, exp, ok := m.GetHashExpire(Hash("bk"), "bk"); !ok || v != "bv" || exp != 77 {
		t.Fatalf("string probe of byte-keyed entry = %q, %d, %v", v, exp, ok)
	}
	// The plain getters still see the value regardless of expiry.
	if v, ok := m.Get("bk"); !ok || v != "bv" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	// 16-byte keys live in the binary key space: visible to the byte-keyed
	// getters, to Len, and to Range/Items (as the raw 16-byte string), but
	// not to the string-keyed getters — the two spaces are separate.
	bin := []byte("0123456789abcdef")
	m.SetBytesHashExpire(HashBytes(bin), bin, "binv", 5)
	if v, exp, ok := m.GetBytesHashExpire(HashBytes(bin), bin); !ok || v != "binv" || exp != 5 {
		t.Fatalf("binary-space get = %q, %d, %v", v, exp, ok)
	}
	if _, ok := m.Get("0123456789abcdef"); ok {
		t.Fatal("string probe crossed into the binary key space")
	}
	if got := m.Items()["0123456789abcdef"]; got != "binv" {
		t.Fatalf("Items missed binary entry: %q", got)
	}
}

func TestRemoveIfSeesExpiry(t *testing.T) {
	m := New()
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		m.SetHashExpire(Hash(k), k, "v", int64(i))
	}
	removed := m.RemoveIf(func(_, _ string, exp int64) bool { return exp < 50 })
	if removed != 50 {
		t.Fatalf("RemoveIf removed %d, want 50", removed)
	}
	if m.Len() != 50 {
		t.Fatalf("Len = %d, want 50", m.Len())
	}
}

func TestSetItems(t *testing.T) {
	for _, shards := range []int{1, 4, 32, 7} {
		m := NewWithShards(shards)
		const n = 500
		items := make([]Item, n)
		keys := make([][]byte, n)
		for i := range items {
			keys[i] = []byte(fmt.Sprintf("key%d", i))
			items[i] = Item{
				Hash:  HashBytes(keys[i]),
				Key:   keys[i],
				Value: fmt.Sprintf("val%d", i%7),
				Exp:   int64(i),
			}
		}
		// Pre-group by shard as the fill workers do; correctness must not
		// depend on it, so also insert an unsorted overlapping batch.
		sort.Slice(items[:n/2], func(a, b int) bool {
			return m.ShardIndex(items[a].Hash) < m.ShardIndex(items[b].Hash)
		})
		m.SetItems(items[:n/2])
		m.SetItems(items[n/4:]) // overlap re-inserts: count must not double
		if m.Len() != n {
			t.Fatalf("shards=%d: Len = %d, want %d", shards, m.Len(), n)
		}
		for i := range items {
			v, exp, ok := m.GetBytesHashExpire(items[i].Hash, items[i].Key)
			if !ok || v != items[i].Value || exp != items[i].Exp {
				t.Fatalf("shards=%d: item %d = %q, %d, %v", shards, i, v, exp, ok)
			}
		}
		// Keys must be copied, never aliased: clobbering the caller's
		// buffers must not corrupt the map.
		for i := range keys {
			for j := range keys[i] {
				keys[i][j] = 'x'
			}
		}
		if v, ok := m.Get("key42"); !ok || v != "val0" {
			t.Fatalf("shards=%d: after clobber Get(key42) = %q, %v", shards, v, ok)
		}
	}
}

func TestShardIndexMatchesShardFor(t *testing.T) {
	for _, shards := range []int{1, 8, 32, 5} {
		m := NewWithShards(shards)
		for i := 0; i < 1000; i++ {
			h := Hash(fmt.Sprintf("k%d", i))
			if got, want := m.shards[m.ShardIndex(h)], m.shardForHash(h); got != want {
				t.Fatalf("shards=%d: ShardIndex(%d) disagrees with shardForHash", shards, h)
			}
		}
	}
}

func TestSnapshotPreservesExpiry(t *testing.T) {
	// Both the same-shard pointer-swap path and the rehash path must carry
	// the typed expiry across rotation.
	for _, dstShards := range []int{DefaultShardCount, 8} {
		src := New()
		dst := NewWithShards(dstShards)
		src.SetHashExpire(Hash("k"), "k", "v", 999)
		src.Snapshot(dst)
		if v, exp, ok := dst.GetHashExpire(Hash("k"), "k"); !ok || v != "v" || exp != 999 {
			t.Fatalf("dstShards=%d: after Snapshot = %q, %d, %v", dstShards, v, exp, ok)
		}
		if src.Len() != 0 {
			t.Fatalf("dstShards=%d: src not drained", dstShards)
		}
	}
}

func TestSetBytesOverwriteDoesNotAliasKey(t *testing.T) {
	// Overwriting through a reused key buffer must reuse the stored key
	// string, never retain the caller's bytes: clobbering the buffer after
	// each put must leave the map intact. (Regression: a plain map
	// assignment through a no-copy string view replaces the stored key's
	// pointer, silently aliasing the buffer.)
	m := New()
	buf := []byte("key-one")
	h := HashBytes(buf)
	m.SetBytesHashExpire(h, buf, "v1", 1)
	m.SetBytesHashExpire(h, buf, "v2", 2) // overwrite via the same buffer
	for i := range buf {
		buf[i] = 'z'
	}
	if v, exp, ok := m.GetHashExpire(Hash("key-one"), "key-one"); !ok || v != "v2" || exp != 2 {
		t.Fatalf("after clobber: %q, %d, %v", v, exp, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestSetBytesOverwriteAllocFree(t *testing.T) {
	m := New()
	key := []byte("16-byte-bin-key!") // binary key space: inline, alloc-free
	h := HashBytes(key)
	m.SetBytesHashExpire(h, key, "v", 7)
	if allocs := testing.AllocsPerRun(100, func() {
		m.SetBytesHashExpire(h, key, "v", 7)
	}); allocs != 0 {
		t.Fatalf("overwrite allocates %v per run, want 0", allocs)
	}
	items := []Item{{Hash: h, Key: key, Value: "v", Exp: 9}}
	if allocs := testing.AllocsPerRun(100, func() {
		m.SetItems(items)
	}); allocs != 0 {
		t.Fatalf("SetItems overwrite allocates %v per run, want 0", allocs)
	}
}

func TestRemoveIfExpired(t *testing.T) {
	m := New()
	// String space and binary space both participate in the sweep.
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("s%d", i)
		m.SetHashExpire(Hash(k), k, "v", int64(i))
		bk := []byte(fmt.Sprintf("bin-key-16bytes%d", i))
		m.SetBytesHashExpire(HashBytes(bk), bk, "v", int64(i))
	}
	// now > exp removes; the boundary entry (exp == now) survives, matching
	// the lookup path.
	removed := m.RemoveIfExpired(5)
	if removed != 10 {
		t.Fatalf("removed = %d, want 10 (5 per key space)", removed)
	}
	if m.Len() != 10 {
		t.Fatalf("Len = %d, want 10", m.Len())
	}
	if _, exp, ok := m.GetHashExpire(Hash("s5"), "s5"); !ok || exp != 5 {
		t.Fatalf("boundary entry s5 = exp %d, ok %v", exp, ok)
	}
	// The sweep itself must not allocate (the exact-TTL hot path).
	if allocs := testing.AllocsPerRun(20, func() { m.RemoveIfExpired(0) }); allocs != 0 {
		t.Fatalf("RemoveIfExpired allocates %v per run, want 0", allocs)
	}
}

func TestRangeExpire(t *testing.T) {
	m := New()
	m.SetHashExpire(Hash("a"), "a", "va", 1)
	m.SetHashExpire(Hash("b"), "b", "vb", 0)
	bk := []byte("16-byte-bin-key!")
	m.SetBytesHashExpire(HashBytes(bk), bk, "vbin", 7)

	got := map[string]int64{}
	m.RangeExpire(func(key, value string, exp int64) bool {
		got[key+"="+value] = exp
		return true
	})
	want := map[string]int64{"a=va": 1, "b=vb": 0, "16-byte-bin-key!=vbin": 7}
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
	for k, exp := range want {
		if got[k] != exp {
			t.Fatalf("entry %s: exp %d, want %d", k, got[k], exp)
		}
	}

	// Early termination: fn returning false stops the walk.
	visited := 0
	m.RangeExpire(func(key, value string, exp int64) bool {
		visited++
		return false
	})
	if visited != 1 {
		t.Fatalf("visited %d entries after false, want 1", visited)
	}
}

// TestAppendShard checks that iterating every shard of each key space
// reconstructs the exact map contents, that the two key spaces stay
// separate, and that returned keys are copies, not aliases.
func TestAppendShard(t *testing.T) {
	m := NewWithShards(8)
	strs := map[string]int64{}
	bins := map[string]int64{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("string-key-%03d", i)
		m.SetHashExpire(Hash(k), k, "sv", int64(i))
		strs[k] = int64(i)
		bk := []byte(fmt.Sprintf("bin-key-16byt%03d", i))
		if len(bk) != 16 {
			t.Fatalf("test key %q not 16 bytes", bk)
		}
		m.SetBytesHashExpire(HashBytes(bk), bk, "bv", int64(i))
		bins[string(bk)] = int64(i)
	}
	// A 16-byte *string* key must appear in the Strings space, never Binary.
	collide := "16-byte-str-key!"
	m.SetHashExpire(Hash(collide), collide, "collide", -1)
	strs[collide] = -1

	var items []Item
	gotStr := map[string]int64{}
	for sh := 0; sh < m.ShardCount(); sh++ {
		items = m.AppendShard(sh, Strings, items[:0])
		for _, it := range items {
			if it.Value != "sv" && it.Value != "collide" {
				t.Fatalf("string space holds %q", it.Value)
			}
			gotStr[string(it.Key)] = it.Exp
		}
	}
	gotBin := map[string]int64{}
	for sh := 0; sh < m.ShardCount(); sh++ {
		items = m.AppendShard(sh, Binary, items[:0])
		for _, it := range items {
			if len(it.Key) != 16 || it.Value != "bv" {
				t.Fatalf("binary space holds %d-byte key %q value %q", len(it.Key), it.Key, it.Value)
			}
			// Returned keys must be private copies.
			it.Key[0] ^= 0xff
			gotBin[string(append([]byte{it.Key[0] ^ 0xff}, it.Key[1:]...))] = it.Exp
		}
	}
	if len(gotStr) != len(strs) {
		t.Fatalf("string space: %d keys, want %d", len(gotStr), len(strs))
	}
	for k, exp := range strs {
		if gotStr[k] != exp {
			t.Fatalf("string key %q: exp %d, want %d", k, gotStr[k], exp)
		}
	}
	if len(gotBin) != len(bins) {
		t.Fatalf("binary space: %d keys, want %d", len(gotBin), len(bins))
	}
	for k, exp := range bins {
		if gotBin[k] != exp {
			t.Fatalf("binary key %q: exp %d, want %d", k, gotBin[k], exp)
		}
	}
	// Clobbering returned keys must not have damaged the map.
	probe := []byte(fmt.Sprintf("bin-key-16byt%03d", 0))
	if v, ok := m.GetBytesHash(HashBytes(probe), probe); !ok || v != "bv" {
		t.Fatalf("map damaged by key mutation: %q, %v", v, ok)
	}
}

// TestAppendShardConcurrent races shard iteration against writers — the
// snapshot writer's lock-striping contract.
func TestAppendShardConcurrent(t *testing.T) {
	m := NewWithShards(8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			bk := []byte(fmt.Sprintf("bin-key-16byt%03d", i%500))
			m.SetBytesHashExpire(HashBytes(bk), bk, "v", int64(i))
			i++
		}
	}()
	var items []Item
	for round := 0; round < 200; round++ {
		for sh := 0; sh < m.ShardCount(); sh++ {
			items = m.AppendShard(sh, Binary, items[:0])
			for _, it := range items {
				if len(it.Key) != 16 || it.Value != "v" {
					t.Errorf("torn item: %d-byte key, value %q", len(it.Key), it.Value)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}
