package cmap

import "encoding/binary"

// table is the open-addressed hash table behind a shard's binary key space:
// 16-byte keys with their (value, expiry) stored inline in the slot array.
// The Go map it replaces spends its probe budget on bucket pointers and
// tophash recomputation for array keys; this table is shaped for exactly one
// key form and the store's access mix (overwrite-heavy fill, read-heavy
// lookup, periodic whole-table sweeps):
//
//   - linear probing over a power-of-two slot array, so a probe chain is one
//     cache-line walk with no pointer chasing;
//   - a separate one-byte control array (0 = empty, else a 7-bit hash
//     fingerprint with the top bit set) keeps misses and fingerprint
//     rejections off the 40-byte slot array entirely;
//   - deletion is backward-shift, not tombstones: probe chains stay exactly
//     as long as the live entries need, so expiry sweeps — which delete in
//     bulk — never degrade later probes the way tombstone accumulation
//     would, and sweeps fold into a single pass over the slot array;
//   - growth doubles the array at 13/16 occupancy and rehashes in place of
//     allocation churn: slots are plain values, so a rehash is a memmove per
//     entry with no per-entry allocation.
//
// The zero value is an empty table owning no memory (a cleared shard holds
// no slot array at all); first insert allocates the minimum size.
type table struct {
	slots []oaSlot
	ctrl  []uint8
	used  int
	limit int // grow when used reaches this (13/16 of len)
}

// oaSlot is one open-addressed slot: the full key plus the entry payload,
// inline. 40 bytes on 64-bit platforms — slot i and its neighbours in a
// probe chain share cache lines.
type oaSlot struct {
	key [16]byte
	v   string
	exp int64
}

const oaMinSize = 8

// oaHash mixes the two 8-byte words of a key into a 64-bit hash. The shard
// hash (fnv32) already chose which table this key lands in; this hash only
// has to spread probe positions within one table, so a multiply–xorshift
// mix of the raw words is enough and costs two loads and three multiplies —
// far less than rehashing 16 bytes byte-at-a-time on every probe.
func oaHash(k *[16]byte) uint64 {
	a := binary.LittleEndian.Uint64(k[0:8])
	b := binary.LittleEndian.Uint64(k[8:16])
	h := (a ^ 0x9E3779B97F4A7C15) * 0xBF58476D1CE4E5B9
	h ^= (b ^ 0x94D049BB133111EB) * 0xD6E8FEB86659FD93
	h ^= h >> 32
	h *= 0x2545F4914F6CDD1D
	h ^= h >> 29
	return h
}

// oaFingerprint derives the control byte for a hash: the top 7 bits, with
// the high bit set so it can never equal the empty marker (0).
func oaFingerprint(h uint64) uint8 { return uint8(h>>57) | 0x80 }

// get returns the entry stored under k.
func (t *table) get(k *[16]byte) (string, int64, bool) {
	if t.used == 0 {
		return "", 0, false
	}
	mask := uint64(len(t.slots) - 1)
	h := oaHash(k)
	fp := oaFingerprint(h)
	for i := h & mask; ; i = (i + 1) & mask {
		c := t.ctrl[i]
		if c == 0 {
			return "", 0, false
		}
		if c == fp && t.slots[i].key == *k {
			s := &t.slots[i]
			return s.v, s.exp, true
		}
	}
}

// set stores (v, exp) under k, reporting whether a new entry was inserted
// (false = overwrite). Neither path allocates once the slot array exists.
func (t *table) set(k *[16]byte, v string, exp int64) bool {
	if t.used >= t.limit {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	h := oaHash(k)
	fp := oaFingerprint(h)
	for i := h & mask; ; i = (i + 1) & mask {
		c := t.ctrl[i]
		if c == 0 {
			t.ctrl[i] = fp
			t.slots[i] = oaSlot{key: *k, v: v, exp: exp}
			t.used++
			return true
		}
		if c == fp && t.slots[i].key == *k {
			s := &t.slots[i]
			s.v = v
			s.exp = exp
			return false
		}
	}
}

// grow doubles the slot array (or allocates the minimum) and reinserts every
// live entry. Entries are plain values; no per-entry allocation.
func (t *table) grow() {
	oldSlots, oldCtrl := t.slots, t.ctrl
	n := oaMinSize
	if len(oldSlots) > 0 {
		n = len(oldSlots) * 2
	}
	t.slots = make([]oaSlot, n)
	t.ctrl = make([]uint8, n)
	t.limit = n - n>>2 + n>>4 // 13/16
	mask := uint64(n - 1)
	for i := range oldCtrl {
		if oldCtrl[i] == 0 {
			continue
		}
		s := &oldSlots[i]
		h := oaHash(&s.key)
		j := h & mask
		for t.ctrl[j] != 0 {
			j = (j + 1) & mask
		}
		t.ctrl[j] = oaFingerprint(h)
		t.slots[j] = *s
	}
}

// deleteAt removes the entry in slot i and backward-shifts the tail of its
// probe chain so no tombstone is left behind: every following entry whose
// home position precedes the hole (cyclically) moves back into it. Probe
// chains therefore always terminate at a genuinely empty slot.
func (t *table) deleteAt(i uint64) {
	mask := uint64(len(t.slots) - 1)
	t.used--
	for {
		t.ctrl[i] = 0
		t.slots[i] = oaSlot{}
		j := i
		for {
			j = (j + 1) & mask
			if t.ctrl[j] == 0 {
				return
			}
			home := oaHash(&t.slots[j].key) & mask
			// Slot j may move into the hole at i only if its home does not
			// lie cyclically within (i, j] — otherwise the move would place
			// it before its own probe chain starts.
			var inRange bool
			if i < j {
				inRange = i < home && home <= j
			} else {
				inRange = i < home || home <= j
			}
			if !inRange {
				t.ctrl[i] = t.ctrl[j]
				t.slots[i] = t.slots[j]
				i = j
				break
			}
		}
	}
}

// remove deletes k, reporting whether it was present.
func (t *table) remove(k *[16]byte) bool {
	if t.used == 0 {
		return false
	}
	mask := uint64(len(t.slots) - 1)
	h := oaHash(k)
	fp := oaFingerprint(h)
	for i := h & mask; ; i = (i + 1) & mask {
		c := t.ctrl[i]
		if c == 0 {
			return false
		}
		if c == fp && t.slots[i].key == *k {
			t.deleteAt(i)
			return true
		}
	}
}

// removeIf deletes every entry for which pred returns true and returns how
// many were removed. The sweep is one pass over the slot array with
// backward-shift deletion folded in: after a delete the same index is
// re-examined, because the shift may have moved a later chain member into
// it. A wrapped chain can re-present an already-visited entry; pred must
// therefore tolerate being asked about an entry twice (every caller's
// predicate is a pure function of the entry, so this costs a duplicate
// check, never a wrong delete).
func (t *table) removeIf(pred func(s *oaSlot) bool) int {
	removed := 0
	for i := 0; i < len(t.ctrl); i++ {
		if t.ctrl[i] == 0 {
			continue
		}
		if pred(&t.slots[i]) {
			t.deleteAt(uint64(i))
			removed++
			i-- // re-examine: the shift may have refilled this slot
		}
	}
	return removed
}

// iterate calls fn for every live slot until fn returns false. fn must not
// mutate the table.
func (t *table) iterate(fn func(s *oaSlot) bool) bool {
	for i := range t.ctrl {
		if t.ctrl[i] != 0 && !fn(&t.slots[i]) {
			return false
		}
	}
	return true
}

// reset drops the table's memory, returning it to the zero state. Used by
// Clear and Snapshot so a rotated-away generation's slot array becomes
// collectible at once.
func (t *table) reset() { *t = table{} }

// len returns the number of live entries.
func (t *table) len() int { return t.used }
