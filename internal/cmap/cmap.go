// Package cmap provides a sharded, thread-safe string-keyed hash map.
//
// It is a standard-library-only replacement for the orcaman/concurrent-map
// module that the FlowDNS paper uses for its internal DNS storage. The map
// is divided into a fixed number of shards, each guarded by its own
// sync.RWMutex, so that concurrent readers and writers touching different
// shards never contend. FlowDNS performs millions of Get/Set operations per
// second across many goroutines; per-shard locking is the property the paper
// calls out as the enabler of "high-performance concurrent reads and writes
// by sharding the map".
package cmap

import (
	"sync"
	"sync/atomic"
)

// DefaultShardCount is the number of shards used by New. 32 matches the
// upstream concurrent-map default.
const DefaultShardCount = 32

// Map is a sharded concurrent map from string keys to string values.
// FlowDNS stores DNS answer→query mappings, so both sides are strings;
// keeping the value type concrete avoids interface boxing on the hot path.
//
// The zero value is not usable; construct with New or NewWithShards.
type Map struct {
	shards []*shard
	mask   uint32 // len(shards)-1 when power of two; otherwise 0 and mod is used

	// count tracks the total number of entries. It is updated while the
	// owning shard's lock is held but read without any lock by Empty; a
	// reader racing a concurrent insert may briefly observe the
	// pre-insert value, which callers using Empty as a probe-skipping
	// fast path must tolerate (the probe they skip would have raced the
	// same insert anyway).
	count atomic.Int64
}

type shard struct {
	mu sync.RWMutex
	m  map[string]string
}

// New returns a Map with DefaultShardCount shards.
func New() *Map { return NewWithShards(DefaultShardCount) }

// NewWithShards returns a Map with n shards. n must be >= 1; values that are
// not powers of two are supported but pay a modulo on every access.
func NewWithShards(n int) *Map {
	if n < 1 {
		n = 1
	}
	m := &Map{shards: make([]*shard, n)}
	if n&(n-1) == 0 {
		m.mask = uint32(n - 1)
	}
	for i := range m.shards {
		m.shards[i] = &shard{m: make(map[string]string)}
	}
	return m
}

// fnv32 is the 32-bit FNV-1a hash, inlined to avoid the hash/fnv
// allocation of a hash.Hash32 per call. One generic body serves string
// and byte-slice keys, so the two forms can never drift apart.
func fnv32[T ~string | ~[]byte](key T) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// Hash returns the hash this map family uses for shard selection. Callers
// that address several maps with the same key (the correlator's
// active/inactive/long generations) compute it once and pass it to the
// *Hash method variants, paying for one hash instead of one per probe.
func Hash(key string) uint32 { return fnv32(key) }

// HashBytes is Hash for a byte-slice key. It never retains key and returns
// the same value Hash returns for the equivalent string, so byte-keyed
// lookups find entries stored with string keys.
func HashBytes(key []byte) uint32 { return fnv32(key) }

func (m *Map) shardFor(key string) *shard {
	return m.shardForHash(fnv32(key))
}

func (m *Map) shardForHash(h uint32) *shard {
	// Fold the high bits in before masking: callers above (the
	// correlator's store) carve lane and split indices out of the low
	// bits of this same hash, so every key reaching one map shares those
	// low bits. Without the fold a map in an 8-lane store would use only
	// gcd(8,32)⁻¹ of its shards.
	h ^= h >> 16
	if m.mask != 0 || len(m.shards) == 1 {
		return m.shards[h&m.mask]
	}
	return m.shards[h%uint32(len(m.shards))]
}

// Set stores value under key, replacing any previous value.
func (m *Map) Set(key, value string) { m.SetHash(fnv32(key), key, value) }

// SetHash is Set with a caller-supplied Hash(key), sparing the recompute
// when the caller already hashed the key for split or lane selection.
func (m *Map) SetHash(h uint32, key, value string) {
	s := m.shardForHash(h)
	s.mu.Lock()
	before := len(s.m)
	s.m[key] = value
	if len(s.m) != before {
		m.count.Add(1)
	}
	s.mu.Unlock()
}

// SetBytesHash stores value under the string form of key. The key bytes are
// copied into a fresh string only when the entry is inserted or replaced —
// the unavoidable allocation of storing a new key — never borrowed.
func (m *Map) SetBytesHash(h uint32, key []byte, value string) {
	s := m.shardForHash(h)
	s.mu.Lock()
	before := len(s.m)
	s.m[string(key)] = value
	if len(s.m) != before {
		m.count.Add(1)
	}
	s.mu.Unlock()
}

// SetIfAbsent stores value under key only if the key is not already present.
// It reports whether the value was stored.
func (m *Map) SetIfAbsent(key, value string) bool {
	s := m.shardFor(key)
	s.mu.Lock()
	_, ok := s.m[key]
	if !ok {
		s.m[key] = value
		m.count.Add(1)
	}
	s.mu.Unlock()
	return !ok
}

// Get returns the value stored under key and whether it was present.
func (m *Map) Get(key string) (string, bool) {
	return m.GetHash(fnv32(key), key)
}

// GetHash is Get with a caller-supplied Hash(key).
func (m *Map) GetHash(h uint32, key string) (string, bool) {
	s := m.shardForHash(h)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	return v, ok
}

// GetBytes looks key up without converting it to a string: the compiler's
// map-index-by-converted-byte-slice optimization makes the probe
// allocation-free, which is what keeps the correlator's LookUp hit path at
// zero allocations per flow.
func (m *Map) GetBytes(key []byte) (string, bool) {
	return m.GetBytesHash(HashBytes(key), key)
}

// GetBytesHash is GetBytes with a caller-supplied HashBytes(key).
func (m *Map) GetBytesHash(h uint32, key []byte) (string, bool) {
	s := m.shardForHash(h)
	s.mu.RLock()
	v, ok := s.m[string(key)]
	s.mu.RUnlock()
	return v, ok
}

// Empty reports whether the map holds no entries, without taking any lock.
// It is a fast path for skipping probes of drained generations; a reader
// racing a concurrent insert may see true until the insert's count update
// lands, exactly as a probe racing that insert could miss the entry.
func (m *Map) Empty() bool { return m.count.Load() == 0 }

// Has reports whether key is present.
func (m *Map) Has(key string) bool {
	_, ok := m.Get(key)
	return ok
}

// Remove deletes key. It reports whether the key was present.
func (m *Map) Remove(key string) bool {
	s := m.shardFor(key)
	s.mu.Lock()
	_, ok := s.m[key]
	delete(s.m, key)
	if ok {
		m.count.Add(-1)
	}
	s.mu.Unlock()
	return ok
}

// Len returns the total number of entries across all shards. The result is a
// point-in-time aggregate: concurrent mutations may be partially reflected.
func (m *Map) Len() int {
	n := 0
	for _, s := range m.shards {
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Clear removes all entries. Fresh inner maps are allocated so the memory of
// large previous generations becomes collectible immediately; this is the
// operation FlowDNS issues on every clear-up interval.
func (m *Map) Clear() {
	for _, s := range m.shards {
		s.mu.Lock()
		m.count.Add(-int64(len(s.m)))
		s.m = make(map[string]string)
		s.mu.Unlock()
	}
}

// Items returns a copy of the full contents. Used by tests and by buffer
// rotation fallbacks; O(n) and allocates.
func (m *Map) Items() map[string]string {
	out := make(map[string]string, m.Len())
	for _, s := range m.shards {
		s.mu.RLock()
		for k, v := range s.m {
			out[k] = v
		}
		s.mu.RUnlock()
	}
	return out
}

// Range calls fn for every key/value pair until fn returns false. Each shard
// is read-locked while it is being iterated; fn must not call back into the
// same Map's mutating methods for keys in the shard being iterated.
func (m *Map) Range(fn func(key, value string) bool) {
	for _, s := range m.shards {
		s.mu.RLock()
		for k, v := range s.m {
			if !fn(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// RemoveIf deletes every entry for which pred returns true and returns the
// number of removed entries. This is the scan-based expiry primitive the
// exact-TTL anti-benchmark (paper Appendix A.8) relies on; it write-locks
// each shard for the duration of that shard's scan, which is precisely the
// contention the paper observed degrading the system.
func (m *Map) RemoveIf(pred func(key, value string) bool) int {
	removed := 0
	for _, s := range m.shards {
		s.mu.Lock()
		shardRemoved := 0
		for k, v := range s.m {
			if pred(k, v) {
				delete(s.m, k)
				shardRemoved++
			}
		}
		m.count.Add(-int64(shardRemoved))
		removed += shardRemoved
		s.mu.Unlock()
	}
	return removed
}

// ShardCount returns the number of shards.
func (m *Map) ShardCount() int { return len(m.shards) }

// Snapshot atomically (per shard) moves the contents of m into dst and
// clears m. It implements FlowDNS buffer rotation: "copy the contents of the
// active hashmaps into the inactive hashmap and clear up the active
// hashmap". dst's previous contents are discarded first. When both maps have
// the same shard count, inner maps are handed over by pointer swap, making
// rotation O(shards) instead of O(entries).
func (m *Map) Snapshot(dst *Map) {
	if dst == nil {
		return
	}
	if len(dst.shards) == len(m.shards) {
		for i, s := range m.shards {
			d := dst.shards[i]
			s.mu.Lock()
			d.mu.Lock()
			dst.count.Add(int64(len(s.m) - len(d.m)))
			m.count.Add(-int64(len(s.m)))
			d.m = s.m
			s.m = make(map[string]string)
			d.mu.Unlock()
			s.mu.Unlock()
		}
		return
	}
	dst.Clear()
	for _, s := range m.shards {
		s.mu.Lock()
		for k, v := range s.m {
			dst.Set(k, v)
		}
		m.count.Add(-int64(len(s.m)))
		s.m = make(map[string]string)
		s.mu.Unlock()
	}
}
