// Package cmap provides a sharded, thread-safe string-keyed hash map.
//
// It is a standard-library-only replacement for the orcaman/concurrent-map
// module that the FlowDNS paper uses for its internal DNS storage. The map
// is divided into a fixed number of shards, each guarded by its own
// sync.RWMutex, so that concurrent readers and writers touching different
// shards never contend. FlowDNS performs millions of Get/Set operations per
// second across many goroutines; per-shard locking is the property the paper
// calls out as the enabler of "high-performance concurrent reads and writes
// by sharding the map".
package cmap

import (
	"sync"
	"sync/atomic"
)

// DefaultShardCount is the number of shards used by New. 32 matches the
// upstream concurrent-map default.
const DefaultShardCount = 32

// Map is a sharded concurrent map from string keys to typed entries: a
// string value plus an optional expiry instant. FlowDNS stores DNS
// answer→query mappings, so both sides are strings; keeping the value type
// concrete avoids interface boxing on the hot path. The expiry rides inline
// in the map bucket — exact-TTL mode stores it with one field write instead
// of the former "value\x00unixNano" string concatenation, and reads it back
// with one field load instead of a strconv parse per hit.
//
// The zero value is not usable; construct with New or NewWithShards.
type Map struct {
	shards []*shard
	mask   uint32 // len(shards)-1 when power of two; otherwise 0 and mod is used

	// count tracks the total number of entries. It is updated while the
	// owning shard's lock is held but read without any lock by Empty; a
	// reader racing a concurrent insert may briefly observe the
	// pre-insert value, which callers using Empty as a probe-skipping
	// fast path must tolerate (the probe they skip would have raced the
	// same insert anyway).
	count atomic.Int64
}

type shard struct {
	mu sync.RWMutex
	m  map[string]entry
	// mb is the binary key space: 16-byte keys (the correlator's canonical
	// IP form) live in a purpose-built open-addressed table (oatable.go)
	// with the (value, expiry) payload inline in the slot array, so both
	// inserting and overwriting are a short linear probe with zero
	// allocations — the property the allocation-free FillUp path rests on —
	// and expiry sweeps are a single tombstone-free pass. Binary and string
	// keys are separate namespaces: a 16-byte key never matches a string
	// entry (the correlator's IP-NAME store is exclusively binary-keyed,
	// its NAME-CNAME store exclusively string-keyed).
	mb table
}

// ipKey is the binary key type: the 16-byte canonical address form.
type ipKey = [16]byte

// entry is the typed map value: the stored string plus an optional expiry
// (UnixNano; 0 = never expires). Storing the pair inline avoids the alloc
// of encoding the expiry into the value string on every put and the parse
// of decoding it on every hit.
type entry struct {
	v   string
	exp int64
}

// Item is one record of a batched insert (SetItems): a pre-computed Hash,
// the key bytes (copied only on insert, never retained), the value, and an
// optional expiry (UnixNano; 0 = none).
type Item struct {
	Hash  uint32
	Key   []byte
	Value string
	Exp   int64
}

// New returns a Map with DefaultShardCount shards.
func New() *Map { return NewWithShards(DefaultShardCount) }

// NewWithShards returns a Map with n shards. n must be >= 1; values that are
// not powers of two are supported but pay a modulo on every access.
func NewWithShards(n int) *Map {
	if n < 1 {
		n = 1
	}
	m := &Map{shards: make([]*shard, n)}
	if n&(n-1) == 0 {
		m.mask = uint32(n - 1)
	}
	for i := range m.shards {
		m.shards[i] = &shard{m: make(map[string]entry)}
	}
	return m
}

// fnv32 is the 32-bit FNV-1a hash, inlined to avoid the hash/fnv
// allocation of a hash.Hash32 per call. One generic body serves string
// and byte-slice keys, so the two forms can never drift apart.
func fnv32[T ~string | ~[]byte](key T) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// Hash returns the hash this map family uses for shard selection. Callers
// that address several maps with the same key (the correlator's
// active/inactive/long generations) compute it once and pass it to the
// *Hash method variants, paying for one hash instead of one per probe.
func Hash(key string) uint32 { return fnv32(key) }

// HashBytes is Hash for a byte-slice key. It never retains key and returns
// the same value Hash returns for the equivalent string, so byte-keyed
// lookups find entries stored with string keys.
func HashBytes(key []byte) uint32 { return fnv32(key) }

func (m *Map) shardFor(key string) *shard {
	return m.shardForHash(fnv32(key))
}

func (m *Map) shardForHash(h uint32) *shard {
	// Fold the high bits in before masking: callers above (the
	// correlator's store) carve lane and split indices out of the low
	// bits of this same hash, so every key reaching one map shares those
	// low bits. Without the fold a map in an 8-lane store would use only
	// gcd(8,32)⁻¹ of its shards.
	h ^= h >> 16
	if m.mask != 0 || len(m.shards) == 1 {
		return m.shards[h&m.mask]
	}
	return m.shards[h%uint32(len(m.shards))]
}

// Set stores value under key, replacing any previous value.
func (m *Map) Set(key, value string) { m.SetHash(fnv32(key), key, value) }

// SetHash is Set with a caller-supplied Hash(key), sparing the recompute
// when the caller already hashed the key for split or lane selection.
func (m *Map) SetHash(h uint32, key, value string) { m.SetHashExpire(h, key, value, 0) }

// SetHashExpire is SetHash with an expiry instant (UnixNano; 0 = never).
// The expiry is stored typed alongside the value — no encoding allocation.
func (m *Map) SetHashExpire(h uint32, key, value string, exp int64) {
	s := m.shardForHash(h)
	s.mu.Lock()
	before := len(s.m)
	s.m[key] = entry{v: value, exp: exp}
	if len(s.m) != before {
		m.count.Add(1)
	}
	s.mu.Unlock()
}

// SetBytesHash stores value under key in the binary key space (16-byte
// keys) or, for other lengths, under the string form of key. Binary keys
// are stored inline — no allocation on insert or overwrite; string-space
// inserts copy the bytes into a fresh key string.
func (m *Map) SetBytesHash(h uint32, key []byte, value string) {
	m.SetBytesHashExpire(h, key, value, 0)
}

// SetBytesHashExpire is SetBytesHash with an expiry instant (UnixNano;
// 0 = never).
func (m *Map) SetBytesHashExpire(h uint32, key []byte, value string, exp int64) {
	s := m.shardForHash(h)
	s.mu.Lock()
	setBytesLocked(s, key, value, exp, &m.count)
	s.mu.Unlock()
}

// setBytesLocked stores (value, exp) under key with the owning shard's
// lock held: 16-byte keys go to the binary key space as one inline map
// assignment (zero allocations, whether inserting or overwriting — the
// property the allocation-free FillUp path rests on), anything else to the
// string space.
func setBytesLocked(s *shard, key []byte, value string, exp int64, count *atomic.Int64) {
	if len(key) == 16 {
		if s.mb.set((*[16]byte)(key), value, exp) {
			count.Add(1)
		}
		return
	}
	before := len(s.m)
	s.m[string(key)] = entry{v: value, exp: exp}
	if len(s.m) != before {
		count.Add(1)
	}
}

// ShardIndex returns the shard a hash maps to. Batch callers (SetItems)
// pre-group their items by this index so that every group is inserted under
// one lock acquisition.
func (m *Map) ShardIndex(h uint32) int {
	h ^= h >> 16
	if m.mask != 0 || len(m.shards) == 1 {
		return int(h & m.mask)
	}
	return int(h % uint32(len(m.shards)))
}

// SetItems performs a batched insert: consecutive items that map to the
// same shard are stored under a single lock acquisition. Callers that
// pre-sort items by ShardIndex(Hash) get one acquisition per touched shard
// per batch — the FillUp lane workers' amortized put path. Key bytes are
// copied only on first insert (see setBytesLocked), never retained.
func (m *Map) SetItems(items []Item) {
	for i := 0; i < len(items); {
		s := m.shardForHash(items[i].Hash)
		s.mu.Lock()
		j := i
		for ; j < len(items) && m.shardForHash(items[j].Hash) == s; j++ {
			setBytesLocked(s, items[j].Key, items[j].Value, items[j].Exp, &m.count)
		}
		s.mu.Unlock()
		i = j
	}
}

// SetIfAbsent stores value under key only if the key is not already present.
// It reports whether the value was stored.
func (m *Map) SetIfAbsent(key, value string) bool {
	s := m.shardFor(key)
	s.mu.Lock()
	_, ok := s.m[key]
	if !ok {
		s.m[key] = entry{v: value}
		m.count.Add(1)
	}
	s.mu.Unlock()
	return !ok
}

// Get returns the value stored under key and whether it was present.
func (m *Map) Get(key string) (string, bool) {
	return m.GetHash(fnv32(key), key)
}

// GetHash is Get with a caller-supplied Hash(key).
func (m *Map) GetHash(h uint32, key string) (string, bool) {
	s := m.shardForHash(h)
	s.mu.RLock()
	e, ok := s.m[key]
	s.mu.RUnlock()
	return e.v, ok
}

// GetHashExpire is GetHash returning the stored expiry as well (UnixNano;
// 0 = never expires). The expiry arrives as one typed field load — no
// per-hit string split or strconv parse.
func (m *Map) GetHashExpire(h uint32, key string) (string, int64, bool) {
	s := m.shardForHash(h)
	s.mu.RLock()
	e, ok := s.m[key]
	s.mu.RUnlock()
	return e.v, e.exp, ok
}

// GetBytes looks key up without any allocation: 16-byte keys probe the
// binary key space (an inline array probe — what keeps the correlator's
// LookUp hit path at zero allocations per flow), other lengths probe the
// string space through the compiler's map-index-by-converted-byte-slice
// optimization.
func (m *Map) GetBytes(key []byte) (string, bool) {
	return m.GetBytesHash(HashBytes(key), key)
}

// GetBytesHash is GetBytes with a caller-supplied HashBytes(key).
func (m *Map) GetBytesHash(h uint32, key []byte) (string, bool) {
	s := m.shardForHash(h)
	if len(key) == 16 {
		s.mu.RLock()
		v, _, ok := s.mb.get((*[16]byte)(key))
		s.mu.RUnlock()
		return v, ok
	}
	s.mu.RLock()
	e, ok := s.m[string(key)]
	s.mu.RUnlock()
	return e.v, ok
}

// GetBytesHashExpire is GetBytesHash returning the stored expiry as well
// (UnixNano; 0 = never expires) — the exact-TTL Active-generation probe.
func (m *Map) GetBytesHashExpire(h uint32, key []byte) (string, int64, bool) {
	s := m.shardForHash(h)
	if len(key) == 16 {
		s.mu.RLock()
		v, exp, ok := s.mb.get((*[16]byte)(key))
		s.mu.RUnlock()
		return v, exp, ok
	}
	s.mu.RLock()
	e, ok := s.m[string(key)]
	s.mu.RUnlock()
	return e.v, e.exp, ok
}

// Empty reports whether the map holds no entries, without taking any lock.
// It is a fast path for skipping probes of drained generations; a reader
// racing a concurrent insert may see true until the insert's count update
// lands, exactly as a probe racing that insert could miss the entry.
func (m *Map) Empty() bool { return m.count.Load() == 0 }

// Has reports whether key is present.
func (m *Map) Has(key string) bool {
	_, ok := m.Get(key)
	return ok
}

// Remove deletes key. It reports whether the key was present.
func (m *Map) Remove(key string) bool {
	s := m.shardFor(key)
	s.mu.Lock()
	_, ok := s.m[key]
	delete(s.m, key)
	if ok {
		m.count.Add(-1)
	}
	s.mu.Unlock()
	return ok
}

// Len returns the total number of entries across all shards. The result is a
// point-in-time aggregate: concurrent mutations may be partially reflected.
func (m *Map) Len() int {
	n := 0
	for _, s := range m.shards {
		s.mu.RLock()
		n += len(s.m) + s.mb.len()
		s.mu.RUnlock()
	}
	return n
}

// Clear removes all entries. Fresh inner maps are allocated so the memory of
// large previous generations becomes collectible immediately; this is the
// operation FlowDNS issues on every clear-up interval.
func (m *Map) Clear() {
	for _, s := range m.shards {
		s.mu.Lock()
		m.count.Add(-int64(len(s.m) + s.mb.len()))
		s.m = make(map[string]entry)
		s.mb.reset()
		s.mu.Unlock()
	}
}

// Items returns a copy of the full contents. Binary keys appear as the raw
// 16-byte string form of their key. Used by tests and by buffer rotation
// fallbacks; O(n) and allocates.
func (m *Map) Items() map[string]string {
	out := make(map[string]string, m.Len())
	for _, s := range m.shards {
		s.mu.RLock()
		for k, e := range s.m {
			out[k] = e.v
		}
		s.mb.iterate(func(sl *oaSlot) bool {
			out[string(sl.key[:])] = sl.v
			return true
		})
		s.mu.RUnlock()
	}
	return out
}

// Range calls fn for every key/value pair until fn returns false. Each shard
// is read-locked while it is being iterated; fn must not call back into the
// same Map's mutating methods for keys in the shard being iterated.
// Binary-space entries are visited too, their keys rendered as the raw
// 16-byte string form.
func (m *Map) Range(fn func(key, value string) bool) {
	for _, s := range m.shards {
		s.mu.RLock()
		for k, e := range s.m {
			if !fn(k, e.v) {
				s.mu.RUnlock()
				return
			}
		}
		if !s.mb.iterate(func(sl *oaSlot) bool { return fn(string(sl.key[:]), sl.v) }) {
			s.mu.RUnlock()
			return
		}
		s.mu.RUnlock()
	}
}

// RangeExpire is Range with the stored expiry: fn receives each entry's
// (key, value, exp) triple — exp in UnixNano, 0 = never expires — until it
// returns false. Shards are read-locked one at a time (lock-striped, like
// Range), so a long iteration never freezes the whole map; fn must not call
// back into the same Map's mutating methods for keys in the shard being
// iterated. Binary-space entries are visited with their keys rendered as
// the raw 16-byte string form.
func (m *Map) RangeExpire(fn func(key, value string, exp int64) bool) {
	for _, s := range m.shards {
		s.mu.RLock()
		for k, e := range s.m {
			if !fn(k, e.v, e.exp) {
				s.mu.RUnlock()
				return
			}
		}
		if !s.mb.iterate(func(sl *oaSlot) bool { return fn(string(sl.key[:]), sl.v, sl.exp) }) {
			s.mu.RUnlock()
			return
		}
		s.mu.RUnlock()
	}
}

// KeySpace selects one of a shard's two key namespaces for AppendShard.
// String and binary keys are separate namespaces (a 16-byte string key and
// a 16-byte binary key are different entries), so an iteration that intends
// to rebuild a map must carry the space alongside the key bytes.
type KeySpace uint8

// The two key namespaces.
const (
	// Strings is the string key space (SetHash and friends).
	Strings KeySpace = iota
	// Binary is the 16-byte binary key space (SetBytesHash with a 16-byte
	// key).
	Binary
)

// AppendShard appends every entry of shard i's chosen key space to dst as
// Items (Hash left zero — the shard-selection hash is the caller's choice
// and must be recomputed on re-insert) and returns the extended slice. Key
// bytes are fresh copies, never aliases of map-internal storage. Only shard
// i is read-locked, and only for the duration of the copy: iterating a map
// shard by shard (the snapshot writer's loop) blocks concurrent writers to
// one stripe at a time instead of freezing the whole map.
func (m *Map) AppendShard(i int, space KeySpace, dst []Item) []Item {
	s := m.shards[i]
	s.mu.RLock()
	defer s.mu.RUnlock()
	if space == Binary {
		s.mb.iterate(func(sl *oaSlot) bool {
			key := sl.key
			dst = append(dst, Item{Key: key[:], Value: sl.v, Exp: sl.exp})
			return true
		})
		return dst
	}
	for k, e := range s.m {
		dst = append(dst, Item{Key: []byte(k), Value: e.v, Exp: e.exp})
	}
	return dst
}

// RemoveIf deletes every entry for which pred returns true and returns the
// number of removed entries. pred receives the stored expiry (UnixNano;
// 0 = none) so the exact-TTL sweep compares two integers per entry instead
// of decoding a string. This is the scan-based expiry primitive the
// exact-TTL anti-benchmark (paper Appendix A.8) relies on; it write-locks
// each shard for the duration of that shard's scan, which is precisely the
// contention the paper observed degrading the system.
func (m *Map) RemoveIf(pred func(key, value string, exp int64) bool) int {
	removed := 0
	var kbuf [16]byte
	for _, s := range m.shards {
		s.mu.Lock()
		shardRemoved := 0
		for k, e := range s.m {
			if pred(k, e.v, e.exp) {
				delete(s.m, k)
				shardRemoved++
			}
		}
		shardRemoved += s.mb.removeIf(func(sl *oaSlot) bool {
			kbuf = sl.key
			return pred(string(kbuf[:]), sl.v, sl.exp)
		})
		m.count.Add(-int64(shardRemoved))
		removed += shardRemoved
		s.mu.Unlock()
	}
	return removed
}

// RemoveIfExpired deletes every entry whose stored expiry is non-zero-or-
// otherwise set and strictly before now (exp < now is expressed as
// now > exp, matching the lookup path's boundary), returning the number
// removed. It is the exact-TTL sweep primitive: unlike RemoveIf it never
// materializes binary keys into strings, so a sweep over a
// millions-of-entries IP-NAME store allocates nothing. Entries with exp 0
// ("never expires" — memoized writes) are removed too, mirroring how the
// lookup path reads them in exact-TTL mode.
func (m *Map) RemoveIfExpired(now int64) int {
	removed := 0
	for _, s := range m.shards {
		s.mu.Lock()
		shardRemoved := 0
		for k, e := range s.m {
			if now > e.exp {
				delete(s.m, k)
				shardRemoved++
			}
		}
		shardRemoved += s.mb.removeIf(func(sl *oaSlot) bool { return now > sl.exp })
		m.count.Add(-int64(shardRemoved))
		removed += shardRemoved
		s.mu.Unlock()
	}
	return removed
}

// ShardCount returns the number of shards.
func (m *Map) ShardCount() int { return len(m.shards) }

// Snapshot atomically (per shard) moves the contents of m into dst and
// clears m. It implements FlowDNS buffer rotation: "copy the contents of the
// active hashmaps into the inactive hashmap and clear up the active
// hashmap". dst's previous contents are discarded first. When both maps have
// the same shard count, inner maps are handed over by pointer swap, making
// rotation O(shards) instead of O(entries). The differing-shard-count
// fallback re-shards with this package's own hash (Hash/HashBytes);
// callers that address entries with a caller-supplied hash (the
// correlator's ipHash) must keep shard counts equal across generations —
// as the store does by construction — or post-Snapshot probes would look
// in the wrong shard.
func (m *Map) Snapshot(dst *Map) {
	if dst == nil {
		return
	}
	if len(dst.shards) == len(m.shards) {
		for i, s := range m.shards {
			d := dst.shards[i]
			s.mu.Lock()
			d.mu.Lock()
			dst.count.Add(int64(len(s.m) + s.mb.len() - len(d.m) - d.mb.len()))
			m.count.Add(-int64(len(s.m) + s.mb.len()))
			d.m = s.m
			d.mb = s.mb
			s.m = make(map[string]entry)
			s.mb.reset()
			d.mu.Unlock()
			s.mu.Unlock()
		}
		return
	}
	dst.Clear()
	for _, s := range m.shards {
		s.mu.Lock()
		for k, e := range s.m {
			dst.SetHashExpire(fnv32(k), k, e.v, e.exp)
		}
		s.mb.iterate(func(sl *oaSlot) bool {
			key := sl.key
			dst.SetBytesHashExpire(fnv32(key[:]), key[:], sl.v, sl.exp)
			return true
		})
		m.count.Add(-int64(len(s.m) + s.mb.len()))
		s.m = make(map[string]entry)
		s.mb.reset()
		s.mu.Unlock()
	}
}
