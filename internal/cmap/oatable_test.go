package cmap

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

func oaKey(i uint64) [16]byte {
	var k [16]byte
	binary.BigEndian.PutUint64(k[:8], i)
	binary.BigEndian.PutUint64(k[8:], ^i)
	return k
}

// A long random interleaving of set/overwrite/remove/get must leave the
// table exactly agreeing with a reference map — this exercises growth,
// collision chains, and backward-shift deletion in every relative order.
func TestTableMatchesReferenceMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var tab table
	ref := map[[16]byte]entry{}
	const keySpace = 512 // small key space forces overwrites and re-inserts
	for op := 0; op < 50_000; op++ {
		k := oaKey(uint64(rng.Intn(keySpace)))
		switch rng.Intn(4) {
		case 0, 1: // set
			v := fmt.Sprintf("v%d", op)
			exp := int64(op)
			inserted := tab.set(&k, v, exp)
			_, existed := ref[k]
			if inserted == existed {
				t.Fatalf("op %d: set inserted=%v but key existed=%v", op, inserted, existed)
			}
			ref[k] = entry{v: v, exp: exp}
		case 2: // remove
			removed := tab.remove(&k)
			_, existed := ref[k]
			if removed != existed {
				t.Fatalf("op %d: remove=%v but key existed=%v", op, removed, existed)
			}
			delete(ref, k)
		case 3: // get
			v, exp, ok := tab.get(&k)
			e, existed := ref[k]
			if ok != existed || v != e.v || exp != e.exp {
				t.Fatalf("op %d: get=(%q,%d,%v) want (%q,%d,%v)", op, v, exp, ok, e.v, e.exp, existed)
			}
		}
		if tab.len() != len(ref) {
			t.Fatalf("op %d: len=%d want %d", op, tab.len(), len(ref))
		}
	}
	// Every surviving reference entry must still probe correctly, and the
	// iteration must visit each exactly once.
	seen := map[[16]byte]bool{}
	tab.iterate(func(s *oaSlot) bool {
		if seen[s.key] {
			t.Fatalf("iterate visited %x twice", s.key)
		}
		seen[s.key] = true
		e, ok := ref[s.key]
		if !ok || e.v != s.v || e.exp != s.exp {
			t.Fatalf("iterate: %x=(%q,%d) not in reference (%+v,%v)", s.key, s.v, s.exp, e, ok)
		}
		return true
	})
	if len(seen) != len(ref) {
		t.Fatalf("iterate visited %d entries, want %d", len(seen), len(ref))
	}
}

// removeIf with a predicate that deletes a random half of the entries must
// keep every survivor reachable by get — the backward-shift fold into the
// sweep must never break a probe chain, including chains that wrap the end
// of the slot array.
func TestTableRemoveIfKeepsSurvivorsReachable(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var tab table
		n := 64 + rng.Intn(2048)
		doomed := map[[16]byte]bool{}
		keys := make([][16]byte, n)
		for i := range keys {
			keys[i] = oaKey(uint64(i) * 0x9E3779B9) // strided keys → clustered chains
			tab.set(&keys[i], fmt.Sprintf("v%d", i), int64(i))
			if rng.Intn(2) == 0 {
				doomed[keys[i]] = true
			}
		}
		removed := tab.removeIf(func(s *oaSlot) bool { return doomed[s.key] })
		if removed != len(doomed) {
			t.Fatalf("trial %d: removed %d, want %d", trial, removed, len(doomed))
		}
		if tab.len() != n-len(doomed) {
			t.Fatalf("trial %d: len=%d want %d", trial, tab.len(), n-len(doomed))
		}
		for i, k := range keys {
			v, _, ok := tab.get(&k)
			if doomed[k] {
				if ok {
					t.Fatalf("trial %d: doomed key %d still present", trial, i)
				}
			} else if !ok || v != fmt.Sprintf("v%d", i) {
				t.Fatalf("trial %d: survivor %d unreachable after sweep (ok=%v v=%q)", trial, i, ok, v)
			}
		}
	}
}

// An overwrite of an existing binary key must not allocate, and neither may
// an insert once the slot array has capacity — the discipline the fill path
// benchmarks rest on, pinned here at the table level.
func TestTableSetAllocFree(t *testing.T) {
	var tab table
	k := oaKey(7)
	tab.set(&k, "warm", 1)
	for i := 0; i < 100; i++ { // pre-grow
		kk := oaKey(uint64(i))
		tab.set(&kk, "fill", 1)
	}
	if n := testing.AllocsPerRun(100, func() {
		tab.set(&k, "warm", 2)
	}); n != 0 {
		t.Fatalf("overwrite allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		v, _, ok := tab.get(&k)
		if !ok || v != "warm" {
			t.Fatal("lost entry")
		}
	}); n != 0 {
		t.Fatalf("get allocs/op = %v, want 0", n)
	}
}

// A cleared table owns no memory and accepts fresh inserts.
func TestTableReset(t *testing.T) {
	var tab table
	for i := 0; i < 100; i++ {
		k := oaKey(uint64(i))
		tab.set(&k, "x", 0)
	}
	tab.reset()
	if tab.len() != 0 || tab.slots != nil || tab.ctrl != nil {
		t.Fatalf("reset left state: len=%d slots=%v", tab.len(), tab.slots != nil)
	}
	k := oaKey(1)
	if _, _, ok := tab.get(&k); ok {
		t.Fatal("get hit after reset")
	}
	if !tab.set(&k, "y", 0) {
		t.Fatal("insert after reset not reported as new")
	}
}
