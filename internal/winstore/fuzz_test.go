package winstore

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// FuzzSegmentDecode drives the segment decoder with arbitrary bytes. The
// decoder must never panic and never allocate for an oversized claim; on
// any structural damage it must fail with ErrCorrupt or ErrVersion, and a
// segment it does accept must re-encode to an equivalent segment (decode →
// encode → decode fixpoint). Because the encoder may rotate a large window
// across sections, the fixpoint compares per-interval row multisets, not
// per-section shapes.
func FuzzSegmentDecode(f *testing.F) {
	seed := func(seg *Segment) []byte {
		var buf bytes.Buffer
		if err := EncodeSegment(&buf, seg); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	base := time.Date(2022, 5, 25, 12, 0, 0, 0, time.UTC)
	f.Add([]byte{})
	f.Add(seed(&Segment{Start: base, Dur: time.Hour}))
	minimal := &Segment{Start: base, Dur: time.Hour}
	minimal.Windows = append(minimal.Windows, mkWindow(base, time.Minute, 1, 7))
	f.Add(seed(minimal))
	f.Add(seed(testSegment()))
	compacted := testSegment()
	compacted.Compacted = true
	compacted.Windows = CompactWindows(compacted.Windows)
	f.Add(seed(compacted))

	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := DecodeSegment(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}

		// Accepted input: encode and decode again; the canonical view of the
		// windows must survive the round trip exactly.
		var buf bytes.Buffer
		if err := EncodeSegment(&buf, seg); err != nil {
			t.Fatalf("re-encode of accepted segment failed: %v", err)
		}
		again, err := DecodeSegment(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded segment failed to decode: %v", err)
		}
		if !again.Start.Equal(seg.Start) || again.Dur != seg.Dur || again.Compacted != seg.Compacted {
			t.Fatalf("header drifted: %v/%v/%v -> %v/%v/%v",
				seg.Start, seg.Dur, seg.Compacted, again.Start, again.Dur, again.Compacted)
		}
		wantRows, gotRows := 0, 0
		for i := range seg.Windows {
			wantRows += len(seg.Windows[i].Rows)
		}
		for i := range again.Windows {
			gotRows += len(again.Windows[i].Rows)
		}
		if wantRows != gotRows {
			t.Fatalf("re-encode lost rows: %d -> %d", wantRows, gotRows)
		}
	})
}
