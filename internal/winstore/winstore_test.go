package winstore

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/rollup"
)

var base = time.Date(2022, 5, 25, 12, 0, 0, 0, time.UTC)

func openStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreAddQueryRoundTrip(t *testing.T) {
	s := openStore(t, Config{PartDur: time.Hour})
	var all []rollup.Window
	for i := 0; i < 5; i++ {
		w := mkWindow(base.Add(time.Duration(i)*time.Minute), time.Minute, 4, int64(i))
		all = append(all, w)
	}
	if err := s.Add(all); err != nil {
		t.Fatal(err)
	}
	got := s.Query(base, base.Add(time.Hour))
	if !reflect.DeepEqual(got, all) {
		t.Fatalf("query returned %d windows, want %d:\n got %+v\nwant %+v", len(got), len(all), got, all)
	}
	// Sub-range query: only the overlapping windows.
	got = s.Query(base.Add(time.Minute), base.Add(3*time.Minute))
	if len(got) != 2 || !got[0].Start.Equal(all[1].Start) || !got[1].Start.Equal(all[2].Start) {
		t.Fatalf("sub-range query: %+v", got)
	}
	// Empty range.
	if got := s.Query(base.Add(-time.Hour), base); got != nil {
		t.Fatalf("pre-range query returned %d windows", len(got))
	}
}

func TestStoreQueryMergesPartials(t *testing.T) {
	s := openStore(t, Config{PartDur: time.Hour})
	w1 := mkWindow(base, time.Minute, 4, 1)
	w2 := mkWindow(base, time.Minute, 3, 2) // late partial, same interval
	if err := s.Add([]rollup.Window{w1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add([]rollup.Window{w2}); err != nil {
		t.Fatal(err)
	}
	got := s.Query(base, base.Add(time.Minute))
	if len(got) != 1 {
		t.Fatalf("partials not merged: %d windows", len(got))
	}
	want := rollup.Merge(w1, w2)
	if !reflect.DeepEqual(got[0], want) {
		t.Fatalf("merged window diverges:\n got %+v\nwant %+v", got[0], want)
	}
}

// TestStoreRestart persists windows, reopens the directory with a fresh
// Store, and requires identical query results — the warm-serving half of
// the e2e restart contract.
func TestStoreRestart(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir, PartDur: 30 * time.Minute})
	var all []rollup.Window
	// Span several partitions.
	for i := 0; i < 90; i += 10 {
		all = append(all, mkWindow(base.Add(time.Duration(i)*time.Minute), time.Minute, 5, int64(i)))
	}
	if err := s.Add(all); err != nil {
		t.Fatal(err)
	}
	want := s.Query(base.Add(-time.Hour), base.Add(3*time.Hour))

	s2 := openStore(t, Config{Dir: dir, PartDur: 30 * time.Minute})
	got := s2.Query(base.Add(-time.Hour), base.Add(3*time.Hour))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restarted store diverges:\n got %+v\nwant %+v", got, want)
	}
	if st := s2.Stats(); st.Partitions != 3 {
		t.Fatalf("partitions = %d, want 3", st.Partitions)
	}
}

// TestStoreRestartKeepsValidatedPrefix damages a segment file's tail and
// requires the reopened store to serve the validated prefix.
func TestStoreRestartKeepsValidatedPrefix(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir, PartDur: time.Hour})
	w1 := mkWindow(base, time.Minute, 4, 1)
	w2 := mkWindow(base.Add(time.Minute), time.Minute, 4, 2)
	if err := s.Add([]rollup.Window{w1, w2}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries=%v err=%v", entries, err)
	}
	path := filepath.Join(dir, entries[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-way through the second section: the first window
	// must survive.
	if err := os.WriteFile(path, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, Config{Dir: dir, PartDur: time.Hour})
	got := s2.Query(base, base.Add(time.Hour))
	if len(got) != 1 || !reflect.DeepEqual(got[0], w1) {
		t.Fatalf("validated prefix not served: %+v", got)
	}
	if st := s2.Stats(); st.LoadErrors != 1 {
		t.Fatalf("LoadErrors = %d, want 1", st.LoadErrors)
	}
	// The recovery rewrote a clean segment: a third open sees no damage.
	s3 := openStore(t, Config{Dir: dir, PartDur: time.Hour})
	if st := s3.Stats(); st.LoadErrors != 0 {
		t.Fatalf("rewrite after recovery missing: LoadErrors = %d", st.LoadErrors)
	}
}

// windowsTotal sums counters across windows.
func windowsTotal(ws []rollup.Window) rollup.Counters {
	var t rollup.Counters
	for i := range ws {
		agg := ws[i].Total()
		t.Bytes += agg.Bytes
		t.Packets += agg.Packets
		t.Flows += agg.Flows
	}
	return t
}

// TestCompactWindowsEqualsMerge is the compaction law: compact(w1..wn)
// equals the per-interval merge of the windows — totals preserved, result
// independent of input order and of how the windows were partitioned into
// partials.
func TestCompactWindowsEqualsMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		// Random partials over a handful of intervals.
		var ws []rollup.Window
		intervals := 1 + rng.Intn(5)
		for i := 0; i < intervals; i++ {
			start := base.Add(time.Duration(i) * time.Minute)
			partials := 1 + rng.Intn(4)
			for p := 0; p < partials; p++ {
				ws = append(ws, mkWindow(start, time.Minute, 1+rng.Intn(6), rng.Int63()))
			}
		}
		compacted := CompactWindows(ws)

		// Totals preserved.
		if got, want := windowsTotal(compacted), windowsTotal(ws); got != want {
			t.Fatalf("trial %d: totals diverge: %+v != %+v", trial, got, want)
		}
		// One window per interval, sorted.
		if len(compacted) != intervals {
			t.Fatalf("trial %d: %d windows, want %d", trial, len(compacted), intervals)
		}
		for i := 1; i < len(compacted); i++ {
			if !compacted[i-1].Start.Before(compacted[i].Start) {
				t.Fatalf("trial %d: not sorted", trial)
			}
		}
		// Equals the reference merge, per interval.
		for _, w := range compacted {
			var group []rollup.Window
			for _, in := range ws {
				if in.Start.Equal(w.Start) {
					group = append(group, in)
				}
			}
			if want := rollup.MergeAll(group); !reflect.DeepEqual(w, want) {
				t.Fatalf("trial %d: interval %v diverges from MergeAll", trial, w.Start)
			}
		}

		// Order independence.
		shuffled := append([]rollup.Window(nil), ws...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := CompactWindows(shuffled); !reflect.DeepEqual(got, compacted) {
			t.Fatalf("trial %d: order dependence", trial)
		}
		// Partition independence: compacting in two arbitrary halves and
		// compacting the concatenation of the halves' outputs agrees.
		cut := rng.Intn(len(ws) + 1)
		left, right := CompactWindows(ws[:cut]), CompactWindows(ws[cut:])
		if got := CompactWindows(append(append([]rollup.Window(nil), left...), right...)); !reflect.DeepEqual(got, compacted) {
			t.Fatalf("trial %d: partition dependence", trial)
		}
		// Idempotence.
		if got := CompactWindows(compacted); !reflect.DeepEqual(got, compacted) {
			t.Fatalf("trial %d: not idempotent", trial)
		}
	}
}

func TestStoreCompactBefore(t *testing.T) {
	s := openStore(t, Config{PartDur: 10 * time.Minute})
	// Two partials in an old partition, one window in a recent one.
	old1 := mkWindow(base, time.Minute, 4, 1)
	old2 := mkWindow(base, time.Minute, 3, 2)
	recent := mkWindow(base.Add(30*time.Minute), time.Minute, 4, 3)
	if err := s.Add([]rollup.Window{old1, old2, recent}); err != nil {
		t.Fatal(err)
	}
	pre := s.Query(base, base.Add(time.Hour))

	n, err := s.CompactBefore(base.Add(20 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("compacted %d partitions, want 1", n)
	}
	st := s.Stats()
	if st.Compacted != 1 || st.Compactions != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// The old partition now holds one canonical window in memory.
	if st.Windows != 2 {
		t.Fatalf("windows held = %d, want 2", st.Windows)
	}
	// Query results are unchanged by compaction (merge laws).
	if post := s.Query(base, base.Add(time.Hour)); !reflect.DeepEqual(post, pre) {
		t.Fatalf("compaction changed query results:\n pre %+v\npost %+v", pre, post)
	}
	// Compacting again is a no-op.
	if n, _ := s.CompactBefore(base.Add(20 * time.Minute)); n != 0 {
		t.Fatalf("recompacted %d partitions", n)
	}
	// A late partial re-opens the partition for compaction.
	if err := s.Add([]rollup.Window{mkWindow(base, time.Minute, 2, 9)}); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.CompactBefore(base.Add(20 * time.Minute)); n != 1 {
		t.Fatalf("late partial did not re-open compaction: %d", n)
	}
}

func TestStoreRetention(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir, PartDur: 10 * time.Minute, Retention: 30 * time.Minute})
	old := mkWindow(base, time.Minute, 4, 1)
	fresh := mkWindow(base.Add(50*time.Minute), time.Minute, 4, 2)
	if err := s.Add([]rollup.Window{old, fresh}); err != nil {
		t.Fatal(err)
	}
	n, err := s.EnforceRetention(base.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("deleted %d partitions, want 1", n)
	}
	if got := s.Query(base, base.Add(time.Hour)); len(got) != 1 || !got[0].Start.Equal(fresh.Start) {
		t.Fatalf("retention left %+v", got)
	}
	// The segment file is gone from disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d segment files on disk, want 1", len(entries))
	}
	if st := s.Stats(); st.RetentionDeletes != 1 || st.Partitions != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestStoreInvalidationCallbacks(t *testing.T) {
	s := openStore(t, Config{PartDur: 10 * time.Minute, Retention: 30 * time.Minute})
	type rng struct{ from, to time.Time }
	var calls []rng
	s.OnInvalidate(func(from, to time.Time) { calls = append(calls, rng{from, to}) })

	if err := s.Add([]rollup.Window{mkWindow(base, time.Minute, 3, 1)}); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 {
		t.Fatalf("add: %d invalidations, want 1", len(calls))
	}
	partFrom := time.Unix(s.partStart(base), 0).UTC()
	if !calls[0].from.Equal(partFrom) || !calls[0].to.Equal(partFrom.Add(10*time.Minute)) {
		t.Fatalf("add invalidated %v..%v, want %v..%v", calls[0].from, calls[0].to, partFrom, partFrom.Add(10*time.Minute))
	}
	calls = nil
	if _, err := s.CompactBefore(base.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 {
		t.Fatalf("compact: %d invalidations, want 1", len(calls))
	}
	calls = nil
	if _, err := s.EnforceRetention(base.Add(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 {
		t.Fatalf("retention: %d invalidations, want 1", len(calls))
	}
}

func TestStoreServeMaintains(t *testing.T) {
	s := openStore(t, Config{
		PartDur:       time.Second,
		CompactAfter:  time.Nanosecond,
		MaintainEvery: 10 * time.Millisecond,
	})
	// Two partials in a partition whose interval is long over.
	old := base // 2022: far in the past relative to the wall clock
	if err := s.Add([]rollup.Window{mkWindow(old, time.Second, 3, 1), mkWindow(old, time.Second, 3, 2)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx) }()
	deadline := time.After(5 * time.Second)
	for s.Stats().Compactions == 0 {
		select {
		case <-deadline:
			t.Fatal("maintenance loop never compacted")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve = %v", err)
	}
	if s.Name() != "winstore" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestStoreBounds(t *testing.T) {
	s := openStore(t, Config{PartDur: time.Hour})
	if oldest, newest := s.Bounds(); !oldest.IsZero() || !newest.IsZero() {
		t.Fatal("empty store has bounds")
	}
	if err := s.Add([]rollup.Window{
		mkWindow(base.Add(5*time.Minute), time.Minute, 2, 1),
		mkWindow(base, time.Minute, 2, 2),
	}); err != nil {
		t.Fatal(err)
	}
	oldest, newest := s.Bounds()
	if !oldest.Equal(base) || !newest.Equal(base.Add(6*time.Minute)) {
		t.Fatalf("bounds %v..%v", oldest, newest)
	}
}

func TestStoreOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("no-dir open succeeded")
	}
	// Non-segment files in the directory are ignored.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "garbage.seg"), bytes.Repeat([]byte{0xAA}, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Partitions != 0 || st.LoadErrors != 1 {
		t.Fatalf("stats after garbage open: %+v", st)
	}
}
