// Package winstore persists sealed rollup windows into a time-partitioned
// on-disk store and serves them back for time-range queries — the durable
// half of the query plane (the HTTP half is internal/queryapi).
//
// The pipeline's rollup sink seals one window per rotation interval; a
// Store groups those windows into partitions of PartDur wall-clock time
// (one segment file per partition interval) and keeps an in-memory index
// of every partition's windows, so range queries never touch the disk.
// Disk is durability: a restarted process re-opens the directory and
// answers the same queries from the persisted segments.
//
// # Segment format
//
// A segment file reuses the snapshot codec's framing discipline — magic and
// version header, CRC32 (IEEE) over every region, atomic temp-file+rename
// writes, and an end marker that distinguishes truncation from completion:
//
//	header : "FDWP" | version u16 | flags u16 | partStart i64 | partDur i64 | crc u32
//	section: 'W' | flags u8 | winStart i64 | winDur u32 | rows u32 | payloadLen u32 | crc u32 | payload
//	end    : 'E' | sections u32 | crc u32
//
// All integers are little-endian; durations are whole seconds. Each
// section is one sealed window (or one partial of it: oversized windows
// rotate across several sections with the same interval, exactly as
// snapshot sections rotate — partials merge back under the rollup merge
// laws). A section payload is `rows` encoded rows:
//
//	row: serviceLen uvarint | service | asn uvarint | category u8 |
//	     bytes u64 | packets u64 | flows u64
//
// A decoder that hits damage mid-file returns every section it already
// CRC-validated along with the error, so a partially written or torn
// partition still contributes its validated prefix.
package winstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dbl"
	"repro/internal/fault"
	"repro/internal/rollup"
)

// Version is the segment format version this package writes. Readers
// reject files with a greater version.
const Version = 1

// Magic identifies a window-store segment file.
const Magic = "FDWP"

const (
	headerLen     = 28 // magic(4) version(2) flags(2) partStart(8) partDur(8) crc(4)
	sectionHdrLen = 26 // 'W'(1) flags(1) winStart(8) winDur(4) rows(4) payloadLen(4) crc(4)
	endLen        = 9  // 'E'(1) sections(4) crc(4)

	sectionMarker = 'W'
	endMarker     = 'E'

	// sectionMaxBytes bounds one section's payload: the encoder rotates an
	// oversized window into a fresh section of the same interval, and the
	// decoder rejects claimed lengths beyond twice this before allocating —
	// a corrupted length field can never force a huge allocation.
	sectionMaxBytes = 1 << 22

	// rowMinBytes is the smallest possible encoded row (empty service,
	// 1-byte ASN varint, category, three fixed counters); the decoder
	// cross-checks a section's row count against its payload length with it.
	rowMinBytes = 1 + 1 + 1 + 24
)

// SegFlagCompacted marks a segment whose windows have been compacted: one
// canonical window per interval, partials already merged.
const SegFlagCompacted = 1 << 0

// ErrCorrupt reports a structurally invalid or checksum-failing segment.
// Errors from DecodeSegment wrap it; Open treats it as a partial partition
// and keeps the validated prefix.
var ErrCorrupt = errors.New("winstore: corrupt")

// ErrVersion reports a segment written by a newer format version.
var ErrVersion = errors.New("winstore: unsupported version")

// Segment is the decoded contents of one partition file: the partition
// interval plus every sealed window (or validated partial) it holds.
type Segment struct {
	// Start and Dur delimit the partition interval [Start, Start+Dur).
	Start time.Time
	Dur   time.Duration
	// Compacted reports the SegFlagCompacted header flag.
	Compacted bool
	// Windows are the stored windows in file order. Several entries may
	// share one interval (partials from late flows or section rotation);
	// they merge back under rollup.Merge.
	Windows []rollup.Window
}

// EncodeSegment writes seg to w in segment format. Windows are written in
// slice order, one section each; windows whose encoding outgrows the
// section size limit rotate into additional sections of the same interval.
func EncodeSegment(w io.Writer, seg *Segment) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [headerLen]byte
	copy(hdr[:4], Magic)
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	var flags uint16
	if seg.Compacted {
		flags |= SegFlagCompacted
	}
	binary.LittleEndian.PutUint16(hdr[6:8], flags)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(seg.Start.Unix()))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(seg.Dur/time.Second))
	binary.LittleEndian.PutUint32(hdr[24:28], crc32.ChecksumIEEE(hdr[:24]))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var sections uint32
	var payload []byte
	writeSection := func(win *rollup.Window, rows uint32) error {
		var sh [sectionHdrLen]byte
		sh[0] = sectionMarker
		binary.LittleEndian.PutUint64(sh[2:10], uint64(win.Start.Unix()))
		binary.LittleEndian.PutUint32(sh[10:14], uint32(win.Dur/time.Second))
		binary.LittleEndian.PutUint32(sh[14:18], rows)
		binary.LittleEndian.PutUint32(sh[18:22], uint32(len(payload)))
		crc := crc32.NewIEEE()
		crc.Write(sh[1:22])
		crc.Write(payload)
		binary.LittleEndian.PutUint32(sh[22:26], crc.Sum32())
		if _, err := bw.Write(sh[:]); err != nil {
			return err
		}
		if _, err := bw.Write(payload); err != nil {
			return err
		}
		payload = payload[:0]
		sections++
		return nil
	}
	for i := range seg.Windows {
		win := &seg.Windows[i]
		rows := uint32(0)
		for r := range win.Rows {
			payload = appendRow(payload, &win.Rows[r])
			rows++
			if len(payload) >= sectionMaxBytes && r+1 < len(win.Rows) {
				// Rotate: flush this partial and continue the window in a
				// fresh section of the same interval.
				if err := writeSection(win, rows); err != nil {
					return err
				}
				rows = 0
			}
		}
		if err := writeSection(win, rows); err != nil {
			return err
		}
	}
	var end [endLen]byte
	end[0] = endMarker
	binary.LittleEndian.PutUint32(end[1:5], sections)
	binary.LittleEndian.PutUint32(end[5:9], crc32.ChecksumIEEE(end[:5]))
	if _, err := bw.Write(end[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// appendRow encodes one rollup row.
func appendRow(b []byte, r *rollup.Row) []byte {
	var pfx [binary.MaxVarintLen64]byte
	b = append(b, pfx[:binary.PutUvarint(pfx[:], uint64(len(r.Service)))]...)
	b = append(b, r.Service...)
	b = append(b, pfx[:binary.PutUvarint(pfx[:], uint64(r.ASN))]...)
	b = append(b, byte(r.Category))
	b = binary.LittleEndian.AppendUint64(b, r.Bytes)
	b = binary.LittleEndian.AppendUint64(b, r.Packets)
	b = binary.LittleEndian.AppendUint64(b, r.Flows)
	return b
}

// decodeRows decodes count rows from payload.
func decodeRows(payload []byte, count uint32) ([]rollup.Row, error) {
	if count == 0 {
		if len(payload) != 0 {
			return nil, fmt.Errorf("%w: %d payload bytes after 0 rows", ErrCorrupt, len(payload))
		}
		return nil, nil
	}
	rows := make([]rollup.Row, 0, count)
	p := payload
	for i := uint32(0); i < count; i++ {
		n, used := binary.Uvarint(p)
		if used <= 0 || n > uint64(len(p)-used) {
			return nil, fmt.Errorf("%w: row %d: bad service length", ErrCorrupt, i)
		}
		svc := string(p[used : used+int(n)])
		p = p[used+int(n):]
		asn, used := binary.Uvarint(p)
		if used <= 0 || asn > 1<<32-1 {
			return nil, fmt.Errorf("%w: row %d: bad asn", ErrCorrupt, i)
		}
		p = p[used:]
		if len(p) < 1+24 {
			return nil, fmt.Errorf("%w: row %d: short counters", ErrCorrupt, i)
		}
		cat := dbl.Category(p[0])
		rows = append(rows, rollup.Row{
			Key: rollup.Key{Service: svc, ASN: uint32(asn), Category: cat},
			Counters: rollup.Counters{
				Bytes:   binary.LittleEndian.Uint64(p[1:9]),
				Packets: binary.LittleEndian.Uint64(p[9:17]),
				Flows:   binary.LittleEndian.Uint64(p[17:25]),
			},
		})
		p = p[25:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes after %d rows", ErrCorrupt, len(p), count)
	}
	return rows, nil
}

// DecodeSegment reads a segment stream. On damage it returns the segment
// populated with every section validated so far plus a non-nil error
// wrapping ErrCorrupt (or ErrVersion) — the partial-prefix contract Open
// relies on: a torn write costs the tail, never the partition.
func DecodeSegment(r io.Reader) (*Segment, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if string(hdr[:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:4])
	}
	if got, want := binary.LittleEndian.Uint32(hdr[24:28]), crc32.ChecksumIEEE(hdr[:24]); got != want {
		return nil, fmt.Errorf("%w: header crc %08x != %08x", ErrCorrupt, got, want)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v > Version {
		return nil, fmt.Errorf("%w: file version %d > %d", ErrVersion, v, Version)
	}
	flags := binary.LittleEndian.Uint16(hdr[6:8])
	seg := &Segment{
		Start:     time.Unix(int64(binary.LittleEndian.Uint64(hdr[8:16])), 0).UTC(),
		Dur:       time.Duration(binary.LittleEndian.Uint64(hdr[16:24])) * time.Second,
		Compacted: flags&SegFlagCompacted != 0,
	}
	var sections uint32
	for {
		marker, err := br.ReadByte()
		if err != nil {
			return seg, fmt.Errorf("%w: missing end marker: %v", ErrCorrupt, err)
		}
		switch marker {
		case endMarker:
			var end [endLen]byte
			end[0] = endMarker
			if _, err := io.ReadFull(br, end[1:]); err != nil {
				return seg, fmt.Errorf("%w: short end marker: %v", ErrCorrupt, err)
			}
			if got, want := binary.LittleEndian.Uint32(end[5:9]), crc32.ChecksumIEEE(end[:5]); got != want {
				return seg, fmt.Errorf("%w: end crc %08x != %08x", ErrCorrupt, got, want)
			}
			if got := binary.LittleEndian.Uint32(end[1:5]); got != sections {
				return seg, fmt.Errorf("%w: end marker counts %d sections, read %d", ErrCorrupt, got, sections)
			}
			return seg, nil
		case sectionMarker:
		default:
			return seg, fmt.Errorf("%w: unknown marker %#02x", ErrCorrupt, marker)
		}
		var sh [sectionHdrLen]byte
		sh[0] = sectionMarker
		if _, err := io.ReadFull(br, sh[1:]); err != nil {
			return seg, fmt.Errorf("%w: short section header: %v", ErrCorrupt, err)
		}
		count := binary.LittleEndian.Uint32(sh[14:18])
		payloadLen := binary.LittleEndian.Uint32(sh[18:22])
		// Sanity before allocating, as in the snapshot reader: the encoder
		// never produces an oversized or under-filled section, so lengths
		// beyond these bounds are corruption, not data.
		if payloadLen > 2*sectionMaxBytes {
			return seg, fmt.Errorf("%w: section payload %d exceeds limit", ErrCorrupt, payloadLen)
		}
		if uint64(count)*rowMinBytes > uint64(payloadLen) {
			return seg, fmt.Errorf("%w: %d rows cannot fit %d payload bytes", ErrCorrupt, count, payloadLen)
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return seg, fmt.Errorf("%w: short section payload: %v", ErrCorrupt, err)
		}
		crc := crc32.NewIEEE()
		crc.Write(sh[1:22])
		crc.Write(payload)
		if got, want := binary.LittleEndian.Uint32(sh[22:26]), crc.Sum32(); got != want {
			return seg, fmt.Errorf("%w: section crc %08x != %08x", ErrCorrupt, got, want)
		}
		rows, err := decodeRows(payload, count)
		if err != nil {
			return seg, err
		}
		seg.Windows = append(seg.Windows, rollup.Window{
			Start: time.Unix(int64(binary.LittleEndian.Uint64(sh[2:10])), 0).UTC(),
			Dur:   time.Duration(binary.LittleEndian.Uint32(sh[10:14])) * time.Second,
			Rows:  rows,
		})
		sections++
	}
}

// Failpoints on the segment write path, one per syscall family the
// crash-safety discipline depends on. "write" additionally supports the
// shortwrite action (a torn write mid-encode); all three take error/delay/
// panic. Injected faults land on the temp file, never the live segment —
// the sweep tests prove the previous generation survives each of them.
var (
	fpSegWrite  = fault.New("winstore.segment.write")
	fpSegSync   = fault.New("winstore.segment.sync")
	fpSegRename = fault.New("winstore.segment.rename")
)

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable — without it a power cut after rename can roll the directory
// back to the old entry even though the data blocks were synced.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteSegmentFile writes seg to path atomically: a temporary file in the
// same directory, fsynced, then renamed over path, then the directory
// fsynced — the same discipline as snapshot.WriteFile, so readers never
// observe a partial segment and a crash mid-write leaves the previous
// segment intact.
func WriteSegmentFile(path string, seg *Segment) (err error) {
	if err = fpSegWrite.Inject(); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = EncodeSegment(fpSegWrite.Writer(f), seg); err != nil {
		return err
	}
	if err = fpSegSync.Inject(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = fpSegRename.Inject(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// ReadSegmentFile decodes one segment file, honoring DecodeSegment's
// partial-prefix contract.
func ReadSegmentFile(path string) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeSegment(f)
}
