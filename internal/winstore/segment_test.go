package winstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/dbl"
	"repro/internal/rollup"
)

// mkWindow builds a deterministic sealed window: n rows with distinct keys
// and seeded counters, canonically sorted as the rollup engine seals them.
func mkWindow(start time.Time, dur time.Duration, n int, seed int64) rollup.Window {
	rng := rand.New(rand.NewSource(seed))
	w := rollup.Window{Start: start.UTC(), Dur: dur}
	services := []string{"", "cdn.example", "video.example", "mail.example", "ads.example"}
	for i := 0; i < n; i++ {
		w.Rows = append(w.Rows, rollup.Row{
			Key: rollup.Key{
				Service:  services[i%len(services)],
				ASN:      uint32(64500 + i),
				Category: dbl.Category(i % 6),
			},
			Counters: rollup.Counters{
				Bytes:   uint64(rng.Intn(1 << 30)),
				Packets: uint64(rng.Intn(1 << 20)),
				Flows:   uint64(1 + rng.Intn(1000)),
			},
		})
	}
	// Canonical order, as SealBefore produces.
	return rollup.MergeAll([]rollup.Window{w})
}

func encodeSeg(t *testing.T, seg *Segment) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeSegment(&buf, seg); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testSegment() *Segment {
	base := time.Date(2022, 5, 25, 12, 0, 0, 0, time.UTC)
	return &Segment{
		Start: base,
		Dur:   time.Hour,
		Windows: []rollup.Window{
			mkWindow(base, time.Minute, 5, 1),
			mkWindow(base.Add(time.Minute), time.Minute, 3, 2),
			// A partial of the first interval: late flows re-opened it.
			mkWindow(base, time.Minute, 2, 3),
			// An empty window must round-trip too.
			{Start: base.Add(2 * time.Minute), Dur: time.Minute},
		},
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	seg := testSegment()
	got, err := DecodeSegment(bytes.NewReader(encodeSeg(t, seg)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.Start.Equal(seg.Start) || got.Dur != seg.Dur || got.Compacted != seg.Compacted {
		t.Fatalf("header mismatch: got %v/%v/%v", got.Start, got.Dur, got.Compacted)
	}
	if !reflect.DeepEqual(got.Windows, seg.Windows) {
		t.Fatalf("windows mismatch:\n got %+v\nwant %+v", got.Windows, seg.Windows)
	}
}

func TestSegmentCompactedFlagRoundTrip(t *testing.T) {
	seg := testSegment()
	seg.Compacted = true
	got, err := DecodeSegment(bytes.NewReader(encodeSeg(t, seg)))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Compacted {
		t.Fatal("compacted flag lost")
	}
}

// TestSegmentTruncationKeepsValidatedPrefix cuts a valid segment at every
// possible length: the decoder must always report corruption (crash-mid-
// write detection) while returning exactly the sections it CRC-validated —
// never more, never a panic.
func TestSegmentTruncationKeepsValidatedPrefix(t *testing.T) {
	seg := testSegment()
	data := encodeSeg(t, seg)
	if _, err := DecodeSegment(bytes.NewReader(data)); err != nil {
		t.Fatalf("intact file: %v", err)
	}
	for cut := 0; cut < len(data); cut++ {
		got, err := DecodeSegment(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes went undetected", cut, len(data))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: err = %v, want ErrCorrupt", cut, err)
		}
		if got == nil {
			continue // header never validated; nothing to keep
		}
		// Every window the prefix decode returned must be byte-identical to
		// the corresponding original window: validated prefix, no garbage.
		if len(got.Windows) > len(seg.Windows) {
			t.Fatalf("truncation at %d: %d windows from a %d-window file", cut, len(got.Windows), len(seg.Windows))
		}
		for i := range got.Windows {
			if !reflect.DeepEqual(got.Windows[i], seg.Windows[i]) {
				t.Fatalf("truncation at %d: window %d diverges from original", cut, i)
			}
		}
	}
}

// TestSegmentCorruptionDetected flips one byte at a time through the whole
// file: every flip must surface as ErrCorrupt or ErrVersion — no flip may
// decode fully and go undetected.
func TestSegmentCorruptionDetected(t *testing.T) {
	seg := testSegment()
	data := encodeSeg(t, seg)
	for i := range data {
		mut := bytes.Clone(data)
		mut[i] ^= 0x40
		_, err := DecodeSegment(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("flip at byte %d: err = %v, want ErrCorrupt or ErrVersion", i, err)
		}
	}
}

func TestSegmentVersionGate(t *testing.T) {
	data := encodeSeg(t, testSegment())
	binary.LittleEndian.PutUint16(data[4:6], Version+1)
	binary.LittleEndian.PutUint32(data[24:28], crc32.ChecksumIEEE(data[:24]))
	_, err := DecodeSegment(bytes.NewReader(data))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: err = %v, want ErrVersion", err)
	}
}

// TestSegmentOversizedClaimsRejected corrupts the first section's length
// and count fields to absurd values and requires rejection before any
// large allocation (the decoder's pre-allocation sanity checks).
func TestSegmentOversizedClaimsRejected(t *testing.T) {
	data := encodeSeg(t, testSegment())
	// Section header begins after the 28-byte file header; payloadLen is at
	// offset 18 within it, row count at 14.
	for _, mutate := range []func(sh []byte){
		func(sh []byte) { binary.LittleEndian.PutUint32(sh[18:22], 1<<31) },
		func(sh []byte) { binary.LittleEndian.PutUint32(sh[14:18], 1<<30) },
	} {
		mut := bytes.Clone(data)
		mutate(mut[headerLen : headerLen+sectionHdrLen])
		// The claim bounds fire before any allocation or checksum: the
		// decoder must reject without ever reading the claimed payload.
		_, err := DecodeSegment(bytes.NewReader(mut))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("oversized claim: err = %v, want ErrCorrupt", err)
		}
	}
}

// TestSegmentSectionRotation forces a window whose encoding exceeds the
// section payload limit and checks it splits into partials that merge back
// to the original.
func TestSegmentSectionRotation(t *testing.T) {
	base := time.Date(2022, 5, 25, 0, 0, 0, 0, time.UTC)
	// ~160k rows at ~30 bytes each ≈ 5 MB > sectionMaxBytes.
	big := rollup.Window{Start: base, Dur: time.Minute}
	for i := 0; i < 160_000; i++ {
		big.Rows = append(big.Rows, rollup.Row{
			Key:      rollup.Key{Service: "svc.example", ASN: uint32(i)},
			Counters: rollup.Counters{Bytes: uint64(i), Packets: 1, Flows: 1},
		})
	}
	seg := &Segment{Start: base, Dur: time.Hour, Windows: []rollup.Window{big}}
	got, err := DecodeSegment(bytes.NewReader(encodeSeg(t, seg)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Windows) < 2 {
		t.Fatalf("expected rotation into >= 2 sections, got %d", len(got.Windows))
	}
	merged := CompactWindows(got.Windows)
	if len(merged) != 1 {
		t.Fatalf("partials merge to %d windows, want 1", len(merged))
	}
	want := rollup.MergeAll([]rollup.Window{big})
	if !reflect.DeepEqual(merged[0], want) {
		t.Fatal("rotated window does not merge back to the original")
	}
}

func TestWriteSegmentFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "part-0-3600.seg")
	seg := testSegment()
	if err := WriteSegmentFile(path, seg); err != nil {
		t.Fatal(err)
	}
	// Overwrite with different contents: the rename must replace wholesale.
	seg2 := testSegment()
	seg2.Compacted = true
	seg2.Windows = seg2.Windows[:1]
	if err := WriteSegmentFile(path, seg2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSegmentFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Compacted || len(got.Windows) != 1 {
		t.Fatalf("overwrite not atomic: %+v", got)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}
