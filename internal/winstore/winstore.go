package winstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rollup"
)

// Defaults for the store's tunables.
const (
	// DefaultPartDur is the partition interval: one segment file per hour
	// of sealed windows (60 one-minute windows per file at the default
	// rollup rotation).
	DefaultPartDur = time.Hour
	// DefaultCompactAfter is how long after a partition's interval has
	// passed before it is compacted — late partials (NetFlow exports trail
	// flow start by the active timeout) have stopped arriving by then.
	DefaultCompactAfter = 10 * time.Minute
	// DefaultMaintainEvery is the background maintenance cadence
	// (compaction + retention sweeps).
	DefaultMaintainEvery = time.Minute
)

// Config controls a Store. Only Dir is required.
type Config struct {
	// Dir is the partition directory; created if missing.
	Dir string
	// PartDur is the partition interval (whole seconds, minimum 1 s);
	// 0 = DefaultPartDur.
	PartDur time.Duration
	// Retention bounds how far back partitions are kept: a partition whose
	// interval ends more than Retention before the maintenance clock is
	// deleted atomically. 0 keeps everything.
	Retention time.Duration
	// CompactAfter is how long after a partition's interval ends before
	// its windows are compacted (partials merged into one canonical window
	// per interval). 0 = DefaultCompactAfter; negative disables compaction.
	CompactAfter time.Duration
	// MaintainEvery is the Serve loop's sweep cadence; 0 = default.
	MaintainEvery time.Duration
}

// normalized fills unset fields.
func (c Config) normalized() Config {
	if c.PartDur <= 0 {
		c.PartDur = DefaultPartDur
	}
	c.PartDur = c.PartDur.Round(time.Second)
	if c.PartDur < time.Second {
		c.PartDur = time.Second
	}
	if c.CompactAfter == 0 {
		c.CompactAfter = DefaultCompactAfter
	}
	if c.MaintainEvery <= 0 {
		c.MaintainEvery = DefaultMaintainEvery
	}
	return c
}

// Stats is a point-in-time snapshot of the store's state and lifetime
// counters, exported on /metrics.
type Stats struct {
	Partitions int   // partitions in the index
	Compacted  int   // partitions already compacted
	Windows    int   // windows held across all partitions
	Rows       int   // rows held across all windows
	DiskBytes  int64 // bytes across all segment files

	WindowsPersisted uint64 // sealed windows accepted by Add
	SegmentWrites    uint64 // successful segment file writes
	WriteErrors      uint64 // failed segment file writes
	Compactions      uint64 // partitions compacted
	RetentionDeletes uint64 // partitions deleted by retention
	LoadErrors       uint64 // partitions opened with a damaged tail
}

// partition is one PartDur interval of the index: its windows in arrival
// order (compaction canonicalizes them to one per interval) plus the
// persistence state of its segment file.
type partition struct {
	start     int64 // unix seconds, PartDur-aligned
	windows   []rollup.Window
	compacted bool
	dirty     bool // in-memory state ahead of the segment file
	diskBytes int64
}

// Store is a time-partitioned on-disk store of sealed rollup windows.
// Construct with Open; all methods are safe for concurrent use. Reads are
// served from the in-memory partition index — the disk is durability, not
// the read path.
type Store struct {
	cfg Config

	mu    sync.RWMutex
	parts map[int64]*partition

	onInvalidate []func(from, to time.Time)

	windowsPersisted atomic.Uint64
	segmentWrites    atomic.Uint64
	writeErrors      atomic.Uint64
	compactions      atomic.Uint64
	retentionDeletes atomic.Uint64
	loadErrors       atomic.Uint64
}

// Open creates or reopens the store at cfg.Dir, loading every segment file
// into the partition index. A segment with a damaged tail contributes its
// validated prefix (counted in Stats.LoadErrors) — a torn write never
// prevents the store from opening.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.normalized()
	if cfg.Dir == "" {
		return nil, errors.New("winstore: no directory configured")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("winstore: %w", err)
	}
	s := &Store{cfg: cfg, parts: make(map[int64]*partition)}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("winstore: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".seg" {
			continue
		}
		path := filepath.Join(cfg.Dir, name)
		seg, err := ReadSegmentFile(path)
		if err != nil {
			s.loadErrors.Add(1)
			if seg == nil || len(seg.Windows) == 0 {
				continue // nothing validated: leave the file for inspection
			}
			// Partial prefix: keep what validated and rewrite the file so
			// the damage is not re-read forever.
		}
		p := s.parts[seg.Start.Unix()]
		if p == nil {
			p = &partition{start: seg.Start.Unix(), compacted: seg.Compacted}
			s.parts[p.start] = p
		}
		p.windows = append(p.windows, seg.Windows...)
		p.dirty = err != nil
		if fi, serr := os.Stat(path); serr == nil {
			p.diskBytes = fi.Size()
		}
	}
	// Rewrite any partition recovered from a damaged file, so the next
	// open reads a clean segment.
	s.mu.Lock()
	defer s.mu.Unlock()
	var errs []error
	for _, p := range s.parts {
		if p.dirty {
			errs = append(errs, s.persistLocked(p))
		}
	}
	return s, errors.Join(errs...)
}

// Dir returns the partition directory.
func (s *Store) Dir() string { return s.cfg.Dir }

// PartDur returns the partition interval in effect.
func (s *Store) PartDur() time.Duration { return s.cfg.PartDur }

// OnInvalidate registers fn to be called with the time range of every
// partition whose contents change (new windows, compaction, retention
// deletion) — the query cache's invalidation feed. Callbacks run outside
// the store's locks, after the mutation is visible.
func (s *Store) OnInvalidate(fn func(from, to time.Time)) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	s.onInvalidate = append(s.onInvalidate, fn)
	s.mu.Unlock()
}

// notify fires the invalidation callbacks for the given partition starts.
func (s *Store) notify(starts []int64) {
	if len(starts) == 0 {
		return
	}
	s.mu.RLock()
	fns := s.onInvalidate
	s.mu.RUnlock()
	for _, start := range starts {
		from := time.Unix(start, 0).UTC()
		to := from.Add(s.cfg.PartDur)
		for _, fn := range fns {
			fn(from, to)
		}
	}
}

// partStart aligns t down to its partition boundary.
func (s *Store) partStart(t time.Time) int64 {
	psecs := int64(s.cfg.PartDur / time.Second)
	u := t.Unix()
	m := u % psecs
	if m < 0 {
		m += psecs
	}
	return u - m
}

// segPath is the partition's segment file path.
func (s *Store) segPath(start int64) string {
	return filepath.Join(s.cfg.Dir, fmt.Sprintf("part-%d-%d.seg", start, int64(s.cfg.PartDur/time.Second)))
}

// Add routes sealed windows into their partitions and persists every
// touched partition's segment file atomically. It is the rollup sink's
// OnSeal target. A failed write keeps the windows in memory and the
// partition dirty, so the next Add (or Close) retries; the error reports
// every failed partition.
func (s *Store) Add(windows []rollup.Window) error {
	if len(windows) == 0 {
		return nil
	}
	s.mu.Lock()
	touched := make(map[int64]*partition)
	for i := range windows {
		w := windows[i]
		start := s.partStart(w.Start)
		p := s.parts[start]
		if p == nil {
			p = &partition{start: start}
			s.parts[start] = p
		}
		p.windows = append(p.windows, w)
		// New partials re-open the partition: compaction must run again
		// before the one-window-per-interval invariant holds.
		p.compacted = false
		p.dirty = true
		touched[start] = p
	}
	s.windowsPersisted.Add(uint64(len(windows)))
	var errs []error
	starts := make([]int64, 0, len(touched))
	for start, p := range touched {
		if err := s.persistLocked(p); err != nil {
			errs = append(errs, err)
		}
		starts = append(starts, start)
	}
	s.mu.Unlock()
	s.notify(starts)
	return errors.Join(errs...)
}

// persistLocked writes p's segment file; callers hold s.mu.
func (s *Store) persistLocked(p *partition) error {
	seg := &Segment{
		Start:     time.Unix(p.start, 0).UTC(),
		Dur:       s.cfg.PartDur,
		Compacted: p.compacted,
		Windows:   p.windows,
	}
	path := s.segPath(p.start)
	if err := WriteSegmentFile(path, seg); err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("winstore: partition %d: %w", p.start, err)
	}
	p.dirty = false
	s.segmentWrites.Add(1)
	if fi, err := os.Stat(path); err == nil {
		p.diskBytes = fi.Size()
	}
	return nil
}

// Query returns every stored window overlapping [from, to), partials
// merged per interval and the result sorted by window start — the same
// canonical shape rollup.SealBefore produces. The returned windows are
// never mutated by the store; callers must treat them as read-only.
func (s *Store) Query(from, to time.Time) []rollup.Window {
	s.mu.RLock()
	var hits []rollup.Window
	for _, p := range s.parts {
		for i := range p.windows {
			w := &p.windows[i]
			if w.Start.Before(to) && w.Start.Add(w.Dur).After(from) {
				hits = append(hits, *w)
			}
		}
	}
	s.mu.RUnlock()
	return CompactWindows(hits)
}

// CompactWindows merges window partials per interval: every group of
// windows sharing a start time collapses into its rollup.MergeAll, and the
// result is sorted by start. Totals are preserved and the result is
// independent of input order and grouping — the rollup merge laws, proven
// by this package's property tests.
func CompactWindows(windows []rollup.Window) []rollup.Window {
	if len(windows) == 0 {
		return nil
	}
	byStart := make(map[int64][]rollup.Window)
	for _, w := range windows {
		byStart[w.Start.Unix()] = append(byStart[w.Start.Unix()], w)
	}
	out := make([]rollup.Window, 0, len(byStart))
	for _, group := range byStart {
		if len(group) == 1 {
			out = append(out, group[0])
			continue
		}
		out = append(out, rollup.MergeAll(group))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// CompactBefore compacts every uncompacted partition whose interval ended
// at or before cutoff: partials merge into one canonical window per
// interval and the segment file is rewritten with the compacted flag.
// Returns how many partitions were compacted.
func (s *Store) CompactBefore(cutoff time.Time) (int, error) {
	limit := cutoff.Unix()
	psecs := int64(s.cfg.PartDur / time.Second)
	s.mu.Lock()
	var errs []error
	var starts []int64
	n := 0
	for start, p := range s.parts {
		if p.compacted || start+psecs > limit {
			continue
		}
		p.windows = CompactWindows(p.windows)
		p.compacted = true
		p.dirty = true
		if err := s.persistLocked(p); err != nil {
			errs = append(errs, err)
		}
		s.compactions.Add(1)
		starts = append(starts, start)
		n++
	}
	s.mu.Unlock()
	s.notify(starts)
	return n, errors.Join(errs...)
}

// EnforceRetention deletes every partition whose interval ended more than
// the configured retention before now — file first, then the index entry,
// so a crash between the two re-deletes on the next sweep rather than
// resurrecting data. Returns how many partitions were deleted.
func (s *Store) EnforceRetention(now time.Time) (int, error) {
	if s.cfg.Retention <= 0 {
		return 0, nil
	}
	limit := now.Add(-s.cfg.Retention).Unix()
	psecs := int64(s.cfg.PartDur / time.Second)
	s.mu.Lock()
	var errs []error
	var starts []int64
	n := 0
	for start := range s.parts {
		if start+psecs > limit {
			continue
		}
		if err := os.Remove(s.segPath(start)); err != nil && !errors.Is(err, os.ErrNotExist) {
			errs = append(errs, fmt.Errorf("winstore: retention: %w", err))
			continue // keep the index entry; the next sweep retries
		}
		delete(s.parts, start)
		s.retentionDeletes.Add(1)
		starts = append(starts, start)
		n++
	}
	s.mu.Unlock()
	s.notify(starts)
	return n, errors.Join(errs...)
}

// Maintain runs one compaction + retention sweep at the given clock.
func (s *Store) Maintain(now time.Time) error {
	var errs []error
	if s.cfg.CompactAfter >= 0 {
		if _, err := s.CompactBefore(now.Add(-s.cfg.CompactAfter)); err != nil {
			errs = append(errs, err)
		}
	}
	if _, err := s.EnforceRetention(now); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// Name implements core.Service.
func (s *Store) Name() string { return "winstore" }

// Serve runs the background maintenance loop (compaction and retention on
// the MaintainEvery cadence) until ctx is done, then flushes any dirty
// partition. It implements core.Service so the daemon runs it under the
// pipeline lifecycle.
func (s *Store) Serve(ctx context.Context) error {
	ticker := time.NewTicker(s.cfg.MaintainEvery)
	defer ticker.Stop()
	for {
		select {
		case now := <-ticker.C:
			if err := s.Maintain(now); err != nil {
				// Sweep errors are retried next tick; they surface through
				// Stats.WriteErrors rather than killing the maintenance loop.
				continue
			}
		case <-ctx.Done():
			return s.Close()
		}
	}
}

// Close flushes every dirty partition. The store stays readable (Close is
// idempotent); it exists so a failed Add's windows are not lost when the
// process exits cleanly.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var errs []error
	for _, p := range s.parts {
		if p.dirty {
			errs = append(errs, s.persistLocked(p))
		}
	}
	return errors.Join(errs...)
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	st := Stats{
		Partitions:       len(s.parts),
		WindowsPersisted: s.windowsPersisted.Load(),
		SegmentWrites:    s.segmentWrites.Load(),
		WriteErrors:      s.writeErrors.Load(),
		Compactions:      s.compactions.Load(),
		RetentionDeletes: s.retentionDeletes.Load(),
		LoadErrors:       s.loadErrors.Load(),
	}
	for _, p := range s.parts {
		if p.compacted {
			st.Compacted++
		}
		st.Windows += len(p.windows)
		for i := range p.windows {
			st.Rows += len(p.windows[i].Rows)
		}
		st.DiskBytes += p.diskBytes
	}
	s.mu.RUnlock()
	return st
}

// Bounds returns the time extent of the stored windows (zero times when
// the store is empty) — the health endpoint's coverage report.
func (s *Store) Bounds() (oldest, newest time.Time) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, p := range s.parts {
		for i := range p.windows {
			w := &p.windows[i]
			if oldest.IsZero() || w.Start.Before(oldest) {
				oldest = w.Start
			}
			if end := w.Start.Add(w.Dur); end.After(newest) {
				newest = end
			}
		}
	}
	return oldest, newest
}
