package winstore

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/rollup"
)

// readGood reads path and fails the test unless it decodes cleanly.
func readGood(t *testing.T, path string) *Segment {
	t.Helper()
	seg, err := ReadSegmentFile(path)
	if err != nil {
		t.Fatalf("previous generation unreadable: %v", err)
	}
	return seg
}

// noTempLitter fails the test if dir holds anything but wantFiles.
func noTempLitter(t *testing.T, dir string, wantFiles int) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != wantFiles {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory holds %v, want %d files (temp litter after fault?)", names, wantFiles)
	}
}

// TestSegmentWriteFaultSweep drives every failpoint on the segment write
// path — ENOSPC at each syscall family plus a torn (short) write — and
// proves the invariant the atomic-write discipline promises: the attempt
// fails, the previous good generation still decodes bit-for-bit, and no
// temp file is left behind.
func TestSegmentWriteFaultSweep(t *testing.T) {
	base := time.Date(2022, 5, 25, 12, 0, 0, 0, time.UTC)
	genA := &Segment{Start: base, Dur: time.Hour, Windows: []rollup.Window{mkWindow(base, time.Minute, 8, 1)}}
	genB := &Segment{Start: base, Dur: time.Hour, Windows: []rollup.Window{
		mkWindow(base, time.Minute, 8, 1),
		mkWindow(base.Add(time.Minute), time.Minute, 6, 2),
	}}
	sweeps := []struct{ point, spec string }{
		{"winstore.segment.write", "1*error(no space left on device)"},
		{"winstore.segment.write", "1*shortwrite(64)"}, // torn mid-encode
		{"winstore.segment.write", "1*shortwrite(0)"},  // torn before the header
		{"winstore.segment.sync", "1*error(input/output error)"},
		{"winstore.segment.rename", "1*error(no space left on device)"},
	}
	for _, sw := range sweeps {
		t.Run(sw.point+"/"+sw.spec, func(t *testing.T) {
			defer fault.DisableAll()
			dir := t.TempDir()
			path := filepath.Join(dir, "part-0-3600.seg")
			if err := WriteSegmentFile(path, genA); err != nil {
				t.Fatalf("good generation write: %v", err)
			}
			want := readGood(t, path)

			if err := fault.Enable(sw.point, sw.spec); err != nil {
				t.Fatal(err)
			}
			err := WriteSegmentFile(path, genB)
			if err == nil {
				t.Fatal("faulted write reported success")
			}
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("error lost injection provenance: %v", err)
			}
			got := readGood(t, path)
			if !reflect.DeepEqual(got, want) {
				t.Fatal("previous generation changed under a failed write")
			}
			noTempLitter(t, dir, 1)

			// The site heals once the budget is spent: the next write lands.
			if err := WriteSegmentFile(path, genB); err != nil {
				t.Fatalf("post-fault write: %v", err)
			}
			if got := readGood(t, path); len(got.Windows) != len(genB.Windows) {
				t.Fatalf("recovered write holds %d windows, want %d", len(got.Windows), len(genB.Windows))
			}
		})
	}
}

// TestStoreSurvivesSegmentFaults proves the same invariant one layer up:
// a Store whose persist hits ENOSPC counts the error, keeps serving the
// in-memory windows, retries on the next Add, and a reopened Store sees
// the last good on-disk generation.
func TestStoreSurvivesSegmentFaults(t *testing.T) {
	defer fault.DisableAll()
	dir := t.TempDir()
	base := time.Date(2022, 5, 25, 12, 0, 0, 0, time.UTC)
	cfg := Config{Dir: dir, PartDur: time.Hour}

	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add([]rollup.Window{mkWindow(base, time.Minute, 4, 1)}); err != nil {
		t.Fatalf("good add: %v", err)
	}

	if err := fault.Enable("winstore.segment.write", "1*error(no space left on device)"); err != nil {
		t.Fatal(err)
	}
	err = s.Add([]rollup.Window{mkWindow(base.Add(time.Minute), time.Minute, 4, 2)})
	if err == nil {
		t.Fatal("faulted Add reported success")
	}
	if st := s.Stats(); st.WriteErrors != 1 {
		t.Fatalf("WriteErrors = %d, want 1", st.WriteErrors)
	}
	// The in-memory index still serves both windows despite the failed
	// persist.
	wins := s.Query(base, base.Add(time.Hour))
	if len(wins) != 2 {
		t.Fatalf("in-memory query returned %d windows, want 2", len(wins))
	}

	// Disk healed: the next Add re-persists the dirty partition, so a
	// reopened store sees everything.
	if err := s.Add([]rollup.Window{mkWindow(base.Add(2*time.Minute), time.Minute, 4, 3)}); err != nil {
		t.Fatalf("post-fault add: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	wins = s2.Query(base, base.Add(time.Hour))
	if len(wins) != 3 {
		t.Fatalf("reopened store serves %d windows, want 3", len(wins))
	}
}
