// Package influxsink exports correlated flows as InfluxDB line protocol —
// the TSDB leg of the paper's deployment, where the correlated stream feeds
// the operator's time-series dashboards (the same shape the gonflux
// NetFlow→TSDB exporters provide, done through the pipeline's batched Sink
// contract instead of one synchronous POST per record).
//
// One flow becomes one point:
//
//	flowdns,service=svc.example,tier=active src="198.51.100.7",dst="10.0.0.1",bytes=1200i,packets=10i,chain=1i 1700000000000000000
//
// The service and lookup tier are tags (the dimensions dashboards group
// by); addresses and counters are fields; the timestamp is the flow's, in
// nanoseconds. Uncorrelated flows carry no service tag (or are skipped with
// SkipMisses).
//
// The sink batches by size and time: WriteBatch appends to a reusable line
// buffer and ships it when it passes MaxBatchBytes; Flush — called by the
// Write workers after every partial batch — ships whatever has lingered
// longer than FlushInterval; Close ships the rest unconditionally.
//
// Failure handling is transactional so the sink composes with
// core.RetrySink, which owns retries, backoff, and the spill queue: a
// WriteBatch whose ship fails rolls the batch's own lines back out of the
// buffer and returns the error, so a retry of the same batch cannot
// duplicate points. Lines accepted by earlier WriteBatch calls stay
// buffered for the next attempt, bounded — beyond the bound the oldest
// lines are dropped and accounted in Stats.DroppedBytes / DroppedRecords /
// DroppedBatches, so an endpoint outage costs bounded memory, never
// unbounded growth.
package influxsink

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
)

// Defaults; see Config.
const (
	DefaultMeasurement   = "flowdns"
	DefaultMaxBatchBytes = 64 << 10
	DefaultFlushInterval = time.Second
	// maxBufferedFactor bounds the carry-over buffer after failed sends to
	// maxBufferedFactor × MaxBatchBytes; beyond that the oldest lines are
	// dropped (and accounted in Stats.DroppedBytes/DroppedRecords/
	// DroppedBatches) rather than growing without limit while the endpoint
	// is down.
	maxBufferedFactor = 16
)

// Config configures a Sink. Exactly one of W and URL must be set: W streams
// line protocol to a writer (a file, a pipe to `influx write`), URL POSTs
// each batch to an InfluxDB-compatible write endpoint (e.g.
// http://host:8086/write?db=flowdns).
type Config struct {
	W   io.Writer
	URL string
	// Client overrides the HTTP client in URL mode (nil = a client with a
	// 10 s timeout).
	Client *http.Client

	// Measurement names the series ("" = "flowdns").
	Measurement string
	// SkipMisses drops flows without a resolved name instead of writing an
	// untagged point.
	SkipMisses bool

	// MaxBatchBytes ships the buffer once it exceeds this size (0 = 64 KiB).
	MaxBatchBytes int
	// FlushInterval is the time bound: a Flush call ships a non-empty
	// buffer only once this much has passed since the last ship, so the
	// Write workers' per-partial-batch Flush cadence does not defeat
	// batching under light load (0 = 1 s; negative = ship on every Flush).
	FlushInterval time.Duration
}

// Stats counts the sink's I/O outcomes.
type Stats struct {
	// Points is the number of encoded points (one per flow written).
	Points uint64
	// Sends is the number of successful batch ships; SendErrors counts
	// failed ship attempts (retrying them is the caller's job — wrap the
	// sink in a core.RetrySink).
	Sends      uint64
	SendErrors uint64
	// DroppedBytes is how much buffered line protocol was discarded because
	// the endpoint stayed unreachable past the buffer bound; DroppedRecords
	// is how many encoded points those bytes held, and DroppedBatches how
	// many overflow events cut the buffer.
	DroppedBytes   uint64
	DroppedRecords uint64
	DroppedBatches uint64
}

// Sink implements core.Sink over InfluxDB line protocol.
type Sink struct {
	cfg    Config
	client *http.Client

	mu       sync.Mutex
	buf      []byte
	lastShip time.Time
	stats    Stats

	// now is a test seam for the clock.
	now func() time.Time
}

// New builds a Sink from cfg.
func New(cfg Config) (*Sink, error) {
	if (cfg.W == nil) == (cfg.URL == "") {
		return nil, errors.New("influxsink: exactly one of W and URL must be set")
	}
	if cfg.Measurement == "" {
		cfg.Measurement = DefaultMeasurement
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = DefaultFlushInterval
	}
	s := &Sink{
		cfg:    cfg,
		client: cfg.Client,
		buf:    make([]byte, 0, cfg.MaxBatchBytes+1024),
		now:    time.Now,
	}
	if s.client == nil {
		s.client = &http.Client{Timeout: 10 * time.Second}
	}
	return s, nil
}

// appendEscaped writes s to dst escaping the line-protocol special
// characters for tag keys/values and measurements: comma, space, equals.
func appendEscaped(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case ',', ' ', '=':
			dst = append(dst, '\\', c)
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// AppendPoint encodes one correlated flow as a line-protocol point into dst
// and returns the extended slice. Exported for the benchmark harness; the
// sink itself appends straight into its batch buffer.
func AppendPoint(dst []byte, measurement string, cf *core.CorrelatedFlow) []byte {
	dst = appendEscaped(dst, measurement)
	if cf.Name != "" {
		dst = append(dst, ",service="...)
		dst = appendEscaped(dst, cf.Name)
	}
	if cf.Tier != core.TierNone {
		dst = append(dst, ",tier="...)
		dst = append(dst, cf.Tier.String()...)
	}
	dst = append(dst, " src=\""...)
	dst = cf.Flow.SrcIP.AppendTo(dst)
	dst = append(dst, "\",dst=\""...)
	dst = cf.Flow.DstIP.AppendTo(dst)
	dst = append(dst, "\",bytes="...)
	dst = strconv.AppendUint(dst, cf.Flow.Bytes, 10)
	dst = append(dst, "i,packets="...)
	dst = strconv.AppendUint(dst, cf.Flow.Packets, 10)
	dst = append(dst, "i,chain="...)
	dst = strconv.AppendInt(dst, int64(cf.ChainLen), 10)
	dst = append(dst, "i "...)
	dst = strconv.AppendInt(dst, cf.Flow.Timestamp.UnixNano(), 10)
	dst = append(dst, '\n')
	return dst
}

// WriteBatch encodes the batch into the reusable line buffer under one lock
// acquisition and ships it once it passes the size bound. The call is
// transactional: if the ship fails, this batch's own lines are rolled back
// out of the buffer before the error returns, so the caller (typically a
// core.RetrySink) can retry or spill the same batch with no duplication.
func (s *Sink) WriteBatch(_ context.Context, batch []core.CorrelatedFlow) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	pre, prePoints := len(s.buf), s.stats.Points
	for i := range batch {
		cf := &batch[i]
		if cf.Name == "" && s.cfg.SkipMisses {
			continue
		}
		s.buf = AppendPoint(s.buf, s.cfg.Measurement, cf)
		s.stats.Points++
	}
	if len(s.buf) >= s.cfg.MaxBatchBytes {
		if err := s.ship(); err != nil {
			s.buf = s.buf[:pre]
			s.stats.Points = prePoints
			s.enforceBound()
			return err
		}
	}
	return nil
}

// Flush ships the buffer if FlushInterval has passed since the last ship
// (the Write workers call Flush after every partial batch; the interval
// keeps those calls from degrading batches under light load).
func (s *Sink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) == 0 {
		return nil
	}
	if s.cfg.FlushInterval > 0 && s.now().Sub(s.lastShip) < s.cfg.FlushInterval {
		return nil
	}
	if err := s.ship(); err != nil {
		s.enforceBound()
		return err
	}
	return nil
}

// Close ships whatever is buffered, unconditionally: the pipeline's drain
// must not leave encoded points behind.
func (s *Sink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) == 0 {
		return nil
	}
	if err := s.ship(); err != nil {
		s.enforceBound()
		return err
	}
	return nil
}

// SinkStats snapshots the I/O counters.
func (s *Sink) SinkStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ship makes one send attempt of the buffered lines, called with mu held.
// On success the buffer resets (capacity retained); on failure the lines
// stay for the next attempt and the error returns to the caller, who owns
// the retry policy (core.RetrySink in the daemon wiring).
func (s *Sink) ship() error {
	if err := s.send(s.buf); err != nil {
		s.stats.SendErrors++
		return fmt.Errorf("influxsink: %w", err)
	}
	s.buf = s.buf[:0]
	s.lastShip = s.now()
	s.stats.Sends++
	return nil
}

// enforceBound caps the carry-over buffer at maxBufferedFactor ×
// MaxBatchBytes after a failed ship, dropping the oldest whole lines and
// accounting them in bytes, records, and cut events. Called with mu held.
func (s *Sink) enforceBound() {
	max := s.cfg.MaxBatchBytes * maxBufferedFactor
	if len(s.buf) <= max {
		return
	}
	cut := len(s.buf) - max
	// Drop whole lines only: advance the cut to the next newline so the
	// surviving buffer still starts at a point boundary.
	if i := bytes.IndexByte(s.buf[cut:], '\n'); i >= 0 {
		cut += i + 1
	} else {
		cut = len(s.buf)
	}
	s.stats.DroppedBytes += uint64(cut)
	s.stats.DroppedRecords += uint64(bytes.Count(s.buf[:cut], []byte{'\n'}))
	s.stats.DroppedBatches++
	s.buf = s.buf[:copy(s.buf, s.buf[cut:])]
}

// send performs one write attempt of the encoded lines.
func (s *Sink) send(lines []byte) error {
	if s.cfg.W != nil {
		_, err := s.cfg.W.Write(lines)
		return err
	}
	resp, err := s.client.Post(s.cfg.URL, "text/plain; charset=utf-8", bytes.NewReader(lines))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("endpoint returned %s", resp.Status)
	}
	return nil
}

var _ core.Sink = (*Sink)(nil)

func init() {
	// Registry integration: "influx" is selectable wherever registered
	// sinks are. With SinkOptions.URL set the sink POSTs to the endpoint
	// and ignores W; otherwise it streams line protocol to W (the
	// configured output file).
	core.RegisterSink("influx", true, func(o core.SinkOptions) (core.Sink, error) {
		if o.URL == "" && o.W == nil {
			return nil, errors.New("influxsink: requires an output writer or a url")
		}
		cfg := Config{Measurement: o.Measurement, SkipMisses: o.SkipMisses}
		if o.URL != "" {
			cfg.URL = o.URL
		} else {
			cfg.W = o.W
		}
		return New(cfg)
	})
}
