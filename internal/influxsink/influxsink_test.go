package influxsink

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netflow"
)

var t0 = time.Unix(1700000000, 0).UTC()

func testFlow(name string, bytes, packets uint64) core.CorrelatedFlow {
	return core.CorrelatedFlow{
		Flow: netflow.FlowRecord{
			Timestamp: t0,
			SrcIP:     netip.MustParseAddr("198.51.100.7"),
			DstIP:     netip.MustParseAddr("10.0.0.1"),
			SrcPort:   443, DstPort: 50000, Proto: netflow.ProtoTCP,
			Bytes: bytes, Packets: packets,
		},
		Name: name,
	}
}

func TestAppendPointGolden(t *testing.T) {
	cf := testFlow("svc.example", 1200, 10)
	cf.Tier = core.TierActive
	cf.ChainLen = 2
	got := string(AppendPoint(nil, "flowdns", &cf))
	want := `flowdns,service=svc.example,tier=active src="198.51.100.7",dst="10.0.0.1",bytes=1200i,packets=10i,chain=2i 1700000000000000000` + "\n"
	if got != want {
		t.Fatalf("point:\n got %q\nwant %q", got, want)
	}
}

func TestAppendPointMissHasNoServiceTag(t *testing.T) {
	cf := testFlow("", 10, 1)
	got := string(AppendPoint(nil, "flowdns", &cf))
	if strings.Contains(got, "service=") {
		t.Fatalf("miss carries a service tag: %q", got)
	}
	if !strings.HasPrefix(got, "flowdns src=") {
		t.Fatalf("unexpected miss encoding: %q", got)
	}
}

func TestAppendPointEscapesTags(t *testing.T) {
	cf := testFlow("we ird,name=x", 1, 1)
	got := string(AppendPoint(nil, "my measure", &cf))
	if !strings.HasPrefix(got, `my\ measure,service=we\ ird\,name\=x `) {
		t.Fatalf("escaping wrong: %q", got)
	}
}

func TestWriterModeSizeBound(t *testing.T) {
	var out bytes.Buffer
	s, err := New(Config{W: &out, MaxBatchBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	batch := []core.CorrelatedFlow{testFlow("svc.example", 1, 1)}
	if err := s.WriteBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatal("shipped below the size bound")
	}
	for i := 0; i < 5; i++ {
		if err := s.WriteBatch(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
	}
	if out.Len() == 0 {
		t.Fatal("size bound never shipped")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(out.String(), "\n")
	if lines != 6 {
		t.Fatalf("lines = %d, want 6", lines)
	}
	if st := s.SinkStats(); st.Points != 6 || st.Sends == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFlushIsTimeBounded(t *testing.T) {
	var out bytes.Buffer
	s, err := New(Config{W: &out, FlushInterval: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	clock := t0
	s.now = func() time.Time { return clock }
	// Establish a lastShip so the interval gate has a reference point.
	s.WriteBatch(context.Background(), []core.CorrelatedFlow{testFlow("a", 1, 1)})
	s.Close()
	out.Reset()

	s.WriteBatch(context.Background(), []core.CorrelatedFlow{testFlow("b", 1, 1)})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatal("Flush shipped before the interval elapsed")
	}
	clock = clock.Add(2 * time.Minute)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("Flush did not ship after the interval elapsed")
	}
}

// failingWriter fails its first n writes.
type failingWriter struct {
	fails int
	buf   bytes.Buffer
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.fails > 0 {
		w.fails--
		return 0, errors.New("endpoint down")
	}
	return w.buf.Write(p)
}

func TestRetryBackoffThenSuccess(t *testing.T) {
	w := &failingWriter{fails: 2}
	s, err := New(Config{W: w, MaxBatchBytes: 1, MaxRetries: 3, RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	s.sleep = func(d time.Duration) { slept = append(slept, d) }
	if err := s.WriteBatch(context.Background(), []core.CorrelatedFlow{testFlow("svc", 1, 1)}); err != nil {
		t.Fatalf("WriteBatch should succeed after retries: %v", err)
	}
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Fatalf("backoff sleeps = %v, want [10ms 20ms]", slept)
	}
	if st := s.SinkStats(); st.Retries != 2 || st.Sends != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if w.buf.Len() == 0 {
		t.Fatal("nothing written after recovery")
	}
}

func TestRetryExhaustionKeepsBuffer(t *testing.T) {
	w := &failingWriter{fails: 100}
	s, err := New(Config{W: w, FlushInterval: -1, MaxRetries: 1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.sleep = func(time.Duration) {}
	if err := s.WriteBatch(context.Background(), []core.CorrelatedFlow{testFlow("svc", 1, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err == nil {
		t.Fatal("Flush succeeded with the endpoint down")
	}
	// Recovery: the buffered line must ship on the next attempt, not be lost.
	w.fails = 0
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(w.buf.String(), "\n"); got != 1 {
		t.Fatalf("recovered lines = %d, want 1", got)
	}
	if st := s.SinkStats(); st.DroppedBytes != 0 {
		t.Fatalf("dropped %d bytes with buffer under the bound", st.DroppedBytes)
	}
}

func TestBufferBoundDropsOldest(t *testing.T) {
	w := &failingWriter{fails: 1 << 30}
	s, err := New(Config{W: w, MaxBatchBytes: 64, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	s.sleep = func(time.Duration) {}
	for i := 0; i < 100; i++ {
		s.WriteBatch(context.Background(), []core.CorrelatedFlow{testFlow("svc.example", uint64(i), 1)})
	}
	st := s.SinkStats()
	if st.DroppedBytes == 0 {
		t.Fatal("unbounded buffer: nothing dropped with the endpoint down")
	}
	s.mu.Lock()
	buffered := len(s.buf)
	startsClean := buffered == 0 || bytes.HasPrefix(s.buf, []byte("flowdns"))
	s.mu.Unlock()
	if buffered > 64*maxBufferedFactor+1024 {
		t.Fatalf("buffer grew past the bound: %d bytes", buffered)
	}
	if !startsClean {
		t.Fatal("buffer does not start at a line boundary after dropping")
	}
}

func TestHTTPMode(t *testing.T) {
	var gotBody atomic.Pointer[string]
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var b bytes.Buffer
		b.ReadFrom(r.Body)
		body := b.String()
		gotBody.Store(&body)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	s, err := New(Config{URL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBatch(context.Background(), []core.CorrelatedFlow{testFlow("svc.example", 9, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	body := gotBody.Load()
	if body == nil || !strings.Contains(*body, "service=svc.example") {
		t.Fatalf("endpoint got %v", body)
	}
}

func TestHTTPErrorStatusFails(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	defer srv.Close()
	s, err := New(Config{URL: srv.URL, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	s.WriteBatch(context.Background(), []core.CorrelatedFlow{testFlow("svc", 1, 1)})
	if err := s.Close(); err == nil {
		t.Fatal("Close succeeded against a 400 endpoint")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted neither W nor URL")
	}
	if _, err := New(Config{W: &bytes.Buffer{}, URL: "http://x"}); err == nil {
		t.Fatal("New accepted both W and URL")
	}
}

func TestRegistry(t *testing.T) {
	var out bytes.Buffer
	s, err := core.NewSinkByName("influx", core.SinkOptions{W: &out})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBatch(context.Background(), []core.CorrelatedFlow{testFlow("svc.example", 5, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "flowdns,service=svc.example") {
		t.Fatalf("registry sink wrote %q", out.String())
	}
	if _, err := core.NewSinkByName("influx", core.SinkOptions{}); err == nil {
		t.Fatal("registry built an influx sink with no destination")
	}
}

func TestSkipMisses(t *testing.T) {
	var out bytes.Buffer
	s, err := New(Config{W: &out, SkipMisses: true})
	if err != nil {
		t.Fatal(err)
	}
	s.WriteBatch(context.Background(), []core.CorrelatedFlow{
		testFlow("", 1, 1),
		testFlow("svc.example", 2, 1),
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "\n"); got != 1 {
		t.Fatalf("lines = %d, want 1 (miss skipped)", got)
	}
}
