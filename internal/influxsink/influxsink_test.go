package influxsink

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netflow"
)

var t0 = time.Unix(1700000000, 0).UTC()

func testFlow(name string, bytes, packets uint64) core.CorrelatedFlow {
	return core.CorrelatedFlow{
		Flow: netflow.FlowRecord{
			Timestamp: t0,
			SrcIP:     netip.MustParseAddr("198.51.100.7"),
			DstIP:     netip.MustParseAddr("10.0.0.1"),
			SrcPort:   443, DstPort: 50000, Proto: netflow.ProtoTCP,
			Bytes: bytes, Packets: packets,
		},
		Name: name,
	}
}

func TestAppendPointGolden(t *testing.T) {
	cf := testFlow("svc.example", 1200, 10)
	cf.Tier = core.TierActive
	cf.ChainLen = 2
	got := string(AppendPoint(nil, "flowdns", &cf))
	want := `flowdns,service=svc.example,tier=active src="198.51.100.7",dst="10.0.0.1",bytes=1200i,packets=10i,chain=2i 1700000000000000000` + "\n"
	if got != want {
		t.Fatalf("point:\n got %q\nwant %q", got, want)
	}
}

func TestAppendPointMissHasNoServiceTag(t *testing.T) {
	cf := testFlow("", 10, 1)
	got := string(AppendPoint(nil, "flowdns", &cf))
	if strings.Contains(got, "service=") {
		t.Fatalf("miss carries a service tag: %q", got)
	}
	if !strings.HasPrefix(got, "flowdns src=") {
		t.Fatalf("unexpected miss encoding: %q", got)
	}
}

func TestAppendPointEscapesTags(t *testing.T) {
	cf := testFlow("we ird,name=x", 1, 1)
	got := string(AppendPoint(nil, "my measure", &cf))
	if !strings.HasPrefix(got, `my\ measure,service=we\ ird\,name\=x `) {
		t.Fatalf("escaping wrong: %q", got)
	}
}

func TestWriterModeSizeBound(t *testing.T) {
	var out bytes.Buffer
	s, err := New(Config{W: &out, MaxBatchBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	batch := []core.CorrelatedFlow{testFlow("svc.example", 1, 1)}
	if err := s.WriteBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatal("shipped below the size bound")
	}
	for i := 0; i < 5; i++ {
		if err := s.WriteBatch(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
	}
	if out.Len() == 0 {
		t.Fatal("size bound never shipped")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(out.String(), "\n")
	if lines != 6 {
		t.Fatalf("lines = %d, want 6", lines)
	}
	if st := s.SinkStats(); st.Points != 6 || st.Sends == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFlushIsTimeBounded(t *testing.T) {
	var out bytes.Buffer
	s, err := New(Config{W: &out, FlushInterval: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	clock := t0
	s.now = func() time.Time { return clock }
	// Establish a lastShip so the interval gate has a reference point.
	s.WriteBatch(context.Background(), []core.CorrelatedFlow{testFlow("a", 1, 1)})
	s.Close()
	out.Reset()

	s.WriteBatch(context.Background(), []core.CorrelatedFlow{testFlow("b", 1, 1)})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatal("Flush shipped before the interval elapsed")
	}
	clock = clock.Add(2 * time.Minute)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("Flush did not ship after the interval elapsed")
	}
}

// failingWriter fails its first n writes.
type failingWriter struct {
	fails int
	buf   bytes.Buffer
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.fails > 0 {
		w.fails--
		return 0, errors.New("endpoint down")
	}
	return w.buf.Write(p)
}

// TestTransactionalRollback proves a failed ship rolls the batch's own
// lines back out of the buffer, so a caller retrying the same batch (a
// core.RetrySink) cannot duplicate points.
func TestTransactionalRollback(t *testing.T) {
	w := &failingWriter{fails: 1}
	s, err := New(Config{W: w, MaxBatchBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	batch := []core.CorrelatedFlow{testFlow("svc.example", 1, 1)}
	if err := s.WriteBatch(context.Background(), batch); err == nil {
		t.Fatal("WriteBatch succeeded against a down endpoint")
	}
	if st := s.SinkStats(); st.Points != 0 || st.SendErrors != 1 {
		t.Fatalf("stats after rollback = %+v", st)
	}
	// The caller retries the same batch after recovery: exactly one copy.
	if err := s.WriteBatch(context.Background(), batch); err != nil {
		t.Fatalf("retry = %v", err)
	}
	if got := strings.Count(w.buf.String(), "\n"); got != 1 {
		t.Fatalf("lines after retry = %d, want 1 (duplicated or lost)", got)
	}
	if st := s.SinkStats(); st.Points != 1 || st.Sends != 1 {
		t.Fatalf("stats after retry = %+v", st)
	}
}

func TestFlushFailureKeepsBuffer(t *testing.T) {
	w := &failingWriter{fails: 1}
	s, err := New(Config{W: w, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBatch(context.Background(), []core.CorrelatedFlow{testFlow("svc", 1, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err == nil {
		t.Fatal("Flush succeeded with the endpoint down")
	}
	// Recovery: the buffered line must ship on the next attempt, not be lost.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(w.buf.String(), "\n"); got != 1 {
		t.Fatalf("recovered lines = %d, want 1", got)
	}
	if st := s.SinkStats(); st.DroppedBytes != 0 {
		t.Fatalf("dropped %d bytes with buffer under the bound", st.DroppedBytes)
	}
}

// TestBufferBoundDropsOldest proves the carry-over bound cuts the oldest
// whole lines and accounts the loss in bytes, records, and cut events (the
// record/batch counters are what /metrics exports as
// flowdns_sink_dropped_records/batches).
func TestBufferBoundDropsOldest(t *testing.T) {
	w := &failingWriter{fails: 1}
	s, err := New(Config{W: w, MaxBatchBytes: 64, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Stuff the carry-over buffer past the bound directly (in a live
	// pipeline this state needs a pathological endpoint; the accounting
	// must be exact regardless of how the buffer got here).
	const lines = 100
	s.mu.Lock()
	for i := 0; i < lines; i++ {
		cf := testFlow("svc.example", uint64(i), 1)
		s.buf = AppendPoint(s.buf, s.cfg.Measurement, &cf)
	}
	total := len(s.buf)
	s.mu.Unlock()
	if err := s.Flush(); err == nil {
		t.Fatal("Flush succeeded with the endpoint down")
	}
	st := s.SinkStats()
	if st.DroppedBytes == 0 || st.DroppedRecords == 0 || st.DroppedBatches != 1 {
		t.Fatalf("drop accounting = %+v, want non-zero bytes/records and 1 batch", st)
	}
	s.mu.Lock()
	buffered := len(s.buf)
	startsClean := buffered == 0 || bytes.HasPrefix(s.buf, []byte("flowdns"))
	remaining := bytes.Count(s.buf, []byte{'\n'})
	s.mu.Unlock()
	if buffered > 64*maxBufferedFactor {
		t.Fatalf("buffer grew past the bound: %d bytes", buffered)
	}
	if !startsClean {
		t.Fatal("buffer does not start at a line boundary after dropping")
	}
	if int(st.DroppedRecords)+remaining != lines {
		t.Fatalf("dropped %d + remaining %d != %d lines", st.DroppedRecords, remaining, lines)
	}
	if int(st.DroppedBytes) != total-buffered {
		t.Fatalf("DroppedBytes = %d, want %d", st.DroppedBytes, total-buffered)
	}
}

// TestRetrySinkComposition proves the migration: the sink makes single
// attempts and a wrapping core.RetrySink owns retry/spill/replay, with no
// point duplicated or lost across the outage.
func TestRetrySinkComposition(t *testing.T) {
	w := &failingWriter{fails: 2}
	inner, err := New(Config{W: w, MaxBatchBytes: 1, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := core.NewRetrySink(inner, core.RetryConfig{MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Two writes during the outage: both spill instead of surfacing errors.
	rs.WriteBatch(context.Background(), []core.CorrelatedFlow{testFlow("a.example", 1, 1)})
	rs.WriteBatch(context.Background(), []core.CorrelatedFlow{testFlow("b.example", 2, 1)})
	if st := rs.Stats(); st.SpillDepth != 2 {
		t.Fatalf("SpillDepth = %d, want 2", st.SpillDepth)
	}
	// Endpoint recovers (fails exhausted): the next flush replays in order.
	if err := rs.Flush(); err != nil {
		t.Fatalf("Flush = %v", err)
	}
	if err := rs.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	got := w.buf.String()
	if strings.Count(got, "\n") != 2 {
		t.Fatalf("lines = %d, want 2 (duplicated or lost):\n%s", strings.Count(got, "\n"), got)
	}
	if a, b := strings.Index(got, "a.example"), strings.Index(got, "b.example"); a < 0 || b < 0 || a > b {
		t.Fatalf("replay order broken:\n%s", got)
	}
}

func TestHTTPMode(t *testing.T) {
	var gotBody atomic.Pointer[string]
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var b bytes.Buffer
		b.ReadFrom(r.Body)
		body := b.String()
		gotBody.Store(&body)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	s, err := New(Config{URL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBatch(context.Background(), []core.CorrelatedFlow{testFlow("svc.example", 9, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	body := gotBody.Load()
	if body == nil || !strings.Contains(*body, "service=svc.example") {
		t.Fatalf("endpoint got %v", body)
	}
}

func TestHTTPErrorStatusFails(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	defer srv.Close()
	s, err := New(Config{URL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	s.WriteBatch(context.Background(), []core.CorrelatedFlow{testFlow("svc", 1, 1)})
	if err := s.Close(); err == nil {
		t.Fatal("Close succeeded against a 400 endpoint")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted neither W nor URL")
	}
	if _, err := New(Config{W: &bytes.Buffer{}, URL: "http://x"}); err == nil {
		t.Fatal("New accepted both W and URL")
	}
}

func TestRegistry(t *testing.T) {
	var out bytes.Buffer
	s, err := core.NewSinkByName("influx", core.SinkOptions{W: &out})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBatch(context.Background(), []core.CorrelatedFlow{testFlow("svc.example", 5, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "flowdns,service=svc.example") {
		t.Fatalf("registry sink wrote %q", out.String())
	}
	if _, err := core.NewSinkByName("influx", core.SinkOptions{}); err == nil {
		t.Fatal("registry built an influx sink with no destination")
	}
}

func TestSkipMisses(t *testing.T) {
	var out bytes.Buffer
	s, err := New(Config{W: &out, SkipMisses: true})
	if err != nil {
		t.Fatal(err)
	}
	s.WriteBatch(context.Background(), []core.CorrelatedFlow{
		testFlow("", 1, 1),
		testFlow("svc.example", 2, 1),
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "\n"); got != 1 {
		t.Fatalf("lines = %d, want 1 (miss skipped)", got)
	}
}
