package workload

import (
	"context"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnsname"
	"repro/internal/dnswire"
	"repro/internal/netflow"
	"repro/internal/stream"
)

var simStart = time.Unix(1653475200, 0)

func smallUniverse(t *testing.T) *Universe {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumServices = 500
	cfg.SuspiciousServices = 20
	cfg.MalformedServices = 20
	return NewUniverse(cfg)
}

func TestUniverseDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumServices = 200
	a, b := NewUniverse(cfg), NewUniverse(cfg)
	if len(a.Services) != len(b.Services) {
		t.Fatal("size mismatch")
	}
	for i := range a.Services {
		if a.Services[i].Name != b.Services[i].Name ||
			len(a.Services[i].ISPAddrs) != len(b.Services[i].ISPAddrs) {
			t.Fatalf("service %d differs", i)
		}
		for j := range a.Services[i].ISPAddrs {
			if a.Services[i].ISPAddrs[j] != b.Services[i].ISPAddrs[j] {
				t.Fatalf("service %d addr %d differs", i, j)
			}
		}
	}
}

func TestUniversePopulation(t *testing.T) {
	u := smallUniverse(t)
	if len(u.Services) != 500 {
		t.Fatalf("services = %d", len(u.Services))
	}
	suspicious, malformed, cdnHosted, dualStack := 0, 0, 0, 0
	for _, s := range u.Services {
		if s.Category != 0 {
			suspicious++
		}
		if s.Malformed {
			malformed++
			if dnsname.Valid(s.Name) {
				t.Errorf("malformed service has valid name %q", s.Name)
			}
		}
		if s.CDN >= 0 {
			cdnHosted++
			if len(s.Chain) == 0 {
				t.Errorf("CDN service %q has no chain", s.Name)
			}
		}
		if len(s.ISPAddrs) == 0 || len(s.PubAddrs) == 0 {
			t.Fatalf("service %q missing addresses", s.Name)
		}
		for _, a := range s.ISPAddrs {
			if a.Is6() {
				dualStack++
				break
			}
		}
		// ISP and public pools must be disjoint: that disjointness is the
		// coverage gap.
		pub := map[string]bool{}
		for _, a := range s.PubAddrs {
			pub[a.String()] = true
		}
		for _, a := range s.ISPAddrs {
			if pub[a.String()] {
				t.Fatalf("service %q shares ISP/public addr %v", s.Name, a)
			}
		}
	}
	if suspicious != 20 || malformed != 20 {
		t.Fatalf("suspicious=%d malformed=%d", suspicious, malformed)
	}
	if frac := float64(cdnHosted) / 500; frac < 0.75 || frac > 0.95 {
		t.Fatalf("CDN share = %v", frac)
	}
	if dualStack == 0 {
		t.Fatal("no dual-stack services")
	}
	// Blocklist covers exactly the suspicious services.
	if u.Blocklist.Len() != 20 {
		t.Fatalf("blocklist = %d", u.Blocklist.Len())
	}
}

func TestBGPTableCoversEdges(t *testing.T) {
	u := smallUniverse(t)
	tbl, err := u.BGPTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range u.Services[:100] {
		for _, a := range append(append([]netip.Addr{}, s.ISPAddrs...), s.PubAddrs...) {
			asn, ok := tbl.Lookup(a)
			if !ok {
				t.Fatalf("edge %v unrouted", a)
			}
			if s.CDN >= 0 {
				if a.Is4() && asn != u.CDNASNs[s.CDN] {
					t.Fatalf("edge %v -> AS%d, want AS%d", a, asn, u.CDNASNs[s.CDN])
				}
			} else if asn != u.DirectASN {
				t.Fatalf("direct edge %v -> AS%d", a, asn)
			}
		}
	}
}

func TestChainLengthDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const n = 100000
	within6, total := 0, 0
	maxLen := 0
	for i := 0; i < n; i++ {
		l := sampleChainLen(r)
		if l < 1 {
			t.Fatal("chain length < 1")
		}
		if l <= 6 {
			within6++
		}
		if l > maxLen {
			maxLen = l
		}
		total++
	}
	frac := float64(within6) / float64(total)
	if frac < 0.985 {
		t.Fatalf("P(len<=6) = %v, want >= 0.985 (Fig 6)", frac)
	}
	if maxLen < 7 {
		t.Fatal("no tail beyond 6 sampled")
	}
	if maxLen > 17 {
		t.Fatalf("maxLen = %d beyond Fig 6 support", maxLen)
	}
}

func TestTTLDistributions(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	const n = 200000
	a := aTTLDist()
	le300, lt3600 := 0, 0
	for i := 0; i < n; i++ {
		ttl := a.sample(r)
		if ttl <= 300 {
			le300++
		}
		if ttl < 3600 {
			lt3600++
		}
	}
	if f := float64(le300) / n; f < 0.64 || f > 0.76 {
		t.Fatalf("P(A ttl<=300) = %v, want ~0.70 (Fig 8)", f)
	}
	if f := float64(lt3600) / n; f < 0.98 {
		t.Fatalf("P(A ttl<3600) = %v, want ~0.99 (Fig 8)", f)
	}
	c := cnameTTLDist()
	lt7200 := 0
	for i := 0; i < n; i++ {
		if c.sample(r) < 7200 {
			lt7200++
		}
	}
	if f := float64(lt7200) / n; f < 0.98 {
		t.Fatalf("P(CNAME ttl<7200) = %v, want ~0.99 (Fig 8)", f)
	}
}

func TestDiurnalMultiplier(t *testing.T) {
	peak := DiurnalMultiplier(21)
	trough := DiurnalMultiplier(4)
	if peak != 1.0 {
		t.Fatalf("peak = %v", peak)
	}
	if trough >= 0.6 {
		t.Fatalf("trough = %v", trough)
	}
	// Continuous-ish and periodic.
	if DiurnalMultiplier(0) != DiurnalMultiplier(24) {
		t.Fatal("not periodic")
	}
	if DiurnalMultiplier(-4) != DiurnalMultiplier(20) {
		t.Fatal("negative wrap broken")
	}
	for h := 0.0; h < 24; h += 0.25 {
		m := DiurnalMultiplier(h)
		if m <= 0 || m > 1 {
			t.Fatalf("mult(%v) = %v out of range", h, m)
		}
	}
}

func TestDNSQueryEventShape(t *testing.T) {
	u := smallUniverse(t)
	g := NewGenerator(u, 99)
	sawCNAME, sawA := false, false
	for i := 0; i < 200; i++ {
		recs := g.DNSQueryEvent(simStart)
		if len(recs) == 0 {
			t.Fatal("empty query event")
		}
		for _, rec := range recs {
			if !rec.IsValid() {
				t.Fatalf("invalid record %+v", rec)
			}
			if rec.Timestamp != simStart {
				t.Fatal("timestamp not applied")
			}
			switch rec.RType {
			case dnswire.TypeCNAME:
				sawCNAME = true
			case dnswire.TypeA, dnswire.TypeAAAA:
				sawA = true
			}
		}
		// Chain must be connected: each CNAME's answer is the next record's
		// query.
		for j := 0; j+1 < len(recs); j++ {
			if recs[j].RType == dnswire.TypeCNAME && recs[j+1].RType == dnswire.TypeCNAME {
				if recs[j].Answer != recs[j+1].Query {
					t.Fatalf("broken chain: %q -> %q", recs[j].Answer, recs[j+1].Query)
				}
			}
		}
	}
	if !sawCNAME || !sawA {
		t.Fatal("missing record types in query events")
	}
}

func TestFlowBatchComposition(t *testing.T) {
	u := smallUniverse(t)
	g := NewGenerator(u, 7)
	const n = 20000
	flows := g.FlowBatch(simStart, n)
	if len(flows) < n {
		t.Fatalf("flows = %d < %d", len(flows), n)
	}
	dnsPort, nonDNS, service := 0, 0, 0
	for _, f := range flows {
		if !f.IsValid() {
			t.Fatalf("invalid flow %+v", f)
		}
		switch {
		case f.DstPort == netflow.PortDNS || f.DstPort == netflow.PortDoT:
			dnsPort++
		case f.SrcIP.Is4() && f.SrcIP.As4()[0] == 172:
			nonDNS++
		default:
			service++
		}
	}
	if f := float64(dnsPort) / float64(n); f < 0.01 || f > 0.04 {
		t.Fatalf("dns-port fraction = %v", f)
	}
	if f := float64(nonDNS) / float64(n); f < 0.16 || f > 0.25 {
		t.Fatalf("non-DNS fraction = %v", f)
	}
	if service == 0 {
		t.Fatal("no service flows")
	}
}

func TestRankServiceAndPinning(t *testing.T) {
	u := smallUniverse(t)
	g := NewGenerator(u, 7)
	svc, idx := g.RankService(0)
	if u.Services[idx] != svc {
		t.Fatal("RankService index mismatch")
	}
	u.PinServiceToCDNs(idx, []int{0, 3}, 2)
	if len(svc.ISPAddrs) != 4 {
		t.Fatalf("pinned addrs = %d", len(svc.ISPAddrs))
	}
	tbl, err := u.BGPTable()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for _, a := range svc.ISPAddrs {
		asn, ok := tbl.Lookup(a)
		if !ok {
			t.Fatalf("pinned addr %v unrouted", a)
		}
		seen[asn] = true
	}
	if !seen[u.CDNASNs[0]] || !seen[u.CDNASNs[3]] {
		t.Fatalf("pinned ASes = %v", seen)
	}
}

func TestNamesPerIPShape(t *testing.T) {
	// Fig 9: within a 300 s sample, ~88 % of IPs map to a single name.
	u := NewUniverse(DefaultConfig())
	g := NewGenerator(u, 11)
	names := map[string]map[string]bool{}
	for i := 0; i < 30000; i++ {
		for _, rec := range g.DNSQueryEvent(simStart) {
			if rec.RType == dnswire.TypeCNAME {
				continue
			}
			ip := rec.AnswerString()
			if names[ip] == nil {
				names[ip] = map[string]bool{}
			}
			names[ip][rec.Query] = true
		}
	}
	single, total := 0, 0
	for _, qs := range names {
		total++
		if len(qs) == 1 {
			single++
		}
	}
	frac := float64(single) / float64(total)
	if frac < 0.80 || frac > 0.97 {
		t.Fatalf("single-name IP fraction = %v, want ~0.88 (Fig 9)", frac)
	}
}

func TestHourlyRates(t *testing.T) {
	peakTime := time.Date(2022, 5, 25, 21, 0, 0, 0, time.UTC)
	troughTime := time.Date(2022, 5, 25, 4, 0, 0, 0, time.UTC)
	dPeak, fPeak := HourlyRates(peakTime, 100, 1000)
	dTrough, fTrough := HourlyRates(troughTime, 100, 1000)
	if dPeak <= dTrough || fPeak <= fTrough {
		t.Fatalf("rates peak %d/%d vs trough %d/%d", dPeak, fPeak, dTrough, fTrough)
	}
	if dPeak != 100 || fPeak != 1000 {
		t.Fatalf("peak rates = %d/%d", dPeak, fPeak)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	u := smallUniverse(t)
	g1, g2 := NewGenerator(u, 5), NewGenerator(u, 5)
	f1 := g1.FlowBatch(simStart, 100)
	f2 := g2.FlowBatch(simStart, 100)
	if len(f1) != len(f2) {
		t.Fatal("length mismatch")
	}
	for i := range f1 {
		if f1[i].SrcIP != f2[i].SrcIP || f1[i].Bytes != f2[i].Bytes {
			t.Fatalf("flow %d differs", i)
		}
	}
}

func BenchmarkDNSQueryEvent(b *testing.B) {
	u := NewUniverse(DefaultConfig())
	g := NewGenerator(u, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.DNSQueryEvent(simStart)
	}
}

func BenchmarkFlowBatch1000(b *testing.B) {
	u := NewUniverse(DefaultConfig())
	g := NewGenerator(u, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.FlowBatch(simStart, 1000)
	}
}

func TestRotateEdgeIPChurn(t *testing.T) {
	u := smallUniverse(t)
	var svc *Service
	for _, s := range u.Services {
		if s.CDN >= 0 && !s.ISPAddrs[0].Is6() {
			svc = s
			break
		}
	}
	if svc == nil {
		t.Fatal("no CDN service found")
	}
	before := svc.ISPAddrs[0]
	u.RotateEdgeIP(svc, 0)
	after := svc.ISPAddrs[0]
	if before == after {
		t.Fatal("RotateEdgeIP did not change the address")
	}
	// The fresh address must stay inside the CDN's visible prefix so BGP
	// attribution is unaffected.
	tbl, err := u.BGPTable()
	if err != nil {
		t.Fatal(err)
	}
	asnBefore, _ := tbl.Lookup(before)
	asnAfter, ok := tbl.Lookup(after)
	if !ok || asnBefore != asnAfter {
		t.Fatalf("churned address changed AS: %d -> %d", asnBefore, asnAfter)
	}
}

func TestRotateEdgeIPPinnedNoChurn(t *testing.T) {
	u := smallUniverse(t)
	u.PinServiceToCDNs(0, []int{0}, 2)
	svc := u.Services[0]
	before := append([]netip.Addr{}, svc.ISPAddrs...)
	u.RotateEdgeIP(svc, 0)
	for i := range before {
		if svc.ISPAddrs[i] != before[i] {
			t.Fatal("pinned service churned")
		}
	}
}

func TestRotateEdgeIPBadIndexClamped(t *testing.T) {
	u := smallUniverse(t)
	svc := u.Services[100]
	u.RotateEdgeIP(svc, -5)                  // clamps to slot 0
	u.RotateEdgeIP(svc, len(svc.ISPAddrs)+3) // clamps to slot 0
	u.RotateEdgeIP(&Service{}, 0)            // empty service: no-op, no panic
}

func TestSessionForAnnouncesThenFlows(t *testing.T) {
	u := smallUniverse(t)
	g := NewGenerator(u, 3)
	recs, flows := g.SessionFor(5, simStart, 3)
	if len(recs) == 0 || len(flows) != 3 {
		t.Fatalf("session = %d recs, %d flows", len(recs), len(flows))
	}
	// Every flow's source must be one of the service's edges.
	svc := u.Services[5]
	edge := map[netip.Addr]bool{}
	for _, a := range svc.ISPAddrs {
		edge[a] = true
	}
	for _, fr := range flows {
		if !edge[fr.SrcIP] {
			t.Fatalf("session flow source %v not an edge of the service", fr.SrcIP)
		}
		if !fr.Timestamp.After(simStart) {
			t.Fatal("session flows must follow the resolution")
		}
	}
}

func TestBadServicesKeptOutOfPopularityHead(t *testing.T) {
	u := NewUniverse(DefaultConfig())
	g := NewGenerator(u, 9)
	guard := len(u.Services) / 8
	for rank := 0; rank < guard; rank++ {
		svc, _ := g.RankService(rank)
		if svc.Malformed || svc.Category != 0 {
			t.Fatalf("rank %d is a bad service (%q)", rank, svc.Name)
		}
	}
}

// countIngest tallies offered records for generator-source tests.
type countIngest struct {
	dns, flows int
}

func (c *countIngest) OfferDNS(stream.DNSRecord) bool { c.dns++; return true }
func (c *countIngest) OfferDNSBatch(recs []stream.DNSRecord) int {
	c.dns += len(recs)
	return len(recs)
}
func (c *countIngest) OfferFlow(netflow.FlowRecord) bool { c.flows++; return true }
func (c *countIngest) OfferFlowBatch(frs []netflow.FlowRecord) int {
	c.flows += len(frs)
	return len(frs)
}

func TestGeneratorSourceEmitsSteps(t *testing.T) {
	u := smallUniverse(t)
	src := &Source{
		Gen:   NewGenerator(u, 3),
		Start: simStart,
		Steps: 10, DNSPerStep: 5, FlowsPerStep: 50,
	}
	var in countIngest
	if err := src.Run(context.Background(), &in); err != nil {
		t.Fatal(err)
	}
	// DNSBatch flattens query events into >=1 records each, so the DNS
	// count is a floor; flows are exact.
	if in.dns < 10*5 || in.flows != 10*50 {
		t.Fatalf("emitted dns=%d flows=%d", in.dns, in.flows)
	}
	// A cancelled context stops the source immediately and cleanly.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := in.flows
	if err := src.Run(ctx, &in); err != nil {
		t.Fatal(err)
	}
	if in.flows != before {
		t.Fatal("cancelled source kept emitting")
	}
}
