package workload

import (
	"context"
	"time"

	"repro/internal/stream"
)

// Source drives a synthetic Generator through the pipeline's ingest
// façade — the in-process equivalent of pointing cmd/flowgen at the wire
// listeners, without sockets. Each step advances the simulated record
// clock, emits the step's DNS batch first (resolution precedes traffic),
// then the flow batch. It implements stream.Source.
type Source struct {
	// Gen produces the records; required.
	Gen *Generator
	// Start anchors the simulated record clock.
	Start time.Time
	// Steps is how many emission rounds to run.
	Steps int
	// StepLength advances the record clock per step (default 1s).
	StepLength time.Duration
	// DNSPerStep and FlowsPerStep size each round.
	DNSPerStep   int
	FlowsPerStep int
	// Pace, when positive, sleeps between steps so the emission consumes
	// wall-clock time like a live feed; zero emits as fast as possible.
	Pace time.Duration
	// Diurnal scales both rates by the paper's diurnal curve, mapping the
	// whole run onto one simulated day.
	Diurnal bool
}

// Run emits every step or stops early on cancellation, returning nil in
// both cases (a generator cannot fail).
func (s *Source) Run(ctx context.Context, in stream.Ingest) error {
	step := s.StepLength
	if step <= 0 {
		step = time.Second
	}
	for i := 0; i < s.Steps; i++ {
		if ctx.Err() != nil {
			return nil
		}
		ts := s.Start.Add(time.Duration(i) * step)
		mult := 1.0
		if s.Diurnal {
			mult = DiurnalMultiplier(24 * float64(i) / float64(s.Steps))
		}
		if n := int(float64(s.DNSPerStep) * mult); n > 0 {
			in.OfferDNSBatch(s.Gen.DNSBatch(ts, n))
		}
		if n := int(float64(s.FlowsPerStep) * mult); n > 0 {
			in.OfferFlowBatch(s.Gen.FlowBatch(ts, n))
		}
		if s.Pace > 0 {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(s.Pace):
			}
		}
	}
	return nil
}
