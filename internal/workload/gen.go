package workload

import (
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/dbl"
	"repro/internal/dnswire"
	"repro/internal/netflow"
	"repro/internal/resolvers"
	"repro/internal/stream"
)

// Generator emits the two synthetic streams over a universe. It is
// deterministic for a given (universe, seed) pair. A Generator is not safe
// for concurrent use; give each producing goroutine its own (the paper's
// deployment likewise shards its 26 NetFlow streams across sources).
type Generator struct {
	u    *Universe
	r    *rand.Rand
	zipf *rand.Zipf
	// rank[i] maps popularity rank i (0 = most popular) to a service index,
	// so that popularity is independent of a service's category.
	rank []int

	ispResolvers []netip.Addr
	pubResolvers []netip.Addr

	aTTL *ttlDist
	cTTL *ttlDist

	// recent is a time-windowed FIFO of edge announcements on the visible
	// DNS stream. Flows follow resolutions: most service traffic sources
	// from this window, which is what ties the correlation rate to the
	// clear-up/rotation machinery under test. Entries older than MaxFlowLag
	// are evicted as new announcements arrive.
	recent []recentEdge
}

type recentEdge struct {
	addr netip.Addr
	svc  *Service
	ts   time.Time
}

// ISP resolver addresses (the collectors' upstream); clients sit in
// 10.0.0.0/16.
var ispResolverAddrs = []netip.Addr{
	netip.AddrFrom4([4]byte{10, 255, 0, 1}),
	netip.AddrFrom4([4]byte{10, 255, 0, 2}),
	netip.AddrFrom4([4]byte{10, 255, 0, 3}),
	netip.AddrFrom4([4]byte{10, 255, 0, 4}),
}

// NewGenerator builds a generator over u with its own RNG stream.
func NewGenerator(u *Universe, seed int64) *Generator {
	r := rand.New(rand.NewSource(seed))
	pub := resolvers.NewSet().Addrs()
	// Keep only IPv4 resolvers for the v4 client population.
	v4pub := pub[:0]
	for _, a := range pub {
		if a.Is4() {
			v4pub = append(v4pub, a)
		}
	}
	g := &Generator{
		u:            u,
		r:            r,
		zipf:         rand.NewZipf(r, u.cfg.ZipfS, u.cfg.ZipfV, uint64(len(u.Services)-1)),
		rank:         rand.New(rand.NewSource(u.cfg.Seed + 7)).Perm(len(u.Services)),
		ispResolvers: ispResolverAddrs,
		pubResolvers: v4pub,
		aTTL:         aTTLDist(),
		cTTL:         cnameTTLDist(),
	}
	// Suspicious and malformed domains must not occupy the popularity head:
	// the paper finds their traffic "significant" but still only ~0.5 % of
	// the daily volume, i.e. nowhere near top-streaming-service rank.
	guard := len(g.rank) / 8
	bad := func(s *Service) bool { return s.Malformed || s.Category != dbl.Benign }
	j := guard
	for i := 0; i < guard && j < len(g.rank); i++ {
		if !bad(u.Services[g.rank[i]]) {
			continue
		}
		for j < len(g.rank) && bad(u.Services[g.rank[j]]) {
			j++
		}
		if j < len(g.rank) {
			g.rank[i], g.rank[j] = g.rank[j], g.rank[i]
			j++
		}
	}
	return g
}

// RankService returns the service at popularity rank i (0 = most popular).
func (g *Generator) RankService(i int) (*Service, int) {
	idx := g.rank[i]
	return g.u.Services[idx], idx
}

// pickService draws a service by Zipf popularity.
func (g *Generator) pickService() *Service {
	return g.u.Services[g.rank[g.zipf.Uint64()]]
}

// clientAddr draws a subscriber address.
func (g *Generator) clientAddr() netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(g.r.Intn(250)), byte(g.r.Intn(256)), byte(g.r.Intn(256))})
}

// DNSQueryEvent synthesizes one cache miss for a Zipf-drawn service: the
// CNAME chain plus the A/AAAA records of its visible edge IPs, exactly what
// the ISP resolver would forward to the collectors.
func (g *Generator) DNSQueryEvent(ts time.Time) []stream.DNSRecord {
	return g.queryEventFor(g.pickService(), ts)
}

func (g *Generator) queryEventFor(svc *Service, ts time.Time) []stream.DNSRecord {
	// CDN churn: occasionally the answer set moves to a fresh edge address
	// before being announced.
	if g.u.cfg.ChurnRate > 0 && g.r.Float64() < g.u.cfg.ChurnRate {
		g.u.RotateEdgeIP(svc, g.r.Intn(len(svc.ISPAddrs)))
	}
	recs := make([]stream.DNSRecord, 0, len(svc.Chain)+len(svc.ISPAddrs))
	alias := svc.Name
	for _, next := range svc.Chain {
		recs = append(recs, stream.DNSRecord{
			Timestamp: ts,
			Query:     alias,
			RType:     dnswire.TypeCNAME,
			TTL:       g.cTTL.sample(g.r),
			Answer:    next,
		})
		alias = next
	}
	edge := svc.EdgeName()
	// A response carries a handful of addresses; rotate which ones to mimic
	// CDN load balancing.
	n := len(svc.ISPAddrs)
	limit := 4
	if n < limit {
		limit = n
	}
	off := 0
	if n > 0 {
		off = g.r.Intn(n)
	}
	for k := 0; k < limit; k++ {
		addr := svc.ISPAddrs[(off+k)%n]
		rt := dnswire.TypeA
		if addr.Is6() {
			rt = dnswire.TypeAAAA
		}
		recs = append(recs, stream.DNSRecord{
			Timestamp: ts,
			Query:     edge,
			RType:     rt,
			TTL:       g.aTTL.sample(g.r),
			Addr:      addr,
		})
		g.noteAnnounced(addr, svc, ts)
	}
	return recs
}

// noteAnnounced records an edge announcement and evicts entries that have
// aged past MaxFlowLag (or that overflow the size cap).
func (g *Generator) noteAnnounced(addr netip.Addr, svc *Service, ts time.Time) {
	g.recent = append(g.recent, recentEdge{addr, svc, ts})
	cutoff := ts.Add(-g.u.cfg.MaxFlowLag)
	drop := 0
	for drop < len(g.recent) && g.recent[drop].ts.Before(cutoff) {
		drop++
	}
	if over := len(g.recent) - g.u.cfg.RecentWindow; over > drop {
		drop = over
	}
	if drop > 0 {
		g.recent = g.recent[drop:]
		// Reclaim when the backing array has grown far beyond the live
		// window.
		if cap(g.recent) > 4*len(g.recent) && cap(g.recent) > 1024 {
			g.recent = append(make([]recentEdge, 0, 2*len(g.recent)), g.recent...)
		}
	}
}

// SessionFor synthesizes one client session for service index i: the
// resolution (cache miss) followed by nFlows flows sourced from the
// just-announced edges. Experiments use it to guarantee a floor of traffic
// for specific domains (e.g. the §5 suspicious-domain population, which the
// paper observes carrying traffic every day).
func (g *Generator) SessionFor(i int, ts time.Time, nFlows int) ([]stream.DNSRecord, []netflow.FlowRecord) {
	svc := g.u.Services[i]
	recs := g.queryEventFor(svc, ts)
	flows := make([]netflow.FlowRecord, 0, nFlows)
	for k := 0; k < nFlows; k++ {
		src := svc.ISPAddrs[g.r.Intn(len(svc.ISPAddrs))]
		flows = append(flows, g.serviceFlow(ts.Add(time.Duration(k+1)*time.Second), svc, src))
	}
	return recs, flows
}

// DNSBatch synthesizes the records of `queries` cache misses at ts.
func (g *Generator) DNSBatch(ts time.Time, queries int) []stream.DNSRecord {
	out := make([]stream.DNSRecord, 0, queries*3)
	for i := 0; i < queries; i++ {
		out = append(out, g.DNSQueryEvent(ts)...)
	}
	return out
}

// FlowBatch synthesizes n flow records at ts: service traffic (CDN edge →
// client), non-DNS traffic, client DNS/DoT lookups for the coverage
// analysis, and occasional client→malformed-domain reverse flows (§5).
// The returned slice may exceed n by the reverse flows.
func (g *Generator) FlowBatch(ts time.Time, n int) []netflow.FlowRecord {
	out := make([]netflow.FlowRecord, 0, n+n/64)
	for i := 0; i < n; i++ {
		u := g.r.Float64()
		switch {
		case u < g.u.cfg.DNSPortTrafficFraction:
			out = append(out, g.dnsPortFlow(ts))
		case u < g.u.cfg.DNSPortTrafficFraction+g.u.cfg.NonDNSTrafficFraction:
			out = append(out, g.nonDNSFlow(ts))
		default:
			svc, src := g.pickFlowSource()
			out = append(out, g.serviceFlow(ts, svc, src))
			// §5: 2.7 % of clients receiving malformed-domain traffic send
			// traffic back; emit a reverse flow at a matching rate.
			if svc.Malformed && g.r.Float64() < 0.027 {
				out = append(out, g.reverseFlow(ts, svc))
			}
		}
	}
	return out
}

// pickFlowSource selects the (service, source address) of one service flow.
// With probability PublicResolverFraction the client resolved at a public
// resolver, so the source is an invisible edge. Otherwise the flow follows
// a recent visible resolution, except for a stale tail drawn from the whole
// population (old resolver-cache entries, long-lived connections).
func (g *Generator) pickFlowSource() (*Service, netip.Addr) {
	if g.r.Float64() < g.u.cfg.PublicResolverFraction {
		svc := g.pickService()
		if len(svc.PubAddrs) > 0 {
			return svc, svc.PubAddrs[g.r.Intn(len(svc.PubAddrs))]
		}
	}
	if len(g.recent) > 0 && g.r.Float64() >= g.u.cfg.StaleFlowFraction {
		e := g.recent[g.r.Intn(len(g.recent))]
		return e.svc, e.addr
	}
	svc := g.pickService()
	return svc, svc.ISPAddrs[g.r.Intn(len(svc.ISPAddrs))]
}

// serviceFlow emits one service→client flow from the given source edge.
func (g *Generator) serviceFlow(ts time.Time, svc *Service, src netip.Addr) netflow.FlowRecord {
	return netflow.FlowRecord{
		Timestamp: ts,
		SrcIP:     src,
		DstIP:     g.clientAddr(),
		SrcPort:   443,
		DstPort:   uint16(20000 + g.r.Intn(40000)),
		Proto:     netflow.ProtoTCP,
		Packets:   1 + uint64(g.r.Intn(1000)),
		Bytes:     sampleFlowBytes(g.r, svc.SizeFactor),
	}
}

// nonDNSFlow emits traffic whose source was never announced via DNS
// (P2P, direct-IP services, inbound scans...).
func (g *Generator) nonDNSFlow(ts time.Time) netflow.FlowRecord {
	src := netip.AddrFrom4([4]byte{172, byte(16 + g.r.Intn(16)), byte(g.r.Intn(256)), byte(g.r.Intn(256))})
	return netflow.FlowRecord{
		Timestamp: ts,
		SrcIP:     src,
		DstIP:     g.clientAddr(),
		SrcPort:   uint16(1024 + g.r.Intn(60000)),
		DstPort:   uint16(1024 + g.r.Intn(60000)),
		Proto:     netflow.ProtoTCP,
		Packets:   1 + uint64(g.r.Intn(100)),
		Bytes:     sampleFlowBytes(g.r, 1.0),
	}
}

// dnsPortFlow emits one client lookup flow (port 53/853). 1 in 20 goes to a
// public resolver (§4 Coverage).
func (g *Generator) dnsPortFlow(ts time.Time) netflow.FlowRecord {
	var dst netip.Addr
	if g.r.Float64() < g.u.cfg.PublicResolverFraction && len(g.pubResolvers) > 0 {
		dst = g.pubResolvers[g.r.Intn(len(g.pubResolvers))]
	} else {
		dst = g.ispResolvers[g.r.Intn(len(g.ispResolvers))]
	}
	port := uint16(netflow.PortDNS)
	proto := uint8(netflow.ProtoUDP)
	if g.r.Float64() < 0.10 {
		port = netflow.PortDoT
		proto = netflow.ProtoTCP
	}
	return netflow.FlowRecord{
		Timestamp: ts,
		SrcIP:     g.clientAddr(),
		DstIP:     dst,
		SrcPort:   uint16(20000 + g.r.Intn(40000)),
		DstPort:   port,
		Proto:     proto,
		Packets:   2,
		Bytes:     uint64(80 + g.r.Intn(400)),
	}
}

// reverseFlow emits client→service traffic toward a malformed domain's
// edge, mostly on non-web ports (the paper names OpenVPN and Kerberos).
func (g *Generator) reverseFlow(ts time.Time, svc *Service) netflow.FlowRecord {
	ports := []uint16{1194, 88, 4500, 500}
	return netflow.FlowRecord{
		Timestamp: ts,
		SrcIP:     g.clientAddr(),
		DstIP:     svc.ISPAddrs[g.r.Intn(len(svc.ISPAddrs))],
		SrcPort:   uint16(20000 + g.r.Intn(40000)),
		DstPort:   ports[g.r.Intn(len(ports))],
		Proto:     netflow.ProtoUDP,
		Packets:   1 + uint64(g.r.Intn(10)),
		Bytes:     uint64(100 + g.r.Intn(2000)),
	}
}

// HourlyRates scales base per-second record rates by the diurnal curve for
// the given simulated instant.
func HourlyRates(ts time.Time, baseDNSPerSec, baseFlowPerSec int) (dns, flows int) {
	h := float64(ts.Hour()) + float64(ts.Minute())/60
	m := DiurnalMultiplier(h)
	return int(float64(baseDNSPerSec) * m), int(float64(baseFlowPerSec) * m)
}
