package workload

import (
	"math/rand"
)

// ttlDist is a discrete TTL mixture. Weights need not sum to 1; sampling is
// proportional.
type ttlDist struct {
	ttls    []uint32
	weights []float64
	cum     []float64
}

func newTTLDist(ttls []uint32, weights []float64) *ttlDist {
	d := &ttlDist{ttls: ttls, weights: weights, cum: make([]float64, len(weights))}
	sum := 0.0
	for i, w := range weights {
		sum += w
		d.cum[i] = sum
	}
	for i := range d.cum {
		d.cum[i] /= sum
	}
	return d
}

func (d *ttlDist) sample(r *rand.Rand) uint32 {
	u := r.Float64()
	for i, c := range d.cum {
		if u <= c {
			return d.ttls[i]
		}
	}
	return d.ttls[len(d.ttls)-1]
}

// aTTLDist matches Figure 8 for A/AAAA records: ~70 % of records have
// TTL <= 300 s and 99 % are below 3600 s.
func aTTLDist() *ttlDist {
	return newTTLDist(
		[]uint32{20, 60, 300, 600, 1800, 3599, 7200, 86400},
		[]float64{0.08, 0.20, 0.42, 0.12, 0.10, 0.07, 0.006, 0.004},
	)
}

// cnameTTLDist matches Figure 8 for CNAME records: 99 % below 7200 s with a
// longer body than A records.
func cnameTTLDist() *ttlDist {
	return newTTLDist(
		[]uint32{60, 300, 900, 3600, 7199, 14400, 86400},
		[]float64{0.10, 0.28, 0.17, 0.30, 0.14, 0.006, 0.004},
	)
}

// chainLenDist matches Figure 6: most chains resolve within 2 hops, >99 %
// within 6, with a thin tail out to 17.
var chainLenWeights = []struct {
	length int
	weight float64
}{
	{1, 0.38}, {2, 0.40}, {3, 0.13}, {4, 0.045}, {5, 0.015}, {6, 0.006},
	{7, 0.002}, {9, 0.001}, {12, 0.0006}, {17, 0.0004},
}

func sampleChainLen(r *rand.Rand) int {
	total := 0.0
	for _, cw := range chainLenWeights {
		total += cw.weight
	}
	u := r.Float64() * total
	for _, cw := range chainLenWeights {
		if u <= cw.weight {
			return cw.length
		}
		u -= cw.weight
	}
	return chainLenWeights[len(chainLenWeights)-1].length
}

// diurnal control points: normalized traffic multiplier by local hour,
// reproducing the paper's Figure 2 shape — night trough around 04:00, climb
// through the day, evening peak around 21:00.
var diurnalPoints = [...]struct {
	hour float64
	mult float64
}{
	{0, 0.78}, {2, 0.62}, {4, 0.52}, {6, 0.55}, {9, 0.70}, {12, 0.78},
	{15, 0.84}, {18, 0.93}, {21, 1.00}, {23, 0.88}, {24, 0.78},
}

// DiurnalMultiplier returns the traffic-volume multiplier in (0,1] for a
// time-of-day expressed in fractional hours [0,24).
func DiurnalMultiplier(hour float64) float64 {
	for hour < 0 {
		hour += 24
	}
	for hour >= 24 {
		hour -= 24
	}
	for i := 1; i < len(diurnalPoints); i++ {
		a, b := diurnalPoints[i-1], diurnalPoints[i]
		if hour <= b.hour {
			f := (hour - a.hour) / (b.hour - a.hour)
			return a.mult + f*(b.mult-a.mult)
		}
	}
	return diurnalPoints[len(diurnalPoints)-1].mult
}

// sampleFlowBytes draws a per-flow byte count: a heavy-tailed mixture of
// mice (small web objects) and elephants (video segments), scaled by the
// service's size factor.
func sampleFlowBytes(r *rand.Rand, scale float64) uint64 {
	var base float64
	switch {
	case r.Float64() < 0.70:
		base = 400 + r.ExpFloat64()*2000 // mice
	case r.Float64() < 0.85:
		base = 20e3 + r.ExpFloat64()*80e3 // mid
	default:
		base = 200e3 + r.ExpFloat64()*1.2e6 // elephants
	}
	b := base * scale
	if b < 64 {
		b = 64
	}
	if b > 1e9 {
		b = 1e9
	}
	return uint64(b)
}
