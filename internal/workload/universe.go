// Package workload synthesizes the ISP's two live streams — DNS cache
// misses and NetFlow exports — with the statistical shape the paper
// measures on real traffic.
//
// The real deployment consumes proprietary feeds (75K DNS rec/s, 1M flow
// rec/s at the large ISP). This generator substitutes a parameterized
// universe of services whose observable distributions reproduce the
// paper's appendix measurements:
//
//   - CNAME chain lengths per Figure 6 (>99 % within 6 hops, tail to 17);
//   - TTL distributions per Figure 8 (99 % of A/AAAA < 3600 s, CNAME < 7200 s);
//   - names-per-IP per Figure 9 (~88 % of IPs map to a single name);
//   - Zipf service popularity and a diurnal volume curve per Figure 2;
//   - a 95 % DNS coverage model (1/20 client resolutions go to public
//     resolvers and are invisible to the ISP feed, §4 Coverage);
//   - a malicious/malformed domain population per §5 (DBL categories,
//     underscore-dominated malformed names).
//
// Correlation-rate mechanics: a flow is attributable only if its source IP
// was announced on the visible DNS stream recently. Services resolved via
// public resolvers use a disjoint edge-IP pool, so that traffic can never
// correlate — exactly the paper's coverage gap — and a configurable
// fraction of traffic is not DNS-related at all.
package workload

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/bgp"
	"repro/internal/dbl"
)

// Config parameterizes the universe. Zero fields take defaults from
// DefaultConfig.
type Config struct {
	Seed int64

	// NumServices is the size of the service population (domain universe).
	NumServices int
	// NumCDNs is the number of CDN providers; each owns a /16 and an ASN.
	NumCDNs int
	// CDNShare is the fraction of services hosted on CDNs (the paper
	// observes >85 % of traffic originating from CDNs).
	CDNShare float64
	// EdgeIPsPerService is the mean number of edge IPs a service resolves
	// to (the paper: 35 % of names map to >1 IP).
	EdgeIPsPerService int
	// SharedIPFraction is the fraction of CDN edge IPs intentionally shared
	// between services (Fig 9: ~12 % of IPs carry more than one name).
	SharedIPFraction float64

	// ZipfS, ZipfV shape service popularity (s > 1).
	ZipfS float64
	ZipfV float64

	// PublicResolverFraction is the share of client resolutions using
	// public resolvers (paper: 1/20 = 0.05).
	PublicResolverFraction float64
	// NonDNSTrafficFraction is the share of traffic bytes not preceded by
	// any DNS resolution (paper: with 95 % coverage and 81.7 % correlation,
	// roughly 14 % of traffic is not DNS-related).
	NonDNSTrafficFraction float64
	// DNSPortTrafficFraction is the share of flow records that are client
	// DNS/DoT lookups themselves (ports 53/853), feeding the coverage
	// analysis.
	DNSPortTrafficFraction float64

	// SuspiciousServices counts DBL-listed domains in the population,
	// split across categories in the paper's 512/41/34/11/3 proportions.
	SuspiciousServices int
	// MalformedServices counts RFC 1035-violating domains (87 % of them
	// with underscores, per §5).
	MalformedServices int

	// V6Share is the fraction of services that are dual-stack and also
	// announce AAAA records (exercising the IPv6 path end to end).
	V6Share float64

	// RecentWindow caps the generator's recently-announced-edge buffer:
	// flows follow DNS resolutions, so flow sources are drawn from this
	// window (plus a stale tail), which is what makes rotation and
	// long-hashmap hits observable.
	RecentWindow int
	// MaxFlowLag bounds how old an announcement may be for a flow to
	// source from it — the client-side gap between resolving a name and
	// the traffic it generates (resolver caching included).
	MaxFlowLag time.Duration
	// StaleFlowFraction is the share of service flows drawn from the whole
	// service population instead of the recent window — long-lived
	// connections and resolver-cache hits older than our window.
	StaleFlowFraction float64
	// ChurnRate is the per-query-event probability that a CDN rotates one
	// of the service's edge IPs to a fresh address. Churn is what makes the
	// NoClearUp variant's state grow without bound (paper Fig 3b).
	ChurnRate float64
}

// DefaultConfig returns a laptop-scale universe that keeps every
// distribution the paper reports.
func DefaultConfig() Config {
	return Config{
		Seed:                   1,
		NumServices:            4000,
		NumCDNs:                8,
		CDNShare:               0.85,
		EdgeIPsPerService:      3,
		SharedIPFraction:       0.45,
		ZipfS:                  1.2,
		ZipfV:                  4,
		PublicResolverFraction: 0.05,
		NonDNSTrafficFraction:  0.20,
		DNSPortTrafficFraction: 0.02,
		SuspiciousServices:     60,
		MalformedServices:      66,
		V6Share:                0.25,
		RecentWindow:           65536,
		MaxFlowLag:             30 * time.Minute,
		StaleFlowFraction:      0.05,
		ChurnRate:              0.25,
	}
}

func (c Config) normalized() Config {
	d := DefaultConfig()
	if c.NumServices <= 0 {
		c.NumServices = d.NumServices
	}
	if c.NumCDNs <= 0 {
		c.NumCDNs = d.NumCDNs
	}
	if c.CDNShare <= 0 {
		c.CDNShare = d.CDNShare
	}
	if c.EdgeIPsPerService <= 0 {
		c.EdgeIPsPerService = d.EdgeIPsPerService
	}
	if c.SharedIPFraction <= 0 {
		c.SharedIPFraction = d.SharedIPFraction
	}
	if c.ZipfS <= 1 {
		c.ZipfS = d.ZipfS
	}
	if c.ZipfV < 1 {
		c.ZipfV = d.ZipfV
	}
	if c.PublicResolverFraction < 0 {
		c.PublicResolverFraction = d.PublicResolverFraction
	}
	if c.NonDNSTrafficFraction < 0 {
		c.NonDNSTrafficFraction = d.NonDNSTrafficFraction
	}
	if c.DNSPortTrafficFraction < 0 {
		c.DNSPortTrafficFraction = d.DNSPortTrafficFraction
	}
	if c.V6Share < 0 || c.V6Share > 1 {
		c.V6Share = d.V6Share
	}
	if c.RecentWindow <= 0 {
		c.RecentWindow = d.RecentWindow
	}
	if c.MaxFlowLag <= 0 {
		c.MaxFlowLag = d.MaxFlowLag
	}
	if c.StaleFlowFraction < 0 || c.StaleFlowFraction > 1 {
		c.StaleFlowFraction = d.StaleFlowFraction
	}
	if c.ChurnRate < 0 || c.ChurnRate > 1 {
		c.ChurnRate = d.ChurnRate
	}
	return c
}

// Service is one domain in the universe.
type Service struct {
	// Name is the client-facing domain (what the user "intends").
	Name string
	// Chain is the CNAME alias chain, Name -> Chain[0] -> ... -> edge owner
	// name; empty for directly hosted services.
	Chain []string
	// ISPAddrs are edge IPs returned by the ISP resolvers (visible to
	// FlowDNS); PubAddrs are the disjoint edge IPs returned by public
	// resolvers (invisible).
	ISPAddrs []netip.Addr
	PubAddrs []netip.Addr
	// CDN is the hosting CDN index, -1 for direct hosting.
	CDN int
	// SizeFactor scales per-flow bytes (streaming >> web).
	SizeFactor float64
	// Category tags DBL-listed domains; Malformed marks RFC 1035 violators.
	Category  dbl.Category
	Malformed bool
	// Pinned services keep their address plan fixed (no churn); used by the
	// Fig 4 setup so AS attribution stays stable over the week.
	Pinned bool
}

// EdgeName returns the owner name of the service's A records: the end of
// the CNAME chain, or the service name itself when directly hosted.
func (s *Service) EdgeName() string {
	if len(s.Chain) == 0 {
		return s.Name
	}
	return s.Chain[len(s.Chain)-1]
}

// Universe is the immutable service population plus its address plan.
type Universe struct {
	cfg      Config
	Services []*Service
	// CDNASNs[i] is the origin ASN of CDN i.
	CDNASNs []uint32
	// DirectASN is the origin AS for directly hosted services.
	DirectASN uint32
	// blocklist over the suspicious services.
	Blocklist *dbl.List
	// assignments for the BGP table.
	assignments []bgp.Assignment

	// address allocators (persist beyond construction so edge churn can
	// mint fresh addresses from the same prefixes).
	nextHost   []uint32
	directHost uint32
	v6Host     uint32
}

// asn numbering: CDNs get 64500+, direct hosting 64499.
const (
	directASN  = 64499
	cdnASNBase = 64500
)

// NewUniverse builds the deterministic service population for cfg.
func NewUniverse(cfg Config) *Universe {
	cfg = cfg.normalized()
	r := rand.New(rand.NewSource(cfg.Seed))
	u := &Universe{
		cfg:       cfg,
		CDNASNs:   make([]uint32, cfg.NumCDNs),
		DirectASN: directASN,
		Blocklist: dbl.NewList(),
	}

	// Address plan: CDN i owns 100.64+i.0.0/16 (ISP-visible edges) and
	// 100.96+i.0.0/16 (public-resolver edges). Direct services share
	// 198.18.0.0/16 (+ public 198.19.0.0/16).
	for i := 0; i < cfg.NumCDNs; i++ {
		u.CDNASNs[i] = uint32(cdnASNBase + i)
		u.assignments = append(u.assignments,
			bgp.Assignment{Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{100, byte(64 + i), 0, 0}), 16), ASN: u.CDNASNs[i]},
			bgp.Assignment{Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{100, byte(96 + i), 0, 0}), 16), ASN: u.CDNASNs[i]},
		)
	}
	u.assignments = append(u.assignments,
		bgp.Assignment{Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{198, 18, 0, 0}), 15), ASN: directASN},
		// Non-DNS traffic pool (P2P/direct-IP); gives it a home AS so the
		// Fig 4 attribution covers all traffic.
		bgp.Assignment{Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{172, 16, 0, 0}), 12), ASN: 64511})
	// IPv6 plan: CDN i owns 2001:db8:1:<i>::/64 visible and
	// 2001:db8:2:<i>::/64 public; direct v6 lives in 2001:db8:0:12::/64.
	for i := 0; i < cfg.NumCDNs; i++ {
		u.assignments = append(u.assignments,
			bgp.Assignment{Prefix: netip.PrefixFrom(v6Base(1, byte(i), 0), 64), ASN: u.CDNASNs[i]},
			bgp.Assignment{Prefix: netip.PrefixFrom(v6Base(2, byte(i), 0), 64), ASN: u.CDNASNs[i]},
		)
	}
	u.assignments = append(u.assignments,
		bgp.Assignment{Prefix: netip.PrefixFrom(v6Base(0, 0x12, 0), 64), ASN: directASN})

	// Per-CDN shared-IP pools implementing the Fig 9 names-per-IP shape.
	sharedPools := make([][]netip.Addr, cfg.NumCDNs)
	u.nextHost = make([]uint32, cfg.NumCDNs)

	nSuspicious := cfg.SuspiciousServices
	nMalformed := cfg.MalformedServices
	for i := 0; i < cfg.NumServices; i++ {
		svc := &Service{CDN: -1, SizeFactor: 0.5 + r.ExpFloat64()}
		switch {
		case i < nSuspicious:
			svc.Category = suspiciousCategory(i, nSuspicious)
			svc.Name = fmt.Sprintf("%s-track%03d.badsite%d.xyz", svc.Category, i, i%7)
			u.Blocklist.Add(svc.Name, svc.Category)
			svc.SizeFactor = 0.2 + 0.3*r.ExpFloat64() // mostly small transfers
		case i < nSuspicious+nMalformed:
			svc.Malformed = true
			svc.Name = malformedName(r, i)
			svc.SizeFactor = 0.2 + 0.3*r.ExpFloat64()
		default:
			svc.Name = fmt.Sprintf("svc%04d.provider%d.example", i, i%97)
		}

		if r.Float64() < cfg.CDNShare {
			cdn := r.Intn(cfg.NumCDNs)
			svc.CDN = cdn
			hops := sampleChainLen(r)
			svc.Chain = make([]string, hops)
			for h := 0; h < hops-1; h++ {
				svc.Chain[h] = fmt.Sprintf("l%d.c%04d.cdn%d-lb.net", h, i, cdn)
			}
			svc.Chain[hops-1] = fmt.Sprintf("edge.c%04d.cdn%d.net", i, cdn)

			nIPs := 1 + r.Intn(2*cfg.EdgeIPsPerService-1)
			for k := 0; k < nIPs; k++ {
				// Reuse recent shared-pool addresses with the configured
				// probability: recency matters, because both tenants of an
				// address must be queried inside a measurement window for
				// the IP to count as multi-name (Fig 9).
				if pool := sharedPools[cdn]; r.Float64() < cfg.SharedIPFraction && len(pool) > 0 {
					lo := 0
					if len(pool) > 64 {
						lo = len(pool) - 64
					}
					svc.ISPAddrs = append(svc.ISPAddrs, pool[lo+r.Intn(len(pool)-lo)])
				} else {
					a := u.newCDNAddr(cdn, false)
					svc.ISPAddrs = append(svc.ISPAddrs, a)
					if r.Float64() < 0.5 {
						sharedPools[cdn] = append(sharedPools[cdn], a)
					}
				}
				svc.PubAddrs = append(svc.PubAddrs, u.newCDNAddr(cdn, true))
			}
		} else {
			nIPs := 1 + r.Intn(cfg.EdgeIPsPerService)
			for k := 0; k < nIPs; k++ {
				svc.ISPAddrs = append(svc.ISPAddrs, u.newDirectAddr(false))
				svc.PubAddrs = append(svc.PubAddrs, u.newDirectAddr(true))
			}
		}
		if r.Float64() < cfg.V6Share {
			svc.ISPAddrs = append(svc.ISPAddrs, u.newV6Addr(svc, false))
			svc.PubAddrs = append(svc.PubAddrs, u.newV6Addr(svc, true))
		}
		u.Services = append(u.Services, svc)
	}
	return u
}

// newCDNAddr mints the next edge address in CDN cdn's visible (or public)
// /16. Host numbering wraps at 65536, which is harmless: CDNs reuse
// addresses over time (the paper cites exactly this reuse as why DNS
// records go stale).
func (u *Universe) newCDNAddr(cdn int, public bool) netip.Addr {
	u.nextHost[cdn]++
	h := u.nextHost[cdn]
	second := byte(64 + cdn)
	if public {
		second = byte(96 + cdn)
	}
	return netip.AddrFrom4([4]byte{100, second, byte(h >> 8), byte(h)})
}

func (u *Universe) newDirectAddr(public bool) netip.Addr {
	u.directHost++
	third := byte(18)
	if public {
		third = 19
	}
	return netip.AddrFrom4([4]byte{198, third, byte(u.directHost >> 8), byte(u.directHost)})
}

func (u *Universe) newV6Addr(svc *Service, public bool) netip.Addr {
	u.v6Host++
	group := byte(1)
	sub := byte(0x12)
	if svc.CDN >= 0 {
		sub = byte(svc.CDN)
		if public {
			group = 2
		}
	} else {
		group = 0
	}
	return v6Base(group, sub, u.v6Host)
}

// RotateEdgeIP makes the hosting CDN remap one of svc's visible edges to a
// fresh address, modeling the IP/name churn the paper observes in
// CDN-hosted domains. Pinned services never churn. idx selects which slot
// rotates; pass a negative idx to rotate slot 0.
func (u *Universe) RotateEdgeIP(svc *Service, idx int) {
	if svc.Pinned || len(svc.ISPAddrs) == 0 {
		return
	}
	if idx < 0 || idx >= len(svc.ISPAddrs) {
		idx = 0
	}
	old := svc.ISPAddrs[idx]
	switch {
	case old.Is6():
		svc.ISPAddrs[idx] = u.newV6Addr(svc, false)
	case svc.CDN >= 0:
		svc.ISPAddrs[idx] = u.newCDNAddr(svc.CDN, false)
	default:
		svc.ISPAddrs[idx] = u.newDirectAddr(false)
	}
}

// suspiciousCategory splits indexes across categories in the paper's
// 512:41:34:11:3 proportions, guaranteeing every category at least one
// domain even in small universes.
func suspiciousCategory(i, total int) dbl.Category {
	alloc := func(weight int) int {
		n := total * weight / 601
		if n < 1 {
			n = 1
		}
		return n
	}
	// Rarest categories are allocated from the end so rounding error lands
	// on spam, the paper's dominant category.
	nPhish := alloc(3)
	nMalware := alloc(11)
	nRedir := alloc(34)
	nBotnet := alloc(41)
	switch {
	case i >= total-nPhish:
		return dbl.Phish
	case i >= total-nPhish-nMalware:
		return dbl.Malware
	case i >= total-nPhish-nMalware-nRedir:
		return dbl.AbusedRedirector
	case i >= total-nPhish-nMalware-nRedir-nBotnet:
		return dbl.Botnet
	default:
		return dbl.Spam
	}
}

// malformedName builds an RFC 1035-violating name; 87 % carry underscores
// (the paper's dominant violation), the rest split across bad starts, bad
// ends, and oversized labels.
func malformedName(r *rand.Rand, i int) string {
	switch v := r.Float64(); {
	case v < 0.87:
		// Interior underscore: the paper's dominant violation class.
		return fmt.Sprintf("svc%03d_collector.telemetry%d.example", i, i%11)
	case v < 0.92:
		return fmt.Sprintf("-lead%03d.tracker.example", i)
	case v < 0.97:
		return fmt.Sprintf("tail%03d-.tracker.example", i)
	default:
		long := make([]byte, 70)
		for j := range long {
			long[j] = byte('a' + (i+j)%26)
		}
		return fmt.Sprintf("%s.big%03d.example", long, i)
	}
}

// v6Base builds 2001:db8:<group>:<sub>::<host> used by the IPv6 address
// plan.
func v6Base(group, sub byte, host uint32) netip.Addr {
	var b [16]byte
	b[0], b[1], b[2], b[3] = 0x20, 0x01, 0x0d, 0xb8
	b[5] = group
	b[7] = sub
	b[12] = byte(host >> 24)
	b[13] = byte(host >> 16)
	b[14] = byte(host >> 8)
	b[15] = byte(host)
	return netip.AddrFrom16(b)
}

// BGPTable builds the routing table covering the universe's address plan.
func (u *Universe) BGPTable() (*bgp.Table, error) { return bgp.Build(u.assignments) }

// Assignments exposes the prefix→AS plan (for tests and docs).
func (u *Universe) Assignments() []bgp.Assignment { return u.assignments }

// Config returns the normalized config the universe was built with.
func (u *Universe) Config() Config { return u.cfg }

// PinServiceToCDNs rebuilds service i's hosting across the given CDNs,
// giving it fresh dedicated edge IPs on each — used to set up the Fig 4
// streaming services (S1 on one CDN/AS, S2 across two).
func (u *Universe) PinServiceToCDNs(i int, cdns []int, ipsPerCDN int) {
	svc := u.Services[i]
	svc.ISPAddrs = svc.ISPAddrs[:0]
	svc.PubAddrs = svc.PubAddrs[:0]
	svc.CDN = cdns[0]
	svc.Pinned = true
	if len(svc.Chain) == 0 {
		svc.Chain = []string{fmt.Sprintf("edge.pinned%d.cdn%d.net", i, cdns[0])}
	}
	for k, cdn := range cdns {
		for j := 0; j < ipsPerCDN; j++ {
			// Hosts 0xF000+ are reserved for pinned services, avoiding
			// collision with generated hosts.
			h := 0xF000 + i*16 + k*4 + j
			svc.ISPAddrs = append(svc.ISPAddrs,
				netip.AddrFrom4([4]byte{100, byte(64 + cdn), byte(h >> 8), byte(h)}))
			svc.PubAddrs = append(svc.PubAddrs,
				netip.AddrFrom4([4]byte{100, byte(96 + cdn), byte(h >> 8), byte(h)}))
		}
	}
}
