// Package queryapi is the serving plane over the window store: a small
// HTTP API answering the paper's §5 attribution questions ("bytes per
// service over the last 6 hours") from sealed rollup windows.
//
// Endpoints:
//
//	/query/services    per-service time series over [from, to)
//	/query/asns        per-AS time series
//	/query/categories  per-DBL-category time series
//	/query/health      store coverage + cache counters + pipeline loss accounting
//	/metrics           pipeline + store stats, Prometheus text format
//	/rollups           live (unsealed) windows, when a rollup engine is attached
//	/admin/reload      POST: hot-swap the BGP/DBL attribution tables, when wired
//	/admin/fault       GET: failpoint catalog; POST: arm or disarm one, when wired
//
// The range endpoints share parameters: from / to (unix seconds or
// RFC 3339), step (Go duration or seconds; 0 = one bucket for the whole
// range), top (keep the N heaviest keys per bucket, aggregate the rest into
// an OTHER row). Buckets are aligned to the epoch in multiples of step, and
// series within a bucket sort bytes-descending then key-ascending —
// responses are canonical, which is what makes them cacheable.
//
// Results are materialized once and served from an LRU cache of finished
// response bodies; the store's per-partition invalidation feed (seal,
// compaction, retention) drops exactly the entries whose range a changed
// partition overlaps.
package queryapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/rollup"
	"repro/internal/winstore"
)

// OtherKey is the synthetic series key aggregating everything beyond the
// top-N heaviest keys of a bucket.
const OtherKey = "OTHER"

// Server is the query-plane HTTP server. Construct with New; it implements
// core.Service so the daemon runs it under the pipeline lifecycle.
type Server struct {
	store    *winstore.Store
	addr     string
	ln       net.Listener
	roll     *rollup.Rollup
	draining func() bool
	pipeline func() core.Stats
	reload   func() error
	faults   bool
	extra    []func(*metrics.PromWriter)
	admin    []adminMount
	cluster  func() ClusterInfo
	cache    *cache
	mux      *http.ServeMux
}

// adminMount is one extra handler to mount on the server's mux.
type adminMount struct {
	pattern string
	h       http.Handler
}

// Option configures a Server.
type Option func(*Server)

// WithAddr sets the listen address (ignored when WithListener is given).
func WithAddr(addr string) Option { return func(s *Server) { s.addr = addr } }

// WithListener serves on an existing listener — the test seam.
func WithListener(ln net.Listener) Option { return func(s *Server) { s.ln = ln } }

// WithRollups mounts the live-window /rollups endpoint for r on the same mux.
func WithRollups(r *rollup.Rollup) Option { return func(s *Server) { s.roll = r } }

// WithDraining supplies the pipeline's drain flag: once it reports true,
// /rollups answers 503 and /query/health reports "draining".
func WithDraining(fn func() bool) Option { return func(s *Server) { s.draining = fn } }

// WithPipelineStats supplies the correlator's stats snapshot for /metrics.
func WithPipelineStats(fn func() core.Stats) Option { return func(s *Server) { s.pipeline = fn } }

// WithCache overrides the materialized-result cache size (entries).
func WithCache(entries int) Option { return func(s *Server) { s.cache = newCache(entries) } }

// WithReload mounts POST /admin/reload, invoking fn — the daemon's
// attribution-table reload (BGP table + DBL list atomic swap). The same fn
// serves SIGHUP, so both triggers share one code path.
func WithReload(fn func() error) Option { return func(s *Server) { s.reload = fn } }

// WithFaultAdmin mounts /admin/fault: GET lists every registered failpoint
// with its armed spec and hit count; POST arms one ("name" + "spec" form
// values) or disarms it (empty spec). Off by default — fault injection is a
// chaos-testing surface, not something a production /metrics scraper should
// find enabled by accident.
func WithFaultAdmin() Option { return func(s *Server) { s.faults = true } }

// WithExtraMetrics appends a metrics contributor invoked on every /metrics
// scrape — the seam through which the daemon exports sink stats (RetrySink
// spill depths, Influx drops) without queryapi importing those packages.
func WithExtraMetrics(fn func(*metrics.PromWriter)) Option {
	return func(s *Server) { s.extra = append(s.extra, fn) }
}

// WithAdminHandler mounts an extra handler on the server's mux — the seam
// through which the cluster tier attaches its surfaces (/admin/handoff on
// workers, /ring on the router) without queryapi importing the forward
// package.
func WithAdminHandler(pattern string, h http.Handler) Option {
	return func(s *Server) { s.admin = append(s.admin, adminMount{pattern, h}) }
}

// ClusterInfo is the /query/health cluster block: which role and ring the
// answering process belongs to.
type ClusterInfo struct {
	Role   string   `json:"role"`            // "router" or "worker"
	Node   string   `json:"node,omitempty"`  // this process's ring name (workers)
	Nodes  []string `json:"nodes,omitempty"` // ring membership, canonical order
	VNodes int      `json:"vnodes,omitempty"`
}

// WithClusterInfo adds the cluster block to /query/health.
func WithClusterInfo(fn func() ClusterInfo) Option {
	return func(s *Server) { s.cluster = fn }
}

// New builds a Server over the store and registers its cache on the store's
// invalidation feed. A nil store is allowed — a cluster router has no
// window store but still serves /metrics, /query/health, and its admin
// surfaces; the /query range endpoints then answer 503.
func New(store *winstore.Store, opts ...Option) (*Server, error) {
	s := &Server{store: store}
	for _, o := range opts {
		o(s)
	}
	if s.cache == nil {
		s.cache = newCache(DefaultCacheEntries)
	}
	if store != nil {
		store.OnInvalidate(s.cache.InvalidateRange)
	}

	s.mux = http.NewServeMux()
	s.mux.Handle("/query/services", s.queryHandler("services"))
	s.mux.Handle("/query/asns", s.queryHandler("asns"))
	s.mux.Handle("/query/categories", s.queryHandler("categories"))
	s.mux.HandleFunc("/query/health", s.handleHealth)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if s.roll != nil {
		s.mux.Handle("/rollups", rollup.SnapshotHandler(s.roll, s.draining))
	}
	if s.reload != nil {
		s.mux.HandleFunc("/admin/reload", s.handleReload)
	}
	if s.faults {
		s.mux.HandleFunc("/admin/fault", s.handleFault)
	}
	for _, m := range s.admin {
		s.mux.Handle(m.pattern, m.h)
	}
	return s, nil
}

// handleFault is the chaos-testing surface: GET returns the failpoint
// catalog (name, armed spec, hits); POST arms or disarms one point. Arming
// uses the same "[count*]action(arg)" grammar as the FLOWDNS_FAULTS
// environment variable, so an operator can copy a spec between the two.
func (s *Server) handleFault(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(fault.List())
	case http.MethodPost:
		name := req.FormValue("name")
		if name == "" {
			http.Error(w, "missing name", http.StatusBadRequest)
			return
		}
		spec := req.FormValue("spec")
		if spec == "" {
			if !fault.Disable(name) {
				http.Error(w, fmt.Sprintf("unknown failpoint %q", name), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, "{\"status\":\"disabled\",\"name\":%q}\n", name)
			return
		}
		if err := fault.Enable(name, spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"enabled\",\"name\":%q,\"spec\":%q}\n", name, spec)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleReload swaps in fresh attribution tables. POST only: the swap is a
// state change, and keeping it off GET keeps crawlers and health checks from
// triggering disk reloads.
func (s *Server) handleReload(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if err := s.reload(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"reloaded"}`)
}

// Handler returns the server's mux — every endpoint on one handler.
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats snapshots the materialized-result cache.
func (s *Server) CacheStats() CacheStats { return s.cache.stats() }

// Addr returns the bound listen address once Serve has opened it (or the
// listener given via WithListener).
func (s *Server) Addr() string {
	if s.ln != nil {
		return s.ln.Addr().String()
	}
	return s.addr
}

// Name implements core.Service.
func (s *Server) Name() string { return "queryapi" }

// Serve runs the HTTP server until ctx is done, then shuts it down
// gracefully (in-flight queries finish; new connections are refused).
func (s *Server) Serve(ctx context.Context) error {
	ln := s.ln
	if ln == nil {
		if s.addr == "" {
			return errors.New("queryapi: no listen address")
		}
		var err error
		ln, err = net.Listen("tcp", s.addr)
		if err != nil {
			return fmt.Errorf("queryapi: %w", err)
		}
		s.ln = ln
	}
	srv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("queryapi: %w", err)
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("queryapi: shutdown: %w", err)
	}
	<-errc // always http.ErrServerClosed after a clean Shutdown
	return nil
}

// --- range queries ---------------------------------------------------------

// seriesEntry is one key's counters within a bucket.
type seriesEntry struct {
	Key     string `json:"key"`
	Other   bool   `json:"other,omitempty"`
	Bytes   uint64 `json:"bytes"`
	Packets uint64 `json:"packets"`
	Flows   uint64 `json:"flows"`
}

// bucket is one step interval of the response.
type bucket struct {
	Start  int64         `json:"start"`
	Series []seriesEntry `json:"series"`
}

// queryResponse is the wire shape of a /query/* range result.
type queryResponse struct {
	Dimension string   `json:"dimension"`
	From      int64    `json:"from"`
	To        int64    `json:"to"`
	StepSecs  int64    `json:"step_secs"`
	Top       int      `json:"top,omitempty"`
	Buckets   []bucket `json:"buckets"`
}

// parseTime accepts unix seconds or RFC 3339.
func parseTime(v string) (time.Time, error) {
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		return time.Unix(secs, 0).UTC(), nil
	}
	t, err := time.Parse(time.RFC3339, v)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad time %q (unix seconds or RFC 3339)", v)
	}
	return t.UTC(), nil
}

// parseStep accepts a Go duration or plain seconds.
func parseStep(v string) (time.Duration, error) {
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		return time.Duration(secs) * time.Second, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("bad step %q (duration or seconds)", v)
	}
	return d, nil
}

// queryParams is a parsed /query/* request.
type queryParams struct {
	from, to time.Time
	step     time.Duration
	top      int
}

// parseQuery extracts and validates the range parameters, defaulting an
// omitted from/to to the store's coverage bounds.
func (s *Server) parseQuery(req *http.Request) (queryParams, error) {
	var p queryParams
	q := req.URL.Query()
	oldest, newest := s.store.Bounds()
	p.from, p.to = oldest, newest
	var err error
	if v := q.Get("from"); v != "" {
		if p.from, err = parseTime(v); err != nil {
			return p, err
		}
	}
	if v := q.Get("to"); v != "" {
		if p.to, err = parseTime(v); err != nil {
			return p, err
		}
	}
	if p.to.Before(p.from) {
		return p, fmt.Errorf("empty range: to %d before from %d", p.to.Unix(), p.from.Unix())
	}
	if v := q.Get("step"); v != "" {
		if p.step, err = parseStep(v); err != nil {
			return p, err
		}
		if p.step < time.Second {
			return p, fmt.Errorf("step %v below 1s", p.step)
		}
		p.step = p.step.Round(time.Second)
	}
	if v := q.Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return p, fmt.Errorf("bad top %q (positive integer)", v)
		}
		p.top = n
	}
	return p, nil
}

// rowKey projects a rollup row onto the requested dimension. The services
// dimension spells uncorrelated traffic "NULL", matching the TSV sink.
func rowKey(dim string, r *rollup.Row) string {
	switch dim {
	case "services":
		if r.Service == "" {
			return "NULL"
		}
		return r.Service
	case "asns":
		return strconv.FormatUint(uint64(r.ASN), 10)
	default: // categories
		return r.Category.String()
	}
}

// bucketStart aligns t to the epoch in multiples of step.
func bucketStart(t time.Time, step time.Duration) int64 {
	ssecs := int64(step / time.Second)
	u := t.Unix()
	m := u % ssecs
	if m < 0 {
		m += ssecs
	}
	return u - m
}

// materialize computes the canonical response for one dimension and range.
func (s *Server) materialize(dim string, p queryParams) *queryResponse {
	resp := &queryResponse{
		Dimension: dim,
		From:      p.from.Unix(),
		To:        p.to.Unix(),
		Top:       p.top,
	}
	step := p.step
	if step <= 0 {
		// One bucket spanning the whole range.
		step = p.to.Sub(p.from)
		if step <= 0 {
			step = time.Second
		}
		resp.StepSecs = int64(step / time.Second)
	} else {
		resp.StepSecs = int64(step / time.Second)
	}

	windows := s.store.Query(p.from, p.to)
	type agg map[string]*seriesEntry
	buckets := make(map[int64]agg)
	for i := range windows {
		w := &windows[i]
		var bs int64
		if p.step <= 0 {
			bs = p.from.Unix()
		} else {
			bs = bucketStart(w.Start, step)
		}
		a := buckets[bs]
		if a == nil {
			a = make(agg)
			buckets[bs] = a
		}
		for j := range w.Rows {
			r := &w.Rows[j]
			key := rowKey(dim, r)
			e := a[key]
			if e == nil {
				e = &seriesEntry{Key: key}
				a[key] = e
			}
			e.Bytes += r.Bytes
			e.Packets += r.Packets
			e.Flows += r.Flows
		}
	}

	starts := make([]int64, 0, len(buckets))
	for bs := range buckets {
		starts = append(starts, bs)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	resp.Buckets = make([]bucket, 0, len(starts))
	for _, bs := range starts {
		a := buckets[bs]
		series := make([]seriesEntry, 0, len(a))
		for _, e := range a {
			series = append(series, *e)
		}
		sort.Slice(series, func(i, j int) bool {
			if series[i].Bytes != series[j].Bytes {
				return series[i].Bytes > series[j].Bytes
			}
			return series[i].Key < series[j].Key
		})
		if p.top > 0 && len(series) > p.top {
			other := seriesEntry{Key: OtherKey, Other: true}
			for _, e := range series[p.top:] {
				other.Bytes += e.Bytes
				other.Packets += e.Packets
				other.Flows += e.Flows
			}
			series = append(series[:p.top], other)
		}
		resp.Buckets = append(resp.Buckets, bucket{Start: bs, Series: series})
	}
	return resp
}

// queryHandler serves one dimension's range endpoint, caching finished
// bodies keyed by the full parameter tuple.
func (s *Server) queryHandler(dim string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if s.store == nil {
			http.Error(w, "no window store on this node (router role?)", http.StatusServiceUnavailable)
			return
		}
		p, err := s.parseQuery(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		key := fmt.Sprintf("%s|%d|%d|%d|%d", dim, p.from.Unix(), p.to.Unix(), int64(p.step/time.Second), p.top)
		body := s.cache.get(key)
		if body == nil {
			var err error
			body, err = json.MarshalIndent(s.materialize(dim, p), "", "  ")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			body = append(body, '\n')
			// Widen the invalidation range by one partition on the from side:
			// a window can overlap the range from a partition that starts
			// before it, and a late partial re-opening that partition must
			// still drop this entry.
			s.cache.put(key, body, p.from.Add(-s.store.PartDur()), p.to)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		w.Write(body)
	})
}

// --- health ---------------------------------------------------------------

// lossQueue is one stage queue's loss accounting within /query/health.
type lossQueue struct {
	Offered uint64 `json:"offered"`
	Dropped uint64 `json:"dropped"`
	Sampled uint64 `json:"sampled"`
}

// lossStatus is the /query/health overload-degradation block: how much of
// the offered load was lost, and how much of that loss was the sampler's
// deliberate, accounted shed rather than accidental overflow.
type lossStatus struct {
	LossRate    float64   `json:"loss_rate"`
	SampledRate float64   `json:"sampled_rate"`
	Fill        lossQueue `json:"fill"`
	Look        lossQueue `json:"look"`
	Write       lossQueue `json:"write"`
}

// supervisionStatus is the /query/health robustness block: what the panic
// containment and restart machinery has absorbed so far. A non-zero Panics
// with the process still answering this request is the supervision layer
// working as designed.
type supervisionStatus struct {
	Poisoned   uint64                  `json:"poisoned"`
	Panics     uint64                  `json:"panics"`
	Restarts   uint64                  `json:"restarts"`
	Components []core.SupervisedStatus `json:"components,omitempty"`
}

// healthResponse is the /query/health wire shape.
type healthResponse struct {
	Status      string             `json:"status"` // "ok" or "draining"
	Oldest      int64              `json:"oldest,omitempty"`
	Newest      int64              `json:"newest,omitempty"`
	Partitions  int                `json:"partitions"`
	Windows     int                `json:"windows"`
	Rows        int                `json:"rows"`
	DiskBytes   int64              `json:"disk_bytes"`
	Cache       CacheStats         `json:"cache"`
	Loss        *lossStatus        `json:"loss,omitempty"`
	Supervision *supervisionStatus `json:"supervision,omitempty"`
	Cluster     *ClusterInfo       `json:"cluster,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	resp := healthResponse{
		Status: "ok",
		Cache:  s.cache.stats(),
	}
	if s.store != nil {
		st := s.store.Stats()
		resp.Partitions = st.Partitions
		resp.Windows = st.Windows
		resp.Rows = st.Rows
		resp.DiskBytes = st.DiskBytes
	}
	if s.draining != nil && s.draining() {
		resp.Status = "draining"
	}
	if s.cluster != nil {
		ci := s.cluster()
		resp.Cluster = &ci
	}
	if s.pipeline != nil {
		ps := s.pipeline()
		resp.Loss = &lossStatus{
			LossRate:    ps.LossRate(),
			SampledRate: ps.SampledRate(),
			Fill:        lossQueue{Offered: ps.FillQueue.Offered(), Dropped: ps.FillQueue.Dropped, Sampled: ps.FillQueue.Sampled},
			Look:        lossQueue{Offered: ps.LookQueue.Offered(), Dropped: ps.LookQueue.Dropped, Sampled: ps.LookQueue.Sampled},
			Write:       lossQueue{Offered: ps.WriteQueue.Offered(), Dropped: ps.WriteQueue.Dropped, Sampled: ps.WriteQueue.Sampled},
		}
		resp.Supervision = &supervisionStatus{
			Poisoned:   ps.Poisoned,
			Panics:     ps.Panics,
			Restarts:   ps.Restarts,
			Components: ps.Supervised,
		}
	}
	if s.store != nil {
		if oldest, newest := s.store.Bounds(); !oldest.IsZero() {
			resp.Oldest, resp.Newest = oldest.Unix(), newest.Unix()
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&resp)
}

// --- metrics --------------------------------------------------------------

// handleMetrics exports pipeline, store, and cache counters in Prometheus
// text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	p := metrics.NewPromWriter()
	if s.pipeline != nil {
		writePipelineMetrics(p, s.pipeline())
	}
	if s.store != nil {
		writeStoreMetrics(p, s.store.Stats())
	}
	writeCacheMetrics(p, s.cache.stats())
	writeFaultMetrics(p)
	for _, fn := range s.extra {
		fn(p)
	}
	w.Header().Set("Content-Type", metrics.ContentTypePromText)
	w.Header().Set("Cache-Control", "no-store")
	p.WriteTo(w)
}

func writePipelineMetrics(p *metrics.PromWriter, st core.Stats) {
	p.Counter("flowdns_dns_records_total", "Valid DNS records filled up.", nil, st.DNSRecords)
	p.Counter("flowdns_dns_invalid_total", "DNS records rejected by the filter.", nil, st.DNSInvalid)
	p.Counter("flowdns_flows_total", "Flow records processed by LookUp.", nil, st.Flows)
	p.Counter("flowdns_flow_invalid_total", "Flow records rejected as invalid.", nil, st.FlowInvalid)
	p.Counter("flowdns_flow_bytes_total", "Total traffic volume seen.", nil, st.FlowBytes)
	p.Counter("flowdns_correlated_total", "Flows with a resolved name.", nil, st.Correlated)
	p.Counter("flowdns_correlated_bytes_total", "Traffic volume with a resolved name.", nil, st.CorrelatedBytes)
	p.Counter("flowdns_misses_total", "Flows without a resolved name.", nil, st.Misses)
	p.Counter("flowdns_lookup_hits_total", "LookUp hits by store tier.",
		map[string]string{"tier": "active"}, st.HitActive)
	p.Counter("flowdns_lookup_hits_total", "LookUp hits by store tier.",
		map[string]string{"tier": "inactive"}, st.HitInactive)
	p.Counter("flowdns_lookup_hits_total", "LookUp hits by store tier.",
		map[string]string{"tier": "long"}, st.HitLong)
	p.Counter("flowdns_memoized_total", "Flows answered from the memo cache.", nil, st.Memoized)
	p.Counter("flowdns_written_total", "Correlated flows written by the sink.", nil, st.Written)
	p.Gauge("flowdns_correlation_rate", "Correlated bytes over total bytes.", nil, st.CorrelationRate())
	p.GaugeInt("flowdns_max_write_delay_ns", "Worst observed LookUp-to-write latency.", nil, st.MaxWriteDelayNs)
	p.GaugeInt("flowdns_ip_name_entries", "Entries in the ip->name store.", nil, int64(st.IPNameEntries))
	p.GaugeInt("flowdns_name_cname_entries", "Entries in the name->cname store.", nil, int64(st.NameCnameEntries))
	p.Counter("flowdns_checkpoints_total", "Successful checkpoint writes.", nil, st.Checkpoints)
	p.Counter("flowdns_checkpoint_errors_total", "Failed checkpoint writes.", nil, st.CheckpointErrors)
	p.Counter("flowdns_queue_dropped_total", "Records dropped at a stage queue.",
		map[string]string{"queue": "fill"}, st.FillQueue.Dropped)
	p.Counter("flowdns_queue_dropped_total", "Records dropped at a stage queue.",
		map[string]string{"queue": "look"}, st.LookQueue.Dropped)
	p.Counter("flowdns_queue_dropped_total", "Records dropped at a stage queue.",
		map[string]string{"queue": "write"}, st.WriteQueue.Dropped)
	p.Counter("flowdns_queue_sampled_total", "Records deliberately shed by the adaptive sampler.",
		map[string]string{"queue": "fill"}, st.FillQueue.Sampled)
	p.Counter("flowdns_queue_sampled_total", "Records deliberately shed by the adaptive sampler.",
		map[string]string{"queue": "look"}, st.LookQueue.Sampled)
	p.Counter("flowdns_queue_sampled_total", "Records deliberately shed by the adaptive sampler.",
		map[string]string{"queue": "write"}, st.WriteQueue.Sampled)
	p.Gauge("flowdns_loss_rate", "Lost (dropped + sampled) over offered, across all stage queues.", nil, st.LossRate())
	p.Gauge("flowdns_sampled_rate", "Deliberately sampled over offered, across all stage queues.", nil, st.SampledRate())
	p.Counter("flowdns_poisoned_total", "Records dropped by panic containment.", nil, st.Poisoned)
	for _, c := range st.Supervised {
		p.Counter("flowdns_panics_total", "Contained panics by supervised component.",
			map[string]string{"component": c.Name}, c.Panics)
		p.Counter("flowdns_restarts_total", "Supervised goroutine restarts by component.",
			map[string]string{"component": c.Name}, c.Restarts)
	}
}

// writeFaultMetrics exports the armed state and hit counts of every
// registered failpoint. With nothing armed this is a block of zeros — which
// is itself the signal that the disabled fast path is what production runs.
func writeFaultMetrics(p *metrics.PromWriter) {
	for _, st := range fault.List() {
		p.Counter("flowdns_fault_hits_total", "Failpoint fires since process start.",
			map[string]string{"point": st.Name}, st.Hits)
		armed := 0.0
		if st.Spec != "" {
			armed = 1
		}
		p.Gauge("flowdns_fault_armed", "Whether the failpoint is currently armed.",
			map[string]string{"point": st.Name}, armed)
	}
}

func writeStoreMetrics(p *metrics.PromWriter, st winstore.Stats) {
	p.GaugeInt("flowdns_store_partitions", "Partitions in the window store.", nil, int64(st.Partitions))
	p.GaugeInt("flowdns_store_partitions_compacted", "Partitions already compacted.", nil, int64(st.Compacted))
	p.GaugeInt("flowdns_store_windows", "Windows held across all partitions.", nil, int64(st.Windows))
	p.GaugeInt("flowdns_store_rows", "Rows held across all windows.", nil, int64(st.Rows))
	p.GaugeInt("flowdns_store_disk_bytes", "Bytes across all segment files.", nil, st.DiskBytes)
	p.Counter("flowdns_store_windows_persisted_total", "Sealed windows accepted by the store.", nil, st.WindowsPersisted)
	p.Counter("flowdns_store_segment_writes_total", "Successful segment file writes.", nil, st.SegmentWrites)
	p.Counter("flowdns_store_write_errors_total", "Failed segment file writes.", nil, st.WriteErrors)
	p.Counter("flowdns_store_compactions_total", "Partitions compacted.", nil, st.Compactions)
	p.Counter("flowdns_store_retention_deletes_total", "Partitions deleted by retention.", nil, st.RetentionDeletes)
	p.Counter("flowdns_store_load_errors_total", "Partitions opened with a damaged tail.", nil, st.LoadErrors)
}

func writeCacheMetrics(p *metrics.PromWriter, st CacheStats) {
	p.GaugeInt("flowdns_query_cache_entries", "Materialized results cached.", nil, int64(st.Entries))
	p.Counter("flowdns_query_cache_hits_total", "Query cache hits.", nil, st.Hits)
	p.Counter("flowdns_query_cache_misses_total", "Query cache misses.", nil, st.Misses)
	p.Counter("flowdns_query_cache_evictions_total", "Query cache LRU evictions.", nil, st.Evictions)
	p.Counter("flowdns_query_cache_invalidations_total", "Query cache entries dropped by partition invalidation.", nil, st.Invalidations)
}
