package queryapi

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCacheEntries bounds the materialized-result cache. Dashboards ask
// the same handful of (range, step, top) shapes over and over; a few
// hundred pre-marshaled bodies cover them.
const DefaultCacheEntries = 256

// CacheStats is a point-in-time snapshot of the cache counters, exported on
// /metrics and /query/health.
type CacheStats struct {
	Entries       int    `json:"entries"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"` // entries dropped by InvalidateRange
}

// cacheEntry is one materialized range result: the exact response body plus
// the half-open data range it covers, so partition-level invalidation can
// drop precisely the overlapping entries.
type cacheEntry struct {
	key      string
	body     []byte
	from, to time.Time
}

// cache is a mutex-guarded LRU of pre-marshaled query responses. The store
// feeds InvalidateRange through winstore.Store.OnInvalidate whenever a
// partition's contents change (seal, compaction, retention), so a cached
// body is served only while every partition under it is unchanged.
type cache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recent; values are *cacheEntry
	entries map[string]*list.Element

	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
}

func newCache(maxEntries int) *cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	return &cache{
		max:     maxEntries,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the cached body for key, or nil.
func (c *cache) get(key string) []byte {
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		c.order.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return el.Value.(*cacheEntry).body
}

// put stores body for key, covering the half-open data range [from, to).
func (c *cache) put(key string, body []byte, from, to time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body, from: from, to: to})
	for c.order.Len() > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// InvalidateRange drops every entry whose data range overlaps [from, to) —
// the per-partition invalidation feed.
func (c *cache) InvalidateRange(from, to time.Time) {
	c.mu.Lock()
	var next *list.Element
	for el := c.order.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if e.from.Before(to) && e.to.After(from) {
			c.order.Remove(el)
			delete(c.entries, e.key)
			c.invalidations.Add(1)
		}
	}
	c.mu.Unlock()
}

// stats snapshots the cache.
func (c *cache) stats() CacheStats {
	c.mu.Lock()
	n := c.order.Len()
	c.mu.Unlock()
	return CacheStats{
		Entries:       n,
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
	}
}
