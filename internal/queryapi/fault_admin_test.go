package queryapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
)

func postForm(t *testing.T, h http.Handler, path string, form url.Values) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestFaultAdminEndpoint walks the whole /admin/fault surface: catalog
// listing, arming, the armed spec showing in the catalog, disarming, and
// the error paths.
func TestFaultAdminEndpoint(t *testing.T) {
	defer fault.DisableAll()
	srv := newTestServer(t, goldenStore(t), WithFaultAdmin())
	h := srv.Handler()

	rec, body := get(t, h, "/admin/fault")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET = %d: %s", rec.Code, body)
	}
	var list []fault.Status
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("catalog not JSON: %v", err)
	}
	names := map[string]bool{}
	for _, st := range list {
		if st.Spec != "" {
			t.Fatalf("point %s armed at rest: %q", st.Name, st.Spec)
		}
		names[st.Name] = true
	}
	for _, want := range []string{"core.sink.write", "core.look.record", "winstore.segment.write", "snapshot.rename", "stream.udp.read"} {
		if !names[want] {
			t.Fatalf("catalog missing %s (have %v)", want, names)
		}
	}

	// Arm one point and see it in the catalog.
	rec = postForm(t, h, "/admin/fault", url.Values{"name": {"core.sink.write"}, "spec": {"2*error(chaos)"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("POST arm = %d: %s", rec.Code, rec.Body)
	}
	_, body = get(t, h, "/admin/fault")
	if !strings.Contains(string(body), `"spec": "2*error(chaos)"`) {
		t.Fatalf("armed spec not listed:\n%s", body)
	}

	// Empty spec disarms.
	rec = postForm(t, h, "/admin/fault", url.Values{"name": {"core.sink.write"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("POST disarm = %d: %s", rec.Code, rec.Body)
	}
	_, body = get(t, h, "/admin/fault")
	if strings.Contains(string(body), "chaos") {
		t.Fatalf("point still armed after disarm:\n%s", body)
	}

	// Error paths: unknown point, bad spec, missing name.
	if rec = postForm(t, h, "/admin/fault", url.Values{"name": {"no.such.point"}}); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown disarm = %d, want 404", rec.Code)
	}
	if rec = postForm(t, h, "/admin/fault", url.Values{"name": {"core.sink.write"}, "spec": {"wibble!"}}); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad spec = %d, want 400", rec.Code)
	}
	if rec = postForm(t, h, "/admin/fault", url.Values{}); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing name = %d, want 400", rec.Code)
	}
}

// TestFaultAdminOffByDefault proves the chaos surface is not mounted unless
// asked for.
func TestFaultAdminOffByDefault(t *testing.T) {
	srv := newTestServer(t, goldenStore(t))
	rec, _ := get(t, srv.Handler(), "/admin/fault")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("/admin/fault without WithFaultAdmin = %d, want 404", rec.Code)
	}
}

// supervisedStats is a canned pipeline snapshot with supervision history.
func supervisedStats() core.Stats {
	return core.Stats{
		Poisoned: 3,
		Panics:   5,
		Restarts: 2,
		Supervised: []core.SupervisedStatus{
			{Name: "fill", Panics: 1, Restarts: 0},
			{Name: "look", Panics: 4, Restarts: 2},
			{Name: "service:queryapi", Panics: 0, Restarts: 0},
		},
	}
}

// TestMetricsSupervisionFaultsAndExtras proves /metrics carries the
// per-component panic/restart counters, the failpoint hit/armed families,
// and anything a WithExtraMetrics contributor adds.
func TestMetricsSupervisionFaultsAndExtras(t *testing.T) {
	defer fault.DisableAll()
	if err := fault.Enable("core.look.record", "1000*panic"); err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, goldenStore(t),
		WithPipelineStats(supervisedStats),
		WithExtraMetrics(func(p *metrics.PromWriter) {
			p.Counter("flowdns_sink_spilled_total", "Batches spilled by a retry sink.", nil, 7)
		}),
	)
	rec, body := get(t, srv.Handler(), "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	for _, want := range []string{
		`flowdns_poisoned_total 3`,
		`flowdns_panics_total{component="look"} 4`,
		`flowdns_restarts_total{component="look"} 2`,
		`flowdns_panics_total{component="service:queryapi"} 0`,
		`flowdns_fault_hits_total{point="core.look.record"} 0`,
		`flowdns_fault_armed{point="core.look.record"} 1`,
		`flowdns_fault_armed{point="core.sink.write"} 0`,
		`flowdns_sink_spilled_total 7`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestHealthSupervisionBlock proves /query/health surfaces the supervision
// counters alongside the loss accounting.
func TestHealthSupervisionBlock(t *testing.T) {
	srv := newTestServer(t, goldenStore(t), WithPipelineStats(supervisedStats))
	rec, body := get(t, srv.Handler(), "/query/health")
	if rec.Code != http.StatusOK {
		t.Fatalf("/query/health = %d", rec.Code)
	}
	var resp struct {
		Supervision *struct {
			Poisoned   uint64                  `json:"poisoned"`
			Panics     uint64                  `json:"panics"`
			Restarts   uint64                  `json:"restarts"`
			Components []core.SupervisedStatus `json:"components"`
		} `json:"supervision"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Supervision == nil {
		t.Fatalf("no supervision block:\n%s", body)
	}
	s := resp.Supervision
	if s.Poisoned != 3 || s.Panics != 5 || s.Restarts != 2 || len(s.Components) != 3 {
		t.Fatalf("supervision block = %+v", s)
	}
	if s.Components[1].Name != "look" || s.Components[1].Panics != 4 {
		t.Fatalf("components = %+v", s.Components)
	}
}
