package queryapi

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"errors"
	"repro/internal/core"
	"repro/internal/dbl"
	"repro/internal/queue"
	"repro/internal/rollup"
	"repro/internal/winstore"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the query golden files")

var base = time.Date(2022, 5, 25, 12, 0, 0, 0, time.UTC)

// goldenStore fills a store with a fixed three-window shape: the full
// category alphabet, an uncorrelated row, a same-interval partial (so
// queries exercise the merge path), and traffic heavy enough on one service
// that top-N ordering is deterministic.
func goldenStore(t *testing.T) *winstore.Store {
	t.Helper()
	s, err := winstore.Open(winstore.Config{Dir: t.TempDir(), PartDur: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	windows := []rollup.Window{
		{
			Start: base,
			Dur:   time.Minute,
			Rows: []rollup.Row{
				{Key: rollup.Key{Service: "", ASN: 0, Category: dbl.Benign}, Counters: rollup.Counters{Bytes: 512, Packets: 8, Flows: 2}},
				{Key: rollup.Key{Service: "cdn.example", ASN: 64500, Category: dbl.Benign}, Counters: rollup.Counters{Bytes: 9000, Packets: 90, Flows: 9}},
				{Key: rollup.Key{Service: "cnc.bad.example", ASN: 64501, Category: dbl.Botnet}, Counters: rollup.Counters{Bytes: 700, Packets: 7, Flows: 1}},
				{Key: rollup.Key{Service: "video.example", ASN: 64502, Category: dbl.Benign}, Counters: rollup.Counters{Bytes: 4000, Packets: 40, Flows: 4}},
			},
		},
		// A late partial of the same interval: per-key sums must merge.
		{
			Start: base,
			Dur:   time.Minute,
			Rows: []rollup.Row{
				{Key: rollup.Key{Service: "cdn.example", ASN: 64500, Category: dbl.Benign}, Counters: rollup.Counters{Bytes: 1000, Packets: 10, Flows: 1}},
			},
		},
		{
			Start: base.Add(time.Minute),
			Dur:   time.Minute,
			Rows: []rollup.Row{
				{Key: rollup.Key{Service: "drop.example", ASN: 64500, Category: dbl.Malware}, Counters: rollup.Counters{Bytes: 66, Packets: 1, Flows: 1}},
				{Key: rollup.Key{Service: "hook.example", ASN: 64503, Category: dbl.Phish}, Counters: rollup.Counters{Bytes: 33, Packets: 1, Flows: 1}},
				{Key: rollup.Key{Service: "video.example", ASN: 64502, Category: dbl.Benign}, Counters: rollup.Counters{Bytes: 2000, Packets: 20, Flows: 2}},
			},
		},
	}
	if err := s.Add(windows); err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestServer(t *testing.T, store *winstore.Store, opts ...Option) *Server {
	t.Helper()
	srv, err := New(store, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func get(t *testing.T, h http.Handler, url string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec, rec.Body.Bytes()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden:\n got:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestGoldenQueryResponses pins the wire shape of every /query/* endpoint
// byte for byte: canonical sort, top-N + OTHER aggregation, step bucketing,
// and the NULL service spelling.
func TestGoldenQueryResponses(t *testing.T) {
	srv := newTestServer(t, goldenStore(t))
	rangeQ := fmt.Sprintf("from=%d&to=%d", base.Unix(), base.Add(2*time.Minute).Unix())
	cases := []struct {
		golden, url string
	}{
		{"services.golden.json", "/query/services?" + rangeQ + "&step=60"},
		{"services_top.golden.json", "/query/services?" + rangeQ + "&step=60&top=2"},
		{"asns.golden.json", "/query/asns?" + rangeQ + "&step=60"},
		{"categories.golden.json", "/query/categories?" + rangeQ},
	}
	for _, tc := range cases {
		rec, body := get(t, srv.Handler(), tc.url)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.url, rec.Code, body)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: Content-Type %q", tc.url, ct)
		}
		if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
			t.Fatalf("%s: Cache-Control %q", tc.url, cc)
		}
		checkGolden(t, tc.golden, body)
	}
	// Health from a fresh server, so the cache counters in the golden do
	// not depend on how many queries ran above.
	rec, body := get(t, newTestServer(t, goldenStore(t)).Handler(), "/query/health")
	if rec.Code != http.StatusOK {
		t.Fatalf("/query/health: status %d: %s", rec.Code, body)
	}
	checkGolden(t, "health.golden.json", body)
}

func TestQueryDefaultsToBounds(t *testing.T) {
	srv := newTestServer(t, goldenStore(t))
	rec, body := get(t, srv.Handler(), "/query/services")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp queryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.From != base.Unix() || resp.To != base.Add(2*time.Minute).Unix() {
		t.Fatalf("defaulted range %d..%d", resp.From, resp.To)
	}
	if len(resp.Buckets) != 1 {
		t.Fatalf("%d buckets for stepless query", len(resp.Buckets))
	}
}

func TestQueryParamValidation(t *testing.T) {
	srv := newTestServer(t, goldenStore(t))
	for _, url := range []string{
		"/query/services?from=bogus",
		"/query/services?to=bogus",
		"/query/services?from=100&to=50",
		"/query/services?step=0.5s",
		"/query/services?step=bogus",
		"/query/services?top=0",
		"/query/services?top=-1",
		"/query/services?top=x",
	} {
		rec, _ := get(t, srv.Handler(), url)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query/services", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", rec.Code)
	}
}

// TestQueryCacheInvalidation proves the read path caches and that a store
// mutation in the cached range drops exactly that entry.
func TestQueryCacheInvalidation(t *testing.T) {
	store := goldenStore(t)
	srv := newTestServer(t, store, WithCache(8))
	url := fmt.Sprintf("/query/services?from=%d&to=%d", base.Unix(), base.Add(2*time.Minute).Unix())
	_, first := get(t, srv.Handler(), url)
	_, second := get(t, srv.Handler(), url)
	if !bytes.Equal(first, second) {
		t.Fatal("cached response diverges")
	}
	st := srv.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("cache stats after repeat: %+v", st)
	}

	// A sealed window landing in the range invalidates the entry and the
	// next response includes the new traffic.
	late := rollup.Window{Start: base, Dur: time.Minute, Rows: []rollup.Row{
		{Key: rollup.Key{Service: "cdn.example", ASN: 64500, Category: dbl.Benign}, Counters: rollup.Counters{Bytes: 5, Packets: 1, Flows: 1}},
	}}
	if err := store.Add([]rollup.Window{late}); err != nil {
		t.Fatal(err)
	}
	st = srv.CacheStats()
	if st.Invalidations != 1 || st.Entries != 0 {
		t.Fatalf("cache stats after invalidation: %+v", st)
	}
	_, third := get(t, srv.Handler(), url)
	if bytes.Equal(first, third) {
		t.Fatal("stale body served after invalidation")
	}
	var resp queryResponse
	if err := json.Unmarshal(third, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Buckets[0].Series[0].Key != "cdn.example" || resp.Buckets[0].Series[0].Bytes != 10005 {
		t.Fatalf("post-invalidation head: %+v", resp.Buckets[0].Series[0])
	}

	// A mutation outside every cached range leaves entries alone.
	_, _ = get(t, srv.Handler(), url)
	far := rollup.Window{Start: base.Add(24 * time.Hour), Dur: time.Minute, Rows: []rollup.Row{
		{Key: rollup.Key{Service: "x.example"}, Counters: rollup.Counters{Bytes: 1, Packets: 1, Flows: 1}},
	}}
	if err := store.Add([]rollup.Window{far}); err != nil {
		t.Fatal(err)
	}
	if st := srv.CacheStats(); st.Entries != 1 {
		t.Fatalf("unrelated mutation dropped cache: %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	at := func(i int) time.Time { return base.Add(time.Duration(i) * time.Hour) }
	c.put("a", []byte("A"), at(0), at(1))
	c.put("b", []byte("B"), at(1), at(2))
	if c.get("a") == nil { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", []byte("C"), at(2), at(3))
	if c.get("b") != nil {
		t.Fatal("LRU entry survived eviction")
	}
	if c.get("a") == nil || c.get("c") == nil {
		t.Fatal("recent entries evicted")
	}
	st := c.stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	pipeline := func() core.Stats {
		return core.Stats{Flows: 100, Correlated: 81, FlowBytes: 1000, CorrelatedBytes: 817}
	}
	srv := newTestServer(t, goldenStore(t), WithPipelineStats(pipeline))
	rec, body := get(t, srv.Handler(), "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type %q", ct)
	}
	for _, want := range []string{
		"# TYPE flowdns_flows_total counter\nflowdns_flows_total 100\n",
		"flowdns_correlation_rate 0.817\n",
		"flowdns_store_partitions 1\n",
		"flowdns_store_windows_persisted_total 3\n",
		"flowdns_query_cache_misses_total 0\n",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
}

// TestRollupsMountAndDrain checks the shared-mux /rollups endpoint and its
// drain behavior: 200 + no-store while live, 503 once draining.
func TestRollupsMountAndDrain(t *testing.T) {
	draining := false
	roll := rollup.New(time.Minute, 2)
	srv := newTestServer(t, goldenStore(t),
		WithRollups(roll), WithDraining(func() bool { return draining }))
	rec, _ := get(t, srv.Handler(), "/rollups")
	if rec.Code != http.StatusOK {
		t.Fatalf("live /rollups: %d", rec.Code)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("live /rollups Cache-Control %q", cc)
	}
	draining = true
	rec, _ = get(t, srv.Handler(), "/rollups")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /rollups: %d", rec.Code)
	}
	rec, body := get(t, srv.Handler(), "/query/health")
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusOK || h.Status != "draining" {
		t.Fatalf("health while draining: %d %q", rec.Code, h.Status)
	}
}

// TestServeLifecycle runs the real listener path: Serve answers over TCP
// and shuts down cleanly on context cancel.
func TestServeLifecycle(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, goldenStore(t), WithListener(ln))
	if srv.Name() != "queryapi" {
		t.Fatalf("Name = %q", srv.Name())
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()

	resp, err := http.Get("http://" + srv.Addr() + "/query/health")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health over TCP: %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not shut down")
	}
}

// TestMetricsSampledCounters checks that the sampler's deliberate shed shows
// up per queue in /metrics alongside the loss-rate gauges, so overload
// degradation is visible where operators already look for drops.
func TestMetricsSampledCounters(t *testing.T) {
	pipeline := func() core.Stats {
		return core.Stats{
			FillQueue:  queue.Stats{Enqueued: 70, Dropped: 10, Sampled: 20},
			LookQueue:  queue.Stats{Enqueued: 95, Sampled: 5},
			WriteQueue: queue.Stats{Enqueued: 100},
		}
	}
	srv := newTestServer(t, goldenStore(t), WithPipelineStats(pipeline))
	_, body := get(t, srv.Handler(), "/metrics")
	for _, want := range []string{
		`flowdns_queue_sampled_total{queue="fill"} 20`,
		`flowdns_queue_sampled_total{queue="look"} 5`,
		`flowdns_queue_sampled_total{queue="write"} 0`,
		`flowdns_queue_dropped_total{queue="fill"} 10`,
		// (10+20+5+0) lost / (100+100+100) offered
		"flowdns_loss_rate 0.11666666666666667\n",
		// (20+5+0) sampled / 300 offered
		"flowdns_sampled_rate 0.08333333333333333\n",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
}

// TestHealthLossBlock checks the /query/health loss accounting: per-queue
// offered/dropped/sampled plus the aggregate rates, present only when
// pipeline stats are wired.
func TestHealthLossBlock(t *testing.T) {
	pipeline := func() core.Stats {
		return core.Stats{
			FillQueue:  queue.Stats{Enqueued: 70, Dropped: 10, Sampled: 20},
			LookQueue:  queue.Stats{Enqueued: 100},
			WriteQueue: queue.Stats{Enqueued: 50, Sampled: 50},
		}
	}
	srv := newTestServer(t, goldenStore(t), WithPipelineStats(pipeline))
	_, body := get(t, srv.Handler(), "/query/health")
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Loss == nil {
		t.Fatalf("no loss block in %s", body)
	}
	if h.Loss.Fill != (lossQueue{Offered: 100, Dropped: 10, Sampled: 20}) {
		t.Fatalf("fill loss = %+v", h.Loss.Fill)
	}
	if h.Loss.Write != (lossQueue{Offered: 100, Sampled: 50}) {
		t.Fatalf("write loss = %+v", h.Loss.Write)
	}
	if want := 80.0 / 300.0; h.Loss.LossRate != want {
		t.Fatalf("loss_rate = %v, want %v", h.Loss.LossRate, want)
	}
	if want := 70.0 / 300.0; h.Loss.SampledRate != want {
		t.Fatalf("sampled_rate = %v, want %v", h.Loss.SampledRate, want)
	}

	// Without pipeline stats the block is omitted entirely.
	_, body = get(t, newTestServer(t, goldenStore(t)).Handler(), "/query/health")
	if bytes.Contains(body, []byte(`"loss"`)) {
		t.Fatalf("loss block present without pipeline stats: %s", body)
	}
}

// TestAdminReload checks the hot-reload endpoint: POST triggers the wired
// reload exactly once, GET is rejected, a failing reload surfaces as 500,
// and the route is absent when not wired.
func TestAdminReload(t *testing.T) {
	calls := 0
	var fail error
	srv := newTestServer(t, goldenStore(t), WithReload(func() error {
		calls++
		return fail
	}))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if rec.Code != http.StatusOK || calls != 1 {
		t.Fatalf("POST reload: status %d calls %d", rec.Code, calls)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("reloaded")) {
		t.Fatalf("reload body = %s", rec.Body.Bytes())
	}

	rec, _ = get(t, srv.Handler(), "/admin/reload")
	if rec.Code != http.StatusMethodNotAllowed || calls != 1 {
		t.Fatalf("GET reload: status %d calls %d", rec.Code, calls)
	}

	fail = errors.New("bgp table: no such file")
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("failing reload: status %d", rec.Code)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("no such file")) {
		t.Fatalf("failing reload body = %s", rec.Body.Bytes())
	}

	// Not wired: the route must not exist.
	bare := newTestServer(t, goldenStore(t))
	rec = httptest.NewRecorder()
	bare.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unwired reload: status %d", rec.Code)
	}
}
