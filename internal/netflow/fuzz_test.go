package netflow

import (
	"net/netip"
	"testing"
	"time"
)

// fuzzSeedV5 builds a valid v5 export for the seed corpus.
func fuzzSeedV5(t *testing.F) []byte {
	t.Helper()
	h := V5Header{SysUptimeMs: 1000, UnixSecs: 1653475200, FlowSequence: 7}
	recs := []V5Record{
		{SrcAddr: [4]byte{198, 51, 100, 7}, DstAddr: [4]byte{203, 0, 113, 9},
			Packets: 10, Octets: 1500, SrcPort: 443, DstPort: 50000, Proto: 6},
		{SrcAddr: [4]byte{192, 0, 2, 1}, DstAddr: [4]byte{198, 51, 100, 250},
			Packets: 1, Octets: 64, SrcPort: 53, DstPort: 4096, Proto: 17},
	}
	pkt, err := EncodeV5(h, recs)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// FuzzDecodeV5 asserts the v5 decoder never panics on arbitrary datagrams
// — the packets arrive on an open UDP socket from untrusted exporters —
// and that accepted packets survive the record→neutral→wire round trip.
func FuzzDecodeV5(f *testing.F) {
	valid := fuzzSeedV5(f)
	f.Add(valid)
	f.Add(valid[:24])         // header only
	f.Add(valid[:37])         // truncated mid-record
	f.Add([]byte{})           // empty
	f.Add([]byte{0, 5})       // short header
	f.Add([]byte{0, 9, 0, 0}) // wrong version prefix
	badCount := append([]byte(nil), valid...)
	badCount[3] = 29 // count disagrees with payload
	f.Add(badCount)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, recs, err := DecodeV5(data)
		fused, fusedErr := AppendV5Flows(data, nil)
		if err != nil {
			// The fused fast path must reject exactly what the staged
			// decoder rejects.
			if fusedErr == nil {
				t.Fatalf("AppendV5Flows accepted a packet DecodeV5 rejected: %v", err)
			}
			return
		}
		if fusedErr != nil {
			t.Fatalf("AppendV5Flows rejected a packet DecodeV5 accepted: %v", fusedErr)
		}
		if len(recs) != int(h.Count) {
			t.Fatalf("decoded %d records, header count %d", len(recs), h.Count)
		}
		if len(fused) != len(recs) {
			t.Fatalf("fused decoded %d records, staged %d", len(fused), len(recs))
		}
		for i := range recs {
			fr := recs[i].ToFlowRecord(h)
			if fr.Timestamp.IsZero() && h.UnixSecs != 0 {
				t.Fatal("timestamp lost")
			}
			if fused[i] != fr {
				t.Fatalf("record %d: fused %+v staged %+v", i, fused[i], fr)
			}
		}
		if _, err := EncodeV5(h, recs); err != nil {
			t.Fatalf("re-encode of accepted packet: %v", err)
		}
	})
}

// fuzzSeedV9 builds a valid v9 export (template + data) for the corpus.
func fuzzSeedV9(t *testing.F, tmpl Template, rec FlowRecord) []byte {
	t.Helper()
	pkt, err := EncodeV9(V9Header{SysUptimeMs: 5, UnixSecs: 1653475200, SourceID: 42},
		tmpl, []FlowRecord{rec})
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// FuzzDecodeV9 asserts the v9 decoder never panics on arbitrary datagrams,
// with and without a warm template cache, including template FlowSets the
// packet itself announces.
func FuzzDecodeV9(f *testing.F) {
	ts := time.UnixMilli(1653475200123)
	v4 := fuzzSeedV9(f, StandardTemplate(), FlowRecord{
		Timestamp: ts,
		SrcIP:     netip.AddrFrom4([4]byte{198, 51, 100, 7}),
		DstIP:     netip.AddrFrom4([4]byte{203, 0, 113, 9}),
		SrcPort:   443, DstPort: 50000, Proto: 6, Packets: 10, Bytes: 1500,
	})
	v6 := fuzzSeedV9(f, StandardTemplateV6(), FlowRecord{
		Timestamp: ts,
		SrcIP:     netip.MustParseAddr("2001:db8::1"),
		DstIP:     netip.MustParseAddr("2001:db8::2"),
		SrcPort:   443, DstPort: 50000, Proto: 6, Packets: 3, Bytes: 900,
	})
	f.Add(v4)
	f.Add(v6)
	f.Add(v4[:20])                                                    // header only
	f.Add(v4[:30])                                                    // truncated template set
	f.Add([]byte{})                                                   // empty
	zeroLenSet := append(append([]byte(nil), v4[:20]...), 0, 0, 0, 0) // set len 0
	f.Add(zeroLenSet)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Cold cache: templates must come from the packet itself.
		if _, err := DecodeV9(data, NewTemplateCache()); err != nil {
			_ = err
		}
		// Nil cache is a supported configuration.
		if _, err := DecodeV9(data, nil); err != nil {
			_ = err
		}
		// Warm cache: data sets resolve against a known standard template,
		// exercising record decode even when the fuzzer mangles the
		// packet's own template set.
		warm := NewTemplateCache()
		warm.Put(42, StandardTemplate())
		warm.Put(42, StandardTemplateV6())
		pkt, err := DecodeV9(data, warm)
		if err != nil {
			return
		}
		for i := range pkt.Records {
			_ = pkt.Records[i].IsValid()
		}
	})
}
