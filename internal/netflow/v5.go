package netflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"time"
)

// NetFlow v5 wire constants.
const (
	v5Version      = 5
	v5HeaderLen    = 24
	v5RecordLen    = 48
	v5MaxRecords   = 30 // per Cisco spec, keeps datagrams under typical MTU
	v5EngineTypeRP = 0
)

// Errors returned by the v5 codec.
var (
	ErrV5Short       = errors.New("netflow: v5 packet shorter than header")
	ErrV5Version     = errors.New("netflow: not a v5 packet")
	ErrV5Count       = errors.New("netflow: v5 count disagrees with length")
	ErrV5TooMany     = errors.New("netflow: v5 count exceeds 30 records")
	ErrV5IPv6        = errors.New("netflow: v5 cannot carry IPv6 addresses")
	ErrV5RecordCount = errors.New("netflow: more than 30 records per v5 export")
)

// V5Header is the 24-byte NetFlow v5 export header.
type V5Header struct {
	Count        uint16
	SysUptimeMs  uint32
	UnixSecs     uint32
	UnixNsecs    uint32
	FlowSequence uint32
	EngineType   uint8
	EngineID     uint8
	SamplingInfo uint16
}

// V5Record is one 48-byte NetFlow v5 flow record.
type V5Record struct {
	SrcAddr  [4]byte
	DstAddr  [4]byte
	NextHop  [4]byte
	InputIf  uint16
	OutputIf uint16
	Packets  uint32
	Octets   uint32
	FirstMs  uint32 // sysuptime at flow start
	LastMs   uint32 // sysuptime at flow end
	SrcPort  uint16
	DstPort  uint16
	TCPFlags uint8
	Proto    uint8
	TOS      uint8
	SrcAS    uint16
	DstAS    uint16
	SrcMask  uint8
	DstMask  uint8
}

// EncodeV5 serializes a v5 export datagram carrying the given records.
// len(records) must be <= 30.
func EncodeV5(h V5Header, records []V5Record) ([]byte, error) {
	if len(records) > v5MaxRecords {
		return nil, ErrV5RecordCount
	}
	h.Count = uint16(len(records))
	buf := make([]byte, 0, v5HeaderLen+len(records)*v5RecordLen)
	buf = binary.BigEndian.AppendUint16(buf, v5Version)
	buf = binary.BigEndian.AppendUint16(buf, h.Count)
	buf = binary.BigEndian.AppendUint32(buf, h.SysUptimeMs)
	buf = binary.BigEndian.AppendUint32(buf, h.UnixSecs)
	buf = binary.BigEndian.AppendUint32(buf, h.UnixNsecs)
	buf = binary.BigEndian.AppendUint32(buf, h.FlowSequence)
	buf = append(buf, h.EngineType, h.EngineID)
	buf = binary.BigEndian.AppendUint16(buf, h.SamplingInfo)
	for i := range records {
		r := &records[i]
		buf = append(buf, r.SrcAddr[:]...)
		buf = append(buf, r.DstAddr[:]...)
		buf = append(buf, r.NextHop[:]...)
		buf = binary.BigEndian.AppendUint16(buf, r.InputIf)
		buf = binary.BigEndian.AppendUint16(buf, r.OutputIf)
		buf = binary.BigEndian.AppendUint32(buf, r.Packets)
		buf = binary.BigEndian.AppendUint32(buf, r.Octets)
		buf = binary.BigEndian.AppendUint32(buf, r.FirstMs)
		buf = binary.BigEndian.AppendUint32(buf, r.LastMs)
		buf = binary.BigEndian.AppendUint16(buf, r.SrcPort)
		buf = binary.BigEndian.AppendUint16(buf, r.DstPort)
		buf = append(buf, 0 /* pad1 */, r.TCPFlags, r.Proto, r.TOS)
		buf = binary.BigEndian.AppendUint16(buf, r.SrcAS)
		buf = binary.BigEndian.AppendUint16(buf, r.DstAS)
		buf = append(buf, r.SrcMask, r.DstMask, 0, 0 /* pad2 */)
	}
	return buf, nil
}

// DecodeV5 parses a v5 export datagram, allocating a fresh record slice.
func DecodeV5(pkt []byte) (V5Header, []V5Record, error) {
	return DecodeV5Into(pkt, nil)
}

// DecodeV5Into is DecodeV5 reusing dst's capacity for the decoded records:
// dst is truncated and appended to, so a collector passing its scratch back
// in (`wire, _ = DecodeV5Into(pkt, wire[:0])` style) decodes every datagram
// after the first with zero allocations. On error the returned slice is
// dst truncated — never partially filled.
func DecodeV5Into(pkt []byte, dst []V5Record) (V5Header, []V5Record, error) {
	var h V5Header
	dst = dst[:0]
	if len(pkt) < v5HeaderLen {
		return h, dst, ErrV5Short
	}
	if binary.BigEndian.Uint16(pkt) != v5Version {
		return h, dst, ErrV5Version
	}
	h.Count = binary.BigEndian.Uint16(pkt[2:])
	h.SysUptimeMs = binary.BigEndian.Uint32(pkt[4:])
	h.UnixSecs = binary.BigEndian.Uint32(pkt[8:])
	h.UnixNsecs = binary.BigEndian.Uint32(pkt[12:])
	h.FlowSequence = binary.BigEndian.Uint32(pkt[16:])
	h.EngineType = pkt[20]
	h.EngineID = pkt[21]
	h.SamplingInfo = binary.BigEndian.Uint16(pkt[22:])
	if h.Count > v5MaxRecords {
		return h, dst, ErrV5TooMany
	}
	want := v5HeaderLen + int(h.Count)*v5RecordLen
	if len(pkt) != want {
		return h, dst, fmt.Errorf("%w: have %d bytes, count %d wants %d", ErrV5Count, len(pkt), h.Count, want)
	}
	var records []V5Record
	if cap(dst) >= int(h.Count) {
		records = dst[:h.Count]
	} else {
		records = make([]V5Record, h.Count)
	}
	for i := range records {
		o := v5HeaderLen + i*v5RecordLen
		r := &records[i]
		copy(r.SrcAddr[:], pkt[o:o+4])
		copy(r.DstAddr[:], pkt[o+4:o+8])
		copy(r.NextHop[:], pkt[o+8:o+12])
		r.InputIf = binary.BigEndian.Uint16(pkt[o+12:])
		r.OutputIf = binary.BigEndian.Uint16(pkt[o+14:])
		r.Packets = binary.BigEndian.Uint32(pkt[o+16:])
		r.Octets = binary.BigEndian.Uint32(pkt[o+20:])
		r.FirstMs = binary.BigEndian.Uint32(pkt[o+24:])
		r.LastMs = binary.BigEndian.Uint32(pkt[o+28:])
		r.SrcPort = binary.BigEndian.Uint16(pkt[o+32:])
		r.DstPort = binary.BigEndian.Uint16(pkt[o+34:])
		r.TCPFlags = pkt[o+37]
		r.Proto = pkt[o+38]
		r.TOS = pkt[o+39]
		r.SrcAS = binary.BigEndian.Uint16(pkt[o+40:])
		r.DstAS = binary.BigEndian.Uint16(pkt[o+42:])
		r.SrcMask = pkt[o+44]
		r.DstMask = pkt[o+45]
	}
	return h, records, nil
}

// AppendV5Flows parses a v5 export datagram and appends its records to dst
// as neutral FlowRecords, converted straight off the wire — the collector's
// ingest fast path. Compared with DecodeV5Into + ToFlowRecord it skips
// staging each record through the full 48-byte V5Record (most of whose
// fields the neutral record never carries) and rebuilds the header
// timestamp once per datagram instead of once per record; at line rate,
// where batched reads have already amortized the syscall, that staging copy
// is a measurable share of the per-record cost. On error dst is returned
// exactly as passed in, never partially extended.
func AppendV5Flows(pkt []byte, dst []FlowRecord) ([]FlowRecord, error) {
	if len(pkt) < v5HeaderLen {
		return dst, ErrV5Short
	}
	if binary.BigEndian.Uint16(pkt) != v5Version {
		return dst, ErrV5Version
	}
	count := binary.BigEndian.Uint16(pkt[2:])
	if count > v5MaxRecords {
		return dst, ErrV5TooMany
	}
	want := v5HeaderLen + int(count)*v5RecordLen
	if len(pkt) != want {
		return dst, fmt.Errorf("%w: have %d bytes, count %d wants %d", ErrV5Count, len(pkt), count, want)
	}
	ts := time.Unix(int64(binary.BigEndian.Uint32(pkt[8:])), int64(binary.BigEndian.Uint32(pkt[12:])))
	for i := 0; i < int(count); i++ {
		o := v5HeaderLen + i*v5RecordLen
		dst = append(dst, FlowRecord{
			Timestamp: ts,
			SrcIP:     netip.AddrFrom4([4]byte(pkt[o : o+4])),
			DstIP:     netip.AddrFrom4([4]byte(pkt[o+4 : o+8])),
			SrcPort:   binary.BigEndian.Uint16(pkt[o+32:]),
			DstPort:   binary.BigEndian.Uint16(pkt[o+34:]),
			Proto:     pkt[o+38],
			Packets:   uint64(binary.BigEndian.Uint32(pkt[o+16:])),
			Bytes:     uint64(binary.BigEndian.Uint32(pkt[o+20:])),
		})
	}
	return dst, nil
}

// ToFlowRecord converts a wire v5 record plus its header timestamp into the
// neutral FlowRecord.
func (r *V5Record) ToFlowRecord(h V5Header) FlowRecord {
	ts := time.Unix(int64(h.UnixSecs), int64(h.UnixNsecs))
	return FlowRecord{
		Timestamp: ts,
		SrcIP:     netip.AddrFrom4(r.SrcAddr),
		DstIP:     netip.AddrFrom4(r.DstAddr),
		SrcPort:   r.SrcPort,
		DstPort:   r.DstPort,
		Proto:     r.Proto,
		Packets:   uint64(r.Packets),
		Bytes:     uint64(r.Octets),
	}
}

// FromFlowRecord builds a wire v5 record from a neutral record. IPv6
// addresses cannot be represented in v5 and return an error.
func FromFlowRecord(fr FlowRecord) (V5Record, error) {
	if !fr.SrcIP.Is4() || !fr.DstIP.Is4() {
		return V5Record{}, ErrV5IPv6
	}
	return V5Record{
		SrcAddr: fr.SrcIP.As4(),
		DstAddr: fr.DstIP.As4(),
		Packets: uint32(min64(fr.Packets, 0xFFFFFFFF)),
		Octets:  uint32(min64(fr.Bytes, 0xFFFFFFFF)),
		SrcPort: fr.SrcPort,
		DstPort: fr.DstPort,
		Proto:   fr.Proto,
	}, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
