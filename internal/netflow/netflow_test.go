package netflow

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func TestV5RoundTrip(t *testing.T) {
	h := V5Header{
		SysUptimeMs:  123456,
		UnixSecs:     1653475200, // 2022-05-25, the paper's measurement week
		UnixNsecs:    500,
		FlowSequence: 42,
		EngineID:     7,
	}
	recs := []V5Record{
		{
			SrcAddr: [4]byte{198, 51, 100, 7}, DstAddr: [4]byte{203, 0, 113, 9},
			Packets: 100, Octets: 150000, SrcPort: 443, DstPort: 51234,
			Proto: ProtoTCP, TCPFlags: 0x18, SrcAS: 64500, DstAS: 64501,
			FirstMs: 1000, LastMs: 2000, InputIf: 3, OutputIf: 4,
			SrcMask: 24, DstMask: 22, TOS: 0x10,
			NextHop: [4]byte{192, 0, 2, 1},
		},
		{
			SrcAddr: [4]byte{192, 0, 2, 200}, DstAddr: [4]byte{198, 51, 100, 1},
			Packets: 1, Octets: 64, SrcPort: 53, DstPort: 4444, Proto: ProtoUDP,
		},
	}
	pkt, err := EncodeV5(h, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt) != 24+2*48 {
		t.Fatalf("packet len = %d", len(pkt))
	}
	gh, got, err := DecodeV5(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if gh.UnixSecs != h.UnixSecs || gh.FlowSequence != 42 || gh.EngineID != 7 || gh.Count != 2 {
		t.Fatalf("header = %+v", gh)
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestV5Errors(t *testing.T) {
	if _, _, err := DecodeV5(make([]byte, 10)); err != ErrV5Short {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, 24)
	bad[1] = 9
	if _, _, err := DecodeV5(bad); err != ErrV5Version {
		t.Errorf("version: %v", err)
	}
	pkt, err := EncodeV5(V5Header{}, []V5Record{{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeV5(pkt[:len(pkt)-1]); err == nil {
		t.Error("count/length mismatch accepted")
	}
	if _, err := EncodeV5(V5Header{}, make([]V5Record, 31)); err != ErrV5RecordCount {
		t.Errorf("31 records: %v", err)
	}
	tooMany, _ := EncodeV5(V5Header{}, nil)
	tooMany[3] = 31
	if _, _, err := DecodeV5(tooMany); err != ErrV5TooMany {
		t.Errorf("decode 31 count: %v", err)
	}
}

func TestV5FlowRecordConversion(t *testing.T) {
	fr := FlowRecord{
		Timestamp: time.Unix(1653475200, 0),
		SrcIP:     netip.MustParseAddr("198.51.100.7"),
		DstIP:     netip.MustParseAddr("203.0.113.9"),
		SrcPort:   443, DstPort: 50000, Proto: ProtoTCP,
		Packets: 10, Bytes: 14000,
	}
	v5, err := FromFlowRecord(fr)
	if err != nil {
		t.Fatal(err)
	}
	back := v5.ToFlowRecord(V5Header{UnixSecs: 1653475200})
	if back.SrcIP != fr.SrcIP || back.DstIP != fr.DstIP || back.Bytes != fr.Bytes ||
		back.SrcPort != fr.SrcPort || back.Proto != fr.Proto {
		t.Fatalf("round trip = %+v", back)
	}
	if !back.IsValid() {
		t.Fatal("converted record invalid")
	}
	// IPv6 cannot ride v5.
	fr.SrcIP = netip.MustParseAddr("2001:db8::1")
	if _, err := FromFlowRecord(fr); err != ErrV5IPv6 {
		t.Fatalf("IPv6: %v", err)
	}
	// Counter saturation.
	fr2 := FlowRecord{SrcIP: netip.MustParseAddr("1.2.3.4"), DstIP: netip.MustParseAddr("5.6.7.8"),
		Bytes: 1 << 40, Packets: 1 << 40}
	v52, _ := FromFlowRecord(fr2)
	if v52.Octets != 0xFFFFFFFF || v52.Packets != 0xFFFFFFFF {
		t.Fatalf("saturation: %+v", v52)
	}
}

func TestFlowRecordIsValid(t *testing.T) {
	valid := FlowRecord{
		Timestamp: time.Now(),
		SrcIP:     netip.MustParseAddr("1.2.3.4"),
		DstIP:     netip.MustParseAddr("5.6.7.8"),
	}
	if !valid.IsValid() {
		t.Error("valid record rejected")
	}
	for _, broken := range []FlowRecord{
		{},
		{Timestamp: time.Now(), SrcIP: netip.MustParseAddr("1.2.3.4")},
		{SrcIP: netip.MustParseAddr("1.2.3.4"), DstIP: netip.MustParseAddr("5.6.7.8")},
	} {
		if broken.IsValid() {
			t.Errorf("invalid record accepted: %+v", broken)
		}
	}
}

func TestV9RoundTrip(t *testing.T) {
	cache := NewTemplateCache()
	ts := time.UnixMilli(1653475200123)
	records := []FlowRecord{
		{
			Timestamp: ts,
			SrcIP:     netip.MustParseAddr("198.51.100.7"),
			DstIP:     netip.MustParseAddr("203.0.113.9"),
			SrcPort:   443, DstPort: 51234, Proto: ProtoTCP,
			Packets: 99, Bytes: 123456,
		},
		{
			Timestamp: ts.Add(time.Second),
			SrcIP:     netip.MustParseAddr("192.0.2.1"),
			DstIP:     netip.MustParseAddr("198.51.100.99"),
			SrcPort:   53, DstPort: 40000, Proto: ProtoUDP,
			Packets: 1, Bytes: 80,
		},
	}
	pkt, err := EncodeV9(V9Header{UnixSecs: 1653475200, SourceID: 11}, StandardTemplate(), records)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeV9(pkt, cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Templates) != 1 || got.Templates[0].ID != 256 {
		t.Fatalf("templates = %+v", got.Templates)
	}
	if len(got.Records) != 2 {
		t.Fatalf("records = %d", len(got.Records))
	}
	for i, want := range records {
		g := got.Records[i]
		if g.SrcIP != want.SrcIP || g.DstIP != want.DstIP || g.Bytes != want.Bytes ||
			g.Packets != want.Packets || g.SrcPort != want.SrcPort ||
			g.DstPort != want.DstPort || g.Proto != want.Proto ||
			!g.Timestamp.Equal(want.Timestamp) {
			t.Fatalf("record %d: got %+v want %+v", i, g, want)
		}
	}
	if cache.Len() != 1 {
		t.Fatalf("cache len = %d", cache.Len())
	}
}

func TestV9RoundTripIPv6(t *testing.T) {
	cache := NewTemplateCache()
	rec := FlowRecord{
		Timestamp: time.UnixMilli(1653475200000),
		SrcIP:     netip.MustParseAddr("2001:db8::7"),
		DstIP:     netip.MustParseAddr("2001:db8:1::9"),
		SrcPort:   443, DstPort: 50000, Proto: ProtoTCP, Packets: 5, Bytes: 7000,
	}
	pkt, err := EncodeV9(V9Header{SourceID: 2}, StandardTemplateV6(), []FlowRecord{rec})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeV9(pkt, cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 1 || got.Records[0].SrcIP != rec.SrcIP || got.Records[0].DstIP != rec.DstIP {
		t.Fatalf("v6 records = %+v", got.Records)
	}
}

func TestV9TemplateCacheAcrossPackets(t *testing.T) {
	cache := NewTemplateCache()
	tmpl := StandardTemplate()
	// First packet announces the template with no data.
	p1, err := EncodeV9(V9Header{SourceID: 5}, tmpl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeV9(p1, cache); err != nil {
		t.Fatal(err)
	}
	// Second packet: hand-build data-only packet for template 256.
	rec := FlowRecord{
		Timestamp: time.UnixMilli(1000000),
		SrcIP:     netip.MustParseAddr("10.0.0.1"),
		DstIP:     netip.MustParseAddr("10.0.0.2"),
		Packets:   1, Bytes: 100,
	}
	full, err := EncodeV9(V9Header{SourceID: 5}, tmpl, []FlowRecord{rec})
	if err != nil {
		t.Fatal(err)
	}
	// Strip the template FlowSet (header is 20 bytes; template set length
	// is at bytes 22-23).
	tmplSetLen := int(full[23]) | int(full[22])<<8
	dataOnly := append(append([]byte{}, full[:20]...), full[20+tmplSetLen:]...)
	got, err := DecodeV9(dataOnly, cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 1 || got.Records[0].SrcIP != rec.SrcIP {
		t.Fatalf("cached-template decode = %+v", got.Records)
	}
	// A different SourceID must NOT see the template.
	dataOnly[19] = 6 // SourceID 5 -> 6
	got2, err := DecodeV9(dataOnly, cache)
	if err != nil {
		t.Fatal(err)
	}
	if got2.UnknownDataSets != 1 || len(got2.Records) != 0 {
		t.Fatalf("template leaked across source IDs: %+v", got2)
	}
}

func TestV9UnknownTemplateCounted(t *testing.T) {
	rec := FlowRecord{Timestamp: time.UnixMilli(1), SrcIP: netip.MustParseAddr("10.0.0.1"),
		DstIP: netip.MustParseAddr("10.0.0.2")}
	full, err := EncodeV9(V9Header{SourceID: 9}, StandardTemplate(), []FlowRecord{rec})
	if err != nil {
		t.Fatal(err)
	}
	tmplSetLen := int(full[23]) | int(full[22])<<8
	dataOnly := append(append([]byte{}, full[:20]...), full[20+tmplSetLen:]...)
	got, err := DecodeV9(dataOnly, NewTemplateCache())
	if err != nil {
		t.Fatal(err)
	}
	if got.UnknownDataSets != 1 {
		t.Fatalf("UnknownDataSets = %d", got.UnknownDataSets)
	}
}

func TestV9Errors(t *testing.T) {
	if _, err := DecodeV9(make([]byte, 4), nil); err != ErrV9Short {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, 20)
	bad[1] = 5
	if _, err := DecodeV9(bad, nil); err != ErrV9Version {
		t.Errorf("version: %v", err)
	}
	// FlowSet declaring more bytes than the packet holds.
	pkt := make([]byte, 24)
	pkt[1] = 9
	pkt[22] = 0xFF // set length huge
	pkt[23] = 0xFF
	if _, err := DecodeV9(pkt, nil); err != ErrV9SetShort {
		t.Errorf("set short: %v", err)
	}
	// FlowSet with length below 4.
	pkt2 := make([]byte, 24)
	pkt2[1] = 9
	pkt2[23] = 2
	if _, err := DecodeV9(pkt2, nil); err != ErrV9SetLength {
		t.Errorf("set len: %v", err)
	}
}

func TestV9DataPadding(t *testing.T) {
	// One record under the standard template is 37 bytes, so the data set
	// is padded to a 4-byte boundary; decoding must ignore the padding.
	rec := FlowRecord{
		Timestamp: time.UnixMilli(99999),
		SrcIP:     netip.MustParseAddr("10.1.1.1"),
		DstIP:     netip.MustParseAddr("10.1.1.2"),
		Proto:     ProtoTCP, Packets: 3, Bytes: 300,
	}
	pkt, err := EncodeV9(V9Header{SourceID: 1}, StandardTemplate(), []FlowRecord{rec})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt)%4 != 0 {
		t.Fatalf("packet not 4-byte aligned: %d", len(pkt))
	}
	got, err := DecodeV9(pkt, NewTemplateCache())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 1 {
		t.Fatalf("records = %d (padding mis-decoded)", len(got.Records))
	}
}

func TestBeUint(t *testing.T) {
	cases := []struct {
		in   []byte
		want uint64
	}{
		{[]byte{0x01}, 1},
		{[]byte{0x01, 0x00}, 256},
		{[]byte{0xFF, 0xFF, 0xFF, 0xFF}, 0xFFFFFFFF},
		{[]byte{0, 0, 0, 0, 0, 0, 0, 1}, 1},
		{[]byte{9, 0, 0, 0, 0, 0, 0, 0, 1}, 1}, // >8 bytes: low 8 win
	}
	for _, c := range cases {
		if got := beUint(c.in); got != c.want {
			t.Errorf("beUint(%x) = %d, want %d", c.in, got, c.want)
		}
	}
}

// Property: v5 encode/decode is the identity for arbitrary record contents.
func TestQuickV5RoundTrip(t *testing.T) {
	f := func(src, dst [4]byte, pkts, octets uint32, sp, dp uint16, proto uint8) bool {
		recs := []V5Record{{SrcAddr: src, DstAddr: dst, Packets: pkts, Octets: octets,
			SrcPort: sp, DstPort: dp, Proto: proto}}
		pkt, err := EncodeV5(V5Header{UnixSecs: 1}, recs)
		if err != nil {
			return false
		}
		_, got, err := DecodeV5(pkt)
		return err == nil && len(got) == 1 && got[0] == recs[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the v9 decoder never panics on arbitrary input.
func TestQuickV9DecodeNeverPanics(t *testing.T) {
	cache := NewTemplateCache()
	f := func(data []byte) bool {
		_, _ = DecodeV9(data, cache)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecodeV5(b *testing.B) {
	recs := make([]V5Record, 30)
	for i := range recs {
		recs[i] = V5Record{SrcAddr: [4]byte{10, 0, byte(i), 1}, DstAddr: [4]byte{10, 1, byte(i), 2},
			Packets: 10, Octets: 1000, Proto: ProtoTCP}
	}
	pkt, err := EncodeV5(V5Header{UnixSecs: 1}, recs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeV5(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeV9(b *testing.B) {
	recs := make([]FlowRecord, 20)
	for i := range recs {
		recs[i] = FlowRecord{
			Timestamp: time.UnixMilli(int64(1000000 + i)),
			SrcIP:     netip.AddrFrom4([4]byte{10, 0, byte(i), 1}),
			DstIP:     netip.AddrFrom4([4]byte{10, 1, byte(i), 2}),
			Packets:   10, Bytes: 1000, Proto: ProtoTCP,
		}
	}
	pkt, err := EncodeV9(V9Header{SourceID: 3}, StandardTemplate(), recs)
	if err != nil {
		b.Fatal(err)
	}
	cache := NewTemplateCache()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeV9(pkt, cache); err != nil {
			b.Fatal(err)
		}
	}
}

// AppendV5Flows is the fused wire→FlowRecord fast path; it must agree with
// the staged DecodeV5 + ToFlowRecord conversion record for record, reuse
// dst's capacity, reject malformed datagrams without extending dst, and be
// allocation-free once dst has capacity.
func TestAppendV5Flows(t *testing.T) {
	h := V5Header{UnixSecs: 1653475200, UnixNsecs: 500}
	recs := []V5Record{
		{
			SrcAddr: [4]byte{198, 51, 100, 7}, DstAddr: [4]byte{203, 0, 113, 9},
			Packets: 100, Octets: 150000, SrcPort: 443, DstPort: 51234,
			Proto: ProtoTCP, TCPFlags: 0x18, SrcAS: 64500,
			NextHop: [4]byte{192, 0, 2, 1},
		},
		{
			SrcAddr: [4]byte{192, 0, 2, 200}, DstAddr: [4]byte{198, 51, 100, 1},
			Packets: 1, Octets: 64, SrcPort: 53, DstPort: 4444, Proto: ProtoUDP,
		},
	}
	pkt, err := EncodeV5(h, recs)
	if err != nil {
		t.Fatal(err)
	}
	// Seed dst with a sentinel: appended records must land after it.
	sentinel := FlowRecord{SrcPort: 9999}
	got, err := AppendV5Flows(pkt, []FlowRecord{sentinel})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1+len(recs) || got[0] != sentinel {
		t.Fatalf("append shape: len=%d got[0]=%+v", len(got), got[0])
	}
	gh, wire, err := DecodeV5(pkt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wire {
		want := wire[i].ToFlowRecord(gh)
		if !got[1+i].Timestamp.Equal(want.Timestamp) {
			t.Fatalf("record %d timestamp: got %v want %v", i, got[1+i].Timestamp, want.Timestamp)
		}
		g, w := got[1+i], want
		g.Timestamp, w.Timestamp = time.Time{}, time.Time{}
		if g != w {
			t.Fatalf("record %d: got %+v want %+v", i, g, w)
		}
	}
	// Malformed datagrams must return dst untouched.
	for _, bad := range [][]byte{pkt[:10], pkt[:len(pkt)-1], append([]byte{0, 9}, pkt[2:]...)} {
		out, err := AppendV5Flows(bad, got[:1])
		if err == nil || len(out) != 1 {
			t.Fatalf("malformed datagram: err=%v len=%d", err, len(out))
		}
	}
	// Zero allocations once dst has capacity.
	scratch := make([]FlowRecord, 0, v5MaxRecords)
	if allocs := testing.AllocsPerRun(100, func() {
		var err error
		scratch, err = AppendV5Flows(pkt, scratch[:0])
		if err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("AppendV5Flows allocs = %v, want 0", allocs)
	}
}
