package netflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"
)

// NetFlow v9 (RFC 3954) constants.
const (
	v9Version       = 9
	v9HeaderLen     = 20
	v9TemplateSetID = 0
	v9OptionsSetID  = 1
	v9MinDataSetID  = 256
)

// RFC 3954 field types used by the FlowDNS-relevant template.
const (
	FieldInBytes      = 1
	FieldInPkts       = 2
	FieldProtocol     = 4
	FieldL4SrcPort    = 7
	FieldIPv4SrcAddr  = 8
	FieldL4DstPort    = 11
	FieldIPv4DstAddr  = 12
	FieldIPv6SrcAddr  = 27
	FieldIPv6DstAddr  = 28
	FieldFirstSwitch  = 22
	FieldLastSwitch   = 21
	FieldSrcAS        = 16
	FieldDstAS        = 17
	FieldInputSNMP    = 10
	FieldOutputSNMP   = 14
	FieldFlowStartMs  = 152 // IPFIX-style absolute ms, exported by many v9 stacks
	FieldFlowEndMs    = 153
	FieldIPv4NextHop  = 15
	FieldTCPFlags     = 6
	FieldSrcTos       = 5
	FieldDirection    = 61
	FieldSamplerID    = 48
	FieldFlowSampler  = 49
	FieldVLANIn       = 58
	FieldVLANOut      = 59
	FieldMinTTL       = 52
	FieldMaxTTL       = 53
	FieldICMPType     = 32
	FieldIPVersion    = 60
	FieldBGPNextHop   = 18
	FieldMulDstPkts   = 19
	FieldMulDstBytes  = 20
	FieldTotalBytes   = 85
	FieldTotalPkts    = 86
	FieldPostNATSrcV4 = 225
	FieldPostNATDstV4 = 226
)

// Errors returned by the v9 codec.
var (
	ErrV9Short        = errors.New("netflow: v9 packet shorter than header")
	ErrV9Version      = errors.New("netflow: not a v9 packet")
	ErrV9SetShort     = errors.New("netflow: v9 flowset shorter than declared")
	ErrV9SetLength    = errors.New("netflow: v9 flowset length below minimum")
	ErrV9NoTemplate   = errors.New("netflow: data flowset without known template")
	ErrV9BadTemplate  = errors.New("netflow: malformed template flowset")
	ErrV9ZeroLenField = errors.New("netflow: template field with zero length")
)

// V9Header is the 20-byte NetFlow v9 export header.
type V9Header struct {
	Count       uint16 // total records (template + data) in this packet
	SysUptimeMs uint32
	UnixSecs    uint32
	SequenceNum uint32
	SourceID    uint32 // exporter observation domain
}

// TemplateField is one (type, length) pair in a template record.
type TemplateField struct {
	Type   uint16
	Length uint16
}

// Template is a v9 template record: an ID >= 256 and an ordered field list.
type Template struct {
	ID     uint16
	Fields []TemplateField
}

// recordLen returns the wire length of one data record under t.
func (t *Template) recordLen() int {
	n := 0
	for _, f := range t.Fields {
		n += int(f.Length)
	}
	return n
}

// StandardTemplate is the template FlowDNS's synthetic exporters use: IPv4
// 5-tuple plus byte/packet counters and absolute-millisecond timestamps.
// Template ID 256 is the first legal data template ID.
func StandardTemplate() Template {
	return Template{
		ID: 256,
		Fields: []TemplateField{
			{FieldIPv4SrcAddr, 4},
			{FieldIPv4DstAddr, 4},
			{FieldL4SrcPort, 2},
			{FieldL4DstPort, 2},
			{FieldProtocol, 1},
			{FieldInPkts, 8},
			{FieldInBytes, 8},
			{FieldFlowStartMs, 8},
		},
	}
}

// StandardTemplateV6 mirrors StandardTemplate for IPv6 flows (ID 257).
func StandardTemplateV6() Template {
	return Template{
		ID: 257,
		Fields: []TemplateField{
			{FieldIPv6SrcAddr, 16},
			{FieldIPv6DstAddr, 16},
			{FieldL4SrcPort, 2},
			{FieldL4DstPort, 2},
			{FieldProtocol, 1},
			{FieldInPkts, 8},
			{FieldInBytes, 8},
			{FieldFlowStartMs, 8},
		},
	}
}

// TemplateCache stores templates per (sourceID, templateID), as RFC 3954
// requires: template IDs are scoped to the exporter's observation domain.
// It is safe for concurrent use; multiple stream-reader goroutines share one
// cache per listening socket.
type TemplateCache struct {
	mu sync.RWMutex
	m  map[uint64]Template
}

// NewTemplateCache returns an empty cache.
func NewTemplateCache() *TemplateCache {
	return &TemplateCache{m: make(map[uint64]Template)}
}

func cacheKey(sourceID uint32, templateID uint16) uint64 {
	return uint64(sourceID)<<16 | uint64(templateID)
}

// Put stores a template announcement.
func (c *TemplateCache) Put(sourceID uint32, t Template) {
	c.mu.Lock()
	c.m[cacheKey(sourceID, t.ID)] = t
	c.mu.Unlock()
}

// Get looks a template up.
func (c *TemplateCache) Get(sourceID uint32, templateID uint16) (Template, bool) {
	c.mu.RLock()
	t, ok := c.m[cacheKey(sourceID, templateID)]
	c.mu.RUnlock()
	return t, ok
}

// Len returns the number of cached templates.
func (c *TemplateCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// V9Packet is a decoded v9 export packet: any templates it announced and the
// flow records its data sets carried.
type V9Packet struct {
	Header    V9Header
	Templates []Template
	Records   []FlowRecord
	// UnknownDataSets counts data FlowSets skipped because no template was
	// cached yet; exporters re-announce templates periodically so this heals.
	UnknownDataSets int
}

// EncodeV9 builds an export packet containing a template FlowSet announcing
// t followed by one data FlowSet with the given records (all encoded under
// t). Records must fit the standard templates' field layout (IPv4 or IPv6
// source/dest, ports, proto, counters, start-ms).
func EncodeV9(h V9Header, t Template, records []FlowRecord) ([]byte, error) {
	buf := make([]byte, 0, v9HeaderLen+64+len(records)*t.recordLen())
	return AppendV9(buf, h, t, records)
}

// AppendV9 is EncodeV9 into a caller-supplied buffer: the packet is
// appended to dst and the extended slice returned. A caller that reuses
// dst across packets (the forwarder's per-node fanout path) encodes at
// zero allocations once the buffer has grown to the datagram size. On an
// encode error dst may hold a partial packet; callers reusing the buffer
// re-slice to [:0] anyway.
func AppendV9(dst []byte, h V9Header, t Template, records []FlowRecord) ([]byte, error) {
	buf := dst
	// Header; Count = 1 template record + len(records) data records.
	buf = binary.BigEndian.AppendUint16(buf, v9Version)
	buf = binary.BigEndian.AppendUint16(buf, uint16(1+len(records)))
	buf = binary.BigEndian.AppendUint32(buf, h.SysUptimeMs)
	buf = binary.BigEndian.AppendUint32(buf, h.UnixSecs)
	buf = binary.BigEndian.AppendUint32(buf, h.SequenceNum)
	buf = binary.BigEndian.AppendUint32(buf, h.SourceID)

	// Template FlowSet.
	buf = binary.BigEndian.AppendUint16(buf, v9TemplateSetID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(4+4+4*len(t.Fields)))
	buf = binary.BigEndian.AppendUint16(buf, t.ID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(t.Fields)))
	for _, f := range t.Fields {
		buf = binary.BigEndian.AppendUint16(buf, f.Type)
		buf = binary.BigEndian.AppendUint16(buf, f.Length)
	}

	// Data FlowSet.
	if len(records) > 0 {
		setLen := 4 + len(records)*t.recordLen()
		pad := (4 - setLen%4) % 4
		buf = binary.BigEndian.AppendUint16(buf, t.ID)
		buf = binary.BigEndian.AppendUint16(buf, uint16(setLen+pad))
		for i := range records {
			var err error
			buf, err = appendV9Record(buf, t, &records[i])
			if err != nil {
				return nil, err
			}
		}
		for i := 0; i < pad; i++ {
			buf = append(buf, 0)
		}
	}
	return buf, nil
}

func appendV9Record(buf []byte, t Template, r *FlowRecord) ([]byte, error) {
	for _, f := range t.Fields {
		switch f.Type {
		case FieldIPv4SrcAddr:
			if !r.SrcIP.Is4() {
				return nil, fmt.Errorf("netflow: template %d needs IPv4 src, have %v", t.ID, r.SrcIP)
			}
			a := r.SrcIP.As4()
			buf = append(buf, a[:]...)
		case FieldIPv4DstAddr:
			if !r.DstIP.Is4() {
				return nil, fmt.Errorf("netflow: template %d needs IPv4 dst, have %v", t.ID, r.DstIP)
			}
			a := r.DstIP.As4()
			buf = append(buf, a[:]...)
		case FieldIPv6SrcAddr:
			a := r.SrcIP.As16()
			buf = append(buf, a[:]...)
		case FieldIPv6DstAddr:
			a := r.DstIP.As16()
			buf = append(buf, a[:]...)
		case FieldL4SrcPort:
			buf = binary.BigEndian.AppendUint16(buf, r.SrcPort)
		case FieldL4DstPort:
			buf = binary.BigEndian.AppendUint16(buf, r.DstPort)
		case FieldProtocol:
			buf = append(buf, r.Proto)
		case FieldInPkts:
			buf = binary.BigEndian.AppendUint64(buf, r.Packets)
		case FieldInBytes:
			buf = binary.BigEndian.AppendUint64(buf, r.Bytes)
		case FieldFlowStartMs:
			buf = binary.BigEndian.AppendUint64(buf, uint64(r.Timestamp.UnixMilli()))
		default:
			// Fields the neutral record does not carry are zero-filled.
			for i := 0; i < int(f.Length); i++ {
				buf = append(buf, 0)
			}
		}
	}
	return buf, nil
}

// DecodeV9 parses a v9 export packet, resolving data FlowSets against cache
// (which is also updated with any templates the packet announces, keyed by
// the header's SourceID).
func DecodeV9(pkt []byte, cache *TemplateCache) (*V9Packet, error) {
	if len(pkt) < v9HeaderLen {
		return nil, ErrV9Short
	}
	if binary.BigEndian.Uint16(pkt) != v9Version {
		return nil, ErrV9Version
	}
	out := &V9Packet{
		Header: V9Header{
			Count:       binary.BigEndian.Uint16(pkt[2:]),
			SysUptimeMs: binary.BigEndian.Uint32(pkt[4:]),
			UnixSecs:    binary.BigEndian.Uint32(pkt[8:]),
			SequenceNum: binary.BigEndian.Uint32(pkt[12:]),
			SourceID:    binary.BigEndian.Uint32(pkt[16:]),
		},
	}
	off := v9HeaderLen
	for off+4 <= len(pkt) {
		setID := binary.BigEndian.Uint16(pkt[off:])
		setLen := int(binary.BigEndian.Uint16(pkt[off+2:]))
		if setLen < 4 {
			return nil, ErrV9SetLength
		}
		if off+setLen > len(pkt) {
			return nil, ErrV9SetShort
		}
		body := pkt[off+4 : off+setLen]
		switch {
		case setID == v9TemplateSetID:
			if err := decodeTemplateSet(body, out, cache); err != nil {
				return nil, err
			}
		case setID == v9OptionsSetID:
			// Options templates are accepted and skipped; FlowDNS does not
			// consume option data.
		case setID >= v9MinDataSetID:
			decodeDataSet(setID, body, out, cache)
		default:
			// Set IDs 2..255 are reserved; skip per RFC 3954 §5.
		}
		off += setLen
	}
	return out, nil
}

func decodeTemplateSet(body []byte, out *V9Packet, cache *TemplateCache) error {
	off := 0
	for off+4 <= len(body) {
		id := binary.BigEndian.Uint16(body[off:])
		fieldCount := int(binary.BigEndian.Uint16(body[off+2:]))
		off += 4
		if id < v9MinDataSetID || fieldCount == 0 {
			return ErrV9BadTemplate
		}
		if off+fieldCount*4 > len(body) {
			return ErrV9BadTemplate
		}
		t := Template{ID: id, Fields: make([]TemplateField, fieldCount)}
		for i := 0; i < fieldCount; i++ {
			t.Fields[i] = TemplateField{
				Type:   binary.BigEndian.Uint16(body[off:]),
				Length: binary.BigEndian.Uint16(body[off+2:]),
			}
			if t.Fields[i].Length == 0 {
				return ErrV9ZeroLenField
			}
			off += 4
		}
		out.Templates = append(out.Templates, t)
		if cache != nil {
			cache.Put(out.Header.SourceID, t)
		}
	}
	return nil
}

func decodeDataSet(setID uint16, body []byte, out *V9Packet, cache *TemplateCache) {
	var t Template
	ok := false
	if cache != nil {
		t, ok = cache.Get(out.Header.SourceID, setID)
	}
	if !ok {
		// Also try templates announced earlier in this same packet.
		for _, cand := range out.Templates {
			if cand.ID == setID {
				t, ok = cand, true
				break
			}
		}
	}
	if !ok {
		out.UnknownDataSets++
		return
	}
	rl := t.recordLen()
	if rl == 0 {
		out.UnknownDataSets++
		return
	}
	hdrTime := time.Unix(int64(out.Header.UnixSecs), 0)
	for off := 0; off+rl <= len(body); off += rl {
		rec := decodeV9Record(body[off:off+rl], t)
		if rec.Timestamp.IsZero() {
			rec.Timestamp = hdrTime
		}
		out.Records = append(out.Records, rec)
	}
}

func decodeV9Record(b []byte, t Template) FlowRecord {
	var r FlowRecord
	off := 0
	for _, f := range t.Fields {
		v := b[off : off+int(f.Length)]
		switch f.Type {
		case FieldIPv4SrcAddr:
			if len(v) == 4 {
				r.SrcIP = netip.AddrFrom4([4]byte(v))
			}
		case FieldIPv4DstAddr:
			if len(v) == 4 {
				r.DstIP = netip.AddrFrom4([4]byte(v))
			}
		case FieldIPv6SrcAddr:
			if len(v) == 16 {
				r.SrcIP = netip.AddrFrom16([16]byte(v))
			}
		case FieldIPv6DstAddr:
			if len(v) == 16 {
				r.DstIP = netip.AddrFrom16([16]byte(v))
			}
		case FieldL4SrcPort:
			r.SrcPort = uint16(beUint(v))
		case FieldL4DstPort:
			r.DstPort = uint16(beUint(v))
		case FieldProtocol:
			r.Proto = uint8(beUint(v))
		case FieldInPkts, FieldTotalPkts:
			r.Packets = beUint(v)
		case FieldInBytes, FieldTotalBytes:
			r.Bytes = beUint(v)
		case FieldFlowStartMs:
			if ms := beUint(v); ms != 0 {
				r.Timestamp = time.UnixMilli(int64(ms))
			}
		}
		off += int(f.Length)
	}
	return r
}

// beUint reads a big-endian unsigned integer of 1..8 bytes, the v9 rule for
// variable-width counter fields.
func beUint(b []byte) uint64 {
	var n uint64
	if len(b) > 8 {
		b = b[len(b)-8:]
	}
	for _, c := range b {
		n = n<<8 | uint64(c)
	}
	return n
}
