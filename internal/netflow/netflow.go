// Package netflow implements NetFlow v5 and v9 wire codecs.
//
// FlowDNS consumes "Netflow records captured at the network ingress
// interfaces" (paper §2); each record carries at least srcIP, dstIP, a
// timestamp, and packet/byte counters. This package provides:
//
//   - a complete NetFlow v5 encoder/decoder (fixed 24-byte header,
//     48-byte records, RFC-less but ubiquitous Cisco format);
//   - a NetFlow v9 (RFC 3954) encoder/decoder with template FlowSets, data
//     FlowSets, and a per-exporter template cache, the format actually
//     exported by ISP-grade routers;
//   - the neutral FlowRecord type the correlator consumes, so that — as the
//     paper notes — "the system is not bound to NetFlow data and can be
//     adapted to use other data formats containing IP addresses and
//     timestamps".
package netflow

import (
	"net/netip"
	"time"
)

// FlowRecord is the format-neutral flow observation handed to the
// correlator. Only the fields FlowDNS uses are first-class; everything else
// stays in the wire structs.
type FlowRecord struct {
	// Timestamp is when the exporter emitted the record. Clear-up intervals
	// in the correlator advance on these timestamps, so offline replays
	// rotate exactly like live runs.
	Timestamp time.Time
	SrcIP     netip.Addr
	DstIP     netip.Addr
	SrcPort   uint16
	DstPort   uint16
	Proto     uint8
	Packets   uint64
	Bytes     uint64
}

// IsValid reports whether the record carries the fields the correlator
// needs. This is the paper's §3.3 step (2) "filter to check if they are
// valid Netflow records".
func (r *FlowRecord) IsValid() bool {
	return r.SrcIP.IsValid() && r.DstIP.IsValid() && !r.Timestamp.IsZero()
}

// Protocol numbers used across the workload and experiments.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Well-known ports for the coverage analysis (§4): DNS and DNS-over-TLS.
const (
	PortDNS = 53
	PortDoT = 853
)
