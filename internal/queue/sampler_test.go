package queue

import (
	"math"
	"sync"
	"testing"
)

func TestSamplerDisabledByDefault(t *testing.T) {
	q := New[int](4)
	if q.Sampler().Enabled() {
		t.Fatal("zero SamplerConfig reports Enabled")
	}
	for i := 0; i < 4; i++ {
		if !q.Offer(i) {
			t.Fatalf("Offer(%d) failed with space available", i)
		}
	}
	st := q.Stats()
	if st.Sampled != 0 {
		t.Fatalf("Sampled = %d without a sampler; want 0", st.Sampled)
	}
	if st.Offered() != 4 {
		t.Fatalf("Offered = %d, want 4", st.Offered())
	}
}

func TestSamplerRateRamp(t *testing.T) {
	c := SamplerConfig{LowWater: 0.5, HighWater: 0.9, MaxShed: 0.8}
	cases := []struct {
		fill, want float64
	}{
		{0, 0},
		{0.5, 0},   // at LowWater: nothing shed yet
		{0.7, 0.4}, // midpoint of the ramp
		{0.9, 0.8}, // at HighWater: full MaxShed
		{1.0, 0.8}, // beyond HighWater: clamped
	}
	for _, tc := range cases {
		if got := c.rate(tc.fill); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("rate(%v) = %v, want %v", tc.fill, got, tc.want)
		}
	}
	// Degenerate watermarks (High <= Low) step straight to MaxShed.
	step := SamplerConfig{LowWater: 0.5, HighWater: 0.5, MaxShed: 0.25}
	if got := step.rate(0.6); got != 0.25 {
		t.Errorf("degenerate rate(0.6) = %v, want 0.25", got)
	}
	if got := step.rate(0.4); got != 0 {
		t.Errorf("degenerate rate(0.4) = %v, want 0", got)
	}
}

// Above HighWater the credit accumulator must shed exactly MaxShed of the
// offered records over any run, regardless of how the offers are batched.
func TestSamplerDeterministicProportion(t *testing.T) {
	const n = 10000
	for _, batch := range []int{1, 3, 7, 64, 333} {
		q := New[int](4)
		q.SetSampler(SamplerConfig{LowWater: 0.1, HighWater: 0.2, MaxShed: 0.25})
		// Pin the queue above HighWater so the rate is constant MaxShed.
		q.Offer(0)
		q.Offer(0)
		q.Offer(0)
		start := q.Stats()
		vs := make([]int, batch)
		offered := 0
		for offered < n {
			k := batch
			if n-offered < k {
				k = n - offered
			}
			q.OfferBatch(vs[:k])
			offered += k
		}
		st := q.Stats()
		sampled := st.Sampled - start.Sampled
		want := uint64(n / 4)
		if sampled != want {
			t.Errorf("batch=%d: sampled %d of %d, want exactly %d", batch, sampled, n, want)
		}
	}
}

// Sampled records count as accepted from the producer's point of view:
// Offer returns true and batch return values include them, so producer-side
// "offered − accepted" keeps measuring accidental overflow only.
func TestSampledCountsAsAccepted(t *testing.T) {
	q := New[int](2)
	q.SetSampler(SamplerConfig{LowWater: 0, HighWater: 0, MaxShed: 1})
	q.Offer(1) // fill > 0 after this; MaxShed=1 with degenerate watermarks sheds everything above fill 0
	for i := 0; i < 10; i++ {
		if !q.Offer(i) {
			t.Fatalf("Offer(%d) = false for a sampled record; want true", i)
		}
	}
	vs := make([]int, 5)
	if got := q.OfferBatch(vs); got != 5 {
		t.Fatalf("OfferBatch = %d, want 5 (sampled counts as accepted)", got)
	}
	if got := q.PutBatch(vs); got != 5 {
		t.Fatalf("PutBatch = %d, want 5 (sampled counts as accepted)", got)
	}
	st := q.Stats()
	if st.Dropped != 0 {
		t.Fatalf("Dropped = %d; deliberate shed must not count as drop", st.Dropped)
	}
	if st.Sampled != 20 {
		t.Fatalf("Sampled = %d, want 20", st.Sampled)
	}
	if st.Offered() != st.Enqueued+st.Dropped+st.Sampled {
		t.Fatalf("invariant broken: %+v", st)
	}
}

// The accounting invariant must hold with concurrent producers hammering a
// tiny queue through every producer entry point while consumers drain.
func TestSamplerInvariantConcurrent(t *testing.T) {
	q := New[int](8)
	q.SetSampler(SamplerConfig{LowWater: 0.25, HighWater: 0.75, MaxShed: 0.5})

	const producers = 8
	const perProducer = 5000
	var consumed sync.WaitGroup
	consumed.Add(2)
	for c := 0; c < 2; c++ {
		go func() {
			defer consumed.Done()
			buf := make([]int, 0, 16)
			for {
				var ok bool
				buf, ok = q.TakeBatch(buf[:0], 16, 0)
				if !ok {
					return
				}
			}
		}()
	}

	var produced sync.WaitGroup
	produced.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer produced.Done()
			vs := make([]int, 4)
			for i := 0; i < perProducer; i++ {
				switch i % 3 {
				case 0:
					q.Offer(i)
				case 1:
					q.OfferBatch(vs)
				default:
					q.PutBatch(vs[:2])
				}
			}
		}(p)
	}
	produced.Wait()
	q.Close()
	consumed.Wait()

	st := q.Stats()
	var offered uint64
	for i := 0; i < perProducer; i++ {
		switch i % 3 {
		case 0:
			offered += 1
		case 1:
			offered += 4
		default:
			offered += 2
		}
	}
	offered *= producers
	if st.Offered() != offered {
		t.Fatalf("Offered = %d, want %d (Enqueued+Dropped+Sampled must cover every record): %+v",
			st.Offered(), offered, st)
	}
	if st.Dequeued != st.Enqueued {
		t.Fatalf("drained queue: Dequeued %d != Enqueued %d", st.Dequeued, st.Enqueued)
	}
}

func TestSamplerBelowLowWaterShedsNothing(t *testing.T) {
	q := New[int](100)
	q.SetSampler(SamplerConfig{LowWater: 0.5, HighWater: 0.9, MaxShed: 1})
	for i := 0; i < 40; i++ { // stays below the 50-record low watermark
		if !q.Offer(i) {
			t.Fatalf("Offer(%d) failed below LowWater", i)
		}
	}
	if st := q.Stats(); st.Sampled != 0 || st.Enqueued != 40 {
		t.Fatalf("below LowWater: %+v; want 40 enqueued, 0 sampled", st)
	}
}
