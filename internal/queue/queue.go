// Package queue provides bounded multi-producer/multi-consumer job queues
// with drop accounting.
//
// FlowDNS places a queue between every pair of worker stages (stream reader →
// FillUp, stream reader → LookUp, LookUp → Write). Each upstream source "has
// an internal buffer to be used in case the reading speed is less than their
// actual rate. If that buffer overflows, the streams start to drop data."
// (paper §2). The evaluation's headline loss metric (≤0.01 % for Main, >90 %
// for the exact-TTL anti-benchmark) is exactly the drop rate these queues
// record, so the implementation keeps precise atomic counters.
package queue

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stats is a point-in-time snapshot of a queue's counters. Every record
// offered to the queue lands in exactly one of the first three buckets, so
// Offered == Enqueued + Dropped + Sampled always holds — loss is never
// silent, whether it was accidental (Dropped) or deliberate (Sampled).
type Stats struct {
	Enqueued uint64 // records accepted into the buffer
	Dropped  uint64 // records rejected because the buffer was full
	Sampled  uint64 // records deliberately shed by the adaptive sampler
	Dequeued uint64 // records handed to consumers
}

// Offered returns the total number of records offered to the queue.
func (s Stats) Offered() uint64 { return s.Enqueued + s.Dropped + s.Sampled }

// Lost returns the records that did not enter the buffer, accidental plus
// deliberate.
func (s Stats) Lost() uint64 { return s.Dropped + s.Sampled }

// LossRate returns (Dropped + Sampled) / Offered in [0,1]; 0 when nothing
// was offered. Sampled shed counts as loss: the operator chose the rate,
// but the records are gone all the same.
func (s Stats) LossRate() float64 {
	off := s.Offered()
	if off == 0 {
		return 0
	}
	return float64(s.Lost()) / float64(off)
}

// SamplerConfig configures adaptive overload shedding on a queue: instead
// of running the buffer into the wall and dropping whatever arrives after
// (silent, bursty, biased toward whoever offers last), the queue starts
// shedding a controlled fraction of offered records once the buffer passes
// LowWater, ramping linearly to MaxShed at HighWater. Shed records are
// counted in Stats.Sampled, so the degradation is deliberate and fully
// accounted — the paper's "buffer usage stable to avoid any loss" goal,
// inverted: when loss is unavoidable, make it measured and smooth.
type SamplerConfig struct {
	// LowWater is the buffer fill in (0,1) below which nothing is shed.
	LowWater float64
	// HighWater is the fill at which the shed rate reaches MaxShed; between
	// the watermarks the rate ramps linearly.
	HighWater float64
	// MaxShed is the shed-fraction ceiling in (0,1]. 0 disables sampling —
	// the zero SamplerConfig is a no-op.
	MaxShed float64
}

// Enabled reports whether the config sheds anything at all.
func (c SamplerConfig) Enabled() bool { return c.MaxShed > 0 }

// shedScale is the fixed-point denominator of the shed-credit accumulator:
// rates are carried as integer credits per record so the long-run shed
// proportion is exact and deterministic without any per-record floating
// point or randomness.
const shedScale = 1 << 20

// rate returns the shed fraction for a given buffer fill.
func (c SamplerConfig) rate(fill float64) float64 {
	if !c.Enabled() || fill <= c.LowWater {
		return 0
	}
	if fill >= c.HighWater || c.HighWater <= c.LowWater {
		return c.MaxShed
	}
	return c.MaxShed * (fill - c.LowWater) / (c.HighWater - c.LowWater)
}

// Queue is a bounded FIFO of values of type T. Producers never block: when
// the buffer is full, Offer drops the record and increments the drop
// counter, mirroring the stream-buffer semantics of the paper's data feeds.
// Consumers block on Take until a record arrives or the queue is closed.
type Queue[T any] struct {
	ch       chan T
	enqueued atomic.Uint64
	dropped  atomic.Uint64
	sampled  atomic.Uint64
	dequeued atomic.Uint64

	// sampler is the adaptive shed config; the zero value disables it. Set
	// once via SetSampler before producers start — it is read without
	// synchronization on the offer path.
	sampler SamplerConfig
	// shedAcc accumulates fixed-point shed credit (shedScale per record);
	// each crossing of a shedScale boundary sheds one record, making the
	// long-run shed proportion exact under any interleaving of producers.
	shedAcc atomic.Uint64

	// mu coordinates producers with Close: a send on a closed channel
	// panics even inside a select, so Close takes the write side while
	// producers hold the read side.
	mu        sync.RWMutex
	closed    bool
	closeOnce sync.Once
}

// New returns a queue with the given buffer capacity (minimum 1).
func New[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{ch: make(chan T, capacity)}
}

// SetSampler installs an adaptive sampler on the queue. Call before any
// producer offers; the config is read lock-free on the offer path.
func (q *Queue[T]) SetSampler(c SamplerConfig) { q.sampler = c }

// Sampler returns the installed sampler config (zero when disabled).
func (q *Queue[T]) Sampler() SamplerConfig { return q.sampler }

// planShed decides how many of the next n offered records the sampler
// sheds, based on the current buffer fill. The fixed-point credit
// accumulator makes the decision deterministic: over any run the shed
// count is exactly floor(sum of rate·n) regardless of batch sizes or
// producer interleaving. Returns 0 when sampling is disabled (one branch
// on the hot path).
func (q *Queue[T]) planShed(n int) int {
	if !q.sampler.Enabled() {
		return 0
	}
	rate := q.sampler.rate(float64(len(q.ch)) / float64(cap(q.ch)))
	if rate <= 0 {
		return 0
	}
	credit := uint64(rate * shedScale)
	now := q.shedAcc.Add(uint64(n) * credit)
	return int(now/shedScale - (now-uint64(n)*credit)/shedScale)
}

// Offer attempts a non-blocking enqueue. It reports whether the queue took
// responsibility for the record; a false return means the record was
// dropped and counted as loss. Offer on a closed queue counts the record
// as dropped.
//
// With a sampler installed, a record the sampler sheds also reports true:
// the queue accepted it and deliberately discarded it (counted in
// Stats.Sampled). Producers therefore keep counting only accidental
// overflow as their own drops, and the deliberate shed stays accounted in
// exactly one place — the queue.
func (q *Queue[T]) Offer(v T) bool {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		q.dropped.Add(1)
		return false
	}
	if q.planShed(1) > 0 {
		q.sampled.Add(1)
		return true
	}
	select {
	case q.ch <- v:
		q.enqueued.Add(1)
		return true
	default:
		q.dropped.Add(1)
		return false
	}
}

// OfferBatch attempts a non-blocking enqueue of every record in vs and
// returns the number the queue took responsibility for. Records that do
// not fit are dropped and counted as loss, exactly as with per-record
// Offer, but the counter updates are amortized to a few atomic adds per
// call — the hot-path batching the LookUp→Write handoff relies on.
//
// With a sampler installed, the shed quota for the batch is taken off the
// front (batch order carries no meaning within one datagram) and those
// records count toward the return value as Sampled, not Dropped — so a
// producer's "offered − accepted" arithmetic keeps measuring accidental
// overflow only.
func (q *Queue[T]) OfferBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		q.dropped.Add(uint64(len(vs)))
		return 0
	}
	shed := q.planShed(len(vs))
	if shed > 0 {
		q.sampled.Add(uint64(shed))
		vs = vs[shed:]
	}
	accepted := 0
	for i := range vs {
		select {
		case q.ch <- vs[i]:
			accepted++
		default:
			// Buffer full right now; a consumer may free a slot before the
			// next record, so keep trying the remaining ones.
		}
	}
	if accepted > 0 {
		q.enqueued.Add(uint64(accepted))
	}
	if d := len(vs) - accepted; d > 0 {
		q.dropped.Add(uint64(d))
	}
	return accepted + shed
}

// Put enqueues v, blocking until space is available. Used by offline replays
// where back-pressure, not loss, is the desired behaviour. Put holds the
// queue open against Close for its duration; do not Close a queue while a
// Put may be blocked forever (no consumers), and do not Put after Close —
// that Put counts as a drop.
func (q *Queue[T]) Put(v T) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		q.dropped.Add(1)
		return
	}
	if q.planShed(1) > 0 {
		q.sampled.Add(1)
		return
	}
	q.ch <- v
	q.enqueued.Add(1)
}

// PutBatch enqueues every record in vs, blocking for space as needed, and
// returns the number the queue took responsibility for (with a sampler
// installed that includes records shed into Stats.Sampled, same as
// OfferBatch). It is the backpressure form of OfferBatch:
// inter-stage handoffs use it so that records already accepted into the
// pipeline are never dropped between stages — loss is accounted only at the
// intake queues, as with the paper's stream buffers. Like Put, it must not
// be called after Close (the whole batch then counts as dropped) and
// requires consumers to be draining the queue until Close.
func (q *Queue[T]) PutBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		q.dropped.Add(uint64(len(vs)))
		return 0
	}
	shed := q.planShed(len(vs))
	if shed > 0 {
		q.sampled.Add(uint64(shed))
		vs = vs[shed:]
	}
	for i := range vs {
		q.ch <- vs[i]
	}
	if len(vs) > 0 {
		q.enqueued.Add(uint64(len(vs)))
	}
	return len(vs) + shed
}

// Take dequeues the next record, blocking until one is available. ok is
// false when the queue has been closed and drained.
func (q *Queue[T]) Take() (v T, ok bool) {
	v, ok = <-q.ch
	if ok {
		q.dequeued.Add(1)
	}
	return v, ok
}

// TakeBatch appends up to max records to buf and returns the extended
// slice. It blocks until at least one record is available (or the queue is
// closed and drained — the only case reporting ok == false). Having taken
// one record it keeps appending records that are immediately available;
// when fewer than max arrived and wait > 0, it lingers up to wait for
// stragglers so consumers see larger batches under moderate load at a
// bounded latency cost. wait <= 0 never waits beyond the first record.
func (q *Queue[T]) TakeBatch(buf []T, max int, wait time.Duration) ([]T, bool) {
	if max < 1 {
		max = 1
	}
	v, ok := <-q.ch
	if !ok {
		return buf, false
	}
	buf = append(buf, v)
	taken := 1
	if wait <= 0 {
		for taken < max {
			select {
			case v, ok := <-q.ch:
				if !ok {
					q.dequeued.Add(uint64(taken))
					return buf, true
				}
				buf = append(buf, v)
				taken++
			default:
				q.dequeued.Add(uint64(taken))
				return buf, true
			}
		}
		q.dequeued.Add(uint64(taken))
		return buf, true
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for taken < max {
		select {
		case v, ok := <-q.ch:
			if !ok {
				q.dequeued.Add(uint64(taken))
				return buf, true
			}
			buf = append(buf, v)
			taken++
		case <-timer.C:
			q.dequeued.Add(uint64(taken))
			return buf, true
		}
	}
	q.dequeued.Add(uint64(taken))
	return buf, true
}

// TryTake dequeues without blocking. ok is false if the queue is empty (or
// closed and drained).
func (q *Queue[T]) TryTake() (v T, ok bool) {
	select {
	case v, ok = <-q.ch:
		if ok {
			q.dequeued.Add(1)
		}
		return v, ok
	default:
		var zero T
		return zero, false
	}
}

// Close marks the queue as complete. Consumers drain remaining records and
// then observe ok == false. Close is idempotent.
func (q *Queue[T]) Close() {
	q.closeOnce.Do(func() {
		q.mu.Lock()
		q.closed = true
		q.mu.Unlock()
		close(q.ch)
	})
}

// Len returns the number of buffered records.
func (q *Queue[T]) Len() int { return len(q.ch) }

// Cap returns the buffer capacity.
func (q *Queue[T]) Cap() int { return cap(q.ch) }

// Stats returns a snapshot of the counters.
func (q *Queue[T]) Stats() Stats {
	return Stats{
		Enqueued: q.enqueued.Load(),
		Dropped:  q.dropped.Load(),
		Sampled:  q.sampled.Load(),
		Dequeued: q.dequeued.Load(),
	}
}

// Fill returns the buffer occupancy in [0,1]. The paper's operational goal
// is "to keep the buffer usage stable to avoid any loss"; monitoring uses
// this.
func (q *Queue[T]) Fill() float64 {
	return float64(len(q.ch)) / float64(cap(q.ch))
}
