// Package queue provides bounded multi-producer/multi-consumer job queues
// with drop accounting.
//
// FlowDNS places a queue between every pair of worker stages (stream reader →
// FillUp, stream reader → LookUp, LookUp → Write). Each upstream source "has
// an internal buffer to be used in case the reading speed is less than their
// actual rate. If that buffer overflows, the streams start to drop data."
// (paper §2). The evaluation's headline loss metric (≤0.01 % for Main, >90 %
// for the exact-TTL anti-benchmark) is exactly the drop rate these queues
// record, so the implementation keeps precise atomic counters.
package queue

import (
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time snapshot of a queue's counters.
type Stats struct {
	Enqueued uint64 // records accepted into the buffer
	Dropped  uint64 // records rejected because the buffer was full
	Dequeued uint64 // records handed to consumers
}

// Offered returns the total number of records offered to the queue.
func (s Stats) Offered() uint64 { return s.Enqueued + s.Dropped }

// LossRate returns Dropped / Offered in [0,1]; 0 when nothing was offered.
func (s Stats) LossRate() float64 {
	off := s.Offered()
	if off == 0 {
		return 0
	}
	return float64(s.Dropped) / float64(off)
}

// Queue is a bounded FIFO of values of type T. Producers never block: when
// the buffer is full, Offer drops the record and increments the drop
// counter, mirroring the stream-buffer semantics of the paper's data feeds.
// Consumers block on Take until a record arrives or the queue is closed.
type Queue[T any] struct {
	ch       chan T
	enqueued atomic.Uint64
	dropped  atomic.Uint64
	dequeued atomic.Uint64

	// mu coordinates producers with Close: a send on a closed channel
	// panics even inside a select, so Close takes the write side while
	// producers hold the read side.
	mu        sync.RWMutex
	closed    bool
	closeOnce sync.Once
}

// New returns a queue with the given buffer capacity (minimum 1).
func New[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{ch: make(chan T, capacity)}
}

// Offer attempts a non-blocking enqueue. It reports whether the record was
// accepted; a false return means the record was dropped and counted as loss.
// Offer on a closed queue counts the record as dropped.
func (q *Queue[T]) Offer(v T) bool {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		q.dropped.Add(1)
		return false
	}
	select {
	case q.ch <- v:
		q.enqueued.Add(1)
		return true
	default:
		q.dropped.Add(1)
		return false
	}
}

// Put enqueues v, blocking until space is available. Used by offline replays
// where back-pressure, not loss, is the desired behaviour. Put holds the
// queue open against Close for its duration; do not Close a queue while a
// Put may be blocked forever (no consumers), and do not Put after Close —
// that Put counts as a drop.
func (q *Queue[T]) Put(v T) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		q.dropped.Add(1)
		return
	}
	q.ch <- v
	q.enqueued.Add(1)
}

// Take dequeues the next record, blocking until one is available. ok is
// false when the queue has been closed and drained.
func (q *Queue[T]) Take() (v T, ok bool) {
	v, ok = <-q.ch
	if ok {
		q.dequeued.Add(1)
	}
	return v, ok
}

// TryTake dequeues without blocking. ok is false if the queue is empty (or
// closed and drained).
func (q *Queue[T]) TryTake() (v T, ok bool) {
	select {
	case v, ok = <-q.ch:
		if ok {
			q.dequeued.Add(1)
		}
		return v, ok
	default:
		var zero T
		return zero, false
	}
}

// Close marks the queue as complete. Consumers drain remaining records and
// then observe ok == false. Close is idempotent.
func (q *Queue[T]) Close() {
	q.closeOnce.Do(func() {
		q.mu.Lock()
		q.closed = true
		q.mu.Unlock()
		close(q.ch)
	})
}

// Len returns the number of buffered records.
func (q *Queue[T]) Len() int { return len(q.ch) }

// Cap returns the buffer capacity.
func (q *Queue[T]) Cap() int { return cap(q.ch) }

// Stats returns a snapshot of the counters.
func (q *Queue[T]) Stats() Stats {
	return Stats{
		Enqueued: q.enqueued.Load(),
		Dropped:  q.dropped.Load(),
		Dequeued: q.dequeued.Load(),
	}
}

// Fill returns the buffer occupancy in [0,1]. The paper's operational goal
// is "to keep the buffer usage stable to avoid any loss"; monitoring uses
// this.
func (q *Queue[T]) Fill() float64 {
	return float64(len(q.ch)) / float64(cap(q.ch))
}
