// Package queue provides bounded multi-producer/multi-consumer job queues
// with drop accounting.
//
// FlowDNS places a queue between every pair of worker stages (stream reader →
// FillUp, stream reader → LookUp, LookUp → Write). Each upstream source "has
// an internal buffer to be used in case the reading speed is less than their
// actual rate. If that buffer overflows, the streams start to drop data."
// (paper §2). The evaluation's headline loss metric (≤0.01 % for Main, >90 %
// for the exact-TTL anti-benchmark) is exactly the drop rate these queues
// record, so the implementation keeps precise atomic counters.
package queue

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stats is a point-in-time snapshot of a queue's counters.
type Stats struct {
	Enqueued uint64 // records accepted into the buffer
	Dropped  uint64 // records rejected because the buffer was full
	Dequeued uint64 // records handed to consumers
}

// Offered returns the total number of records offered to the queue.
func (s Stats) Offered() uint64 { return s.Enqueued + s.Dropped }

// LossRate returns Dropped / Offered in [0,1]; 0 when nothing was offered.
func (s Stats) LossRate() float64 {
	off := s.Offered()
	if off == 0 {
		return 0
	}
	return float64(s.Dropped) / float64(off)
}

// Queue is a bounded FIFO of values of type T. Producers never block: when
// the buffer is full, Offer drops the record and increments the drop
// counter, mirroring the stream-buffer semantics of the paper's data feeds.
// Consumers block on Take until a record arrives or the queue is closed.
type Queue[T any] struct {
	ch       chan T
	enqueued atomic.Uint64
	dropped  atomic.Uint64
	dequeued atomic.Uint64

	// mu coordinates producers with Close: a send on a closed channel
	// panics even inside a select, so Close takes the write side while
	// producers hold the read side.
	mu        sync.RWMutex
	closed    bool
	closeOnce sync.Once
}

// New returns a queue with the given buffer capacity (minimum 1).
func New[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{ch: make(chan T, capacity)}
}

// Offer attempts a non-blocking enqueue. It reports whether the record was
// accepted; a false return means the record was dropped and counted as loss.
// Offer on a closed queue counts the record as dropped.
func (q *Queue[T]) Offer(v T) bool {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		q.dropped.Add(1)
		return false
	}
	select {
	case q.ch <- v:
		q.enqueued.Add(1)
		return true
	default:
		q.dropped.Add(1)
		return false
	}
}

// OfferBatch attempts a non-blocking enqueue of every record in vs and
// returns the number accepted. Records that do not fit are dropped and
// counted as loss, exactly as with per-record Offer, but the counter
// updates are amortized to two atomic adds per call — the hot-path batching
// the LookUp→Write handoff relies on.
func (q *Queue[T]) OfferBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		q.dropped.Add(uint64(len(vs)))
		return 0
	}
	accepted := 0
	for i := range vs {
		select {
		case q.ch <- vs[i]:
			accepted++
		default:
			// Buffer full right now; a consumer may free a slot before the
			// next record, so keep trying the remaining ones.
		}
	}
	if accepted > 0 {
		q.enqueued.Add(uint64(accepted))
	}
	if d := len(vs) - accepted; d > 0 {
		q.dropped.Add(uint64(d))
	}
	return accepted
}

// Put enqueues v, blocking until space is available. Used by offline replays
// where back-pressure, not loss, is the desired behaviour. Put holds the
// queue open against Close for its duration; do not Close a queue while a
// Put may be blocked forever (no consumers), and do not Put after Close —
// that Put counts as a drop.
func (q *Queue[T]) Put(v T) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		q.dropped.Add(1)
		return
	}
	q.ch <- v
	q.enqueued.Add(1)
}

// PutBatch enqueues every record in vs, blocking for space as needed, and
// returns the number enqueued. It is the backpressure form of OfferBatch:
// inter-stage handoffs use it so that records already accepted into the
// pipeline are never dropped between stages — loss is accounted only at the
// intake queues, as with the paper's stream buffers. Like Put, it must not
// be called after Close (the whole batch then counts as dropped) and
// requires consumers to be draining the queue until Close.
func (q *Queue[T]) PutBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		q.dropped.Add(uint64(len(vs)))
		return 0
	}
	for i := range vs {
		q.ch <- vs[i]
	}
	q.enqueued.Add(uint64(len(vs)))
	return len(vs)
}

// Take dequeues the next record, blocking until one is available. ok is
// false when the queue has been closed and drained.
func (q *Queue[T]) Take() (v T, ok bool) {
	v, ok = <-q.ch
	if ok {
		q.dequeued.Add(1)
	}
	return v, ok
}

// TakeBatch appends up to max records to buf and returns the extended
// slice. It blocks until at least one record is available (or the queue is
// closed and drained — the only case reporting ok == false). Having taken
// one record it keeps appending records that are immediately available;
// when fewer than max arrived and wait > 0, it lingers up to wait for
// stragglers so consumers see larger batches under moderate load at a
// bounded latency cost. wait <= 0 never waits beyond the first record.
func (q *Queue[T]) TakeBatch(buf []T, max int, wait time.Duration) ([]T, bool) {
	if max < 1 {
		max = 1
	}
	v, ok := <-q.ch
	if !ok {
		return buf, false
	}
	buf = append(buf, v)
	taken := 1
	if wait <= 0 {
		for taken < max {
			select {
			case v, ok := <-q.ch:
				if !ok {
					q.dequeued.Add(uint64(taken))
					return buf, true
				}
				buf = append(buf, v)
				taken++
			default:
				q.dequeued.Add(uint64(taken))
				return buf, true
			}
		}
		q.dequeued.Add(uint64(taken))
		return buf, true
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for taken < max {
		select {
		case v, ok := <-q.ch:
			if !ok {
				q.dequeued.Add(uint64(taken))
				return buf, true
			}
			buf = append(buf, v)
			taken++
		case <-timer.C:
			q.dequeued.Add(uint64(taken))
			return buf, true
		}
	}
	q.dequeued.Add(uint64(taken))
	return buf, true
}

// TryTake dequeues without blocking. ok is false if the queue is empty (or
// closed and drained).
func (q *Queue[T]) TryTake() (v T, ok bool) {
	select {
	case v, ok = <-q.ch:
		if ok {
			q.dequeued.Add(1)
		}
		return v, ok
	default:
		var zero T
		return zero, false
	}
}

// Close marks the queue as complete. Consumers drain remaining records and
// then observe ok == false. Close is idempotent.
func (q *Queue[T]) Close() {
	q.closeOnce.Do(func() {
		q.mu.Lock()
		q.closed = true
		q.mu.Unlock()
		close(q.ch)
	})
}

// Len returns the number of buffered records.
func (q *Queue[T]) Len() int { return len(q.ch) }

// Cap returns the buffer capacity.
func (q *Queue[T]) Cap() int { return cap(q.ch) }

// Stats returns a snapshot of the counters.
func (q *Queue[T]) Stats() Stats {
	return Stats{
		Enqueued: q.enqueued.Load(),
		Dropped:  q.dropped.Load(),
		Dequeued: q.dequeued.Load(),
	}
}

// Fill returns the buffer occupancy in [0,1]. The paper's operational goal
// is "to keep the buffer usage stable to avoid any loss"; monitoring uses
// this.
func (q *Queue[T]) Fill() float64 {
	return float64(len(q.ch)) / float64(cap(q.ch))
}
