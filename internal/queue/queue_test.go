package queue

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestOfferTake(t *testing.T) {
	q := New[int](4)
	if !q.Offer(1) || !q.Offer(2) {
		t.Fatal("Offer failed with space available")
	}
	v, ok := q.Take()
	if !ok || v != 1 {
		t.Fatalf("Take = %d,%v; want 1,true", v, ok)
	}
	v, ok = q.Take()
	if !ok || v != 2 {
		t.Fatalf("Take = %d,%v; want 2,true", v, ok)
	}
}

func TestOfferDropsWhenFull(t *testing.T) {
	q := New[int](2)
	q.Offer(1)
	q.Offer(2)
	if q.Offer(3) {
		t.Fatal("Offer succeeded on a full queue")
	}
	st := q.Stats()
	if st.Enqueued != 2 || st.Dropped != 1 {
		t.Fatalf("Stats = %+v; want Enqueued 2, Dropped 1", st)
	}
	if got := st.LossRate(); got != 1.0/3.0 {
		t.Fatalf("LossRate = %v, want 1/3", got)
	}
}

func TestTryTakeEmpty(t *testing.T) {
	q := New[string](1)
	if _, ok := q.TryTake(); ok {
		t.Fatal("TryTake on empty queue returned ok")
	}
	q.Offer("x")
	v, ok := q.TryTake()
	if !ok || v != "x" {
		t.Fatalf("TryTake = %q,%v", v, ok)
	}
}

func TestCloseDrains(t *testing.T) {
	q := New[int](8)
	for i := 0; i < 5; i++ {
		q.Offer(i)
	}
	q.Close()
	q.Close() // idempotent
	for i := 0; i < 5; i++ {
		v, ok := q.Take()
		if !ok || v != i {
			t.Fatalf("drain %d: got %d,%v", i, v, ok)
		}
	}
	if _, ok := q.Take(); ok {
		t.Fatal("Take after drain returned ok")
	}
	if st := q.Stats(); st.Dequeued != 5 {
		t.Fatalf("Dequeued = %d, want 5", st.Dequeued)
	}
}

func TestOfferAfterCloseCountsDrop(t *testing.T) {
	q := New[int](1)
	q.Offer(1) // fill so the closed-channel send branch is not taken
	q.Close()
	if q.Offer(2) {
		t.Fatal("Offer after close on full queue accepted")
	}
	if st := q.Stats(); st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
}

func TestPutBlocksUntilSpace(t *testing.T) {
	q := New[int](1)
	q.Put(1)
	done := make(chan struct{})
	go func() {
		q.Put(2) // blocks until Take below
		close(done)
	}()
	if v, _ := q.Take(); v != 1 {
		t.Fatal("unexpected head")
	}
	<-done
	if v, _ := q.Take(); v != 2 {
		t.Fatal("blocked Put value lost")
	}
}

func TestCapacityClamp(t *testing.T) {
	q := New[int](0)
	if q.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", q.Cap())
	}
}

func TestFill(t *testing.T) {
	q := New[int](4)
	if q.Fill() != 0 {
		t.Fatalf("empty Fill = %v", q.Fill())
	}
	q.Offer(1)
	q.Offer(2)
	if q.Fill() != 0.5 {
		t.Fatalf("Fill = %v, want 0.5", q.Fill())
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := New[int](128)
	const producers, perProducer, consumers = 8, 1000, 4
	var produced, consumed sync.WaitGroup
	var got atomic64
	consumed.Add(consumers)
	for c := 0; c < consumers; c++ {
		go func() {
			defer consumed.Done()
			for {
				if _, ok := q.Take(); !ok {
					return
				}
				got.add(1)
			}
		}()
	}
	produced.Add(producers)
	for p := 0; p < producers; p++ {
		go func() {
			defer produced.Done()
			for i := 0; i < perProducer; i++ {
				q.Put(i)
			}
		}()
	}
	produced.Wait()
	q.Close()
	consumed.Wait()
	st := q.Stats()
	if st.Enqueued != producers*perProducer {
		t.Fatalf("Enqueued = %d, want %d", st.Enqueued, producers*perProducer)
	}
	if got.load() != producers*perProducer || st.Dequeued != producers*perProducer {
		t.Fatalf("consumed %d (stats %d), want %d", got.load(), st.Dequeued, producers*perProducer)
	}
}

// Property: counters always satisfy Offered == Enqueued + Dropped and
// Dequeued <= Enqueued, for arbitrary offer/take interleavings.
func TestQuickCounterInvariants(t *testing.T) {
	f := func(ops []bool, capacity uint8) bool {
		q := New[int]((int(capacity) % 8) + 1)
		for i, offer := range ops {
			if offer {
				q.Offer(i)
			} else {
				q.TryTake()
			}
		}
		st := q.Stats()
		if st.Offered() != st.Enqueued+st.Dropped {
			return false
		}
		if st.Dequeued > st.Enqueued {
			return false
		}
		return int(st.Enqueued-st.Dequeued) == q.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOfferBatchAcceptsAndDrops(t *testing.T) {
	q := New[int](4)
	if got := q.OfferBatch([]int{1, 2, 3}); got != 3 {
		t.Fatalf("accepted = %d", got)
	}
	// Only one slot left: the batch is partially accepted, rest dropped.
	if got := q.OfferBatch([]int{4, 5, 6}); got != 1 {
		t.Fatalf("accepted = %d, want 1", got)
	}
	st := q.Stats()
	if st.Enqueued != 4 || st.Dropped != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if got := q.OfferBatch(nil); got != 0 {
		t.Fatalf("empty batch accepted %d", got)
	}
	q.Close()
	if got := q.OfferBatch([]int{7, 8}); got != 0 {
		t.Fatalf("closed queue accepted %d", got)
	}
	if st := q.Stats(); st.Dropped != 4 {
		t.Fatalf("post-close stats = %+v", st)
	}
}

func TestTakeBatchDrainsAvailable(t *testing.T) {
	q := New[int](16)
	for i := 0; i < 5; i++ {
		q.Put(i)
	}
	buf, ok := q.TakeBatch(nil, 3, 0)
	if !ok || len(buf) != 3 || buf[0] != 0 || buf[2] != 2 {
		t.Fatalf("batch = %v ok=%v", buf, ok)
	}
	// Fewer available than max: returns what is there without waiting.
	buf, ok = q.TakeBatch(buf[:0], 10, 0)
	if !ok || len(buf) != 2 {
		t.Fatalf("batch = %v ok=%v", buf, ok)
	}
	if st := q.Stats(); st.Dequeued != 5 {
		t.Fatalf("dequeued = %d", st.Dequeued)
	}
}

func TestTakeBatchBlocksForFirst(t *testing.T) {
	q := New[int](4)
	done := make(chan []int, 1)
	go func() {
		buf, _ := q.TakeBatch(nil, 4, 0)
		done <- buf
	}()
	time.Sleep(10 * time.Millisecond) // consumer is parked on an empty queue
	q.Put(42)
	select {
	case buf := <-done:
		if len(buf) != 1 || buf[0] != 42 {
			t.Fatalf("batch = %v", buf)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("TakeBatch never woke up")
	}
}

func TestTakeBatchWaitGathersStragglers(t *testing.T) {
	q := New[int](16)
	q.Put(1)
	go func() {
		time.Sleep(5 * time.Millisecond)
		q.Put(2)
	}()
	// With a generous wait the late second record joins the batch.
	buf, ok := q.TakeBatch(nil, 2, time.Second)
	if !ok || len(buf) != 2 {
		t.Fatalf("batch = %v ok=%v", buf, ok)
	}
}

func TestTakeBatchWaitBounded(t *testing.T) {
	q := New[int](16)
	q.Put(1)
	start := time.Now()
	buf, ok := q.TakeBatch(nil, 8, 20*time.Millisecond)
	if !ok || len(buf) != 1 {
		t.Fatalf("batch = %v ok=%v", buf, ok)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("wait unbounded: %v", elapsed)
	}
}

func TestTakeBatchClosedQueue(t *testing.T) {
	q := New[int](4)
	q.Put(1)
	q.Close()
	buf, ok := q.TakeBatch(nil, 4, 0)
	if !ok || len(buf) != 1 {
		t.Fatalf("drain batch = %v ok=%v", buf, ok)
	}
	if buf, ok := q.TakeBatch(buf[:0], 4, 0); ok || len(buf) != 0 {
		t.Fatalf("closed+drained returned %v ok=%v", buf, ok)
	}
}

// small atomic helper keeping the test dependency-free
type atomic64 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic64) add(d int) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

func BenchmarkOfferTake(b *testing.B) {
	q := New[int](1024)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if q.Offer(1) {
				q.TryTake()
			}
		}
	})
}

func TestPutBatchBlocksUntilSpace(t *testing.T) {
	q := New[int](2)
	done := make(chan int, 1)
	go func() { done <- q.PutBatch([]int{1, 2, 3, 4}) }()
	select {
	case <-done:
		t.Fatal("PutBatch returned with full buffer")
	case <-time.After(20 * time.Millisecond):
	}
	// Drain two; the blocked producer finishes.
	for i := 0; i < 2; i++ {
		if _, ok := q.Take(); !ok {
			t.Fatal("take failed")
		}
	}
	for i := 0; i < 2; i++ {
		if v, ok := q.Take(); !ok || v != i+3 {
			t.Fatalf("take = %d, %v", v, ok)
		}
	}
	if n := <-done; n != 4 {
		t.Fatalf("PutBatch = %d, want 4", n)
	}
	st := q.Stats()
	if st.Enqueued != 4 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutBatchAfterCloseCountsDrops(t *testing.T) {
	q := New[int](4)
	q.Close()
	if n := q.PutBatch([]int{1, 2, 3}); n != 0 {
		t.Fatalf("PutBatch on closed = %d", n)
	}
	if st := q.Stats(); st.Dropped != 3 {
		t.Fatalf("dropped = %d, want 3", st.Dropped)
	}
}

func TestPutBatchEmpty(t *testing.T) {
	q := New[int](1)
	if n := q.PutBatch(nil); n != 0 {
		t.Fatalf("PutBatch(nil) = %d", n)
	}
}
