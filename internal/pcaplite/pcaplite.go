// Package pcaplite models miniature packet captures for the paper's §4
// accuracy experiment.
//
// The authors "browse two different websites and capture the traffic",
// extract the DNS packets as the DNS stream, and build Netflow records from
// all traffic packets. Without access to a browser or live capture, this
// package synthesizes the same trace: real DNS response messages (encoded
// with the dnswire codec, so the full wire path is exercised) followed by
// data packets between the website's IP and the client, each labelled with
// the ground-truth website so correlation output can be graded.
package pcaplite

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/dnswire"
	"repro/internal/netflow"
	"repro/internal/stream"
)

// Packet is one captured packet. DNS responses carry their wire bytes in
// Payload; data packets carry the ground-truth website in Truth.
type Packet struct {
	Timestamp time.Time
	SrcIP     netip.Addr
	DstIP     netip.Addr
	SrcPort   uint16
	DstPort   uint16
	Proto     uint8
	Length    int
	Payload   []byte // DNS message bytes when IsDNS
	IsDNS     bool
	Truth     string // ground-truth website for data packets
}

// Trace is an ordered packet capture.
type Trace struct {
	Packets  []Packet
	sessions uint16
}

// Website describes one browsed site for trace synthesis.
type Website struct {
	Domain string
	Addr   netip.Addr
	// DataPackets is the number of HTTP-ish data packets to emit.
	DataPackets int
	// BytesPerPacket sizes each data packet.
	BytesPerPacket int
}

// Browse appends one browsing session to the trace: the DNS response the
// client's resolver returned, then the data transfer from the website to
// the client over a fresh client-side port (each browse is its own TCP
// connection). It returns an error if the DNS message cannot be encoded.
func (t *Trace) Browse(ts time.Time, w Website, client netip.Addr) error {
	if w.DataPackets <= 0 {
		w.DataPackets = 10
	}
	if w.BytesPerPacket <= 0 {
		w.BytesPerPacket = 1400
	}
	t.sessions++
	clientPort := 43200 + t.sessions
	rt := dnswire.TypeA
	if w.Addr.Is6() {
		rt = dnswire.TypeAAAA
	}
	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID: uint16(len(t.Packets) + 1), Response: true,
			RecursionDesired: true, RecursionAvailable: true,
		},
		Questions: []dnswire.Question{{Name: w.Domain, Type: rt, Class: dnswire.ClassIN}},
		Answers: []dnswire.Record{{
			Name: w.Domain, Type: rt, Class: dnswire.ClassIN, TTL: 300, Addr: w.Addr,
		}},
	}
	wire, err := dnswire.Encode(resp)
	if err != nil {
		return fmt.Errorf("pcaplite: encoding response for %s: %w", w.Domain, err)
	}
	resolver := netip.AddrFrom4([4]byte{10, 255, 0, 1})
	t.Packets = append(t.Packets, Packet{
		Timestamp: ts, SrcIP: resolver, DstIP: client,
		SrcPort: netflow.PortDNS, DstPort: clientPort,
		Proto: netflow.ProtoUDP, Length: len(wire), Payload: wire, IsDNS: true,
	})
	for i := 0; i < w.DataPackets; i++ {
		t.Packets = append(t.Packets, Packet{
			Timestamp: ts.Add(time.Duration(i+1) * 10 * time.Millisecond),
			SrcIP:     w.Addr, DstIP: client,
			SrcPort: 443, DstPort: clientPort,
			Proto: netflow.ProtoTCP, Length: w.BytesPerPacket,
			Truth: w.Domain,
		})
	}
	return nil
}

// DNSRecords extracts and flattens the DNS responses — "we extract the DNS
// packets from the captured traffic and feed them to FlowDNS as the DNS
// stream".
func (t *Trace) DNSRecords() ([]stream.DNSRecord, error) {
	var out []stream.DNSRecord
	for i := range t.Packets {
		p := &t.Packets[i]
		if !p.IsDNS {
			continue
		}
		msg, err := dnswire.Decode(p.Payload)
		if err != nil {
			return nil, fmt.Errorf("pcaplite: packet %d: %w", i, err)
		}
		out = append(out, stream.FlattenResponse(msg, p.Timestamp)...)
	}
	return out, nil
}

// FlowRecords aggregates the data packets into flow records, one per
// (src, dst, srcPort, dstPort, proto) tuple — "we then create Netflow
// records from all traffic packets".
func (t *Trace) FlowRecords() []netflow.FlowRecord {
	type key struct {
		src, dst     netip.Addr
		sport, dport uint16
		proto        uint8
	}
	order := make([]key, 0)
	agg := make(map[key]*netflow.FlowRecord)
	for i := range t.Packets {
		p := &t.Packets[i]
		if p.IsDNS {
			continue
		}
		k := key{p.SrcIP, p.DstIP, p.SrcPort, p.DstPort, p.Proto}
		fr, ok := agg[k]
		if !ok {
			fr = &netflow.FlowRecord{
				Timestamp: p.Timestamp,
				SrcIP:     p.SrcIP, DstIP: p.DstIP,
				SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: p.Proto,
			}
			agg[k] = fr
			order = append(order, k)
		}
		fr.Packets++
		fr.Bytes += uint64(p.Length)
	}
	out := make([]netflow.FlowRecord, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	return out
}

// Truth returns the ground-truth website for a flow's source address, or ""
// when the trace never labelled it. When websites share an address, use
// TruthFor with the full flow instead.
func (t *Trace) Truth(src netip.Addr) string {
	for i := range t.Packets {
		p := &t.Packets[i]
		if !p.IsDNS && p.SrcIP == src {
			return p.Truth
		}
	}
	return ""
}

// TruthFor returns the ground-truth website of the session a flow record
// aggregates, matching the full 5-tuple.
func (t *Trace) TruthFor(fr netflow.FlowRecord) string {
	for i := range t.Packets {
		p := &t.Packets[i]
		if p.IsDNS {
			continue
		}
		if p.SrcIP == fr.SrcIP && p.DstIP == fr.DstIP &&
			p.SrcPort == fr.SrcPort && p.DstPort == fr.DstPort && p.Proto == fr.Proto {
			return p.Truth
		}
	}
	return ""
}
