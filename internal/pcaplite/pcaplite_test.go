package pcaplite

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnswire"
)

var tsBase = time.Unix(1653475200, 0)

func TestBrowseProducesDNSAndData(t *testing.T) {
	var tr Trace
	client := netip.MustParseAddr("10.0.0.5")
	err := tr.Browse(tsBase, Website{
		Domain: "site-a.example", Addr: netip.MustParseAddr("198.51.100.1"),
		DataPackets: 5, BytesPerPacket: 1000,
	}, client)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Packets) != 6 {
		t.Fatalf("packets = %d", len(tr.Packets))
	}
	recs, err := tr.DNSRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Query != "site-a.example" || recs[0].Addr != netip.MustParseAddr("198.51.100.1") {
		t.Fatalf("dns records = %+v", recs)
	}
	if recs[0].RType != dnswire.TypeA {
		t.Fatalf("rtype = %v", recs[0].RType)
	}
	flows := tr.FlowRecords()
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	if flows[0].Packets != 5 || flows[0].Bytes != 5000 {
		t.Fatalf("flow agg = %+v", flows[0])
	}
	if flows[0].SrcIP != netip.MustParseAddr("198.51.100.1") {
		t.Fatalf("flow src = %v", flows[0].SrcIP)
	}
}

func TestBrowseIPv6(t *testing.T) {
	var tr Trace
	err := tr.Browse(tsBase, Website{
		Domain: "v6.example", Addr: netip.MustParseAddr("2001:db8::10"),
	}, netip.MustParseAddr("10.0.0.6"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := tr.DNSRecords()
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].RType != dnswire.TypeAAAA || recs[0].Addr != netip.MustParseAddr("2001:db8::10") {
		t.Fatalf("v6 record = %+v", recs[0])
	}
}

func TestTwoWebsitesDistinctFlows(t *testing.T) {
	var tr Trace
	client := netip.MustParseAddr("10.0.0.7")
	tr.Browse(tsBase, Website{Domain: "a.example", Addr: netip.MustParseAddr("198.51.100.1")}, client)
	tr.Browse(tsBase.Add(time.Second), Website{Domain: "b.example", Addr: netip.MustParseAddr("198.51.100.2")}, client)
	flows := tr.FlowRecords()
	if len(flows) != 2 {
		t.Fatalf("flows = %d", len(flows))
	}
	if tr.Truth(netip.MustParseAddr("198.51.100.1")) != "a.example" {
		t.Fatal("truth lookup broken")
	}
	if tr.Truth(netip.MustParseAddr("198.51.100.9")) != "" {
		t.Fatal("unknown truth should be empty")
	}
}

func TestSharedIPSecondOverwrites(t *testing.T) {
	// The paper's scenario (2): both sites share one IP; the trace carries
	// two DNS answers for the same address.
	var tr Trace
	client := netip.MustParseAddr("10.0.0.8")
	shared := netip.MustParseAddr("198.51.100.50")
	tr.Browse(tsBase, Website{Domain: "first.example", Addr: shared}, client)
	tr.Browse(tsBase.Add(time.Second), Website{Domain: "second.example", Addr: shared}, client)
	recs, err := tr.DNSRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("dns records = %d", len(recs))
	}
	if recs[0].Addr != recs[1].Addr {
		t.Fatal("shared IP not shared")
	}
}

func TestDefaultsApplied(t *testing.T) {
	var tr Trace
	err := tr.Browse(tsBase, Website{Domain: "d.example", Addr: netip.MustParseAddr("192.0.2.1")},
		netip.MustParseAddr("10.0.0.9"))
	if err != nil {
		t.Fatal(err)
	}
	flows := tr.FlowRecords()
	if flows[0].Packets != 10 || flows[0].Bytes != 14000 {
		t.Fatalf("defaults = %+v", flows[0])
	}
}
