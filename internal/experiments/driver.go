// Package experiments reproduces every table and figure of the paper's
// evaluation (§4, §5, appendices). Each experiment is a named, runnable
// unit shared by the cmd/experiments binary and the repository-level
// benchmarks; results carry both printable rows (the series the paper
// plots) and key metric values for programmatic assertions.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// SimStart anchors simulated time at the paper's measurement week
// (25 May 2022, UTC).
var SimStart = time.Date(2022, 5, 25, 0, 0, 0, 0, time.UTC)

// HourStats is one simulated hour of a driver run — the sampling grain of
// Figures 2, 3, and 7.
type HourStats struct {
	Hour       int     // hours since SimStart
	TrafficGB  float64 // bytes offered this hour (normalized unit)
	CorrRate   float64 // correlation rate within this hour (bytes)
	CPUPct     float64 // process CPU percent over the hour's processing
	HeapMB     float64 // live heap after the hour (post-GC)
	Entries    int     // total hashmap entries (state size)
	DNSRecords uint64  // records filled this hour
	Flows      uint64  // flows looked up this hour
	LossRate   float64 // cumulative queue loss so far
}

// SimResult is a full driver run.
type SimResult struct {
	Variant core.Variant
	Hours   []HourStats
	Final   core.Stats
}

// SimParams sizes a simulation. Rates are per simulated hour at the diurnal
// peak; the curve scales them down through the day.
type SimParams struct {
	Variant      core.Variant
	Days         int
	DNSPerHour   int // DNS query events per peak hour
	FlowsPerHour int // flow records per peak hour
	StepsPerHour int // timestamp granularity within an hour
	Seed         int64
	Universe     *workload.Universe
	Sink         core.Sink
	// OnFlow, when set, sees every correlated flow inline (cheaper than a
	// Sink when the caller also needs the hour index).
	OnFlow func(hour int, cf core.CorrelatedFlow)
}

func (p SimParams) normalized() SimParams {
	if p.Days <= 0 {
		p.Days = 1
	}
	if p.DNSPerHour <= 0 {
		p.DNSPerHour = 2000
	}
	if p.FlowsPerHour <= 0 {
		p.FlowsPerHour = 20000
	}
	if p.StepsPerHour <= 0 {
		p.StepsPerHour = 6
	}
	if p.Universe == nil {
		p.Universe = workload.NewUniverse(workload.DefaultConfig())
	}
	if p.Variant == "" {
		p.Variant = core.VariantMain
	}
	return p
}

// RunSim replays a synthetic multi-day workload through a correlator
// synchronously (deterministic record clock; rotation driven by record
// timestamps exactly as in a live run) and samples resources every
// simulated hour.
func RunSim(p SimParams) *SimResult {
	p = p.normalized()
	c := core.New(core.ConfigForVariant(p.Variant), core.WithSink(p.Sink))
	g := workload.NewGenerator(p.Universe, p.Seed)
	res := &SimResult{Variant: p.Variant}
	cpu := metrics.NewCPUSampler()
	var prev core.Stats
	var batch []core.CorrelatedFlow
	totalHours := p.Days * 24
	for h := 0; h < totalHours; h++ {
		hourStart := SimStart.Add(time.Duration(h) * time.Hour)
		mult := workload.DiurnalMultiplier(float64(h % 24))
		dnsThisHour := int(float64(p.DNSPerHour) * mult)
		flowsThisHour := int(float64(p.FlowsPerHour) * mult)
		for s := 0; s < p.StepsPerHour; s++ {
			ts := hourStart.Add(time.Duration(s) * time.Hour / time.Duration(p.StepsPerHour))
			for _, rec := range g.DNSBatch(ts, dnsThisHour/p.StepsPerHour) {
				c.IngestDNS(rec)
			}
			frs := g.FlowBatch(ts, flowsThisHour/p.StepsPerHour)
			batch = batch[:0]
			for _, fr := range frs {
				cf := c.CorrelateFlow(fr)
				if p.Sink != nil {
					batch = append(batch, cf)
				}
				if p.OnFlow != nil {
					p.OnFlow(h, cf)
				}
			}
			if p.Sink != nil && len(batch) > 0 {
				if err := p.Sink.WriteBatch(context.Background(), batch); err != nil {
					// Experiments must never report figures from silently
					// truncated output.
					panic(fmt.Sprintf("experiments: sink failed mid-simulation: %v", err))
				}
			}
		}
		st := c.Stats()
		hs := HourStats{
			Hour:       h,
			DNSRecords: st.DNSRecords - prev.DNSRecords,
			Flows:      st.Flows - prev.Flows,
			CPUPct:     cpu.Sample(),
			Entries:    st.IPNameEntries + st.NameCnameEntries,
			LossRate:   st.LossRate(),
		}
		hs.TrafficGB = float64(st.FlowBytes-prev.FlowBytes) / 1e9
		if db := st.FlowBytes - prev.FlowBytes; db > 0 {
			hs.CorrRate = float64(st.CorrelatedBytes-prev.CorrelatedBytes) / float64(db)
		}
		runtime.GC()
		hs.HeapMB = metrics.HeapMB()
		res.Hours = append(res.Hours, hs)
		prev = st
	}
	res.Final = c.Stats()
	return res
}

// Result is the outcome of one experiment: printable lines plus named
// metric values for assertions.
type Result struct {
	ID       string
	Title    string
	Headline string
	Lines    []string
	Values   map[string]float64
}

func (r *Result) addLine(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Result) set(key string, v float64) {
	if r.Values == nil {
		r.Values = make(map[string]float64)
	}
	r.Values[key] = v
}

// Experiment couples an id from the DESIGN.md experiment index with its
// runner. Scale in (0,1] shrinks the workload proportionally (tests run at
// low scale; benches at 1.0).
type Experiment struct {
	ID    string
	Title string
	Paper string // which figure/table/section this regenerates
	Run   func(scale float64) *Result
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the experiments in registration (paper) order.
func All() []Experiment { return registry }

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// clampScale keeps scaled workloads sane.
func clampScale(s float64) float64 {
	if s <= 0 || s > 4 {
		return 1
	}
	return s
}
