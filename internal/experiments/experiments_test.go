package experiments

import (
	"testing"
)

// Tests run the experiments at reduced scale and assert the *shapes* the
// paper reports — who wins, in which direction, and roughly by how much —
// not absolute numbers (our substrate is a synthetic generator, not the
// authors' ISP feeds).

const testScale = 0.12

func runByID(t *testing.T, id string, scale float64) *Result {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	r := e.Run(scale)
	if r.ID != id {
		t.Fatalf("result ID = %q, want %q", r.ID, id)
	}
	if r.Headline == "" || len(r.Lines) == 0 {
		t.Fatalf("experiment %q produced no output", id)
	}
	return r
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "corr", "coverage", "accuracy", "exactttl"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) found something")
	}
}

func TestTable1(t *testing.T) {
	r := runByID(t, "table1", 1)
	if r.Values["a_clear_up_seconds"] != 3600 || r.Values["c_clear_up_seconds"] != 7200 {
		t.Fatalf("clear-up intervals = %v/%v", r.Values["a_clear_up_seconds"], r.Values["c_clear_up_seconds"])
	}
	if r.Values["num_split"] != 10 || r.Values["chain_limit"] != 6 {
		t.Fatalf("num_split/chain_limit = %v/%v", r.Values["num_split"], r.Values["chain_limit"])
	}
}

func TestFig2DiurnalShape(t *testing.T) {
	r := runByID(t, "fig2", testScale)
	if r.Values["hours"] != 168 {
		t.Fatalf("hours = %v, want 168 (a week)", r.Values["hours"])
	}
	// Traffic and state size must both swing diurnally (peak well above
	// trough, every day on average).
	if r.Values["traffic_peak_over_trough"] < 1.5 {
		t.Fatalf("traffic diurnal swing = %v, want > 1.5", r.Values["traffic_peak_over_trough"])
	}
	if r.Values["entries_peak_over_trough"] < 1.2 {
		t.Fatalf("entries diurnal swing = %v, want > 1.2", r.Values["entries_peak_over_trough"])
	}
	// Headline neighborhood: paper reports 81.7 % over the week.
	if c := r.Values["mean_corr_rate"]; c < 0.70 || c > 0.92 {
		t.Fatalf("mean corr rate = %v, want in [0.70, 0.92]", c)
	}
	if r.Values["loss_rate"] != 0 {
		t.Fatalf("sync replay lost records: %v", r.Values["loss_rate"])
	}
}

func TestFig3VariantOrdering(t *testing.T) {
	r := runByID(t, "fig3", testScale)
	// Memory/state shape (Fig 3b): NoClearUp grows without bound and ends
	// far above Main; NoRotation holds the least state (no inactive copy).
	if r.Values["NoClearUp_entries_end"] < 1.5*r.Values["Main_entries_end"] {
		t.Fatalf("NoClearUp end state %v not >> Main %v",
			r.Values["NoClearUp_entries_end"], r.Values["Main_entries_end"])
	}
	if r.Values["NoRotation_entries_max"] >= r.Values["Main_entries_max"] {
		t.Fatalf("NoRotation peak state %v not below Main %v",
			r.Values["NoRotation_entries_max"], r.Values["Main_entries_max"])
	}
	// Correlation shape (§4): NoClearUp >= Main > NoLong > NoRotation;
	// NoSplit tracks Main exactly.
	main, noClear := r.Values["Main_corr"], r.Values["NoClearUp_corr"]
	noLong, noRot, noSplit := r.Values["NoLong_corr"], r.Values["NoRotation_corr"], r.Values["NoSplit_corr"]
	if noClear < main-0.005 {
		t.Fatalf("NoClearUp corr %v below Main %v", noClear, main)
	}
	if noLong > main {
		t.Fatalf("NoLong corr %v above Main %v", noLong, main)
	}
	if noRot >= noLong {
		t.Fatalf("NoRotation corr %v not the lowest (NoLong %v)", noRot, noLong)
	}
	if diff := noSplit - main; diff > 0.02 || diff < -0.02 {
		t.Fatalf("NoSplit corr %v deviates from Main %v", noSplit, main)
	}
}

func TestFig7HourlyRates(t *testing.T) {
	r := runByID(t, "fig7", testScale)
	// 24 data rows plus a header.
	if len(r.Lines) != 25 {
		t.Fatalf("lines = %d", len(r.Lines))
	}
	if r.Values["NoRotation_mean_corr"] >= r.Values["Main_mean_corr"] {
		t.Fatal("NoRotation should have the lowest correlation rate (paper Fig 7)")
	}
	if r.Values["NoClearUp_mean_corr"] < r.Values["Main_mean_corr"]-0.01 {
		t.Fatal("NoClearUp should top Main's correlation rate (paper Fig 7)")
	}
}

func TestFig4ASAttribution(t *testing.T) {
	r := runByID(t, "fig4", testScale)
	// S1 is served from one AS; S2 from two (Fig 4a vs 4b).
	if r.Values["s1_as_count"] != 1 {
		t.Fatalf("S1 AS count = %v, want 1", r.Values["s1_as_count"])
	}
	if r.Values["s2_as_count"] != 2 {
		t.Fatalf("S2 AS count = %v, want 2", r.Values["s2_as_count"])
	}
	if r.Values["s1_top1_share"] < 0.999 {
		t.Fatalf("S1 top-1 share = %v", r.Values["s1_top1_share"])
	}
	if r.Values["s2_top2_share"] < 0.999 {
		t.Fatalf("S2 top-2 share = %v", r.Values["s2_top2_share"])
	}
}

func TestFig5MaliciousTraffic(t *testing.T) {
	r := runByID(t, "fig5", testScale)
	// All five DBL categories plus mal-formatted must carry traffic.
	for _, cat := range []string{"spam", "botnet", "abused-redirector", "malware", "phish", "mal-formatted"} {
		if r.Values[cat+"_domains"] == 0 {
			t.Errorf("category %s attracted no domains", cat)
		}
	}
	// Spam has the most domains (paper: 512 of 612).
	if r.Values["spam_domains"] <= r.Values["botnet_domains"] {
		t.Fatal("spam should dominate the suspicious-domain count")
	}
	// Invalid names are a small share of all names (paper: 1.7 %), and
	// underscores dominate the violations (paper: 87 %).
	if s := r.Values["invalid_domain_share"]; s <= 0 || s > 0.06 {
		t.Fatalf("invalid domain share = %v", s)
	}
	if u := r.Values["underscore_share"]; u < 0.5 {
		t.Fatalf("underscore share = %v, want > 0.5", u)
	}
	// Suspicious+malformed traffic is a small but nonzero slice (paper: 0.5 %).
	tot := r.Values["suspicious_traffic_share"] + r.Values["malformed_traffic_share"]
	if tot <= 0 || tot > 0.08 {
		t.Fatalf("suspicious+malformed traffic share = %v", tot)
	}
}

func TestFig6ChainLength(t *testing.T) {
	r := runByID(t, "fig6", testScale)
	if p := r.Values["p_within_6"]; p < 0.985 {
		t.Fatalf("P(len<=6) = %v, want >= 0.985 (paper: >99%%)", p)
	}
	if r.Values["max_len"] > 17 {
		t.Fatalf("max chain length = %v beyond Fig 6 support", r.Values["max_len"])
	}
	if r.Values["p99_len"] > 6 {
		t.Fatalf("p99 = %v, want <= 6", r.Values["p99_len"])
	}
}

func TestFig8TTLs(t *testing.T) {
	r := runByID(t, "fig8", testScale)
	if p := r.Values["a_le_300"]; p < 0.6 || p > 0.8 {
		t.Fatalf("P(A ttl<=300) = %v, want ~0.70", p)
	}
	if p := r.Values["a_lt_3600"]; p < 0.97 {
		t.Fatalf("P(A ttl<3600) = %v, want ~0.99", p)
	}
	if p := r.Values["cname_lt_7200"]; p < 0.97 {
		t.Fatalf("P(CNAME ttl<7200) = %v, want ~0.99", p)
	}
	if r.Values["aaaa_records"] == 0 {
		t.Fatal("no AAAA records sampled")
	}
}

func TestFig9NamesPerIP(t *testing.T) {
	r := runByID(t, "fig9", testScale)
	if p := r.Values["single_name_300s"]; p < 0.80 || p > 0.95 {
		t.Fatalf("single-name share (300s) = %v, want ~0.88", p)
	}
	// "We also did the analysis with a 1-hour sample and observed similar
	// results."
	oneH := r.Values["single_name_1h"]
	if d := r.Values["single_name_300s"] - oneH; d < -0.1 || d > 0.1 {
		t.Fatalf("1h window diverges: 300s=%v 1h=%v", r.Values["single_name_300s"], oneH)
	}
}

func TestCorrHeadline(t *testing.T) {
	r := runByID(t, "corr", testScale)
	if c := r.Values["corr_rate"]; c < 0.70 || c > 0.92 {
		t.Fatalf("correlation rate = %v, want in [0.70, 0.92] (paper 0.817)", c)
	}
	if l := r.Values["loss_rate"]; l > 0.001 {
		t.Fatalf("loss rate = %v, want ~0 (paper <= 0.0001)", l)
	}
	if d := r.Values["write_delay_seconds"]; d > 45 {
		t.Fatalf("write delay = %vs, want <= 45 (paper)", d)
	}
	// Rotation machinery must actually be exercised: some lookups resolve
	// from the inactive and long generations.
	if r.Values["hit_inactive"] == 0 {
		t.Fatal("no inactive-tier hits; rotation not exercised")
	}
	if r.Values["hit_long"] == 0 {
		t.Fatal("no long-tier hits; long hashmaps not exercised")
	}
}

func TestCoverage(t *testing.T) {
	r := runByID(t, "coverage", testScale)
	if c := r.Values["coverage"]; c < 0.92 || c > 0.98 {
		t.Fatalf("coverage = %v, want ~0.95", c)
	}
	if r.Values["dns_flows"] < 100 {
		t.Fatalf("too few DNS flows sampled: %v", r.Values["dns_flows"])
	}
}

func TestAccuracyScenarios(t *testing.T) {
	r := runByID(t, "accuracy", 1)
	if r.Values["scenario1_accuracy"] != 1.0 {
		t.Fatalf("scenario 1 accuracy = %v, want 1.0", r.Values["scenario1_accuracy"])
	}
	if r.Values["scenario2_accuracy"] != 0.5 {
		t.Fatalf("scenario 2 accuracy = %v, want 0.5", r.Values["scenario2_accuracy"])
	}
}

func TestExactTTLAntiBenchmark(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock throughput comparison is meaningless under the race detector")
	}
	r := runByID(t, "exactttl", testScale)
	// Direction, not magnitude: the exact-TTL design must sustain less
	// throughput than Main (the paper's gap is catastrophic at ISP scale).
	if r.Values["tput_ratio"] <= 1.0 {
		t.Fatalf("ExactTTL throughput ratio = %v, want > 1 (Main faster)", r.Values["tput_ratio"])
	}
	if r.Values["exactttl_loss"] <= r.Values["main_loss"] {
		t.Fatalf("ExactTTL implied loss %v not above Main %v",
			r.Values["exactttl_loss"], r.Values["main_loss"])
	}
}

func TestRunSimDefaults(t *testing.T) {
	res := RunSim(SimParams{Days: 1, DNSPerHour: 200, FlowsPerHour: 2000, Seed: 1})
	if len(res.Hours) != 24 {
		t.Fatalf("hours = %d", len(res.Hours))
	}
	if res.Final.Flows == 0 || res.Final.DNSRecords == 0 {
		t.Fatalf("empty simulation: %+v", res.Final)
	}
	if res.Variant != "Main" {
		t.Fatalf("variant = %q", res.Variant)
	}
}
