package experiments

import (
	"fmt"

	"repro/internal/core"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Parameters and in-memory storage overview",
		Paper: "Table 1",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "fig2",
		Title: "CPU and memory usage for Main over a week",
		Paper: "Figure 2 (a, b)",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "CPU and memory usage for all variants over a day",
		Paper: "Figure 3 (a, b)",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Hourly correlation rate per variant",
		Paper: "Figure 7 (Appendix A.5)",
		Run:   runFig7,
	})
}

func runTable1(_ float64) *Result {
	cfg := core.DefaultConfig()
	r := &Result{ID: "table1", Title: "Parameters and in-memory storage overview"}
	r.addLine("%-20s %v", "AClearUpInterval", cfg.AClearUpInterval)
	r.addLine("%-20s %v", "CClearUpInterval", cfg.CClearUpInterval)
	r.addLine("%-20s %d", "NUM_SPLIT", cfg.NumSplit)
	r.addLine("%-20s %d", "CNAMEChainLimit", cfg.CNAMEChainLimit)
	r.addLine("storage: IP-NAME{Active,Inactive,Long}[n] for 0 <= n < %d", cfg.NumSplit)
	r.addLine("storage: NAME-CNAME{Active,Inactive,Long}")
	r.Headline = fmt.Sprintf("AClearUp=%v CClearUp=%v NUM_SPLIT=%d chainLimit=%d",
		cfg.AClearUpInterval, cfg.CClearUpInterval, cfg.NumSplit, cfg.CNAMEChainLimit)
	r.set("a_clear_up_seconds", cfg.AClearUpInterval.Seconds())
	r.set("c_clear_up_seconds", cfg.CClearUpInterval.Seconds())
	r.set("num_split", float64(cfg.NumSplit))
	r.set("chain_limit", float64(cfg.CNAMEChainLimit))
	return r
}

func runFig2(scale float64) *Result {
	scale = clampScale(scale)
	res := RunSim(SimParams{
		Variant:      core.VariantMain,
		Days:         7,
		DNSPerHour:   int(3000 * scale),
		FlowsPerHour: int(30000 * scale),
		Seed:         2,
	})
	r := &Result{ID: "fig2", Title: "Main over one week: traffic volume, CPU, memory"}
	r.addLine("%-5s %-12s %-10s %-10s %-10s", "hour", "trafficGB", "cpu%", "heapMB", "entries")
	for _, h := range res.Hours {
		r.addLine("%-5d %-12.4f %-10.1f %-10.1f %-10d", h.Hour, h.TrafficGB, h.CPUPct, h.HeapMB, h.Entries)
	}
	// Diurnal shape checks: traffic, work, and state all peak in the evening
	// and trough at night, every day.
	peakT, troughT := dailyPeakTrough(res.Hours, func(h HourStats) float64 { return h.TrafficGB })
	peakE, troughE := dailyPeakTrough(res.Hours, func(h HourStats) float64 { return float64(h.Entries) })
	r.set("traffic_peak_over_trough", ratio(peakT, troughT))
	r.set("entries_peak_over_trough", ratio(peakE, troughE))
	r.set("mean_corr_rate", res.Final.CorrelationRate())
	r.set("loss_rate", res.Final.LossRate())
	r.set("hours", float64(len(res.Hours)))
	r.Headline = fmt.Sprintf("168 simulated hours; diurnal traffic swing x%.2f, corr=%.3f, loss=%.5f",
		ratio(peakT, troughT), res.Final.CorrelationRate(), res.Final.LossRate())
	return r
}

func runFig3(scale float64) *Result {
	scale = clampScale(scale)
	r := &Result{ID: "fig3", Title: "Variants over one day: CPU and memory"}
	r.addLine("%-12s %-10s %-12s %-12s %-12s %-10s", "variant", "cpu%sum", "heapMB-end", "entries-end", "entries-max", "corr")
	for _, v := range core.AllVariants() {
		res := RunSim(SimParams{
			Variant:      v,
			Days:         1,
			DNSPerHour:   int(4000 * scale),
			FlowsPerHour: int(40000 * scale),
			Seed:         3,
		})
		cpuSum, entMax := 0.0, 0
		for _, h := range res.Hours {
			cpuSum += h.CPUPct
			if h.Entries > entMax {
				entMax = h.Entries
			}
		}
		last := res.Hours[len(res.Hours)-1]
		r.addLine("%-12s %-10.1f %-12.1f %-12d %-12d %-10.3f",
			v, cpuSum, last.HeapMB, last.Entries, entMax, res.Final.CorrelationRate())
		key := string(v)
		r.set(key+"_corr", res.Final.CorrelationRate())
		r.set(key+"_entries_end", float64(last.Entries))
		r.set(key+"_entries_max", float64(entMax))
		r.set(key+"_cpu_sum", cpuSum)
		r.set(key+"_heap_end", last.HeapMB)
	}
	r.Headline = fmt.Sprintf("NoClearUp holds %.0fx the state of Main at end of day",
		ratio(r.Values["NoClearUp_entries_end"], r.Values["Main_entries_end"]))
	return r
}

func runFig7(scale float64) *Result {
	scale = clampScale(scale)
	r := &Result{ID: "fig7", Title: "Correlation rate per hour per variant"}
	variants := core.AllVariants()
	series := make(map[core.Variant][]float64, len(variants))
	for _, v := range variants {
		res := RunSim(SimParams{
			Variant:      v,
			Days:         1,
			DNSPerHour:   int(4000 * scale),
			FlowsPerHour: int(40000 * scale),
			Seed:         4,
		})
		rates := make([]float64, len(res.Hours))
		for i, h := range res.Hours {
			rates[i] = h.CorrRate
		}
		series[v] = rates
		r.set(string(v)+"_mean_corr", res.Final.CorrelationRate())
	}
	header := "hour "
	for _, v := range variants {
		header += fmt.Sprintf("%-12s", v)
	}
	r.addLine("%s", header)
	for h := 0; h < 24; h++ {
		line := fmt.Sprintf("%-5d", h)
		for _, v := range variants {
			line += fmt.Sprintf("%-12.3f", series[v][h])
		}
		r.addLine("%s", line)
	}
	r.Headline = fmt.Sprintf("mean corr: Main=%.3f NoClearUp=%.3f NoLong=%.3f NoRotation=%.3f NoSplit=%.3f",
		r.Values["Main_mean_corr"], r.Values["NoClearUp_mean_corr"], r.Values["NoLong_mean_corr"],
		r.Values["NoRotation_mean_corr"], r.Values["NoSplit_mean_corr"])
	return r
}

// dailyPeakTrough returns mean daily maxima and minima of the metric.
func dailyPeakTrough(hours []HourStats, f func(HourStats) float64) (peak, trough float64) {
	days := len(hours) / 24
	if days == 0 {
		return 0, 0
	}
	for d := 0; d < days; d++ {
		mx, mn := f(hours[d*24]), f(hours[d*24])
		for h := 1; h < 24; h++ {
			v := f(hours[d*24+h])
			if v > mx {
				mx = v
			}
			if v < mn {
				mn = v
			}
		}
		peak += mx
		trough += mn
	}
	return peak / float64(days), trough / float64(days)
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
