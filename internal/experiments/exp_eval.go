package experiments

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"repro/internal/core"
	"repro/internal/netflow"
	"repro/internal/pcaplite"
	"repro/internal/resolvers"
	"repro/internal/stream"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "corr",
		Title: "Headline correlation rate, loss, and write delay (Main)",
		Paper: "§4 evaluation headline (81.7 %, <=0.01 % loss, <=45 s delay)",
		Run:   runCorr,
	})
	register(Experiment{
		ID:    "coverage",
		Title: "DNS coverage from public-resolver traffic share",
		Paper: "§4 Coverage (95 %)",
		Run:   runCoverage,
	})
	register(Experiment{
		ID:    "accuracy",
		Title: "Two-website accuracy scenarios",
		Paper: "§4 Accuracy (100 % distinct IPs, 50 % shared IP)",
		Run:   runAccuracy,
	})
	register(Experiment{
		ID:    "exactttl",
		Title: "Exact-TTL expiry anti-benchmark",
		Paper: "Appendix A.8 (>90 % loss, ~2x memory)",
		Run:   runExactTTL,
	})
}

// runCorr drives the full asynchronous pipeline (sources + queues +
// workers, as deployed) over one simulated day and reports the §4 headline
// metrics. The workload enters through the v2 Source/Ingest façade exactly
// as the wire sources do.
func runCorr(scale float64) *Result {
	scale = clampScale(scale)
	u := workload.NewUniverse(workload.DefaultConfig())
	g := workload.NewGenerator(u, 11)
	var c *core.Correlator // assigned before Run starts the source
	day := stream.SourceFunc(func(ctx context.Context, in stream.Ingest) error {
		steps := 6
		var sent uint64
		for h := 0; h < 24; h++ {
			hourStart := SimStart.Add(time.Duration(h) * time.Hour)
			mult := workload.DiurnalMultiplier(float64(h))
			dns := int(3000 * scale * mult)
			flows := int(30000 * scale * mult)
			for s := 0; s < steps; s++ {
				if ctx.Err() != nil {
					return nil
				}
				ts := hourStart.Add(time.Duration(s) * time.Hour / time.Duration(steps))
				sent += uint64(in.OfferDNSBatch(g.DNSBatch(ts, dns/steps)))
				// Let fills lead lookups within the step, as they do in a
				// live deployment (the resolution precedes the flow by at
				// least the client's connect latency; our step granularity
				// is far coarser). Wait on the ingested counter, not queue
				// depth: dequeued records may still be mid-ingest.
				for {
					st := c.Stats()
					if st.DNSRecords+st.DNSInvalid >= sent {
						break
					}
					time.Sleep(50 * time.Microsecond)
				}
				in.OfferFlowBatch(g.FlowBatch(ts, flows/steps))
			}
		}
		return nil
	})
	c = core.New(core.DefaultConfig(), core.WithSources(day))
	if err := c.Run(context.Background()); err != nil {
		panic(fmt.Sprintf("corr: %v", err))
	}
	st := c.Stats()
	r := &Result{ID: "corr", Title: "Headline metrics over one simulated day (async pipeline)"}
	r.addLine("correlation rate (bytes): %.4f", st.CorrelationRate())
	r.addLine("correlation rate (flows): %.4f", st.CorrelationRateFlows())
	r.addLine("stream loss rate:         %.6f", st.LossRate())
	r.addLine("max write delay:          %v", time.Duration(st.MaxWriteDelayNs))
	r.addLine("lookup tier hits:         active=%d inactive=%d long=%d miss=%d",
		st.HitActive, st.HitInactive, st.HitLong, st.Misses)
	r.addLine("rotations:                IP-NAME=%d NAME-CNAME=%d", st.IPNameRotations, st.NameCnameRotations)
	r.addLine("memoized chain results:   %d", st.Memoized)
	r.set("corr_rate", st.CorrelationRate())
	r.set("loss_rate", st.LossRate())
	r.set("write_delay_seconds", time.Duration(st.MaxWriteDelayNs).Seconds())
	r.set("hit_inactive", float64(st.HitInactive))
	r.set("hit_long", float64(st.HitLong))
	r.Headline = fmt.Sprintf("corr=%.3f (paper 0.817), loss=%.5f (paper <=0.0001), write delay %v (paper <=45 s)",
		st.CorrelationRate(), st.LossRate(), time.Duration(st.MaxWriteDelayNs).Round(time.Millisecond))
	return r
}

// runCoverage filters one simulated hour of flow records for DNS/DoT ports
// and measures the share destined to public resolvers.
func runCoverage(scale float64) *Result {
	scale = clampScale(scale)
	u := workload.NewUniverse(workload.DefaultConfig())
	g := workload.NewGenerator(u, 12)
	pub := resolvers.NewSet()
	var dnsPackets, publicPackets int
	flows := int(400000 * scale)
	for i := 0; i < flows; i += 1000 {
		ts := SimStart.Add(time.Duration(i) * time.Millisecond)
		for _, fr := range g.FlowBatch(ts, 1000) {
			if fr.DstPort != netflow.PortDNS && fr.DstPort != netflow.PortDoT {
				continue
			}
			dnsPackets++
			if pub.Contains(fr.DstIP) {
				publicPackets++
			}
		}
	}
	frac := ratio(float64(publicPackets), float64(dnsPackets))
	coverage := 1 - frac
	r := &Result{ID: "coverage", Title: "Coverage from port-53/853 flow analysis"}
	r.addLine("DNS/DoT flows sampled:      %d", dnsPackets)
	r.addLine("to public resolvers:        %d (%.4f)", publicPackets, frac)
	r.addLine("coverage = 1 - share:       %.4f", coverage)
	r.set("dns_flows", float64(dnsPackets))
	r.set("public_share", frac)
	r.set("coverage", coverage)
	r.Headline = fmt.Sprintf("1 in %.1f DNS packets to public resolvers -> coverage %.3f (paper: 1 in 20 -> 0.95)",
		1/frac, coverage)
	return r
}

// runAccuracy reproduces the §4 small-scale accuracy analysis: two browsed
// websites, traffic captured, DNS packets fed as the DNS stream and Netflow
// records built from the data packets.
func runAccuracy(_ float64) *Result {
	r := &Result{ID: "accuracy", Title: "Two-website accuracy scenarios"}
	client := netip.MustParseAddr("10.0.0.42")

	grade := func(tr *pcaplite.Trace) float64 {
		c := core.New(core.DefaultConfig(), nil)
		recs, err := tr.DNSRecords()
		if err != nil {
			panic(fmt.Sprintf("accuracy: %v", err))
		}
		for _, rec := range recs {
			c.IngestDNS(rec)
		}
		var correct, total uint64
		for _, fr := range tr.FlowRecords() {
			cf := c.CorrelateFlow(fr)
			total += fr.Bytes
			if cf.Name == tr.TruthFor(fr) {
				correct += fr.Bytes
			}
		}
		return ratio(float64(correct), float64(total))
	}

	// Scenario 1: different domains, different IPs.
	var tr1 pcaplite.Trace
	tr1.Browse(SimStart, pcaplite.Website{Domain: "site-a.example", Addr: netip.MustParseAddr("198.51.100.1"), DataPackets: 20}, client)
	tr1.Browse(SimStart.Add(time.Second), pcaplite.Website{Domain: "site-b.example", Addr: netip.MustParseAddr("198.51.100.2"), DataPackets: 20}, client)
	acc1 := grade(&tr1)

	// Scenario 2: different domains, same IP — the second DNS answer
	// overwrites the first, halving byte accuracy.
	shared := netip.MustParseAddr("198.51.100.3")
	var tr2 pcaplite.Trace
	tr2.Browse(SimStart, pcaplite.Website{Domain: "site-a.example", Addr: shared, DataPackets: 20}, client)
	tr2.Browse(SimStart.Add(time.Second), pcaplite.Website{Domain: "site-b.example", Addr: shared, DataPackets: 20}, client)
	acc2 := grade(&tr2)

	r.addLine("scenario 1 (distinct IPs): accuracy %.2f", acc1)
	r.addLine("scenario 2 (shared IP):    accuracy %.2f", acc2)
	r.set("scenario1_accuracy", acc1)
	r.set("scenario2_accuracy", acc2)
	r.Headline = fmt.Sprintf("accuracy %.0f%% / %.0f%% (paper: 100%% / 50%%)", 100*acc1, 100*acc2)
	return r
}

// runExactTTL compares the Main design against the Appendix A.8
// exact-TTL-expiry anti-design under identical offered load: the sustained
// DNS insertion rate (the appendix's own bottleneck — "the DNS insertion
// rate cannot keep up"), implied stream loss at an offered rate Main
// sustains, and state/correlation behaviour from an interleaved replay.
func runExactTTL(scale float64) *Result {
	scale = clampScale(scale)
	u := workload.NewUniverse(workload.DefaultConfig())

	prep := func(seed int64) ([]stream.DNSRecord, []netflow.FlowRecord) {
		g := workload.NewGenerator(u, seed)
		var dns []stream.DNSRecord
		var flows []netflow.FlowRecord
		// One simulated hour of dense traffic: record volume per simulated
		// second is high (as at the ISP), so the exact-TTL sweeps — every 5
		// simulated seconds — each scan a populated map. The gap between
		// Main and ExactTTL grows with this density; the paper's 75K rec/s
		// feed made it catastrophic (>90 % loss).
		steps := 360
		for s := 0; s < steps; s++ {
			ts := SimStart.Add(time.Duration(s) * 10 * time.Second)
			dns = append(dns, g.DNSBatch(ts, int(2000*scale))...)
			flows = append(flows, g.FlowBatch(ts, int(8000*scale))...)
		}
		return dns, flows
	}

	// Sweeps must keep pace with expiry (70 % of TTLs are <= 300 s); a
	// 5-second sweep on the record clock is the fidelity-preserving choice
	// and is what puts the scan overhead on the measured path.
	const sweepInterval = 5 * time.Second

	// Sustained DNS insertion rate: fills only, timed. This is the A.8
	// comparison proper — both variants run the identical allocation-free
	// typed fill path, so the measured difference is exactly the cost the
	// exact-TTL design adds on top: the per-put expiry bookkeeping and the
	// periodic scan of every shard of every split ("a regular process to
	// clear-up the expired DNS records"). The lookup side is deliberately
	// excluded from the timed region: exact expiry changes which lookups
	// hit (and thus how much CNAME-walk work a flow costs), which would
	// confound the insertion-rate measurement the appendix is about.
	// Best-of-three to damp scheduler noise.
	fillRate := func(v core.Variant, dns []stream.DNSRecord) (recsPerSec float64) {
		cfg := core.ConfigForVariant(v)
		cfg.ExactTTLSweepInterval = sweepInterval
		for rep := 0; rep < 3; rep++ {
			c := core.New(cfg, nil)
			start := time.Now()
			for i := range dns {
				c.IngestDNS(dns[i])
			}
			elapsed := time.Since(start).Seconds()
			if t := float64(len(dns)) / elapsed; t > recsPerSec {
				recsPerSec = t
			}
		}
		return recsPerSec
	}

	// Interleaved (untimed) replay for the state-size and correlation
	// metrics: fills and lookups alternate in stream proportion, so peak
	// entries and the correlation rate reflect the two designs under the
	// same traffic.
	replay := func(v core.Variant, dns []stream.DNSRecord, flows []netflow.FlowRecord) (peakEntries int, corr float64) {
		cfg := core.ConfigForVariant(v)
		cfg.ExactTTLSweepInterval = sweepInterval
		ratio := len(flows) / max(1, len(dns))
		c := core.New(cfg, nil)
		fi := 0
		for i := 0; i < len(dns); i++ {
			c.IngestDNS(dns[i])
			for k := 0; k < ratio && fi < len(flows); k++ {
				c.CorrelateFlow(flows[fi])
				fi++
			}
			if i%8192 == 0 {
				ip, cn := c.StoreSizes()
				if ip+cn > peakEntries {
					peakEntries = ip + cn
				}
			}
		}
		for ; fi < len(flows); fi++ {
			c.CorrelateFlow(flows[fi])
		}
		return peakEntries, c.Stats().CorrelationRate()
	}

	measure := func(v core.Variant) (recsPerSec float64, peakEntries int, corr float64) {
		dns, flows := prep(20) // one workload generation per variant
		recsPerSec = fillRate(v, dns)
		peakEntries, corr = replay(v, dns, flows)
		return recsPerSec, peakEntries, corr
	}

	mainTput, mainPeak, mainCorr := measure(core.VariantMain)
	ttlTput, ttlPeak, ttlCorr := measure(core.VariantExactTTL)

	// Offered rate: 95 % of what Main sustains. Main's implied loss is ~0;
	// the exact-TTL variant drops everything beyond its throughput.
	offered := 0.95 * mainTput
	impliedLoss := func(tput float64) float64 {
		if tput >= offered {
			return 0
		}
		return 1 - tput/offered
	}

	r := &Result{ID: "exactttl", Title: "Exact-TTL expiry vs Main under identical load"}
	r.addLine("%-10s %-16s %-14s %-12s %-10s", "variant", "throughput r/s", "implied loss", "peak entries", "corr")
	r.addLine("%-10s %-16.0f %-14.4f %-12d %-10.3f", "Main", mainTput, impliedLoss(mainTput), mainPeak, mainCorr)
	r.addLine("%-10s %-16.0f %-14.4f %-12d %-10.3f", "ExactTTL", ttlTput, impliedLoss(ttlTput), ttlPeak, ttlCorr)
	r.set("main_tput", mainTput)
	r.set("exactttl_tput", ttlTput)
	r.set("main_loss", impliedLoss(mainTput))
	r.set("exactttl_loss", impliedLoss(ttlTput))
	r.set("tput_ratio", ratio(mainTput, ttlTput))
	r.set("entries_ratio", ratio(float64(ttlPeak), float64(mainPeak)))
	r.Headline = fmt.Sprintf("ExactTTL sustains %.1fx less throughput than Main (implied loss %.1f%% at Main-sustainable load)",
		ratio(mainTput, ttlTput), 100*impliedLoss(ttlTput))
	return r
}
