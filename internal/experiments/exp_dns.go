package experiments

import (
	"fmt"
	"time"

	"repro/internal/dnswire"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "ECDF of CNAME chain length over a day",
		Paper: "Figure 6 (Appendix A.4)",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "ECDF of TTLs per DNS record type over a day",
		Paper: "Figure 8 (Appendix A.6)",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "ECDF of number of domain names per IP address",
		Paper: "Figure 9 (Appendix A.7)",
		Run:   runFig9,
	})
}

// runFig6 measures CNAME chain lengths over a simulated day of DNS traffic:
// for every query event, the number of CNAME records between the service
// name and the address records.
func runFig6(scale float64) *Result {
	scale = clampScale(scale)
	u := workload.NewUniverse(workload.DefaultConfig())
	g := workload.NewGenerator(u, 8)
	e := metrics.NewECDF()
	events := int(100000 * scale)
	for i := 0; i < events; i++ {
		ts := SimStart.Add(time.Duration(i) * time.Second)
		recs := g.DNSQueryEvent(ts)
		chain := 0
		for _, rec := range recs {
			if rec.RType == dnswire.TypeCNAME {
				chain++
			}
		}
		if chain > 0 {
			e.Add(float64(chain))
		}
	}
	r := &Result{ID: "fig6", Title: "CNAME chain length ECDF"}
	r.addLine("%-6s %-8s", "len", "ECDF")
	for _, p := range e.Steps() {
		r.addLine("%-6.0f %-8.4f", p.X, p.Y)
	}
	r.set("p_within_6", e.At(6))
	r.set("p99_len", e.Quantile(0.99))
	r.set("max_len", e.Quantile(1))
	r.Headline = fmt.Sprintf("P(len<=6)=%.4f, p99=%.0f, max=%.0f (paper: >99%% within 6)",
		e.At(6), e.Quantile(0.99), e.Quantile(1))
	return r
}

// runFig8 collects the TTLs of a day of DNS records, per record type.
func runFig8(scale float64) *Result {
	scale = clampScale(scale)
	u := workload.NewUniverse(workload.DefaultConfig())
	g := workload.NewGenerator(u, 9)
	dists := map[dnswire.Type]*metrics.ECDF{
		dnswire.TypeA:     metrics.NewECDF(),
		dnswire.TypeAAAA:  metrics.NewECDF(),
		dnswire.TypeCNAME: metrics.NewECDF(),
	}
	events := int(80000 * scale)
	for i := 0; i < events; i++ {
		ts := SimStart.Add(time.Duration(i) * time.Second)
		for _, rec := range g.DNSQueryEvent(ts) {
			if e, ok := dists[rec.RType]; ok {
				e.Add(float64(rec.TTL))
			}
		}
	}
	r := &Result{ID: "fig8", Title: "TTL ECDF per record type"}
	marks := []float64{60, 300, 600, 3600, 7200, 18000}
	r.addLine("%-8s %-10s %-10s %-10s", "TTL", "A", "AAAA", "CNAME")
	for _, m := range marks {
		r.addLine("%-8.0f %-10.4f %-10.4f %-10.4f", m,
			dists[dnswire.TypeA].At(m), dists[dnswire.TypeAAAA].At(m), dists[dnswire.TypeCNAME].At(m))
	}
	r.set("a_le_300", dists[dnswire.TypeA].At(300))
	r.set("a_lt_3600", dists[dnswire.TypeA].At(3599))
	r.set("aaaa_lt_3600", dists[dnswire.TypeAAAA].At(3599))
	r.set("cname_lt_7200", dists[dnswire.TypeCNAME].At(7199))
	r.set("a_records", float64(dists[dnswire.TypeA].N()))
	r.set("aaaa_records", float64(dists[dnswire.TypeAAAA].N()))
	r.set("cname_records", float64(dists[dnswire.TypeCNAME].N()))
	r.Headline = fmt.Sprintf("P(A ttl<=300)=%.3f, P(A ttl<3600)=%.3f, P(CNAME ttl<7200)=%.3f (paper: 0.70/0.99/0.99)",
		dists[dnswire.TypeA].At(300), dists[dnswire.TypeA].At(3599), dists[dnswire.TypeCNAME].At(7199))
	return r
}

// runFig9 measures domain names per IP in a 300-second window and a 1-hour
// window of DNS records.
func runFig9(scale float64) *Result {
	scale = clampScale(scale)
	u := workload.NewUniverse(workload.DefaultConfig())
	g := workload.NewGenerator(u, 10)
	window := func(duration time.Duration, eventsPerSec int) (*metrics.ECDF, int) {
		names := make(map[string]map[string]struct{})
		secs := int(duration.Seconds())
		for s := 0; s < secs; s++ {
			ts := SimStart.Add(time.Duration(s) * time.Second)
			for q := 0; q < eventsPerSec; q++ {
				for _, rec := range g.DNSQueryEvent(ts) {
					if rec.RType == dnswire.TypeCNAME {
						continue
					}
					ip := rec.AnswerString()
					if names[ip] == nil {
						names[ip] = make(map[string]struct{})
					}
					names[ip][rec.Query] = struct{}{}
				}
			}
		}
		e := metrics.NewECDF()
		for _, qs := range names {
			e.Add(float64(len(qs)))
		}
		return e, len(names)
	}
	perSec := int(80 * scale)
	if perSec < 4 {
		perSec = 4
	}
	e300, ips300 := window(300*time.Second, perSec)
	e1h, ips1h := window(time.Hour, perSec/4)

	r := &Result{ID: "fig9", Title: "Names per IP ECDF (300 s and 1 h windows)"}
	r.addLine("%-8s %-12s %-12s", "#names", "300s", "1h")
	for _, k := range []float64{1, 2, 3, 5, 9, 17} {
		r.addLine("%-8.0f %-12.4f %-12.4f", k, e300.At(k), e1h.At(k))
	}
	r.set("single_name_300s", e300.At(1))
	r.set("single_name_1h", e1h.At(1))
	r.set("ips_300s", float64(ips300))
	r.set("ips_1h", float64(ips1h))
	r.Headline = fmt.Sprintf("P(single name per IP): %.3f over 300 s, %.3f over 1 h (paper: ~0.88, similar at 1 h)",
		e300.At(1), e1h.At(1))
	return r
}
