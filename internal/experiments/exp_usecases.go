package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dbl"
	"repro/internal/dnsname"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "Per-source-AS traffic for streaming services S1 and S2 over a week",
		Paper: "Figure 4 (a, b)",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Cumulative traffic volume per number of domain names, by category",
		Paper: "Figure 5 + §5 spam/invalid-domain analysis",
		Run:   runFig5,
	})
}

// runFig4 sets up the paper's two streaming services: S1 served from a
// single CDN (one origin AS) and S2 multi-CDN across two ASes, runs a week,
// and attributes correlated bytes to source ASes via the BGP table.
func runFig4(scale float64) *Result {
	scale = clampScale(scale)
	u := workload.NewUniverse(workload.DefaultConfig())
	g := workload.NewGenerator(u, 5) // only for rank lookup; RunSim has its own
	s1, s1idx := g.RankService(1)
	s2, s2idx := g.RankService(2)
	u.PinServiceToCDNs(s1idx, []int{0}, 4)
	u.PinServiceToCDNs(s2idx, []int{1, 2}, 4)
	tbl, err := u.BGPTable()
	if err != nil {
		panic(fmt.Sprintf("fig4: bgp table: %v", err))
	}

	// accumulate per service per AS per hour
	type hourAS map[uint32]uint64
	s1Hours := make([]hourAS, 0)
	s2Hours := make([]hourAS, 0)
	ensure := func(s []hourAS, h int) []hourAS {
		for len(s) <= h {
			s = append(s, make(hourAS))
		}
		return s
	}
	res := RunSim(SimParams{
		Variant:      core.VariantMain,
		Days:         7,
		DNSPerHour:   int(3000 * scale),
		FlowsPerHour: int(30000 * scale),
		Seed:         5,
		Universe:     u,
		OnFlow: func(h int, cf core.CorrelatedFlow) {
			if !cf.Correlated() {
				return
			}
			var target []hourAS
			switch cf.Name {
			case dnsname.Normalize(s1.Name):
				s1Hours = ensure(s1Hours, h)
				target = s1Hours
			case dnsname.Normalize(s2.Name):
				s2Hours = ensure(s2Hours, h)
				target = s2Hours
			default:
				return
			}
			asn, _ := tbl.Lookup(cf.Flow.SrcIP)
			target[h][asn] += cf.Flow.Bytes
		},
	})
	_ = res

	r := &Result{ID: "fig4", Title: "Per-AS traffic for S1 (single-CDN) and S2 (multi-CDN)"}
	sumAS := func(hours []hourAS) map[uint32]uint64 {
		out := make(map[uint32]uint64)
		for _, h := range hours {
			for asn, b := range h {
				out[asn] += b
			}
		}
		return out
	}
	s1Total, s2Total := sumAS(s1Hours), sumAS(s2Hours)
	printSvc := func(label string, total map[uint32]uint64) {
		asns := make([]uint32, 0, len(total))
		var sum uint64
		for asn, b := range total {
			asns = append(asns, asn)
			sum += b
		}
		sort.Slice(asns, func(i, j int) bool { return total[asns[i]] > total[asns[j]] })
		r.addLine("%s: total bytes %d across %d source ASes", label, sum, len(asns))
		for _, asn := range asns {
			r.addLine("  AS%-6d %12d bytes (%.1f%%)", asn, total[asn], 100*float64(total[asn])/float64(sum))
		}
	}
	printSvc("S1 "+s1.Name, s1Total)
	printSvc("S2 "+s2.Name, s2Total)

	domShare := func(total map[uint32]uint64, k int) float64 {
		var all uint64
		vals := make([]uint64, 0, len(total))
		for _, b := range total {
			all += b
			vals = append(vals, b)
		}
		if all == 0 {
			return 0
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
		var top uint64
		for i := 0; i < k && i < len(vals); i++ {
			top += vals[i]
		}
		return float64(top) / float64(all)
	}
	r.set("s1_as_count", float64(len(s1Total)))
	r.set("s2_as_count", float64(len(s2Total)))
	r.set("s1_top1_share", domShare(s1Total, 1))
	r.set("s2_top2_share", domShare(s2Total, 2))
	r.Headline = fmt.Sprintf("S1: %d AS (top-1 %.0f%%); S2: %d ASes (top-2 %.0f%%)",
		len(s1Total), 100*domShare(s1Total, 1), len(s2Total), 100*domShare(s2Total, 2))
	return r
}

// runFig5 runs one day, tags every correlated domain with its DBL category
// or RFC 1035 violation, and prints the cumulative traffic-volume
// distribution per number of domain names for each category. On top of the
// Zipf background, every suspicious/malformed domain gets a small hourly
// session — the paper's figure exists because these domains do carry
// traffic every day at ISP scale.
func runFig5(scale float64) *Result {
	scale = clampScale(scale)
	u := workload.NewUniverse(workload.DefaultConfig())
	nGuaranteed := u.Config().SuspiciousServices + u.Config().MalformedServices
	sink := core.NewCountingSink()
	c := core.New(core.DefaultConfig(), nil)
	g := workload.NewGenerator(u, 6)
	const steps = 6
	for h := 0; h < 24; h++ {
		hourStart := SimStart.Add(time.Duration(h) * time.Hour)
		mult := workload.DiurnalMultiplier(float64(h))
		dns := int(4000 * scale * mult)
		flows := int(40000 * scale * mult)
		for s := 0; s < steps; s++ {
			ts := hourStart.Add(time.Duration(s) * time.Hour / steps)
			for _, rec := range g.DNSBatch(ts, dns/steps) {
				c.IngestDNS(rec)
			}
			for _, fr := range g.FlowBatch(ts, flows/steps) {
				sink.Add(c.CorrelateFlow(fr))
			}
		}
		// Guaranteed floor: a scale-proportional round-robin slice of the
		// suspicious/malformed population gets one session this hour, so
		// every category carries traffic without distorting its tiny share
		// of the total volume.
		perHour := int(float64(nGuaranteed) * scale / 4)
		if perHour < 6 {
			perHour = 6
		}
		for k := 0; k < perHour; k++ {
			i := (h*perHour + k) % nGuaranteed
			recs, fl := g.SessionFor(i, hourStart.Add(30*time.Minute), 2)
			for _, rec := range recs {
				c.IngestDNS(rec)
			}
			for _, fr := range fl {
				sink.Add(c.CorrelateFlow(fr))
			}
		}
	}

	// Classify every correlated domain once (the paper samples hourly to
	// respect DBL rate limits; our sampler mirrors that dedup).
	sampler := dbl.NewSampler()
	catBytes := make(map[string]map[string]uint64) // category -> domain -> bytes
	addCat := func(cat, domain string, b uint64) {
		if catBytes[cat] == nil {
			catBytes[cat] = make(map[string]uint64)
		}
		catBytes[cat][domain] += b
	}
	report := dnsname.NewReport()
	var totalBytes, suspiciousBytes, malformedBytes uint64
	for domain, b := range sink.Bytes() {
		if domain == "" {
			continue
		}
		totalBytes += b
		if sampler.Checked(domain) {
			report.Add(domain)
		}
		if v := dnsname.Check(domain); v != dnsname.OK {
			addCat("mal-formatted", domain, b)
			malformedBytes += b
		}
		if cat := u.Blocklist.Lookup(domain); cat != dbl.Benign {
			addCat(cat.String(), domain, b)
			suspiciousBytes += b
		}
	}

	r := &Result{ID: "fig5", Title: "Cumulative traffic volume per #domains, by category"}
	cats := []string{"spam", "botnet", "abused-redirector", "malware", "phish", "mal-formatted"}
	for _, cat := range cats {
		domains := catBytes[cat]
		vols := make([]uint64, 0, len(domains))
		for _, b := range domains {
			vols = append(vols, b)
		}
		sort.Slice(vols, func(i, j int) bool { return vols[i] > vols[j] })
		r.addLine("%s: %d domains", cat, len(vols))
		var cum uint64
		for i, v := range vols {
			cum += v
			r.addLine("  top-%d domains -> %d cumulative bytes", i+1, cum)
			if i >= 9 {
				break
			}
		}
		r.set(cat+"_domains", float64(len(vols)))
		// Concentration: share of the category's traffic from its top domain.
		if cum > 0 && len(vols) > 0 {
			var tot uint64
			for _, v := range vols {
				tot += v
			}
			r.set(cat+"_top1_share", float64(vols[0])/float64(tot))
		}
	}
	r.set("suspicious_traffic_share", ratio(float64(suspiciousBytes), float64(totalBytes)))
	r.set("malformed_traffic_share", ratio(float64(malformedBytes), float64(totalBytes)))
	r.set("invalid_domain_share", report.InvalidShare())
	r.set("underscore_share", report.UnderscoreShare())
	r.set("unique_domains", float64(report.Total))
	r.set("corr_rate", c.Stats().CorrelationRate())
	r.Headline = fmt.Sprintf("%d unique domains; invalid %.2f%% of names (underscores in %.0f%% of them); suspicious+malformed traffic %.2f%%",
		report.Total, 100*report.InvalidShare(), 100*report.UnderscoreShare(),
		100*(ratio(float64(suspiciousBytes+malformedBytes), float64(totalBytes))))
	return r
}
