//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in; wall-clock
// throughput comparisons are meaningless under its instrumentation.
const raceEnabled = true
