// Package fault implements named failpoints: registered sites in the
// pipeline where tests, operators, and the chaos harness can inject an
// error, a delay, a panic, or a short write without recompiling.
//
// The design follows the failpoint discipline of production Go storage
// systems: every site is a package-level *Point created once with New, the
// disabled fast path is a single atomic pointer load (no map lookup, no
// allocation, no branch beyond the nil check), and arming is entirely
// dynamic — via the FLOWDNS_FAULTS environment variable, the daemon's
// config/flags, or the query plane's /admin/fault endpoint.
//
// Spec grammar (one failpoint):
//
//	[count*]action[(arg)]
//
//	error            return ErrInjected from Inject
//	error(msg)       same, with msg in the error text
//	delay(150ms)     sleep that long, then return nil
//	panic            panic from Inject
//	panic(msg)       same, with msg in the panic value
//	shortwrite(512)  Writer() passes 512 bytes through, then fails the
//	                 write with an injected ENOSPC-style error
//
// A leading "count*" bounds how many times the point fires: "2*panic"
// panics exactly twice, then the point disarms itself back to the
// zero-overhead path. Without a count the point fires until disarmed.
//
// Multiple points are armed at once with a list spec:
//
//	name=spec[;name=spec...]        (',' is accepted too)
package fault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel every injected error wraps; callers test
// provenance with errors.Is(err, fault.ErrInjected).
var ErrInjected = errors.New("fault: injected")

// Env is the environment variable the daemon arms failpoints from at boot.
const Env = "FLOWDNS_FAULTS"

// Action is what an armed failpoint does when hit.
type Action uint8

const (
	// ActionError makes Inject return an injected error.
	ActionError Action = iota
	// ActionDelay makes Inject sleep before returning nil.
	ActionDelay
	// ActionPanic makes Inject panic.
	ActionPanic
	// ActionShortWrite makes Writer wrap the target so that writes fail
	// with an injected error after a byte allowance — the torn-write /
	// ENOSPC simulation for disk paths. Inject itself returns nil.
	ActionShortWrite
)

func (a Action) String() string {
	switch a {
	case ActionError:
		return "error"
	case ActionDelay:
		return "delay"
	case ActionPanic:
		return "panic"
	case ActionShortWrite:
		return "shortwrite"
	}
	return fmt.Sprintf("action(%d)", a)
}

// arming is the immutable armed state swapped into a Point. A nil arming
// pointer is the disabled state.
type arming struct {
	spec   string
	action Action
	msg    string        // error/panic text
	delay  time.Duration // ActionDelay
	bytes  int64         // ActionShortWrite allowance per armed writer
	limit  int64         // fire budget; < 0 means unlimited
	fired  atomic.Int64
}

// take consumes one unit of the fire budget; false means the budget is
// exhausted and the point should behave as disabled.
func (a *arming) take() bool {
	if a.limit < 0 {
		return true
	}
	return a.fired.Add(1) <= a.limit
}

// Point is one named injection site. Create each site exactly once at
// package init with New and call Inject (or Writer) where the fault should
// surface. The zero-cost contract: a disabled Point costs one atomic load.
type Point struct {
	name  string
	armed atomic.Pointer[arming]
	hits  atomic.Uint64
}

// Name returns the site name.
func (p *Point) Name() string { return p.name }

// Hits returns how many times the point has fired since process start
// (across all armings).
func (p *Point) Hits() uint64 { return p.hits.Load() }

// InjectedError is the concrete error Inject and short writers return.
type InjectedError struct {
	Point string
	Msg   string
}

func (e *InjectedError) Error() string {
	if e.Msg == "" {
		return "fault: injected at " + e.Point
	}
	return "fault: injected at " + e.Point + ": " + e.Msg
}

// Is reports ErrInjected identity so errors.Is(err, fault.ErrInjected)
// holds for every injected error.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// Inject evaluates the failpoint. Disabled points return nil after one
// atomic load. Armed points return an injected error (ActionError), sleep
// (ActionDelay), panic (ActionPanic), or return nil (ActionShortWrite —
// the fault lives in Writer instead).
func (p *Point) Inject() error {
	a := p.armed.Load()
	if a == nil {
		return nil
	}
	return p.fire(a)
}

// fire is the armed slow path, split out so Inject stays inlinable.
func (p *Point) fire(a *arming) error {
	if a.action == ActionShortWrite {
		// The write-path helper (Writer) carries this action and owns its
		// budget; Inject is a free no-op so a site can guard both its
		// control flow and its writer with the same point.
		return nil
	}
	if !a.take() {
		// Budget exhausted: self-disarm back to the zero-overhead path.
		p.armed.CompareAndSwap(a, nil)
		return nil
	}
	p.hits.Add(1)
	switch a.action {
	case ActionError:
		return &InjectedError{Point: p.name, Msg: a.msg}
	case ActionDelay:
		time.Sleep(a.delay)
		return nil
	case ActionPanic:
		msg := a.msg
		if msg == "" {
			msg = "injected panic"
		}
		panic(fmt.Sprintf("fault: %s: %s", p.name, msg))
	}
	return nil
}

// Writer wraps w with the point's short-write fault when one is armed;
// otherwise it returns w unchanged. Each armed call consumes one unit of
// the fire budget, so "1*shortwrite(512)" tears exactly one file.
func (p *Point) Writer(w io.Writer) io.Writer {
	a := p.armed.Load()
	if a == nil || a.action != ActionShortWrite {
		return w
	}
	if !a.take() {
		p.armed.CompareAndSwap(a, nil)
		return w
	}
	p.hits.Add(1)
	return &shortWriter{w: w, remain: a.bytes, point: p.name}
}

// shortWriter passes remain bytes through, then fails every write with an
// injected error — the userspace view of a device that ran out of space
// mid-file, leaving a torn prefix behind.
type shortWriter struct {
	w      io.Writer
	remain int64
	point  string
}

func (s *shortWriter) Write(b []byte) (int, error) {
	if s.remain <= 0 {
		return 0, &InjectedError{Point: s.point, Msg: "short write (no space)"}
	}
	if int64(len(b)) <= s.remain {
		n, err := s.w.Write(b)
		s.remain -= int64(n)
		return n, err
	}
	n, err := s.w.Write(b[:s.remain])
	s.remain -= int64(n)
	if err == nil {
		err = &InjectedError{Point: s.point, Msg: "short write (no space)"}
	}
	return n, err
}

// registry of every created point, keyed by name.
var (
	regMu  sync.Mutex
	points = map[string]*Point{}
)

// New registers a named failpoint. Sites are package-level:
//
//	var fpSegRename = fault.New("winstore.segment.rename")
//
// Registering the same name twice returns the existing point, so tests
// and refactors cannot split a site in two.
func New(name string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	if p, ok := points[name]; ok {
		return p
	}
	p := &Point{name: name}
	points[name] = p
	return p
}

// Lookup finds a registered point, or nil.
func Lookup(name string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	return points[name]
}

// Names lists every registered site, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(points))
	for n := range points {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Enable arms a registered point from a spec string. Unknown names and
// malformed specs are errors — an operator typo must not silently arm
// nothing.
func Enable(name, spec string) error {
	p := Lookup(name)
	if p == nil {
		return fmt.Errorf("fault: unknown failpoint %q (have %v)", name, Names())
	}
	a, err := parseSpec(spec)
	if err != nil {
		return fmt.Errorf("fault: %s: %w", name, err)
	}
	p.armed.Store(a)
	return nil
}

// Disable disarms a point; it reports whether the point exists.
func Disable(name string) bool {
	p := Lookup(name)
	if p == nil {
		return false
	}
	p.armed.Store(nil)
	return true
}

// DisableAll disarms every registered point (test teardown).
func DisableAll() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range points {
		p.armed.Store(nil)
	}
}

// Status is one registered point's externally visible state.
type Status struct {
	Name string `json:"name"`
	// Spec is the armed spec, or "" when the point is disabled.
	Spec string `json:"spec,omitempty"`
	// Hits counts fires since process start.
	Hits uint64 `json:"hits"`
}

// List snapshots every registered point, sorted by name.
func List() []Status {
	regMu.Lock()
	ps := make([]*Point, 0, len(points))
	for _, p := range points {
		ps = append(ps, p)
	}
	regMu.Unlock()
	sort.Slice(ps, func(i, j int) bool { return ps[i].name < ps[j].name })
	out := make([]Status, len(ps))
	for i, p := range ps {
		st := Status{Name: p.name, Hits: p.hits.Load()}
		if a := p.armed.Load(); a != nil {
			st.Spec = a.spec
		}
		out[i] = st
	}
	return out
}

// EnableSpecs arms points from a "name=spec[;name=spec...]" list (';' or
// ',' separated). Empty input is a no-op.
func EnableSpecs(list string) error {
	for _, item := range strings.FieldsFunc(list, func(r rune) bool { return r == ';' || r == ',' }) {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, spec, ok := strings.Cut(item, "=")
		if !ok {
			return fmt.Errorf("fault: malformed entry %q (want name=spec)", item)
		}
		if err := Enable(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

// FromEnv arms points from the FLOWDNS_FAULTS environment variable.
func FromEnv() error { return EnableSpecs(os.Getenv(Env)) }

// ValidateSpec checks a spec's grammar without arming anything — config
// validation, where the named point's package may not even be linked yet.
func ValidateSpec(spec string) error {
	_, err := parseSpec(spec)
	return err
}

// parseSpec parses "[count*]action[(arg)]".
func parseSpec(spec string) (*arming, error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return nil, errors.New("empty spec")
	}
	a := &arming{spec: s, limit: -1}
	if count, rest, ok := strings.Cut(s, "*"); ok {
		n, err := strconv.ParseInt(strings.TrimSpace(count), 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q in spec %q", count, spec)
		}
		a.limit = n
		s = strings.TrimSpace(rest)
	}
	action, arg := s, ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("unclosed argument in spec %q", spec)
		}
		action, arg = s[:i], s[i+1:len(s)-1]
	}
	switch action {
	case "error":
		a.action = ActionError
		a.msg = arg
	case "delay", "sleep":
		a.action = ActionDelay
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad delay %q in spec %q", arg, spec)
		}
		a.delay = d
	case "panic":
		a.action = ActionPanic
		a.msg = arg
	case "shortwrite":
		a.action = ActionShortWrite
		n, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad shortwrite allowance %q in spec %q", arg, spec)
		}
		a.bytes = n
	default:
		return nil, fmt.Errorf("unknown action %q in spec %q (want error|delay|panic|shortwrite)", action, spec)
	}
	return a, nil
}
