package fault

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// testPoint makes a uniquely named point per test so parallel tests and
// re-runs never share armed state.
func testPoint(t *testing.T) *Point {
	t.Helper()
	p := New("test." + t.Name())
	t.Cleanup(func() { p.armed.Store(nil) })
	return p
}

func TestDisabledInjectIsNil(t *testing.T) {
	p := testPoint(t)
	if err := p.Inject(); err != nil {
		t.Fatalf("disabled Inject = %v, want nil", err)
	}
	if p.Hits() != 0 {
		t.Fatalf("disabled point counted %d hits", p.Hits())
	}
}

func TestErrorAction(t *testing.T) {
	p := testPoint(t)
	if err := Enable(p.Name(), "error(boom)"); err != nil {
		t.Fatal(err)
	}
	err := p.Inject()
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("Inject = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), p.Name()) {
		t.Fatalf("error text %q missing message or site", err)
	}
	if p.Hits() != 1 {
		t.Fatalf("hits = %d, want 1", p.Hits())
	}
}

func TestCountBudgetSelfDisarms(t *testing.T) {
	p := testPoint(t)
	if err := Enable(p.Name(), "2*error"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := p.Inject(); err == nil {
			t.Fatalf("fire %d: want error", i)
		}
	}
	if err := p.Inject(); err != nil {
		t.Fatalf("after budget: Inject = %v, want nil", err)
	}
	if p.armed.Load() != nil {
		t.Fatal("exhausted point did not self-disarm")
	}
	if p.Hits() != 2 {
		t.Fatalf("hits = %d, want 2", p.Hits())
	}
}

func TestDelayAction(t *testing.T) {
	p := testPoint(t)
	if err := Enable(p.Name(), "1*delay(30ms)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := p.Inject(); err != nil {
		t.Fatalf("delay Inject = %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay slept %v, want >= 30ms", d)
	}
}

func TestPanicAction(t *testing.T) {
	p := testPoint(t)
	if err := Enable(p.Name(), "panic(kaboom)"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "kaboom") {
			t.Fatalf("panic value %v, want injected message", r)
		}
	}()
	p.Inject()
}

func TestShortWriteAction(t *testing.T) {
	p := testPoint(t)
	if err := Enable(p.Name(), "1*shortwrite(5)"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := p.Writer(&buf)
	if w == &buf {
		t.Fatal("armed Writer returned the raw writer")
	}
	n, err := w.Write([]byte("0123456789"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write = (%d, %v), want (5, ErrInjected)", n, err)
	}
	if buf.String() != "01234" {
		t.Fatalf("underlying got %q, want torn prefix", buf.String())
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-exhaustion write error = %v", err)
	}
	// Budget of 1 means the next Writer call is a pass-through again.
	if got := p.Writer(io.Discard); got != io.Discard {
		t.Fatal("second Writer call still wrapped")
	}
	// Inject on a shortwrite-armed point is a no-op (nil).
	if err := Enable(p.Name(), "shortwrite(0)"); err != nil {
		t.Fatal(err)
	}
	if err := p.Inject(); err != nil {
		t.Fatalf("shortwrite Inject = %v, want nil", err)
	}
}

func TestEnableUnknownAndBadSpecs(t *testing.T) {
	if err := Enable("no.such.point", "error"); err == nil {
		t.Fatal("unknown point accepted")
	}
	p := testPoint(t)
	for _, spec := range []string{"", "explode", "0*error", "-1*error", "delay(nope)", "delay", "shortwrite(x)", "error(unclosed"} {
		if err := Enable(p.Name(), spec); err == nil {
			t.Fatalf("bad spec %q accepted", spec)
		}
	}
}

func TestEnableSpecsListAndDisable(t *testing.T) {
	a := New("test.list.a")
	b := New("test.list.b")
	t.Cleanup(func() { a.armed.Store(nil); b.armed.Store(nil) })
	if err := EnableSpecs("test.list.a=error(x); test.list.b = 3*delay(1ms)"); err != nil {
		t.Fatal(err)
	}
	if a.armed.Load() == nil || b.armed.Load() == nil {
		t.Fatal("list spec did not arm both points")
	}
	var st *Status
	for _, s := range List() {
		if s.Name == "test.list.b" {
			st = &s
			break
		}
	}
	if st == nil || st.Spec != "3*delay(1ms)" {
		t.Fatalf("List status = %+v, want armed spec", st)
	}
	if !Disable("test.list.a") {
		t.Fatal("Disable unknown")
	}
	if a.armed.Load() != nil {
		t.Fatal("Disable left point armed")
	}
	if err := EnableSpecs("garbage"); err == nil {
		t.Fatal("malformed list accepted")
	}
	if err := EnableSpecs(""); err != nil {
		t.Fatalf("empty list = %v", err)
	}
}

func TestNewIsIdempotent(t *testing.T) {
	p1 := New("test.idempotent")
	p2 := New("test.idempotent")
	if p1 != p2 {
		t.Fatal("New split one site into two points")
	}
}

// BenchmarkInjectDisabled pins the zero-overhead contract: a disabled
// failpoint on a hot path is one atomic load and zero allocations.
func BenchmarkInjectDisabled(b *testing.B) {
	p := New("bench.disabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Inject(); err != nil {
			b.Fatal(err)
		}
	}
}
