package forward

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/netflow"
	"repro/internal/stream"
)

// testWorker is one in-process downstream correlator with real listening
// sockets, standing in for a worker process.
type testWorker struct {
	name string
	corr *core.Correlator
	sink *core.CountingSink
	node Node

	cancel context.CancelFunc
	done   chan error
}

func startWorker(t *testing.T, name string) *testWorker {
	t.Helper()
	dnsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nfConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := core.NewCountingSink()
	c := core.New(core.DefaultConfig(),
		core.WithSink(sink),
		core.WithSources(stream.NewDNSListener(dnsLn), stream.NewFlowUDPSource(nfConn)),
	)
	ctx, cancel := context.WithCancel(context.Background())
	w := &testWorker{
		name: name,
		corr: c,
		sink: sink,
		node: Node{
			Name:     name,
			FlowAddr: nfConn.LocalAddr().String(),
			DNSAddr:  dnsLn.Addr().String(),
		},
		cancel: cancel,
		done:   make(chan error, 1),
	}
	go func() { w.done <- c.Run(ctx) }()
	return w
}

func (w *testWorker) stop(t *testing.T) {
	t.Helper()
	w.cancel()
	if err := <-w.done; err != nil {
		t.Fatalf("worker %s: Run = %v", w.name, err)
	}
}

// waitStats polls until cond sees the wanted totals or the deadline hits.
func waitStats(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("%s: condition never met", what)
		case <-time.After(time.Millisecond):
		}
	}
}

// TestRouterFanout drives the full distributed tier in-process: a router
// fed through its stream.Ingest surface fans DNS and flows out over real
// loopback sockets to two worker correlators, and the union of the
// workers' attributions must equal a single-process oracle run over the
// same records — the linear-scale-out correctness claim in miniature.
func TestRouterFanout(t *testing.T) {
	w1 := startWorker(t, "w1")
	w2 := startWorker(t, "w2")
	workers := []*testWorker{w1, w2}

	r, err := NewRouter(Config{Nodes: []Node{w1.node, w2.node}})
	if err != nil {
		t.Fatal(err)
	}

	// A service universe with CNAME chains (name -> edge -> address) so the
	// broadcast path is load-bearing: a worker can only resolve a chain it
	// holds completely. Every 8th service is IPv6 to exercise the v6
	// template on the flow wire.
	const services = 64
	type svc struct {
		name, edge string
		addr       netip.Addr
	}
	svcs := make([]svc, services)
	var dns []stream.DNSRecord
	now := time.Now()
	for i := range svcs {
		s := svc{
			name: fmt.Sprintf("svc%02d.example", i),
			edge: fmt.Sprintf("edge%02d.cdn.example", i),
		}
		rtype := dnswire.TypeA
		if i%8 == 7 {
			s.addr = netip.AddrFrom16([16]byte{0x20, 0x01, 0xd, 0xb8, 15: byte(i + 1)})
			rtype = dnswire.TypeAAAA
		} else {
			s.addr = netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)})
		}
		svcs[i] = s
		dns = append(dns,
			stream.DNSRecord{Timestamp: now, Query: s.name, RType: dnswire.TypeCNAME, TTL: 300, Answer: s.edge},
			stream.DNSRecord{Timestamp: now, Query: s.edge, RType: rtype, TTL: 300, Addr: s.addr},
		)
	}

	if got := r.OfferDNSBatch(dns); got != len(dns) {
		t.Fatalf("router accepted %d of %d DNS records", got, len(dns))
	}
	// Every CNAME is broadcast to both workers, every A/AAAA lands on its
	// one owner: 2*services CNAME copies + services addressed records.
	wantDNS := uint64(2*services + services)
	waitStats(t, "DNS fanout", func() bool {
		return w1.corr.Stats().DNSRecords+w2.corr.Stats().DNSRecords == wantDNS
	})

	var flows []netflow.FlowRecord
	for i, s := range svcs {
		dst := netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
		if !s.addr.Is4() {
			dst = netip.AddrFrom16([16]byte{0xfd, 15: byte(i + 1)})
		}
		// Several flows per service so per-name byte counts are non-trivial.
		for j := 0; j < 3; j++ {
			flows = append(flows, netflow.FlowRecord{
				Timestamp: now, SrcIP: s.addr, DstIP: dst,
				SrcPort: 443, DstPort: uint16(50000 + j), Proto: netflow.ProtoTCP,
				Packets: 10, Bytes: uint64(1000 + i),
			})
		}
	}
	if got := r.OfferFlowBatch(flows); got != len(flows) {
		t.Fatalf("router accepted %d of %d flows", got, len(flows))
	}
	waitStats(t, "flow fanout", func() bool {
		return w1.corr.Stats().Flows+w2.corr.Stats().Flows == uint64(len(flows))
	})

	// Per-node zero-loss: every accepted record is enqueued, none dropped
	// or shed (the Offered == Enqueued + Dropped + Sampled ledger with the
	// loss terms pinned to zero).
	for _, w := range workers {
		st := w.corr.Stats()
		if st.FillQueue.Dropped+st.LookQueue.Dropped+st.WriteQueue.Dropped != 0 ||
			st.FillQueue.Sampled+st.LookQueue.Sampled+st.WriteQueue.Sampled != 0 {
			t.Fatalf("worker %s: accepted-record loss: %+v", w.name, st)
		}
	}
	w1.stop(t)
	w2.stop(t)

	// Oracle: one correlator, same records, synchronous replay.
	oracle := core.New(core.DefaultConfig())
	oracleSink := core.NewCountingSink()
	for _, rec := range dns {
		oracle.IngestDNS(rec)
	}
	for _, fr := range flows {
		oracleSink.Add(oracle.CorrelateFlow(fr))
	}

	merged := map[string]uint64{}
	for _, w := range workers {
		for name, b := range w.sink.Bytes() {
			merged[name] += b
		}
	}
	want := oracleSink.Bytes()
	if len(merged) != len(want) {
		t.Fatalf("cluster resolved %d names, oracle %d\ncluster: %v\noracle:  %v", len(merged), len(want), merged, want)
	}
	for name, b := range want {
		if merged[name] != b {
			t.Fatalf("bytes[%q] = %d across cluster, oracle %d", name, merged[name], b)
		}
	}
	if _, miss := merged[""]; miss {
		t.Fatalf("cluster had unattributed flows: %v", merged)
	}

	// Router-side ledger: every record accounted, nothing dropped or spilled.
	var fsum, dsum, csum uint64
	for _, st := range r.Stats() {
		fsum += st.Flows
		dsum += st.DNS
		csum += st.DNSCname
		if st.DNSDropped != 0 || st.Retry.Dropped != 0 || st.Retry.SpillDepth != 0 {
			t.Fatalf("node %s: drops on a healthy cluster: %+v", st.Node.Name, st)
		}
	}
	if fsum != uint64(len(flows)) || dsum != services || csum != 2*services {
		t.Fatalf("router ledger: flows=%d dns=%d cname=%d", fsum, dsum, csum)
	}

	// Both workers must have received traffic, or the "distribution" was a
	// single-node degenerate case proving nothing.
	if w1.corr.Stats().Flows == 0 || w2.corr.Stats().Flows == 0 {
		t.Fatalf("degenerate split: w1=%d w2=%d flows", w1.corr.Stats().Flows, w2.corr.Stats().Flows)
	}
}

// TestRouterAbsorbsDeadWorker: flows routed at a node whose socket is gone
// land in the node's RetrySink spill queue — accounted backpressure, not
// silent loss and not an ingest stall.
func TestRouterAbsorbsDeadWorker(t *testing.T) {
	// A socket we open and immediately close: the router's connected UDP
	// socket gets ICMP-driven write errors for it.
	tmp, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := tmp.LocalAddr().String()
	tmp.Close()
	tcpTmp, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadTCP := tcpTmp.Addr().String()
	tcpTmp.Close()

	r, err := NewRouter(Config{
		Nodes: []Node{{Name: "dead", FlowAddr: deadAddr, DNSAddr: deadTCP}},
	})
	if err != nil {
		t.Fatal(err)
	}
	flows := make([]netflow.FlowRecord, 256)
	for i := range flows {
		flows[i] = netflow.FlowRecord{
			SrcIP: netip.AddrFrom4([4]byte{192, 0, 2, byte(i)}),
			DstIP: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
			Bytes: 100,
		}
	}
	// The offer itself must accept (absorb semantics) and must not block.
	for i := 0; i < 4; i++ {
		if got := r.OfferFlowBatch(flows); got != len(flows) {
			t.Fatalf("offer %d: accepted %d", i, got)
		}
	}
	st := r.Stats()[0]
	// Connected-UDP error delivery is asynchronous (the ICMP answer fails
	// the NEXT write), so at least the later batches must have spilled.
	if st.Retry.Spilled == 0 && st.Retry.Delivered == uint64(4*len(flows)) {
		t.Fatalf("no spill against a dead worker: %+v", st.Retry)
	}
	if got := r.OfferDNSBatch([]stream.DNSRecord{{Query: "a.example", RType: dnswire.TypeCNAME, Answer: "b.example"}}); got != 0 {
		t.Fatalf("DNS against dead node accepted %d", got)
	}
	if st := r.Stats()[0]; st.DNSDropped == 0 {
		t.Fatalf("DNS drop not accounted: %+v", st)
	}
}
