// Package forward implements the FlowDNS distributed correlation tier: a
// router stage that consistent-hashes NetFlow records and DNS answers by
// the correlator's shared IP-key hash (core.IPHash — the same hash that
// picks lanes and labels store splits inside one process) and fans them
// out to N downstream correlator processes over the existing wire
// encodings, plus the shard-handoff machinery that moves per-key-range
// store state between nodes when the ring changes.
//
// The invariant the whole tier rests on: a flow record and the DNS fills
// that answer it hash identically (flows by their lookup address, A/AAAA
// answers by the answer address — the correlator joins exactly those two),
// so partitioning both by ring ownership of that one hash keeps every join
// local to one worker. CNAME records carry no address; they are broadcast
// to every node so each worker's NAME-CNAME chain walk stays complete.
package forward

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cmap"
)

// DefaultVNodes is the virtual-node count per physical node. 64 points per
// node keeps the largest/smallest ownership arc within a few percent of
// each other for small clusters while a ring rebuild stays trivially cheap.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over the 32-bit IP-key hash space. Each
// node contributes vnodes points placed by hashing "name#i" labels; a key
// is owned by the first point clockwise from its hash. Point positions
// depend only on the node's name and the vnode index — never on the other
// nodes — which is what makes membership changes minimal: adding a node
// moves to it exactly the arcs its new points capture, and removing one
// reassigns only the arcs it owned. Ties (two nodes hashing a point to the
// same position) break by name, so two rings built from the same
// (names, vnodes) spec agree on every owner regardless of the order the
// names were listed in — the router and a worker's handoff restore can
// each build the ring independently and reach identical placement.
type Ring struct {
	names  []string // sorted, unique
	vnodes int
	points []ringPoint // sorted by (hash, node name)
}

type ringPoint struct {
	hash uint32
	node uint16 // index into names
}

// NewRing builds a ring from node names. vnodes <= 0 takes DefaultVNodes.
func NewRing(names []string, vnodes int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("forward: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("forward: empty node name")
		}
		if strings.ContainsAny(n, ",=/") {
			return nil, fmt.Errorf("forward: node name %q contains a reserved separator", n)
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("forward: duplicate node name %q", n)
		}
	}
	r := &Ring{names: sorted, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(sorted)*vnodes)
	for ni, name := range sorted {
		for v := 0; v < vnodes; v++ {
			label := fmt.Sprintf("%s#%d", name, v)
			r.points = append(r.points, ringPoint{hash: cmap.Hash(label), node: uint16(ni)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.names[r.points[i].node] < r.names[r.points[j].node]
	})
	return r, nil
}

// Owner returns the index (into Nodes) of the node owning hash h.
func (r *Ring) Owner(h uint32) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise from the top of the space
	}
	return int(r.points[i].node)
}

// OwnerName returns the name of the node owning hash h.
func (r *Ring) OwnerName(h uint32) string { return r.names[r.Owner(h)] }

// Nodes returns the ring's node names in canonical (sorted) order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.names...) }

// VNodes returns the virtual-node count per node.
func (r *Ring) VNodes() int { return r.vnodes }

// Index returns the position of name in Nodes, or -1.
func (r *Ring) Index(name string) int {
	for i, n := range r.names {
		if n == name {
			return i
		}
	}
	return -1
}

// Owns returns the ownership predicate for one node — the owns function
// WriteSnapshotOwned and DropOwned take during a handoff. It returns an
// error when name is not a ring member, so a typo in a handoff request
// fails loudly instead of exporting an empty range.
func (r *Ring) Owns(name string) (func(h uint32) bool, error) {
	idx := r.Index(name)
	if idx < 0 {
		return nil, fmt.Errorf("forward: node %q not in ring %v", name, r.names)
	}
	return func(h uint32) bool { return r.Owner(h) == idx }, nil
}
