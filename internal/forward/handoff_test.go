package forward

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/netflow"
	"repro/internal/stream"
)

// fillCorrelator seeds a correlator with n CNAME-chained services and
// returns their addresses.
func fillCorrelator(c *core.Correlator, n int) []netip.Addr {
	now := time.Now()
	addrs := make([]netip.Addr, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("svc%03d.example", i)
		edge := fmt.Sprintf("edge%03d.cdn.example", i)
		addr := netip.AddrFrom4([4]byte{203, 0, byte(i >> 8), byte(i)})
		addrs[i] = addr
		c.IngestDNS(stream.DNSRecord{Timestamp: now, Query: name, RType: dnswire.TypeCNAME, TTL: 600, Answer: edge})
		c.IngestDNS(stream.DNSRecord{Timestamp: now, Query: edge, RType: dnswire.TypeA, TTL: 600, Addr: addr})
	}
	return addrs
}

func lookupName(c *core.Correlator, addr netip.Addr) string {
	cf := c.CorrelateFlow(netflow.FlowRecord{
		Timestamp: time.Now(), SrcIP: addr,
		DstIP: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Bytes: 1,
	})
	return cf.Name
}

// TestHandoffPush drives a full rebalance step over HTTP: node w1 holds
// the whole key space, the ring grows to {w1, w2}, and a push handoff
// moves exactly w2's range to the new node — after which each address
// resolves on its ring owner and ONLY there, with no entry lost and no
// entry duplicated across the IP-NAME split.
func TestHandoffPush(t *testing.T) {
	old := core.New(core.DefaultConfig())
	neu := core.New(core.DefaultConfig())
	addrs := fillCorrelator(old, 512)

	oldSrv := httptest.NewServer(NewHandoff(old).Handler())
	defer oldSrv.Close()
	neuSrv := httptest.NewServer(NewHandoff(neu).Handler())
	defer neuSrv.Close()

	ring, err := NewRing([]string{"w1", "w2"}, 0)
	if err != nil {
		t.Fatal(err)
	}

	before := old.Stats().IPNameEntries
	resp, err := http.Post(oldSrv.URL+"/admin/handoff?nodes=w1,w2&node=w2&to="+neuSrv.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("push: %s", resp.Status)
	}
	resp.Body.Close()

	// Placement after the handoff: each address answers on its owner and
	// misses on the other node — the drain really removed the old copy.
	movedSeen := 0
	for i, addr := range addrs {
		name := fmt.Sprintf("svc%03d.example", i)
		owner := ring.OwnerName(core.IPHashAddr(addr))
		onOld, onNew := lookupName(old, addr), lookupName(neu, addr)
		switch owner {
		case "w1":
			if onOld != name || onNew != "" {
				t.Fatalf("addr %s (owner w1): old=%q new=%q", addr, onOld, onNew)
			}
		case "w2":
			movedSeen++
			if onNew != name || onOld != "" {
				t.Fatalf("addr %s (owner w2): old=%q new=%q", addr, onOld, onNew)
			}
		}
	}
	if movedSeen == 0 {
		t.Fatal("ring change moved nothing; test proves nothing")
	}

	// Conservation across the IP-NAME split: entries moved, none created
	// or destroyed. (Both sides also hold the full CNAME family — the old
	// node kept it, the import brought it to the new one.)
	afterOld, afterNew := old.Stats().IPNameEntries, neu.Stats().IPNameEntries
	if afterOld+afterNew != before {
		t.Fatalf("entries not conserved: %d -> %d + %d", before, afterOld, afterNew)
	}
	if neu.Stats().NameCnameEntries != old.Stats().NameCnameEntries {
		t.Fatalf("CNAME family not replicated: old=%d new=%d",
			old.Stats().NameCnameEntries, neu.Stats().NameCnameEntries)
	}
}

// TestHandoffExportImport exercises the two-step form (pull a drained
// export, apply it) and the validation failures around it.
func TestHandoffExportImport(t *testing.T) {
	old := core.New(core.DefaultConfig())
	neu := core.New(core.DefaultConfig())
	fillCorrelator(old, 128)

	oldSrv := httptest.NewServer(NewHandoff(old).Handler())
	defer oldSrv.Close()
	neuSrv := httptest.NewServer(NewHandoff(neu).Handler())
	defer neuSrv.Close()

	before := old.Stats().IPNameEntries
	resp, err := http.Get(oldSrv.URL + "/admin/handoff/export?nodes=w1,w2&node=w2&drain=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	imp, err := http.Post(neuSrv.URL+"/admin/handoff/import", "application/octet-stream", resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	imp.Body.Close()
	if imp.StatusCode != http.StatusOK {
		t.Fatalf("import: %s", imp.Status)
	}
	if got := old.Stats().IPNameEntries + neu.Stats().IPNameEntries; got != before {
		t.Fatalf("entries not conserved: %d -> %d", before, got)
	}
	if neu.Stats().IPNameEntries == 0 {
		t.Fatal("import landed nothing")
	}

	for _, bad := range []string{
		"/admin/handoff/export",                           // no ring spec
		"/admin/handoff/export?nodes=w1&node=w9",          // node not a member
		"/admin/handoff/export?nodes=w1&node=w1&vnodes=x", // bad vnodes
	} {
		r, err := http.Get(oldSrv.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s = %s, want 400", bad, r.Status)
		}
	}
	// Garbage import must be rejected, not half-applied silently.
	r, err := http.Post(neuSrv.URL+"/admin/handoff/import", "application/octet-stream",
		strings.NewReader("this is not a snapshot stream"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage import = %s, want 400", r.Status)
	}
}
