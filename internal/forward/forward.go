package forward

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/metrics"
	"repro/internal/netflow"
	"repro/internal/stream"
)

// Node is one downstream correlator process: a name (its ring identity)
// plus the two wire addresses the router ships to — NetFlow v9 over UDP
// and framed DNS responses over TCP.
type Node struct {
	Name     string `json:"name"`
	FlowAddr string `json:"flow_addr"`
	DNSAddr  string `json:"dns_addr"`
}

// ParseNodes parses the -forward-to flag grammar: a comma-separated list
// of "name=flowHost:port/dnsHost:port" entries.
func ParseNodes(spec string) ([]Node, error) {
	var out []Node
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addrs, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("forward: node %q: want name=flowAddr/dnsAddr", part)
		}
		flowAddr, dnsAddr, ok := strings.Cut(addrs, "/")
		if !ok || flowAddr == "" || dnsAddr == "" {
			return nil, fmt.Errorf("forward: node %q: want name=flowAddr/dnsAddr", part)
		}
		out = append(out, Node{Name: name, FlowAddr: flowAddr, DNSAddr: dnsAddr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("forward: no nodes in %q", spec)
	}
	return out, nil
}

// Config tunes a Router.
type Config struct {
	// Nodes lists the downstream workers. Required, at least one.
	Nodes []Node
	// VNodes is the virtual-node count per node; 0 = DefaultVNodes.
	VNodes int
	// Key selects which flow address routes the record — it must match the
	// workers' lookup key, so a flow lands on the node holding the fills
	// for the address the worker will resolve. LookupBoth has no single
	// routing address; the router uses the source, so destination-side
	// fallback hits degrade to local misses on the wrong node.
	Key core.LookupKey
	// FlowBatch is the record count per v9 datagram; 0 = 32.
	FlowBatch int
	// SourceID stamps the v9 export headers; 0 = 1.
	SourceID uint32
	// Retry tunes the per-node core.RetrySink wrapping the flow path. The
	// zero value takes forwarding-tuned defaults: no per-attempt timeout
	// or in-line retries (a UDP write fails fast or not at all; blocking
	// the ingest path on backoff would stall every node behind one), so a
	// node outage degrades to the bounded spill queue, replayed on the
	// next write once the node recovers.
	Retry core.RetryConfig
	// SpillDir, when non-empty, gives each node's RetrySink an on-disk
	// spill file (SpillDir/<name>.spill) so a long worker outage survives
	// a router restart. Empty keeps the backlog in memory only.
	SpillDir string
}

// DefaultFlowBatch is the per-datagram record cap: 32 standard-template
// records stay well under one loopback/ethernet MTU's worth of payload
// while amortizing the 20-byte header and template set.
const DefaultFlowBatch = 32

// nodeCounters is the per-node atomic accounting block.
type nodeCounters struct {
	flows      atomic.Uint64 // flow records routed to this node
	dns        atomic.Uint64 // DNS records routed (addressed) to this node
	dnsCname   atomic.Uint64 // CNAME records broadcast to this node
	dnsDropped atomic.Uint64 // DNS records lost after a failed send+reconnect
}

// NodeStats is one node's health snapshot: routed volume, DNS drops, and
// the flow path's RetrySink ledger (delivery, spill depth — the
// backpressure signal — and drops against full spill bounds).
type NodeStats struct {
	Node       Node            `json:"node"`
	Flows      uint64          `json:"flows"`
	DNS        uint64          `json:"dns"`
	DNSCname   uint64          `json:"dns_cname"`
	DNSDropped uint64          `json:"dns_dropped"`
	Retry      core.RetryStats `json:"retry"`
}

// routerNode is one downstream worker from the router's side.
type routerNode struct {
	node  Node
	retry *core.RetrySink // wraps the flow path's v9/UDP sink
	dns   *dnsSender
	count nodeCounters
}

// Router consistent-hashes records onto worker nodes and re-emits them
// over the NetFlow/DNS wire encodings. It implements stream.Ingest, so the
// existing sources (DNS listeners, NetFlow sockets) feed it exactly as
// they would feed a local correlator; offers are safe for concurrent use
// by any number of sources. Flow fanout rides a per-node core.RetrySink,
// so a worker outage degrades to accounted spill-and-replay, never to an
// ingest stall.
type Router struct {
	ring      *Ring
	nodes     []*routerNode // indexed like ring.Nodes()
	key       core.LookupKey
	flowBatch int

	stagePool sync.Pool // *routeStage

	// base is the context offers hand to the per-node sinks; Run swaps in
	// its own. Offers never block on it (the retry sinks are tuned not to
	// wait), it only propagates cancellation metadata.
	base atomic.Pointer[context.Context]
}

// routeStage is the reusable per-offer partition buffer.
type routeStage struct {
	perNode [][]core.CorrelatedFlow
	dns     [][]stream.DNSRecord
	bcast   []stream.DNSRecord
}

// NewRouter connects to every node and builds the ring. Flow sockets are
// connected UDP (so a dead worker surfaces as an ICMP-driven write error
// the RetrySink can account); DNS connections are dialed lazily on first
// send and redialed after failures.
func NewRouter(cfg Config) (*Router, error) {
	names := make([]string, len(cfg.Nodes))
	byName := make(map[string]Node, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		names[i] = n.Name
		byName[n.Name] = n
	}
	ring, err := NewRing(names, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.FlowBatch <= 0 {
		cfg.FlowBatch = DefaultFlowBatch
	}
	if cfg.SourceID == 0 {
		cfg.SourceID = 1
	}
	retryCfg := cfg.Retry
	if retryCfg == (core.RetryConfig{}) {
		retryCfg = core.RetryConfig{MaxRetries: -1, Timeout: -1}
	}
	r := &Router{ring: ring, key: cfg.Key, flowBatch: cfg.FlowBatch}
	bg := context.Background()
	r.base.Store(&bg)
	// Node order follows the ring's canonical (sorted) order so Owner's
	// index addresses r.nodes directly.
	for _, name := range ring.Nodes() {
		n := byName[name]
		conn, err := net.Dial("udp", n.FlowAddr)
		if err != nil {
			return nil, fmt.Errorf("forward: node %s flow dial %s: %w", n.Name, n.FlowAddr, err)
		}
		rc := retryCfg
		if cfg.SpillDir != "" {
			rc.SpillPath = cfg.SpillDir + "/" + n.Name + ".spill"
		}
		fs := &flowSink{conn: conn, sourceID: cfg.SourceID, batch: cfg.FlowBatch, now: time.Now}
		rs, err := core.NewRetrySink(fs, rc)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("forward: node %s: %w", n.Name, err)
		}
		r.nodes = append(r.nodes, &routerNode{
			node:  n,
			retry: rs,
			dns:   &dnsSender{addr: n.DNSAddr},
		})
	}
	r.stagePool.New = func() any {
		return &routeStage{
			perNode: make([][]core.CorrelatedFlow, len(r.nodes)),
			dns:     make([][]stream.DNSRecord, len(r.nodes)),
		}
	}
	return r, nil
}

// routeAddr returns the address whose hash places fr on the ring: the same
// address the worker's LookUp stage will resolve.
func (r *Router) routeAddr(fr *netflow.FlowRecord) netip.Addr {
	if r.key == core.LookupDestination {
		return fr.DstIP
	}
	return fr.SrcIP
}

// OfferFlow implements stream.Ingest.
func (r *Router) OfferFlow(fr netflow.FlowRecord) bool {
	return r.OfferFlowBatch([]netflow.FlowRecord{fr}) == 1
}

// OfferFlowBatch partitions a flow batch by ring ownership of each
// record's routing address and hands every node's share to its retry-
// wrapped v9 sink. The retry sink absorbs outages (spill, replay, bounded
// drop — all accounted per node), so the offer itself accepts every
// record; cluster-level loss shows up in NodeStats, not here.
func (r *Router) OfferFlowBatch(frs []netflow.FlowRecord) int {
	if len(frs) == 0 {
		return 0
	}
	st := r.stagePool.Get().(*routeStage)
	for i := range frs {
		h := core.IPHashAddr(r.routeAddr(&frs[i]))
		n := r.ring.Owner(h)
		st.perNode[n] = append(st.perNode[n], core.CorrelatedFlow{Flow: frs[i]})
	}
	ctx := *r.base.Load()
	for n := range st.perNode {
		if len(st.perNode[n]) == 0 {
			continue
		}
		node := r.nodes[n]
		node.retry.WriteBatch(ctx, st.perNode[n]) // absorb semantics: never errors
		node.count.flows.Add(uint64(len(st.perNode[n])))
		st.perNode[n] = st.perNode[n][:0]
	}
	r.stagePool.Put(st)
	return len(frs)
}

// OfferDNS implements stream.Ingest.
func (r *Router) OfferDNS(rec stream.DNSRecord) bool {
	return r.OfferDNSBatch([]stream.DNSRecord{rec}) == 1
}

// OfferDNSBatch partitions a DNS batch: A/AAAA records route by the answer
// address (the key their fill will be stored under), records without a
// typed address — CNAMEs above all — are broadcast to every node, keeping
// each worker's NAME-CNAME chain walk complete. Returns how many records
// were accepted; a record counts as dropped only if every node it was
// destined for rejected it.
func (r *Router) OfferDNSBatch(recs []stream.DNSRecord) int {
	if len(recs) == 0 {
		return 0
	}
	st := r.stagePool.Get().(*routeStage)
	st.bcast = st.bcast[:0]
	for i := range recs {
		rec := recs[i]
		typeAnswerAddr(&rec)
		if rec.Addr.IsValid() {
			n := r.ring.Owner(core.IPHashAddr(rec.Addr))
			st.dns[n] = append(st.dns[n], rec)
		} else {
			st.bcast = append(st.bcast, rec)
		}
	}
	accepted := 0
	for n := range st.dns {
		node := r.nodes[n]
		addressed := len(st.dns[n])
		if len(st.bcast) > 0 {
			st.dns[n] = append(st.dns[n], st.bcast...)
		}
		if len(st.dns[n]) == 0 {
			continue
		}
		sent := len(st.dns[n])
		if err := node.dns.send(st.dns[n]); err != nil {
			node.count.dnsDropped.Add(uint64(sent))
			sent = 0
		}
		node.count.dns.Add(uint64(min(sent, addressed)))
		if sent > addressed {
			node.count.dnsCname.Add(uint64(sent - addressed))
		}
		// Addressed records are accepted when their one owner took them;
		// broadcasts count once, below.
		accepted += min(sent, addressed)
		st.dns[n] = st.dns[n][:0]
	}
	// A broadcast record is accepted if at least one node took it; with
	// every node down they are lost and counted per node above.
	if len(st.bcast) > 0 {
		anyUp := false
		for _, node := range r.nodes {
			if node.dns.healthy() {
				anyUp = true
				break
			}
		}
		if anyUp {
			accepted += len(st.bcast)
		}
	}
	r.stagePool.Put(st)
	return accepted
}

// typeAnswerAddr mirrors the correlator's offer-path normalization: an
// A/AAAA record whose producer only set the textual answer gets its typed
// address materialized, so routing keys on the same bytes the worker's
// fill will.
func typeAnswerAddr(rec *stream.DNSRecord) {
	if rec.Addr.IsValid() || rec.Answer == "" {
		return
	}
	if rec.RType == dnswire.TypeA || rec.RType == dnswire.TypeAAAA {
		if addr, err := netip.ParseAddr(rec.Answer); err == nil {
			rec.Addr = addr
		}
	}
}

var _ stream.Ingest = (*Router)(nil)

// Ring returns the router's ring.
func (r *Router) Ring() *Ring { return r.ring }

// Stats snapshots every node's accounting, in ring order.
func (r *Router) Stats() []NodeStats {
	out := make([]NodeStats, len(r.nodes))
	for i, n := range r.nodes {
		out[i] = NodeStats{
			Node:       n.node,
			Flows:      n.count.flows.Load(),
			DNS:        n.count.dns.Load(),
			DNSCname:   n.count.dnsCname.Load(),
			DNSDropped: n.count.dnsDropped.Load(),
			Retry:      n.retry.Stats(),
		}
	}
	return out
}

// Run drives the router: every source feeds the ring until ctx is
// cancelled or all sources finish, then the per-node sinks flush and
// close. Source errors are logged and terminate the run, mirroring the
// correlator's "a dead stream must not leave the process running blind".
func (r *Router) Run(ctx context.Context, sources ...stream.Source) error {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	r.base.Store(&rctx)

	errc := make(chan error, len(sources))
	var wg sync.WaitGroup
	for _, src := range sources {
		wg.Add(1)
		go func(src stream.Source) {
			defer wg.Done()
			if err := src.Run(rctx, r); err != nil {
				errc <- err
				cancel()
			}
		}(src)
	}
	wg.Wait()
	var srcErr error
	select {
	case srcErr = <-errc:
	default:
	}
	var errs []string
	if srcErr != nil && ctx.Err() == nil {
		errs = append(errs, srcErr.Error())
	}
	for _, n := range r.nodes {
		n.retry.Flush()
		if err := n.retry.Close(); err != nil {
			log.Printf("forward: node %s: %v", n.node.Name, err)
		}
		n.dns.close()
	}
	if len(errs) > 0 {
		return fmt.Errorf("forward: %s", strings.Join(errs, "; "))
	}
	return nil
}

// --- flow path: per-node v9/UDP sink under the retry wrapper -------------

// flowSink encodes correlated-flow batches (only the embedded raw flow is
// populated on this path) into NetFlow v9 datagrams over a connected UDP
// socket. It is the core.Sink a node's RetrySink wraps, so it inherits the
// wrapper's serialization — no internal locking needed — and its buffers
// are reused across batches: after warmup the encode+write path allocates
// nothing. Records are split by address family because the two standard
// templates are family-specific; each family flushes in FlowBatch-sized
// datagrams.
type flowSink struct {
	conn     net.Conn
	sourceID uint32
	seq      uint32
	batch    int
	buf      []byte
	v4, v6   []netflow.FlowRecord
	now      func() time.Time
}

func (s *flowSink) WriteBatch(_ context.Context, batch []core.CorrelatedFlow) error {
	s.v4, s.v6 = s.v4[:0], s.v6[:0]
	for i := range batch {
		fr := &batch[i].Flow
		if fr.SrcIP.Is4() && fr.DstIP.Is4() {
			s.v4 = append(s.v4, *fr)
		} else {
			s.v6 = append(s.v6, *fr)
		}
	}
	if err := s.writeChunks(s.v4, netflow.StandardTemplate()); err != nil {
		return err
	}
	return s.writeChunks(s.v6, netflow.StandardTemplateV6())
}

func (s *flowSink) writeChunks(recs []netflow.FlowRecord, t netflow.Template) error {
	for len(recs) > 0 {
		n := min(len(recs), s.batch)
		chunk := recs[:n]
		recs = recs[n:]
		ts := chunk[0].Timestamp
		if ts.IsZero() {
			ts = s.now()
		}
		var err error
		s.buf, err = netflow.AppendV9(s.buf[:0], netflow.V9Header{
			SequenceNum: s.seq + 1,
			SourceID:    s.sourceID,
			UnixSecs:    uint32(ts.Unix()),
		}, t, chunk)
		if err != nil {
			return err
		}
		if _, err := s.conn.Write(s.buf); err != nil {
			return err
		}
		s.seq++
	}
	return nil
}

func (s *flowSink) Flush() error { return nil }
func (s *flowSink) Close() error { return s.conn.Close() }

// --- DNS path: per-node framed-response TCP sender -----------------------

// dnsSender re-emits DNS records to one node as framed DNS response
// messages: each batch becomes one message whose answers are the records
// verbatim (Name = the record's query, typed address or CNAME target), so
// the worker's FlattenResponseInto reproduces the exact records the router
// saw, re-stamped with the worker's clock. Dialing is lazy and a failed
// send redials once before giving up on the batch.
type dnsSender struct {
	addr string

	mu     sync.Mutex
	conn   net.Conn
	sink   *stream.DNSTCPSink
	msg    dnswire.Message
	id     uint16
	closed bool
	// down marks the last send outcome for the broadcast-accept heuristic.
	down atomic.Bool
}

// maxAnswers bounds answers per message; a frame is capped at 64 KiB and
// DNS names run long, so chunking keeps frames comfortably under it.
const maxAnswers = 64

func (d *dnsSender) send(recs []stream.DNSRecord) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("forward: dns sender closed")
	}
	for len(recs) > 0 {
		n := min(len(recs), maxAnswers)
		if err := d.sendMsgLocked(recs[:n]); err != nil {
			d.down.Store(true)
			return err
		}
		recs = recs[n:]
	}
	d.down.Store(false)
	return nil
}

func (d *dnsSender) sendMsgLocked(recs []stream.DNSRecord) error {
	d.id++
	m := &d.msg
	m.Header = dnswire.Header{ID: d.id, Response: true, RCode: dnswire.RCodeNoError}
	m.Questions = m.Questions[:0]
	m.Answers = m.Answers[:0]
	m.Authority, m.Additional = nil, nil
	for i := range recs {
		rec := &recs[i]
		ans := dnswire.Record{
			Name:  rec.Query,
			Type:  rec.RType,
			Class: dnswire.ClassIN,
			TTL:   rec.TTL,
		}
		if rec.Addr.IsValid() {
			ans.Addr = rec.Addr
		} else {
			ans.Target = rec.Answer
		}
		m.Answers = append(m.Answers, ans)
	}
	if err := d.writeLocked(m); err == nil {
		return nil
	}
	// One redial: the worker may have restarted between batches.
	d.resetLocked()
	return d.writeLocked(m)
}

func (d *dnsSender) writeLocked(m *dnswire.Message) error {
	if d.conn == nil {
		conn, err := net.DialTimeout("tcp", d.addr, 5*time.Second)
		if err != nil {
			return err
		}
		d.conn = conn
		d.sink = stream.NewDNSTCPSink(conn)
	}
	if err := d.sink.Send(m); err != nil {
		return err
	}
	return nil
}

func (d *dnsSender) resetLocked() {
	if d.conn != nil {
		d.conn.Close()
		d.conn = nil
		d.sink = nil
	}
}

func (d *dnsSender) healthy() bool { return !d.down.Load() }

func (d *dnsSender) close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.resetLocked()
	d.closed = true
}

// --- admin: ring status + metrics ----------------------------------------

// ringStatus is the GET /ring wire shape.
type ringStatus struct {
	VNodes int         `json:"vnodes"`
	Nodes  []NodeStats `json:"nodes"`
}

// RingHandler serves the router's cluster view: GET returns the ring spec
// and every node's routed volume, DNS drops, and retry/spill ledger — the
// per-node health and backpressure surface.
func (r *Router) RingHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(ringStatus{VNodes: r.ring.VNodes(), Nodes: r.Stats()})
	})
}

// MetricsContributor exports per-node fanout counters for /metrics,
// matching the daemon's per-sink RetrySink metric names so dashboards see
// one ledger shape everywhere.
func (r *Router) MetricsContributor() func(*metrics.PromWriter) {
	return func(p *metrics.PromWriter) {
		for _, st := range r.Stats() {
			lbl := map[string]string{"node": st.Node.Name}
			p.Counter("flowdns_forward_flows_total", "Flow records routed to the node.", lbl, st.Flows)
			p.Counter("flowdns_forward_dns_total", "Addressed DNS records routed to the node.", lbl, st.DNS)
			p.Counter("flowdns_forward_dns_cname_total", "CNAME records broadcast to the node.", lbl, st.DNSCname)
			p.Counter("flowdns_forward_dns_dropped_total", "DNS records lost after send+redial failed.", lbl, st.DNSDropped)
			p.Counter("flowdns_retry_delivered_total", "Records the node's flow socket accepted.", lbl, st.Retry.Delivered)
			p.Counter("flowdns_retry_spilled_total", "Records diverted to the node's spill queue.", lbl, st.Retry.Spilled)
			p.Counter("flowdns_retry_replayed_total", "Spilled records later delivered.", lbl, st.Retry.Replayed)
			p.Counter("flowdns_retry_dropped_total", "Records dropped against full spill bounds.", lbl, st.Retry.Dropped)
			p.GaugeInt("flowdns_retry_spill_depth", "Backlogged records (memory + disk).", lbl, int64(st.Retry.SpillDepth))
		}
	}
}
