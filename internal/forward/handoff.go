package forward

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// Handoff serves the shard-handoff admin surface for one worker node. The
// protocol moves per-key-range store state between nodes when the ring
// changes, using the snapshot codec as the wire format:
//
//	GET  /admin/handoff/export?nodes=a,b&vnodes=64&node=b[&drain=1]
//	    Build the ring from the query, stream every entry the named node
//	    owns as a snapshot file. With drain=1 the exported range is dropped
//	    locally after the export succeeds — export-then-drain, so a failed
//	    export leaves the data in place.
//	POST /admin/handoff/import
//	    Body is a snapshot stream; applied live (placement recomputed on
//	    restore, so the peer's lane/split layout is irrelevant). Returns
//	    restore stats as JSON.
//	POST /admin/handoff?nodes=a,b&vnodes=64&node=b&to=http://host:port
//	    Push mode: this node exports node's range directly into the
//	    target's /admin/handoff/import, then drains it. One round trip
//	    drives a whole rebalance step.
//
// Ordering makes the no-loss guarantee: the importing node holds the data
// before the exporting node drops it, and a record accepted during the
// window exists on at least one of the two (the old owner keeps serving
// until the drain; re-asserted entries are drained by the next ring
// change). The accepted-record invariant Offered == Enqueued + Dropped +
// Sampled holds per node throughout because handoff never touches the
// offer path.
type Handoff struct {
	corr   *core.Correlator
	client *http.Client
}

// NewHandoff wraps a correlator with the handoff admin surface.
func NewHandoff(c *core.Correlator) *Handoff {
	return &Handoff{corr: c, client: &http.Client{Timeout: 5 * time.Minute}}
}

// ringFromQuery builds (ring, owns-predicate) from nodes/vnodes/node query
// parameters shared by the export and push endpoints.
func ringFromQuery(q map[string][]string) (func(h uint32) bool, string, error) {
	get := func(k string) string {
		if v := q[k]; len(v) > 0 {
			return v[0]
		}
		return ""
	}
	nodesSpec := get("nodes")
	if nodesSpec == "" {
		return nil, "", fmt.Errorf("missing nodes parameter")
	}
	names := strings.Split(nodesSpec, ",")
	vnodes := 0
	if v := get("vnodes"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, "", fmt.Errorf("bad vnodes %q", v)
		}
		vnodes = n
	}
	node := get("node")
	if node == "" {
		return nil, "", fmt.Errorf("missing node parameter")
	}
	ring, err := NewRing(names, vnodes)
	if err != nil {
		return nil, "", err
	}
	owns, err := ring.Owns(node)
	if err != nil {
		return nil, "", err
	}
	return owns, node, nil
}

// Handler returns the handoff admin mux, mountable at /admin/handoff.
func (h *Handoff) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/admin/handoff/export", h.handleExport)
	mux.HandleFunc("/admin/handoff/import", h.handleImport)
	mux.HandleFunc("/admin/handoff", h.handlePush)
	return mux
}

func (h *Handoff) handleExport(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	owns, _, err := ringFromQuery(req.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	drain := req.URL.Query().Get("drain") == "1"
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := h.corr.WriteSnapshotOwned(w, time.Now().UnixNano(), owns); err != nil {
		// Headers are gone; the broken stream is the error signal — the
		// snapshot CRC catches the truncation on the import side — and
		// the drain is skipped, so nothing is lost.
		return
	}
	if drain {
		h.corr.DropOwned(owns)
	}
}

func (h *Handoff) handleImport(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	stats, err := h.corr.ImportSnapshot(req.Body, time.Now())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(stats)
}

// pushResult is the push-mode response body.
type pushResult struct {
	Entries int               `json:"entries"` // entries exported to the peer
	Dropped int               `json:"dropped"` // entries drained locally after
	Peer    core.RestoreStats `json:"peer"`    // the importer's restore stats
}

func (h *Handoff) handlePush(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := req.URL.Query()
	owns, _, err := ringFromQuery(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	target := q.Get("to")
	if target == "" {
		http.Error(w, "missing to parameter", http.StatusBadRequest)
		return
	}
	// Stream the owned range straight into the peer's import endpoint; the
	// pipe keeps the export memory-bounded regardless of range size.
	pr, pw := io.Pipe()
	var entries int
	go func() {
		n, err := h.corr.WriteSnapshotOwned(pw, time.Now().UnixNano(), owns)
		entries = n
		pw.CloseWithError(err)
	}()
	resp, err := h.client.Post(strings.TrimSuffix(target, "/")+"/admin/handoff/import",
		"application/octet-stream", pr)
	if err != nil {
		http.Error(w, fmt.Sprintf("push to %s: %v", target, err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		http.Error(w, fmt.Sprintf("peer %s: %s: %s", target, resp.Status, body), http.StatusBadGateway)
		return
	}
	var peer core.RestoreStats
	if err := json.NewDecoder(resp.Body).Decode(&peer); err != nil {
		http.Error(w, fmt.Sprintf("peer %s: bad import response: %v", target, err), http.StatusBadGateway)
		return
	}
	// The peer confirmed the import — only now drop the range locally.
	dropped := h.corr.DropOwned(owns)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(pushResult{Entries: entries, Dropped: dropped, Peer: peer})
}
