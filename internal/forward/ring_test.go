package forward

import (
	"fmt"
	"math/rand"
	"testing"
)

// hashSample returns a deterministic spread of key hashes covering the
// whole 32-bit space, dense enough to exercise every ownership arc of a
// small ring.
func hashSample(n int) []uint32 {
	rng := rand.New(rand.NewSource(1))
	out := make([]uint32, n)
	for i := range out {
		out[i] = rng.Uint32()
	}
	return out
}

// TestRingOrderIndependence: rings built from the same node set in any
// listing order agree on every owner — the property that lets the router
// and a worker's handoff restore each build the ring independently.
func TestRingOrderIndependence(t *testing.T) {
	names := []string{"w1", "w2", "w3", "w4", "w5"}
	a, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string(nil), names...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b, err := NewRing(shuffled, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range hashSample(20000) {
			if a.OwnerName(h) != b.OwnerName(h) {
				t.Fatalf("order %v: owner(%#x) = %s, want %s", shuffled, h, b.OwnerName(h), a.OwnerName(h))
			}
		}
	}
}

// TestRingStabilityUnderAddRemove: the consistent-hashing contract. Adding
// a node may move keys only TO the new node (keys not claimed by it keep
// their owner), and removing a node may move only the keys it owned.
func TestRingStabilityUnderAddRemove(t *testing.T) {
	base := []string{"w1", "w2", "w3"}
	before, err := NewRing(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(append(base, "w4"), 0)
	if err != nil {
		t.Fatal(err)
	}
	sample := hashSample(50000)

	movedToNew := 0
	for _, h := range sample {
		ob, oa := before.OwnerName(h), after.OwnerName(h)
		if oa == "w4" {
			movedToNew++
			continue
		}
		if ob != oa {
			t.Fatalf("add w4 moved %#x from %s to %s (not the new node)", h, ob, oa)
		}
	}
	// w4 must actually capture a meaningful share — roughly 1/4 of keys,
	// loosely bounded so vnode variance cannot flake the test.
	if movedToNew < len(sample)/10 || movedToNew > len(sample)/2 {
		t.Fatalf("add w4 captured %d of %d keys; want a roughly-1/4 share", movedToNew, len(sample))
	}

	// Remove is the inverse view: keys w4 owned scatter across survivors,
	// everything else stays put.
	for _, h := range sample {
		if after.OwnerName(h) == "w4" {
			continue
		}
		if before.OwnerName(h) != after.OwnerName(h) {
			t.Fatalf("remove w4 would move %#x", h)
		}
	}
}

// TestRingOwnsPartition: the Owns predicates of all nodes partition the
// hash space — every key has exactly one owner, and the predicate agrees
// with Owner. This is the router/worker agreement property: the router
// routes by Owner, a handoff exports by Owns, and they must never
// disagree on a key.
func TestRingOwnsPartition(t *testing.T) {
	names := []string{"a", "b", "c"}
	r, err := NewRing(names, 32)
	if err != nil {
		t.Fatal(err)
	}
	preds := make(map[string]func(uint32) bool, len(names))
	for _, n := range names {
		p, err := r.Owns(n)
		if err != nil {
			t.Fatal(err)
		}
		preds[n] = p
	}
	for _, h := range hashSample(20000) {
		owner := r.OwnerName(h)
		for n, p := range preds {
			if got, want := p(h), n == owner; got != want {
				t.Fatalf("Owns(%s)(%#x) = %v, Owner = %s", n, h, got, owner)
			}
		}
	}
	if _, err := r.Owns("nope"); err == nil {
		t.Fatal("Owns on a non-member must error")
	}
}

// TestRingBalance: with DefaultVNodes the per-node key share of a small
// cluster stays within a loose band of fair — the property that makes the
// tier's throughput scale linearly instead of bottlenecking on one hot
// node.
func TestRingBalance(t *testing.T) {
	names := []string{"w1", "w2", "w3", "w4"}
	r, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	sample := hashSample(100000)
	for _, h := range sample {
		counts[r.OwnerName(h)]++
	}
	fair := len(sample) / len(names)
	for _, n := range names {
		if c := counts[n]; c < fair/2 || c > fair*2 {
			t.Fatalf("node %s owns %d of %d keys (fair %d): %v", n, c, len(sample), fair, counts)
		}
	}
}

func TestNewRingValidation(t *testing.T) {
	for _, bad := range [][]string{
		nil,
		{""},
		{"a", "a"},
		{"a,b"},
		{"a=b"},
		{"a/b"},
	} {
		if _, err := NewRing(bad, 0); err == nil {
			t.Fatalf("NewRing(%q) accepted", bad)
		}
	}
	r, err := NewRing([]string{"b", "a"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if nodes := r.Nodes(); nodes[0] != "a" || nodes[1] != "b" {
		t.Fatalf("Nodes() = %v, want canonical order", nodes)
	}
	if r.VNodes() != 4 {
		t.Fatalf("VNodes() = %d", r.VNodes())
	}
	if r.Index("b") != 1 || r.Index("zz") != -1 {
		t.Fatalf("Index lookup wrong")
	}
}

func TestParseNodes(t *testing.T) {
	nodes, err := ParseNodes("w1=127.0.0.1:9001/127.0.0.1:9101, w2=127.0.0.1:9002/127.0.0.1:9102")
	if err != nil {
		t.Fatal(err)
	}
	want := []Node{
		{Name: "w1", FlowAddr: "127.0.0.1:9001", DNSAddr: "127.0.0.1:9101"},
		{Name: "w2", FlowAddr: "127.0.0.1:9002", DNSAddr: "127.0.0.1:9102"},
	}
	if fmt.Sprint(nodes) != fmt.Sprint(want) {
		t.Fatalf("ParseNodes = %+v, want %+v", nodes, want)
	}
	for _, bad := range []string{"", "w1", "w1=addr", "w1=/x", "w1=x/"} {
		if _, err := ParseNodes(bad); err == nil {
			t.Fatalf("ParseNodes(%q) accepted", bad)
		}
	}
}
