package config

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestParseMinimal(t *testing.T) {
	f, err := Parse([]byte(`{"dns_streams":[{"listen":":5353"}],"flow_streams":[{"listen":":2055"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := f.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	norm := core.New(cfg).Config()
	if norm.NumSplit != core.DefaultNumSplit || norm.Key != core.LookupSource {
		t.Fatalf("defaults not applied: %+v", norm)
	}
}

func TestParseFull(t *testing.T) {
	doc := `{
		"dns_streams":[{"listen":":5353","format":"dns"}],
		"flow_streams":[{"listen":":2055","format":"netflow"},{"listen":":4739","format":"ipfix"}],
		"output":{"path":"out.tsv","skip_misses":true},
		"correlator":{
			"variant":"NoRotation","lookup_key":"both","num_split":4,
			"lanes":2,"fill_lanes":2,
			"fillup_workers":2,"lookup_workers":3,"write_workers":1,
			"a_clear_up_seconds":1800,"c_clear_up_seconds":3600,
			"cname_chain_limit":4,"queue_capacity":1024
		}
	}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := f.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.DisableRotation || cfg.Key != core.LookupBoth || cfg.NumSplit != 4 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.AClearUpInterval != 1800*time.Second || cfg.CClearUpInterval != 3600*time.Second {
		t.Fatalf("intervals = %v/%v", cfg.AClearUpInterval, cfg.CClearUpInterval)
	}
	if cfg.CNAMEChainLimit != 4 || cfg.FillQueueCap != 1024 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Lanes != 2 || cfg.FillLanes != 2 {
		t.Fatalf("lanes = %d, fill lanes = %d, want 2/2", cfg.Lanes, cfg.FillLanes)
	}
	if !f.Output.SkipMisses || f.Output.Path != "out.tsv" {
		t.Fatalf("output = %+v", f.Output)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		doc  string
		want string
	}{
		{`not json`, "config:"},
		{`{}`, "no input streams"},
		{`{"dns_streams":[{"listen":""}]}`, "missing listen"},
		{`{"dns_streams":[{"listen":":1","format":"ipfix"}]}`, "unsupported format"},
		{`{"flow_streams":[{"listen":":1","format":"weird"}]}`, "unsupported format"},
		{`{"dns_streams":[{"listen":":1"}],"correlator":{"variant":"Bogus"}}`, "unknown variant"},
		{`{"dns_streams":[{"listen":":1"}],"correlator":{"lookup_key":"sideways"}}`, "unknown lookup_key"},
		{`{"dns_streams":[{"listen":":1"}],"output":{"sink":"kafka"}}`, "unknown sink"},
		{`{"dns_streams":[{"listen":":1"}],"output":{"sink":"multi"}}`, "implied"},
		{`{"dns_streams":[{"listen":":1"}],"output":{"sink":"counting","path":"x.tsv"}}`, "does not write to a file"},
		{`{"dns_streams":[{"listen":":1"}],"outputs":[{"sink":"bogus"}]}`, "outputs[0]"},
		{`{"dns_streams":[{"listen":":1"}],"query":{"listen":":8081","store_dir":"w"}}`, "requires rollup.enabled"},
		{`{"dns_streams":[{"listen":":1"}],"rollup":{"enabled":true},"query":{"listen":":8081"}}`, "listen without store_dir"},
		{`{"dns_streams":[{"listen":":1"}],"rollup":{"enabled":true},"query":{"store_dir":"w","part_seconds":-1}}`, "negative part_seconds"},
		{`{"dns_streams":[{"listen":":1"}],"rollup":{"enabled":true},"query":{"store_dir":"w","retention_seconds":-1}}`, "negative retention_seconds"},
		{`{"dns_streams":[{"listen":":1"}],"rollup":{"enabled":true},"query":{"store_dir":"w","cache_entries":-1}}`, "negative cache_entries"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.doc))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want containing %q", c.doc, err, c.want)
		}
	}
}

func TestQueryConfig(t *testing.T) {
	doc := `{
		"dns_streams":[{"listen":":5353"}],
		"rollup":{"enabled":true},
		"query":{
			"listen":":8081",
			"store_dir":"winstore",
			"part_seconds":1800,
			"retention_seconds":86400,
			"compact_after_seconds":300,
			"cache_entries":64
		}
	}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !f.Query.Enabled() {
		t.Fatal("query section not enabled")
	}
	cfg, err := f.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.QueryAddr != ":8081" || cfg.StoreDir != "winstore" {
		t.Fatalf("core mapping: addr %q dir %q", cfg.QueryAddr, cfg.StoreDir)
	}
	if cfg.Retention != 24*time.Hour || cfg.CompactAfter != 5*time.Minute {
		t.Fatalf("core mapping: retention %v compact_after %v", cfg.Retention, cfg.CompactAfter)
	}

	// Store without server is valid (persist-only), and a negative
	// compact_after disables compaction rather than erroring.
	f2, err := Parse([]byte(`{
		"dns_streams":[{"listen":":5353"}],
		"rollup":{"enabled":true},
		"query":{"store_dir":"w","compact_after_seconds":-1}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := f2.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.QueryAddr != "" || cfg2.StoreDir != "w" || cfg2.CompactAfter >= 0 {
		t.Fatalf("persist-only mapping: %+v", cfg2)
	}
}

func TestLoadFromDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flowdns.json")
	data, err := json.MarshalIndent(Example(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.DNSStreams) != 2 || len(f.FlowStreams) != 2 {
		t.Fatalf("streams = %d/%d", len(f.DNSStreams), len(f.FlowStreams))
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestExampleIsValid(t *testing.T) {
	data, err := json.Marshal(Example())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(data); err != nil {
		t.Fatalf("example config invalid: %v", err)
	}
}

func TestSinkAndBatchConfig(t *testing.T) {
	doc := `{
		"dns_streams":[{"listen":":5353"}],
		"output":{"path":"out.jsonl","sink":"json","skip_misses":true},
		"outputs":[{"sink":"counting"}],
		"correlator":{"write_batch_size":512,"write_flush_ms":10}
	}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := f.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WriteBatchSize != 512 || cfg.WriteFlushInterval != 10*time.Millisecond {
		t.Fatalf("batch tuning = %d/%v", cfg.WriteBatchSize, cfg.WriteFlushInterval)
	}
	s, err := f.Output.NewSink(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if js, ok := s.(*core.JSONSink); !ok || !js.SkipMisses {
		t.Fatalf("sink = %T", s)
	}
	if len(f.Outputs) != 1 {
		t.Fatalf("outputs = %d", len(f.Outputs))
	}
	if s, err := f.Outputs[0].NewSink(nil); err != nil {
		t.Fatal(err)
	} else if _, ok := s.(*core.CountingSink); !ok {
		t.Fatalf("extra sink = %T", s)
	}
}

func TestVariantMapping(t *testing.T) {
	for _, v := range core.AllVariants() {
		doc := `{"dns_streams":[{"listen":":1"}],"correlator":{"variant":"` + string(v) + `"}}`
		f, err := Parse([]byte(doc))
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if _, err := f.CoreConfig(); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
	}
}

func TestRollupConfig(t *testing.T) {
	doc := `{
		"dns_streams":[{"listen":":5353"}],
		"output":{"path":"out.tsv"},
		"rollup":{
			"enabled":true,"window_seconds":300,"shards":4,
			"path":"rollups.jsonl","format":"json",
			"bgp_table":"table.txt","blocklist":"dbl.txt","http":":8081"
		}
	}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !f.Rollup.Enabled || f.Rollup.Window() != 5*time.Minute || f.Rollup.Shards != 4 {
		t.Fatalf("rollup section = %+v", f.Rollup)
	}
	if f.Rollup.Path != "rollups.jsonl" || f.Rollup.Format != "json" || f.Rollup.HTTP != ":8081" {
		t.Fatalf("rollup outputs = %+v", f.Rollup)
	}
	// Default window when unset.
	if (RollupConfig{}).Window() != time.Minute {
		t.Fatalf("default window = %v", RollupConfig{}.Window())
	}
	// Disabled sections skip validation entirely.
	if _, err := Parse([]byte(`{
		"dns_streams":[{"listen":":5353"}],
		"rollup":{"enabled":false,"format":"yaml"}
	}`)); err != nil {
		t.Fatalf("disabled rollup validated: %v", err)
	}
}

func TestRollupConfigRejections(t *testing.T) {
	cases := []struct{ doc, want string }{
		{`{"dns_streams":[{"listen":":5353"}],"rollup":{"enabled":true,"format":"yaml"}}`,
			"unknown export format"},
		{`{"dns_streams":[{"listen":":5353"}],"rollup":{"enabled":true,"window_seconds":-1}}`,
			"negative window_seconds"},
		{`{"dns_streams":[{"listen":":5353"}],"rollup":{"enabled":true,"shards":-2}}`,
			"negative shards"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.doc))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want containing %q", c.doc, err, c.want)
		}
	}
}

// TestRollupSinkRegistered checks the registry integration end to end from
// the config layer: importing the rollup package (as the daemon does)
// makes "rollup" a legal sink name in outputs.
func TestRollupSinkRegistered(t *testing.T) {
	doc := `{
		"dns_streams":[{"listen":":5353"}],
		"output":{"path":"rollups.tsv","sink":"rollup"}
	}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !f.Output.NeedsWriter() {
		t.Fatal("rollup sink should need a writer")
	}
	s, err := f.Output.NewSink(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotConfig covers the warm-restart checkpoint keys: mapping into
// core.Config, the default cadence, and the two rejection cases.
func TestSnapshotConfig(t *testing.T) {
	doc := `{
		"dns_streams":[{"listen":":5353"}],
		"correlator":{"snapshot_path":"/var/lib/flowdns/store.snapshot","snapshot_every_seconds":90}
	}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := f.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SnapshotPath != "/var/lib/flowdns/store.snapshot" {
		t.Fatalf("SnapshotPath = %q", cfg.SnapshotPath)
	}
	if cfg.SnapshotEvery != 90*time.Second {
		t.Fatalf("SnapshotEvery = %v", cfg.SnapshotEvery)
	}

	// Path without cadence: core's default applies at normalization; the
	// config layer leaves the zero value alone.
	doc = `{
		"dns_streams":[{"listen":":5353"}],
		"correlator":{"snapshot_path":"store.snapshot"}
	}`
	f, err = Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = f.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SnapshotPath != "store.snapshot" || cfg.SnapshotEvery != 0 {
		t.Fatalf("cfg = %+v", cfg)
	}

	for doc, want := range map[string]string{
		`{"dns_streams":[{"listen":":5353"}],"correlator":{"snapshot_path":"s","snapshot_every_seconds":-1}}`: "negative snapshot_every_seconds",
		`{"dns_streams":[{"listen":":5353"}],"correlator":{"snapshot_every_seconds":60}}`:                     "snapshot_every_seconds set without snapshot_path",
	} {
		if _, err := Parse([]byte(doc)); err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("Parse(%s) err = %v, want containing %q", doc, err, want)
		}
	}
}

// TestResilienceConfig covers the PR-9 robustness knobs: the faults map,
// the per-output retry block, and the DNS idle timeout.
func TestResilienceConfig(t *testing.T) {
	doc := `{
		"dns_streams":[{"listen":":5353"}],
		"faults":{"core.sink.write":"2*error(chaos)"},
		"fault_admin":true,
		"output":{"sink":"counting","retry":{
			"max_retries":5,"backoff_ms":50,"timeout_ms":2000,
			"mem_limit_records":128,"spill_path":"spill.jsonl","spill_limit_bytes":4096
		}},
		"correlator":{"dns_idle_timeout_seconds":45}
	}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !f.FaultAdmin || f.Faults["core.sink.write"] != "2*error(chaos)" {
		t.Fatalf("faults = %+v admin = %v", f.Faults, f.FaultAdmin)
	}
	rc := f.Output.Retry
	if rc == nil {
		t.Fatal("retry block lost in parse")
	}
	got := rc.Core()
	want := core.RetryConfig{
		MaxRetries: 5, Backoff: 50 * time.Millisecond, Timeout: 2 * time.Second,
		MemLimit: 128, SpillPath: "spill.jsonl", SpillLimit: 4096,
	}
	if got != want {
		t.Fatalf("Core() = %+v, want %+v", got, want)
	}
	cfg, err := f.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DNSIdleTimeout != 45*time.Second {
		t.Fatalf("DNSIdleTimeout = %v", cfg.DNSIdleTimeout)
	}

	// Rejections: malformed fault spec, empty point name, negative retry
	// fields, negative idle timeout.
	bad := []struct {
		doc  string
		want string
	}{
		{`{"dns_streams":[{"listen":":1"}],"faults":{"core.sink.write":"wibble!"}}`, "unknown action"},
		{`{"dns_streams":[{"listen":":1"}],"faults":{"":"error"}}`, "empty failpoint name"},
		{`{"dns_streams":[{"listen":":1"}],"output":{"retry":{"backoff_ms":-1}}}`, "negative retry"},
		{`{"dns_streams":[{"listen":":1"}],"outputs":[{"sink":"counting","retry":{"spill_limit_bytes":-1}}]}`, "negative retry"},
		{`{"dns_streams":[{"listen":":1"}],"correlator":{"dns_idle_timeout_seconds":-3}}`, "dns_idle_timeout_seconds"},
	}
	for _, c := range bad {
		if _, err := Parse([]byte(c.doc)); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%s) err = %v, want containing %q", c.doc, err, c.want)
		}
	}
}
