// Package config loads the FlowDNS daemon configuration file.
//
// The paper notes that "the system is not bound to NetFlow data and can be
// adapted to use other data formats containing IP addresses and timestamps
// in a configuration file" (§3). This package is that file: a JSON document
// describing the input streams (addresses and formats), the correlator
// tuning (variant, workers, intervals, lookup key), and the output.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"slices"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/rollup"
	"repro/internal/stream"

	// Register the "influx" sink so config validation and the daemon both
	// see it in the registry.
	_ "repro/internal/influxsink"
)

// File is the top-level configuration document.
type File struct {
	// DNSStreams lists TCP listen addresses receiving framed DNS responses.
	DNSStreams []StreamConfig `json:"dns_streams"`
	// FlowStreams lists UDP listen addresses receiving flow exports.
	FlowStreams []StreamConfig `json:"flow_streams"`
	// Output configures the correlated-flow sink.
	Output OutputConfig `json:"output"`
	// Outputs optionally lists additional sinks; when present the daemon
	// fans out through a MultiSink (Output plus every entry). See
	// AllOutputs.
	Outputs []OutputConfig `json:"outputs,omitempty"`
	// Correlator tunes the core pipeline.
	Correlator CorrelatorConfig `json:"correlator"`
	// Rollup configures the online attribution rollups (§5 use cases
	// computed in-pipeline; see internal/rollup). Disabled by default.
	Rollup RollupConfig `json:"rollup"`
	// Query configures the query plane: the on-disk window store persisting
	// sealed rollups and the /query/* HTTP API over it (see
	// internal/winstore and internal/queryapi). Requires the rollup sink.
	Query QueryConfig `json:"query"`
	// Faults arms named failpoints at boot (chaos testing): point name →
	// "[count*]action(arg)" spec, the same grammar as the FLOWDNS_FAULTS
	// environment variable. Unknown names fail at startup, not silently.
	Faults map[string]string `json:"faults,omitempty"`
	// FaultAdmin mounts /admin/fault on the query server (GET catalog,
	// POST arm/disarm). Off by default: fault injection is a chaos-testing
	// surface.
	FaultAdmin bool `json:"fault_admin,omitempty"`
	// Cluster configures the distributed correlation tier (see
	// internal/forward): role, ring membership, and this process's ring
	// identity. Absent = standalone single-process deployment.
	Cluster ClusterConfig `json:"cluster,omitempty"`
}

// ClusterNode is one ring member's addresses as the router dials them.
type ClusterNode struct {
	// Name is the node's ring identity — it, not the addresses, determines
	// key placement, so addresses can change without moving any shards.
	Name string `json:"name"`
	// Flow is the node's NetFlow v9 UDP ingest address.
	Flow string `json:"flow"`
	// DNS is the node's framed-DNS TCP ingest address.
	DNS string `json:"dns"`
}

// ClusterConfig configures the distributed tier. The same file can be
// shared by every process in the cluster: the router reads Nodes, a worker
// reads Node (its own name) for handoff placement and health reporting.
type ClusterConfig struct {
	// Role selects the process's job: "" (standalone), "router"
	// (consistent-hash fan-out, no local store), or "worker" (a normal
	// correlator that also serves /admin/handoff).
	Role string `json:"role,omitempty"`
	// Node is this process's ring name (workers; optional for routers).
	Node string `json:"node,omitempty"`
	// Nodes is the ring membership with dial addresses (routers).
	Nodes []ClusterNode `json:"nodes,omitempty"`
	// VNodes is the virtual-node count per node; 0 = forward.DefaultVNodes.
	VNodes int `json:"vnodes,omitempty"`
}

// StreamConfig describes one input stream.
type StreamConfig struct {
	// Listen is the listen address (host:port).
	Listen string `json:"listen"`
	// Format names the wire format: "dns" for DNS streams; "netflow"
	// (v5/v9 auto-detected) or "ipfix" for flow streams. Flow formats are
	// detected per datagram regardless, so this is documentation plus
	// validation.
	Format string `json:"format"`
}

// OutputConfig describes one sink.
type OutputConfig struct {
	// Path is the output file; "-" or "" means stdout.
	Path string `json:"path"`
	// Sink names the registered sink backend: "tsv" (default), "json",
	// "influx", "counting", or "discard". See core.SinkNames.
	Sink string `json:"sink"`
	// SkipMisses drops uncorrelated rows.
	SkipMisses bool `json:"skip_misses"`
	// URL is the write endpoint of network-backed sinks; the "influx" sink
	// POSTs line-protocol batches there instead of writing to Path (e.g.
	// "http://localhost:8086/write?db=flowdns").
	URL string `json:"url,omitempty"`
	// Measurement names the influx measurement ("" = "flowdns").
	Measurement string `json:"measurement,omitempty"`
	// Retry wraps this sink in a core.RetrySink: timeout-bounded attempts,
	// doubling-backoff retries, and a bounded in-memory/on-disk spill queue
	// replayed once the sink recovers. nil leaves the sink bare.
	Retry *RetryConfig `json:"retry,omitempty"`
}

// RetryConfig is the JSON shape of core.RetryConfig. Zero fields take the
// core defaults (3 retries, 100 ms backoff, 10 s timeout, 65536 records in
// memory, 64 MiB on disk); negative MaxRetries/MemLimitRecords disable that
// layer, as in core.
type RetryConfig struct {
	MaxRetries      int    `json:"max_retries,omitempty"`
	BackoffMS       int    `json:"backoff_ms,omitempty"`
	TimeoutMS       int    `json:"timeout_ms,omitempty"`
	MemLimitRecords int    `json:"mem_limit_records,omitempty"`
	SpillPath       string `json:"spill_path,omitempty"`
	SpillLimitBytes int64  `json:"spill_limit_bytes,omitempty"`
}

// Core converts to the core package's config.
func (rc *RetryConfig) Core() core.RetryConfig {
	return core.RetryConfig{
		MaxRetries: rc.MaxRetries,
		Backoff:    time.Duration(rc.BackoffMS) * time.Millisecond,
		Timeout:    time.Duration(rc.TimeoutMS) * time.Millisecond,
		MemLimit:   rc.MemLimitRecords,
		SpillPath:  rc.SpillPath,
		SpillLimit: rc.SpillLimitBytes,
	}
}

// NewSink builds the configured sink over w (ignored by writer-less sinks
// such as "counting" and "discard", and by "influx" in URL mode).
func (o OutputConfig) NewSink(w io.Writer) (core.Sink, error) {
	return core.NewSinkByName(o.Sink, core.SinkOptions{
		W: w, SkipMisses: o.SkipMisses, URL: o.URL, Measurement: o.Measurement,
	})
}

// NeedsWriter reports whether the configured sink writes records to an
// output stream ("" means the tsv default), per the sink registry's own
// metadata. Writer-less sinks (counting, discard) must not be given a
// Path — the file would be created and left empty. An "influx" output with
// a URL ships over HTTP, so it takes no writer either.
func (o OutputConfig) NeedsWriter() bool {
	if o.URL != "" {
		return false
	}
	return core.SinkNeedsWriter(o.Sink)
}

// RollupConfig configures the streaming attribution-rollup sink, which
// stacks on top of the configured outputs through the multi-sink.
type RollupConfig struct {
	// Enabled turns the rollup sink on.
	Enabled bool `json:"enabled"`
	// WindowSeconds is the rotation interval; 0 = 60 s.
	WindowSeconds int `json:"window_seconds"`
	// Shards is the counter shard count; 0 = default (8).
	Shards int `json:"shards"`
	// Path receives sealed windows ("-" = stdout, "" = no file export).
	Path string `json:"path"`
	// Format is the sealed-window encoding: "tsv" (default) or "json".
	Format string `json:"format"`
	// BGPTable is a "prefix asn" file enabling origin-AS attribution
	// (empty = every flow under ASN 0).
	BGPTable string `json:"bgp_table"`
	// Blocklist is a "domain [category]" file enabling DBL-category
	// attribution (empty = every service benign).
	Blocklist string `json:"blocklist"`
	// HTTP is the listen address of the /rollups live-snapshot endpoint
	// ("" = disabled).
	HTTP string `json:"http"`
}

// QueryConfig configures the serving plane over sealed rollup windows.
type QueryConfig struct {
	// Listen is the query-plane HTTP address serving /query/*, /metrics,
	// and /rollups ("" = no query server).
	Listen string `json:"listen"`
	// StoreDir is the window store's partition directory ("" = sealed
	// windows are not persisted; the query server, if any, answers empty).
	StoreDir string `json:"store_dir"`
	// PartSeconds is the partition interval — one segment file per interval
	// of sealed windows; 0 = 3600.
	PartSeconds int `json:"part_seconds"`
	// RetentionSeconds deletes partitions older than this; 0 keeps
	// everything.
	RetentionSeconds int `json:"retention_seconds"`
	// CompactAfterSeconds is how long after a partition's interval ends
	// before its windows are compacted; 0 = store default (600), negative
	// disables compaction.
	CompactAfterSeconds int `json:"compact_after_seconds"`
	// CacheEntries bounds the materialized-result cache; 0 = default (256).
	CacheEntries int `json:"cache_entries"`
}

// Enabled reports whether any query-plane component is configured.
func (qc QueryConfig) Enabled() bool { return qc.Listen != "" || qc.StoreDir != "" }

// Window returns the rotation interval as a duration.
func (rc RollupConfig) Window() time.Duration {
	if rc.WindowSeconds <= 0 {
		return rollup.DefaultWindow
	}
	return time.Duration(rc.WindowSeconds) * time.Second
}

// CorrelatorConfig mirrors the tunable subset of core.Config.
type CorrelatorConfig struct {
	Variant         string `json:"variant"`            // Main (default), NoSplit, ...
	LookupKey       string `json:"lookup_key"`         // source (default), destination, both
	NumSplit        int    `json:"num_split"`          // 0 = paper default (10)
	Lanes           int    `json:"lanes"`              // correlation lanes; 0 = one per split (paper default)
	FillLanes       int    `json:"fill_lanes"`         // fill lanes; 0 = mirror correlation lanes
	FillUpWorkers   int    `json:"fillup_workers"`     // 0 = default
	LookUpWorkers   int    `json:"lookup_workers"`     // 0 = default
	WriteWorkers    int    `json:"write_workers"`      // 0 = default
	AClearUpSeconds int    `json:"a_clear_up_seconds"` // 0 = 3600
	CClearUpSeconds int    `json:"c_clear_up_seconds"` // 0 = 7200
	CNAMEChainLimit int    `json:"cname_chain_limit"`  // 0 = 6
	QueueCapacity   int    `json:"queue_capacity"`     // 0 = default
	WriteBatchSize  int    `json:"write_batch_size"`   // 0 = default (256)
	WriteFlushMS    int    `json:"write_flush_ms"`     // 0 = default (50 ms)
	IngestBatch     int    `json:"ingest_batch"`       // UDP datagrams per batched read; 0 = default (32), 1 = single-read loop

	// DNSIdleTimeoutSeconds closes a DNS TCP stream silent for this long
	// (counted in source stats); 0 keeps wedged streams open forever.
	DNSIdleTimeoutSeconds int `json:"dns_idle_timeout_seconds"`

	// SnapshotPath enables warm-restart checkpointing: the store is
	// restored from this file on boot and checkpointed back every
	// SnapshotEverySeconds (0 = default, 300 s) plus once on graceful
	// shutdown. Empty disables checkpointing.
	SnapshotPath         string `json:"snapshot_path"`
	SnapshotEverySeconds int    `json:"snapshot_every_seconds"`

	// SampleMaxShed > 0 enables adaptive overload shedding on every stage
	// queue: once a queue passes SampleLowWater fill the sampler sheds a
	// fraction of offered records ramping linearly to SampleMaxShed at
	// SampleHighWater. Shed records are counted (Sampled in /metrics and
	// /query/health), never silent. Watermarks default to 0.5 / 0.9 when
	// only the shed ceiling is given.
	SampleLowWater  float64 `json:"sample_low_water"`
	SampleHighWater float64 `json:"sample_high_water"`
	SampleMaxShed   float64 `json:"sample_max_shed"`
}

// validFormats per stream family.
var (
	dnsFormats  = map[string]bool{"": true, "dns": true}
	flowFormats = map[string]bool{"": true, "netflow": true, "ipfix": true}
)

// Load reads and validates a configuration file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return Parse(data)
}

// Parse validates a configuration document.
func Parse(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if len(f.DNSStreams) == 0 && len(f.FlowStreams) == 0 {
		return nil, fmt.Errorf("config: no input streams configured")
	}
	for i, s := range f.DNSStreams {
		if s.Listen == "" {
			return nil, fmt.Errorf("config: dns_streams[%d]: missing listen address", i)
		}
		if !dnsFormats[s.Format] {
			return nil, fmt.Errorf("config: dns_streams[%d]: unsupported format %q", i, s.Format)
		}
	}
	for i, s := range f.FlowStreams {
		if s.Listen == "" {
			return nil, fmt.Errorf("config: flow_streams[%d]: missing listen address", i)
		}
		if !flowFormats[s.Format] {
			return nil, fmt.Errorf("config: flow_streams[%d]: unsupported format %q", i, s.Format)
		}
	}
	registered := core.SinkNames()
	for i, o := range f.AllOutputs() {
		// Label errors with the user's own field: the singular "output"
		// entry, or its index in the "outputs" list.
		field := "output"
		if i > 0 {
			field = fmt.Sprintf("outputs[%d]", i-1)
		}
		if o.Sink == "multi" {
			return nil, fmt.Errorf("config: %s: \"multi\" is implied by listing several outputs", field)
		}
		if o.Sink != "" && !slices.Contains(registered, o.Sink) {
			return nil, fmt.Errorf("config: %s: unknown sink %q (have %v)", field, o.Sink, registered)
		}
		if o.URL != "" && o.Sink != "influx" {
			return nil, fmt.Errorf("config: %s: url is only supported by the \"influx\" sink, not %q", field, o.Sink)
		}
		if !o.NeedsWriter() && o.Path != "" && o.Path != "-" {
			return nil, fmt.Errorf("config: %s: sink %q does not write to a file; remove path %q", field, o.Sink, o.Path)
		}
		if o.Retry != nil {
			if o.Retry.BackoffMS < 0 || o.Retry.TimeoutMS < 0 || o.Retry.SpillLimitBytes < 0 {
				return nil, fmt.Errorf("config: %s: negative retry durations or spill limit", field)
			}
		}
	}
	// Fault specs are grammar-checked here; names resolve at arming time in
	// the daemon, where every failpoint-bearing package is linked.
	for name, spec := range f.Faults {
		if name == "" {
			return nil, fmt.Errorf("config: faults: empty failpoint name")
		}
		if err := fault.ValidateSpec(spec); err != nil {
			return nil, fmt.Errorf("config: faults: %s: %w", name, err)
		}
	}
	if f.Rollup.Enabled {
		if _, err := rollup.ParseFormat(f.Rollup.Format); err != nil {
			return nil, fmt.Errorf("config: rollup: %w", err)
		}
		if f.Rollup.WindowSeconds < 0 {
			return nil, fmt.Errorf("config: rollup: negative window_seconds %d", f.Rollup.WindowSeconds)
		}
		if f.Rollup.Shards < 0 {
			return nil, fmt.Errorf("config: rollup: negative shards %d", f.Rollup.Shards)
		}
	}
	if f.Query.Enabled() {
		if f.Query.StoreDir != "" && !f.Rollup.Enabled {
			return nil, fmt.Errorf("config: query: store_dir requires rollup.enabled (the store persists sealed rollup windows)")
		}
		// A cluster process serves health, metrics, and admin surfaces on
		// the query address even without a window store; standalone, a
		// listen address with nothing behind it is a misconfiguration.
		if f.Query.Listen != "" && f.Query.StoreDir == "" && f.Cluster.Role == "" {
			return nil, fmt.Errorf("config: query: listen without store_dir (nothing to serve)")
		}
		if f.Query.PartSeconds < 0 {
			return nil, fmt.Errorf("config: query: negative part_seconds %d", f.Query.PartSeconds)
		}
		if f.Query.RetentionSeconds < 0 {
			return nil, fmt.Errorf("config: query: negative retention_seconds %d", f.Query.RetentionSeconds)
		}
		if f.Query.CacheEntries < 0 {
			return nil, fmt.Errorf("config: query: negative cache_entries %d", f.Query.CacheEntries)
		}
	}
	switch f.Cluster.Role {
	case "", "worker", "router":
	default:
		return nil, fmt.Errorf("config: cluster: unknown role %q (want router or worker)", f.Cluster.Role)
	}
	if f.Cluster.VNodes < 0 {
		return nil, fmt.Errorf("config: cluster: negative vnodes %d", f.Cluster.VNodes)
	}
	if f.Cluster.Role == "router" {
		if len(f.Cluster.Nodes) == 0 {
			return nil, fmt.Errorf("config: cluster: router role needs nodes")
		}
		seen := map[string]bool{}
		for i, n := range f.Cluster.Nodes {
			if n.Name == "" || n.Flow == "" || n.DNS == "" {
				return nil, fmt.Errorf("config: cluster: nodes[%d]: name, flow, and dns are all required", i)
			}
			if seen[n.Name] {
				return nil, fmt.Errorf("config: cluster: duplicate node name %q", n.Name)
			}
			seen[n.Name] = true
		}
	}
	if _, err := f.CoreConfig(); err != nil {
		return nil, err
	}
	return &f, nil
}

// AllOutputs returns the full sink list the daemon must construct: the
// singular Output followed by every Outputs entry. Validation and
// construction both iterate this, so the two can never diverge.
func (f *File) AllOutputs() []OutputConfig {
	return append([]OutputConfig{f.Output}, f.Outputs...)
}

// CoreConfig converts the correlator section to a core.Config.
func (f *File) CoreConfig() (core.Config, error) {
	cc := f.Correlator
	variant := core.Variant(cc.Variant)
	if cc.Variant == "" {
		variant = core.VariantMain
	}
	switch variant {
	case core.VariantMain, core.VariantNoSplit, core.VariantNoClearUp,
		core.VariantNoRotation, core.VariantNoLong, core.VariantExactTTL:
	default:
		return core.Config{}, fmt.Errorf("config: unknown variant %q", cc.Variant)
	}
	cfg := core.ConfigForVariant(variant)
	switch cc.LookupKey {
	case "", "source":
		cfg.Key = core.LookupSource
	case "destination":
		cfg.Key = core.LookupDestination
	case "both":
		cfg.Key = core.LookupBoth
	default:
		return core.Config{}, fmt.Errorf("config: unknown lookup_key %q", cc.LookupKey)
	}
	if cc.NumSplit > 0 {
		cfg.NumSplit = cc.NumSplit
	}
	if cc.Lanes > 0 {
		cfg.Lanes = cc.Lanes
	}
	if cc.FillLanes > 0 {
		cfg.FillLanes = cc.FillLanes
	}
	if cc.FillUpWorkers > 0 {
		cfg.FillUpWorkers = cc.FillUpWorkers
	}
	if cc.LookUpWorkers > 0 {
		cfg.LookUpWorkers = cc.LookUpWorkers
	}
	if cc.WriteWorkers > 0 {
		cfg.WriteWorkers = cc.WriteWorkers
	}
	if cc.AClearUpSeconds > 0 {
		cfg.AClearUpInterval = time.Duration(cc.AClearUpSeconds) * time.Second
	}
	if cc.CClearUpSeconds > 0 {
		cfg.CClearUpInterval = time.Duration(cc.CClearUpSeconds) * time.Second
	}
	if cc.CNAMEChainLimit > 0 {
		cfg.CNAMEChainLimit = cc.CNAMEChainLimit
	}
	if cc.QueueCapacity > 0 {
		cfg.FillQueueCap = cc.QueueCapacity
		cfg.LookQueueCap = cc.QueueCapacity
		cfg.WriteQueueCap = cc.QueueCapacity
	}
	if cc.WriteBatchSize > 0 {
		cfg.WriteBatchSize = cc.WriteBatchSize
	}
	if cc.WriteFlushMS > 0 {
		cfg.WriteFlushInterval = time.Duration(cc.WriteFlushMS) * time.Millisecond
	}
	if cc.IngestBatch < 0 {
		return core.Config{}, fmt.Errorf("config: negative ingest_batch %d", cc.IngestBatch)
	}
	cfg.IngestBatch = cc.IngestBatch
	if cc.DNSIdleTimeoutSeconds < 0 {
		return core.Config{}, fmt.Errorf("config: negative dns_idle_timeout_seconds %d", cc.DNSIdleTimeoutSeconds)
	}
	cfg.DNSIdleTimeout = time.Duration(cc.DNSIdleTimeoutSeconds) * time.Second
	if cc.SnapshotEverySeconds < 0 {
		return core.Config{}, fmt.Errorf("config: negative snapshot_every_seconds %d", cc.SnapshotEverySeconds)
	}
	if cc.SnapshotEverySeconds > 0 && cc.SnapshotPath == "" {
		return core.Config{}, fmt.Errorf("config: snapshot_every_seconds set without snapshot_path")
	}
	cfg.SnapshotPath = cc.SnapshotPath
	if cc.SnapshotEverySeconds > 0 {
		cfg.SnapshotEvery = time.Duration(cc.SnapshotEverySeconds) * time.Second
	}
	if cc.SampleMaxShed < 0 || cc.SampleMaxShed > 1 {
		return core.Config{}, fmt.Errorf("config: sample_max_shed %v outside [0,1]", cc.SampleMaxShed)
	}
	if cc.SampleLowWater < 0 || cc.SampleLowWater > 1 ||
		cc.SampleHighWater < 0 || cc.SampleHighWater > 1 {
		return core.Config{}, fmt.Errorf("config: sampler watermarks must lie in [0,1]")
	}
	if cc.SampleMaxShed == 0 && (cc.SampleLowWater != 0 || cc.SampleHighWater != 0) {
		return core.Config{}, fmt.Errorf("config: sampler watermarks set without sample_max_shed")
	}
	cfg.SampleLowWater = cc.SampleLowWater
	cfg.SampleHighWater = cc.SampleHighWater
	cfg.SampleMaxShed = cc.SampleMaxShed
	cfg.QueryAddr = f.Query.Listen
	cfg.StoreDir = f.Query.StoreDir
	if f.Query.RetentionSeconds > 0 {
		cfg.Retention = time.Duration(f.Query.RetentionSeconds) * time.Second
	}
	cfg.CompactAfter = time.Duration(f.Query.CompactAfterSeconds) * time.Second
	return cfg, nil
}

// Example returns a documented example configuration, used by
// `flowdns -example-config`.
func Example() *File {
	return &File{
		DNSStreams: []StreamConfig{
			{Listen: ":5353", Format: "dns"},
			{Listen: ":5354", Format: "dns"},
		},
		FlowStreams: []StreamConfig{
			{Listen: ":2055", Format: "netflow"},
			{Listen: ":4739", Format: "ipfix"},
		},
		Output: OutputConfig{Path: "correlated.tsv", Sink: "tsv"},
		Rollup: RollupConfig{
			Enabled:       true,
			WindowSeconds: 60,
			Path:          "rollups.tsv",
			Format:        "tsv",
			BGPTable:      "bgp-table.txt",
			Blocklist:     "blocklist.txt",
			HTTP:          ":8080",
		},
		Query: QueryConfig{
			Listen:              ":8081",
			StoreDir:            "winstore",
			PartSeconds:         3600,
			RetentionSeconds:    7 * 24 * 3600,
			CompactAfterSeconds: 600,
			CacheEntries:        256,
		},
		Correlator: CorrelatorConfig{
			Variant:               "Main",
			LookupKey:             "source",
			FillUpWorkers:         4,
			LookUpWorkers:         core.DefaultNumSplit,
			WriteWorkers:          2,
			WriteBatchSize:        core.DefaultWriteBatchSize,
			IngestBatch:           stream.DefaultIngestBatch,
			DNSIdleTimeoutSeconds: 90,
			SnapshotPath:          "flowdns.snapshot",
			SnapshotEverySeconds:  int(core.DefaultSnapshotInterval / time.Second),
		},
	}
}
