// Package dnswire implements an RFC 1035 DNS message wire codec.
//
// FlowDNS consumes "DNS cache misses gathered from different customer
// resolvers" — i.e. full DNS response messages forwarded over TCP. This
// package provides the encoder/decoder for those messages: header, question
// and resource-record sections, domain-name compression (decode with loop
// protection, encode with a compression dictionary), and typed RDATA for the
// record types the correlator and its experiments need (A, AAAA, CNAME plus
// NS, PTR, MX, TXT, SOA so the stream filter has realistic negatives to
// reject).
//
// The design follows the gopacket school of decoding: DecodeFromBytes-style
// methods on preallocated values, no hidden allocation on the hot path, and
// errors instead of panics for any malformed input.
package dnswire

import (
	"fmt"
	"net/netip"
	"strings"
)

// Type is a DNS RR type (RFC 1035 §3.2.2, RFC 3596 for AAAA).
type Type uint16

// RR types used by FlowDNS and its workload.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeSRV   Type = 33
	TypeOPT   Type = 41
	TypeANY   Type = 255
)

// String returns the conventional mnemonic for the type.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeSRV:
		return "SRV"
	case TypeOPT:
		return "OPT"
	case TypeANY:
		return "ANY"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS RR class. Only IN matters in practice.
type Class uint16

// Classes.
const (
	ClassIN  Class = 1
	ClassCH  Class = 3
	ClassANY Class = 255
)

// RCode is a response code (RFC 1035 §4.1.1).
type RCode uint8

// Response codes.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// String returns the conventional mnemonic for the rcode.
func (r RCode) String() string {
	switch r {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", uint8(r))
	}
}

// OpCode is a DNS operation code.
type OpCode uint8

// Opcodes.
const (
	OpQuery  OpCode = 0
	OpStatus OpCode = 2
	OpNotify OpCode = 4
	OpUpdate OpCode = 5
)

// Header is the fixed 12-byte DNS message header.
type Header struct {
	ID                 uint16
	Response           bool // QR
	OpCode             OpCode
	Authoritative      bool // AA
	Truncated          bool // TC
	RecursionDesired   bool // RD
	RecursionAvailable bool // RA
	RCode              RCode

	QDCount uint16
	ANCount uint16
	NSCount uint16
	ARCount uint16
}

// Question is one entry of the question section.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// Record is one resource record. Exactly one of the typed RDATA fields is
// meaningful, selected by Type; the raw RDATA is preserved for unknown types
// so messages round-trip byte-exactly apart from name compression.
type Record struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32

	// A / AAAA
	Addr netip.Addr
	// CNAME / NS / PTR / SRV
	Target string
	// MX preference
	Pref uint16
	// SRV
	Priority uint16
	Weight   uint16
	Port     uint16
	// TXT: each string chunk
	TXT []string
	// SOA
	SOA *SOAData
	// Unknown types keep their raw bytes.
	Raw []byte
}

// SOAData is the RDATA of an SOA record.
type SOAData struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Message is a full DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []Record
	Authority  []Record
	Additional []Record
}

// QName returns the first question's name, or "" if there is none. FlowDNS
// uses the query name as the hashmap value for every answer record.
func (m *Message) QName() string {
	if len(m.Questions) == 0 {
		return ""
	}
	return m.Questions[0].Name
}

// String renders a dig-like one-line summary, useful in logs and tests.
func (m *Message) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "id=%d %s qd=%d an=%d", m.Header.ID, m.Header.RCode, len(m.Questions), len(m.Answers))
	if q := m.QName(); q != "" {
		fmt.Fprintf(&b, " q=%s", q)
	}
	return b.String()
}
