package dnswire

import (
	"errors"
	"strings"
)

// Errors returned by the name codec.
var (
	ErrNameTooLong     = errors.New("dnswire: name exceeds 255 bytes")
	ErrLabelTooLong    = errors.New("dnswire: label exceeds 63 bytes")
	ErrBadPointer      = errors.New("dnswire: compression pointer out of range")
	ErrPointerLoop     = errors.New("dnswire: compression pointer loop")
	ErrTruncatedName   = errors.New("dnswire: truncated name")
	ErrReservedLabel   = errors.New("dnswire: reserved label type")
	ErrTrailingGarbage = errors.New("dnswire: trailing bytes after message")
)

const (
	maxEncodedName = 255
	maxLabel       = 63
	// maxPointers bounds pointer chasing; a valid message never needs more
	// than the number of labels a 255-byte name can hold.
	maxPointers = 128
)

// appendName encodes name (presentation form, trailing dot optional) into
// buf in wire format, using dict to emit RFC 1035 compression pointers for
// suffixes that have already been written at offsets representable in 14
// bits. It returns the extended buffer. The dict maps a canonical suffix
// string to its wire offset; pass nil to disable compression.
func appendName(buf []byte, name string, dict map[string]int) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return append(buf, 0), nil
	}
	if len(name)+2 > maxEncodedName {
		return buf, ErrNameTooLong
	}
	// Walk suffixes: for "a.b.c" try "a.b.c", then "b.c", then "c".
	rest := name
	for rest != "" {
		if dict != nil {
			if off, ok := dict[rest]; ok && off < 0x4000 {
				buf = append(buf, 0xC0|byte(off>>8), byte(off))
				return buf, nil
			}
			if len(buf) < 0x4000 {
				dict[rest] = len(buf)
			}
		}
		label := rest
		if i := strings.IndexByte(rest, '.'); i >= 0 {
			label = rest[:i]
			rest = rest[i+1:]
		} else {
			rest = ""
		}
		if len(label) == 0 {
			// Empty interior label ("a..b"): encode as a zero-length label is
			// illegal, so reject. Malformed names travel through FlowDNS as
			// data, but on the wire they must still be legal label sequences.
			return buf, ErrTruncatedName
		}
		if len(label) > maxLabel {
			return buf, ErrLabelTooLong
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
	}
	return append(buf, 0), nil
}

// decodeName reads a (possibly compressed) name starting at off within msg.
// It returns the presentation-form name (no trailing dot, original case
// preserved) and the offset of the first byte after the name as it appears
// at off (i.e. after the pointer if the name is compressed there).
func decodeName(msg []byte, off int) (string, int, error) {
	var b strings.Builder
	ptrBudget := maxPointers
	end := -1 // offset after the name at the original position
	pos := off
	written := 0
	for {
		if pos >= len(msg) {
			return "", 0, ErrTruncatedName
		}
		c := msg[pos]
		switch {
		case c == 0:
			if end < 0 {
				end = pos + 1
			}
			return b.String(), end, nil
		case c&0xC0 == 0xC0:
			if pos+1 >= len(msg) {
				return "", 0, ErrTruncatedName
			}
			target := int(c&0x3F)<<8 | int(msg[pos+1])
			if end < 0 {
				end = pos + 2
			}
			if target >= pos || target >= len(msg) {
				// RFC 1035 pointers must point backwards; forward pointers
				// are how loops are built.
				return "", 0, ErrBadPointer
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return "", 0, ErrPointerLoop
			}
			pos = target
		case c&0xC0 != 0:
			return "", 0, ErrReservedLabel
		default:
			l := int(c)
			if pos+1+l > len(msg) {
				return "", 0, ErrTruncatedName
			}
			if written+l+1 > maxEncodedName {
				return "", 0, ErrNameTooLong
			}
			if b.Len() > 0 {
				b.WriteByte('.')
			}
			b.Write(msg[pos+1 : pos+1+l])
			written += l + 1
			pos += 1 + l
		}
	}
}
