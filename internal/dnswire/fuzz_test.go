package dnswire

import (
	"net/netip"
	"testing"
)

// FuzzDecode asserts the DNS message decoder never panics on arbitrary
// bytes — compression-pointer loops, truncated names, lying section
// counts — and that any message it accepts can be re-encoded.
func FuzzDecode(f *testing.F) {
	valid, err := Encode(&Message{
		Header: Header{ID: 7, Response: true, RecursionAvailable: true},
		Questions: []Question{
			{Name: "svc.example.com", Type: TypeA, Class: ClassIN},
		},
		Answers: []Record{
			{Name: "svc.example.com", Type: TypeCNAME, Class: ClassIN, TTL: 300, Target: "edge.cdn.example"},
			{Name: "edge.cdn.example", Type: TypeA, Class: ClassIN, TTL: 60,
				Addr: netip.AddrFrom4([4]byte{198, 51, 100, 7})},
			{Name: "edge.cdn.example", Type: TypeAAAA, Class: ClassIN, TTL: 60,
				Addr: netip.MustParseAddr("2001:db8::7")},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:12]) // header only
	f.Add(valid[:14]) // truncated question
	f.Add([]byte{})   // empty
	// Self-referencing compression pointer at the first question name.
	loop := append([]byte(nil), valid[:12]...)
	loop = append(loop, 0xC0, 12, 0, 1, 0, 1)
	f.Add(loop)
	// Forward-pointing compression pointer.
	fwd := append([]byte(nil), valid[:12]...)
	fwd = append(fwd, 0xC0, 200, 0, 1, 0, 1)
	f.Add(fwd)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err == nil {
			if _, err := Encode(m); err != nil {
				// Re-encoding may legitimately fail (e.g. names that only
				// exist in compressed form decode to >255 bytes is not
				// possible, but record data limits can differ); it must
				// not panic, which reaching here proves.
				_ = err
			}
		}
		// The stream framing path parses prefixes of a receive buffer.
		if m2, n, err := DecodePrefix(data); err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("DecodePrefix consumed %d of %d", n, len(data))
			}
			_ = m2
		}
	})
}
