package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Errors returned by the message codec.
var (
	ErrShortHeader = errors.New("dnswire: message shorter than header")
	ErrShortRecord = errors.New("dnswire: truncated resource record")
	ErrBadRData    = errors.New("dnswire: rdata length mismatch")
	ErrTooManyRRs  = errors.New("dnswire: section count implausibly large")
)

// maxSectionCount rejects messages whose header claims more records than the
// byte budget could possibly hold (each RR needs >= 11 bytes). Guards the
// decoder against allocation bombs on hostile input.
const minRRBytes = 11

// header bit masks.
const (
	bitQR = 1 << 15
	bitAA = 1 << 10
	bitTC = 1 << 9
	bitRD = 1 << 8
	bitRA = 1 << 7
)

// AppendMessage encodes m and appends the wire bytes to buf, compressing
// names with a per-message dictionary. It returns the extended buffer.
func AppendMessage(buf []byte, m *Message) ([]byte, error) {
	base := len(buf)
	dict := make(map[string]int, 8)
	var flags uint16
	if m.Header.Response {
		flags |= bitQR
	}
	flags |= uint16(m.Header.OpCode&0xF) << 11
	if m.Header.Authoritative {
		flags |= bitAA
	}
	if m.Header.Truncated {
		flags |= bitTC
	}
	if m.Header.RecursionDesired {
		flags |= bitRD
	}
	if m.Header.RecursionAvailable {
		flags |= bitRA
	}
	flags |= uint16(m.Header.RCode & 0xF)

	buf = binary.BigEndian.AppendUint16(buf, m.Header.ID)
	buf = binary.BigEndian.AppendUint16(buf, flags)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Questions)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Answers)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Authority)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Additional)))

	var err error
	for i := range m.Questions {
		q := &m.Questions[i]
		// Compression offsets are relative to the start of the DNS message,
		// not the caller's buffer; adjust by rebasing the dict on first use.
		buf, err = appendNameRebased(buf, base, q.Name, dict)
		if err != nil {
			return buf, fmt.Errorf("question %d: %w", i, err)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, section := range [][]Record{m.Answers, m.Authority, m.Additional} {
		for i := range section {
			buf, err = appendRecord(buf, base, &section[i], dict)
			if err != nil {
				return buf, fmt.Errorf("record %d: %w", i, err)
			}
		}
	}
	return buf, nil
}

// appendNameRebased wraps appendName so that dictionary offsets are relative
// to the message start at base.
func appendNameRebased(buf []byte, base int, name string, dict map[string]int) ([]byte, error) {
	// appendName records offsets relative to buf; shift by using a window.
	out, err := appendName(buf[base:], name, dict)
	if err != nil {
		return buf, err
	}
	return append(buf[:base], out...), nil
}

func appendRecord(buf []byte, base int, r *Record, dict map[string]int) ([]byte, error) {
	var err error
	buf, err = appendNameRebased(buf, base, r.Name, dict)
	if err != nil {
		return buf, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(r.Type))
	buf = binary.BigEndian.AppendUint16(buf, uint16(r.Class))
	buf = binary.BigEndian.AppendUint32(buf, r.TTL)
	// Reserve the RDLENGTH slot, then backfill.
	lenAt := len(buf)
	buf = append(buf, 0, 0)
	rdStart := len(buf)
	switch r.Type {
	case TypeA:
		if !r.Addr.Is4() {
			return buf, fmt.Errorf("dnswire: A record with non-IPv4 addr %v", r.Addr)
		}
		a4 := r.Addr.As4()
		buf = append(buf, a4[:]...)
	case TypeAAAA:
		if !r.Addr.Is6() || r.Addr.Is4() {
			return buf, fmt.Errorf("dnswire: AAAA record with non-IPv6 addr %v", r.Addr)
		}
		a16 := r.Addr.As16()
		buf = append(buf, a16[:]...)
	case TypeCNAME, TypeNS, TypePTR:
		buf, err = appendNameRebased(buf, base, r.Target, dict)
		if err != nil {
			return buf, err
		}
	case TypeMX:
		buf = binary.BigEndian.AppendUint16(buf, r.Pref)
		buf, err = appendNameRebased(buf, base, r.Target, dict)
		if err != nil {
			return buf, err
		}
	case TypeSRV:
		buf = binary.BigEndian.AppendUint16(buf, r.Priority)
		buf = binary.BigEndian.AppendUint16(buf, r.Weight)
		buf = binary.BigEndian.AppendUint16(buf, r.Port)
		// RFC 2782: the SRV target must not be compressed.
		buf, err = appendNameRebased(buf, base, r.Target, nil)
		if err != nil {
			return buf, err
		}
	case TypeTXT:
		for _, s := range r.TXT {
			if len(s) > 255 {
				return buf, fmt.Errorf("dnswire: TXT chunk exceeds 255 bytes")
			}
			buf = append(buf, byte(len(s)))
			buf = append(buf, s...)
		}
	case TypeSOA:
		soa := r.SOA
		if soa == nil {
			soa = &SOAData{}
		}
		buf, err = appendNameRebased(buf, base, soa.MName, dict)
		if err != nil {
			return buf, err
		}
		buf, err = appendNameRebased(buf, base, soa.RName, dict)
		if err != nil {
			return buf, err
		}
		buf = binary.BigEndian.AppendUint32(buf, soa.Serial)
		buf = binary.BigEndian.AppendUint32(buf, soa.Refresh)
		buf = binary.BigEndian.AppendUint32(buf, soa.Retry)
		buf = binary.BigEndian.AppendUint32(buf, soa.Expire)
		buf = binary.BigEndian.AppendUint32(buf, soa.Minimum)
	default:
		buf = append(buf, r.Raw...)
	}
	rdLen := len(buf) - rdStart
	if rdLen > 0xFFFF {
		return buf, fmt.Errorf("dnswire: rdata exceeds 65535 bytes")
	}
	binary.BigEndian.PutUint16(buf[lenAt:], uint16(rdLen))
	return buf, nil
}

// Encode returns the wire bytes of m.
func Encode(m *Message) ([]byte, error) {
	return AppendMessage(make([]byte, 0, 512), m)
}

// Decode parses a full DNS message. Trailing bytes after the declared
// sections are rejected: a record stream carrying framed messages must not
// silently lose sync.
func Decode(msg []byte) (*Message, error) {
	m := new(Message)
	off, err := decodeInto(msg, m)
	if err != nil {
		return nil, err
	}
	if off != len(msg) {
		return nil, ErrTrailingGarbage
	}
	return m, nil
}

// DecodePrefix parses one DNS message from the front of msg and returns it
// along with the number of bytes consumed, permitting trailing data.
func DecodePrefix(msg []byte) (*Message, int, error) {
	m := new(Message)
	off, err := decodeInto(msg, m)
	if err != nil {
		return nil, 0, err
	}
	return m, off, nil
}

func decodeInto(msg []byte, m *Message) (int, error) {
	if len(msg) < 12 {
		return 0, ErrShortHeader
	}
	flags := binary.BigEndian.Uint16(msg[2:4])
	m.Header = Header{
		ID:                 binary.BigEndian.Uint16(msg[0:2]),
		Response:           flags&bitQR != 0,
		OpCode:             OpCode(flags >> 11 & 0xF),
		Authoritative:      flags&bitAA != 0,
		Truncated:          flags&bitTC != 0,
		RecursionDesired:   flags&bitRD != 0,
		RecursionAvailable: flags&bitRA != 0,
		RCode:              RCode(flags & 0xF),
		QDCount:            binary.BigEndian.Uint16(msg[4:6]),
		ANCount:            binary.BigEndian.Uint16(msg[6:8]),
		NSCount:            binary.BigEndian.Uint16(msg[8:10]),
		ARCount:            binary.BigEndian.Uint16(msg[10:12]),
	}
	// Every question needs >= 5 wire bytes and every RR >= 11 (a compressed
	// name is 2 bytes, a root name 1), so 5 bytes/entry is a safe lower
	// bound; header counts exceeding it cannot be satisfied by the payload.
	totalRRs := int(m.Header.QDCount) + int(m.Header.ANCount) + int(m.Header.NSCount) + int(m.Header.ARCount)
	if totalRRs*5 > len(msg)-12 {
		return 0, ErrTooManyRRs
	}
	off := 12
	var err error
	if n := int(m.Header.QDCount); n > 0 {
		m.Questions = make([]Question, 0, min(n, 16))
		for i := 0; i < n; i++ {
			var q Question
			q.Name, off, err = decodeName(msg, off)
			if err != nil {
				return 0, err
			}
			if off+4 > len(msg) {
				return 0, ErrShortRecord
			}
			q.Type = Type(binary.BigEndian.Uint16(msg[off:]))
			q.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
			off += 4
			m.Questions = append(m.Questions, q)
		}
	}
	sections := []struct {
		count int
		dst   *[]Record
	}{
		{int(m.Header.ANCount), &m.Answers},
		{int(m.Header.NSCount), &m.Authority},
		{int(m.Header.ARCount), &m.Additional},
	}
	for _, sec := range sections {
		if sec.count == 0 {
			continue
		}
		*sec.dst = make([]Record, 0, min(sec.count, 32))
		for i := 0; i < sec.count; i++ {
			var r Record
			off, err = decodeRecord(msg, off, &r)
			if err != nil {
				return 0, err
			}
			*sec.dst = append(*sec.dst, r)
		}
	}
	return off, nil
}

func decodeRecord(msg []byte, off int, r *Record) (int, error) {
	var err error
	r.Name, off, err = decodeName(msg, off)
	if err != nil {
		return 0, err
	}
	if off+10 > len(msg) {
		return 0, ErrShortRecord
	}
	r.Type = Type(binary.BigEndian.Uint16(msg[off:]))
	r.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
	r.TTL = binary.BigEndian.Uint32(msg[off+4:])
	rdLen := int(binary.BigEndian.Uint16(msg[off+8:]))
	off += 10
	if off+rdLen > len(msg) {
		return 0, ErrShortRecord
	}
	rd := msg[off : off+rdLen]
	rdEnd := off + rdLen
	switch r.Type {
	case TypeA:
		if rdLen != 4 {
			return 0, ErrBadRData
		}
		r.Addr = netip.AddrFrom4([4]byte(rd))
	case TypeAAAA:
		if rdLen != 16 {
			return 0, ErrBadRData
		}
		r.Addr = netip.AddrFrom16([16]byte(rd))
	case TypeCNAME, TypeNS, TypePTR:
		var end int
		r.Target, end, err = decodeName(msg, off)
		if err != nil {
			return 0, err
		}
		if end != rdEnd {
			return 0, ErrBadRData
		}
	case TypeMX:
		if rdLen < 3 {
			return 0, ErrBadRData
		}
		r.Pref = binary.BigEndian.Uint16(rd)
		var end int
		r.Target, end, err = decodeName(msg, off+2)
		if err != nil {
			return 0, err
		}
		if end != rdEnd {
			return 0, ErrBadRData
		}
	case TypeSRV:
		if rdLen < 7 {
			return 0, ErrBadRData
		}
		r.Priority = binary.BigEndian.Uint16(rd)
		r.Weight = binary.BigEndian.Uint16(rd[2:])
		r.Port = binary.BigEndian.Uint16(rd[4:])
		var end int
		r.Target, end, err = decodeName(msg, off+6)
		if err != nil {
			return 0, err
		}
		if end != rdEnd {
			return 0, ErrBadRData
		}
	case TypeTXT:
		for p := 0; p < rdLen; {
			l := int(rd[p])
			p++
			if p+l > rdLen {
				return 0, ErrBadRData
			}
			r.TXT = append(r.TXT, string(rd[p:p+l]))
			p += l
		}
	case TypeSOA:
		soa := new(SOAData)
		var end int
		soa.MName, end, err = decodeName(msg, off)
		if err != nil {
			return 0, err
		}
		soa.RName, end, err = decodeName(msg, end)
		if err != nil {
			return 0, err
		}
		if end+20 != rdEnd {
			return 0, ErrBadRData
		}
		soa.Serial = binary.BigEndian.Uint32(msg[end:])
		soa.Refresh = binary.BigEndian.Uint32(msg[end+4:])
		soa.Retry = binary.BigEndian.Uint32(msg[end+8:])
		soa.Expire = binary.BigEndian.Uint32(msg[end+12:])
		soa.Minimum = binary.BigEndian.Uint32(msg[end+16:])
		r.SOA = soa
	default:
		r.Raw = append([]byte(nil), rd...)
	}
	return rdEnd, nil
}
