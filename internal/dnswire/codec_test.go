package dnswire

import (
	"bytes"
	"encoding/binary"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func sampleResponse(t *testing.T) *Message {
	return &Message{
		Header: Header{
			ID: 0x1234, Response: true, RecursionDesired: true,
			RecursionAvailable: true, RCode: RCodeNoError,
		},
		Questions: []Question{{Name: "video.service.example", Type: TypeA, Class: ClassIN}},
		Answers: []Record{
			{Name: "video.service.example", Type: TypeCNAME, Class: ClassIN, TTL: 300,
				Target: "edge7.cdn.example"},
			{Name: "edge7.cdn.example", Type: TypeA, Class: ClassIN, TTL: 60,
				Addr: mustAddr(t, "198.51.100.7")},
		},
	}
}

func TestRoundTripResponse(t *testing.T) {
	m := sampleResponse(t)
	wire, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.ID != 0x1234 || !got.Header.Response {
		t.Fatalf("header = %+v", got.Header)
	}
	if got.QName() != "video.service.example" {
		t.Fatalf("QName = %q", got.QName())
	}
	if len(got.Answers) != 2 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	if got.Answers[0].Type != TypeCNAME || got.Answers[0].Target != "edge7.cdn.example" {
		t.Fatalf("answer[0] = %+v", got.Answers[0])
	}
	if got.Answers[1].Type != TypeA || got.Answers[1].Addr != mustAddr(t, "198.51.100.7") {
		t.Fatalf("answer[1] = %+v", got.Answers[1])
	}
	if got.Answers[1].TTL != 60 {
		t.Fatalf("TTL = %d", got.Answers[1].TTL)
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	m := sampleResponse(t)
	wire, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// The QName repeats in answer 0 and the shared suffix "cdn.example"
	// repeats in answer 1; compression must beat naive re-encoding.
	naive := 12 +
		(len("video.service.example") + 2 + 4) + // question
		(len("video.service.example") + 2 + 10 + len("edge7.cdn.example") + 2) +
		(len("edge7.cdn.example") + 2 + 10 + 4)
	if len(wire) >= naive {
		t.Fatalf("wire %d bytes, naive %d: compression ineffective", len(wire), naive)
	}
	// And decoding must still see full names.
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Name != "video.service.example" {
		t.Fatalf("compressed name decode = %q", got.Answers[0].Name)
	}
}

func TestRoundTripAAAA(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 9, Response: true},
		Questions: []Question{{Name: "v6.example", Type: TypeAAAA, Class: ClassIN}},
		Answers: []Record{{Name: "v6.example", Type: TypeAAAA, Class: ClassIN, TTL: 7200,
			Addr: mustAddr(t, "2001:db8::42")}},
	}
	wire, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Addr != mustAddr(t, "2001:db8::42") {
		t.Fatalf("AAAA addr = %v", got.Answers[0].Addr)
	}
}

func TestRoundTripAllSections(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 77, Response: true, Authoritative: true},
		Questions: []Question{{Name: "example.org", Type: TypeMX, Class: ClassIN}},
		Answers: []Record{
			{Name: "example.org", Type: TypeMX, Class: ClassIN, TTL: 3600,
				Pref: 10, Target: "mail.example.org"},
			{Name: "example.org", Type: TypeTXT, Class: ClassIN, TTL: 60,
				TXT: []string{"v=spf1 -all", "second-chunk"}},
		},
		Authority: []Record{
			{Name: "example.org", Type: TypeNS, Class: ClassIN, TTL: 86400,
				Target: "ns1.example.org"},
			{Name: "example.org", Type: TypeSOA, Class: ClassIN, TTL: 86400,
				SOA: &SOAData{MName: "ns1.example.org", RName: "hostmaster.example.org",
					Serial: 2022110501, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300}},
		},
		Additional: []Record{
			{Name: "mail.example.org", Type: TypeA, Class: ClassIN, TTL: 3600,
				Addr: mustAddr(t, "192.0.2.25")},
		},
	}
	wire, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 2 || len(got.Authority) != 2 || len(got.Additional) != 1 {
		t.Fatalf("sections = %d/%d/%d", len(got.Answers), len(got.Authority), len(got.Additional))
	}
	if got.Answers[0].Pref != 10 || got.Answers[0].Target != "mail.example.org" {
		t.Fatalf("MX = %+v", got.Answers[0])
	}
	if !reflect.DeepEqual(got.Answers[1].TXT, []string{"v=spf1 -all", "second-chunk"}) {
		t.Fatalf("TXT = %v", got.Answers[1].TXT)
	}
	soa := got.Authority[1].SOA
	if soa == nil || soa.Serial != 2022110501 || soa.RName != "hostmaster.example.org" {
		t.Fatalf("SOA = %+v", soa)
	}
}

func TestRoundTripUnknownType(t *testing.T) {
	m := &Message{
		Header: Header{ID: 5, Response: true},
		Answers: []Record{{Name: "x.example", Type: Type(999), Class: ClassIN, TTL: 1,
			Raw: []byte{0xDE, 0xAD, 0xBE, 0xEF}}},
	}
	wire, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Answers[0].Raw, []byte{0xDE, 0xAD, 0xBE, 0xEF}) {
		t.Fatalf("raw rdata = %x", got.Answers[0].Raw)
	}
}

func TestEncodeRejectsBadRecords(t *testing.T) {
	cases := []Message{
		{Answers: []Record{{Name: "a.example", Type: TypeA, Addr: mustAddr(t, "2001:db8::1")}}},
		{Answers: []Record{{Name: "a.example", Type: TypeAAAA, Addr: mustAddr(t, "192.0.2.1")}}},
		{Answers: []Record{{Name: strings.Repeat("a", 64) + ".example", Type: TypeA, Addr: mustAddr(t, "192.0.2.1")}}},
		{Answers: []Record{{Name: strings.Repeat("ab.", 100) + "example", Type: TypeA, Addr: mustAddr(t, "192.0.2.1")}}},
		{Answers: []Record{{Name: "t.example", Type: TypeTXT, TXT: []string{strings.Repeat("x", 256)}}}},
	}
	for i := range cases {
		cases[i].Header.ANCount = 1
		if _, err := Encode(&cases[i]); err == nil {
			t.Errorf("case %d: Encode accepted invalid record", i)
		}
	}
}

func TestDecodeShortInputs(t *testing.T) {
	m := sampleResponse(t)
	wire, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail cleanly, never panic.
	for l := 0; l < len(wire); l++ {
		if _, err := Decode(wire[:l]); err == nil {
			t.Fatalf("Decode accepted %d-byte prefix", l)
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	wire, err := Encode(sampleResponse(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(wire, 0x00)); err != ErrTrailingGarbage {
		t.Fatalf("err = %v, want ErrTrailingGarbage", err)
	}
	// DecodePrefix tolerates it and reports consumption.
	msg, n, err := DecodePrefix(append(wire, 0xAA, 0xBB))
	if err != nil || n != len(wire) || msg.QName() != "video.service.example" {
		t.Fatalf("DecodePrefix = %v, %d, %v", msg, n, err)
	}
}

func TestDecodePointerLoop(t *testing.T) {
	// Header + a question whose name is a pointer to itself.
	msg := make([]byte, 12)
	binary.BigEndian.PutUint16(msg[4:], 1) // QDCount
	msg = append(msg, 0xC0, 12)            // pointer to offset 12 (itself)
	msg = append(msg, 0, 1, 0, 1)
	if _, err := Decode(msg); err == nil {
		t.Fatal("self-pointer accepted")
	}
}

func TestDecodeForwardPointerRejected(t *testing.T) {
	msg := make([]byte, 12)
	binary.BigEndian.PutUint16(msg[4:], 1)
	msg = append(msg, 0xC0, 40) // forward/out-of-range pointer
	msg = append(msg, 0, 1, 0, 1)
	if _, err := Decode(msg); err == nil {
		t.Fatal("forward pointer accepted")
	}
}

func TestDecodeCountBomb(t *testing.T) {
	msg := make([]byte, 12)
	binary.BigEndian.PutUint16(msg[6:], 0xFFFF) // 65535 answers, no bytes
	if _, err := Decode(msg); err != ErrTooManyRRs {
		t.Fatalf("err = %v, want ErrTooManyRRs", err)
	}
}

func TestDecodeReservedLabelBits(t *testing.T) {
	msg := make([]byte, 12)
	binary.BigEndian.PutUint16(msg[4:], 1)
	msg = append(msg, 0x80, 'x') // 10xxxxxx label type is reserved
	msg = append(msg, 0, 0, 1, 0, 1)
	if _, err := Decode(msg); err == nil {
		t.Fatal("reserved label type accepted")
	}
}

func TestRDataLengthMismatch(t *testing.T) {
	// Build a valid A record then corrupt RDLENGTH.
	m := &Message{Header: Header{Response: true},
		Answers: []Record{{Name: "a.example", Type: TypeA, Class: ClassIN, TTL: 1,
			Addr: mustAddr(t, "192.0.2.1")}}}
	wire, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	wire[len(wire)-5] = 3 // RDLENGTH 4 -> 3
	if _, err := Decode(wire[:len(wire)-1]); err == nil {
		t.Fatal("corrupt RDLENGTH accepted")
	}
}

func TestNameCaseAndDotHandling(t *testing.T) {
	m := &Message{
		Header:    Header{Response: true},
		Questions: []Question{{Name: "MiXeD.Example.COM.", Type: TypeA, Class: ClassIN}},
	}
	wire, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	// Wire format preserves case; trailing dot is not represented.
	if got.QName() != "MiXeD.Example.COM" {
		t.Fatalf("QName = %q", got.QName())
	}
}

func TestRootName(t *testing.T) {
	m := &Message{
		Header:    Header{Response: true},
		Questions: []Question{{Name: ".", Type: TypeNS, Class: ClassIN}},
	}
	wire, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.QName() != "" {
		t.Fatalf("root QName = %q", got.QName())
	}
}

func TestTypeAndRCodeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeAAAA.String() != "AAAA" || TypeCNAME.String() != "CNAME" {
		t.Error("type strings wrong")
	}
	if Type(9999).String() != "TYPE9999" {
		t.Errorf("unknown type = %q", Type(9999).String())
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(15).String() != "RCODE15" {
		t.Error("rcode strings wrong")
	}
}

func TestMessageString(t *testing.T) {
	s := sampleResponse(t).String()
	for _, want := range []string{"id=4660", "NOERROR", "q=video.service.example"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

// Property: encode→decode is the identity on well-formed A/CNAME responses.
func TestQuickRoundTrip(t *testing.T) {
	f := func(id uint16, ttl uint32, lbl1, lbl2 uint8, ip [4]byte) bool {
		name := genLabel(lbl1) + ".svc." + genLabel(lbl2) + ".example"
		cdn := "edge." + genLabel(lbl2) + ".cdn-host.net"
		m := &Message{
			Header:    Header{ID: id, Response: true},
			Questions: []Question{{Name: name, Type: TypeA, Class: ClassIN}},
			Answers: []Record{
				{Name: name, Type: TypeCNAME, Class: ClassIN, TTL: ttl % 86400, Target: cdn},
				{Name: cdn, Type: TypeA, Class: ClassIN, TTL: ttl % 3600, Addr: netip.AddrFrom4(ip)},
			},
		}
		wire, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		return got.Header.ID == id &&
			got.QName() == name &&
			got.Answers[0].Target == cdn &&
			got.Answers[0].TTL == ttl%86400 &&
			got.Answers[1].Addr == netip.AddrFrom4(ip)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary bytes.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func genLabel(n uint8) string {
	l := int(n%20) + 1
	b := make([]byte, l)
	for i := range b {
		b[i] = byte('a' + (int(n)+i*7)%26)
	}
	return string(b)
}

func BenchmarkEncode(b *testing.B) {
	m := &Message{
		Header:    Header{ID: 1, Response: true},
		Questions: []Question{{Name: "video.service.example", Type: TypeA, Class: ClassIN}},
		Answers: []Record{
			{Name: "video.service.example", Type: TypeCNAME, Class: ClassIN, TTL: 300, Target: "edge7.cdn.example"},
			{Name: "edge7.cdn.example", Type: TypeA, Class: ClassIN, TTL: 60, Addr: netip.AddrFrom4([4]byte{198, 51, 100, 7})},
		},
	}
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		buf, err = AppendMessage(buf, m)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	m := &Message{
		Header:    Header{ID: 1, Response: true},
		Questions: []Question{{Name: "video.service.example", Type: TypeA, Class: ClassIN}},
		Answers: []Record{
			{Name: "video.service.example", Type: TypeCNAME, Class: ClassIN, TTL: 300, Target: "edge7.cdn.example"},
			{Name: "edge7.cdn.example", Type: TypeA, Class: ClassIN, TTL: 60, Addr: netip.AddrFrom4([4]byte{198, 51, 100, 7})},
		},
	}
	wire, err := Encode(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRoundTripSRV(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 33, Response: true},
		Questions: []Question{{Name: "_sip._tcp.example.org", Type: TypeSRV, Class: ClassIN}},
		Answers: []Record{{
			Name: "_sip._tcp.example.org", Type: TypeSRV, Class: ClassIN, TTL: 300,
			Priority: 10, Weight: 60, Port: 5060, Target: "sip1.example.org",
		}},
	}
	wire, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	srv := got.Answers[0]
	if srv.Priority != 10 || srv.Weight != 60 || srv.Port != 5060 || srv.Target != "sip1.example.org" {
		t.Fatalf("SRV = %+v", srv)
	}
	// Underscore-labeled owner names (the paper's dominant malformation
	// source) must survive the wire untouched.
	if srv.Name != "_sip._tcp.example.org" {
		t.Fatalf("owner = %q", srv.Name)
	}
	if TypeSRV.String() != "SRV" {
		t.Fatal("SRV type string")
	}
}

func TestSRVShortRData(t *testing.T) {
	m := &Message{Header: Header{Response: true},
		Answers: []Record{{Name: "s.example", Type: TypeSRV, Class: ClassIN, TTL: 1,
			Priority: 1, Weight: 1, Port: 1, Target: "t.example"}}}
	wire, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the SRV rdata below its 7-byte minimum: find RDLENGTH and
	// corrupt it.
	wire[len(wire)-len("t.example")-2-6-1] = 0 // best-effort corruption
	if _, err := Decode(wire[:len(wire)-8]); err == nil {
		t.Fatal("corrupt SRV accepted")
	}
}

// Property: for responses whose answers share the question's name (the
// common shape of real responses), compression never produces a larger
// message than the sum of naive single-record encodings.
func TestQuickCompressionNeverGrows(t *testing.T) {
	f := func(l1, l2 uint8, ip [4]byte) bool {
		name := genLabel(l1) + ".svc." + genLabel(l2) + ".example"
		m := &Message{
			Header:    Header{Response: true},
			Questions: []Question{{Name: name, Type: TypeA, Class: ClassIN}},
			Answers: []Record{
				{Name: name, Type: TypeA, Class: ClassIN, TTL: 60, Addr: netip.AddrFrom4(ip)},
				{Name: name, Type: TypeA, Class: ClassIN, TTL: 60, Addr: netip.AddrFrom4(ip)},
			},
		}
		wire, err := Encode(m)
		if err != nil {
			return false
		}
		naive := 12 + (len(name) + 2 + 4) + 2*(len(name)+2+10+4)
		if len(wire) > naive {
			return false
		}
		got, err := Decode(wire)
		return err == nil && got.Answers[1].Name == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
