package stream

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
)

// writeOneFrame sends a single valid DNS response frame down w.
func writeOneFrame(t *testing.T, w net.Conn) {
	t.Helper()
	sink := NewDNSTCPSink(w)
	if err := sink.Send(responseAB(t)); err != nil {
		t.Fatal(err)
	}
}

// TestDNSTCPIdleTimeout proves a resolver stream that goes silent is
// closed after IdleTimeout — the read goroutine is released, the close is
// counted in Stats.Timeouts, and the frames read before the silence were
// processed normally.
func TestDNSTCPIdleTimeout(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	src := NewDNSTCPSource(server)
	src.IdleTimeout = 50 * time.Millisecond
	in := newTestIngest(64, 64)

	done := make(chan error, 1)
	go func() { done <- src.Run(context.Background(), in) }()
	writeOneFrame(t, client)
	// ...and then the peer wedges: no close, no more frames.
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "idle") {
			t.Fatalf("Run = %v, want idle-timeout error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle timeout never fired; read goroutine still pinned")
	}
	st := src.Stats()
	if st.Timeouts != 1 {
		t.Fatalf("Timeouts = %d, want 1", st.Timeouts)
	}
	if st.Frames != 1 || st.Records != 2 {
		t.Fatalf("frames/records = %d/%d, want 1/2 (pre-silence traffic lost?)", st.Frames, st.Records)
	}
}

// TestDNSTCPNoTimeoutWhenTrafficFlows proves the deadline is per-frame: a
// stream slower than IdleTimeout overall but never silent longer than it
// stays open.
func TestDNSTCPNoTimeoutWhenTrafficFlows(t *testing.T) {
	client, server := net.Pipe()
	src := NewDNSTCPSource(server)
	src.IdleTimeout = 250 * time.Millisecond
	in := newTestIngest(64, 64)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- src.Run(ctx, in) }()
	for i := 0; i < 4; i++ {
		writeOneFrame(t, client)
		time.Sleep(60 * time.Millisecond) // total > IdleTimeout, gaps < it
	}
	cancel()
	client.Close()
	if err := <-done; err != nil {
		t.Fatalf("Run = %v, want clean end", err)
	}
	st := src.Stats()
	if st.Timeouts != 0 || st.Frames != 4 {
		t.Fatalf("stats = %+v, want 4 frames and no timeouts", st)
	}
}

// TestDNSListenerIdleTimeoutPropagates proves the listener hands the knob
// to every accepted stream, a wedged stream dies without taking the
// listener down, and the timeout shows in the aggregated stats.
func TestDNSListenerIdleTimeoutPropagates(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := NewDNSListener(ln)
	l.IdleTimeout = 50 * time.Millisecond
	var streamErrs atomic.Uint64
	l.OnStreamError = func(error) { streamErrs.Add(1) }
	in := newTestIngest(64, 64)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- l.Run(ctx, in) }()

	// A client that connects and never sends: reaped by the idle bound.
	wedged, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer wedged.Close()
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Timeouts == 0 {
		if time.Now().After(deadline) {
			t.Fatal("wedged stream never timed out")
		}
		time.Sleep(time.Millisecond)
	}
	if streamErrs.Load() != 1 {
		t.Fatalf("OnStreamError calls = %d, want 1", streamErrs.Load())
	}

	// The listener survived: a healthy client still gets through.
	healthy, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	writeOneFrame(t, healthy)
	for l.Stats().Frames == 0 {
		if time.Now().After(deadline) {
			t.Fatal("listener stopped serving after an idle reap")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("listener Run = %v", err)
	}
}

// TestDNSTCPReadFailpoint proves the stream.dns.read site ends a stream
// with injection provenance intact.
func TestDNSTCPReadFailpoint(t *testing.T) {
	defer fault.DisableAll()
	client, server := net.Pipe()
	defer client.Close()
	src := NewDNSTCPSource(server)
	if err := fault.Enable("stream.dns.read", "1*error(peer reset)"); err != nil {
		t.Fatal(err)
	}
	err := src.Run(context.Background(), newTestIngest(4, 4))
	if err == nil || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Run = %v, want injected read error", err)
	}
}

// fakeBatchRing is a scripted batchConnReader: each read() returns the
// next batch of datagrams, then the script's terminal error.
type fakeBatchRing struct {
	batches [][][]byte
	final   error
	i       int
	last    [][]byte
}

func (f *fakeBatchRing) read() (int, error) {
	if f.i >= len(f.batches) {
		return 0, f.final
	}
	f.last = f.batches[f.i]
	f.i++
	return len(f.last), nil
}

func (f *fakeBatchRing) packet(i int) []byte { return f.last[i] }

// swapBatchReader installs fn as the batch-reader constructor for one test.
func swapBatchReader(t *testing.T, fn func(net.PacketConn, int, int) batchConnReader) {
	t.Helper()
	old := newBatchReaderFn
	newBatchReaderFn = fn
	t.Cleanup(func() { newBatchReaderFn = old })
}

// TestFlowUDPBatchedLoopViaSeam exercises the batched drain loop on every
// platform: a scripted ring stands in for recvmmsg, so the loop's decode,
// accounting, and clean-shutdown behavior is covered even where the real
// syscall path cannot build.
func TestFlowUDPBatchedLoopViaSeam(t *testing.T) {
	ring := &fakeBatchRing{
		batches: [][][]byte{
			{v5Datagram(t, 5), v5Datagram(t, 3)},
			{v5Datagram(t, 2), []byte{0xde, 0xad}}, // one good, one runt
		},
		final: net.ErrClosed,
	}
	swapBatchReader(t, func(net.PacketConn, int, int) batchConnReader { return ring })

	src := NewFlowUDPSource(newScriptedPacketConn(nil))
	src.BatchSize = 8
	in := newTestIngest(16, 1<<10)
	if err := src.Run(context.Background(), in); err != nil {
		t.Fatalf("Run = %v, want clean end on closed socket", err)
	}
	st := src.Stats()
	if st.Frames != 4 || st.Records != 10 || st.DecodeError != 1 {
		t.Fatalf("stats = %+v, want 4 frames / 10 records / 1 decode error", st)
	}
	if got := in.flow.Stats().Enqueued; got != 10 {
		t.Fatalf("enqueued = %d, want 10", got)
	}
}

// TestFlowUDPRuntimeDegradation exercises the runtime recvmmsg-degradation
// branch build-tag-independently: the ring reports errBatchUnsupported on
// its first read (a kernel rejecting the syscall), and the source must
// degrade to the single-read loop on the same socket without losing a
// datagram or surfacing an error.
func TestFlowUDPRuntimeDegradation(t *testing.T) {
	ring := &fakeBatchRing{final: errBatchUnsupported}
	swapBatchReader(t, func(net.PacketConn, int, int) batchConnReader { return ring })

	pkts := [][]byte{v5Datagram(t, 4), v5Datagram(t, 6)}
	conn := newScriptedPacketConn(pkts)
	src := NewFlowUDPSource(conn)
	src.BatchSize = 8
	in := newTestIngest(16, 1<<10)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- src.Run(ctx, in) }()
	deadline := time.Now().Add(5 * time.Second)
	for src.Stats().Records < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("degraded loop stalled: stats = %+v", src.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run = %v", err)
	}
	if ring.i != 0 {
		// read() consumed no scripted batches; it only reported unsupported.
		t.Fatalf("ring consumed %d batches after degradation", ring.i)
	}
	st := src.Stats()
	if st.Frames != 2 || st.Records != 10 || st.DecodeError != 0 {
		t.Fatalf("stats = %+v, want 2 frames / 10 records via the single loop", st)
	}
}

// TestFlowUDPReadFailpoint proves the stream.udp.read site surfaces with
// provenance from the single-read loop.
func TestFlowUDPReadFailpoint(t *testing.T) {
	defer fault.DisableAll()
	src := NewFlowUDPSource(newScriptedPacketConn(nil))
	src.BatchSize = 1 // force the single-read loop
	if err := fault.Enable("stream.udp.read", "1*error(socket gone)"); err != nil {
		t.Fatal(err)
	}
	err := src.Run(context.Background(), newTestIngest(4, 4))
	if err == nil || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Run = %v, want injected read error", err)
	}
}
