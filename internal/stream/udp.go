package stream

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"

	"repro/internal/ipfix"
	"repro/internal/netflow"
	"repro/internal/queue"
)

// FlowUDPSource reads flow export datagrams — NetFlow v5, NetFlow v9, or
// IPFIX, distinguished by the version word (5/9/10) — from a packet
// connection and offers the decoded flow records to out. The paper names
// both NetFlow and IPFIX as the flow formats ISPs export.
type FlowUDPSource struct {
	conn       net.PacketConn
	out        *queue.Queue[netflow.FlowRecord]
	cache      *netflow.TemplateCache
	ipfixCache *ipfix.Cache

	datagrams   atomic.Uint64
	decodeError atomic.Uint64
	records     atomic.Uint64
}

// NewFlowUDPSource wraps conn. Fresh template caches (v9 and IPFIX) are
// created per source, matching one cache per collector socket.
func NewFlowUDPSource(conn net.PacketConn, out *queue.Queue[netflow.FlowRecord]) *FlowUDPSource {
	return &FlowUDPSource{
		conn:       conn,
		out:        out,
		cache:      netflow.NewTemplateCache(),
		ipfixCache: ipfix.NewCache(),
	}
}

// Run reads datagrams until the connection is closed. A closed connection
// returns nil; other errors are returned.
func (s *FlowUDPSource) Run() error {
	buf := make([]byte, 65535)
	for {
		n, _, err := s.conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("stream: netflow udp read: %w", err)
		}
		s.datagrams.Add(1)
		s.ingest(buf[:n])
	}
}

// ingest decodes one datagram and offers its records; split out so tests
// and in-process pipelines can bypass the socket.
func (s *FlowUDPSource) ingest(pkt []byte) {
	if len(pkt) < 2 {
		s.decodeError.Add(1)
		return
	}
	version := uint16(pkt[0])<<8 | uint16(pkt[1])
	switch version {
	case 5:
		hdr, recs, err := netflow.DecodeV5(pkt)
		if err != nil {
			s.decodeError.Add(1)
			return
		}
		for i := range recs {
			fr := recs[i].ToFlowRecord(hdr)
			s.records.Add(1)
			s.out.Offer(fr)
		}
	case 9:
		p, err := netflow.DecodeV9(pkt, s.cache)
		if err != nil {
			s.decodeError.Add(1)
			return
		}
		for _, fr := range p.Records {
			s.records.Add(1)
			s.out.Offer(fr)
		}
	case 10:
		m, err := ipfix.Decode(pkt, s.ipfixCache)
		if err != nil {
			s.decodeError.Add(1)
			return
		}
		for _, fr := range m.Records {
			s.records.Add(1)
			s.out.Offer(fr)
		}
	default:
		s.decodeError.Add(1)
	}
}

// Stats snapshots the source counters.
func (s *FlowUDPSource) Stats() SourceStats {
	return SourceStats{
		Frames:      s.datagrams.Load(),
		DecodeError: s.decodeError.Load(),
		Records:     s.records.Load(),
		Queue:       s.out.Stats(),
	}
}

// FlowUDPSink batches flow records into NetFlow datagrams and writes them to
// a PacketConn — the exporter side used by the workload generator.
type FlowUDPSink struct {
	conn     net.Conn
	template netflow.Template
	seq      uint32
	sourceID uint32
	batch    []netflow.FlowRecord
	batchCap int
}

// NewFlowUDPSink creates an exporter writing v9 datagrams under the
// standard template, batching up to batchCap records per datagram.
func NewFlowUDPSink(conn net.Conn, sourceID uint32, batchCap int) *FlowUDPSink {
	if batchCap < 1 {
		batchCap = 20
	}
	return &FlowUDPSink{
		conn:     conn,
		template: netflow.StandardTemplate(),
		sourceID: sourceID,
		batchCap: batchCap,
	}
}

// Send queues one record, flushing a full batch.
func (s *FlowUDPSink) Send(fr netflow.FlowRecord) error {
	s.batch = append(s.batch, fr)
	if len(s.batch) >= s.batchCap {
		return s.Flush()
	}
	return nil
}

// Flush writes any batched records as one datagram.
func (s *FlowUDPSink) Flush() error {
	if len(s.batch) == 0 {
		return nil
	}
	s.seq++
	pkt, err := netflow.EncodeV9(netflow.V9Header{
		SequenceNum: s.seq,
		SourceID:    s.sourceID,
		UnixSecs:    uint32(s.batch[0].Timestamp.Unix()),
	}, s.template, s.batch)
	if err != nil {
		return err
	}
	s.batch = s.batch[:0]
	_, err = s.conn.Write(pkt)
	return err
}
