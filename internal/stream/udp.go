package stream

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/fault"
	"repro/internal/ipfix"
	"repro/internal/netflow"
)

// fpUDPRead injects read faults into the flow UDP read loops, batched and
// single alike (error ends the source like a dead socket; delay stalls it
// like a starved exporter).
var fpUDPRead = fault.New("stream.udp.read")

// batchConnReader is the batched-read contract Run drains when the
// platform and socket support it. The real implementation is the
// recvmmsg ring in batch_linux.go; the seam below lets tests substitute
// one on any platform.
type batchConnReader interface {
	// read blocks for at least one datagram and reports how many were
	// drained; errBatchUnsupported means the socket cannot do batch reads
	// after all and the source must degrade to the single-read loop.
	read() (int, error)
	// packet returns the i-th datagram of the last read, aliasing the
	// ring until the next read.
	packet(i int) []byte
}

// newBatchReaderFn builds the platform batch reader; a nil return means
// batch reads are unavailable (non-Linux build, no raw descriptor) and the
// single-read loop serves the socket. Tests swap it to exercise the
// fallback and runtime-degradation paths independent of build tags; the
// explicit nil check keeps a typed-nil *batchReader from turning into a
// non-nil interface.
var newBatchReaderFn = func(conn net.PacketConn, n, bufSize int) batchConnReader {
	if br := newBatchReader(conn, n, bufSize); br != nil {
		return br
	}
	return nil
}

// DefaultIngestBatch is the number of datagrams a FlowUDPSource drains per
// batched socket read when no explicit batch size is configured. 32 keeps
// the per-source buffer ring at 2 MiB (32 × 64 KiB datagram slots) while
// amortizing the syscall and the lookup-queue lock over enough packets that
// neither shows up in the ingest profile at line rate.
const DefaultIngestBatch = 32

// maxDatagram is the largest UDP payload a flow export datagram can carry;
// each ring slot is this large so batched reads never truncate.
const maxDatagram = 65535

// FlowUDPSource reads flow export datagrams — NetFlow v5, NetFlow v9, or
// IPFIX, distinguished by the version word (5/9/10) — from a packet
// connection and offers the decoded flow records through the ingest façade.
// The paper names both NetFlow and IPFIX as the flow formats ISPs export.
//
// On platforms and connections that support it, datagrams are drained in
// recvmmsg batches: one syscall fills a reusable ring of up to BatchSize
// message buffers, and the whole batch is decoded into a single
// OfferFlowBatch call, so both the syscall cost and the lookup-queue lock
// are paid once per batch instead of once per packet. Everywhere else —
// non-Linux builds, connections that do not expose a raw file descriptor
// (test fakes, tunnels), or kernels rejecting recvmmsg — the source falls
// back to the classic one-read-per-datagram loop with identical decoding,
// accounting, and drop semantics.
type FlowUDPSource struct {
	conn       net.PacketConn
	cache      *netflow.TemplateCache
	ipfixCache *ipfix.Cache

	// BatchSize is the number of datagrams drained per batched read
	// (the ring size). 0 means DefaultIngestBatch; 1 disables batching and
	// forces the single-read loop. Set before Run.
	BatchSize int

	// Per-source decode scratch, reused across datagrams: the single-read
	// path's decoded records and the batch-mode record accumulator. The
	// ingest façade copies offered records into the stage queue, so both
	// are free for reuse the moment an offer returns.
	v5recs  []netflow.FlowRecord
	batch   []netflow.FlowRecord
	singleB []byte // single-read mode datagram buffer

	counts sourceCounters
}

// NewFlowUDPSource wraps conn. Fresh template caches (v9 and IPFIX) are
// created per source, matching one cache per collector socket.
func NewFlowUDPSource(conn net.PacketConn) *FlowUDPSource {
	return &FlowUDPSource{
		conn:       conn,
		cache:      netflow.NewTemplateCache(),
		ipfixCache: ipfix.NewCache(),
	}
}

// batchSize resolves the configured ring size.
func (s *FlowUDPSource) batchSize() int {
	if s.BatchSize > 0 {
		return s.BatchSize
	}
	return DefaultIngestBatch
}

// Run reads datagrams until ctx is cancelled or the connection is closed
// (both return nil); other errors are returned. Run owns the socket and
// closes it on every exit path. Batched reads are attempted first; if the
// connection or platform cannot do them, Run degrades to the single-read
// loop without surfacing an error.
func (s *FlowUDPSource) Run(ctx context.Context, in Ingest) error {
	defer s.conn.Close()
	defer closeOnDone(ctx, func() { s.conn.Close() })()
	if n := s.batchSize(); n > 1 {
		if br := newBatchReaderFn(s.conn, n, maxDatagram); br != nil {
			err, handled := s.runBatched(ctx, br, in)
			if handled {
				return err
			}
			// Kernel refused recvmmsg on this socket: degrade below.
		}
	}
	return s.runSingle(ctx, in)
}

// runBatched drains the socket in recvmmsg batches. handled reports whether
// the source ran to completion here; false means batch reads turned out to
// be unsupported at runtime and the caller should fall back.
func (s *FlowUDPSource) runBatched(ctx context.Context, br batchConnReader, in Ingest) (err error, handled bool) {
	for {
		if err := fpUDPRead.Inject(); err != nil {
			return fmt.Errorf("stream: netflow udp batch read: %w", err), true
		}
		n, err := br.read()
		if err != nil {
			if errors.Is(err, errBatchUnsupported) {
				return nil, false
			}
			if ignoreClosed(ctx, err) == nil {
				return nil, true
			}
			return fmt.Errorf("stream: netflow udp batch read: %w", err), true
		}
		s.counts.frames.Add(uint64(n))
		recs := s.batch[:0]
		for i := 0; i < n; i++ {
			recs = s.appendDecode(recs, br.packet(i))
		}
		s.batch = recs
		s.offer(recs, in)
	}
}

// runSingle is the fallback loop: one blocking read, one decode, one offer
// per datagram.
func (s *FlowUDPSource) runSingle(ctx context.Context, in Ingest) error {
	if s.singleB == nil {
		s.singleB = make([]byte, maxDatagram)
	}
	for {
		if err := fpUDPRead.Inject(); err != nil {
			return fmt.Errorf("stream: netflow udp read: %w", err)
		}
		n, _, err := s.conn.ReadFrom(s.singleB)
		if err != nil {
			if ignoreClosed(ctx, err) == nil {
				return nil
			}
			return fmt.Errorf("stream: netflow udp read: %w", err)
		}
		s.counts.frames.Add(1)
		s.ingest(s.singleB[:n], in)
	}
}

// ingest decodes one datagram and offers its records as one batch; split
// out so tests and in-process pipelines can bypass the socket.
func (s *FlowUDPSource) ingest(pkt []byte, in Ingest) {
	s.offer(s.decode(pkt), in)
}

// appendDecode parses one datagram and appends its records to dst,
// returning the extended slice — the batch path's form, writing straight
// into the batch accumulator instead of staging records in per-format
// scratch first (one ~100-byte record copy saved per record, which is
// measurable at line rate). A malformed datagram counts one decode error
// and appends nothing.
func (s *FlowUDPSource) appendDecode(dst []netflow.FlowRecord, pkt []byte) []netflow.FlowRecord {
	if len(pkt) < 2 {
		s.counts.decodeError.Add(1)
		return dst
	}
	version := uint16(pkt[0])<<8 | uint16(pkt[1])
	switch version {
	case 5:
		out, err := netflow.AppendV5Flows(pkt, dst)
		if err != nil {
			s.counts.decodeError.Add(1)
			return dst
		}
		return out
	case 9:
		p, err := netflow.DecodeV9(pkt, s.cache)
		if err != nil {
			s.counts.decodeError.Add(1)
			return dst
		}
		return append(dst, p.Records...)
	case 10:
		m, err := ipfix.Decode(pkt, s.ipfixCache)
		if err != nil {
			s.counts.decodeError.Add(1)
			return dst
		}
		return append(dst, m.Records...)
	default:
		s.counts.decodeError.Add(1)
		return dst
	}
}

// decode parses one datagram into flow records. The returned slice is
// owned by the source's scratch (v5) or by the per-packet decoder output
// (v9/IPFIX) and is valid until the next decode call; callers must offer
// or copy it before decoding again. A malformed datagram counts one decode
// error and returns an empty slice.
func (s *FlowUDPSource) decode(pkt []byte) []netflow.FlowRecord {
	if len(pkt) < 2 {
		s.counts.decodeError.Add(1)
		return nil
	}
	version := uint16(pkt[0])<<8 | uint16(pkt[1])
	switch version {
	case 5:
		recs, err := netflow.AppendV5Flows(pkt, s.v5recs[:0])
		if err != nil {
			s.counts.decodeError.Add(1)
			return nil
		}
		s.v5recs = recs
		return recs
	case 9:
		p, err := netflow.DecodeV9(pkt, s.cache)
		if err != nil {
			s.counts.decodeError.Add(1)
			return nil
		}
		return p.Records
	case 10:
		m, err := ipfix.Decode(pkt, s.ipfixCache)
		if err != nil {
			s.counts.decodeError.Add(1)
			return nil
		}
		return m.Records
	default:
		s.counts.decodeError.Add(1)
		return nil
	}
}

// offer hands recs to the façade as one batch and accounts the outcome.
func (s *FlowUDPSource) offer(recs []netflow.FlowRecord, in Ingest) {
	if len(recs) == 0 {
		return
	}
	accepted := in.OfferFlowBatch(recs)
	s.counts.records.Add(uint64(len(recs)))
	s.counts.dropped.Add(uint64(len(recs) - accepted))
}

// Stats snapshots the source counters.
func (s *FlowUDPSource) Stats() SourceStats { return s.counts.snapshot() }

// FlowUDPSink batches flow records into NetFlow datagrams and writes them to
// a PacketConn — the exporter side used by the workload generator.
type FlowUDPSink struct {
	conn     net.Conn
	template netflow.Template
	seq      uint32
	sourceID uint32
	batch    []netflow.FlowRecord
	batchCap int
	// now stamps export headers when the first batched record carries no
	// timestamp; tests inject their own clock.
	now func() time.Time
}

// NewFlowUDPSink creates an exporter writing v9 datagrams under the
// standard template, batching up to batchCap records per datagram.
func NewFlowUDPSink(conn net.Conn, sourceID uint32, batchCap int) *FlowUDPSink {
	if batchCap < 1 {
		batchCap = 20
	}
	return &FlowUDPSink{
		conn:     conn,
		template: netflow.StandardTemplate(),
		sourceID: sourceID,
		batchCap: batchCap,
		now:      time.Now,
	}
}

// Send queues one record, flushing a full batch.
func (s *FlowUDPSink) Send(fr netflow.FlowRecord) error {
	s.batch = append(s.batch, fr)
	if len(s.batch) >= s.batchCap {
		return s.Flush()
	}
	return nil
}

// Flush writes any batched records as one datagram. The batch is cleared
// and the sequence number consumed only after a successful write: a failed
// encode or write leaves both intact, so the caller can retry Flush without
// losing the batched records or burning a sequence number the collector
// never saw (which would read as exporter loss on the other side).
func (s *FlowUDPSink) Flush() error {
	if len(s.batch) == 0 {
		return nil
	}
	// Header export time comes from the first record; replayed or synthetic
	// batches may carry zero timestamps, which would stamp the header with
	// the Unix epoch and make every collector-side age calculation absurd —
	// fall back to the wall clock for those.
	ts := s.batch[0].Timestamp
	if ts.IsZero() {
		ts = s.now()
	}
	pkt, err := netflow.EncodeV9(netflow.V9Header{
		SequenceNum: s.seq + 1,
		SourceID:    s.sourceID,
		UnixSecs:    uint32(ts.Unix()),
	}, s.template, s.batch)
	if err != nil {
		return err
	}
	if _, err = s.conn.Write(pkt); err != nil {
		return err
	}
	s.seq++
	s.batch = s.batch[:0]
	return nil
}
