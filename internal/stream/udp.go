package stream

import (
	"context"
	"fmt"
	"net"

	"repro/internal/ipfix"
	"repro/internal/netflow"
)

// FlowUDPSource reads flow export datagrams — NetFlow v5, NetFlow v9, or
// IPFIX, distinguished by the version word (5/9/10) — from a packet
// connection and offers the decoded flow records through the ingest
// façade, one batch per datagram. The paper names both NetFlow and IPFIX
// as the flow formats ISPs export.
type FlowUDPSource struct {
	conn       net.PacketConn
	cache      *netflow.TemplateCache
	ipfixCache *ipfix.Cache

	counts sourceCounters
}

// NewFlowUDPSource wraps conn. Fresh template caches (v9 and IPFIX) are
// created per source, matching one cache per collector socket.
func NewFlowUDPSource(conn net.PacketConn) *FlowUDPSource {
	return &FlowUDPSource{
		conn:       conn,
		cache:      netflow.NewTemplateCache(),
		ipfixCache: ipfix.NewCache(),
	}
}

// Run reads datagrams until ctx is cancelled or the connection is closed
// (both return nil); other errors are returned. Run owns the socket and
// closes it on every exit path.
func (s *FlowUDPSource) Run(ctx context.Context, in Ingest) error {
	defer s.conn.Close()
	defer closeOnDone(ctx, func() { s.conn.Close() })()
	buf := make([]byte, 65535)
	for {
		n, _, err := s.conn.ReadFrom(buf)
		if err != nil {
			if ignoreClosed(ctx, err) == nil {
				return nil
			}
			return fmt.Errorf("stream: netflow udp read: %w", err)
		}
		s.counts.frames.Add(1)
		s.ingest(buf[:n], in)
	}
}

// ingest decodes one datagram and offers its records as one batch; split
// out so tests and in-process pipelines can bypass the socket.
func (s *FlowUDPSource) ingest(pkt []byte, in Ingest) {
	if len(pkt) < 2 {
		s.counts.decodeError.Add(1)
		return
	}
	var recs []netflow.FlowRecord
	version := uint16(pkt[0])<<8 | uint16(pkt[1])
	switch version {
	case 5:
		hdr, v5recs, err := netflow.DecodeV5(pkt)
		if err != nil {
			s.counts.decodeError.Add(1)
			return
		}
		recs = make([]netflow.FlowRecord, len(v5recs))
		for i := range v5recs {
			recs[i] = v5recs[i].ToFlowRecord(hdr)
		}
	case 9:
		p, err := netflow.DecodeV9(pkt, s.cache)
		if err != nil {
			s.counts.decodeError.Add(1)
			return
		}
		recs = p.Records
	case 10:
		m, err := ipfix.Decode(pkt, s.ipfixCache)
		if err != nil {
			s.counts.decodeError.Add(1)
			return
		}
		recs = m.Records
	default:
		s.counts.decodeError.Add(1)
		return
	}
	if len(recs) > 0 {
		accepted := in.OfferFlowBatch(recs)
		s.counts.records.Add(uint64(len(recs)))
		s.counts.dropped.Add(uint64(len(recs) - accepted))
	}
}

// Stats snapshots the source counters.
func (s *FlowUDPSource) Stats() SourceStats { return s.counts.snapshot() }

// FlowUDPSink batches flow records into NetFlow datagrams and writes them to
// a PacketConn — the exporter side used by the workload generator.
type FlowUDPSink struct {
	conn     net.Conn
	template netflow.Template
	seq      uint32
	sourceID uint32
	batch    []netflow.FlowRecord
	batchCap int
}

// NewFlowUDPSink creates an exporter writing v9 datagrams under the
// standard template, batching up to batchCap records per datagram.
func NewFlowUDPSink(conn net.Conn, sourceID uint32, batchCap int) *FlowUDPSink {
	if batchCap < 1 {
		batchCap = 20
	}
	return &FlowUDPSink{
		conn:     conn,
		template: netflow.StandardTemplate(),
		sourceID: sourceID,
		batchCap: batchCap,
	}
}

// Send queues one record, flushing a full batch.
func (s *FlowUDPSink) Send(fr netflow.FlowRecord) error {
	s.batch = append(s.batch, fr)
	if len(s.batch) >= s.batchCap {
		return s.Flush()
	}
	return nil
}

// Flush writes any batched records as one datagram. The batch is cleared
// and the sequence number consumed only after a successful write: a failed
// encode or write leaves both intact, so the caller can retry Flush without
// losing the batched records or burning a sequence number the collector
// never saw (which would read as exporter loss on the other side).
func (s *FlowUDPSink) Flush() error {
	if len(s.batch) == 0 {
		return nil
	}
	pkt, err := netflow.EncodeV9(netflow.V9Header{
		SequenceNum: s.seq + 1,
		SourceID:    s.sourceID,
		UnixSecs:    uint32(s.batch[0].Timestamp.Unix()),
	}, s.template, s.batch)
	if err != nil {
		return err
	}
	if _, err = s.conn.Write(pkt); err != nil {
		return err
	}
	s.seq++
	s.batch = s.batch[:0]
	return nil
}
