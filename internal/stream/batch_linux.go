//go:build linux && (amd64 || arm64)

package stream

import (
	"errors"
	"net"
	"syscall"
	"unsafe"
)

// Batched datagram reads via the recvmmsg(2) syscall, issued directly
// through the standard library's syscall package. The x/net ipv4.PacketConn
// ReadBatch wrapper offers the same primitive, but pulling a module in for
// one syscall is not worth the dependency: the kernel interface is a stable
// array-of-mmsghdr ABI, reproduced here for the 64-bit platforms this
// collector deploys on (the build tag keeps the struct layout honest —
// 32-bit kernels pad mmsghdr differently and simply use the fallback loop).
//
// One recvmmsg call fills up to ring-size datagrams into a preallocated
// contiguous buffer block, so the per-packet syscall cost — the dominant
// term once decode and fill are allocation-free — is amortized over the
// whole batch.

// errBatchUnsupported marks a socket or kernel that rejected recvmmsg;
// the source falls back to the single-read loop permanently.
var errBatchUnsupported = errors.New("stream: batch reads unsupported")

// mmsghdr mirrors the kernel's struct mmsghdr on 64-bit Linux: the plain
// msghdr plus the kernel-written per-message byte count.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// batchReader owns the reusable message ring for one socket: n fixed-size
// buffer slots inside one contiguous allocation, with the iovec and mmsghdr
// arrays pointing into it, built once and re-submitted on every read.
type batchReader struct {
	rc      syscall.RawConn
	msgs    []mmsghdr
	iovs    []syscall.Iovec
	bufs    []byte
	bufSize int
}

// newBatchReader prepares a recvmmsg ring of n slots of bufSize bytes each,
// or returns nil when conn does not expose a raw descriptor (in-memory
// fakes, exotic tunnels) and the caller must use the single-read loop.
func newBatchReader(conn net.PacketConn, n, bufSize int) *batchReader {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return nil
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return nil
	}
	r := &batchReader{
		rc:      rc,
		msgs:    make([]mmsghdr, n),
		iovs:    make([]syscall.Iovec, n),
		bufs:    make([]byte, n*bufSize),
		bufSize: bufSize,
	}
	for i := range r.msgs {
		r.iovs[i].Base = &r.bufs[i*bufSize]
		r.iovs[i].SetLen(bufSize)
		r.msgs[i].hdr.Iov = &r.iovs[i]
		r.msgs[i].hdr.Iovlen = 1
		// Name stays nil: the collector never uses the peer address, and a
		// nil msg_name spares the kernel the per-packet address copy-out.
	}
	return r
}

// read blocks until at least one datagram is available and returns how many
// were drained into the ring (their payloads via packet). A socket the
// kernel refuses recvmmsg on returns errBatchUnsupported; a closed socket
// surfaces the poller's net.ErrClosed like a plain read would.
func (r *batchReader) read() (int, error) {
	var n int
	var errno syscall.Errno
	err := r.rc.Read(func(fd uintptr) bool {
		nn, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&r.msgs[0])), uintptr(len(r.msgs)),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		if e == syscall.EAGAIN {
			return false // wait for readability and retry
		}
		n, errno = int(nn), e
		return true
	})
	if err != nil {
		return 0, err
	}
	switch errno {
	case 0:
		return n, nil
	case syscall.ENOSYS, syscall.EINVAL, syscall.EOPNOTSUPP:
		return 0, errBatchUnsupported
	default:
		return 0, errno
	}
}

// packet returns the i-th datagram of the last read, aliasing the ring;
// valid until the next read call.
func (r *batchReader) packet(i int) []byte {
	off := i * r.bufSize
	return r.bufs[off : off+int(r.msgs[i].len)]
}
