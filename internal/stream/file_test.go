package stream

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/netflow"
)

func TestDNSFileRoundTrip(t *testing.T) {
	recs := []DNSRecord{
		// String-only answer (hand-built), typed-only answer (wire
		// decoder), and a CNAME: the writer formats all three, and the
		// reader hands every A/AAAA back with the address pre-parsed.
		{Timestamp: time.Unix(1653475200, 123), Query: "a.example",
			RType: dnswire.TypeA, TTL: 300, Answer: "198.51.100.1"},
		{Timestamp: time.Unix(1653475201, 0), Query: "svc.example",
			RType: dnswire.TypeCNAME, TTL: 7200, Answer: "edge.cdn.example"},
		{Timestamp: time.Unix(1653475202, 0), Query: "v6.example",
			RType: dnswire.TypeAAAA, TTL: 60, Addr: netip.MustParseAddr("2001:db8::1")},
	}
	var buf bytes.Buffer
	w := NewDNSFileWriter(&buf)
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDNSFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("records = %d", len(got))
	}
	for i := range recs {
		want := recs[i]
		// The reader always materializes both forms for A/AAAA records:
		// the TSV string it read and the address parsed once at read time.
		if want.Answer == "" {
			want.Answer = want.Addr.String()
		}
		if want.RType != dnswire.TypeCNAME && !want.Addr.IsValid() {
			want.Addr = netip.MustParseAddr(want.Answer)
		}
		if got[i] != want {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want)
		}
		if got[i].RType != dnswire.TypeCNAME && !got[i].Addr.IsValid() {
			t.Fatalf("record %d: reader left address unparsed: %+v", i, got[i])
		}
	}
}

func TestFlowFileRoundTrip(t *testing.T) {
	flows := []netflow.FlowRecord{
		{Timestamp: time.Unix(1653475200, 999), SrcIP: netip.MustParseAddr("198.51.100.1"),
			DstIP: netip.MustParseAddr("10.0.0.1"), SrcPort: 443, DstPort: 50000,
			Proto: netflow.ProtoTCP, Packets: 10, Bytes: 15000},
		{Timestamp: time.Unix(1653475210, 0), SrcIP: netip.MustParseAddr("2001:db8::5"),
			DstIP: netip.MustParseAddr("10.0.0.2"), SrcPort: 443, DstPort: 50001,
			Proto: netflow.ProtoUDP, Packets: 1, Bytes: 80},
	}
	var buf bytes.Buffer
	w := NewFlowFileWriter(&buf)
	for _, fr := range flows {
		if err := w.Write(fr); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	got, err := ReadFlowFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(flows) {
		t.Fatalf("records = %d", len(got))
	}
	for i := range flows {
		if got[i] != flows[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], flows[i])
		}
	}
}

func TestReadDNSFileSkipsCommentsAndBlank(t *testing.T) {
	in := "# capture header\n\n1000\tq.example\t1\t60\t192.0.2.1\n"
	got, err := ReadDNSFile(strings.NewReader(in))
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestReadFilesRejectMalformed(t *testing.T) {
	dnsBad := []string{
		"1000\tq\t1\t60",            // too few fields
		"x\tq\t1\t60\t192.0.2.1",    // bad timestamp
		"1000\tq\tz\t60\t192.0.2.1", // bad rtype
		"1000\tq\t1\tz\t192.0.2.1",  // bad ttl
	}
	for _, line := range dnsBad {
		if _, err := ReadDNSFile(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("dns line %q accepted", line)
		}
	}
	flowBad := []string{
		"1000\t1.2.3.4\t5.6.7.8\t1\t2\t6\t1",     // too few
		"x\t1.2.3.4\t5.6.7.8\t1\t2\t6\t1\t10",    // bad ts
		"1000\tnot-ip\t5.6.7.8\t1\t2\t6\t1\t10",  // bad src
		"1000\t1.2.3.4\tnope\t1\t2\t6\t1\t10",    // bad dst
		"1000\t1.2.3.4\t5.6.7.8\tx\t2\t6\t1\t10", // bad port
	}
	for _, line := range flowBad {
		if _, err := ReadFlowFile(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("flow line %q accepted", line)
		}
	}
}

func TestMergeByTime(t *testing.T) {
	base := time.Unix(1000, 0)
	dns := []DNSRecord{
		{Timestamp: base, Query: "d0"},
		{Timestamp: base.Add(2 * time.Second), Query: "d2"},
	}
	flows := []netflow.FlowRecord{
		{Timestamp: base.Add(time.Second), Bytes: 1},
		{Timestamp: base.Add(3 * time.Second), Bytes: 3},
	}
	var order []string
	MergeByTime(dns, flows,
		func(r DNSRecord) { order = append(order, "dns:"+r.Query) },
		func(f netflow.FlowRecord) { order = append(order, "flow") })
	want := []string{"dns:d0", "flow", "dns:d2", "flow"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("order = %v", order)
	}
}

func TestMergeByTimeTieGoesToDNS(t *testing.T) {
	base := time.Unix(1000, 0)
	var order []string
	MergeByTime(
		[]DNSRecord{{Timestamp: base, Query: "d"}},
		[]netflow.FlowRecord{{Timestamp: base}},
		func(DNSRecord) { order = append(order, "dns") },
		func(netflow.FlowRecord) { order = append(order, "flow") })
	// The fill must precede the lookup at equal timestamps, as in the live
	// system where resolution precedes traffic.
	if order[0] != "dns" {
		t.Fatalf("order = %v", order)
	}
}

func TestMergeByTimeEmptyInputs(t *testing.T) {
	calls := 0
	MergeByTime(nil, nil,
		func(DNSRecord) { calls++ },
		func(netflow.FlowRecord) { calls++ })
	if calls != 0 {
		t.Fatal("callbacks on empty inputs")
	}
}
