package stream

import (
	"bytes"
	"context"
	"net"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/ipfix"
	"repro/internal/netflow"
	"repro/internal/queue"
)

func testTime() time.Time { return time.Unix(1653475200, 0) }

// testIngest is a queue-backed Ingest for exercising sources without a
// correlator.
type testIngest struct {
	dns  *queue.Queue[DNSRecord]
	flow *queue.Queue[netflow.FlowRecord]
}

func newTestIngest(dnsCap, flowCap int) *testIngest {
	return &testIngest{dns: queue.New[DNSRecord](dnsCap), flow: queue.New[netflow.FlowRecord](flowCap)}
}

func (t *testIngest) OfferDNS(rec DNSRecord) bool          { return t.dns.Offer(rec) }
func (t *testIngest) OfferDNSBatch(recs []DNSRecord) int   { return t.dns.OfferBatch(recs) }
func (t *testIngest) OfferFlow(fr netflow.FlowRecord) bool { return t.flow.Offer(fr) }
func (t *testIngest) OfferFlowBatch(frs []netflow.FlowRecord) int {
	return t.flow.OfferBatch(frs)
}

func responseAB(t *testing.T) *dnswire.Message {
	t.Helper()
	return &dnswire.Message{
		Header: dnswire.Header{ID: 1, Response: true},
		Questions: []dnswire.Question{
			{Name: "video.service.example", Type: dnswire.TypeA, Class: dnswire.ClassIN},
		},
		Answers: []dnswire.Record{
			{Name: "video.service.example", Type: dnswire.TypeCNAME, Class: dnswire.ClassIN,
				TTL: 300, Target: "edge7.cdn.example"},
			{Name: "edge7.cdn.example", Type: dnswire.TypeA, Class: dnswire.ClassIN,
				TTL: 60, Addr: netip.MustParseAddr("198.51.100.7")},
		},
	}
}

func TestFlattenResponse(t *testing.T) {
	recs := FlattenResponse(responseAB(t), testTime())
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	cname, a := recs[0], recs[1]
	if cname.RType != dnswire.TypeCNAME || cname.Answer != "edge7.cdn.example" ||
		cname.Query != "video.service.example" || cname.TTL != 300 {
		t.Fatalf("cname = %+v", cname)
	}
	if a.RType != dnswire.TypeA || a.Addr != netip.MustParseAddr("198.51.100.7") ||
		a.Query != "edge7.cdn.example" || a.TTL != 60 {
		t.Fatalf("a = %+v", a)
	}
	if a.Answer != "" {
		t.Fatalf("typed A answer also carries a string: %+v", a)
	}
	for _, r := range recs {
		if !r.IsValid() {
			t.Errorf("flattened record invalid: %+v", r)
		}
	}
}

func TestFlattenSkipsNonResponses(t *testing.T) {
	m := responseAB(t)
	m.Header.Response = false
	if got := FlattenResponse(m, testTime()); got != nil {
		t.Fatalf("query flattened: %v", got)
	}
	m.Header.Response = true
	m.Header.RCode = dnswire.RCodeNXDomain
	if got := FlattenResponse(m, testTime()); got != nil {
		t.Fatalf("NXDOMAIN flattened: %v", got)
	}
	if FlattenResponse(nil, testTime()) != nil {
		t.Fatal("nil message flattened")
	}
}

func TestFlattenSkipsOtherTypes(t *testing.T) {
	m := &dnswire.Message{
		Header: dnswire.Header{Response: true},
		Answers: []dnswire.Record{
			{Name: "example.org", Type: dnswire.TypeTXT, TTL: 60, TXT: []string{"x"}},
			{Name: "example.org", Type: dnswire.TypeNS, TTL: 60, Target: "ns1.example.org"},
			{Name: "a.example.org", Type: dnswire.TypeA, TTL: 60,
				Addr: netip.MustParseAddr("192.0.2.1")},
		},
	}
	recs := FlattenResponse(m, testTime())
	if len(recs) != 1 || recs[0].RType != dnswire.TypeA {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestDNSRecordIsValid(t *testing.T) {
	good := DNSRecord{Timestamp: testTime(), Query: "q.example", RType: dnswire.TypeA,
		TTL: 60, Answer: "192.0.2.1"}
	if !good.IsValid() {
		t.Error("good record rejected")
	}
	bad := []DNSRecord{
		{},
		{Timestamp: testTime(), Query: "q", RType: dnswire.TypeTXT, Answer: "x"},
		{Timestamp: testTime(), RType: dnswire.TypeA, Answer: "x"},
		{Timestamp: testTime(), Query: "q", RType: dnswire.TypeA},
	}
	for i, r := range bad {
		if r.IsValid() {
			t.Errorf("bad record %d accepted", i)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xAB}, 65535)}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i, want := range msgs {
		got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d mismatch: %d vs %d bytes", i, len(got), len(want))
		}
		scratch = got[:0]
	}
	if err := WriteFrame(&buf, make([]byte, 65536)); err != ErrMessageTooLarge {
		t.Fatalf("oversize err = %v", err)
	}
}

func TestReadFrameShort(t *testing.T) {
	if _, err := ReadFrame(strings.NewReader("\x00"), nil); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := ReadFrame(strings.NewReader("\x00\x05ab"), nil); err == nil {
		t.Fatal("short body accepted")
	}
}

func TestDNSTCPEndToEnd(t *testing.T) {
	client, server := net.Pipe()
	in := newTestIngest(64, 64)
	src := NewDNSTCPSource(server)
	src.Clock = testTime
	done := make(chan error, 1)
	go func() { done <- src.Run(context.Background(), in) }()

	sink := NewDNSTCPSink(client)
	const n = 10
	for i := 0; i < n; i++ {
		if err := sink.Send(responseAB(t)); err != nil {
			t.Fatal(err)
		}
	}
	client.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := src.Stats()
	if st.Frames != n || st.Records != 2*n || st.DecodeError != 0 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if in.dns.Len() != 2*n {
		t.Fatalf("queued = %d, want %d", in.dns.Len(), 2*n)
	}
	rec, _ := in.dns.Take()
	if rec.Timestamp != testTime() {
		t.Fatalf("clock not applied: %v", rec.Timestamp)
	}
}

func TestDNSTCPCancelStopsSource(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	in := newTestIngest(4, 4)
	src := NewDNSTCPSource(server)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- src.Run(ctx, in) }()
	cancel() // closes the conn, unblocking the read
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cancelled source returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("source did not stop on cancellation")
	}
}

func TestDNSTCPDecodeErrorCounted(t *testing.T) {
	client, server := net.Pipe()
	in := newTestIngest(4, 4)
	src := NewDNSTCPSource(server)
	done := make(chan error, 1)
	go func() { done <- src.Run(context.Background(), in) }()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		WriteFrame(client, []byte{1, 2, 3}) // not a DNS message
		client.Close()
	}()
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := src.Stats(); st.DecodeError != 1 || st.Records != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDNSTCPIngestOverflowDrops(t *testing.T) {
	client, server := net.Pipe()
	in := newTestIngest(1, 1) // tiny stage buffer: must drop
	src := NewDNSTCPSource(server)
	done := make(chan error, 1)
	go func() { done <- src.Run(context.Background(), in) }()
	sink := NewDNSTCPSink(client)
	for i := 0; i < 5; i++ {
		if err := sink.Send(responseAB(t)); err != nil {
			t.Fatal(err)
		}
	}
	client.Close()
	<-done
	st := src.Stats()
	if st.Dropped == 0 {
		t.Fatalf("no drops recorded on overflow: %+v", st)
	}
	if st.Records != 10 {
		t.Fatalf("accounting broken: %+v", st)
	}
	if qs := in.dns.Stats(); qs.Enqueued+qs.Dropped != 10 {
		t.Fatalf("queue accounting broken: %+v", qs)
	}
}

func TestFlowUDPIngestV5AndV9(t *testing.T) {
	in := newTestIngest(64, 64)
	src := &FlowUDPSource{cache: netflow.NewTemplateCache()}

	v5recs := []netflow.V5Record{{SrcAddr: [4]byte{10, 0, 0, 1}, DstAddr: [4]byte{10, 0, 0, 2},
		Packets: 1, Octets: 100, Proto: netflow.ProtoTCP}}
	pkt5, err := netflow.EncodeV5(netflow.V5Header{UnixSecs: 1653475200}, v5recs)
	if err != nil {
		t.Fatal(err)
	}
	src.ingest(pkt5, in)

	fr := netflow.FlowRecord{
		Timestamp: time.UnixMilli(1653475200500),
		SrcIP:     netip.MustParseAddr("198.51.100.9"),
		DstIP:     netip.MustParseAddr("203.0.113.1"),
		Packets:   2, Bytes: 3000, Proto: netflow.ProtoUDP,
	}
	pkt9, err := netflow.EncodeV9(netflow.V9Header{SourceID: 1}, netflow.StandardTemplate(),
		[]netflow.FlowRecord{fr})
	if err != nil {
		t.Fatal(err)
	}
	src.ingest(pkt9, in)

	src.ingest([]byte{0, 3, 0, 0}, in) // unknown version
	src.ingest([]byte{9}, in)          // too short
	src.ingest(make([]byte, 24), in)   // version 0

	st := src.Stats()
	if st.Records != 2 {
		t.Fatalf("records = %d", st.Records)
	}
	if st.DecodeError != 3 {
		t.Fatalf("decode errors = %d", st.DecodeError)
	}
	r1, _ := in.flow.Take()
	if r1.SrcIP != netip.MustParseAddr("10.0.0.1") || r1.Bytes != 100 {
		t.Fatalf("v5 record = %+v", r1)
	}
	r2, _ := in.flow.Take()
	if r2.SrcIP != fr.SrcIP || r2.Bytes != fr.Bytes {
		t.Fatalf("v9 record = %+v", r2)
	}
}

func TestFlowUDPEndToEnd(t *testing.T) {
	lc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in := newTestIngest(256, 256)
	src := NewFlowUDPSource(lc)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- src.Run(ctx, in) }()

	conn, err := net.Dial("udp", lc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	sink := NewFlowUDPSink(conn, 7, 10)
	base := time.Unix(1653475200, 0)
	const n = 25
	for i := 0; i < n; i++ {
		err := sink.Send(netflow.FlowRecord{
			Timestamp: base.Add(time.Duration(i) * time.Millisecond),
			SrcIP:     netip.AddrFrom4([4]byte{10, 9, 0, byte(i)}),
			DstIP:     netip.AddrFrom4([4]byte{10, 8, 0, byte(i)}),
			Packets:   1, Bytes: uint64(100 + i), Proto: netflow.ProtoTCP,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for got := 0; got < n; {
		if _, ok := in.flow.TryTake(); ok {
			got++
			continue
		}
		select {
		case <-deadline:
			t.Fatalf("timed out with %d/%d records", got, n)
		case <-time.After(time.Millisecond):
		}
	}
	cancel() // closes the socket and stops the source
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	conn.Close()
}

func TestDNSListenerMultipleStreams(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in := newTestIngest(256, 256)
	src := NewDNSListener(ln)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- src.Run(ctx, in) }()

	// Two concurrent DNS streams into one listener, as at the paper's
	// large ISP.
	const perStream = 5
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			sink := NewDNSTCPSink(conn)
			for i := 0; i < perStream; i++ {
				if err := sink.Send(responseAB(t)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	deadline := time.After(5 * time.Second)
	for in.dns.Len() < 2*2*perStream {
		select {
		case <-deadline:
			t.Fatalf("only %d records arrived", in.dns.Len())
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := src.Stats(); st.Frames != 2*perStream || st.Records != 2*2*perStream {
		t.Fatalf("aggregated stats = %+v", st)
	}
}

func TestFileSources(t *testing.T) {
	var dnsBuf, flowBuf bytes.Buffer
	dw := NewDNSFileWriter(&dnsBuf)
	for i := 0; i < 3; i++ {
		if err := dw.Write(DNSRecord{Timestamp: testTime(), Query: "q.example",
			RType: dnswire.TypeA, TTL: 60, Answer: "192.0.2.1"}); err != nil {
			t.Fatal(err)
		}
	}
	dw.Flush()
	fw := NewFlowFileWriter(&flowBuf)
	for i := 0; i < 4; i++ {
		if err := fw.Write(netflow.FlowRecord{Timestamp: testTime(),
			SrcIP: netip.MustParseAddr("192.0.2.1"), DstIP: netip.MustParseAddr("10.0.0.1"),
			Packets: 1, Bytes: 100, Proto: netflow.ProtoTCP}); err != nil {
			t.Fatal(err)
		}
	}
	fw.Flush()

	in := newTestIngest(16, 16)
	ds := NewDNSFileSource(&dnsBuf)
	if err := ds.Run(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	if in.dns.Len() != 3 || ds.Stats().Records != 3 {
		t.Fatalf("dns file source: queued=%d stats=%+v", in.dns.Len(), ds.Stats())
	}
	fs := NewFlowFileSource(&flowBuf)
	if err := fs.Run(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	if in.flow.Len() != 4 || fs.Stats().Records != 4 {
		t.Fatalf("flow file source: queued=%d stats=%+v", in.flow.Len(), fs.Stats())
	}
	// A malformed capture is a source error.
	if err := NewDNSFileSource(strings.NewReader("not\ta\tcapture\n")).Run(context.Background(), in); err == nil {
		t.Fatal("malformed capture accepted")
	}
}

func TestFlowUDPIngestIPFIX(t *testing.T) {
	in := newTestIngest(16, 16)
	src := NewFlowUDPSource(nil)
	fr := netflow.FlowRecord{
		Timestamp: time.UnixMilli(1653475200999),
		SrcIP:     netip.MustParseAddr("198.51.100.77"),
		DstIP:     netip.MustParseAddr("203.0.113.3"),
		SrcPort:   443, DstPort: 55555, Proto: netflow.ProtoTCP,
		Packets: 7, Bytes: 4096,
	}
	pkt, err := ipfix.Encode(ipfix.Header{DomainID: 4, ExportTime: 1653475200},
		ipfix.StandardTemplate(), []netflow.FlowRecord{fr})
	if err != nil {
		t.Fatal(err)
	}
	src.ingest(pkt, in)
	st := src.Stats()
	if st.Records != 1 || st.DecodeError != 0 {
		t.Fatalf("stats = %+v", st)
	}
	got, _ := in.flow.Take()
	if got.SrcIP != fr.SrcIP || got.Bytes != fr.Bytes || !got.Timestamp.Equal(fr.Timestamp) {
		t.Fatalf("ipfix record = %+v", got)
	}
	// A second data-only message must resolve via the cached template.
	pkt2, err := ipfix.Encode(ipfix.Header{DomainID: 4}, ipfix.StandardTemplate(),
		[]netflow.FlowRecord{fr})
	if err != nil {
		t.Fatal(err)
	}
	src.ingest(pkt2, in)
	if st := src.Stats(); st.Records != 2 {
		t.Fatalf("cached ipfix decode failed: %+v", st)
	}
}

func TestDNSTCPFragmentedFrames(t *testing.T) {
	// A slow sender dribbles the frame header and body across separate
	// writes; ReadFrame must reassemble via io.ReadFull.
	client, server := net.Pipe()
	in := newTestIngest(16, 16)
	src := NewDNSTCPSource(server)
	done := make(chan error, 1)
	go func() { done <- src.Run(context.Background(), in) }()

	wire, err := dnswire.Encode(responseAB(t))
	if err != nil {
		t.Fatal(err)
	}
	framed := make([]byte, 2+len(wire))
	framed[0] = byte(len(wire) >> 8)
	framed[1] = byte(len(wire))
	copy(framed[2:], wire)
	for i := 0; i < len(framed); i += 3 {
		end := i + 3
		if end > len(framed) {
			end = len(framed)
		}
		if _, err := client.Write(framed[i:end]); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond / 4)
	}
	client.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := src.Stats(); st.Frames != 1 || st.Records != 2 {
		t.Fatalf("fragmented delivery stats = %+v", st)
	}
}
