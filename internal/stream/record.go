// Package stream provides the live-stream plumbing between the network and
// the FlowDNS correlator.
//
// The paper's deployment receives DNS cache misses "from the ISP resolvers
// to our collectors via TCP" and NetFlow exports on UDP, each stream with
// "an internal buffer to be used in case the reading speed is less than
// their actual rate. If that buffer overflows, the streams start to drop
// data." This package reproduces that contract:
//
//   - DNSRecord is the flattened record the FillUp stage consumes
//     (timestamp, query, rtype, ttl, answer);
//   - DNSTCPSource / DNSTCPSink speak length-prefixed DNS messages over TCP
//     (RFC 1035 §4.2.2 framing) and flatten responses into DNSRecords;
//   - FlowUDPSource / FlowUDPSink speak NetFlow v5/v9 datagrams;
//   - every source feeds the pipeline through the Ingest façade, whose
//     non-blocking offers surface the paper's "loss on the streams" as
//     rejected records when a stage buffer overflows.
package stream

import (
	"time"

	"repro/internal/dnswire"
)

// DNSRecord is one flattened DNS answer as FlowDNS consumes it. Per §2 the
// DNS stream carries "timestamp,..., [name; rtype; ttl; answer]": for an
// A/AAAA record Answer is the address's string form and Query the domain
// that was asked; for a CNAME record Answer is the canonical name. In every
// FlowDNS hashmap "the key is the answer section, and the value is the
// query".
type DNSRecord struct {
	Timestamp time.Time
	Query     string
	RType     dnswire.Type
	TTL       uint32
	Answer    string
}

// IsValid implements the paper's §3.2 step (2) filter: only well-formed
// responses of the types FlowDNS stores pass.
func (r *DNSRecord) IsValid() bool {
	if r.Timestamp.IsZero() || r.Query == "" || r.Answer == "" {
		return false
	}
	switch r.RType {
	case dnswire.TypeA, dnswire.TypeAAAA, dnswire.TypeCNAME:
		return true
	default:
		return false
	}
}

// FlattenResponse converts a decoded DNS response message into the
// DNSRecords FlowDNS stores. Non-response messages and non-NOERROR rcodes
// yield nothing; answer records of types other than A/AAAA/CNAME are
// skipped. ts is the stream-assigned receive timestamp.
//
// CNAME flattening note: in a DNS message a CNAME answer has Name = the
// alias that was queried and Target = the canonical name. FlowDNS's
// NAME-CNAME map is keyed by answer (canonical name) with the query (alias)
// as value, so lookups can walk CDN names back toward the service name.
func FlattenResponse(m *dnswire.Message, ts time.Time) []DNSRecord {
	if m == nil || !m.Header.Response || m.Header.RCode != dnswire.RCodeNoError {
		return nil
	}
	out := make([]DNSRecord, 0, len(m.Answers))
	for i := range m.Answers {
		a := &m.Answers[i]
		switch a.Type {
		case dnswire.TypeA, dnswire.TypeAAAA:
			if !a.Addr.IsValid() {
				continue
			}
			out = append(out, DNSRecord{
				Timestamp: ts,
				Query:     a.Name,
				RType:     a.Type,
				TTL:       a.TTL,
				Answer:    a.Addr.String(),
			})
		case dnswire.TypeCNAME:
			if a.Target == "" {
				continue
			}
			out = append(out, DNSRecord{
				Timestamp: ts,
				Query:     a.Name,
				RType:     a.Type,
				TTL:       a.TTL,
				Answer:    a.Target,
			})
		}
	}
	return out
}
