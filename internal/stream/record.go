// Package stream provides the live-stream plumbing between the network and
// the FlowDNS correlator.
//
// The paper's deployment receives DNS cache misses "from the ISP resolvers
// to our collectors via TCP" and NetFlow exports on UDP, each stream with
// "an internal buffer to be used in case the reading speed is less than
// their actual rate. If that buffer overflows, the streams start to drop
// data." This package reproduces that contract:
//
//   - DNSRecord is the flattened record the FillUp stage consumes
//     (timestamp, query, rtype, ttl, answer);
//   - DNSTCPSource / DNSTCPSink speak length-prefixed DNS messages over TCP
//     (RFC 1035 §4.2.2 framing) and flatten responses into DNSRecords;
//   - FlowUDPSource / FlowUDPSink speak NetFlow v5/v9 datagrams;
//   - every source feeds the pipeline through the Ingest façade, whose
//     non-blocking offers surface the paper's "loss on the streams" as
//     rejected records when a stage buffer overflows.
package stream

import (
	"net/netip"
	"time"

	"repro/internal/dnswire"
)

// DNSRecord is one flattened DNS answer as FlowDNS consumes it. Per §2 the
// DNS stream carries "timestamp,..., [name; rtype; ttl; answer]". In every
// FlowDNS hashmap "the key is the answer section, and the value is the
// query".
//
// The answer is carried typed: for an A/AAAA record Addr holds the address
// exactly as the wire decoder produced it, so the FillUp stage builds its
// binary IP key without ever formatting or re-parsing an address string.
// Answer is the string form — the canonical name for a CNAME record, and
// an optional textual address for A/AAAA records built away from the
// decoder (capture files, hand-written tests). When both are present, Addr
// wins; producers that only have a string should parse it once at build
// time (as ReadDNSFile does) rather than leaving the parse to every ingest.
type DNSRecord struct {
	Timestamp time.Time
	Query     string
	RType     dnswire.Type
	TTL       uint32
	Answer    string
	// Addr is the typed A/AAAA answer; invalid (the zero Addr) for CNAME
	// records and for string-only producers.
	Addr netip.Addr
}

// IsValid implements the paper's §3.2 step (2) filter: only well-formed
// responses of the types FlowDNS stores pass. An A/AAAA record may carry
// its answer typed (Addr), textual (Answer), or both.
func (r *DNSRecord) IsValid() bool {
	if r.Timestamp.IsZero() || r.Query == "" {
		return false
	}
	switch r.RType {
	case dnswire.TypeA, dnswire.TypeAAAA:
		return r.Addr.IsValid() || r.Answer != ""
	case dnswire.TypeCNAME:
		return r.Answer != ""
	default:
		return false
	}
}

// AnswerString returns the answer's presentation form: the Answer string
// when present, otherwise the typed address formatted. Only the offline
// writers (capture persistence) use this; the live fill path never needs
// the string form.
func (r *DNSRecord) AnswerString() string {
	if r.Answer != "" {
		return r.Answer
	}
	if r.Addr.IsValid() {
		return r.Addr.String()
	}
	return ""
}

// FlattenResponse converts a decoded DNS response message into the
// DNSRecords FlowDNS stores. Non-response messages and non-NOERROR rcodes
// yield nothing; answer records of types other than A/AAAA/CNAME are
// skipped. ts is the stream-assigned receive timestamp.
//
// A/AAAA answers stay typed: the record carries the decoder's netip.Addr
// untouched, with no Addr.String() round-trip (the fill path consumes the
// binary form directly). CNAME flattening note: in a DNS message a CNAME
// answer has Name = the alias that was queried and Target = the canonical
// name. FlowDNS's NAME-CNAME map is keyed by answer (canonical name) with
// the query (alias) as value, so lookups can walk CDN names back toward
// the service name.
func FlattenResponse(m *dnswire.Message, ts time.Time) []DNSRecord {
	recs := FlattenResponseInto(nil, m, ts)
	if len(recs) == 0 {
		return nil
	}
	return recs
}

// FlattenResponseInto is FlattenResponse appending into dst, so a source
// draining one connection can reuse a single record buffer for every frame
// (pass dst[:0]). The appended records do not alias m or dst's previous
// contents beyond the reused backing array; they are safe to hand to
// Ingest.OfferDNSBatch, which copies records into the stage queue.
func FlattenResponseInto(dst []DNSRecord, m *dnswire.Message, ts time.Time) []DNSRecord {
	if m == nil || !m.Header.Response || m.Header.RCode != dnswire.RCodeNoError {
		return dst
	}
	for i := range m.Answers {
		a := &m.Answers[i]
		switch a.Type {
		case dnswire.TypeA, dnswire.TypeAAAA:
			if !a.Addr.IsValid() {
				continue
			}
			dst = append(dst, DNSRecord{
				Timestamp: ts,
				Query:     a.Name,
				RType:     a.Type,
				TTL:       a.TTL,
				Addr:      a.Addr,
			})
		case dnswire.TypeCNAME:
			if a.Target == "" {
				continue
			}
			dst = append(dst, DNSRecord{
				Timestamp: ts,
				Query:     a.Name,
				RType:     a.Type,
				TTL:       a.TTL,
				Answer:    a.Target,
			})
		}
	}
	return dst
}
