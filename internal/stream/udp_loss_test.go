package stream

import (
	"errors"
	"net"
	"net/netip"
	"testing"
	"time"

	"repro/internal/netflow"
	"repro/internal/queue"
)

// captureConn is a net.Conn stub whose Write can be forced to fail and
// which records every successfully written datagram.
type captureConn struct {
	net.Conn // panic on anything not overridden
	failing  bool
	packets  [][]byte
}

var errConnDown = errors.New("conn down")

func (c *captureConn) Write(p []byte) (int, error) {
	if c.failing {
		return 0, errConnDown
	}
	c.packets = append(c.packets, append([]byte(nil), p...))
	return len(p), nil
}

func v9Flow(i int) netflow.FlowRecord {
	return netflow.FlowRecord{
		Timestamp: testTime().Add(time.Duration(i) * time.Millisecond),
		SrcIP:     netip.AddrFrom4([4]byte{10, 9, 0, byte(i)}),
		DstIP:     netip.AddrFrom4([4]byte{10, 8, 0, byte(i)}),
		Packets:   1, Bytes: uint64(100 + i), Proto: netflow.ProtoTCP,
	}
}

// A failed conn.Write must leave the batch and the sequence number intact,
// so a retried Flush delivers exactly the records that failed — nothing
// silently discarded, no sequence gap for the collector to read as loss.
func TestFlowUDPSinkFlushFailedWrite(t *testing.T) {
	conn := &captureConn{failing: true}
	sink := NewFlowUDPSink(conn, 7, 10)
	for i := 0; i < 3; i++ {
		if err := sink.Send(v9Flow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); !errors.Is(err, errConnDown) {
		t.Fatalf("Flush = %v, want conn error", err)
	}
	if len(sink.batch) != 3 {
		t.Fatalf("failed write discarded the batch: %d records left, want 3", len(sink.batch))
	}
	if sink.seq != 0 {
		t.Fatalf("failed write consumed sequence number %d", sink.seq)
	}

	// Retry after the conn heals: same records, first sequence number.
	conn.failing = false
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(sink.batch) != 0 || sink.seq != 1 {
		t.Fatalf("after successful retry: batch=%d seq=%d, want 0/1", len(sink.batch), sink.seq)
	}
	if len(conn.packets) != 1 {
		t.Fatalf("packets written = %d, want 1", len(conn.packets))
	}
	// Decode the delivered datagram: every batched record arrives once,
	// under sequence 1.
	p, err := netflow.DecodeV9(conn.packets[0], netflow.NewTemplateCache())
	if err != nil {
		t.Fatal(err)
	}
	if p.Header.SequenceNum != 1 {
		t.Fatalf("sequence = %d, want 1", p.Header.SequenceNum)
	}
	if len(p.Records) != 3 {
		t.Fatalf("delivered records = %d, want 3", len(p.Records))
	}
	for i, r := range p.Records {
		if r.Bytes != uint64(100+i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

// A failed encode must not consume a sequence number either: the datagram
// was never built, so nothing was sent and seq must still match what the
// collector has seen.
func TestFlowUDPSinkEncodeFailureKeepsSeq(t *testing.T) {
	conn := &captureConn{}
	sink := NewFlowUDPSink(conn, 7, 10)
	if err := sink.Send(v9Flow(0)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.seq != 1 {
		t.Fatalf("seq = %d after first flush, want 1", sink.seq)
	}
	// The standard template is IPv4-only; an IPv6 record fails EncodeV9.
	bad := v9Flow(1)
	bad.SrcIP = netip.MustParseAddr("2001:db8::1")
	if err := sink.Send(bad); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err == nil {
		t.Fatal("Flush succeeded encoding an IPv6 record under the IPv4 template")
	}
	if sink.seq != 1 {
		t.Fatalf("failed encode consumed sequence number: seq = %d, want 1", sink.seq)
	}
	if len(conn.packets) != 1 {
		t.Fatalf("packets = %d, want 1 (the failed encode must not send)", len(conn.packets))
	}

	// The next successful flush uses the next sequence number with no gap.
	sink.batch = sink.batch[:0] // caller drops the unencodable batch
	if err := sink.Send(v9Flow(2)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	p, err := netflow.DecodeV9(conn.packets[1], netflow.NewTemplateCache())
	if err != nil {
		t.Fatal(err)
	}
	if p.Header.SequenceNum != 2 {
		t.Fatalf("sequence = %d, want 2 (no gap)", p.Header.SequenceNum)
	}
}

// encodeDatagram builds one v9 datagram carrying recs.
func encodeDatagram(t *testing.T, recs []netflow.FlowRecord) []byte {
	t.Helper()
	pkt, err := netflow.EncodeV9(netflow.V9Header{SequenceNum: 1, SourceID: 7,
		UnixSecs: uint32(testTime().Unix())}, netflow.StandardTemplate(), recs)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// SourceStats.Dropped must equal the queue's Dropped delta for the same
// batch: both sides of the handoff account the identical records as lost,
// so an operator comparing source counters against /metrics queue counters
// never sees phantom loss on either side.
func TestFlowUDPSourceDropAccountingMatchesQueue(t *testing.T) {
	recs := make([]netflow.FlowRecord, 8)
	for i := range recs {
		recs[i] = v9Flow(i)
	}
	pkt := encodeDatagram(t, recs)

	// Queue of 3 with no consumer: 8 offered, 3 enqueued, 5 dropped.
	in := newTestIngest(16, 3)
	src := NewFlowUDPSource(nil)
	before := in.flow.Stats()
	src.ingest(pkt, in)
	after := in.flow.Stats()

	queueDropDelta := after.Dropped - before.Dropped
	st := src.Stats()
	if st.Records != 8 {
		t.Fatalf("source records = %d, want 8", st.Records)
	}
	if queueDropDelta != 5 {
		t.Fatalf("queue drop delta = %d, want 5", queueDropDelta)
	}
	if st.Dropped != queueDropDelta {
		t.Fatalf("source dropped %d != queue drop delta %d", st.Dropped, queueDropDelta)
	}
	if after.Offered()-before.Offered() != 8 {
		t.Fatalf("queue offered delta = %d, want 8", after.Offered()-before.Offered())
	}
}

// With an adaptive sampler on the intake queue the agreement must hold too:
// sampled records are deliberate queue-side shed, counted in Sampled — the
// source must keep counting only accidental overflow, and the two Dropped
// views must still match exactly.
func TestFlowUDPSourceDropAccountingWithSampler(t *testing.T) {
	recs := make([]netflow.FlowRecord, 8)
	for i := range recs {
		recs[i] = v9Flow(i)
	}
	pkt := encodeDatagram(t, recs)

	in := newTestIngest(16, 4)
	// Degenerate watermarks: shed half of everything offered while the
	// buffer is non-empty.
	in.flow.SetSampler(queue.SamplerConfig{LowWater: 0, HighWater: 0, MaxShed: 0.5})
	in.flow.Offer(v9Flow(99)) // non-empty so the sampler engages

	src := NewFlowUDPSource(nil)
	before := in.flow.Stats()
	src.ingest(pkt, in)
	after := in.flow.Stats()

	st := src.Stats()
	if sampled := after.Sampled - before.Sampled; sampled == 0 {
		t.Fatal("sampler shed nothing; test is vacuous")
	}
	if st.Dropped != after.Dropped-before.Dropped {
		t.Fatalf("source dropped %d != queue drop delta %d (sampled shed leaked into a drop counter)",
			st.Dropped, after.Dropped-before.Dropped)
	}
	if got := after.Offered() - before.Offered(); got != 8 {
		t.Fatalf("queue offered delta = %d, want 8 (invariant must cover sampled records)", got)
	}
}
