package stream

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/netflow"
)

// repeatReader serves the same byte sequence forever without allocating.
type repeatReader struct {
	data []byte
	off  int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// The framed read loop must not allocate per frame once the per-connection
// buffer has grown to the stream's frame size: neither the two-byte length
// header (which must not escape into the reader) nor the payload read may
// touch the heap. This is the allocation the TCP source pays per DNS
// response, millions of times per hour per resolver stream.
func TestReadFrameAllocsPerFrame(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 12000) // larger than the 4 KiB seed buffer
	var framed bytes.Buffer
	if err := WriteFrame(&framed, payload); err != nil {
		t.Fatal(err)
	}
	r := &repeatReader{data: framed.Bytes()}
	buf := make([]byte, 0, 4096)

	// Warm-up: first frame may grow the buffer past 4 KiB once.
	frame, err := ReadFrame(r, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != len(payload) {
		t.Fatalf("frame len = %d, want %d", len(frame), len(payload))
	}
	buf = frame[:0]

	allocs := testing.AllocsPerRun(100, func() {
		frame, err := ReadFrame(r, buf)
		if err != nil || len(frame) != len(payload) {
			t.Fatalf("ReadFrame: %v (len %d)", err, len(frame))
		}
		buf = frame[:0]
	})
	if allocs != 0 {
		t.Fatalf("allocs per frame = %v, want 0", allocs)
	}
}

// ReadFrame with an undersized buffer must still work (it provisions its
// own), covering callers that pass nil.
func TestReadFrameNilBuf(t *testing.T) {
	var framed bytes.Buffer
	if err := WriteFrame(&framed, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	frame, err := ReadFrame(&framed, nil)
	if err != nil || string(frame) != "hello" {
		t.Fatalf("ReadFrame = %q, %v", frame, err)
	}
	if _, err := ReadFrame(&framed, nil); err != io.EOF {
		t.Fatalf("EOF read = %v", err)
	}
}

// countIngest accepts everything and counts records without allocating —
// the harness for allocation tests of the UDP decode path.
type countIngest struct {
	records int
}

func (c *countIngest) OfferDNS(DNSRecord) bool           { return true }
func (c *countIngest) OfferDNSBatch(r []DNSRecord) int   { c.records += len(r); return len(r) }
func (c *countIngest) OfferFlow(netflow.FlowRecord) bool { return true }
func (c *countIngest) OfferFlowBatch(frs []netflow.FlowRecord) int {
	c.records += len(frs)
	return len(frs)
}

func v5Datagram(t testing.TB, n int) []byte {
	t.Helper()
	recs := make([]netflow.V5Record, n)
	for i := range recs {
		recs[i] = netflow.V5Record{
			SrcAddr: [4]byte{10, 0, 0, byte(i)},
			DstAddr: [4]byte{10, 1, 0, byte(i)},
			Packets: 1, Octets: uint32(100 + i), Proto: 6,
		}
	}
	pkt, err := netflow.EncodeV5(netflow.V5Header{
		UnixSecs: uint32(testTime().Unix()),
	}, recs)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// The v5 ingest path must reuse the per-source scratch slices: after the
// first datagram has sized them, decoding and offering a full 30-record v5
// export allocates nothing, matching the v9/IPFIX discipline of never
// allocating in the source on top of what the decoder itself does.
func TestFlowUDPSourceV5IngestAllocFree(t *testing.T) {
	pkt := v5Datagram(t, 30)
	src := NewFlowUDPSource(nil)
	in := &countIngest{}
	src.ingest(pkt, in) // warm-up sizes the scratch
	if in.records != 30 {
		t.Fatalf("warm-up records = %d, want 30", in.records)
	}
	allocs := testing.AllocsPerRun(100, func() {
		src.ingest(pkt, in)
	})
	if allocs != 0 {
		t.Fatalf("v5 ingest allocs per datagram = %v, want 0", allocs)
	}
	if st := src.Stats(); st.DecodeError != 0 {
		t.Fatalf("decode errors = %d", st.DecodeError)
	}
}

// DecodeV5Into must reuse the destination slice's capacity and return
// identical records to the allocating form.
func TestDecodeV5IntoReuse(t *testing.T) {
	pkt := v5Datagram(t, 30)
	_, fresh, err := netflow.DecodeV5(pkt)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]netflow.V5Record, 0, 30)
	_, reused, err := netflow.DecodeV5Into(pkt, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(reused) != len(fresh) {
		t.Fatalf("records = %d, want %d", len(reused), len(fresh))
	}
	for i := range fresh {
		if fresh[i] != reused[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, fresh[i], reused[i])
		}
	}
	if &reused[0] != &scratch[:1][0] {
		t.Fatal("DecodeV5Into did not reuse the destination backing array")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, scratch, err = netflow.DecodeV5Into(pkt, scratch[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeV5Into allocs = %v, want 0", allocs)
	}
	// Errors return the truncated destination, never partial records.
	if _, out, err := netflow.DecodeV5Into(pkt[:10], scratch); err == nil || len(out) != 0 {
		t.Fatalf("short packet: err=%v len=%d", err, len(out))
	}
}
