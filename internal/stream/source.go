package stream

import (
	"context"
	"errors"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netflow"
)

// Ingest is the stable façade through which sources feed the correlator.
// Offers never block: a false return (or a short batch count) means the
// stage buffer overflowed and the records were dropped — the paper's
// stream-buffer loss. The correlator implements Ingest; sources never see
// its internal queues.
type Ingest interface {
	// OfferDNS places one DNS record on the FillUp stage.
	OfferDNS(rec DNSRecord) bool
	// OfferDNSBatch places a batch of DNS records on the FillUp stage and
	// returns how many were accepted.
	OfferDNSBatch(recs []DNSRecord) int
	// OfferFlow places one flow record on the LookUp stage.
	OfferFlow(fr netflow.FlowRecord) bool
	// OfferFlowBatch places a batch of flow records on the LookUp stage and
	// returns how many were accepted.
	OfferFlowBatch(frs []netflow.FlowRecord) int
}

// Source is one input stream of the pipeline: a TCP DNS feed, a UDP flow
// socket, a capture file, a synthetic generator. Run reads until ctx is
// cancelled or the stream ends, offering every decoded record to in.
// A clean end of stream (EOF, socket closed by cancellation) returns nil.
type Source interface {
	Run(ctx context.Context, in Ingest) error
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(ctx context.Context, in Ingest) error

// Run calls f.
func (f SourceFunc) Run(ctx context.Context, in Ingest) error { return f(ctx, in) }

// SourceStats aggregates what a stream source observed.
type SourceStats struct {
	Frames      uint64 // frames or datagrams read off the wire
	DecodeError uint64 // frames that failed to decode
	Records     uint64 // records flattened out of decoded frames
	Dropped     uint64 // records the ingest façade rejected (stage overflow)
	Timeouts    uint64 // connections closed for exceeding the idle timeout
}

// sourceCounters is the shared atomic counter block behind SourceStats.
type sourceCounters struct {
	frames      atomic.Uint64
	decodeError atomic.Uint64
	records     atomic.Uint64
	dropped     atomic.Uint64
	timeouts    atomic.Uint64
}

func (c *sourceCounters) snapshot() SourceStats {
	return SourceStats{
		Frames:      c.frames.Load(),
		DecodeError: c.decodeError.Load(),
		Records:     c.records.Load(),
		Dropped:     c.dropped.Load(),
		Timeouts:    c.timeouts.Load(),
	}
}

// closeOnDone arranges for closer to run when ctx is cancelled, unblocking
// a source stuck in a socket read. The returned stop func releases the
// watcher; sources defer it so a clean exit does not leak the goroutine.
func closeOnDone(ctx context.Context, closer func()) (stop func() bool) {
	return context.AfterFunc(ctx, closer)
}

// ignoreClosed maps the errors a deliberately closed connection produces to
// a clean nil when the close was ours (cancellation).
func ignoreClosed(ctx context.Context, err error) error {
	if err == nil || errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		return nil
	}
	if ctx.Err() != nil {
		return nil
	}
	return err
}

// DNSListener accepts TCP connections and runs one DNSTCPSource per
// accepted connection — the paper's topology where each ISP resolver
// stream is one long-lived connection into the collector. It owns the
// listener: cancellation closes it and every active connection drains.
type DNSListener struct {
	ln net.Listener
	// OnStreamError is invoked when one accepted connection dies with a
	// read error (which ends that stream but not the listener). Nil logs
	// through the standard logger so a dying resolver stream is never
	// silent.
	OnStreamError func(error)
	// IdleTimeout is handed to every accepted connection's DNSTCPSource:
	// a stream silent past it is closed (and counted in Stats.Timeouts)
	// instead of holding its goroutine forever. 0 disables the bound.
	IdleTimeout time.Duration
	counts      sourceCounters
}

// NewDNSListener wraps ln.
func NewDNSListener(ln net.Listener) *DNSListener { return &DNSListener{ln: ln} }

// Addr returns the listen address.
func (l *DNSListener) Addr() net.Addr { return l.ln.Addr() }

// Run accepts until ctx is cancelled or the listener fails. Per-connection
// read errors are not fatal to the listener; they end that stream only
// and are reported through OnStreamError. Run owns the listener and every
// accepted connection: all are closed before it returns, including when
// Accept fails abnormally (so a listener error propagates instead of
// blocking behind long-lived streams).
func (l *DNSListener) Run(ctx context.Context, in Ingest) error {
	var conns sync.WaitGroup
	defer conns.Wait()
	// Cancelling the child context ends every per-connection source when
	// Run exits on an Accept error; conns.Wait (above) then completes.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	defer l.ln.Close()
	defer closeOnDone(ctx, func() { l.ln.Close() })()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return ignoreClosed(ctx, err)
		}
		src := NewDNSTCPSource(conn)
		src.counts = &l.counts
		src.IdleTimeout = l.IdleTimeout
		conns.Add(1)
		go func() {
			defer conns.Done()
			if err := src.Run(ctx, in); err != nil {
				if l.OnStreamError != nil {
					l.OnStreamError(err)
				} else {
					log.Printf("stream: dns stream ended: %v", err)
				}
			}
		}()
	}
}

// Stats aggregates counters across every connection accepted so far.
func (l *DNSListener) Stats() SourceStats { return l.counts.snapshot() }

// DNSFileSource replays a DNS capture file (the TSV format of
// DNSFileWriter) through the ingest façade in record order.
type DNSFileSource struct {
	r io.Reader
	// BatchSize bounds the per-offer batch (default 256).
	BatchSize int
	counts    sourceCounters
}

// NewDNSFileSource wraps r.
func NewDNSFileSource(r io.Reader) *DNSFileSource { return &DNSFileSource{r: r} }

// Run parses the capture and offers it in batches, checking ctx between
// batches. A malformed capture is a source error.
func (s *DNSFileSource) Run(ctx context.Context, in Ingest) error {
	recs, err := ReadDNSFile(s.r)
	if err != nil {
		return err
	}
	bs := s.BatchSize
	if bs <= 0 {
		bs = 256
	}
	for len(recs) > 0 {
		if ctx.Err() != nil {
			return nil
		}
		n := min(bs, len(recs))
		batch := recs[:n]
		accepted := in.OfferDNSBatch(batch)
		s.counts.records.Add(uint64(n))
		s.counts.dropped.Add(uint64(n - accepted))
		recs = recs[n:]
	}
	return nil
}

// Stats snapshots the source counters.
func (s *DNSFileSource) Stats() SourceStats { return s.counts.snapshot() }

// FlowFileSource replays a flow capture file (the TSV format of
// FlowFileWriter) through the ingest façade in record order.
type FlowFileSource struct {
	r io.Reader
	// BatchSize bounds the per-offer batch (default 256).
	BatchSize int
	counts    sourceCounters
}

// NewFlowFileSource wraps r.
func NewFlowFileSource(r io.Reader) *FlowFileSource { return &FlowFileSource{r: r} }

// Run parses the capture and offers it in batches, checking ctx between
// batches.
func (s *FlowFileSource) Run(ctx context.Context, in Ingest) error {
	frs, err := ReadFlowFile(s.r)
	if err != nil {
		return err
	}
	bs := s.BatchSize
	if bs <= 0 {
		bs = 256
	}
	for len(frs) > 0 {
		if ctx.Err() != nil {
			return nil
		}
		n := min(bs, len(frs))
		accepted := in.OfferFlowBatch(frs[:n])
		s.counts.records.Add(uint64(n))
		s.counts.dropped.Add(uint64(n - accepted))
		frs = frs[n:]
	}
	return nil
}

// Stats snapshots the source counters.
func (s *FlowFileSource) Stats() SourceStats { return s.counts.snapshot() }
