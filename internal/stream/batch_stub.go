//go:build !linux || !(amd64 || arm64)

package stream

import (
	"errors"
	"net"
)

// Batch reads need the Linux recvmmsg syscall and the 64-bit mmsghdr
// layout; every other platform uses the single-read loop. The stub keeps
// the call sites identical so FlowUDPSource.Run stays platform-free.

var errBatchUnsupported = errors.New("stream: batch reads unsupported")

type batchReader struct{}

// newBatchReader always reports batch reads unavailable on this platform.
func newBatchReader(net.PacketConn, int, int) *batchReader { return nil }

func (r *batchReader) read() (int, error) { return 0, errBatchUnsupported }

func (r *batchReader) packet(int) []byte { return nil }
