package stream

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"repro/internal/dnswire"
	"repro/internal/netflow"
)

// Offline capture formats. The paper notes that correlation can also be
// done offline, in which case "the timestamps need to be taken into
// account and the two sources of data ... need to be correlated in the
// window where the DNS record is still valid". These readers/writers
// persist both record types as TSV so captures can be replayed through the
// correlator with their original record clock (clear-up rotation follows
// record timestamps, so an offline replay behaves exactly like the live
// run did).
//
// DNS line:  unixNano \t query \t rtype \t ttl \t answer
// Flow line: unixNano \t srcIP \t dstIP \t srcPort \t dstPort \t proto \t packets \t bytes

// DNSFileWriter persists DNS records.
type DNSFileWriter struct {
	w *bufio.Writer
}

// NewDNSFileWriter wraps w.
func NewDNSFileWriter(w io.Writer) *DNSFileWriter {
	return &DNSFileWriter{w: bufio.NewWriter(w)}
}

// Write persists one record. Typed A/AAAA answers are formatted here, the
// one place the string form is actually needed.
func (d *DNSFileWriter) Write(rec DNSRecord) error {
	_, err := fmt.Fprintf(d.w, "%d\t%s\t%d\t%d\t%s\n",
		rec.Timestamp.UnixNano(), rec.Query, uint16(rec.RType), rec.TTL, rec.AnswerString())
	return err
}

// Flush drains the buffer.
func (d *DNSFileWriter) Flush() error { return d.w.Flush() }

// ReadDNSFile parses a full DNS capture. Malformed lines abort with a
// line-numbered error: a capture must not silently lose records.
func ReadDNSFile(r io.Reader) ([]DNSRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []DNSRecord
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, "\t")
		if len(f) != 5 {
			return nil, fmt.Errorf("stream: dns capture line %d: %d fields, want 5", lineNo, len(f))
		}
		ns, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: dns capture line %d: timestamp: %w", lineNo, err)
		}
		rt, err := strconv.ParseUint(f[2], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("stream: dns capture line %d: rtype: %w", lineNo, err)
		}
		ttl, err := strconv.ParseUint(f[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("stream: dns capture line %d: ttl: %w", lineNo, err)
		}
		rec := DNSRecord{
			Timestamp: time.Unix(0, ns),
			Query:     f[1],
			RType:     dnswire.Type(rt),
			TTL:       uint32(ttl),
			Answer:    f[4],
		}
		// Parse A/AAAA answers once here, not per ingest: a replayed capture
		// feeds the same allocation-free typed fill path as the live wire.
		// An unparsable address stays string-only and is rejected by the
		// correlator's §3.2 filter, exactly as before.
		if rec.RType == dnswire.TypeA || rec.RType == dnswire.TypeAAAA {
			if addr, err := netip.ParseAddr(f[4]); err == nil {
				rec.Addr = addr
			}
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stream: dns capture: %w", err)
	}
	return out, nil
}

// FlowFileWriter persists flow records.
type FlowFileWriter struct {
	w *bufio.Writer
}

// NewFlowFileWriter wraps w.
func NewFlowFileWriter(w io.Writer) *FlowFileWriter {
	return &FlowFileWriter{w: bufio.NewWriter(w)}
}

// Write persists one record.
func (d *FlowFileWriter) Write(fr netflow.FlowRecord) error {
	_, err := fmt.Fprintf(d.w, "%d\t%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
		fr.Timestamp.UnixNano(), fr.SrcIP, fr.DstIP, fr.SrcPort, fr.DstPort,
		fr.Proto, fr.Packets, fr.Bytes)
	return err
}

// Flush drains the buffer.
func (d *FlowFileWriter) Flush() error { return d.w.Flush() }

// ReadFlowFile parses a full flow capture.
func ReadFlowFile(r io.Reader) ([]netflow.FlowRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []netflow.FlowRecord
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, "\t")
		if len(f) != 8 {
			return nil, fmt.Errorf("stream: flow capture line %d: %d fields, want 8", lineNo, len(f))
		}
		ns, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: flow capture line %d: timestamp: %w", lineNo, err)
		}
		src, err := netip.ParseAddr(f[1])
		if err != nil {
			return nil, fmt.Errorf("stream: flow capture line %d: srcIP: %w", lineNo, err)
		}
		dst, err := netip.ParseAddr(f[2])
		if err != nil {
			return nil, fmt.Errorf("stream: flow capture line %d: dstIP: %w", lineNo, err)
		}
		ints := make([]uint64, 5)
		for i, field := range f[3:8] {
			v, err := strconv.ParseUint(field, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("stream: flow capture line %d: field %d: %w", lineNo, i+3, err)
			}
			ints[i] = v
		}
		out = append(out, netflow.FlowRecord{
			Timestamp: time.Unix(0, ns),
			SrcIP:     src, DstIP: dst,
			SrcPort: uint16(ints[0]), DstPort: uint16(ints[1]),
			Proto: uint8(ints[2]), Packets: ints[3], Bytes: ints[4],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stream: flow capture: %w", err)
	}
	return out, nil
}

// MergeByTime interleaves a DNS capture and a flow capture into a single
// timestamp-ordered replay plan: the returned apply function invokes
// ingest/correlate callbacks in record-clock order. Both inputs must be
// individually time-sorted (captures written live always are).
func MergeByTime(dns []DNSRecord, flows []netflow.FlowRecord,
	onDNS func(DNSRecord), onFlow func(netflow.FlowRecord)) {
	i, j := 0, 0
	for i < len(dns) || j < len(flows) {
		takeDNS := j >= len(flows) ||
			(i < len(dns) && !dns[i].Timestamp.After(flows[j].Timestamp))
		if takeDNS {
			onDNS(dns[i])
			i++
		} else {
			onFlow(flows[j])
			j++
		}
	}
}
