package stream

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/dnswire"
	"repro/internal/fault"
)

// ErrMessageTooLarge is returned when a length-prefixed frame exceeds the
// 64 KiB DNS-over-TCP maximum.
var ErrMessageTooLarge = errors.New("stream: framed message exceeds 65535 bytes")

// WriteFrame writes one length-prefixed message (RFC 1035 §4.2.2: two-byte
// big-endian length, then the payload).
func WriteFrame(w io.Writer, msg []byte) error {
	if len(msg) > 0xFFFF {
		return ErrMessageTooLarge
	}
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// ReadFrame reads one length-prefixed message, reusing buf when it has
// capacity. It returns the payload (aliasing buf) or an error. The length
// header is read into buf too — a stack-local header array would escape
// through the io.Reader interface and cost one heap allocation per frame,
// which at ISP stream rates is the difference between an allocation-free
// read loop and a GC-visible one.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	if cap(buf) < 2 {
		buf = make([]byte, 0, 4096)
	}
	hdr := buf[:2]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(hdr))
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// fpDNSRead injects read faults into the DNS TCP read loop (error ends
// the stream like a peer reset; delay stalls the reader like a slow peer).
var fpDNSRead = fault.New("stream.dns.read")

// DNSTCPSource reads framed DNS responses from a TCP connection, flattens
// them, and offers the records through the ingest façade. Records the
// façade rejects (stage buffer full) are dropped and counted — the paper's
// stream-buffer loss.
type DNSTCPSource struct {
	conn net.Conn
	// Clock assigns receive timestamps; tests and replays inject their own.
	Clock func() time.Time

	// IdleTimeout bounds the wait for the next frame. A resolver stream
	// that goes silent past it is closed and counted in Stats.Timeouts,
	// instead of pinning the read goroutine (and, under a listener, the
	// connection slot) forever on a wedged peer. 0 disables the bound.
	// Set before Run.
	IdleTimeout time.Duration

	// counts may be shared with a DNSListener aggregating several streams.
	counts *sourceCounters
}

// NewDNSTCPSource wraps conn.
func NewDNSTCPSource(conn net.Conn) *DNSTCPSource {
	return &DNSTCPSource{conn: conn, Clock: time.Now, counts: &sourceCounters{}}
}

// Run reads until ctx is cancelled or the connection closes. io.EOF and
// cancellation are clean ends and return nil. Each decoded response is
// offered as one batch (its flattened records share a receive timestamp).
// Run owns the connection and closes it on every exit path.
func (s *DNSTCPSource) Run(ctx context.Context, in Ingest) error {
	defer s.conn.Close()
	defer closeOnDone(ctx, func() { s.conn.Close() })()
	buf := make([]byte, 0, 4096)
	// One flatten buffer per connection: OfferDNSBatch copies records into
	// the stage queue, so the buffer is free again the moment it returns.
	recs := make([]DNSRecord, 0, 16)
	for {
		if err := fpDNSRead.Inject(); err != nil {
			return fmt.Errorf("stream: dns tcp read: %w", err)
		}
		if s.IdleTimeout > 0 {
			if err := s.conn.SetReadDeadline(time.Now().Add(s.IdleTimeout)); err != nil {
				if ignoreClosed(ctx, err) == nil {
					return nil
				}
				return fmt.Errorf("stream: dns tcp deadline: %w", err)
			}
		}
		frame, err := ReadFrame(s.conn, buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && ctx.Err() == nil {
				s.counts.timeouts.Add(1)
				return fmt.Errorf("stream: dns tcp: no frame for %v, closing idle connection", s.IdleTimeout)
			}
			if ignoreClosed(ctx, err) == nil {
				return nil
			}
			return fmt.Errorf("stream: dns tcp read: %w", err)
		}
		buf = frame[:0]
		s.counts.frames.Add(1)
		msg, err := dnswire.Decode(frame)
		if err != nil {
			s.counts.decodeError.Add(1)
			continue
		}
		if recs = FlattenResponseInto(recs[:0], msg, s.Clock()); len(recs) > 0 {
			accepted := in.OfferDNSBatch(recs)
			s.counts.records.Add(uint64(len(recs)))
			s.counts.dropped.Add(uint64(len(recs) - accepted))
		}
	}
}

// Stats snapshots the source counters.
func (s *DNSTCPSource) Stats() SourceStats { return s.counts.snapshot() }

// DNSTCPSink writes DNS messages as length-prefixed frames; the emitter side
// used by the workload generator and the live-pipeline example.
type DNSTCPSink struct {
	w   io.Writer
	buf []byte
}

// NewDNSTCPSink wraps w.
func NewDNSTCPSink(w io.Writer) *DNSTCPSink {
	return &DNSTCPSink{w: w, buf: make([]byte, 0, 4096)}
}

// Send encodes and frames one message.
func (s *DNSTCPSink) Send(m *dnswire.Message) error {
	var err error
	s.buf, err = dnswire.AppendMessage(s.buf[:0], m)
	if err != nil {
		return err
	}
	return WriteFrame(s.w, s.buf)
}
