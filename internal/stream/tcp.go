package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/dnswire"
	"repro/internal/queue"
)

// ErrMessageTooLarge is returned when a length-prefixed frame exceeds the
// 64 KiB DNS-over-TCP maximum.
var ErrMessageTooLarge = errors.New("stream: framed message exceeds 65535 bytes")

// WriteFrame writes one length-prefixed message (RFC 1035 §4.2.2: two-byte
// big-endian length, then the payload).
func WriteFrame(w io.Writer, msg []byte) error {
	if len(msg) > 0xFFFF {
		return ErrMessageTooLarge
	}
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// ReadFrame reads one length-prefixed message, reusing buf when it has
// capacity. It returns the payload (aliasing buf) or an error.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(hdr[:]))
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// SourceStats aggregates what a stream source observed.
type SourceStats struct {
	Frames      uint64 // frames or datagrams read off the wire
	DecodeError uint64 // frames that failed to decode
	Records     uint64 // records flattened out of decoded frames
	Queue       queue.Stats
}

// DNSTCPSource reads framed DNS responses from a TCP connection, flattens
// them, and offers the records to out. Records that do not fit (queue full)
// are dropped and counted — the paper's stream-buffer loss.
type DNSTCPSource struct {
	conn net.Conn
	out  *queue.Queue[DNSRecord]
	// Clock assigns receive timestamps; tests and replays inject their own.
	Clock func() time.Time

	frames      atomic.Uint64
	decodeError atomic.Uint64
	records     atomic.Uint64
}

// NewDNSTCPSource wraps conn; records land in out.
func NewDNSTCPSource(conn net.Conn, out *queue.Queue[DNSRecord]) *DNSTCPSource {
	return &DNSTCPSource{conn: conn, out: out, Clock: time.Now}
}

// Run reads until the connection closes or errors. io.EOF is a clean end and
// returns nil. Run does not close the output queue: several sources may
// share one queue (the paper runs 2 DNS streams at the large ISP).
func (s *DNSTCPSource) Run() error {
	buf := make([]byte, 0, 4096)
	for {
		frame, err := ReadFrame(s.conn, buf)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("stream: dns tcp read: %w", err)
		}
		buf = frame[:0]
		s.frames.Add(1)
		msg, err := dnswire.Decode(frame)
		if err != nil {
			s.decodeError.Add(1)
			continue
		}
		ts := s.Clock()
		for _, rec := range FlattenResponse(msg, ts) {
			s.records.Add(1)
			s.out.Offer(rec)
		}
	}
}

// Stats snapshots the source counters.
func (s *DNSTCPSource) Stats() SourceStats {
	return SourceStats{
		Frames:      s.frames.Load(),
		DecodeError: s.decodeError.Load(),
		Records:     s.records.Load(),
		Queue:       s.out.Stats(),
	}
}

// DNSTCPSink writes DNS messages as length-prefixed frames; the emitter side
// used by the workload generator and the live-pipeline example.
type DNSTCPSink struct {
	w   io.Writer
	buf []byte
}

// NewDNSTCPSink wraps w.
func NewDNSTCPSink(w io.Writer) *DNSTCPSink {
	return &DNSTCPSink{w: w, buf: make([]byte, 0, 4096)}
}

// Send encodes and frames one message.
func (s *DNSTCPSink) Send(m *dnswire.Message) error {
	var err error
	s.buf, err = dnswire.AppendMessage(s.buf[:0], m)
	if err != nil {
		return err
	}
	return WriteFrame(s.w, s.buf)
}
