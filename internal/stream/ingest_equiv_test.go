package stream

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/netflow"
	"repro/internal/queue"
)

// A zero first-record timestamp (replayed captures, synthetic load) must
// not stamp the export header with the Unix epoch: the sink falls back to
// the wall clock, so collector-side age math stays sane.
func TestFlowUDPSinkFlushZeroTimestamp(t *testing.T) {
	conn := &captureConn{}
	sink := NewFlowUDPSink(conn, 7, 10)
	injected := testTime().Add(42 * time.Minute)
	sink.now = func() time.Time { return injected }

	rec := v9Flow(0)
	rec.Timestamp = time.Time{}
	if err := sink.Send(rec); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	p, err := netflow.DecodeV9(conn.packets[0], netflow.NewTemplateCache())
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Header.UnixSecs; got != uint32(injected.Unix()) {
		t.Fatalf("header UnixSecs = %d, want wall clock %d (zero-timestamp batch must not emit a 1970 header)",
			got, injected.Unix())
	}

	// A batch whose first record does carry a timestamp keeps using it.
	if err := sink.Send(v9Flow(1)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	p, err = netflow.DecodeV9(conn.packets[1], netflow.NewTemplateCache())
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Header.UnixSecs; got != uint32(v9Flow(1).Timestamp.Unix()) {
		t.Fatalf("header UnixSecs = %d, want record timestamp %d", got, v9Flow(1).Timestamp.Unix())
	}
}

// scriptedPacketConn serves a fixed list of datagrams, then blocks until
// closed. It deliberately does not implement syscall.Conn, so a
// FlowUDPSource wrapping it must take the single-read fallback path even on
// platforms with batch-read support.
type scriptedPacketConn struct {
	pkts [][]byte
	i    int

	mu     sync.Mutex
	closed chan struct{}
}

func newScriptedPacketConn(pkts [][]byte) *scriptedPacketConn {
	return &scriptedPacketConn{pkts: pkts, closed: make(chan struct{})}
}

func (c *scriptedPacketConn) ReadFrom(p []byte) (int, net.Addr, error) {
	if c.i < len(c.pkts) {
		n := copy(p, c.pkts[c.i])
		c.i++
		return n, nil, nil
	}
	<-c.closed
	return 0, nil, net.ErrClosed
}

func (c *scriptedPacketConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	return nil
}

func (c *scriptedPacketConn) WriteTo([]byte, net.Addr) (int, error) { return 0, net.ErrClosed }
func (c *scriptedPacketConn) LocalAddr() net.Addr                   { return nil }
func (c *scriptedPacketConn) SetDeadline(time.Time) error           { return nil }
func (c *scriptedPacketConn) SetReadDeadline(time.Time) error       { return nil }
func (c *scriptedPacketConn) SetWriteDeadline(time.Time) error      { return nil }

// mixedDatagrams builds the wire mix both mode tests feed: v9 (template +
// data), v5, garbage, and a runt — per expectation 16+30 records, 2 decode
// errors across 4+ frames.
func mixedDatagrams(t *testing.T) (pkts [][]byte, wantRecords, wantErrors int) {
	t.Helper()
	v9recs := make([]netflow.FlowRecord, 16)
	for i := range v9recs {
		v9recs[i] = v9Flow(i)
	}
	pkts = append(pkts, encodeDatagram(t, v9recs))
	pkts = append(pkts, v5Datagram(t, 30))
	pkts = append(pkts, []byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4}) // unknown version
	pkts = append(pkts, []byte{5})                                  // runt
	return pkts, 46, 2
}

// runUDPSource pushes pkts through a FlowUDPSource over a real loopback UDP
// socket in the requested mode and returns the source stats and the flow
// queue stats delta once every frame has been accounted.
func runUDPSource(t *testing.T, batchSize int, pkts [][]byte) (SourceStats, queue.Stats) {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if uc, ok := pc.(*net.UDPConn); ok {
		uc.SetReadBuffer(4 << 20)
	}
	src := NewFlowUDPSource(pc)
	src.BatchSize = batchSize
	in := newTestIngest(16, 1<<16)
	before := in.flow.Stats()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- src.Run(ctx, in) }()

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, p := range pkts {
		if _, err := conn.Write(p); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for src.Stats().Frames < uint64(len(pkts)) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: frames = %d, want %d", src.Stats().Frames, len(pkts))
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	after := in.flow.Stats()
	return src.Stats(), queue.Stats{
		Enqueued: after.Enqueued - before.Enqueued,
		Dropped:  after.Dropped - before.Dropped,
		Sampled:  after.Sampled - before.Sampled,
	}
}

// Batch and single-read modes must be observationally identical: same
// record counts, same frames/decode-error accounting, same drop accounting,
// and the Offered == Enqueued + Dropped + Sampled queue invariant in both.
// On platforms without batch support the "batch" leg exercises the runtime
// fallback instead — the assertions are identical by design.
func TestFlowUDPSourceBatchAndFallbackAgree(t *testing.T) {
	pkts, wantRecords, wantErrors := mixedDatagrams(t)
	modes := map[string]int{"batch": 8, "single": 1}
	stats := map[string]SourceStats{}
	for name, bs := range modes {
		t.Run(name, func(t *testing.T) {
			st, qd := runUDPSource(t, bs, pkts)
			if st.Records != uint64(wantRecords) {
				t.Fatalf("records = %d, want %d", st.Records, wantRecords)
			}
			if st.DecodeError != uint64(wantErrors) {
				t.Fatalf("decode errors = %d, want %d", st.DecodeError, wantErrors)
			}
			if st.Frames != uint64(len(pkts)) {
				t.Fatalf("frames = %d, want %d", st.Frames, len(pkts))
			}
			// Source-side drops must equal queue-side drops, and the queue
			// invariant must hold: every offered record is enqueued, dropped,
			// or sampled.
			if st.Dropped != qd.Dropped {
				t.Fatalf("source dropped %d != queue dropped %d", st.Dropped, qd.Dropped)
			}
			if off := qd.Offered(); off != st.Records {
				t.Fatalf("queue offered %d != source records %d", off, st.Records)
			}
			if qd.Enqueued+qd.Dropped+qd.Sampled != qd.Offered() {
				t.Fatalf("invariant violated: %d + %d + %d != %d",
					qd.Enqueued, qd.Dropped, qd.Sampled, qd.Offered())
			}
			stats[name] = st
		})
	}
	if t.Failed() {
		return
	}
	if stats["batch"] != stats["single"] {
		t.Fatalf("modes disagree: batch %+v, single %+v", stats["batch"], stats["single"])
	}
}

// A PacketConn without a raw file descriptor must be served by the fallback
// loop with the exact same counts — the path every test fake, tunnel, and
// non-Linux platform takes.
func TestFlowUDPSourceFallbackOnNonSyscallConn(t *testing.T) {
	pkts, wantRecords, wantErrors := mixedDatagrams(t)
	conn := newScriptedPacketConn(pkts)
	src := NewFlowUDPSource(conn)
	src.BatchSize = 8 // batching requested, but the conn cannot do it
	in := newTestIngest(16, 1<<16)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- src.Run(ctx, in) }()

	deadline := time.Now().Add(5 * time.Second)
	for src.Stats().Frames < uint64(len(pkts)) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: frames = %d, want %d", src.Stats().Frames, len(pkts))
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := src.Stats()
	if st.Records != uint64(wantRecords) || st.DecodeError != uint64(wantErrors) || st.Frames != uint64(len(pkts)) {
		t.Fatalf("stats = %+v, want %d records / %d errors / %d frames", st, wantRecords, wantErrors, len(pkts))
	}
	qs := in.flow.Stats()
	if qs.Enqueued != uint64(wantRecords) || qs.Dropped != 0 {
		t.Fatalf("queue stats = %+v", qs)
	}
}

// Under a sampler the invariant must hold in batch mode too: shed records
// are accepted handoffs counted in Sampled, never phantom source drops.
func TestFlowUDPSourceBatchWithSamplerInvariant(t *testing.T) {
	pkts, wantRecords, _ := mixedDatagrams(t)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	src := NewFlowUDPSource(pc)
	src.BatchSize = 8
	in := newTestIngest(16, 64)
	in.flow.SetSampler(queue.SamplerConfig{LowWater: 0, HighWater: 0, MaxShed: 0.5})
	in.flow.Offer(v9Flow(99)) // non-empty so the sampler engages
	before := in.flow.Stats()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- src.Run(ctx, in) }()
	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, p := range pkts {
		if _, err := conn.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for src.Stats().Frames < uint64(len(pkts)) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: frames = %d", src.Stats().Frames)
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}

	st := src.Stats()
	after := in.flow.Stats()
	sampled := after.Sampled - before.Sampled
	if sampled == 0 {
		t.Fatal("sampler shed nothing; test is vacuous")
	}
	if st.Dropped != after.Dropped-before.Dropped {
		t.Fatalf("source dropped %d != queue drop delta %d (sampled shed leaked into a drop counter)",
			st.Dropped, after.Dropped-before.Dropped)
	}
	if off := after.Offered() - before.Offered(); off != st.Records || st.Records != uint64(wantRecords) {
		t.Fatalf("offered delta %d != records %d (want %d)", off, st.Records, wantRecords)
	}
}
