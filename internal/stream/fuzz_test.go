package stream

import (
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/dnswire"
)

// FuzzFlattenResponseInto asserts the append-into flatten path is exactly
// FlattenResponse under buffer reuse: for any decodable message, flattening
// into a freshly poisoned reused buffer yields the same records as a fresh
// flatten, twice in a row (the TCP source reuses one buffer per frame), and
// every produced record passes the §3.2 filter invariants — A/AAAA records
// carry a valid typed address matching their type, CNAME records a
// non-empty target.
func FuzzFlattenResponseInto(f *testing.F) {
	mustEncode := func(m *dnswire.Message) []byte {
		b, err := dnswire.Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	// Mixed-section response: CNAME chain, A, AAAA, TXT (skipped), and an
	// unknown type (skipped) — the shape the fill path sees from real
	// resolvers.
	mixed := mustEncode(&dnswire.Message{
		Header: dnswire.Header{ID: 1, Response: true},
		Questions: []dnswire.Question{
			{Name: "svc.example.com", Type: dnswire.TypeA, Class: dnswire.ClassIN},
		},
		Answers: []dnswire.Record{
			{Name: "svc.example.com", Type: dnswire.TypeCNAME, Class: dnswire.ClassIN, TTL: 300, Target: "edge.cdn.example"},
			{Name: "edge.cdn.example", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60,
				Addr: netip.AddrFrom4([4]byte{198, 51, 100, 7})},
			{Name: "edge.cdn.example", Type: dnswire.TypeAAAA, Class: dnswire.ClassIN, TTL: 60,
				Addr: netip.MustParseAddr("2001:db8::7")},
			{Name: "edge.cdn.example", Type: dnswire.TypeTXT, Class: dnswire.ClassIN, TTL: 60, TXT: []string{"v=spf1"}},
			{Name: "edge.cdn.example", Type: dnswire.Type(4242), Class: dnswire.ClassIN, TTL: 60, Raw: []byte{1, 2, 3}},
		},
	})
	f.Add(mixed)
	// NXDOMAIN and plain-query messages flatten to nothing.
	f.Add(mustEncode(&dnswire.Message{
		Header:    dnswire.Header{ID: 2, Response: true, RCode: dnswire.RCodeNXDomain},
		Questions: []dnswire.Question{{Name: "gone.example", Type: dnswire.TypeA, Class: dnswire.ClassIN}},
	}))
	f.Add(mustEncode(&dnswire.Message{
		Header:    dnswire.Header{ID: 3},
		Questions: []dnswire.Question{{Name: "asked.example", Type: dnswire.TypeAAAA, Class: dnswire.ClassIN}},
	}))
	f.Add(mixed[:12])
	f.Add([]byte{})

	ts := time.Unix(1653475200, 0)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := dnswire.Decode(data)
		if err != nil {
			return
		}
		fresh := FlattenResponse(m, ts)

		// Reused buffer, poisoned: stale records from a previous frame must
		// never leak through or corrupt the new flatten.
		dst := make([]DNSRecord, 0, 4)
		for i := 0; i < 3; i++ {
			dst = append(dst, DNSRecord{Query: "stale.example", Answer: "203.0.113.9",
				RType: dnswire.TypeA, Timestamp: ts, TTL: 999})
		}
		got := FlattenResponseInto(dst[:0], m, ts)
		if len(got) != len(fresh) || (len(fresh) > 0 && !reflect.DeepEqual(got, fresh)) {
			t.Fatalf("into(reused) = %+v, fresh = %+v", got, fresh)
		}
		// Second flatten into the same buffer: the TCP source's steady
		// state. Aliasing the previous result's backing array must not
		// change the outcome.
		again := FlattenResponseInto(got[:0], m, ts)
		if len(again) != len(fresh) || (len(fresh) > 0 && !reflect.DeepEqual(again, fresh)) {
			t.Fatalf("into(again) = %+v, fresh = %+v", again, fresh)
		}

		for i := range fresh {
			r := &fresh[i]
			if !r.IsValid() {
				t.Fatalf("flattened record %d invalid: %+v", i, r)
			}
			switch r.RType {
			case dnswire.TypeA:
				if !r.Addr.Is4() && !r.Addr.Is4In6() {
					t.Fatalf("A record %d with non-IPv4 addr: %+v", i, r)
				}
			case dnswire.TypeAAAA:
				if !r.Addr.IsValid() {
					t.Fatalf("AAAA record %d without addr: %+v", i, r)
				}
			case dnswire.TypeCNAME:
				if r.Answer == "" {
					t.Fatalf("CNAME record %d without target: %+v", i, r)
				}
			default:
				t.Fatalf("record %d of unexpected type %v", i, r.RType)
			}
		}
	})
}
