package bgp

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
)

func hotTable(t *testing.T, asn uint32) *Table {
	t.Helper()
	tb := NewTable()
	if err := tb.Insert(netip.MustParsePrefix("10.0.0.0/8"), asn); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestHotFreezesOnSwap(t *testing.T) {
	tb := hotTable(t, 64500)
	h := NewHot(tb)
	if !tb.Frozen() {
		t.Fatal("NewHot did not freeze the table")
	}
	if got := tb.Insert(netip.MustParsePrefix("10.1.0.0/16"), 1); got != ErrFrozen {
		t.Fatalf("Insert after NewHot = %v, want ErrFrozen", got)
	}
	old := h.Swap(hotTable(t, 64501))
	if old != tb {
		t.Fatal("Swap did not return the previous table")
	}
	if asn, ok := h.Lookup(netip.MustParseAddr("10.2.3.4")); !ok || asn != 64501 {
		t.Fatalf("post-swap Lookup = %d,%v; want 64501,true", asn, ok)
	}
}

func TestHotNilIsEmpty(t *testing.T) {
	h := NewHot(nil)
	if h.Len() != 0 {
		t.Fatalf("NewHot(nil).Len() = %d", h.Len())
	}
	if _, ok := h.Lookup(netip.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("empty hot table matched an address")
	}
	h.Swap(nil)
	if _, ok := h.Lookup(netip.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("Swap(nil) table matched an address")
	}
}

// Zero dropped lookups during a swap: every concurrent lookup must resolve
// against either the old or the new table — never miss, never a partial
// result — while swaps churn underneath.
func TestHotSwapUnderLoad(t *testing.T) {
	h := NewHot(hotTable(t, 1))
	addr := netip.MustParseAddr("10.9.9.9")

	var stop atomic.Bool
	var wg sync.WaitGroup
	const readers = 8
	wg.Add(readers)
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				asn, ok := h.Lookup(addr)
				if !ok {
					errs <- "lookup missed during swap"
					return
				}
				if asn == 0 {
					errs <- "lookup returned zero ASN"
					return
				}
			}
		}()
	}

	for gen := uint32(2); gen < 300; gen++ {
		old := h.Swap(hotTable(t, gen))
		if !old.Frozen() {
			t.Error("previous table was not frozen")
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
