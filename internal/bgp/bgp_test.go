package bgp

import (
	"errors"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLookupLongestPrefixWins(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Insert(mustPrefix(t, "10.0.0.0/8"), 100); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(mustPrefix(t, "10.1.0.0/16"), 200); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(mustPrefix(t, "10.1.2.0/24"), 300); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr string
		want uint32
	}{
		{"10.9.9.9", 100},
		{"10.1.9.9", 200},
		{"10.1.2.9", 300},
	}
	for _, c := range cases {
		got, ok := tbl.Lookup(netip.MustParseAddr(c.addr))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %d,%v; want %d", c.addr, got, ok, c.want)
		}
	}
	if _, ok := tbl.Lookup(netip.MustParseAddr("11.0.0.1")); ok {
		t.Error("no-match address matched")
	}
}

func TestLookupIPv6(t *testing.T) {
	tbl := NewTable()
	tbl.Insert(mustPrefix(t, "2001:db8::/32"), 64500)
	tbl.Insert(mustPrefix(t, "2001:db8:1::/48"), 64501)
	if got, _ := tbl.Lookup(netip.MustParseAddr("2001:db8:2::1")); got != 64500 {
		t.Errorf("v6 short = %d", got)
	}
	if got, _ := tbl.Lookup(netip.MustParseAddr("2001:db8:1::1")); got != 64501 {
		t.Errorf("v6 long = %d", got)
	}
	// v4 does not leak into the v6 trie and vice versa.
	if _, ok := tbl.Lookup(netip.MustParseAddr("32.1.13.184")); ok {
		t.Error("v4 matched v6 trie")
	}
}

func TestLookup4In6(t *testing.T) {
	tbl := NewTable()
	tbl.Insert(mustPrefix(t, "192.0.2.0/24"), 7)
	got, ok := tbl.Lookup(netip.MustParseAddr("::ffff:192.0.2.5"))
	if !ok || got != 7 {
		t.Errorf("4-in-6 = %d,%v", got, ok)
	}
}

func TestInsertExactReplaces(t *testing.T) {
	tbl := NewTable()
	tbl.Insert(mustPrefix(t, "10.0.0.0/8"), 1)
	tbl.Insert(mustPrefix(t, "10.0.0.0/8"), 2)
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if got, _ := tbl.Lookup(netip.MustParseAddr("10.0.0.1")); got != 2 {
		t.Fatalf("got %d", got)
	}
}

func TestInsertInvalid(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Insert(netip.Prefix{}, 1); err == nil {
		t.Fatal("invalid prefix accepted")
	}
	if _, ok := tbl.Lookup(netip.Addr{}); ok {
		t.Fatal("invalid addr matched")
	}
}

func TestDefaultRoute(t *testing.T) {
	tbl := NewTable()
	tbl.Insert(mustPrefix(t, "0.0.0.0/0"), 1)
	if got, ok := tbl.Lookup(netip.MustParseAddr("203.0.113.9")); !ok || got != 1 {
		t.Fatalf("default route = %d,%v", got, ok)
	}
}

func TestHostRoute(t *testing.T) {
	tbl := NewTable()
	tbl.Insert(mustPrefix(t, "198.51.100.7/32"), 9)
	if got, ok := tbl.Lookup(netip.MustParseAddr("198.51.100.7")); !ok || got != 9 {
		t.Fatalf("host route = %d,%v", got, ok)
	}
	if _, ok := tbl.Lookup(netip.MustParseAddr("198.51.100.8")); ok {
		t.Fatal("neighbor matched host route")
	}
}

func TestBuild(t *testing.T) {
	tbl, err := Build([]Assignment{
		{Prefix: mustPrefix(t, "10.0.0.0/8"), ASN: 1},
		{Prefix: mustPrefix(t, "172.16.0.0/12"), ASN: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if _, err := Build([]Assignment{{}}); err == nil {
		t.Fatal("Build accepted invalid assignment")
	}
}

func TestASTraffic(t *testing.T) {
	tbl, _ := Build([]Assignment{
		{Prefix: mustPrefix(t, "100.64.0.0/16"), ASN: 64500},
		{Prefix: mustPrefix(t, "100.65.0.0/16"), ASN: 64501},
	})
	acc := NewASTraffic()
	acc.Add(tbl, netip.MustParseAddr("100.64.0.1"), 1000)
	acc.Add(tbl, netip.MustParseAddr("100.64.0.2"), 500)
	acc.Add(tbl, netip.MustParseAddr("100.65.0.1"), 200)
	acc.Add(tbl, netip.MustParseAddr("9.9.9.9"), 77) // unroutable -> AS 0
	if acc.Total(64500) != 1500 || acc.Total(64501) != 200 || acc.Total(0) != 77 {
		t.Fatalf("totals = %d/%d/%d", acc.Total(64500), acc.Total(64501), acc.Total(0))
	}
	top := acc.Top(2)
	if len(top) != 2 || top[0].ASN != 64500 || top[1].ASN != 64501 {
		t.Fatalf("top = %v", top)
	}
	if top[0].String() != "AS64500:1500" {
		t.Fatalf("String = %q", top[0].String())
	}
}

// Property: the trie agrees with a linear scan over masked prefixes.
func TestQuickTrieMatchesLinearScan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var assignments []Assignment
		tbl := NewTable()
		for i := 0; i < 50; i++ {
			bits := r.Intn(25) + 8
			addr := netip.AddrFrom4([4]byte{byte(r.Intn(224)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
			p, err := addr.Prefix(bits)
			if err != nil {
				return false
			}
			a := Assignment{Prefix: p, ASN: uint32(i + 1)}
			assignments = append(assignments, a)
			tbl.Insert(p, a.ASN)
		}
		for i := 0; i < 200; i++ {
			probe := netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
			var wantASN uint32
			wantBits := -1
			for _, a := range assignments {
				if a.Prefix.Contains(probe) && a.Prefix.Bits() > wantBits {
					// Later equal-length inserts overwrite earlier ones.
					wantASN, wantBits = a.ASN, a.Prefix.Bits()
				} else if a.Prefix.Contains(probe) && a.Prefix.Bits() == wantBits {
					wantASN = a.ASN
				}
			}
			got, ok := tbl.Lookup(probe)
			if wantBits < 0 {
				if ok {
					return false
				}
				continue
			}
			if !ok || got != wantASN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	tbl := NewTable()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		addr := netip.AddrFrom4([4]byte{byte(r.Intn(224)), byte(r.Intn(256)), 0, 0})
		p, _ := addr.Prefix(r.Intn(17) + 8)
		tbl.Insert(p, uint32(i))
	}
	probes := make([]netip.Addr, 1024)
	for i := range probes {
		probes[i] = netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(probes[i&1023])
	}
}

// TestFreezeContract enforces the build-then-read phase switch: inserts
// succeed before Freeze, fail with ErrFrozen after, and the frozen table
// keeps answering lookups.
func TestFreezeContract(t *testing.T) {
	tbl := NewTable()
	if tbl.Frozen() {
		t.Fatal("new table already frozen")
	}
	if err := tbl.Insert(netip.MustParsePrefix("192.0.2.0/24"), 64500); err != nil {
		t.Fatal(err)
	}
	tbl.Freeze()
	if !tbl.Frozen() {
		t.Fatal("Freeze did not stick")
	}
	if err := tbl.Insert(netip.MustParsePrefix("198.51.100.0/24"), 64501); !errors.Is(err, ErrFrozen) {
		t.Fatalf("post-freeze Insert err = %v, want ErrFrozen", err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d after rejected insert, want 1", tbl.Len())
	}
	asn, ok := tbl.Lookup(netip.MustParseAddr("192.0.2.7"))
	if !ok || asn != 64500 {
		t.Fatalf("frozen lookup = %d/%v", asn, ok)
	}
	if _, ok := tbl.Lookup(netip.MustParseAddr("198.51.100.7")); ok {
		t.Fatal("rejected prefix is resolvable")
	}
}

// TestFrozenTableConcurrency is the pipeline-lifecycle race test: a table
// built and frozen at startup, then hammered by concurrent readers (the
// rollup sink's Write workers) while stray Inserts are rejected. Run under
// -race this proves the build-then-read contract is enforceable, not just
// documented.
func TestFrozenTableConcurrency(t *testing.T) {
	tbl := NewTable()
	r := rand.New(rand.NewSource(7))
	type probe struct {
		addr netip.Addr
		asn  uint32
	}
	var probes []probe
	for i := 0; i < 512; i++ {
		addr := netip.AddrFrom4([4]byte{byte(10 + r.Intn(200)), byte(r.Intn(256)), byte(r.Intn(256)), 1})
		p, _ := addr.Prefix(24)
		asn := uint32(64500 + i)
		if err := tbl.Insert(p, asn); err != nil {
			t.Fatal(err)
		}
		probes = append(probes, probe{addr, asn})
	}
	tbl.Freeze()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				p := probes[(i*31+seed)%len(probes)]
				asn, ok := tbl.Lookup(p.addr)
				if !ok || asn != p.asn {
					t.Errorf("concurrent lookup %v = %d/%v, want %d", p.addr, asn, ok, p.asn)
					return
				}
			}
		}(w)
	}
	// A mistaken late writer: every insert must bounce off the freeze
	// without touching the trie the readers are walking.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p := netip.PrefixFrom(netip.AddrFrom4([4]byte{203, 0, byte(seed), byte(i % 256)}), 32)
				if err := tbl.Insert(p, 65000); !errors.Is(err, ErrFrozen) {
					t.Errorf("late Insert err = %v, want ErrFrozen", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tbl.Len() != 512 {
		t.Fatalf("Len = %d after rejected inserts, want 512", tbl.Len())
	}
}

// TestParseTable covers the startup loader: comments, blank lines, AS
// prefixes, v4/v6, and the rejection paths.
func TestParseTable(t *testing.T) {
	tbl, err := ParseTable(strings.NewReader(`
# full-table reduction
192.0.2.0/24    64500
198.51.100.0/24 AS64501
2001:db8::/32   as64502

203.0.113.0/24  64503
`))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tbl.Len())
	}
	if tbl.Frozen() {
		t.Fatal("ParseTable must not freeze (callers may append overrides)")
	}
	for addr, want := range map[string]uint32{
		"192.0.2.9":     64500,
		"198.51.100.1":  64501,
		"2001:db8::dea": 64502,
		"203.0.113.254": 64503,
	} {
		asn, ok := tbl.Lookup(netip.MustParseAddr(addr))
		if !ok || asn != want {
			t.Errorf("Lookup(%s) = %d/%v, want %d", addr, asn, ok, want)
		}
	}
	for _, bad := range []string{
		"192.0.2.0/24",            // missing ASN
		"192.0.2.0/24 64500 junk", // trailing field
		"not-a-prefix 64500",
		"192.0.2.0/24 AS",          // empty ASN after prefix strip
		"192.0.2.0/24 badasn",      // non-numeric
		"192.0.2.0/24 99999999999", // out of uint32 range
	} {
		if _, err := ParseTable(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTable(%q) accepted", bad)
		}
	}
}

func TestLoadTable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "table.txt")
	if err := os.WriteFile(path, []byte("192.0.2.0/24 64500\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tbl, err := LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if asn, ok := tbl.Lookup(netip.MustParseAddr("192.0.2.1")); !ok || asn != 64500 {
		t.Fatalf("loaded lookup = %d/%v", asn, ok)
	}
	if _, err := LoadTable(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}
