// Package bgp provides longest-prefix-match routing-table lookups for the
// source-AS attribution use case.
//
// The paper's §5 "Network Provisioning and Planning" correlates FlowDNS
// output with BGP data "e.g. source AS, destination AS, hand-over AS" to
// chart per-service traffic by origin AS (Figure 4). This package is the
// substrate for that join: a binary (bit-)trie over IPv4/IPv6 prefixes
// mapping to origin AS numbers, with longest-prefix-match semantics
// identical to a RIB lookup.
package bgp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Table is a longest-prefix-match table from IP prefixes to origin ASNs.
// It holds separate tries for IPv4 and IPv6. The zero value is not usable;
// use NewTable.
//
// Concurrency contract (build-then-read): a Table has two phases. During
// the build phase one goroutine Inserts; no Lookups may run. Once built,
// any number of goroutines may Lookup concurrently forever — but no
// further Inserts. Freeze enforces the phase switch: after Freeze, Insert
// fails with ErrFrozen without touching the trie, so a mistaken late
// insert can never race the pipeline's readers. The pipeline lifecycle is
// exactly this shape: load the table at startup, Freeze it, then hand it
// to the rollup sink's Write workers.
type Table struct {
	v4     *node
	v6     *node
	size   int
	frozen atomic.Bool
}

// ErrFrozen is returned by Insert after Freeze.
var ErrFrozen = errors.New("bgp: table is frozen (build-then-read: no inserts after Freeze)")

type node struct {
	child [2]*node
	asn   uint32
	set   bool
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{v4: &node{}, v6: &node{}}
}

// Freeze ends the build phase: every later Insert fails with ErrFrozen.
// Call it once the table is fully loaded, before sharing it with readers.
func (t *Table) Freeze() { t.frozen.Store(true) }

// Frozen reports whether Freeze has been called.
func (t *Table) Frozen() bool { return t.frozen.Load() }

// Insert adds prefix → asn, replacing any previous entry for the exact
// prefix. Invalid prefixes are rejected, as is any insert after Freeze.
func (t *Table) Insert(prefix netip.Prefix, asn uint32) error {
	if t.frozen.Load() {
		return ErrFrozen
	}
	if !prefix.IsValid() {
		return fmt.Errorf("bgp: invalid prefix %v", prefix)
	}
	prefix = prefix.Masked()
	root := t.v4
	if prefix.Addr().Is6() && !prefix.Addr().Is4In6() {
		root = t.v6
	}
	bits := prefix.Addr().AsSlice()
	n := root
	for i := 0; i < prefix.Bits(); i++ {
		b := bit(bits, i)
		if n.child[b] == nil {
			n.child[b] = &node{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.asn, n.set = asn, true
	return nil
}

// Lookup returns the origin ASN of the longest matching prefix and whether
// any prefix matched.
func (t *Table) Lookup(addr netip.Addr) (uint32, bool) {
	if !addr.IsValid() {
		return 0, false
	}
	root := t.v4
	if addr.Is6() && !addr.Is4In6() {
		root = t.v6
	}
	if addr.Is4In6() {
		addr = addr.Unmap()
	}
	bits := addr.AsSlice()
	var best uint32
	found := false
	n := root
	for i := 0; i <= len(bits)*8; i++ {
		if n.set {
			best, found = n.asn, true
		}
		if i == len(bits)*8 {
			break
		}
		n = n.child[bit(bits, i)]
		if n == nil {
			break
		}
	}
	return best, found
}

// Len returns the number of installed prefixes.
func (t *Table) Len() int { return t.size }

func bit(b []byte, i int) int {
	return int(b[i/8]>>(7-i%8)) & 1
}

// Assignment couples a prefix with its origin AS; used to build tables from
// workload universes and to snapshot them in tests.
type Assignment struct {
	Prefix netip.Prefix
	ASN    uint32
}

// Build constructs a table from assignments, failing on the first invalid
// prefix.
func Build(assignments []Assignment) (*Table, error) {
	t := NewTable()
	for _, a := range assignments {
		if err := t.Insert(a.Prefix, a.ASN); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ParseTable reads a prefix→origin-ASN table in the plain text form a RIB
// dump reduces to: one "prefix asn" pair per line (whitespace separated,
// the ASN with or without an "AS" prefix), '#' comments and blank lines
// skipped. The returned table is NOT frozen — callers append local
// overrides first, then Freeze before handing it to readers.
func ParseTable(r io.Reader) (*Table, error) {
	t := NewTable()
	sc := bufio.NewScanner(r)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("bgp: line %d: want \"prefix asn\", got %q", ln, line)
		}
		prefix, err := netip.ParsePrefix(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bgp: line %d: %w", ln, err)
		}
		asnText := fields[1]
		if len(asnText) > 2 && (asnText[0] == 'A' || asnText[0] == 'a') && (asnText[1] == 'S' || asnText[1] == 's') {
			asnText = asnText[2:]
		}
		asn, err := strconv.ParseUint(asnText, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bgp: line %d: bad ASN %q: %w", ln, fields[1], err)
		}
		if err := t.Insert(prefix, uint32(asn)); err != nil {
			return nil, fmt.Errorf("bgp: line %d: %w", ln, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bgp: %w", err)
	}
	return t, nil
}

// LoadTable reads a prefix→ASN table file (see ParseTable for the format).
func LoadTable(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bgp: %w", err)
	}
	defer f.Close()
	return ParseTable(f)
}

// ASTraffic accumulates per-AS byte counts — the Fig 4 series "cumulative
// traffic volume per source AS".
type ASTraffic struct {
	bytes map[uint32]uint64
}

// NewASTraffic returns an empty accumulator.
func NewASTraffic() *ASTraffic { return &ASTraffic{bytes: make(map[uint32]uint64)} }

// Add attributes n bytes to the AS owning addr; unroutable addresses are
// attributed to AS 0.
func (a *ASTraffic) Add(t *Table, addr netip.Addr, n uint64) {
	asn, _ := t.Lookup(addr)
	a.bytes[asn] += n
}

// Total returns the byte counter for asn.
func (a *ASTraffic) Total(asn uint32) uint64 { return a.bytes[asn] }

// Top returns up to k (asn, bytes) pairs sorted by descending bytes.
func (a *ASTraffic) Top(k int) []Assignment2 {
	out := make([]Assignment2, 0, len(a.bytes))
	for asn, b := range a.bytes {
		out = append(out, Assignment2{ASN: asn, Bytes: b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].ASN < out[j].ASN
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Assignment2 is one row of ASTraffic.Top.
type Assignment2 struct {
	ASN   uint32
	Bytes uint64
}

// String formats like "AS64500:12345".
func (a Assignment2) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AS%d:%d", a.ASN, a.Bytes)
	return b.String()
}
