package bgp

import (
	"net/netip"
	"sync/atomic"
)

// Hot is a hot-swappable handle to a frozen Table. The Freeze/ErrFrozen
// build-then-read contract makes one Table immutable forever — perfect for
// lock-free concurrent readers, useless for a long-running deployment whose
// routing table goes stale. Hot layers reloadability on top without
// touching that contract: readers Load the current frozen table (one atomic
// pointer read, no locks), and a reload builds a complete replacement off
// to the side and Swaps it in. A lookup that raced the swap simply used
// whichever complete table it loaded first — there is never a moment when
// readers can observe a partially built table, so a swap drops zero
// lookups.
type Hot struct {
	p atomic.Pointer[Table]
}

// NewHot returns a handle serving t, freezing it first (a table shared with
// readers must never accept another Insert). A nil t is replaced by an
// empty table, so a Hot is always safe to read.
func NewHot(t *Table) *Hot {
	h := &Hot{}
	h.Swap(t)
	return h
}

// Load returns the current frozen table. The result is immutable and safe
// to use for any number of lookups; batch consumers should Load once per
// batch so every record in the batch is attributed against one consistent
// table.
func (h *Hot) Load() *Table { return h.p.Load() }

// Swap publishes t as the current table (freezing it first; nil means an
// empty table) and returns the previous one. Concurrent readers switch
// atomically from old to new; in-flight lookups on the old table finish
// against it unharmed.
func (h *Hot) Swap(t *Table) *Table {
	if t == nil {
		t = NewTable()
	}
	t.Freeze()
	return h.p.Swap(t)
}

// Lookup resolves addr against the current table.
func (h *Hot) Lookup(addr netip.Addr) (uint32, bool) { return h.Load().Lookup(addr) }

// Len returns the size of the current table.
func (h *Hot) Len() int { return h.Load().Len() }
