package resolvers

import (
	"net/netip"
	"testing"
)

// TestWellKnownSeedList pins the seed list's integrity: every entry parses,
// is a concrete unicast address, and lands in the set exactly once.
func TestWellKnownSeedList(t *testing.T) {
	s := NewSet()
	seen := make(map[netip.Addr]bool, len(wellKnown))
	for _, raw := range wellKnown {
		a, err := netip.ParseAddr(raw)
		if err != nil {
			t.Fatalf("seed entry %q does not parse: %v", raw, err)
		}
		if a.IsUnspecified() || a.IsMulticast() || a.IsLoopback() {
			t.Errorf("seed entry %q is not a concrete unicast address", raw)
		}
		if seen[a] {
			t.Errorf("seed entry %q duplicated", raw)
		}
		seen[a] = true
		if !s.Contains(a) {
			t.Errorf("%s missing from well-known set", raw)
		}
	}
	if s.Len() != len(wellKnown) {
		t.Fatalf("Len = %d, want %d (every seed entry distinct)", s.Len(), len(wellKnown))
	}
}

// TestContains is the table-driven membership matrix: members in every
// address form, non-members, and degenerate inputs.
func TestContains(t *testing.T) {
	s := NewSet()
	cases := []struct {
		name string
		addr netip.Addr
		want bool
	}{
		{"cloudflare v4", netip.MustParseAddr("1.1.1.1"), true},
		{"google v4 secondary", netip.MustParseAddr("8.8.4.4"), true},
		{"quad9 v6", netip.MustParseAddr("2620:fe::fe"), true},
		{"cloudflare v6", netip.MustParseAddr("2606:4700:4700::1111"), true},
		{"member as 4-in-6 mapped", netip.MustParseAddr("::ffff:8.8.8.8"), true},
		{"documentation range", netip.MustParseAddr("192.0.2.1"), false},
		{"near-miss of a member", netip.MustParseAddr("1.1.1.2"), false},
		{"non-member 4-in-6 mapped", netip.MustParseAddr("::ffff:192.0.2.1"), false},
		{"v6 near-miss", netip.MustParseAddr("2620:fe::ff"), false},
		{"unspecified v4", netip.IPv4Unspecified(), false},
		{"unspecified v6", netip.IPv6Unspecified(), false},
		{"zero value addr", netip.Addr{}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := s.Contains(c.addr); got != c.want {
				t.Errorf("Contains(%v) = %v, want %v", c.addr, got, c.want)
			}
		})
	}
}

// TestAddNormalizes checks the 4-in-6 canonicalization on the write side:
// adding a mapped address and looking it up as plain IPv4 (and vice versa)
// is one member, not two.
func TestAddNormalizes(t *testing.T) {
	s := EmptySet()
	v4 := netip.MustParseAddr("203.0.113.53")
	mapped := netip.MustParseAddr("::ffff:203.0.113.53")
	s.Add(mapped)
	if !s.Contains(v4) {
		t.Error("mapped add not visible as plain v4")
	}
	if !s.Contains(mapped) {
		t.Error("mapped add not visible as mapped lookup")
	}
	s.Add(v4)
	if s.Len() != 1 {
		t.Fatalf("Len = %d after adding both forms, want 1", s.Len())
	}
}

func TestEmptySetAndAdd(t *testing.T) {
	s := EmptySet()
	if s.Len() != 0 {
		t.Fatalf("EmptySet Len = %d", s.Len())
	}
	if s.Contains(netip.MustParseAddr("8.8.8.8")) {
		t.Fatal("empty set claims membership")
	}
	a := netip.MustParseAddr("203.0.113.53")
	b := netip.MustParseAddr("2001:db8::53")
	s.Add(a)
	s.Add(a) // idempotent
	s.Add(b)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(a) || !s.Contains(b) {
		t.Fatal("added members missing")
	}
}

func TestAddrsRoundTrip(t *testing.T) {
	s := EmptySet()
	want := map[netip.Addr]bool{
		netip.MustParseAddr("203.0.113.1"): true,
		netip.MustParseAddr("203.0.113.2"): true,
		netip.MustParseAddr("2001:db8::1"): true,
	}
	for a := range want {
		s.Add(a)
	}
	addrs := s.Addrs()
	if len(addrs) != len(want) {
		t.Fatalf("Addrs len = %d, want %d", len(addrs), len(want))
	}
	for _, a := range addrs {
		if !want[a] {
			t.Errorf("unexpected member %v", a)
		}
		if !s.Contains(a) {
			t.Errorf("Addrs member %v fails Contains", a)
		}
	}
}
