package resolvers

import (
	"net/netip"
	"testing"
)

func TestWellKnownMembers(t *testing.T) {
	s := NewSet()
	for _, a := range []string{"1.1.1.1", "8.8.8.8", "9.9.9.9", "2620:fe::fe"} {
		if !s.Contains(netip.MustParseAddr(a)) {
			t.Errorf("%s missing from well-known set", a)
		}
	}
	if s.Contains(netip.MustParseAddr("192.0.2.1")) {
		t.Error("non-resolver address matched")
	}
	if s.Len() == 0 {
		t.Fatal("empty well-known set")
	}
}

func TestAddAndAddrs(t *testing.T) {
	s := EmptySet()
	if s.Len() != 0 {
		t.Fatal("EmptySet not empty")
	}
	a := netip.MustParseAddr("203.0.113.53")
	s.Add(a)
	if !s.Contains(a) || s.Len() != 1 {
		t.Fatal("Add broken")
	}
	addrs := s.Addrs()
	if len(addrs) != 1 || addrs[0] != a {
		t.Fatalf("Addrs = %v", addrs)
	}
}
