// Package resolvers provides the public-DNS-resolver list used by the
// coverage analysis.
//
// FlowDNS only sees DNS cache misses from the ISP's default resolvers; §4
// "Coverage" estimates the blind spot by filtering one hour of NetFlow for
// ports 53/853 and matching destinations against a public resolver list
// (the paper uses public-dns.info). It finds 1 of every 20 DNS packets
// going to a public resolver — 95 % coverage. This package is the list
// substrate: the well-known anycast resolvers plus room for additions.
package resolvers

import "net/netip"

// wellKnown are the anycast public resolvers the paper names (Cloudflare,
// Google Public DNS, Quad9) plus other major public services.
var wellKnown = []string{
	// Cloudflare
	"1.1.1.1", "1.0.0.1", "2606:4700:4700::1111", "2606:4700:4700::1001",
	// Google Public DNS
	"8.8.8.8", "8.8.4.4", "2001:4860:4860::8888", "2001:4860:4860::8844",
	// Quad9
	"9.9.9.9", "149.112.112.112", "2620:fe::fe", "2620:fe::9",
	// OpenDNS
	"208.67.222.222", "208.67.220.220", "2620:119:35::35", "2620:119:53::53",
	// AdGuard
	"94.140.14.14", "94.140.15.15",
	// CleanBrowsing
	"185.228.168.9", "185.228.169.9",
	// Comodo
	"8.26.56.26", "8.20.247.20",
	// Yandex
	"77.88.8.8", "77.88.8.1",
}

// Set is a membership set of public resolver addresses. Addresses are
// stored in canonical form: IPv4-mapped IPv6 addresses (::ffff:a.b.c.d)
// unmap to their IPv4 form on the way in and on lookup, so a NetFlow
// exporter emitting mapped addresses matches the same members. Build the
// set up front; it is safe for concurrent reads once no more Adds happen
// (the same build-then-read contract as bgp.Table).
type Set struct {
	m map[netip.Addr]struct{}
}

// NewSet returns a set seeded with the well-known public resolvers.
func NewSet() *Set {
	s := &Set{m: make(map[netip.Addr]struct{}, len(wellKnown))}
	for _, a := range wellKnown {
		s.Add(netip.MustParseAddr(a))
	}
	return s
}

// EmptySet returns a set with no entries, for tests and custom lists.
func EmptySet() *Set { return &Set{m: make(map[netip.Addr]struct{})} }

// Add inserts an address (4-in-6 mapped forms normalize to IPv4).
func (s *Set) Add(a netip.Addr) { s.m[a.Unmap()] = struct{}{} }

// Contains reports membership; 4-in-6 mapped forms match their IPv4
// member. Invalid (zero) addresses are never members.
func (s *Set) Contains(a netip.Addr) bool {
	_, ok := s.m[a.Unmap()]
	return ok
}

// Len returns the set size.
func (s *Set) Len() int { return len(s.m) }

// Addrs returns the members in unspecified order.
func (s *Set) Addrs() []netip.Addr {
	out := make([]netip.Addr, 0, len(s.m))
	for a := range s.m {
		out = append(out, a)
	}
	return out
}
