package rollup

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Sealed windows export in the same two formats the correlated-flow sinks
// write — TSV rows and JSONL — so the downstream joiners that already
// consume FlowDNS output can consume rollups with the same tooling.
//
// TSV schema, one row per (window, key):
//
//	window_start_unix \t window_secs \t service \t asn \t category \t bytes \t packets \t flows
//
// Service is "NULL" for uncorrelated traffic, matching the TSV flow sink.
// Rows follow the window's canonical sort, so equal windows export
// byte-identical files (the golden-test contract). A window interval can
// appear more than once in a live export stream — flows arriving after
// their window was sealed (NetFlow exports trail flow start by the active
// timeout) re-open it, and the next seal emits another partial — so
// consumers aggregate rows by (window start, key), the same per-key sum
// Merge performs.

// AppendTSV formats every row of w onto b.
func AppendTSV(b []byte, w *Window) []byte {
	for i := range w.Rows {
		r := &w.Rows[i]
		b = strconv.AppendInt(b, w.Start.Unix(), 10)
		b = append(b, '\t')
		b = strconv.AppendInt(b, int64(w.Dur.Seconds()), 10)
		b = append(b, '\t')
		if r.Service == "" {
			b = append(b, "NULL"...)
		} else {
			b = append(b, r.Service...)
		}
		b = append(b, '\t')
		b = strconv.AppendUint(b, uint64(r.ASN), 10)
		b = append(b, '\t')
		b = append(b, r.Category.String()...)
		b = append(b, '\t')
		b = strconv.AppendUint(b, r.Bytes, 10)
		b = append(b, '\t')
		b = strconv.AppendUint(b, r.Packets, 10)
		b = append(b, '\t')
		b = strconv.AppendUint(b, r.Flows, 10)
		b = append(b, '\n')
	}
	return b
}

// WriteTSV writes the windows as TSV rows.
func WriteTSV(w io.Writer, windows []Window) error {
	bw := bufio.NewWriter(w)
	var row []byte
	for i := range windows {
		row = AppendTSV(row[:0], &windows[i])
		if _, err := bw.Write(row); err != nil {
			return fmt.Errorf("rollup: tsv export: %w", err)
		}
	}
	return bw.Flush()
}

// jsonWindow is the JSONL wire shape of one sealed window.
type jsonWindow struct {
	Start int64     `json:"start"`
	Secs  int64     `json:"secs"`
	Rows  []jsonRow `json:"rows"`
}

type jsonRow struct {
	Service  string `json:"service,omitempty"`
	ASN      uint32 `json:"asn,omitempty"`
	Category string `json:"category,omitempty"`
	Bytes    uint64 `json:"bytes"`
	Packets  uint64 `json:"packets"`
	Flows    uint64 `json:"flows"`
}

func toJSONWindow(w *Window) jsonWindow {
	jw := jsonWindow{Start: w.Start.Unix(), Secs: int64(w.Dur.Seconds()), Rows: make([]jsonRow, len(w.Rows))}
	for i := range w.Rows {
		r := &w.Rows[i]
		jw.Rows[i] = jsonRow{
			Service: r.Service,
			ASN:     r.ASN,
			Bytes:   r.Bytes,
			Packets: r.Packets,
			Flows:   r.Flows,
		}
		if r.Category != 0 {
			jw.Rows[i].Category = r.Category.String()
		}
	}
	return jw
}

// WriteJSON writes the windows as JSONL, one window object per line.
func WriteJSON(w io.Writer, windows []Window) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range windows {
		jw := toJSONWindow(&windows[i])
		if err := enc.Encode(&jw); err != nil {
			return fmt.Errorf("rollup: json export: %w", err)
		}
	}
	return bw.Flush()
}
