// Package rollup implements online attribution rollups: time-windowed
// traffic counters keyed by (service, origin AS, DBL category).
//
// The paper's §5 use cases — per-service traffic split by origin AS
// (Figure 4) and traffic from DBL-listed spam domains (Figure 5) — are
// offline joins over FlowDNS output. This package computes them inside the
// pipeline instead: correlated flows are observed into sharded,
// time-windowed counters as they pass the Write stage, so the operator
// reads live per-service/per-AS/per-category traffic series instead of
// re-scanning TSV dumps.
//
// Structure:
//
//   - Rollup is the counter engine: a fixed set of shards, each owning its
//     own window map, so concurrent writers (Write workers, correlation
//     lanes) never contend on a shared structure. The hot-path Observe is
//     allocation-free once a (window, key) pair exists.
//   - Windows are aligned intervals of the flow timestamp. A sealed window
//     is a merge-snapshot: per-shard partial aggregates combined with an
//     associative, commutative, total-preserving Merge — so partials can be
//     combined in any order (or across processes) and always agree.
//   - Sink adapts the engine to the correlator's Sink interface, attributing
//     each correlated flow through a BGP table and a DBL blocklist and
//     exporting sealed windows as TSV or JSONL.
package rollup

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dbl"
)

// DefaultWindow is the rotation interval when none is configured: one
// minute, fine enough to chart the paper's diurnal curves live.
const DefaultWindow = time.Minute

// DefaultShards is the default shard count. It only needs to cover the
// number of concurrent observers (Write workers or correlation lanes);
// 8 leaves headroom without bloating seal-time merges.
const DefaultShards = 8

// Key is the attribution tuple a flow's counters accumulate under.
// Comparable by design: it is used directly as a map key on the hot path,
// so probing never allocates.
type Key struct {
	// Service is the resolved service name; "" for uncorrelated flows.
	Service string
	// ASN is the origin AS of the flow's source address (0 = unroutable or
	// no table configured).
	ASN uint32
	// Category is the DBL classification of Service (Benign when unlisted,
	// uncorrelated, or no blocklist configured).
	Category dbl.Category
}

// Counters are the accumulated totals for one key in one window.
type Counters struct {
	Bytes   uint64
	Packets uint64
	Flows   uint64
}

// add folds other into c.
func (c *Counters) add(o Counters) {
	c.Bytes += o.Bytes
	c.Packets += o.Packets
	c.Flows += o.Flows
}

// Row is one (key, counters) pair of a sealed window.
type Row struct {
	Key
	Counters
}

// Window is a sealed (or snapshotted) rollup interval: every key observed
// in [Start, Start+Dur) with its totals. Rows are sorted by (Service, ASN,
// Category) so two equal windows are structurally identical — the property
// the golden exports and the merge laws rely on.
type Window struct {
	Start time.Time
	Dur   time.Duration
	Rows  []Row
}

// Total sums the window's counters across all keys.
func (w *Window) Total() Counters {
	var t Counters
	for i := range w.Rows {
		t.add(w.Rows[i].Counters)
	}
	return t
}

// sortRows orders rows canonically.
func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := &rows[i], &rows[j]
		if a.Service != b.Service {
			return a.Service < b.Service
		}
		if a.ASN != b.ASN {
			return a.ASN < b.ASN
		}
		return a.Category < b.Category
	})
}

// Merge combines two windows covering the same interval by summing
// counters per key. It is associative and commutative, and preserves
// totals: Merge(a,b).Total() == a.Total()+b.Total(). Windows with
// different spans may still be merged (multi-window totals); the result
// keeps a's Start/Dur when set, b's otherwise.
func Merge(a, b Window) Window {
	m := make(map[Key]Counters, len(a.Rows)+len(b.Rows))
	for _, r := range a.Rows {
		c := m[r.Key]
		c.add(r.Counters)
		m[r.Key] = c
	}
	for _, r := range b.Rows {
		c := m[r.Key]
		c.add(r.Counters)
		m[r.Key] = c
	}
	out := Window{Start: a.Start, Dur: a.Dur}
	if out.Start.IsZero() {
		out.Start, out.Dur = b.Start, b.Dur
	}
	out.Rows = make([]Row, 0, len(m))
	for k, c := range m {
		out.Rows = append(out.Rows, Row{Key: k, Counters: c})
	}
	sortRows(out.Rows)
	return out
}

// MergeAll folds any number of windows into one aggregate view (e.g. a
// day built from sealed hours). Empty input yields a zero Window.
func MergeAll(windows []Window) Window {
	var acc Window
	for _, w := range windows {
		acc = Merge(acc, w)
	}
	return acc
}

// windowAgg is one shard's accumulation for one window interval.
type windowAgg struct {
	start int64 // unix seconds, window-aligned
	m     map[Key]*Counters
}

// shard is one independent slice of the rollup. Padding keeps each shard's
// mutex on its own cache line so concurrent observers on neighboring
// shards do not false-share.
type shard struct {
	mu      sync.Mutex
	windows map[int64]*windowAgg
	_       [48]byte // mutex (8) + map header (8) + pad = 64
}

// observe accumulates one flow under key in the window starting at wstart.
// Callers hold s.mu. The hit path — window and key already exist — does
// not allocate.
func (s *shard) observe(wstart int64, key Key, bytes, packets uint64) {
	w := s.windows[wstart]
	if w == nil {
		w = &windowAgg{start: wstart, m: make(map[Key]*Counters)}
		s.windows[wstart] = w
	}
	c := w.m[key]
	if c == nil {
		c = &Counters{}
		w.m[key] = c
	}
	c.Bytes += bytes
	c.Packets += packets
	c.Flows++
}

// Rollup is the sharded windowed counter engine. Construct with New; all
// methods are safe for concurrent use. Observers should spread across
// shards (one shard per worker or lane) so the hot path never contends.
type Rollup struct {
	winSecs int64
	shards  []shard
	rr      atomic.Uint32
}

// New builds an engine with the given window and shard count. A
// non-positive window takes DefaultWindow; positive windows are rounded
// up to whole seconds (minimum 1 s). shards <= 0 takes DefaultShards.
func New(window time.Duration, shards int) *Rollup {
	if window <= 0 {
		window = DefaultWindow
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	r := &Rollup{
		winSecs: int64((window + time.Second - 1) / time.Second),
		shards:  make([]shard, shards),
	}
	for i := range r.shards {
		r.shards[i].windows = make(map[int64]*windowAgg)
	}
	return r
}

// Window returns the configured rotation interval.
func (r *Rollup) Window() time.Duration { return time.Duration(r.winSecs) * time.Second }

// Shards returns the shard count.
func (r *Rollup) Shards() int { return len(r.shards) }

// windowStart aligns a flow timestamp down to its window boundary
// (floor division, so pre-epoch timestamps still bucket below themselves).
func (r *Rollup) windowStart(ts time.Time) int64 {
	u := ts.Unix()
	m := u % r.winSecs
	if m < 0 {
		m += r.winSecs
	}
	return u - m
}

// shardFor reduces any shard index modulo the shard count.
func (r *Rollup) shardFor(shardIdx int) *shard {
	return &r.shards[uint(shardIdx)%uint(len(r.shards))]
}

// Observe accumulates one flow observation on the given shard (callers
// partition shards by worker or lane; any int is accepted and reduced
// modulo the shard count). The hit path — the flow's window and key have
// been seen on this shard before — is allocation-free. Batch observers
// (the Sink) lock the shard once per batch instead of going through here.
func (r *Rollup) Observe(shardIdx int, ts time.Time, key Key, bytes, packets uint64) {
	s := r.shardFor(shardIdx)
	wstart := r.windowStart(ts)
	s.mu.Lock()
	s.observe(wstart, key, bytes, packets)
	s.mu.Unlock()
}

// NextShard hands out shard indexes round-robin — how batch observers
// (the Sink's Write workers) pick a shard per batch so concurrent batches
// land on different shards.
func (r *Rollup) NextShard() int {
	return int(r.rr.Add(1)-1) % len(r.shards)
}

// SealBefore removes every window that ends at or before cutoff from all
// shards and returns the removed windows merged per interval, sorted by
// start time. Sealing is the rotation step: the returned windows are
// immutable snapshots whose per-shard partials have been combined with
// Merge semantics.
func (r *Rollup) SealBefore(cutoff time.Time) []Window {
	limit := cutoff.Unix()
	var sealed []*windowAgg
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for start, w := range s.windows {
			if start+r.winSecs <= limit {
				sealed = append(sealed, w)
				delete(s.windows, start)
			}
		}
		s.mu.Unlock()
	}
	return r.combine(sealed)
}

// SealAll removes and returns every window regardless of age — the drain
// path, so a closing pipeline never loses a partial window.
func (r *Rollup) SealAll() []Window {
	var sealed []*windowAgg
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for start, w := range s.windows {
			sealed = append(sealed, w)
			delete(s.windows, start)
		}
		s.mu.Unlock()
	}
	return r.combine(sealed)
}

// Snapshot returns the current (unsealed) windows merged per interval
// without removing anything — the live-inspection view.
func (r *Rollup) Snapshot() []Window {
	var copies []*windowAgg
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for _, w := range s.windows {
			cp := &windowAgg{start: w.start, m: make(map[Key]*Counters, len(w.m))}
			for k, c := range w.m {
				cc := *c
				cp.m[k] = &cc
			}
			copies = append(copies, cp)
		}
		s.mu.Unlock()
	}
	return r.combine(copies)
}

// combine groups per-shard partials by window start and merges each group
// into one canonical Window.
func (r *Rollup) combine(aggs []*windowAgg) []Window {
	if len(aggs) == 0 {
		return nil
	}
	byStart := make(map[int64]map[Key]Counters)
	for _, a := range aggs {
		m := byStart[a.start]
		if m == nil {
			m = make(map[Key]Counters, len(a.m))
			byStart[a.start] = m
		}
		for k, c := range a.m {
			acc := m[k]
			acc.add(*c)
			m[k] = acc
		}
	}
	out := make([]Window, 0, len(byStart))
	dur := time.Duration(r.winSecs) * time.Second
	for start, m := range byStart {
		w := Window{Start: time.Unix(start, 0).UTC(), Dur: dur, Rows: make([]Row, 0, len(m))}
		for k, c := range m {
			w.Rows = append(w.Rows, Row{Key: k, Counters: c})
		}
		sortRows(w.Rows)
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}
