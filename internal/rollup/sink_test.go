package rollup

import (
	"bytes"
	"context"
	"errors"
	"net/netip"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/dbl"
	"repro/internal/netflow"
)

func testFlow(ts time.Time, src string, bytes, packets uint64, name string) core.CorrelatedFlow {
	return core.CorrelatedFlow{
		Flow: netflow.FlowRecord{
			Timestamp: ts,
			SrcIP:     netip.MustParseAddr(src),
			DstIP:     netip.MustParseAddr("10.0.0.1"),
			SrcPort:   443, DstPort: 50000, Proto: netflow.ProtoTCP,
			Bytes: bytes, Packets: packets,
		},
		Name: name,
	}
}

// TestSinkAttribution drives the full attribution path: service from the
// correlation result, ASN from the BGP table, category from the blocklist,
// uncorrelated flows under the zero key.
func TestSinkAttribution(t *testing.T) {
	table := bgp.NewTable()
	if err := table.Insert(netip.MustParsePrefix("198.51.100.0/24"), 64500); err != nil {
		t.Fatal(err)
	}
	if err := table.Insert(netip.MustParsePrefix("203.0.113.0/24"), 64501); err != nil {
		t.Fatal(err)
	}
	table.Freeze()
	list := dbl.NewList()
	list.Add("bad.example", dbl.Botnet)

	eng := New(time.Minute, 2)
	sink := NewSink(eng, WithTable(table), WithBlocklist(list))
	batch := []core.CorrelatedFlow{
		testFlow(t0, "198.51.100.1", 1000, 10, "svc.example"),
		testFlow(t0, "198.51.100.2", 500, 5, "svc.example"),
		testFlow(t0, "203.0.113.9", 700, 7, "cnc.bad.example"), // suffix-listed
		testFlow(t0, "192.0.2.50", 300, 3, ""),                 // uncorrelated, unroutable
	}
	if err := sink.WriteBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	windows := eng.SealAll()
	if len(windows) != 1 {
		t.Fatalf("windows = %d", len(windows))
	}
	want := []Row{
		{Key{"", 0, dbl.Benign}, Counters{300, 3, 1}},
		{Key{"cnc.bad.example", 64501, dbl.Botnet}, Counters{700, 7, 1}},
		{Key{"svc.example", 64500, dbl.Benign}, Counters{1500, 15, 2}},
	}
	if !reflect.DeepEqual(windows[0].Rows, want) {
		t.Fatalf("rows:\n got %+v\nwant %+v", windows[0].Rows, want)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSinkWithoutAttributors checks the plain variant: everything under
// ASN 0 / Benign, keyed by service alone.
func TestSinkWithoutAttributors(t *testing.T) {
	eng := New(time.Minute, 1)
	sink := NewSink(eng)
	sink.WriteBatch(context.Background(), []core.CorrelatedFlow{
		testFlow(t0, "198.51.100.1", 42, 1, "svc.example"),
	})
	w := eng.SealAll()
	if len(w) != 1 || len(w[0].Rows) != 1 {
		t.Fatalf("windows = %+v", w)
	}
	if r := w[0].Rows[0]; r.Key != (Key{Service: "svc.example"}) || r.Bytes != 42 {
		t.Fatalf("row = %+v", r)
	}
}

// TestSinkCloseSealsAndExports checks the drain contract: Close seals the
// partial window, exports it, and leaves the engine empty.
func TestSinkCloseSealsAndExports(t *testing.T) {
	var buf bytes.Buffer
	var sealed [][]Window
	eng := New(time.Minute, 2)
	sink := NewSink(eng,
		WithExport(&buf, FormatTSV),
		WithOnSeal(func(ws []Window) { sealed = append(sealed, ws) }))
	sink.WriteBatch(context.Background(), []core.CorrelatedFlow{
		testFlow(t0, "198.51.100.1", 1000, 10, "svc.example"),
	})
	if buf.Len() != 0 {
		t.Fatal("exported before any seal")
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sealed) != 1 || len(sealed[0]) != 1 {
		t.Fatalf("onSeal batches = %+v", sealed)
	}
	line := strings.TrimSpace(buf.String())
	want := "1653480000\t60\tsvc.example\t0\tbenign\t1000\t10\t1"
	if line != want {
		t.Fatalf("export:\n got %q\nwant %q", line, want)
	}
	if eng.SealAll() != nil {
		t.Fatal("engine not drained by Close")
	}
	// Close is idempotent.
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSinkRotation checks the wall-clock sealing loop: windows whose end
// is older than the grace period are exported without any Close.
func TestSinkRotation(t *testing.T) {
	var mu chanBuf
	eng := New(time.Second, 2)
	sink := NewSink(eng,
		WithRotation(10*time.Millisecond),
		WithOnSeal(func(ws []Window) { mu.add(len(ws)) }))
	defer sink.Close()
	// A flow timestamped far in the past: its window ended long before
	// now-grace, so the first ticks must seal it.
	sink.WriteBatch(context.Background(), []core.CorrelatedFlow{
		testFlow(t0, "198.51.100.1", 1, 1, "svc.example"),
	})
	deadline := time.After(5 * time.Second)
	for mu.total() == 0 {
		select {
		case <-deadline:
			t.Fatal("rotation never sealed the stale window")
		case <-time.After(time.Millisecond):
		}
	}
	if snap := eng.Snapshot(); len(snap) != 0 {
		t.Fatalf("sealed window still live: %+v", snap)
	}
}

// chanBuf is a tiny mutex counter for cross-goroutine seal observations.
type chanBuf struct {
	mu sync.Mutex
	n  int
}

func (c *chanBuf) add(n int) { c.mu.Lock(); c.n += n; c.mu.Unlock() }
func (c *chanBuf) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// TestSinkExportError checks that a failing export writer surfaces at
// Close instead of being dropped.
func TestSinkExportError(t *testing.T) {
	eng := New(time.Minute, 1)
	sink := NewSink(eng, WithExport(failWriter{}, FormatJSON))
	sink.WriteBatch(context.Background(), []core.CorrelatedFlow{
		testFlow(t0, "198.51.100.1", 1, 1, "svc.example"),
	})
	if err := sink.Close(); err == nil {
		t.Fatal("export error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = errors.New("sealed writer failure")

// TestRegistrySink checks the sink-registry integration: "rollup" is
// selectable by name, needs a writer, and exports TSV windows on Close.
func TestRegistrySink(t *testing.T) {
	if !core.SinkNeedsWriter("rollup") {
		t.Fatal("rollup sink must declare a writer")
	}
	var buf bytes.Buffer
	s, err := core.NewSinkByName("rollup", core.SinkOptions{W: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBatch(context.Background(), []core.CorrelatedFlow{
		testFlow(t0, "198.51.100.1", 9000, 9, "svc.example"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "svc.example\t0\tbenign\t9000\t9\t1") {
		t.Fatalf("registry export = %q", buf.String())
	}
	if _, err := core.NewSinkByName("rollup", core.SinkOptions{}); err == nil {
		t.Fatal("writer-less rollup accepted")
	}
}
