package rollup

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dbl"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the export golden files")

// goldenWindows is a fixed two-window export: the full category alphabet,
// an uncorrelated row, and multi-window output in one file. Rows are given
// canonically sorted, as the seal path guarantees.
func goldenWindows() []Window {
	start := time.Date(2022, 5, 25, 12, 0, 0, 0, time.UTC)
	return []Window{
		{
			Start: start,
			Dur:   time.Minute,
			Rows: []Row{
				{Key{Service: "", ASN: 0, Category: dbl.Benign}, Counters{Bytes: 512, Packets: 8, Flows: 2}},
				{Key{Service: "cnc.bad.example", ASN: 64501, Category: dbl.Botnet}, Counters{Bytes: 700, Packets: 7, Flows: 1}},
				{Key{Service: "redir.example", ASN: 64502, Category: dbl.AbusedRedirector}, Counters{Bytes: 90, Packets: 2, Flows: 1}},
				{Key{Service: "svc.example", ASN: 64500, Category: dbl.Benign}, Counters{Bytes: 1500, Packets: 15, Flows: 2}},
			},
		},
		{
			Start: start.Add(time.Minute),
			Dur:   time.Minute,
			Rows: []Row{
				{Key{Service: "drop.example", ASN: 64500, Category: dbl.Malware}, Counters{Bytes: 66, Packets: 1, Flows: 1}},
				{Key{Service: "hook.example", ASN: 0, Category: dbl.Phish}, Counters{Bytes: 33, Packets: 1, Flows: 1}},
				{Key{Service: "spam.example", ASN: 64503, Category: dbl.Spam}, Counters{Bytes: 1, Packets: 1, Flows: 1}},
			},
		},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden:\n got:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestGoldenTSV pins the TSV window export byte for byte. The canonical
// row sort makes equal windows export identical files — the contract
// downstream joiners and this golden rely on.
func TestGoldenTSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTSV(&buf, goldenWindows()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "windows.golden.tsv", buf.Bytes())
}

// TestGoldenJSON pins the JSONL window export byte for byte.
func TestGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, goldenWindows()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "windows.golden.jsonl", buf.Bytes())
}

// TestExportStableUnderMergeOrder ties the golden contract to the merge
// laws: splitting the golden windows into per-row singletons and merging
// them back in a different order must export the identical bytes.
func TestExportStableUnderMergeOrder(t *testing.T) {
	var direct bytes.Buffer
	if err := WriteTSV(&direct, goldenWindows()); err != nil {
		t.Fatal(err)
	}
	var remerged []Window
	for _, w := range goldenWindows() {
		acc := Window{Start: w.Start, Dur: w.Dur}
		for i := len(w.Rows) - 1; i >= 0; i-- { // reversed singleton order
			acc = Merge(acc, Window{Start: w.Start, Dur: w.Dur, Rows: []Row{w.Rows[i]}})
		}
		remerged = append(remerged, acc)
	}
	var viaMerge bytes.Buffer
	if err := WriteTSV(&viaMerge, remerged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), viaMerge.Bytes()) {
		t.Fatalf("merge order changed the export:\n%s\nvs\n%s", direct.Bytes(), viaMerge.Bytes())
	}
}
