package rollup

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/dbl"
)

// TestSinkHotReloadUnderLoad swaps the BGP table and the blocklist while
// Write workers hammer the sink, then checks the two halves of the
// hot-reload contract: zero dropped lookups (every observed byte is
// attributed under exactly one key — totals conserve) and post-swap batches
// attributed against the new table and list.
func TestSinkHotReloadUnderLoad(t *testing.T) {
	mkTable := func(asn uint32) *bgp.Table {
		tb := bgp.NewTable()
		if err := tb.Insert(netip.MustParsePrefix("198.51.100.0/24"), asn); err != nil {
			t.Fatal(err)
		}
		return tb
	}
	mkList := func(c dbl.Category) *dbl.List {
		l := dbl.NewList()
		l.Add("svc.example", c)
		return l
	}

	hotTable := bgp.NewHot(mkTable(64500))
	hotList := dbl.NewHot(mkList(dbl.Spam))
	eng := New(time.Minute, 4)
	sink := NewSink(eng, WithHotTable(hotTable), WithHotBlocklist(hotList))

	const writers = 4
	const batches = 200
	const perBatch = 16
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func() {
			defer wg.Done()
			batch := make([]core.CorrelatedFlow, perBatch)
			for b := 0; b < batches; b++ {
				for i := range batch {
					batch[i] = testFlow(t0, "198.51.100.7", 10, 1, "svc.example")
				}
				if err := sink.WriteBatch(context.Background(), batch); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Reload concurrently with the writers: new table generation + rotated
	// category each swap, as a SIGHUP storm would.
	cats := []dbl.Category{dbl.Botnet, dbl.Malware, dbl.Phish, dbl.Spam}
	for gen := 0; gen < 100; gen++ {
		hotTable.Swap(mkTable(64500 + uint32(gen%2)))
		hotList.Swap(mkList(cats[gen%len(cats)]))
	}
	wg.Wait()

	// Conservation: whichever table generation each batch saw, every flow
	// must land under some (service, asn, category) key.
	windows := eng.SealAll()
	var gotBytes, gotFlows uint64
	for _, w := range windows {
		for _, r := range w.Rows {
			if r.Key.Service != "svc.example" {
				t.Fatalf("unexpected service %q", r.Key.Service)
			}
			if r.Key.ASN != 64500 && r.Key.ASN != 64501 {
				t.Fatalf("ASN %d is from no table generation", r.Key.ASN)
			}
			gotBytes += r.Bytes
			gotFlows += r.Flows
		}
	}
	const wantFlows = writers * batches * perBatch
	if gotFlows != wantFlows || gotBytes != wantFlows*10 {
		t.Fatalf("observed %d flows / %d bytes; want %d / %d — a swap dropped lookups",
			gotFlows, gotBytes, wantFlows, wantFlows*10)
	}

	// Post-swap determinism: land on a known final generation and verify a
	// fresh batch is attributed against exactly that table and list.
	hotTable.Swap(mkTable(65000))
	hotList.Swap(mkList(dbl.Botnet))
	if err := sink.WriteBatch(context.Background(), []core.CorrelatedFlow{
		testFlow(t0, "198.51.100.9", 77, 7, "svc.example"),
	}); err != nil {
		t.Fatal(err)
	}
	final := eng.SealAll()
	if len(final) != 1 || len(final[0].Rows) != 1 {
		t.Fatalf("final windows = %+v", final)
	}
	r := final[0].Rows[0]
	if r.Key.ASN != 65000 || r.Key.Category != dbl.Botnet || r.Bytes != 77 {
		t.Fatalf("post-swap attribution = %+v; want ASN 65000, botnet, 77 bytes", r)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}
