package rollup

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dbl"
)

func TestHandlerSnapshot(t *testing.T) {
	eng := New(time.Minute, 2)
	eng.Observe(0, t0, Key{Service: "svc.example", ASN: 64500}, 1000, 10)
	eng.Observe(1, t0, Key{Service: "svc.example", ASN: 64500}, 500, 5)
	eng.Observe(1, t0, Key{Service: "bad.example", Category: dbl.Spam}, 9, 1)

	rec := httptest.NewRecorder()
	Handler(eng).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/rollups", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var resp struct {
		WindowSecs int64 `json:"window_secs"`
		Shards     int   `json:"shards"`
		Windows    []struct {
			Start int64 `json:"start"`
			Secs  int64 `json:"secs"`
			Rows  []struct {
				Service  string `json:"service"`
				ASN      uint32 `json:"asn"`
				Category string `json:"category"`
				Bytes    uint64 `json:"bytes"`
				Flows    uint64 `json:"flows"`
			} `json:"rows"`
		} `json:"windows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if resp.WindowSecs != 60 || resp.Shards != 2 {
		t.Fatalf("meta = %d/%d", resp.WindowSecs, resp.Shards)
	}
	if len(resp.Windows) != 1 || len(resp.Windows[0].Rows) != 2 {
		t.Fatalf("windows = %+v", resp.Windows)
	}
	// Shard partials merged: 1000+500 under one key.
	var svcBytes uint64
	for _, r := range resp.Windows[0].Rows {
		if r.Service == "svc.example" && r.ASN == 64500 {
			svcBytes = r.Bytes
		}
		if r.Service == "bad.example" && r.Category != "spam" {
			t.Fatalf("category label = %q", r.Category)
		}
	}
	if svcBytes != 1500 {
		t.Fatalf("svc bytes = %d, want 1500 (cross-shard merge)", svcBytes)
	}

	// Snapshots must not consume: a second GET sees the same state.
	rec2 := httptest.NewRecorder()
	Handler(eng).ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/rollups", nil))
	if rec2.Body.String() != rec.Body.String() {
		t.Fatal("second snapshot differs (handler consumed state)")
	}
}

func TestHandlerMethodNotAllowed(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(New(time.Minute, 1)).ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/rollups", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", rec.Code)
	}
}
