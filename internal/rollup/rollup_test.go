package rollup

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/dbl"
)

var t0 = time.Date(2022, 5, 25, 12, 0, 0, 0, time.UTC)

// randKey draws from a small alphabet so merges collide often.
func randKey(r *rand.Rand) Key {
	return Key{
		Service:  fmt.Sprintf("svc%d.example", r.Intn(6)),
		ASN:      uint32(64500 + r.Intn(3)),
		Category: dbl.Category(r.Intn(3)),
	}
}

func randWindow(r *rand.Rand, start time.Time) Window {
	m := make(map[Key]Counters)
	for i, n := 0, 1+r.Intn(12); i < n; i++ {
		k := randKey(r)
		c := m[k]
		c.Bytes += uint64(r.Intn(10000))
		c.Packets += uint64(r.Intn(100))
		c.Flows += uint64(1 + r.Intn(5))
		m[k] = c
	}
	w := Window{Start: start, Dur: time.Minute}
	for k, c := range m {
		w.Rows = append(w.Rows, Row{Key: k, Counters: c})
	}
	sortRows(w.Rows)
	return w
}

// TestMergeLaws is the property test behind the seal path: Merge is
// commutative and associative, and totals are preserved — so per-shard
// partials (and per-process partials) can be combined in any order and
// always agree.
func TestMergeLaws(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		a := randWindow(r, t0)
		b := randWindow(r, t0)
		c := randWindow(r, t0)

		ab, ba := Merge(a, b), Merge(b, a)
		if !reflect.DeepEqual(ab.Rows, ba.Rows) {
			t.Fatalf("iter %d: Merge not commutative:\n a+b=%v\n b+a=%v", iter, ab.Rows, ba.Rows)
		}
		left, right := Merge(Merge(a, b), c), Merge(a, Merge(b, c))
		if !reflect.DeepEqual(left.Rows, right.Rows) {
			t.Fatalf("iter %d: Merge not associative", iter)
		}

		at, bt, abt := a.Total(), b.Total(), ab.Total()
		want := Counters{
			Bytes:   at.Bytes + bt.Bytes,
			Packets: at.Packets + bt.Packets,
			Flows:   at.Flows + bt.Flows,
		}
		if abt != want {
			t.Fatalf("iter %d: Merge not total-preserving: %+v + %+v -> %+v", iter, at, bt, abt)
		}
	}
}

func TestMergeIdentityAndSpan(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := randWindow(r, t0)
	got := Merge(a, Window{})
	if !reflect.DeepEqual(got.Rows, a.Rows) || !got.Start.Equal(a.Start) || got.Dur != a.Dur {
		t.Fatalf("merge with empty altered window: %+v", got)
	}
	got = Merge(Window{}, a)
	if !reflect.DeepEqual(got.Rows, a.Rows) || !got.Start.Equal(a.Start) {
		t.Fatalf("empty-first merge lost span: %+v", got)
	}
}

// TestObserveOrderAndShardIndependence is the engine-level property: the
// sealed result is a pure function of the observation multiset —
// independent of observation order and of how observations are spread
// across shards.
func TestObserveOrderAndShardIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	type obs struct {
		ts      time.Time
		key     Key
		bytes   uint64
		packets uint64
	}
	events := make([]obs, 2000)
	for i := range events {
		events[i] = obs{
			ts:      t0.Add(time.Duration(r.Intn(300)) * time.Second), // spans 5 windows
			key:     randKey(r),
			bytes:   uint64(r.Intn(5000)),
			packets: uint64(r.Intn(50)),
		}
	}
	run := func(shards int, order []int) []Window {
		eng := New(time.Minute, shards)
		for _, i := range order {
			e := events[i]
			eng.Observe(r.Intn(1000), e.ts, e.key, e.bytes, e.packets) // arbitrary shard
		}
		return eng.SealAll()
	}
	inOrder := make([]int, len(events))
	for i := range inOrder {
		inOrder[i] = i
	}
	want := run(1, inOrder)
	if len(want) != 5 {
		t.Fatalf("window count = %d, want 5", len(want))
	}
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]int(nil), inOrder...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := run(1+r.Intn(16), shuffled)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: sealed windows depend on order/sharding", trial)
		}
	}
}

func TestWindowAlignmentAndSealBefore(t *testing.T) {
	eng := New(time.Minute, 2)
	if eng.Window() != time.Minute {
		t.Fatalf("Window = %v", eng.Window())
	}
	k := Key{Service: "svc.example"}
	eng.Observe(0, t0.Add(59*time.Second), k, 100, 1) // window [t0, t0+60)
	eng.Observe(1, t0.Add(61*time.Second), k, 200, 2) // window [t0+60, t0+120)

	// Cutoff exactly at the first window's end seals it and nothing else.
	sealed := eng.SealBefore(t0.Add(60 * time.Second))
	if len(sealed) != 1 {
		t.Fatalf("sealed = %d windows, want 1", len(sealed))
	}
	w := sealed[0]
	if !w.Start.Equal(t0) || w.Dur != time.Minute {
		t.Fatalf("sealed window span = %v + %v", w.Start, w.Dur)
	}
	if tot := w.Total(); tot != (Counters{Bytes: 100, Packets: 1, Flows: 1}) {
		t.Fatalf("sealed total = %+v", tot)
	}

	// The second window is still live; Snapshot sees it without consuming.
	for i := 0; i < 2; i++ {
		snap := eng.Snapshot()
		if len(snap) != 1 || !snap[0].Start.Equal(t0.Add(time.Minute)) {
			t.Fatalf("snapshot #%d = %+v", i, snap)
		}
	}
	rest := eng.SealAll()
	if len(rest) != 1 || rest[0].Total().Bytes != 200 {
		t.Fatalf("SealAll = %+v", rest)
	}
	if left := eng.SealAll(); left != nil {
		t.Fatalf("engine not empty after SealAll: %+v", left)
	}
}

func TestPreEpochTimestampsBucketBelow(t *testing.T) {
	eng := New(time.Minute, 1)
	old := time.Unix(-61, 0)
	eng.Observe(0, old, Key{}, 1, 1)
	sealed := eng.SealAll()
	if len(sealed) != 1 {
		t.Fatalf("sealed = %d", len(sealed))
	}
	if s := sealed[0].Start; s.After(old) {
		t.Fatalf("window start %v is after the observation %v", s, old)
	}
}

func TestNextShardRoundRobin(t *testing.T) {
	eng := New(time.Minute, 4)
	seen := make(map[int]int)
	for i := 0; i < 8; i++ {
		seen[eng.NextShard()]++
	}
	for s := 0; s < 4; s++ {
		if seen[s] != 2 {
			t.Fatalf("shard %d claimed %d times, want 2 (round robin): %v", s, seen[s], seen)
		}
	}
}

// TestObserveHitPathAllocFree enforces the acceptance bar in a test, not
// just the guarded benchmark: once a (window, key) pair exists on a shard,
// Observe allocates nothing.
func TestObserveHitPathAllocFree(t *testing.T) {
	eng := New(time.Minute, 4)
	k := Key{Service: "svc.example", ASN: 64500, Category: dbl.Spam}
	eng.Observe(2, t0, k, 1, 1)
	allocs := testing.AllocsPerRun(1000, func() {
		eng.Observe(2, t0, k, 1500, 10)
	})
	if allocs != 0 {
		t.Fatalf("Observe hit path allocates %.1f/op, want 0", allocs)
	}
}

func TestNewNormalizesArguments(t *testing.T) {
	eng := New(0, 0)
	if eng.Window() != DefaultWindow || eng.Shards() != DefaultShards {
		t.Fatalf("defaults = %v/%d", eng.Window(), eng.Shards())
	}
	if w := New(1500*time.Millisecond, 1).Window(); w != 2*time.Second {
		t.Fatalf("fractional window rounded to %v, want 2s", w)
	}
	if w := New(500*time.Millisecond, 1).Window(); w != time.Second {
		t.Fatalf("sub-second window = %v, want the 1s minimum", w)
	}
}

func TestMergeAll(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ws := []Window{randWindow(r, t0), randWindow(r, t0), randWindow(r, t0)}
	got := MergeAll(ws)
	want := Merge(Merge(ws[0], ws[1]), ws[2])
	if !reflect.DeepEqual(got.Rows, want.Rows) || !got.Start.Equal(want.Start) {
		t.Fatalf("MergeAll != pairwise fold:\n got %+v\nwant %+v", got, want)
	}
	if z := MergeAll(nil); len(z.Rows) != 0 || !z.Start.IsZero() {
		t.Fatalf("MergeAll(nil) = %+v, want zero window", z)
	}
}
