package rollup

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/dbl"
)

// Format selects the sealed-window export encoding.
type Format string

// Export formats, matching the correlated-flow sink family.
const (
	FormatTSV  Format = "tsv"
	FormatJSON Format = "json"
)

// ParseFormat resolves a format name; "" means TSV.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case "", FormatTSV:
		return FormatTSV, nil
	case FormatJSON:
		return FormatJSON, nil
	default:
		return "", fmt.Errorf("rollup: unknown export format %q (have tsv, json)", s)
	}
}

// minSealGrace floors how far behind the wall clock the rotation ticker
// seals. The effective grace is max(minSealGrace, rotation interval): a
// window must have been over for a full rotation before it is exported.
// The dominant lag is not the pipeline's own queues (milliseconds) but
// the flow exporter: NetFlow records carry the flow's start timestamp and
// are exported when the flow ends, so observations routinely trail their
// window by an active-timeout's worth of wall clock. Flows later than
// even the grace re-open the window, and the next seal exports a second
// partial for the same interval — which is safe by construction: sealed
// windows are merge-snapshots, so consumers aggregate rows by (window
// start, key), exactly as Merge does.
const minSealGrace = 2 * time.Second

// Sink adapts the Rollup engine to the correlator's Sink interface: every
// correlated flow handed to WriteBatch is attributed — Service from the
// correlation result, origin ASN from an optional BGP table (longest prefix
// match on the flow's source address, as in the paper's Figure 4), DBL
// category from an optional blocklist (Figure 5) — and observed into the
// engine. It composes with the record-writing sinks through core.MultiSink,
// so one pipeline can dump correlated flows and keep live rollups at once.
//
// The attribution path is allocation-free: the service name is already
// normalized by the correlator, the BGP and blocklist lookups allocate
// nothing, and the engine's Observe hit path is allocation-free by design.
// Each WriteBatch call claims one engine shard for the whole batch, so
// concurrent Write workers land on different shards and never contend.
//
// With WithRotation, a background ticker seals every window that has been
// over for at least a rotation interval and exports it; Close stops the
// ticker, seals everything left (a closing pipeline never loses a partial
// window), and reports any export error.
type Sink struct {
	r *Rollup
	// Attribution goes through hot handles so the daemon can swap in a
	// freshly loaded BGP table or blocklist (SIGHUP, /admin/reload) without
	// stopping the pipeline; WriteBatch loads each handle once per batch,
	// so a batch is always attributed against one consistent table/list and
	// a swap never drops an in-flight lookup.
	table *bgp.Hot
	list  *dbl.Hot

	out    io.Writer
	format Format
	onSeal func([]Window)

	rotateEvery time.Duration
	stop        chan struct{}
	done        chan struct{}
	sealErr     error // written by the rotation goroutine, read after <-done

	closeOnce sync.Once
	closeErr  error
}

// SinkOption configures optional Sink behaviour at construction.
type SinkOption func(*Sink)

// WithTable attributes each flow's source address to its origin AS through
// t, wrapping it in a fixed hot handle (and freezing it — the sink only
// reads, per bgp.Table's build-then-read contract). For a reloadable table
// use WithHotTable.
func WithTable(t *bgp.Table) SinkOption {
	return func(s *Sink) { s.table = bgp.NewHot(t) }
}

// WithHotTable attributes origin ASes through a hot-swappable handle the
// caller keeps: Swap on it (e.g. from a SIGHUP handler) and the sink's next
// batch is attributed against the new table, with zero dropped lookups
// during the swap.
func WithHotTable(h *bgp.Hot) SinkOption {
	return func(s *Sink) { s.table = h }
}

// WithBlocklist attributes each resolved service name to its DBL category
// through l, wrapping it in a fixed hot handle. For a reloadable list use
// WithHotBlocklist.
func WithBlocklist(l *dbl.List) SinkOption {
	return func(s *Sink) { s.list = dbl.NewHot(l) }
}

// WithHotBlocklist attributes DBL categories through a hot-swappable handle
// the caller keeps, mirroring WithHotTable.
func WithHotBlocklist(h *dbl.Hot) SinkOption {
	return func(s *Sink) { s.list = h }
}

// WithExport streams sealed windows to w in the given format. Each seal is
// written and flushed as one unit; the writer's lifecycle belongs to the
// caller.
func WithExport(w io.Writer, f Format) SinkOption {
	return func(s *Sink) {
		s.out = w
		s.format = f
	}
}

// WithRotation seals and exports completed windows every interval on the
// wall clock; a window is sealed once it has been over for a full
// interval (minimum minSealGrace). Without it, windows are sealed only
// at Close — the mode deterministic replays and tests use.
func WithRotation(every time.Duration) SinkOption {
	return func(s *Sink) {
		if every > 0 {
			s.rotateEvery = every
		}
	}
}

// WithOnSeal invokes fn with every batch of sealed windows (from the
// rotation ticker and from Close), before they are exported. Callbacks run
// on the sealing goroutine and must not block the pipeline for long.
func WithOnSeal(fn func([]Window)) SinkOption {
	return func(s *Sink) { s.onSeal = fn }
}

// NewSink builds a Sink over the engine. The caller keeps the engine
// handle for live inspection (Snapshot, the /rollups handler).
func NewSink(r *Rollup, opts ...SinkOption) *Sink {
	s := &Sink{r: r, format: FormatTSV}
	for _, opt := range opts {
		if opt != nil {
			opt(s)
		}
	}
	if s.rotateEvery > 0 {
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.rotate()
	}
	return s
}

// Engine returns the underlying counter engine.
func (s *Sink) Engine() *Rollup { return s.r }

// WriteBatch attributes and observes every record. The whole batch lands
// on one engine shard, claimed round-robin and locked once — concurrent
// Write workers never touch the same shard, so the longer critical
// section amortizes the lock instead of contending (the attribution
// lookups held under it are read-only: a frozen table, an RLocked list).
// It never fails: rollups are counters, and export errors surface from
// the sealing path instead.
func (s *Sink) WriteBatch(_ context.Context, batch []core.CorrelatedFlow) error {
	if len(batch) == 0 {
		return nil
	}
	sh := s.r.shardFor(s.r.NextShard())
	// One handle load per batch: every record below is attributed against
	// the same immutable table and list even if a reload swaps mid-batch.
	var table *bgp.Table
	if s.table != nil {
		table = s.table.Load()
	}
	var list *dbl.List
	if s.list != nil {
		list = s.list.Load()
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := range batch {
		cf := &batch[i]
		key := Key{Service: cf.Name}
		if table != nil {
			key.ASN, _ = table.Lookup(cf.Flow.SrcIP)
		}
		if list != nil && cf.Name != "" {
			key.Category = list.Lookup(cf.Name)
		}
		sh.observe(s.r.windowStart(cf.Flow.Timestamp), key, cf.Flow.Bytes, cf.Flow.Packets)
	}
	return nil
}

// Flush implements core.Sink. Sealed windows are written and flushed as
// they seal, so there is no buffered state to push here.
func (s *Sink) Flush() error { return nil }

// Close stops the rotation ticker, seals every remaining window, exports
// it, and returns the first export error from the sink's lifetime. After
// Close the engine is drained; live inspection reads empty.
func (s *Sink) Close() error {
	s.closeOnce.Do(func() {
		if s.stop != nil {
			close(s.stop)
			<-s.done
		}
		s.closeErr = errors.Join(s.sealErr, s.seal(s.r.SealAll()))
	})
	return s.closeErr
}

// rotate is the background sealing loop.
func (s *Sink) rotate() {
	defer close(s.done)
	ticker := time.NewTicker(s.rotateEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-ticker.C:
			grace := s.rotateEvery
			if grace < minSealGrace {
				grace = minSealGrace
			}
			if err := s.seal(s.r.SealBefore(now.Add(-grace))); err != nil && s.sealErr == nil {
				s.sealErr = err
			}
		}
	}
}

// seal hands sealed windows to the callback and the export writer. Sealing
// is single-threaded by construction: the rotation goroutine owns it while
// running, and Close seals only after that goroutine has exited.
func (s *Sink) seal(windows []Window) error {
	if len(windows) == 0 {
		return nil
	}
	if s.onSeal != nil {
		s.onSeal(windows)
	}
	if s.out == nil {
		return nil
	}
	if s.format == FormatJSON {
		return WriteJSON(s.out, windows)
	}
	return WriteTSV(s.out, windows)
}

var _ core.Sink = (*Sink)(nil)

func init() {
	// Registry integration: "rollup" is selectable wherever the registered
	// sinks are (daemon config outputs, -sink flag). The registry build is
	// the plain variant — service-keyed windows at the default interval,
	// sealed windows exported as TSV to the configured output. Attributed
	// rollups (BGP table, blocklist, custom window, live snapshots) are
	// constructed explicitly with NewSink, as cmd/flowdns -rollup does.
	core.RegisterSink("rollup", true, func(o core.SinkOptions) (core.Sink, error) {
		if o.W == nil {
			return nil, errors.New("rollup: sink requires a writer")
		}
		return NewSink(New(DefaultWindow, DefaultShards),
			WithExport(o.W, FormatTSV),
			WithRotation(DefaultWindow)), nil
	})
}
