package rollup

import (
	"encoding/json"
	"net/http"
)

// snapshotResponse is the wire shape of the /rollups endpoint: the engine
// parameters plus every live (unsealed) window, merged across shards.
type snapshotResponse struct {
	WindowSecs int64        `json:"window_secs"`
	Shards     int          `json:"shards"`
	Windows    []jsonWindow `json:"windows"`
}

// Handler serves the engine's live windows as a JSON document — the
// operator's /rollups inspection endpoint. See SnapshotHandler for the
// drain-aware variant the daemon mounts.
func Handler(r *Rollup) http.Handler {
	return SnapshotHandler(r, nil)
}

// SnapshotHandler serves the engine's live windows as a JSON document.
// Snapshots merge the per-shard partials without consuming them, so polling
// never perturbs the counters the sealing path will export. The response is
// a point-in-time view of mutating state, so it is marked uncacheable; once
// draining reports true the handler answers 503 instead of racing the
// sealing path for counters that are being flushed out from under it.
func SnapshotHandler(r *Rollup, draining func() bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if draining != nil && draining() {
			w.Header().Set("Cache-Control", "no-store")
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		snap := r.Snapshot()
		resp := snapshotResponse{
			WindowSecs: int64(r.Window().Seconds()),
			Shards:     r.Shards(),
			Windows:    make([]jsonWindow, len(snap)),
		}
		for i := range snap {
			resp.Windows[i] = toJSONWindow(&snap[i])
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(&resp)
	})
}
