package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cmap"
	"repro/internal/netflow"
	"repro/internal/snapshot"
	"repro/internal/stream"
)

// snapBase is the fixed record clock all snapshot tests run on.
var snapBase = time.Unix(1_700_000_000, 0)

// genSnapshotWorkload ingests a deterministic mixed workload: A and AAAA
// answers across the TTL spectrum (short → Active, long → Long in Main),
// CNAME chains, and a second wave past the clear-up interval so rotation
// populates the Inactive generation too.
func genSnapshotWorkload(c *Correlator, n int) []stream.DNSRecord {
	rng := rand.New(rand.NewSource(7))
	var recs []stream.DNSRecord
	emit := func(i int, ts time.Time) {
		name := fmt.Sprintf("svc%03d.example", i%97)
		edge := fmt.Sprintf("edge%03d.cdn.example", i%97)
		var addr netip.Addr
		if i%3 == 0 {
			var a16 [16]byte
			rng.Read(a16[:])
			a16[0] = 0x20
			addr = netip.AddrFrom16(a16)
		} else {
			addr = netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), byte(rng.Intn(256))})
		}
		ttl := uint32(rng.Intn(7200) + 1)
		rt := stream.DNSRecord{
			Timestamp: ts, Query: edge, RType: 1, TTL: ttl,
			Answer: addr.String(), Addr: addr,
		}
		if addr.Is6() {
			rt.RType = 28
		}
		recs = append(recs, rt)
		if i%5 == 0 {
			recs = append(recs, stream.DNSRecord{
				Timestamp: ts, Query: name, RType: 5, TTL: 300, Answer: edge,
			})
		}
	}
	for i := 0; i < n/2; i++ {
		emit(i, snapBase.Add(time.Duration(i)*time.Millisecond))
	}
	// Second wave two hours later: the A clear-up interval (3600 s) has
	// elapsed, so Main rotates the first wave into Inactive.
	for i := n / 2; i < n; i++ {
		emit(i, snapBase.Add(2*time.Hour+time.Duration(i)*time.Millisecond))
	}
	for _, r := range recs {
		c.IngestDNS(r)
	}
	return recs
}

type dumpEntry struct {
	v   string
	exp int64
}

// dumpStore flattens a store family into per-generation key→(value, exp)
// maps, merged across splits — a layout-independent image of the state.
func dumpStore(s *store) map[string]map[string]dumpEntry {
	out := make(map[string]map[string]dumpEntry, 3)
	for name, maps := range map[string][]*cmap.Map{"active": s.active, "inactive": s.inactive, "long": s.long} {
		g := map[string]dumpEntry{}
		for _, m := range maps {
			m.RangeExpire(func(k, v string, exp int64) bool {
				g[k] = dumpEntry{v, exp}
				return true
			})
		}
		out[name] = g
	}
	return out
}

func diffDumps(t *testing.T, label string, want, got map[string]map[string]dumpEntry) {
	t.Helper()
	for gen, wm := range want {
		gm := got[gen]
		if len(gm) != len(wm) {
			t.Errorf("%s/%s: %d entries, want %d", label, gen, len(gm), len(wm))
		}
		for k, we := range wm {
			if ge, ok := gm[k]; !ok || ge != we {
				t.Errorf("%s/%s key %q: got %+v ok=%v, want %+v", label, gen, k, ge, ok, we)
				return // one detailed mismatch is enough
			}
		}
	}
}

func snapshotBytes(t *testing.T, c *Correlator) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf, snapBase.UnixNano()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotRestoreRoundTrip pins the tentpole property per variant:
// restore(snapshot(store)) reproduces the store exactly — every generation,
// both key spaces, values and typed expiries — when nothing has expired.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, variant := range []Variant{VariantMain, VariantExactTTL, VariantNoLong, VariantNoClearUp, VariantNoSplit} {
		t.Run(string(variant), func(t *testing.T) {
			c := New(ConfigForVariant(variant))
			genSnapshotWorkload(c, 2000)
			data := snapshotBytes(t, c)

			c2 := New(ConfigForVariant(variant))
			// Restore "now" = the latest record clock: nothing is expired yet.
			st, err := c2.Restore(bytes.NewReader(data), snapBase)
			if err != nil {
				t.Fatal(err)
			}
			if st.Entries == 0 || st.Expired != 0 {
				t.Fatalf("restore stats = %+v, want entries > 0, expired 0", st)
			}
			diffDumps(t, "ipName", dumpStore(c.ipName), dumpStore(c2.ipName))
			diffDumps(t, "nameCname", dumpStore(c.nameCname), dumpStore(c2.nameCname))
			ip1, cn1 := c.StoreSizes()
			ip2, cn2 := c2.StoreSizes()
			if ip1 != ip2 || cn1 != cn2 {
				t.Fatalf("sizes: (%d,%d) restored as (%d,%d)", ip1, cn1, ip2, cn2)
			}
			if st.Entries != ip1+cn1 {
				t.Fatalf("restore applied %d entries, store holds %d", st.Entries, ip1+cn1)
			}
		})
	}
}

// TestSnapshotRestoreDropsExpired pins the "modulo expiry" half of the
// property: an exact-TTL snapshot restored at a later clock drops exactly
// the entries whose stored expiry has passed, and lookups agree with a
// store that never went through the snapshot.
func TestSnapshotRestoreDropsExpired(t *testing.T) {
	cfg := ConfigForVariant(VariantExactTTL)
	c := New(cfg)
	recs := genSnapshotWorkload(c, 2000)
	data := snapshotBytes(t, c)

	// Restore one hour past the last wave: a large slice of the TTLs
	// (uniform in 1..7200 s) has expired by then.
	now := snapBase.Add(3 * time.Hour)
	c2 := New(cfg)
	st, err := c2.Restore(bytes.NewReader(data), now)
	if err != nil {
		t.Fatal(err)
	}
	if st.Expired == 0 {
		t.Fatal("no entries expired; workload broken")
	}

	// The restored store must equal the original minus expired entries.
	want := dumpStore(c.ipName)
	for gen, m := range want {
		for k, e := range m {
			if e.exp != 0 && now.UnixNano() > e.exp {
				delete(m, k)
			}
		}
		want[gen] = m
	}
	diffDumps(t, "ipName", want, dumpStore(c2.ipName))

	// And lookups at `now` agree between original and restored store for
	// every ingested answer (both expired → miss, and live → hit).
	for _, r := range recs {
		if r.RType != 1 && r.RType != 28 {
			continue
		}
		fr := netflow.FlowRecord{
			Timestamp: now, SrcIP: r.Addr,
			DstIP: netip.AddrFrom4([4]byte{192, 0, 2, 1}),
			Bytes: 1, Packets: 1, SrcPort: 443, DstPort: 1, Proto: netflow.ProtoTCP,
		}
		got := c2.CorrelateFlow(fr)
		orig := c.CorrelateFlow(fr)
		if got.Name != orig.Name {
			t.Fatalf("lookup %s: restored %q, original %q", r.Addr, got.Name, orig.Name)
		}
	}
}

// TestSnapshotRestoreAcrossLayouts restores a snapshot into correlators
// with different split/lane layouts: placement is recomputed from the key
// hash, so the state must stay fully reachable.
func TestSnapshotRestoreAcrossLayouts(t *testing.T) {
	src := New(Config{NumSplit: 10, Lanes: 2, FillLanes: 4})
	recs := genSnapshotWorkload(src, 1000)
	data := snapshotBytes(t, src)

	for _, cfg := range []Config{
		{NumSplit: 4, Lanes: 4},
		{DisableSplit: true},
		{NumSplit: 32, Lanes: 8, FillLanes: 1},
	} {
		c2 := New(cfg)
		if _, err := c2.Restore(bytes.NewReader(data), snapBase); err != nil {
			t.Fatal(err)
		}
		ts := snapBase.Add(2*time.Hour + time.Hour)
		for _, r := range recs {
			if r.RType != 1 && r.RType != 28 {
				continue
			}
			name, tier := c2.lookupIP(ts, r.Addr)
			wantName, wantTier := src.lookupIP(ts, r.Addr)
			if name != wantName || tier != wantTier {
				t.Fatalf("layout %+v: lookup %s = (%q,%v), want (%q,%v)",
					cfg, r.Addr, name, tier, wantName, wantTier)
			}
		}
	}
}

// TestRestoreCorruptSnapshot pins recovery behaviour: a damaged stream
// reports ErrCorrupt, keeps the validated prefix, and New's restore-on-boot
// still comes up (partial warmth, never a refusal to start).
func TestRestoreCorruptSnapshot(t *testing.T) {
	c := New(DefaultConfig())
	genSnapshotWorkload(c, 1000)
	data := snapshotBytes(t, c)

	t.Run("truncated", func(t *testing.T) {
		c2 := New(DefaultConfig())
		st, err := c2.Restore(bytes.NewReader(data[:len(data)/2]), snapBase)
		if !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
		ip, cn := c2.StoreSizes()
		if ip+cn != st.Entries {
			t.Fatalf("store holds %d entries, stats claim %d", ip+cn, st.Entries)
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		mut := bytes.Clone(data)
		mut[len(mut)/3] ^= 0x10
		c2 := New(DefaultConfig())
		if _, err := c2.Restore(bytes.NewReader(mut), snapBase); err == nil {
			// A flip can land in already-validated padding-free regions only;
			// every byte is covered by a CRC, so nil means the flip was in a
			// section we still applied — impossible.
			t.Fatal("corruption went undetected")
		}
	})

	t.Run("new-boots-on-corrupt-file", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "corrupt.snapshot")
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.SnapshotPath = path
		c2 := New(cfg)
		st, err := c2.RestoreResult()
		if err == nil {
			t.Fatal("RestoreResult error = nil for a truncated file")
		}
		if !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
		// The correlator is live regardless.
		c2.IngestDNS(stream.DNSRecord{
			Timestamp: snapBase, Query: "x.example", RType: 1, TTL: 60,
			Answer: "192.0.2.7", Addr: netip.MustParseAddr("192.0.2.7"),
		})
		if ip, _ := c2.StoreSizes(); ip < st.Entries+1 {
			t.Fatalf("store size %d after partial restore of %d + 1 fill", ip, st.Entries)
		}
	})
}

// TestNewRestoresFromCheckpoint is the in-process boot cycle: Checkpoint to
// a file, construct a fresh correlator pointed at it, and require the
// restored state to answer lookups (plus the stats counters to say so).
func TestNewRestoresFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.snapshot")

	cfg := DefaultConfig()
	c := New(cfg)
	recs := genSnapshotWorkload(c, 500)
	if err := c.Checkpoint(path); err != nil {
		t.Fatal(err)
	}

	cfg2 := DefaultConfig()
	cfg2.SnapshotPath = path
	c2 := New(cfg2)
	st, err := c2.RestoreResult()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries == 0 || st.Sections == 0 {
		t.Fatalf("restore stats = %+v", st)
	}
	if got := c2.Stats(); got.RestoredEntries != uint64(st.Entries) {
		t.Fatalf("Stats.RestoredEntries = %d, want %d", got.RestoredEntries, st.Entries)
	}
	hits := 0
	for _, r := range recs {
		if r.RType != 1 && r.RType != 28 {
			continue
		}
		if name, _ := c2.lookupIP(snapBase.Add(2*time.Hour), r.Addr); name != "" {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no lookup hits against restored state")
	}

	// Missing file: clean cold start, no error, zero stats.
	cfg3 := DefaultConfig()
	cfg3.SnapshotPath = filepath.Join(dir, "does-not-exist.snapshot")
	c3 := New(cfg3)
	if st, err := c3.RestoreResult(); err != nil || st.Sections != 0 {
		t.Fatalf("cold start: stats %+v, err %v", st, err)
	}
}

// TestRestoreReinterns verifies restored names flow through the fill-lane
// interners: distinct store entries for one service name share one backing
// string, as a live-filled store's do.
func TestRestoreReinterns(t *testing.T) {
	c := New(DefaultConfig())
	// Many addresses, one name: the restored store should intern "one.name"
	// once per lane at most.
	for i := 0; i < 64; i++ {
		addr := netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
		c.IngestDNS(stream.DNSRecord{
			Timestamp: snapBase, Query: "one.name.example", RType: 1, TTL: 60,
			Answer: addr.String(), Addr: addr,
		})
	}
	data := snapshotBytes(t, c)
	c2 := New(DefaultConfig())
	if _, err := c2.Restore(bytes.NewReader(data), snapBase); err != nil {
		t.Fatal(err)
	}
	interned := 0
	for _, l := range c2.fillLanes {
		interned += l.in.size()
	}
	if interned == 0 {
		t.Fatal("restore bypassed the interners")
	}
	if interned > len(c2.fillLanes) {
		t.Fatalf("one name interned %d times across %d lanes", interned, len(c2.fillLanes))
	}
}

// TestCheckpointDuringFills races Checkpoint against concurrent ingestion:
// the fuzzy snapshot must stay structurally valid and every entry it
// captures must be a value that was actually written.
func TestCheckpointDuringFills(t *testing.T) {
	c := New(DefaultConfig())
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			addr := netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)})
			c.IngestDNS(stream.DNSRecord{
				Timestamp: snapBase.Add(time.Duration(i) * time.Millisecond),
				Query:     fmt.Sprintf("svc%d.example", i%13), RType: 1, TTL: 300,
				Answer: addr.String(), Addr: addr,
			})
			i++
		}
	}()
	for round := 0; round < 20; round++ {
		var buf bytes.Buffer
		if err := c.WriteSnapshot(&buf, snapBase.UnixNano()); err != nil {
			t.Fatal(err)
		}
		c2 := New(DefaultConfig())
		if _, err := c2.Restore(bytes.NewReader(buf.Bytes()), snapBase); err != nil {
			t.Fatalf("round %d: fuzzy snapshot failed to restore: %v", round, err)
		}
	}
	close(stop)
	<-done
}
