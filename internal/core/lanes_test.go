package core

import (
	"context"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"repro/internal/netflow"
)

func laneFlow(ts time.Time, srcIP, dstIP string, bytes uint64) netflow.FlowRecord {
	return netflow.FlowRecord{
		Timestamp: ts,
		SrcIP:     netip.MustParseAddr(srcIP),
		DstIP:     netip.MustParseAddr(dstIP),
		Packets:   1, Bytes: bytes, Proto: netflow.ProtoTCP,
	}
}

// TestLanePartitionInvariant pins the partitioning contract: the lane of a
// flow is a pure function of its destination IP, so flows to the same
// destination always land on the same lane, and OfferFlow enqueues on
// exactly that lane's queue.
func TestLanePartitionInvariant(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lanes = 8
	c := New(cfg)
	if c.Lanes() != 8 {
		t.Fatalf("Lanes() = %d, want 8", c.Lanes())
	}
	seen := make(map[string]int)
	for i := 0; i < 256; i++ {
		dst := netip.AddrFrom4([4]byte{203, 0, byte(i / 16), byte(i%16 + 1)})
		lane := c.laneFor(dst)
		if lane < 0 || lane >= 8 {
			t.Fatalf("laneFor(%v) = %d out of range", dst, lane)
		}
		if prev, ok := seen[dst.String()]; ok && prev != lane {
			t.Fatalf("dst %v moved lanes: %d then %d", dst, prev, lane)
		}
		seen[dst.String()] = lane
		// Same address again — and as a v4-mapped v6 address — must agree.
		if l2 := c.laneFor(dst); l2 != lane {
			t.Fatalf("laneFor(%v) unstable: %d vs %d", dst, lane, l2)
		}
		mapped := netip.AddrFrom16(dst.As16())
		if l3 := c.laneFor(mapped); l3 != lane {
			t.Fatalf("v4-mapped %v landed on lane %d, v4 on %d", mapped, l3, lane)
		}
	}
	// The partition must actually spread destinations across lanes.
	used := make(map[int]bool)
	for _, l := range seen {
		used[l] = true
	}
	if len(used) < 4 {
		t.Fatalf("256 destinations used only %d of 8 lanes", len(used))
	}

	// OfferFlow routes onto the owning lane's queue.
	fr := laneFlow(t0, "198.51.100.1", "203.0.113.77", 100)
	want := c.laneFor(fr.DstIP)
	if !c.OfferFlow(fr) {
		t.Fatal("offer rejected on empty queue")
	}
	depths := c.LaneDepths()
	for i, d := range depths {
		if i == want && d != 1 {
			t.Fatalf("lane %d depth = %d, want 1", i, d)
		}
		if i != want && d != 0 {
			t.Fatalf("lane %d depth = %d, want 0", i, d)
		}
	}
}

// TestLaneDefaults pins the config fallbacks: Lanes defaults to NumSplit
// (the paper's per-split design), and the NoSplit ablation collapses to a
// single lane.
func TestLaneDefaults(t *testing.T) {
	if got := DefaultConfig().normalized().Lanes; got != DefaultNumSplit {
		t.Fatalf("default lanes = %d, want NumSplit %d", got, DefaultNumSplit)
	}
	if got := ConfigForVariant(VariantNoSplit).normalized().Lanes; got != 1 {
		t.Fatalf("NoSplit lanes = %d, want 1", got)
	}
	cfg := DefaultConfig()
	cfg.Lanes = 3
	if got := cfg.normalized().Lanes; got != 3 {
		t.Fatalf("explicit lanes = %d, want 3", got)
	}
}

// TestCorrelateBatchMatchesCorrelateFlow checks the batch lane-worker path
// and the single-flow path produce identical results and identical stats.
func TestCorrelateBatchMatchesCorrelateFlow(t *testing.T) {
	mk := func() *Correlator {
		c := New(DefaultConfig())
		c.IngestDNS(cnameRec(t0, "service.com", "edge.cdn.net", 300))
		c.IngestDNS(aRec(t0, "edge.cdn.net", "198.51.100.10", 60))
		c.IngestDNS(aRec(t0, "plain.example", "198.51.100.11", 60))
		return c
	}
	frs := []netflow.FlowRecord{
		laneFlow(t0.Add(time.Second), "198.51.100.10", "203.0.113.1", 100),
		laneFlow(t0.Add(time.Second), "198.51.100.11", "203.0.113.2", 200),
		laneFlow(t0.Add(time.Second), "198.51.100.99", "203.0.113.3", 300), // miss
		{}, // invalid
	}
	single := mk()
	var want []CorrelatedFlow
	for _, fr := range frs {
		want = append(want, single.CorrelateFlow(fr))
	}
	batch := mk()
	got := batch.CorrelateBatch(nil, frs)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name || got[i].Tier != want[i].Tier || got[i].ChainLen != want[i].ChainLen {
			t.Fatalf("record %d: batch %+v, single %+v", i, got[i], want[i])
		}
	}
	bs, ss := batch.Stats(), single.Stats()
	bs.NameCnameEntries, ss.NameCnameEntries = 0, 0 // memoization writes are shared state, compared below
	bs.IPNameEntries, ss.IPNameEntries = 0, 0
	if bs.Flows != ss.Flows || bs.Correlated != ss.Correlated || bs.Misses != ss.Misses ||
		bs.FlowInvalid != ss.FlowInvalid || bs.FlowBytes != ss.FlowBytes ||
		bs.CorrelatedBytes != ss.CorrelatedBytes || bs.ChainHist != ss.ChainHist {
		t.Fatalf("stats diverge:\nbatch  %+v\nsingle %+v", bs, ss)
	}
}

// TestDrainFullLanesDeliversEverything is the drain-ordering regression
// test: cancelling the run while every lane queue is full must still
// deliver every accepted flow to the sink exactly once — the LookUp→Write
// handoff backpressures instead of dropping, and lane queues close before
// the write queue does.
func TestDrainFullLanesDeliversEverything(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lanes = 4
	cfg.LookQueueCap = 64 // 16 per lane
	cfg.WriteQueueCap = 8 // far smaller than the buffered flows: must backpressure
	cfg.WriteBatchSize = 4
	cfg.LookUpWorkers = 4
	c := New(cfg)
	for i := 0; i < 200; i++ {
		c.IngestDNS(aRec(t0, fmt.Sprintf("svc%d.example", i),
			netip.AddrFrom4([4]byte{198, 51, 100, byte(i%200 + 1)}).String(), 300))
	}

	// Fill the lanes to the brim before any worker exists.
	offered, accepted := 0, 0
	for i := 0; i < 1000; i++ {
		fr := laneFlow(t0.Add(time.Second),
			netip.AddrFrom4([4]byte{198, 51, 100, byte(i%200 + 1)}).String(),
			netip.AddrFrom4([4]byte{203, 0, byte(i / 250), byte(i%250 + 1)}).String(), 1)
		offered++
		if c.OfferFlow(fr) {
			accepted++
		}
	}
	if accepted != cfg.LookQueueCap {
		t.Logf("accepted %d of %d offered (lane caps %d total)", accepted, offered, cfg.LookQueueCap)
	}
	if accepted == 0 {
		t.Fatal("nothing accepted")
	}

	sink := NewCountingSink()
	// Run under an already-cancelled context: pure drain.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := func() error {
		c2 := c // correlator already constructed; attach sink via option path
		c2.sink = sink
		return c2.Run(ctx)
	}(); err != nil {
		t.Fatalf("Run = %v", err)
	}

	st := c.Stats()
	if st.Written != uint64(accepted) {
		t.Fatalf("written %d != accepted %d (drain dropped records)", st.Written, accepted)
	}
	total := uint64(0)
	for _, n := range sink.Flows() {
		total += n
	}
	if total != uint64(accepted) {
		t.Fatalf("sink saw %d flows, accepted %d (duplicate or dropped delivery)", total, accepted)
	}
	if st.WriteQueue.Dropped != 0 {
		t.Fatalf("write queue dropped %d during drain", st.WriteQueue.Dropped)
	}
}

// TestLanesDestinationLookup exercises the aligned mode: lookups keyed by
// destination hit the splits the flow's own lane owns.
func TestLanesDestinationLookup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lanes = 8
	cfg.Key = LookupDestination
	c := New(cfg)
	for i := 0; i < 64; i++ {
		dst := netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)})
		c.IngestDNS(aRec(t0, fmt.Sprintf("dst%d.example", i), dst.String(), 300))
	}
	for i := 0; i < 64; i++ {
		dst := netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)})
		cf := c.CorrelateFlow(laneFlow(t0.Add(time.Second), "198.51.100.1", dst.String(), 10))
		if cf.Name != fmt.Sprintf("dst%d.example", i) {
			t.Fatalf("dst lookup %d = %+v", i, cf)
		}
	}
}

// TestIngestDNSUnparsableAnswer pins the §3.2 filter extension: an A
// record whose answer is not an IP address is rejected as invalid rather
// than stored under a key no flow can ever produce.
func TestIngestDNSUnparsableAnswer(t *testing.T) {
	c := New(DefaultConfig())
	c.IngestDNS(aRec(t0, "weird.example", "not-an-ip", 300))
	st := c.Stats()
	if st.DNSInvalid != 1 || st.DNSRecords != 0 {
		t.Fatalf("invalid=%d records=%d, want 1/0", st.DNSInvalid, st.DNSRecords)
	}
	if n, _ := c.StoreSizes(); n != 0 {
		t.Fatalf("ipName entries = %d, want 0", n)
	}
}
