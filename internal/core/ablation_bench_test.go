package core

// Ablation benchmarks for the design parameters the paper discusses in §6
// ("Lessons Learned"): the split count ("splitting the data into several
// shards allows for higher parallelism, while consuming higher CPU"), the
// CNAME chain limit ("we had to limit the chain length to 6 due to
// performance reasons"), and the stage-queue capacity that defends against
// stream loss. Run with:
//
//	go test -bench=Ablation -benchmem ./internal/core/
import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/netflow"
	"repro/internal/stream"
)

// ablationWorkload pre-builds a deterministic record set shared by the
// sweeps.
func ablationWorkload(n int) ([]stream.DNSRecord, []netflow.FlowRecord) {
	dns := make([]stream.DNSRecord, 0, n)
	flows := make([]netflow.FlowRecord, 0, n)
	for i := 0; i < n; i++ {
		ip := fmt.Sprintf("198.%d.%d.%d", 16+i%8, (i/256)%256, i%256)
		dns = append(dns, aRec(t0.Add(time.Duration(i)*time.Millisecond),
			fmt.Sprintf("svc%d.example", i%512), ip, 300))
		flows = append(flows, flow(t0.Add(time.Duration(i)*time.Millisecond), ip, 1000))
	}
	return dns, flows
}

// BenchmarkAblationNumSplit sweeps NUM_SPLIT under parallel lookups: the
// trade-off the paper measures with its NoSplit variant.
func BenchmarkAblationNumSplit(b *testing.B) {
	dns, flows := ablationWorkload(4096)
	for _, splits := range []int{1, 2, 10, 32} {
		b.Run(fmt.Sprintf("splits=%d", splits), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.NumSplit = splits
			c := New(cfg)
			for _, rec := range dns {
				c.IngestDNS(rec)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					c.CorrelateFlow(flows[i&4095])
					i++
				}
			})
		})
	}
}

// BenchmarkAblationChainLimit sweeps the CNAME chain limit over a deep
// alias graph; cost grows with the limit, which is why the paper caps it.
func BenchmarkAblationChainLimit(b *testing.B) {
	for _, limit := range []int{1, 3, 6, 12} {
		b.Run(fmt.Sprintf("limit=%d", limit), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.CNAMEChainLimit = limit
			c := New(cfg)
			// 16-deep chain so every limit is exercised fully.
			for i := 0; i < 16; i++ {
				c.IngestDNS(cnameRec(t0, fmt.Sprintf("n%d.example", i+1), fmt.Sprintf("n%d.example", i), 300))
			}
			c.IngestDNS(aRec(t0, "n0.example", "198.51.100.77", 300))
			fr := flow(t0, "198.51.100.77", 100)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Disable the memoization shortcut's effect by alternating
				// a cold store? Memoization is part of the design; measure
				// the steady state it produces.
				c.CorrelateFlow(fr)
			}
		})
	}
}

// BenchmarkAblationQueueCapacity measures drop rates under a bursty
// producer for different stage-queue capacities — the knob that keeps "the
// buffer usage stable to avoid any loss".
func BenchmarkAblationQueueCapacity(b *testing.B) {
	dns, flows := ablationWorkload(8192)
	for _, capacity := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("cap=%d", capacity), func(b *testing.B) {
			var lastLoss float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.FillQueueCap, cfg.LookQueueCap, cfg.WriteQueueCap = capacity, capacity, capacity
				c := New(cfg)
				ctx, cancel := context.WithCancel(context.Background())
				runDone := make(chan error, 1)
				go func() { runDone <- c.Run(ctx) }()
				c.OfferDNSBatch(dns)
				c.OfferFlowBatch(flows)
				cancel()
				<-runDone
				lastLoss = c.Stats().LossRate()
			}
			b.ReportMetric(lastLoss, "loss_rate")
		})
	}
}

// BenchmarkAblationRotation compares the cost of a clear-up with and
// without buffer rotation at a realistic store size.
func BenchmarkAblationRotation(b *testing.B) {
	for _, rotation := range []bool{true, false} {
		name := "rotation"
		if !rotation {
			name = "clear-only"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.DisableRotation = !rotation
			dns, _ := ablationWorkload(2048)
			b.ReportAllocs()
			b.ResetTimer()
			// Each iteration fills a fresh store and triggers one clear-up;
			// the rotation-vs-clear cost difference shows in the delta
			// between the two sub-benchmarks (the fill cost is identical).
			for i := 0; i < b.N; i++ {
				c := New(cfg)
				for _, rec := range dns {
					c.IngestDNS(rec)
				}
				c.IngestDNS(aRec(t0.Add(2*time.Hour), "trigger.example", "203.0.113.99", 60))
			}
		})
	}
}
