package core

import (
	"sync/atomic"

	"repro/internal/queue"
)

// maxChainBucket is the last chain-length histogram bucket; the limit is 6
// so bucket 7 collects anything at the cap.
const maxChainBucket = 8

// statsCounters is the live, atomically updated counter block.
type statsCounters struct {
	dnsRecords atomic.Uint64
	dnsInvalid atomic.Uint64

	flows       atomic.Uint64
	flowInvalid atomic.Uint64
	flowBytes   atomic.Uint64

	correlated      atomic.Uint64
	correlatedBytes atomic.Uint64
	misses          atomic.Uint64

	hitActive   atomic.Uint64
	hitInactive atomic.Uint64
	hitLong     atomic.Uint64

	memoized atomic.Uint64
	written  atomic.Uint64

	maxWriteDelay atomic.Int64 // ns

	checkpoints      atomic.Uint64
	checkpointErrors atomic.Uint64

	// poisoned counts records dropped by panic containment: the batch item
	// whose processing panicked, sacrificed so the worker (and the process)
	// survive.
	poisoned atomic.Uint64

	chain [maxChainBucket]atomic.Uint64
}

// lookTally is a LookUp worker's batch-local counter block. Workers
// accumulate per-flow counts here and flush once per batch, amortizing the
// shared atomic updates (and their cache-line traffic) over the batch —
// one of the two costs, with key allocation, that the sharded-lane design
// removes from the per-flow hit path.
type lookTally struct {
	flows       uint64
	flowInvalid uint64
	flowBytes   uint64

	correlated      uint64
	correlatedBytes uint64
	misses          uint64

	hits     [TierLong + 1]uint64
	memoized uint64

	chain [maxChainBucket]uint64
}

// flush adds the tally to the shared counters and zeroes it. Zero fields
// cost nothing.
func (t *lookTally) flush(s *statsCounters) {
	if t.flows != 0 {
		s.flows.Add(t.flows)
	}
	if t.flowInvalid != 0 {
		s.flowInvalid.Add(t.flowInvalid)
	}
	if t.flowBytes != 0 {
		s.flowBytes.Add(t.flowBytes)
	}
	if t.correlated != 0 {
		s.correlated.Add(t.correlated)
	}
	if t.correlatedBytes != 0 {
		s.correlatedBytes.Add(t.correlatedBytes)
	}
	if t.misses != 0 {
		s.misses.Add(t.misses)
	}
	if t.hits[TierActive] != 0 {
		s.hitActive.Add(t.hits[TierActive])
	}
	if t.hits[TierInactive] != 0 {
		s.hitInactive.Add(t.hits[TierInactive])
	}
	if t.hits[TierLong] != 0 {
		s.hitLong.Add(t.hits[TierLong])
	}
	if t.memoized != 0 {
		s.memoized.Add(t.memoized)
	}
	for i := range t.chain {
		if t.chain[i] != 0 {
			s.chain[i].Add(t.chain[i])
		}
	}
	*t = lookTally{}
}

// Stats is a point-in-time snapshot of everything the evaluation section
// reports: correlation rate (by bytes, the paper's headline metric), loss
// rates on every queue, lookup tier hits, CNAME chain distribution, state
// sizes, rotation counts, and the write delay.
type Stats struct {
	DNSRecords uint64 // valid DNS records filled up
	DNSInvalid uint64 // records rejected by the §3.2 filter

	Flows       uint64 // flow records processed by LookUp
	FlowInvalid uint64
	FlowBytes   uint64 // total traffic volume seen

	Correlated      uint64 // flows with a resolved name
	CorrelatedBytes uint64 // traffic volume with a resolved name
	Misses          uint64

	HitActive   uint64
	HitInactive uint64
	HitLong     uint64

	Memoized uint64
	Written  uint64

	// MaxWriteDelayNs is the worst observed flow latency from LookUp-queue
	// entry to the sink write (the paper's write-delay metric: "the delay
	// to write the correlated data", bounded at 45 s in the deployment).
	MaxWriteDelayNs int64

	ChainHist [maxChainBucket]uint64 // CNAME hops taken per correlated flow

	IPNameEntries    int
	NameCnameEntries int

	IPNameRotations    uint64
	NameCnameRotations uint64
	Sweeps             uint64 // exact-TTL mode only
	SweptEntries       uint64

	// Checkpoints counts successful snapshot writes this run (periodic plus
	// the final one); CheckpointErrors counts failed attempts.
	// RestoredEntries / RestoredExpired report New's restore-on-boot: how
	// many entries the checkpoint contributed and how many it dropped as
	// already expired.
	Checkpoints      uint64
	CheckpointErrors uint64
	RestoredEntries  uint64
	RestoredExpired  uint64

	// Poisoned counts records dropped by panic containment (the poisoned
	// batch item, not its batch and not the process). Panics and Restarts
	// total the per-component supervision counters in Supervised.
	Poisoned uint64
	Panics   uint64
	Restarts uint64
	// Supervised is the per-component breakdown (stage workers,
	// checkpointer, services), sorted by component name.
	Supervised []SupervisedStatus

	// FillQueue aggregates every fill lane's queue and LookQueue every
	// correlation lane's; FillLanes and Lanes are the lane counts behind
	// them.
	FillQueue  queue.Stats
	LookQueue  queue.Stats
	WriteQueue queue.Stats
	Lanes      int
	FillLanes  int
}

// CorrelationRate returns correlated bytes over total bytes — the paper's
// "ratio of correlated traffic to the total traffic" (81.7 % for Main).
func (s Stats) CorrelationRate() float64 {
	if s.FlowBytes == 0 {
		return 0
	}
	return float64(s.CorrelatedBytes) / float64(s.FlowBytes)
}

// CorrelationRateFlows returns correlated flows over total flows.
func (s Stats) CorrelationRateFlows() float64 {
	if s.Flows == 0 {
		return 0
	}
	return float64(s.Correlated) / float64(s.Flows)
}

// LossRate aggregates loss across the three stage queues — "loss on the
// streams" in the paper's terminology. It counts both accidental overflow
// (Dropped) and deliberate adaptive shed (Sampled): a record the operator
// chose to sacrifice is still a record the rollups never saw.
func (s Stats) LossRate() float64 {
	offered := s.FillQueue.Offered() + s.LookQueue.Offered() + s.WriteQueue.Offered()
	if offered == 0 {
		return 0
	}
	lost := s.FillQueue.Lost() + s.LookQueue.Lost() + s.WriteQueue.Lost()
	return float64(lost) / float64(offered)
}

// SampledRate is the deliberate-shed share alone: Sampled over Offered
// across the stage queues. LossRate − SampledRate is the accidental part.
func (s Stats) SampledRate() float64 {
	offered := s.FillQueue.Offered() + s.LookQueue.Offered() + s.WriteQueue.Offered()
	if offered == 0 {
		return 0
	}
	sampled := s.FillQueue.Sampled + s.LookQueue.Sampled + s.WriteQueue.Sampled
	return float64(sampled) / float64(offered)
}

// Stats snapshots the correlator's counters.
func (c *Correlator) Stats() Stats {
	st := Stats{
		DNSRecords:         c.stats.dnsRecords.Load(),
		DNSInvalid:         c.stats.dnsInvalid.Load(),
		Flows:              c.stats.flows.Load(),
		FlowInvalid:        c.stats.flowInvalid.Load(),
		FlowBytes:          c.stats.flowBytes.Load(),
		Correlated:         c.stats.correlated.Load(),
		CorrelatedBytes:    c.stats.correlatedBytes.Load(),
		Misses:             c.stats.misses.Load(),
		HitActive:          c.stats.hitActive.Load(),
		HitInactive:        c.stats.hitInactive.Load(),
		HitLong:            c.stats.hitLong.Load(),
		Memoized:           c.stats.memoized.Load(),
		Written:            c.stats.written.Load(),
		MaxWriteDelayNs:    c.stats.maxWriteDelay.Load(),
		IPNameRotations:    c.ipName.rotations.Load(),
		NameCnameRotations: c.nameCname.rotations.Load(),
		Sweeps:             c.ipName.sweeps.Load() + c.nameCname.sweeps.Load(),
		SweptEntries:       c.ipName.swept.Load() + c.nameCname.swept.Load(),
		Checkpoints:        c.stats.checkpoints.Load(),
		CheckpointErrors:   c.stats.checkpointErrors.Load(),
		RestoredEntries:    uint64(c.restoreStats.Entries),
		RestoredExpired:    uint64(c.restoreStats.Expired),
		WriteQueue:         c.writeQ.Stats(),
		Lanes:              len(c.lanes),
		FillLanes:          len(c.fillLanes),
	}
	for _, l := range c.fillLanes {
		fs := l.q.Stats()
		st.FillQueue.Enqueued += fs.Enqueued
		st.FillQueue.Dropped += fs.Dropped
		st.FillQueue.Sampled += fs.Sampled
		st.FillQueue.Dequeued += fs.Dequeued
	}
	for _, l := range c.lanes {
		ls := l.q.Stats()
		st.LookQueue.Enqueued += ls.Enqueued
		st.LookQueue.Dropped += ls.Dropped
		st.LookQueue.Sampled += ls.Sampled
		st.LookQueue.Dequeued += ls.Dequeued
	}
	for i := range st.ChainHist {
		st.ChainHist[i] = c.stats.chain[i].Load()
	}
	st.Poisoned = c.stats.poisoned.Load()
	st.Supervised = c.sup.snapshot()
	for _, s := range st.Supervised {
		st.Panics += s.Panics
		st.Restarts += s.Restarts
	}
	st.IPNameEntries, st.NameCnameEntries = c.StoreSizes()
	return st
}
