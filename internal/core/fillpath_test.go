package core

import (
	"fmt"
	"math/rand"
	"net/netip"
	"strconv"
	"strings"
	"testing"
	"time"
	"unsafe"

	"repro/internal/dnswire"
	"repro/internal/stream"
)

// aRecTyped is aRec with the address carried typed, as the wire decoder and
// capture reader deliver it.
func aRecTyped(ts time.Time, query, ip string, ttl uint32) stream.DNSRecord {
	return stream.DNSRecord{Timestamp: ts, Query: query, RType: dnswire.TypeA,
		TTL: ttl, Addr: netip.MustParseAddr(ip)}
}

// --- exact-TTL boundary semantics after the typed-expiry swap ---

func TestExactTTLBoundary(t *testing.T) {
	cfg := ConfigForVariant(VariantExactTTL)
	cases := []struct {
		name   string
		ttl    uint32
		offset time.Duration // flow timestamp relative to the record
		hit    bool
	}{
		// The A.8 condition is TTL_dns + Timestamp_dns < Timestamp_netflow:
		// a flow stamped exactly at expiry still matches.
		{"at-expiry", 300, 300 * time.Second, true},
		{"one-ns-past-expiry", 300, 300*time.Second + time.Nanosecond, false},
		{"one-ns-before-expiry", 300, 300*time.Second - time.Nanosecond, true},
		{"far-past-expiry", 300, 24 * time.Hour, false},
		{"far-future-expiry", 7 * 24 * 3600, time.Hour, true},
		{"zero-ttl-same-instant", 0, 0, true},
		{"zero-ttl-next-ns", 0, time.Nanosecond, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(cfg)
			c.IngestDNS(aRecTyped(t0, "svc.example", "198.51.100.80", tc.ttl))
			cf := c.CorrelateFlow(flow(t0.Add(tc.offset), "198.51.100.80", 10))
			if cf.Correlated() != tc.hit {
				t.Fatalf("ttl=%d offset=%v: correlated=%v, want %v",
					tc.ttl, tc.offset, cf.Correlated(), tc.hit)
			}
		})
	}
}

// --- golden equivalence: typed expiry vs the old string encoding ---

// oracleStore reimplements the pre-typed-expiry Active generation: values
// encoded as "value\x00unixNano" on put and decoded on every hit, with the
// original After() comparison. The golden test replays one corpus through
// the real exact-TTL correlator and through this oracle and demands
// identical correlation outcomes flow by flow.
type oracleStore struct {
	m map[netip.Addr]string
}

func (o *oracleStore) put(rec stream.DNSRecord) {
	exp := rec.Timestamp.Add(time.Duration(rec.TTL) * time.Second)
	o.m[rec.Addr] = rec.Query + "\x00" + strconv.FormatInt(exp.UnixNano(), 10)
}

func (o *oracleStore) get(now time.Time, addr netip.Addr) (string, bool) {
	v, ok := o.m[addr]
	if !ok {
		return "", false
	}
	i := strings.LastIndexByte(v, 0)
	ns, err := strconv.ParseInt(v[i+1:], 10, 64)
	if err != nil {
		return "", false
	}
	if now.After(time.Unix(0, ns)) {
		return "", false
	}
	return v[:i], true
}

func TestExactTTLGoldenEquivalence(t *testing.T) {
	cfg := ConfigForVariant(VariantExactTTL)
	// Sweeps only remove entries the lookup already rejects, so they cannot
	// change outcomes; disabling them keeps the oracle trivially in sync.
	cfg.ExactTTLSweepInterval = 365 * 24 * time.Hour
	c := New(cfg)
	oracle := &oracleStore{m: make(map[netip.Addr]string)}

	r := rand.New(rand.NewSource(7))
	ttls := []uint32{0, 5, 30, 60, 300, 3600, 86400}
	clock := t0
	var flowsChecked, hits int
	for i := 0; i < 5000; i++ {
		clock = clock.Add(time.Duration(r.Intn(2000)) * time.Millisecond)
		ip := fmt.Sprintf("198.51.%d.%d", r.Intn(4), 1+r.Intn(200))
		if r.Intn(3) > 0 {
			rec := aRecTyped(clock, fmt.Sprintf("svc%d.example", r.Intn(64)), ip, ttls[r.Intn(len(ttls))])
			c.IngestDNS(rec)
			oracle.put(rec)
			continue
		}
		// Flow timestamps also probe slightly behind the record clock, so
		// both just-expired and still-valid entries are exercised.
		ts := clock.Add(time.Duration(r.Intn(600)-120) * time.Second)
		addr := netip.MustParseAddr(ip)
		cf := c.CorrelateFlow(flow(ts, ip, 10))
		wantName, wantHit := oracle.get(ts, addr)
		flowsChecked++
		if cf.Correlated() != wantHit {
			t.Fatalf("flow %d (ts=%v ip=%s): correlated=%v, oracle says %v",
				i, ts, ip, cf.Correlated(), wantHit)
		}
		if wantHit {
			hits++
			if cf.Name != wantName {
				t.Fatalf("flow %d: name %q, oracle says %q", i, cf.Name, wantName)
			}
		}
	}
	if flowsChecked < 1000 || hits < 100 {
		t.Fatalf("corpus too thin: %d flows, %d hits", flowsChecked, hits)
	}
}

// --- batched ingest equivalence ---

func TestIngestDNSBatchMatchesSingle(t *testing.T) {
	for _, variant := range []Variant{VariantMain, VariantExactTTL, VariantNoLong, VariantNoSplit} {
		t.Run(string(variant), func(t *testing.T) {
			cfg := ConfigForVariant(variant)
			// Sweep timing is batch-granular on the batched path (the clock
			// advances once per batch), so sweeps would remove expired
			// entries at slightly different instants; disable them to keep
			// store sizes exactly comparable. Lookup outcomes are unaffected
			// either way — expired entries never match.
			cfg.ExactTTLSweepInterval = 365 * 24 * time.Hour
			single := New(cfg)
			batched := New(cfg)

			r := rand.New(rand.NewSource(11))
			var recs []stream.DNSRecord
			clock := t0
			for i := 0; i < 1000; i++ {
				clock = clock.Add(time.Duration(r.Intn(500)) * time.Millisecond)
				switch r.Intn(4) {
				case 0:
					recs = append(recs, cnameRec(clock, fmt.Sprintf("alias%d.example", r.Intn(32)),
						fmt.Sprintf("edge%d.cdn.example", r.Intn(16)), uint32(r.Intn(7200))))
				case 1:
					// Long-TTL records exercise the Long-generation item group.
					recs = append(recs, aRecTyped(clock, fmt.Sprintf("svc%d.example", r.Intn(64)),
						fmt.Sprintf("198.51.100.%d", 1+r.Intn(250)), 86400))
				case 2:
					// Invalid record: empty query. Both paths must count it.
					recs = append(recs, stream.DNSRecord{Timestamp: clock, RType: dnswire.TypeA, Answer: "198.51.100.9"})
				default:
					recs = append(recs, aRecTyped(clock, fmt.Sprintf("svc%d.example", r.Intn(64)),
						fmt.Sprintf("198.51.101.%d", 1+r.Intn(250)), uint32(r.Intn(600))))
				}
			}
			for _, rec := range recs {
				single.IngestDNS(rec)
			}
			for i := 0; i < len(recs); i += 96 {
				batched.IngestDNSBatch(recs[i:min(i+96, len(recs))])
			}

			sIP, sCN := single.StoreSizes()
			bIP, bCN := batched.StoreSizes()
			if sIP != bIP || sCN != bCN {
				t.Fatalf("store sizes diverge: single %d/%d, batched %d/%d", sIP, sCN, bIP, bCN)
			}
			ss, bs := single.Stats(), batched.Stats()
			if ss.DNSRecords != bs.DNSRecords || ss.DNSInvalid != bs.DNSInvalid {
				t.Fatalf("stats diverge: single %d/%d, batched %d/%d",
					ss.DNSRecords, ss.DNSInvalid, bs.DNSRecords, bs.DNSInvalid)
			}
			// Every lookup resolves identically.
			for i := 0; i < 250; i++ {
				ip := fmt.Sprintf("198.51.%d.%d", 100+r.Intn(2), 1+r.Intn(250))
				ts := clock.Add(time.Duration(r.Intn(120)-60) * time.Second)
				a := single.CorrelateFlow(flow(ts, ip, 10))
				b := batched.CorrelateFlow(flow(ts, ip, 10))
				if a.Name != b.Name || a.Tier != b.Tier {
					t.Fatalf("lookup %s diverges: single (%q, %v), batched (%q, %v)",
						ip, a.Name, a.Tier, b.Name, b.Tier)
				}
			}
		})
	}
}

// --- name interning ---

func TestInterningSharesValueStorage(t *testing.T) {
	c := New(DefaultConfig())
	// Interners are per fill lane, so pick two addresses that the answer
	// partition routes to the same lane (cross-lane duplication is by
	// design: at most one copy of a name per lane).
	first := "198.51.100.91"
	probe := aRecTyped(t0, "x", first, 1)
	lane := c.fillLaneFor(&probe)
	second := ""
	for i := 1; i < 250; i++ {
		ip := fmt.Sprintf("198.51.101.%d", i)
		r := aRecTyped(t0, "x", ip, 1)
		if c.fillLaneFor(&r) == lane {
			second = ip
			break
		}
	}
	if second == "" {
		t.Fatal("no second address on the same fill lane")
	}
	// Two entries for the same service name arrive as two distinct string
	// allocations, as two decoded wire messages would.
	name1 := strings.Clone("cdn-edge.example")
	name2 := strings.Clone("cdn-edge.example")
	if unsafe.StringData(name1) == unsafe.StringData(name2) {
		t.Fatal("test setup: clones share storage")
	}
	c.IngestDNS(stream.DNSRecord{Timestamp: t0, Query: name1, RType: dnswire.TypeA,
		TTL: 300, Addr: netip.MustParseAddr(first)})
	c.IngestDNS(stream.DNSRecord{Timestamp: t0, Query: name2, RType: dnswire.TypeA,
		TTL: 300, Addr: netip.MustParseAddr(second)})
	a := c.CorrelateFlow(flow(t0.Add(time.Second), first, 10))
	b := c.CorrelateFlow(flow(t0.Add(time.Second), second, 10))
	if a.Name != "cdn-edge.example" || b.Name != "cdn-edge.example" {
		t.Fatalf("lookups = %q, %q", a.Name, b.Name)
	}
	if unsafe.StringData(a.Name) != unsafe.StringData(b.Name) {
		t.Fatal("stored values for the same name do not share one backing string")
	}
}

func TestInternerResetAtCapacity(t *testing.T) {
	in := newInterner(8)
	canon := in.intern(strings.Clone("keep.example"))
	for i := 0; i < 8; i++ {
		in.intern(fmt.Sprintf("fill%d.example", i))
	}
	if in.size() > 8 {
		t.Fatalf("interner grew past cap: %d", in.size())
	}
	// After the reset the canonical string is gone from the table but the
	// handed-out copy is untouched; a re-intern re-canonicalizes.
	again := in.intern(strings.Clone("keep.example"))
	if again != canon {
		t.Fatalf("re-intern = %q, want equal content", again)
	}
}

// --- fill lanes ---

func TestFillLaneDefaults(t *testing.T) {
	if got := New(DefaultConfig()).FillLanes(); got != DefaultNumSplit {
		t.Fatalf("default fill lanes = %d, want %d (mirror lanes)", got, DefaultNumSplit)
	}
	cfg := DefaultConfig()
	cfg.Lanes = 4
	if got := New(cfg).FillLanes(); got != 4 {
		t.Fatalf("fill lanes = %d, want Lanes (4)", got)
	}
	cfg.FillLanes = 2
	if got := New(cfg).FillLanes(); got != 2 {
		t.Fatalf("explicit fill lanes = %d, want 2", got)
	}
	nosplit := ConfigForVariant(VariantNoSplit)
	nosplit.FillLanes = 8
	if got := New(nosplit).FillLanes(); got != 1 {
		t.Fatalf("NoSplit fill lanes = %d, want 1", got)
	}
	if d := New(DefaultConfig()).FillLaneDepths(); len(d) != DefaultNumSplit {
		t.Fatalf("FillLaneDepths = %v", d)
	}
}

func TestFillLanePartitionDeterministic(t *testing.T) {
	c := New(DefaultConfig())
	rec := aRecTyped(t0, "svc.example", "198.51.100.77", 300)
	want := c.fillLaneFor(&rec)
	for i := 0; i < 100; i++ {
		r := aRecTyped(t0.Add(time.Duration(i)*time.Second), fmt.Sprintf("q%d.example", i), "198.51.100.77", 300)
		if got := c.fillLaneFor(&r); got != want {
			t.Fatalf("same answer address landed on lanes %d and %d", want, got)
		}
	}
	// With FillLanes == Lanes, the fill lane owns exactly the splits the
	// record's store put touches: lane == splitFor's lane component.
	a16 := rec.Addr.As16()
	h := ipHash(&a16)
	split := c.ipName.splitFor(h)
	if lane := split / c.ipName.perLane; lane != want {
		t.Fatalf("fill lane %d does not own split %d (lane %d)", want, split, lane)
	}
}

func TestOfferDNSRoutesAndCounts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FillLanes = 4
	cfg.FillQueueCap = 64 // 16 per lane
	c := New(cfg)
	var recs []stream.DNSRecord
	for i := 0; i < 40; i++ {
		recs = append(recs, aRecTyped(t0, "svc.example", fmt.Sprintf("198.51.100.%d", i+1), 300))
	}
	accepted := c.OfferDNSBatch(recs)
	if accepted != 40 {
		t.Fatalf("accepted = %d, want 40", accepted)
	}
	fill, _, _ := c.QueueDepths()
	if fill != 40 {
		t.Fatalf("fill depth = %d, want 40", fill)
	}
	depths := c.FillLaneDepths()
	total, nonEmpty := 0, 0
	for _, d := range depths {
		total += d
		if d > 0 {
			nonEmpty++
		}
	}
	if total != 40 || nonEmpty < 2 {
		t.Fatalf("lane depths = %v, want 40 spread over >=2 lanes", depths)
	}
	if st := c.Stats(); st.FillLanes != 4 || st.FillQueue.Enqueued != 40 {
		t.Fatalf("stats = FillLanes %d, enqueued %d", st.FillLanes, st.FillQueue.Enqueued)
	}
}

func TestOfferDNSOverflowDropsAndCounts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FillLanes = 1
	cfg.FillQueueCap = 8
	c := New(cfg)
	var recs []stream.DNSRecord
	for i := 0; i < 20; i++ {
		recs = append(recs, aRecTyped(t0, "svc.example", fmt.Sprintf("198.51.100.%d", i+1), 300))
	}
	accepted := c.OfferDNSBatch(recs)
	if accepted != 8 {
		t.Fatalf("accepted = %d, want 8 (queue cap)", accepted)
	}
	if st := c.Stats(); st.FillQueue.Dropped != 12 {
		t.Fatalf("dropped = %d, want 12", st.FillQueue.Dropped)
	}
}

func TestIngestDNSBatchRejectedRecordsDontAdvanceClock(t *testing.T) {
	// A rejected record (unparsable answer) with a garbage far-future
	// timestamp must not advance the sweep/clear-up clock: with the bug, a
	// single corrupt capture line would sweep every live entry as expired.
	cfg := ConfigForVariant(VariantExactTTL)
	cfg.ExactTTLSweepInterval = 60 * time.Second
	c := New(cfg)
	c.IngestDNSBatch([]stream.DNSRecord{aRecTyped(t0, "svc.example", "198.51.100.5", 300)})
	bad := stream.DNSRecord{Timestamp: t0.Add(1000 * time.Hour), Query: "x.example",
		RType: dnswire.TypeA, TTL: 300, Answer: "not-an-ip"}
	c.IngestDNSBatch([]stream.DNSRecord{
		aRecTyped(t0.Add(time.Second), "svc2.example", "198.51.100.6", 300),
		bad,
	})
	if st := c.Stats(); st.DNSInvalid != 1 || st.Sweeps != 0 {
		t.Fatalf("invalid=%d sweeps=%d, want 1/0", st.DNSInvalid, st.Sweeps)
	}
	if cf := c.CorrelateFlow(flow(t0.Add(2*time.Second), "198.51.100.5", 10)); !cf.Correlated() {
		t.Fatal("live entry lost: rejected record's timestamp advanced the clock")
	}
}

func TestOfferDNSStringAndTypedRouteSameLane(t *testing.T) {
	// A string-only producer's record for an address must land on the same
	// fill lane as a wire source's typed record for it — the offer path
	// materializes the typed address before partitioning — so cross-lane
	// reordering can never break last-write-wins between producers.
	cfg := DefaultConfig()
	cfg.FillLanes = 8
	c := New(cfg)
	typed := aRecTyped(t0, "svc.example", "198.51.100.33", 300)
	stringOnly := aRec(t0, "svc.example", "198.51.100.33", 300)
	if !c.OfferDNS(typed) || !c.OfferDNS(stringOnly) {
		t.Fatal("offers rejected")
	}
	depths := c.FillLaneDepths()
	lanes := 0
	for _, d := range depths {
		if d > 0 {
			lanes++
			if d != 2 {
				t.Fatalf("records split across lanes: %v", depths)
			}
		}
	}
	if lanes != 1 {
		t.Fatalf("records on %d lanes, want 1: %v", lanes, depths)
	}
}
