package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// fakeService records its lifecycle: whether Serve started, what the
// correlator's drain flag read when its context was cancelled, and when it
// stopped.
type fakeService struct {
	name      string
	started   atomic.Bool
	stopped   atomic.Bool
	atCancel  func()
	serveErr  error
	stoppedAt atomic.Int64
}

func (f *fakeService) Name() string { return f.name }

func (f *fakeService) Serve(ctx context.Context) error {
	f.started.Store(true)
	<-ctx.Done()
	if f.atCancel != nil {
		f.atCancel()
	}
	f.stopped.Store(true)
	f.stoppedAt.Store(time.Now().UnixNano())
	return f.serveErr
}

// TestServicesLifecycle proves services start under Run, outlive the drain
// (their context cancels only after the sink closes, with the drain flag
// already up), and have their errors joined into Run's result.
func TestServicesLifecycle(t *testing.T) {
	drainingAtCancel := false
	svc := &fakeService{name: "probe", serveErr: errors.New("probe shutdown failed")}
	var corr *Correlator
	svc.atCancel = func() { drainingAtCancel = corr.Draining() }
	sink := &recordingSink{}
	corr = New(Config{Lanes: 1, FillLanes: 1}, WithSink(sink), WithServices(svc, nil))

	if corr.Draining() {
		t.Fatal("draining before Run")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- corr.Run(ctx) }()

	deadline := time.After(5 * time.Second)
	for !svc.started.Load() {
		select {
		case <-deadline:
			t.Fatal("service never started")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	var err error
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return")
	}
	if !svc.stopped.Load() {
		t.Fatal("service still running after Run returned")
	}
	if !drainingAtCancel {
		t.Fatal("service context cancelled before the drain flag was up")
	}
	if !corr.Draining() {
		t.Fatal("drain flag dropped after Run")
	}
	if err == nil || !errors.Is(err, svc.serveErr) {
		t.Fatalf("Run error %v does not include the service error", err)
	}
	// The sink closed before the service was told to stop.
	if closedAt := sink.closedAt.Load(); closedAt == 0 || svc.stoppedAt.Load() < closedAt {
		t.Fatalf("service stopped (%d) before sink closed (%d)", svc.stoppedAt.Load(), closedAt)
	}
}

// recordingSink is a Sink that timestamps Close.
type recordingSink struct {
	closedAt atomic.Int64
}

func (s *recordingSink) WriteBatch(ctx context.Context, batch []CorrelatedFlow) error { return nil }
func (s *recordingSink) Flush() error                                                 { return nil }
func (s *recordingSink) Close() error {
	s.closedAt.Store(time.Now().UnixNano())
	return nil
}
