package core

import (
	"context"
	"errors"
	"net/netip"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/netflow"
)

// flakySink fails WriteBatch while down, recording everything it accepts.
type flakySink struct {
	mu       sync.Mutex
	down     bool
	failures int
	accepted []CorrelatedFlow
	flushes  int
	closed   bool
}

func (s *flakySink) WriteBatch(_ context.Context, batch []CorrelatedFlow) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		s.failures++
		return errors.New("endpoint down")
	}
	s.accepted = append(s.accepted, batch...)
	return nil
}

func (s *flakySink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushes++
	if s.down {
		return errors.New("endpoint down")
	}
	return nil
}

func (s *flakySink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func (s *flakySink) setDown(v bool) {
	s.mu.Lock()
	s.down = v
	s.mu.Unlock()
}

func (s *flakySink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.accepted)
}

// retryFlow builds a distinguishable record; i is encoded into the source
// address and the byte count so ordering checks can read it back.
func retryFlow(i int) CorrelatedFlow {
	cf := CorrelatedFlow{Name: "svc.example.", ChainLen: 1, Tier: TierActive}
	cf.Flow = netflow.FlowRecord{
		Timestamp: time.Unix(1700000000+int64(i), 0).UTC(),
		SrcIP:     netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
		DstIP:     netip.AddrFrom4([4]byte{192, 0, 2, 1}),
		SrcPort:   1234, DstPort: 443, Proto: 6,
		Packets: 1, Bytes: uint64(i),
	}
	return cf
}

func retryBatch(from, n int) []CorrelatedFlow {
	b := make([]CorrelatedFlow, n)
	for i := range b {
		b[i] = retryFlow(from + i)
	}
	return b
}

// newTestRetrySink builds a RetrySink with an instant, counted sleep.
func newTestRetrySink(t *testing.T, inner Sink, cfg RetryConfig) (*RetrySink, *int) {
	t.Helper()
	rs, err := NewRetrySink(inner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sleeps := 0
	rs.sleep = func(time.Duration) { sleeps++ }
	return rs, &sleeps
}

// TestRetryThenSuccess proves a transient failure is retried with doubling
// backoff and absorbed without spilling.
func TestRetryThenSuccess(t *testing.T) {
	inner := &flakySink{}
	rs, err := NewRetrySink(inner, RetryConfig{MaxRetries: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var delays []time.Duration
	rs.sleep = func(d time.Duration) {
		delays = append(delays, d)
		if len(delays) == 2 {
			inner.setDown(false) // recovers before the second retry
		}
	}
	inner.setDown(true)
	if err := rs.WriteBatch(context.Background(), retryBatch(0, 5)); err != nil {
		t.Fatalf("WriteBatch = %v", err)
	}
	if inner.count() != 5 {
		t.Fatalf("delivered %d, want 5", inner.count())
	}
	if len(delays) != 2 || delays[0] != time.Millisecond || delays[1] != 2*time.Millisecond {
		t.Fatalf("backoff sequence = %v, want [1ms 2ms]", delays)
	}
	st := rs.Stats()
	if st.Delivered != 5 || st.Retries != 2 || st.Spilled != 0 || st.SpillDepth != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSpillAndReplay proves batches written during an outage queue in
// memory and replay — in order, before newer traffic — once the endpoint
// recovers.
func TestSpillAndReplay(t *testing.T) {
	inner := &flakySink{}
	rs, _ := newTestRetrySink(t, inner, RetryConfig{MaxRetries: -1})
	inner.setDown(true)
	for b := 0; b < 3; b++ {
		if err := rs.WriteBatch(context.Background(), retryBatch(b*4, 4)); err != nil {
			t.Fatalf("WriteBatch = %v", err)
		}
	}
	if got := rs.Stats(); got.Spilled != 12 || got.SpilledBatches != 3 || got.SpillDepth != 12 || got.Delivered != 0 {
		t.Fatalf("outage stats = %+v", got)
	}
	inner.setDown(false)
	// The next write replays the backlog first, then delivers itself.
	if err := rs.WriteBatch(context.Background(), retryBatch(12, 4)); err != nil {
		t.Fatalf("WriteBatch = %v", err)
	}
	if inner.count() != 16 {
		t.Fatalf("delivered %d, want 16", inner.count())
	}
	inner.mu.Lock()
	for i, cf := range inner.accepted {
		if cf.Flow.Bytes != uint64(i) {
			inner.mu.Unlock()
			t.Fatalf("record %d has Bytes %d: replay broke FIFO order", i, cf.Flow.Bytes)
		}
	}
	inner.mu.Unlock()
	st := rs.Stats()
	if st.Delivered != 16 || st.Replayed != 12 || st.SpillDepth != 0 || st.Dropped != 0 {
		t.Fatalf("recovered stats = %+v", st)
	}
}

// TestSpillOverflowToDisk proves the mem→disk ordering rule: once any
// batch lands on disk, later batches go to disk too (never jumping the
// queue through memory), and replay preserves global order.
func TestSpillOverflowToDisk(t *testing.T) {
	dir := t.TempDir()
	inner := &flakySink{}
	rs, _ := newTestRetrySink(t, inner, RetryConfig{
		MaxRetries: -1,
		MemLimit:   6, // room for one 4-record batch, not two
		SpillPath:  filepath.Join(dir, "spill.jsonl"),
	})
	inner.setDown(true)
	for b := 0; b < 3; b++ {
		rs.WriteBatch(context.Background(), retryBatch(b*4, 4))
	}
	st := rs.Stats()
	if st.Spilled != 12 || st.DiskDepth != 8 || st.SpillDepth != 12 {
		t.Fatalf("outage stats = %+v (want 4 in mem, 8 on disk)", st)
	}
	if st.SpillBytes <= 0 {
		t.Fatal("SpillBytes not tracked")
	}
	inner.setDown(false)
	if err := rs.Flush(); err != nil {
		t.Fatalf("Flush = %v", err)
	}
	if inner.count() != 12 {
		t.Fatalf("delivered %d, want 12", inner.count())
	}
	inner.mu.Lock()
	defer inner.mu.Unlock()
	for i, cf := range inner.accepted {
		if cf.Flow.Bytes != uint64(i) {
			t.Fatalf("record %d has Bytes %d: mem/disk replay out of order", i, cf.Flow.Bytes)
		}
	}
	if st := rs.Stats(); st.SpillDepth != 0 || st.DiskDepth != 0 || st.SpillBytes != 0 {
		t.Fatalf("drained stats = %+v (spill file not truncated?)", st)
	}
	// Round-trip fidelity through the JSONL codec.
	got := inner.accepted[7]
	want := retryFlow(7)
	if !got.Flow.Timestamp.Equal(want.Flow.Timestamp) || got.Flow.SrcIP != want.Flow.SrcIP ||
		got.Flow.DstPort != want.Flow.DstPort || got.Flow.Proto != want.Flow.Proto ||
		got.Name != want.Name || got.ChainLen != want.ChainLen || got.Tier != want.Tier {
		t.Fatalf("spill round-trip mangled record:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestSpillBoundsDrop proves both bounds: a full memory queue with no disk
// drops (counted), and a full disk bound drops too.
func TestSpillBoundsDrop(t *testing.T) {
	inner := &flakySink{}
	rs, _ := newTestRetrySink(t, inner, RetryConfig{MaxRetries: -1, MemLimit: 4})
	inner.setDown(true)
	rs.WriteBatch(context.Background(), retryBatch(0, 4)) // fills mem
	rs.WriteBatch(context.Background(), retryBatch(4, 3)) // no disk: dropped
	rs.WriteBatch(context.Background(), retryBatch(7, 2)) // dropped
	st := rs.Stats()
	if st.Spilled != 4 || st.Dropped != 5 || st.DroppedBatches != 2 || st.SpillDepth != 4 {
		t.Fatalf("mem-bound stats = %+v", st)
	}

	dir := t.TempDir()
	rs2, _ := newTestRetrySink(t, &flakySink{down: true}, RetryConfig{
		MaxRetries: -1, MemLimit: -1,
		SpillPath:  filepath.Join(dir, "spill.jsonl"),
		SpillLimit: 1, // first append exceeds it; second is rejected
	})
	rs2.WriteBatch(context.Background(), retryBatch(0, 2))
	rs2.WriteBatch(context.Background(), retryBatch(2, 2))
	if st := rs2.Stats(); st.Spilled != 2 || st.Dropped != 2 || st.DroppedBatches != 1 {
		t.Fatalf("disk-bound stats = %+v", st)
	}
}

// TestSpillSurvivesRestart proves replay-on-recovery across process
// boundaries: a sink that dies with a backlog leaves a spill file the next
// boot adopts and replays.
func TestSpillSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spill.jsonl")

	inner := &flakySink{down: true}
	rs, _ := newTestRetrySink(t, inner, RetryConfig{MaxRetries: -1, MemLimit: -1, SpillPath: path})
	rs.WriteBatch(context.Background(), retryBatch(0, 5))
	rs.WriteBatch(context.Background(), retryBatch(5, 5))
	if err := rs.Close(); err == nil {
		t.Fatal("Close with an undelivered backlog should report it")
	}

	// "Next boot": a fresh wrapper over a healthy sink adopts the file.
	inner2 := &flakySink{}
	rs2, _ := newTestRetrySink(t, inner2, RetryConfig{SpillPath: path})
	if st := rs2.Stats(); st.DiskDepth != 10 {
		t.Fatalf("adopted DiskDepth = %d, want 10", st.DiskDepth)
	}
	if err := rs2.Flush(); err != nil {
		t.Fatalf("Flush = %v", err)
	}
	if inner2.count() != 10 {
		t.Fatalf("replayed %d, want 10", inner2.count())
	}
	for i, cf := range inner2.accepted {
		if cf.Flow.Bytes != uint64(i) {
			t.Fatalf("record %d has Bytes %d: cross-restart replay out of order", i, cf.Flow.Bytes)
		}
	}
	if err := rs2.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Fatalf("spill file not truncated after drain: %v / %d bytes", err, fi.Size())
	}
}

// TestSpillToleratesTornTail proves a crash mid-append (torn final line)
// does not poison the queue: the good prefix replays, the tail is ignored.
func TestSpillToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spill.jsonl")

	inner := &flakySink{down: true}
	rs, _ := newTestRetrySink(t, inner, RetryConfig{MaxRetries: -1, MemLimit: -1, SpillPath: path})
	rs.WriteBatch(context.Background(), retryBatch(0, 3))
	rs.disk.f.Sync()
	// Simulate the crash: append half a line by hand.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`[{"ts":"2026-01-01T00:00:00Z","src":"10.`)
	f.Close()

	inner2 := &flakySink{}
	rs2, _ := newTestRetrySink(t, inner2, RetryConfig{SpillPath: path})
	if st := rs2.Stats(); st.DiskDepth != 3 {
		t.Fatalf("DiskDepth = %d, want 3 (torn tail counted?)", st.DiskDepth)
	}
	if err := rs2.Flush(); err != nil {
		t.Fatalf("Flush = %v", err)
	}
	if inner2.count() != 3 {
		t.Fatalf("replayed %d, want 3", inner2.count())
	}
}

// TestRetrySinkPanicContainment proves an inner-sink panic is converted to
// a failed attempt — retried, then spilled — never escaping to the caller.
func TestRetrySinkPanicContainment(t *testing.T) {
	calls := 0
	inner := SinkFunc(func(cf CorrelatedFlow) {
		calls++
		panic("exporter bug")
	})
	rs, sleeps := newTestRetrySink(t, inner, RetryConfig{MaxRetries: 1})
	if err := rs.WriteBatch(context.Background(), retryBatch(0, 2)); err != nil {
		t.Fatalf("WriteBatch = %v (panic escaped?)", err)
	}
	st := rs.Stats()
	// Two attempts (original + 1 retry), each panicking on its first record.
	if st.PanicsContained != 2 || calls != 2 || *sleeps != 1 {
		t.Fatalf("panics/calls/sleeps = %d/%d/%d, want 2/2/1", st.PanicsContained, calls, *sleeps)
	}
	if st.Spilled != 2 || st.SpillDepth != 2 {
		t.Fatalf("stats = %+v (batch not spilled after contained panics)", st)
	}
}

// TestRetrySinkFailpoints proves the core.sink.write failpoint drives the
// retry/spill machinery like a real outage, and that it heals.
func TestRetrySinkFailpoints(t *testing.T) {
	defer fault.DisableAll()
	inner := &flakySink{}
	rs, _ := newTestRetrySink(t, inner, RetryConfig{MaxRetries: 1})
	// Budget 3: initial + retry fail and the batch spills; the next
	// write's replay burns the last and queues behind; then it heals.
	if err := fault.Enable("core.sink.write", "3*error(injected outage)"); err != nil {
		t.Fatal(err)
	}
	rs.WriteBatch(context.Background(), retryBatch(0, 3))
	if st := rs.Stats(); st.Spilled != 3 || st.Retries != 1 {
		t.Fatalf("during outage: %+v", st)
	}
	rs.WriteBatch(context.Background(), retryBatch(3, 3)) // replay fails; queues behind
	if st := rs.Stats(); st.SpillDepth != 6 {
		t.Fatalf("SpillDepth = %d, want 6", st.SpillDepth)
	}
	// Failpoint budget exhausted (self-disarmed): everything drains.
	rs.WriteBatch(context.Background(), retryBatch(6, 3))
	if inner.count() != 9 {
		t.Fatalf("delivered %d, want 9", inner.count())
	}
	st := rs.Stats()
	if st.SpillDepth != 0 || st.Replayed != 6 || st.Dropped != 0 {
		t.Fatalf("after recovery: %+v", st)
	}

	// Flush failpoint: absorbed, counted.
	if err := fault.Enable("core.sink.flush", "1*error(flush outage)"); err != nil {
		t.Fatal(err)
	}
	if err := rs.Flush(); err != nil {
		t.Fatalf("Flush = %v (injected flush error escaped)", err)
	}
	if st := rs.Stats(); st.FlushErrors != 1 {
		t.Fatalf("FlushErrors = %d, want 1", st.FlushErrors)
	}
}

// TestRetrySinkAttemptTimeout proves the per-attempt bound: a hung sink
// turns into a deadline error, not a wedged write worker.
func TestRetrySinkAttemptTimeout(t *testing.T) {
	hung := sinkWaitCtx{}
	rs, _ := newTestRetrySink(t, hung, RetryConfig{MaxRetries: -1, Timeout: 5 * time.Millisecond})
	start := time.Now()
	rs.WriteBatch(context.Background(), retryBatch(0, 1))
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("attempt not bounded: took %v", elapsed)
	}
	if st := rs.Stats(); st.Spilled != 1 {
		t.Fatalf("stats = %+v (timed-out batch should spill)", st)
	}
}

// sinkWaitCtx blocks until its context dies.
type sinkWaitCtx struct{}

func (sinkWaitCtx) WriteBatch(ctx context.Context, _ []CorrelatedFlow) error {
	<-ctx.Done()
	return ctx.Err()
}
func (sinkWaitCtx) Flush() error { return nil }
func (sinkWaitCtx) Close() error { return nil }

// TestRetrySinkCloseDrains proves Close makes a final delivery attempt and
// reaches the inner Close.
func TestRetrySinkCloseDrains(t *testing.T) {
	inner := &flakySink{down: true}
	rs, _ := newTestRetrySink(t, inner, RetryConfig{MaxRetries: -1})
	rs.WriteBatch(context.Background(), retryBatch(0, 3))
	inner.setDown(false)
	if err := rs.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	if inner.count() != 3 || !inner.closed {
		t.Fatalf("delivered %d / closed %v, want 3 / true", inner.count(), inner.closed)
	}
}
