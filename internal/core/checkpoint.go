package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cmap"
	"repro/internal/snapshot"
)

// Snapshot family codes: which map family a section belongs to. These are
// wire-format values — renumbering breaks existing snapshot files.
const (
	familyIPName    = 0
	familyNameCname = 1
)

// Snapshot generation codes (wire-format values, like the families).
const (
	genActive   = 0
	genInactive = 1
	genLong     = 2
)

// RestoreStats summarizes one snapshot restore: how many sections were
// applied, how many entries they carried, and how many of those were
// dropped because their stored expiry had already passed at load time.
type RestoreStats struct {
	Sections int
	Entries  int
	Expired  int
	// Created is the snapshot file's creation stamp (UnixNano).
	Created int64
}

// WriteSnapshot streams a checkpoint of the full correlation store to w:
// both map families, all generations and splits, both key spaces, with the
// typed expiries. It is safe to call while the pipeline is running — the
// underlying iteration read-locks one cmap shard at a time, so a checkpoint
// never freezes a map, only one stripe of one generation at a time. The
// result is a fuzzy snapshot: entries written or overwritten mid-iteration
// may or may not be included, which is exactly the guarantee a warm-restart
// cache needs (restore tolerates both staleness and duplication; the DNS
// stream re-asserts current truth within one TTL).
func (c *Correlator) WriteSnapshot(w io.Writer, created int64) error {
	sw, err := snapshot.NewWriter(w, created)
	if err != nil {
		return err
	}
	if err := c.fillSnapshot(sw); err != nil {
		return err
	}
	return sw.Close()
}

// Checkpoint writes a snapshot atomically to path (temp file + rename): a
// crash mid-write leaves the previous checkpoint intact.
func (c *Correlator) Checkpoint(path string) error {
	return snapshot.WriteFile(path, time.Now().UnixNano(), c.fillSnapshot)
}

// fillSnapshot writes both store families into an open snapshot writer.
func (c *Correlator) fillSnapshot(w *snapshot.Writer) error {
	if err := c.ipName.writeSections(w, familyIPName); err != nil {
		return err
	}
	return c.nameCname.writeSections(w, familyNameCname)
}

// writeSections emits one section run per (generation, split, key space)
// cell of the store, iterating shard by shard through cmap.AppendShard so
// only one shard stripe is read-locked at a time. The entry buffer is
// reused across shards; keys AppendShard returns are fresh copies, so
// handing them straight to the writer (which copies again into its payload)
// never aliases map-internal storage.
func (s *store) writeSections(w *snapshot.Writer, family uint8) error {
	gens := [...]struct {
		code uint8
		maps []*cmap.Map
	}{
		{genActive, s.active},
		{genInactive, s.inactive},
		{genLong, s.long},
	}
	var items []cmap.Item
	for _, gen := range gens {
		for split, m := range gen.maps {
			if m.Empty() {
				continue
			}
			for _, space := range [...]cmap.KeySpace{cmap.Binary, cmap.Strings} {
				var flags uint8
				if space == cmap.Binary {
					flags = snapshot.SectionFlagBinaryKeys
				}
				if err := w.Begin(family, gen.code, flags, uint32(split)); err != nil {
					return err
				}
				for sh := 0; sh < m.ShardCount(); sh++ {
					items = m.AppendShard(sh, space, items[:0])
					for i := range items {
						if err := w.Entry(items[i].Key, items[i].Value, items[i].Exp); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	return nil
}

// Restore loads a snapshot stream into the correlator's stores, fanning the
// CRC-validated sections out across one worker per fill lane. Entries whose
// stored expiry has already passed at now are dropped at load; every kept
// name string is re-interned through the owning fill lane's interner, so a
// restored store shares one backing string per distinct service name exactly
// as a live-filled store does. Split and shard placement are recomputed from
// the key hash, never trusted from the file, so a snapshot taken under one
// NumSplit/Lanes layout restores correctly into any other.
//
// Restore is meant for a correlator that has not started running. On a
// corrupt or truncated file it returns an error wrapping snapshot.ErrCorrupt
// with the stats of everything applied so far — sections are validated
// before they are handed to workers, so a partial restore is simply a less
// warm cache, never a wrong one.
func (c *Correlator) Restore(r io.Reader, now time.Time) (RestoreStats, error) {
	sr, err := snapshot.NewReader(r)
	if err != nil {
		return RestoreStats{}, err
	}
	st := RestoreStats{Created: sr.Created()}
	nowNs := now.UnixNano()

	workers := len(c.fillLanes)
	secCh := make(chan *snapshot.Section, workers)
	var wg sync.WaitGroup
	var applied, expired atomic.Int64
	var applyErr atomic.Pointer[error]
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sec := range secCh {
				a, x, err := c.applySection(sec, nowNs)
				applied.Add(int64(a))
				expired.Add(int64(x))
				if err != nil {
					applyErr.CompareAndSwap(nil, &err)
				}
			}
		}()
	}
	var readErr error
	for {
		sec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			readErr = err
			break
		}
		st.Sections++
		secCh <- sec
	}
	close(secCh)
	wg.Wait()
	st.Entries = int(applied.Load())
	st.Expired = int(expired.Load())
	if perr := applyErr.Load(); perr != nil {
		return st, *perr
	}
	return st, readErr
}

// applySection inserts one section's entries, skipping expired ones.
// Unknown families and generations (a future format writing cells this
// version does not know) are skipped whole, not errors: the snapshot header
// already gated on the format version, and dropping an unknown cell only
// costs warmth.
func (c *Correlator) applySection(sec *snapshot.Section, nowNs int64) (applied, expired int, err error) {
	var st *store
	switch sec.Family {
	case familyIPName:
		st = c.ipName
	case familyNameCname:
		st = c.nameCname
	default:
		return 0, 0, nil
	}
	if sec.Gen > genLong {
		return 0, 0, nil
	}
	binKeys := sec.BinaryKeys()
	err = sec.ForEach(func(key, value []byte, exp int64) error {
		if exp != 0 && nowNs > exp {
			expired++
			return nil
		}
		if binKeys && len(key) == 16 {
			k := [16]byte(key)
			h := ipHash(&k)
			in := c.fillLanes[c.fillLaneForHash(h)].in
			st.insertRestored(sec.Gen, h, k[:], "", in.intern(string(value)), exp, true)
		} else {
			h := cmap.HashBytes(key)
			in := c.fillLanes[c.fillLaneForHash(h)].in
			st.insertRestored(sec.Gen, h, nil, in.intern(string(key)), in.intern(string(value)), exp, false)
		}
		applied++
		return nil
	})
	return applied, expired, err
}

// insertRestored places one restored entry into the generation it was
// snapshotted from, at the split its hash labels under the current layout.
// A long-generation entry restored into a configuration without long maps
// enabled still lands in long — get probes all three generations
// unconditionally, so it stays reachable until the next clear-up.
func (s *store) insertRestored(gen uint8, h uint32, binKey []byte, strKey, value string, exp int64, bin bool) {
	var maps []*cmap.Map
	switch gen {
	case genInactive:
		maps = s.inactive
	case genLong:
		maps = s.long
	default:
		maps = s.active
	}
	m := maps[s.splitFor(h)]
	if bin {
		m.SetBytesHashExpire(h, binKey, value, exp)
		return
	}
	m.SetHashExpire(h, strKey, value, exp)
}

// restoreFromFile is New's restore-on-boot hook: a missing file is a normal
// cold start, anything else records the restore outcome for RestoreResult
// and the stats counters. Errors fall back to running with whatever state
// was applied (validated sections only) — a correlator must come up even
// when its checkpoint was truncated by a crash.
func (c *Correlator) restoreFromFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			c.restoreErr = fmt.Errorf("core: restore %s: %w", path, err)
		}
		return
	}
	defer f.Close()
	st, err := c.Restore(f, time.Now())
	c.restoreStats = st
	if err != nil {
		c.restoreErr = fmt.Errorf("core: restore %s: %w", path, err)
	}
}

// RestoreResult reports the outcome of New's restore-on-boot: the zero
// RestoreStats and a nil error mean no snapshot was found (cold start). A
// non-nil error with non-zero stats is a partial restore — the correlator
// is running on the validated prefix of a damaged checkpoint.
func (c *Correlator) RestoreResult() (RestoreStats, error) {
	return c.restoreStats, c.restoreErr
}
