package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/netflow"
	"repro/internal/stream"
)

// Stage-worker component names under supervision. Services appear as
// "service:<Name>".
const (
	compFill       = "fill"
	compLook       = "look"
	compWrite      = "write"
	compCheckpoint = "checkpoint"
)

// Failpoints planted in the pipeline core: core.fill.record and
// core.look.record poison one record (arm with "N*panic" or "N*error" —
// an injected error panics too, so either spec exercises containment).
// The sink-side points live in retrysink.go.
var (
	fpFillRecord = fault.New("core.fill.record")
	fpLookRecord = fault.New("core.look.record")
)

// compHealth is one supervised component's counters.
type compHealth struct {
	name     string
	panics   atomic.Uint64
	restarts atomic.Uint64
}

// supervisor tracks panic/restart counters per supervised component. A
// component registers lazily on first touch; Run pre-registers the stage
// workers and every service so the metrics families exist from the start.
type supervisor struct {
	mu    sync.Mutex
	comps map[string]*compHealth
}

// comp returns (creating if needed) the named component's health block.
func (s *supervisor) comp(name string) *compHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.comps == nil {
		s.comps = map[string]*compHealth{}
	}
	h, ok := s.comps[name]
	if !ok {
		h = &compHealth{name: name}
		s.comps[name] = h
	}
	return h
}

// SupervisedStatus is one component's externally visible supervision state.
type SupervisedStatus struct {
	// Name is the component: "fill", "look", "write", "checkpoint", or
	// "service:<name>".
	Name string `json:"name"`
	// Panics counts contained panics in the component.
	Panics uint64 `json:"panics"`
	// Restarts counts supervised restarts of the component's goroutine.
	Restarts uint64 `json:"restarts"`
}

// snapshot returns every component's counters, sorted by name.
func (s *supervisor) snapshot() []SupervisedStatus {
	s.mu.Lock()
	hs := make([]*compHealth, 0, len(s.comps))
	for _, h := range s.comps {
		hs = append(hs, h)
	}
	s.mu.Unlock()
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	out := make([]SupervisedStatus, len(hs))
	for i, h := range hs {
		out[i] = SupervisedStatus{Name: h.name, Panics: h.panics.Load(), Restarts: h.restarts.Load()}
	}
	return out
}

// guard runs fn, containing a panic: the panic is counted against h and
// swallowed. It reports whether fn completed normally.
func guard(h *compHealth, fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			h.panics.Add(1)
		}
	}()
	fn()
	return true
}

// guardErr runs fn, converting a panic into a counted error — the shape
// sink calls need, where the caller must learn the batch did not land.
func guardErr(h *compHealth, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			h.panics.Add(1)
			err = fmt.Errorf("core: %s: contained panic: %v", h.name, r)
		}
	}()
	return fn()
}

// superviseLoop runs body until it returns normally, restarting it with
// exponential backoff after each contained panic. Worker bodies return
// normally when their stage queue closes, so a healthy drain always ends
// the loop; the backoff only engages on the abnormal path.
func (c *Correlator) superviseLoop(h *compHealth, body func()) {
	backoff := c.cfg.RestartBackoffMin
	for {
		if guard(h, body) {
			return
		}
		h.restarts.Add(1)
		time.Sleep(backoff)
		backoff *= 2
		if backoff > c.cfg.RestartBackoffMax {
			backoff = c.cfg.RestartBackoffMax
		}
	}
}

// ingestGuarded is the fill worker's contained ingestBatch. ingestBatch
// flushes its stats tally only after the whole batch lands, and store
// inserts are idempotent last-write-wins puts, so on a contained panic the
// batch is reprocessed record-at-a-time: every healthy record is applied
// (and counted) exactly once, and only the poisoned record is dropped.
func (c *Correlator) ingestGuarded(h *compHealth, batch []stream.DNSRecord, in *interner, buf *fillBuf) {
	if guard(h, func() { c.ingestBatch(batch, in, buf) }) {
		return
	}
	for i := range batch {
		if !guard(h, func() { c.ingestBatch(batch[i:i+1], in, buf) }) {
			c.stats.poisoned.Add(1)
		}
	}
}

// correlateGuarded is the look worker's contained per-record correlation.
// It reports whether the record correlated normally; a contained panic
// leaves cf unusable and the caller drops that one output slot. The
// failpoint fires before any tally mutation, so a poisoned record is
// invisible in the flow counters and visible only in Poisoned/Panics.
func (c *Correlator) correlateGuarded(h *compHealth, cf *CorrelatedFlow, fr *netflow.FlowRecord, tally *lookTally) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			h.panics.Add(1)
		}
	}()
	if err := fpLookRecord.Inject(); err != nil {
		panic(err)
	}
	c.correlateInto(cf, fr, tally)
	return true
}
