package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cmap"
	"repro/internal/dnsname"
	"repro/internal/dnswire"
	"repro/internal/netflow"
	"repro/internal/queue"
	"repro/internal/stream"
)

// CorrelatedFlow is the output record: the original flow annotated with the
// service name FlowDNS resolved for its source IP. It is what the Write
// workers hand to the sink and what the ISP joins with BGP data downstream.
type CorrelatedFlow struct {
	Flow netflow.FlowRecord
	// Name is the resolved service/domain name, "" when the lookup missed
	// (result = NULL in Algorithm 2).
	Name string
	// ChainLen counts NAME-CNAME hops taken (0 = the IP-NAME hit was final).
	ChainLen int
	// Tier records which generation satisfied the IP-NAME lookup.
	Tier Tier
	// EnqueuedAt is the wall-clock instant the flow entered the LookUp
	// queue (stamped by OfferFlow/OfferFlowBatch; zero for synchronous
	// CorrelateFlow calls). The write-delay metric — time from flow arrival
	// to the sink write, spanning the LookUp wait, the correlation, and the
	// write queue — derives from it.
	EnqueuedAt time.Time
}

// Correlated reports whether a name was resolved.
func (c *CorrelatedFlow) Correlated() bool { return c.Name != "" }

// ErrAlreadyRunning is returned by Run when the correlator has already been
// run; a Correlator's lifecycle is single-use.
var ErrAlreadyRunning = errors.New("core: correlator already running")

// flowEntry is one LookUp queue item: the flow plus its arrival instant.
type flowEntry struct {
	fr netflow.FlowRecord
	at time.Time
}

// ingestBatchSize bounds how many records a FillUp/LookUp worker drains per
// queue round trip; batching here cuts per-record channel overhead without
// adding latency (workers never wait for a batch to fill).
const ingestBatchSize = 128

// Option configures optional Correlator behaviour at construction.
type Option func(*Correlator)

// WithSink routes correlated flows to s. Without this option output is
// discarded (pure measurement runs). The correlator owns the sink's
// lifecycle from Run's perspective: Flush then Close at the end of the
// drain.
func WithSink(s Sink) Option {
	return func(c *Correlator) {
		if s != nil {
			c.sink = s
		}
	}
}

// WithSources attaches input streams. Run launches every source with the
// run context and the correlator as the ingest façade; when all sources
// complete, the pipeline drains and Run returns.
func WithSources(srcs ...stream.Source) Option {
	return func(c *Correlator) {
		for _, s := range srcs {
			if s != nil {
				c.sources = append(c.sources, s)
			}
		}
	}
}

// Service is an auxiliary long-running component the correlator hosts for
// the duration of a run — the query-plane HTTP server, the window store's
// maintenance loop. Run launches every attached service alongside the
// pipeline workers and stops it (by cancelling its context) only after the
// drain completes and the sink has closed, so services observe the final
// flushed state before shutting down. Services run supervised: a Serve
// that panics or returns while the run is live is restarted with
// exponential backoff (Config.RestartBackoffMin/Max), counted in the
// per-component Panics/Restarts stats. A service's last abnormal error
// never stops the pipeline; it is joined into Run's result.
type Service interface {
	// Name labels the service in errors.
	Name() string
	// Serve runs until ctx is done; its return is joined into Run's error.
	Serve(ctx context.Context) error
}

// WithServices attaches auxiliary services to the run lifecycle.
func WithServices(svcs ...Service) Option {
	return func(c *Correlator) {
		for _, s := range svcs {
			if s != nil {
				c.services = append(c.services, s)
			}
		}
	}
}

// WithMetrics invokes observe with a stats snapshot every interval while
// Run is active, plus once at the end of the drain — the hook the daemon
// uses for periodic logging and exporters use for scraping.
func WithMetrics(interval time.Duration, observe func(Stats)) Option {
	return func(c *Correlator) {
		if interval > 0 && observe != nil {
			c.metricsInterval = interval
			c.observe = observe
		}
	}
}

// Correlator is the FlowDNS pipeline of Figure 1. Construct with New, feed
// it via the stream.Ingest façade (OfferDNS/OfferFlow and their batch
// forms) or attach Sources, run the workers with Run(ctx) — cancellation
// stops intake and drains every stage through the sink — and read Stats
// at any time. The deterministic IngestDNS/CorrelateFlow methods bypass
// the queues for offline replays.
type Correlator struct {
	cfg      Config
	sink     Sink
	sources  []stream.Source
	services []Service

	// draining closes the moment Run begins its graceful drain; Draining()
	// is the flag HTTP handlers consult to stop racing the sealing path.
	draining chan struct{}

	metricsInterval time.Duration
	observe         func(Stats)

	ipName    *store // A/AAAA answer(IP) -> query name
	nameCname *store // CNAME answer(canonical) -> query (alias)

	// fillLanes are the sharded FillUp stage, mirroring the correlation
	// lanes: each fill lane owns its own queue, its own workers, and its
	// own name interner, and DNS records are partitioned onto fill lanes by
	// the same ipHash of the A/AAAA answer address that places the entry in
	// the store. With FillLanes == Lanes every fill lane therefore writes
	// only its lane's slice of the store splits, so concurrent FillUp
	// workers never contend on the same generation shards — the put-side
	// twin of the lane-major lookup layout.
	fillLanes []*fillLane
	// lanes are the sharded LookUp stage: each lane owns its own lookup
	// queue and its own workers, and flows are partitioned onto lanes by a
	// hash of the destination IP (same dst IP → same lane). The store's
	// lane-major split layout aligns with this partition, so
	// destination-keyed lookups from different lanes never touch the same
	// generation shards.
	lanes  []*corrLane
	writeQ *queue.Queue[CorrelatedFlow]

	// stagePool recycles the per-lane staging buffers OfferFlowBatch uses
	// to partition a batch in one pass.
	stagePool sync.Pool
	// dnsStagePool does the same for OfferDNSBatch's fill-lane partition.
	dnsStagePool sync.Pool
	// fillBufPool recycles the item-assembly scratch the public
	// IngestDNSBatch uses; lane workers hold a private buffer instead.
	fillBufPool sync.Pool

	started atomic.Bool

	// restoreStats / restoreErr record the outcome of New's restore-on-boot
	// (see RestoreResult); written once during construction, read-only after.
	restoreStats RestoreStats
	restoreErr   error

	// sinkErr holds the first WriteBatch error; once set, write workers
	// drain without writing and Run begins shutdown.
	sinkErr     atomic.Pointer[error]
	sinkFailed  chan struct{}
	sinkErrOnce sync.Once

	// sup tracks panic containment and supervised restarts per component
	// (stage workers, checkpointer, services).
	sup supervisor

	stats statsCounters
}

// New builds a Correlator with the given config. With no options the
// correlator discards output and has no sources.
func New(cfg Config, opts ...Option) *Correlator {
	cfg = cfg.normalized()
	c := &Correlator{
		cfg:  cfg,
		sink: DiscardSink{},
		ipName: newStore(storeConfig{
			splits:        cfg.NumSplit,
			lanes:         cfg.Lanes,
			interval:      cfg.AClearUpInterval,
			rotation:      !cfg.DisableRotation,
			clearUp:       !cfg.DisableClearUp,
			longEnabled:   !cfg.DisableLong && !cfg.DisableClearUp,
			exactTTL:      cfg.ExactTTL,
			sweepInterval: cfg.ExactTTLSweepInterval,
		}),
		// Table 1 lists NAME-CNAME without a split subscript: CNAME volume
		// is far below A/AAAA volume, so one split suffices.
		nameCname: newStore(storeConfig{
			splits:        1,
			interval:      cfg.CClearUpInterval,
			rotation:      !cfg.DisableRotation,
			clearUp:       !cfg.DisableClearUp,
			longEnabled:   !cfg.DisableLong && !cfg.DisableClearUp,
			exactTTL:      cfg.ExactTTL,
			sweepInterval: cfg.ExactTTLSweepInterval,
		}),
		fillLanes:  make([]*fillLane, cfg.FillLanes),
		lanes:      make([]*corrLane, cfg.Lanes),
		writeQ:     queue.New[CorrelatedFlow](cfg.WriteQueueCap),
		sinkFailed: make(chan struct{}),
		draining:   make(chan struct{}),
	}
	// sampler is shared by every stage queue: each lane queue measures its
	// own fill against the same watermarks, so a single hot lane starts
	// shedding without waiting for the whole stage to drown.
	sampler := queue.SamplerConfig{
		LowWater:  cfg.SampleLowWater,
		HighWater: cfg.SampleHighWater,
		MaxShed:   cfg.SampleMaxShed,
	}
	c.writeQ.SetSampler(sampler)
	// FillQueueCap is the total fill buffer, divided evenly across fill
	// lanes (same contract as LookQueueCap below).
	perFillCap := cfg.FillQueueCap / cfg.FillLanes
	if perFillCap < 1 {
		perFillCap = 1
	}
	for i := range c.fillLanes {
		c.fillLanes[i] = &fillLane{
			q:  queue.New[stream.DNSRecord](perFillCap),
			in: newInterner(defaultInternCap),
		}
		c.fillLanes[i].q.SetSampler(sampler)
	}
	// LookQueueCap is the total lookup buffer, divided evenly across
	// lanes, so the stage's memory footprint and the configured loss
	// bound do not scale with the lane count. The flip side: a burst to
	// one hot destination only gets its lane's share — raise
	// LookQueueCap (and watch LaneDepths) for skewed traffic.
	perLaneCap := cfg.LookQueueCap / cfg.Lanes
	if perLaneCap < 1 {
		perLaneCap = 1
	}
	for i := range c.lanes {
		c.lanes[i] = &corrLane{q: queue.New[flowEntry](perLaneCap)}
		c.lanes[i].q.SetSampler(sampler)
	}
	laneCount := len(c.lanes)
	c.stagePool.New = func() any {
		return &laneStage{perLane: make([][]flowEntry, laneCount)}
	}
	fillLaneCount := len(c.fillLanes)
	c.dnsStagePool.New = func() any {
		return &dnsStage{perLane: make([][]stream.DNSRecord, fillLaneCount)}
	}
	c.fillBufPool.New = func() any { return new(fillBuf) }
	for _, opt := range opts {
		if opt != nil {
			opt(c)
		}
	}
	// Restore-on-boot: repopulate the stores from the last checkpoint, if
	// one exists. This runs after the fill lanes are built (restored names
	// re-intern through the lane interners) and before any worker starts,
	// so the restore itself is the only writer.
	if cfg.SnapshotPath != "" {
		c.restoreFromFile(cfg.SnapshotPath)
	}
	return c
}

// corrLane is one correlation lane: an independent slice of the LookUp
// stage with its own queue; its workers are launched by Run.
type corrLane struct {
	q *queue.Queue[flowEntry]
}

// fillLane is one fill lane: an independent slice of the FillUp stage with
// its own queue and name interner; its workers are launched by Run.
type fillLane struct {
	q  *queue.Queue[stream.DNSRecord]
	in *interner
}

// dnsStage is the reusable per-lane staging buffer OfferDNSBatch partitions
// a DNS batch into.
type dnsStage struct {
	perLane [][]stream.DNSRecord
}

// fillBuf is the reusable scratch one IngestDNSBatch call assembles its
// store items in: the 16-byte binary keys (backing storage the items alias)
// and the Active/Long item groups handed to store.putItems.
type fillBuf struct {
	keys   [][16]byte
	active []cmap.Item
	long   []cmap.Item
	sc     dispatchScratch
}

// laneStage is the reusable per-lane staging buffer OfferFlowBatch
// partitions a flow batch into.
type laneStage struct {
	perLane [][]flowEntry
}

// ipHash hashes the 16-byte canonical address form in two 64-bit loads
// plus a SplitMix64-style finalizer — a fraction of the cost of hashing 16
// bytes through byte-at-a-time FNV on the per-flow path. Every operation
// on binary IP keys (lane selection, store split labeling, shard
// selection, fills) must use this same hash; that shared value is what
// makes lane ↔ split-slice ownership line up.
func ipHash(key *[16]byte) uint32 {
	lo := binary.LittleEndian.Uint64(key[:8])
	hi := binary.LittleEndian.Uint64(key[8:])
	x := lo ^ bits.RotateLeft64(hi, 32)
	x *= 0x9E3779B97F4A7C15
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return uint32(x)
}

// laneFor returns the correlation lane owning addr: the low bits of the
// shared IP-key hash, exactly as the store's lane-major split layout uses
// them.
func (c *Correlator) laneFor(addr netip.Addr) int {
	if len(c.lanes) == 1 {
		return 0
	}
	a16 := addr.As16()
	return int(ipHash(&a16) % uint32(len(c.lanes)))
}

// fillLaneFor returns the fill lane owning rec. A/AAAA records route by the
// same ipHash of the answer address that labels their store split, so with
// FillLanes == Lanes each fill lane writes only its own split slice; the
// offer path materializes the typed address first (typeAnswerAddr), so a
// string-only producer's records route identically to a wire source's for
// the same IP. Records without a parsable address (CNAMEs, garbage
// answers) route by the answer-string hash — any lane ingests them
// correctly; only the contention alignment is lost.
func (c *Correlator) fillLaneFor(rec *stream.DNSRecord) int {
	if len(c.fillLanes) == 1 {
		return 0
	}
	if rec.Addr.IsValid() {
		a16 := rec.Addr.As16()
		return c.fillLaneForHash(ipHash(&a16))
	}
	return c.fillLaneForHash(cmap.Hash(rec.Answer))
}

// fillLaneForHash is fillLaneFor when the caller already has the key hash.
func (c *Correlator) fillLaneForHash(h uint32) int {
	return int(h % uint32(len(c.fillLanes)))
}

// typeAnswerAddr materializes the typed address of a string-only A/AAAA
// record in place: one parse at offer time instead of one per ingest, and
// — because the fill-lane partition keys on the typed address — records
// for the same IP land on the same lane no matter which producer built
// them. Unparsable answers are left as-is (the §3.2 filter rejects them at
// ingest).
func typeAnswerAddr(rec *stream.DNSRecord) {
	if rec.Addr.IsValid() || rec.Answer == "" {
		return
	}
	if rec.RType == dnswire.TypeA || rec.RType == dnswire.TypeAAAA {
		if addr, err := netip.ParseAddr(rec.Answer); err == nil {
			rec.Addr = addr
		}
	}
}

// Lanes returns the number of correlation lanes in effect.
func (c *Correlator) Lanes() int { return len(c.lanes) }

// FillLanes returns the number of fill lanes in effect.
func (c *Correlator) FillLanes() int { return len(c.fillLanes) }

// Config returns the normalized configuration in effect.
func (c *Correlator) Config() Config { return c.cfg }

// --- stream.Ingest façade (live pipeline) ---

// OfferDNS places a DNS record on its fill lane's FillUp queue; a false
// return is a dropped record (stream loss). The lane is chosen by the
// answer-address hash, so records for the same address always land on the
// same lane.
func (c *Correlator) OfferDNS(rec stream.DNSRecord) bool {
	typeAnswerAddr(&rec)
	return c.fillLanes[c.fillLaneFor(&rec)].q.Offer(rec)
}

// OfferDNSBatch partitions a batch of DNS records onto their fill lanes —
// one pass through reusable staging buffers, as OfferFlowBatch does for
// flows — and returns how many were accepted.
func (c *Correlator) OfferDNSBatch(recs []stream.DNSRecord) int {
	if len(recs) == 0 {
		return 0
	}
	if len(c.fillLanes) == 1 {
		return c.fillLanes[0].q.OfferBatch(recs)
	}
	st := c.dnsStagePool.Get().(*dnsStage)
	for i := range recs {
		r := recs[i]
		typeAnswerAddr(&r)
		l := c.fillLaneFor(&r)
		st.perLane[l] = append(st.perLane[l], r)
	}
	accepted := 0
	for l := range st.perLane {
		if len(st.perLane[l]) == 0 {
			continue
		}
		accepted += c.fillLanes[l].q.OfferBatch(st.perLane[l])
		st.perLane[l] = st.perLane[l][:0]
	}
	c.dnsStagePool.Put(st)
	return accepted
}

// OfferFlow places a flow on its correlation lane's LookUp queue, stamping
// its arrival instant; a false return is a dropped record (stream loss).
// The lane is chosen by a hash of the destination IP, so flows to the same
// destination always land on the same lane.
func (c *Correlator) OfferFlow(fr netflow.FlowRecord) bool {
	return c.lanes[c.laneFor(fr.DstIP)].q.Offer(flowEntry{fr: fr, at: time.Now()})
}

// OfferFlowBatch partitions a batch of flows onto their correlation lanes —
// one arrival stamp for the whole batch — and returns how many were
// accepted. Partitioning is one pass through reusable staging buffers, so
// the offer cost stays amortized per batch, not per record.
func (c *Correlator) OfferFlowBatch(frs []netflow.FlowRecord) int {
	if len(frs) == 0 {
		return 0
	}
	now := time.Now()
	st := c.stagePool.Get().(*laneStage)
	for i := range frs {
		l := c.laneFor(frs[i].DstIP)
		st.perLane[l] = append(st.perLane[l], flowEntry{fr: frs[i], at: now})
	}
	accepted := 0
	for l := range st.perLane {
		if len(st.perLane[l]) == 0 {
			continue
		}
		accepted += c.lanes[l].q.OfferBatch(st.perLane[l])
		st.perLane[l] = st.perLane[l][:0]
	}
	c.stagePool.Put(st)
	return accepted
}

var _ stream.Ingest = (*Correlator)(nil)

// QueueDepths reports the current occupancy of the three stage queues —
// the "buffer usage" the paper's operators watch to keep loss at zero. The
// look depth aggregates every correlation lane; LaneDepths has the
// per-lane breakdown.
func (c *Correlator) QueueDepths() (fill, look, write int) {
	for _, l := range c.fillLanes {
		fill += l.q.Len()
	}
	for _, l := range c.lanes {
		look += l.q.Len()
	}
	return fill, look, c.writeQ.Len()
}

// LaneDepths reports each correlation lane's lookup-queue occupancy — the
// skew monitor for the dst-IP partition (a hot destination shows up as one
// deep lane).
func (c *Correlator) LaneDepths() []int {
	out := make([]int, len(c.lanes))
	for i, l := range c.lanes {
		out[i] = l.q.Len()
	}
	return out
}

// FillLaneFor reports which fill lane rec routes to — the partition
// inspector behind FillLaneDepths skew debugging (and the repo benchmarks'
// lane-local batch construction).
func (c *Correlator) FillLaneFor(rec *stream.DNSRecord) int { return c.fillLaneFor(rec) }

// FillLaneDepths reports each fill lane's queue occupancy — the skew
// monitor for the answer-address partition.
func (c *Correlator) FillLaneDepths() []int {
	out := make([]int, len(c.fillLanes))
	for i, l := range c.fillLanes {
		out[i] = l.q.Len()
	}
	return out
}

// Run executes the pipeline: it launches the FillUp, LookUp, and Write
// workers plus every attached source, then blocks until one of
//
//   - ctx is cancelled (graceful shutdown request),
//   - all attached sources complete (end of finite input),
//   - a source fails (abnormal stream death must not leave the pipeline
//     running blind), or
//   - the sink fails (first WriteBatch error)
//
// and performs a graceful drain: sources stop, every stage queue is closed
// and drained in order, in-flight records reach the sink, and the sink is
// flushed and closed. Run returns source and sink errors joined;
// cancellation itself is a clean shutdown, not an error. A Correlator runs
// at most once.
func (c *Correlator) Run(ctx context.Context) error {
	if !c.started.CompareAndSwap(false, true) {
		return ErrAlreadyRunning
	}

	var wgFill, wgLook, wgWrite sync.WaitGroup
	// FillUp workers are divided evenly across fill lanes (at least one per
	// lane), exactly as LookUp workers are across correlation lanes: a
	// worker drains only its own lane's queue and ingests whole batches, so
	// the clear-up check, the stats updates, and the shard-lock traffic all
	// amortize per batch instead of per record.
	baseFill := c.cfg.FillUpWorkers / len(c.fillLanes)
	extraFill := c.cfg.FillUpWorkers % len(c.fillLanes)
	if baseFill < 1 {
		baseFill, extraFill = 1, 0
	}
	for li, lane := range c.fillLanes {
		workersPerLane := baseFill
		if li < extraFill {
			workersPerLane++
		}
		for i := 0; i < workersPerLane; i++ {
			wgFill.Add(1)
			go func(lane *fillLane) {
				defer wgFill.Done()
				h := c.sup.comp(compFill)
				batch := make([]stream.DNSRecord, 0, ingestBatchSize)
				var buf fillBuf // worker-private assembly scratch
				c.superviseLoop(h, func() {
					for {
						var ok bool
						batch, ok = lane.q.TakeBatch(batch[:0], ingestBatchSize, 0)
						if !ok {
							return
						}
						c.ingestGuarded(h, batch, lane.in, &buf)
					}
				})
			}(lane)
		}
	}
	// LookUp workers are divided evenly across lanes (at least one per
	// lane): a worker drains only its own lane's queue, so two workers
	// never contend on one queue unless the operator asked for more
	// workers than lanes. The handoff to the Write stage uses blocking
	// PutBatch, not the dropping OfferBatch: a flow accepted into a lane
	// is already part of the pipeline and must reach the sink — loss is
	// accounted only at intake. This also makes the drain lossless: a full
	// lane queue at cancellation backpressures into the Write workers
	// instead of overflowing the write queue.
	baseWorkers := c.cfg.LookUpWorkers / len(c.lanes)
	extraWorkers := c.cfg.LookUpWorkers % len(c.lanes)
	if baseWorkers < 1 {
		// Fewer workers than lanes: every lane still needs one (a lane
		// without a worker would never drain), so the effective total is
		// the lane count.
		baseWorkers, extraWorkers = 1, 0
	}
	for li, lane := range c.lanes {
		workersPerLane := baseWorkers
		if li < extraWorkers {
			workersPerLane++ // distribute the remainder; the configured total is honored
		}
		for i := 0; i < workersPerLane; i++ {
			wgLook.Add(1)
			go func(lane *corrLane) {
				defer wgLook.Done()
				h := c.sup.comp(compLook)
				batch := make([]flowEntry, 0, ingestBatchSize)
				out := make([]CorrelatedFlow, 0, ingestBatchSize)
				var tally lookTally
				c.superviseLoop(h, func() {
					for {
						var ok bool
						batch, ok = lane.q.TakeBatch(batch[:0], ingestBatchSize, 0)
						if !ok {
							return
						}
						out = out[:0]
						var poisoned uint64
						for i := range batch {
							out = append(out, CorrelatedFlow{})
							cf := &out[len(out)-1]
							// A record whose correlation panics drops that one
							// output slot — not the batch, not the worker.
							if !c.correlateGuarded(h, cf, &batch[i].fr, &tally) {
								out = out[:len(out)-1]
								poisoned++
								continue
							}
							cf.EnqueuedAt = batch[i].at
						}
						tally.flush(&c.stats)
						if poisoned != 0 {
							c.stats.poisoned.Add(poisoned)
						}
						c.writeQ.PutBatch(out)
					}
				})
			}(lane)
		}
	}
	// The drain must finish even after ctx is cancelled: in-flight records
	// belong to the sink, so sink writes run under an uncancellable child.
	writeCtx := context.WithoutCancel(ctx)
	for i := 0; i < c.cfg.WriteWorkers; i++ {
		wgWrite.Add(1)
		go func() {
			defer wgWrite.Done()
			h := c.sup.comp(compWrite)
			batch := make([]CorrelatedFlow, 0, c.cfg.WriteBatchSize)
			c.superviseLoop(h, func() {
				for {
					var ok bool
					batch, ok = c.writeQ.TakeBatch(batch[:0], c.cfg.WriteBatchSize, c.cfg.WriteFlushInterval)
					if !ok {
						return
					}
					now := time.Now()
					for i := range batch {
						if !batch[i].EnqueuedAt.IsZero() {
							c.observeWriteDelay(now.Sub(batch[i].EnqueuedAt))
						}
					}
					if c.sinkErr.Load() != nil {
						continue // sink already failed: drain without writing
					}
					// A panicking sink is contained and handled like a sink
					// error: the run shuts down cleanly instead of crashing.
					if err := guardErr(h, func() error { return c.sink.WriteBatch(writeCtx, batch) }); err != nil {
						c.failSink(err)
						continue
					}
					c.stats.written.Add(uint64(len(batch)))
					// Push buffered sink output down to the writer whenever the
					// flush-interval timer fired (partial batch) or no more
					// records are imminent (queue drained) — so
					// WriteFlushInterval bounds end-to-end latency even when a
					// burst ends on an exactly-full batch or WriteBatchSize is
					// 1. Under sustained load batches are full and the queue
					// non-empty, so the buffer amortizes naturally.
					if len(batch) < c.cfg.WriteBatchSize || c.writeQ.Len() == 0 {
						if err := guardErr(h, c.sink.Flush); err != nil {
							c.failSink(err)
						}
					}
				}
			})
		}()
	}

	// Sources run under their own cancellable context so that sink
	// failure, source failure, and source completion can stop intake
	// before ctx itself is done.
	srcCtx, stopSources := context.WithCancel(ctx)
	defer stopSources()
	var wgSrc sync.WaitGroup
	var srcFailedOnce sync.Once
	srcFailed := make(chan struct{})
	srcErrs := make([]error, len(c.sources))
	for i, src := range c.sources {
		wgSrc.Add(1)
		go func(i int, src stream.Source) {
			defer wgSrc.Done()
			if err := src.Run(srcCtx, c); err != nil {
				srcErrs[i] = err
				// Fail fast: a source that dies abnormally must not leave
				// the pipeline running blind until process exit.
				srcFailedOnce.Do(func() { close(srcFailed) })
			}
		}(i, src)
	}
	var sourcesDone chan struct{}
	if len(c.sources) > 0 {
		sourcesDone = make(chan struct{})
		go func() {
			wgSrc.Wait()
			close(sourcesDone)
		}()
	}

	// The background checkpointer owns the periodic snapshot writes for the
	// whole run; the final checkpoint after the drain happens on this
	// goroutine's exit path below, so two Checkpoint calls never overlap.
	var wgCkpt sync.WaitGroup
	ckptStop := make(chan struct{})
	if c.cfg.SnapshotPath != "" {
		wgCkpt.Add(1)
		go func() {
			defer wgCkpt.Done()
			h := c.sup.comp(compCheckpoint)
			ticker := time.NewTicker(c.cfg.SnapshotEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					// A panic inside the checkpoint write path (injected or
					// real) is contained and counted as a failed checkpoint;
					// the previous on-disk generation stays good either way.
					if err := guardErr(h, func() error { return c.Checkpoint(c.cfg.SnapshotPath) }); err != nil {
						c.stats.checkpointErrors.Add(1)
					} else {
						c.stats.checkpoints.Add(1)
					}
				case <-ckptStop:
					return
				}
			}
		}()
	}

	// Services outlive the drain: the query plane keeps answering (and the
	// store keeps maintaining) while the pipeline flushes, and stops only
	// after the sink has closed — so a service shutdown snapshot sees the
	// final persisted state. WithoutCancel detaches them from the caller's
	// cancellation; svcStop is the lifecycle's own switch.
	svcCtx, svcStop := context.WithCancel(context.WithoutCancel(ctx))
	defer svcStop()
	var wgSvc sync.WaitGroup
	svcErrs := make([]error, len(c.services))
	for i, svc := range c.services {
		wgSvc.Add(1)
		go func(i int, svc Service) {
			defer wgSvc.Done()
			// Supervised serve loop: a service that panics or returns while
			// the run is still live is restarted with exponential backoff
			// instead of leaving the pipeline without its query plane or
			// store maintenance. The last abnormal error is still joined
			// into Run's result so a flapping service is never silent.
			h := c.sup.comp("service:" + svc.Name())
			backoff := c.cfg.RestartBackoffMin
			var lastErr error
			for {
				if err := guardErr(h, func() error { return svc.Serve(svcCtx) }); err != nil {
					lastErr = err
				}
				if svcCtx.Err() != nil {
					break
				}
				h.restarts.Add(1)
				select {
				case <-svcCtx.Done():
				case <-time.After(backoff):
				}
				if svcCtx.Err() != nil {
					break
				}
				backoff *= 2
				if backoff > c.cfg.RestartBackoffMax {
					backoff = c.cfg.RestartBackoffMax
				}
			}
			if lastErr != nil {
				svcErrs[i] = fmt.Errorf("core: service %s: %w", svc.Name(), lastErr)
			}
		}(i, svc)
	}

	var wgMetrics sync.WaitGroup
	metricsStop := make(chan struct{})
	if c.observe != nil {
		wgMetrics.Add(1)
		go func() {
			defer wgMetrics.Done()
			ticker := time.NewTicker(c.metricsInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					c.observe(c.Stats())
				case <-metricsStop:
					return
				}
			}
		}()
	}

	select {
	case <-ctx.Done():
	case <-c.sinkFailed:
	case <-srcFailed:
	case <-sourcesDone:
	}
	close(c.draining)

	// Graceful drain: stop intake, then close and drain stage by stage.
	// Every lane queue closes before the write queue does, and the
	// LookUp→Write handoff blocks rather than drops, so every flow
	// accepted into any lane reaches the sink exactly once.
	stopSources()
	wgSrc.Wait()
	for _, lane := range c.fillLanes {
		lane.q.Close()
	}
	for _, lane := range c.lanes {
		lane.q.Close()
	}
	wgFill.Wait()
	wgLook.Wait()
	c.writeQ.Close()
	wgWrite.Wait()
	close(metricsStop)
	wgMetrics.Wait()
	close(ckptStop)
	wgCkpt.Wait()

	errs := make([]error, 0, len(srcErrs)+4)
	errs = append(errs, srcErrs...)
	// Final checkpoint: the drain is complete and every worker has stopped,
	// so this snapshot captures the exact state the next boot should resume
	// from. Its failure is a real operational error, reported to the caller
	// rather than just counted.
	if c.cfg.SnapshotPath != "" {
		if err := c.Checkpoint(c.cfg.SnapshotPath); err != nil {
			c.stats.checkpointErrors.Add(1)
			errs = append(errs, fmt.Errorf("core: final checkpoint: %w", err))
		} else {
			c.stats.checkpoints.Add(1)
		}
	}
	if perr := c.sinkErr.Load(); perr != nil {
		errs = append(errs, *perr)
	}
	errs = append(errs, c.sink.Flush(), c.sink.Close())
	// The sink is closed: every sealed window has reached its OnSeal targets.
	// Now stop the services and wait them out.
	svcStop()
	wgSvc.Wait()
	errs = append(errs, svcErrs...)
	if c.observe != nil {
		c.observe(c.Stats())
	}
	return errors.Join(errs...)
}

// Draining reports whether Run has begun its graceful drain — the flag the
// HTTP snapshot handlers consult to answer 503 instead of racing the
// sealing path. It stays true after Run returns.
func (c *Correlator) Draining() bool {
	select {
	case <-c.draining:
		return true
	default:
		return false
	}
}

// failSink records the first sink error and triggers shutdown.
func (c *Correlator) failSink(err error) {
	c.sinkErrOnce.Do(func() {
		c.sinkErr.Store(&err)
		close(c.sinkFailed)
	})
}

// --- synchronous API (deterministic replays, tests, examples) ---

// IngestDNS validates one DNS record and fills it into the hashmaps
// (Algorithm 1). It may be called directly for deterministic offline
// replays; the async pipeline's fill-lane workers use IngestDNSBatch,
// which amortizes the clear-up check and the stats updates. A/AAAA answers
// are keyed by the 16-byte binary address form — the same key LookUp
// builds from a flow's address — taken straight from the typed Addr field
// when the producer supplied it (wire decoder, capture reader, workload
// generator); only string-only records pay a parse here, and one that
// fails to parse is rejected by the §3.2 filter.
func (c *Correlator) IngestDNS(rec stream.DNSRecord) {
	if !rec.IsValid() {
		c.stats.dnsInvalid.Add(1)
		return
	}
	switch rec.RType {
	case dnswire.TypeA, dnswire.TypeAAAA:
		addr := rec.Addr
		if !addr.IsValid() {
			var err error
			addr, err = netip.ParseAddr(rec.Answer)
			if err != nil {
				c.stats.dnsInvalid.Add(1)
				return
			}
		}
		key := addr.As16()
		h := ipHash(&key)
		// One hash serves lane/interner selection, split labeling, and
		// shard selection.
		in := c.fillLanes[c.fillLaneForHash(h)].in
		value := in.intern(dnsname.Normalize(rec.Query))
		c.ipName.putBytesHash(rec.Timestamp, rec.TTL, h, key[:], value)
	case dnswire.TypeCNAME:
		in := c.fillLanes[c.fillLaneForHash(cmap.Hash(rec.Answer))].in
		value := in.intern(dnsname.Normalize(rec.Query))
		c.nameCname.put(rec.Timestamp, rec.TTL, in.intern(dnsname.Normalize(rec.Answer)), value)
	}
	c.stats.dnsRecords.Add(1)
}

// IngestDNSBatch fills a batch of DNS records (Algorithm 1, batched). It
// is the fill-lane worker body: per-record counter updates accumulate in a
// batch-local tally, the store's clear-up clock advances once per batch
// (at the batch's last accepted record timestamp — streams are delivered
// in near-arrival order, so the last record is the freshest within
// jitter, and the clear-up intervals are hours; records the filter or the
// address parse rejects never touch the clock, exactly as in the
// record-at-a-time path), and the A/AAAA items are
// grouped by store split and shard so each touched shard lock is taken
// once per batch. Record order within one batch is not significant — a
// rotation boundary inside a batch rotates before the whole batch lands in
// the fresh Active generation.
func (c *Correlator) IngestDNSBatch(recs []stream.DNSRecord) {
	if len(recs) == 0 {
		return
	}
	buf := c.fillBufPool.Get().(*fillBuf)
	c.ingestBatch(recs, c.fillLanes[c.fillLaneFor(&recs[0])].in, buf)
	c.fillBufPool.Put(buf)
}

// ingestBatch is the shared IngestDNSBatch body; lane workers pass their
// lane's interner and a worker-private scratch buffer.
func (c *Correlator) ingestBatch(recs []stream.DNSRecord, in *interner, buf *fillBuf) {
	var records, invalid uint64
	var batchTS time.Time
	if cap(buf.keys) < len(recs) {
		buf.keys = make([][16]byte, len(recs))
	}
	keys := buf.keys[:len(recs)]
	active, long := buf.active[:0], buf.long[:0]
	exact := c.ipName.exactTTL
	longEnabled := c.ipName.longEnabled
	for i := range recs {
		rec := &recs[i]
		// Poison failpoint: one atomic load when disabled. Firing here —
		// before the record touches the stores or the tally — keeps the
		// per-record containment retry in ingestGuarded exactly-once.
		if err := fpFillRecord.Inject(); err != nil {
			panic(err)
		}
		if !rec.IsValid() {
			invalid++
			continue
		}
		value := in.intern(dnsname.Normalize(rec.Query))
		switch rec.RType {
		case dnswire.TypeA, dnswire.TypeAAAA:
			addr := rec.Addr
			if !addr.IsValid() {
				var err error
				addr, err = netip.ParseAddr(rec.Answer)
				if err != nil {
					invalid++
					continue
				}
			}
			keys[i] = addr.As16()
			item := cmap.Item{Hash: ipHash(&keys[i]), Key: keys[i][:], Value: value}
			switch {
			case exact:
				item.Exp = expiryOf(rec.Timestamp, rec.TTL)
				active = append(active, item)
			case longEnabled && time.Duration(rec.TTL)*time.Second >= c.ipName.ttlThreshold:
				long = append(long, item)
			default:
				active = append(active, item)
			}
			batchTS = rec.Timestamp
		case dnswire.TypeCNAME:
			// CNAME volume is a fraction of A/AAAA volume and the NAME-CNAME
			// store is single-split; record-at-a-time puts are fine here.
			c.nameCname.put(rec.Timestamp, rec.TTL, in.intern(dnsname.Normalize(rec.Answer)), value)
			batchTS = rec.Timestamp
		}
		records++
	}
	if len(active)+len(long) > 0 {
		c.ipName.putItems(batchTS, active, long, &buf.sc)
	}
	buf.active, buf.long = active[:0], long[:0]
	if records != 0 {
		c.stats.dnsRecords.Add(records)
	}
	if invalid != 0 {
		c.stats.dnsInvalid.Add(invalid)
	}
}

// lookupIP resolves one address against the IP-NAME store with a stack
// key: As16 never allocates and the byte-keyed probe never retains the
// slice, so the whole lookup is allocation-free.
func (c *Correlator) lookupIP(ts time.Time, addr netip.Addr) (string, Tier) {
	key := addr.As16()
	return c.ipName.getBytesHash(ts, ipHash(&key), key[:])
}

// CorrelateFlow resolves one flow (Algorithm 2) and returns the correlated
// record. It may be called directly for deterministic offline replays; the
// async pipeline's lane workers use the batch form, which amortizes the
// stats updates.
func (c *Correlator) CorrelateFlow(fr netflow.FlowRecord) CorrelatedFlow {
	var tally lookTally
	var cf CorrelatedFlow
	c.correlateInto(&cf, &fr, &tally)
	tally.flush(&c.stats)
	return cf
}

// CorrelateBatch resolves every flow in frs, appending the correlated
// records to dst and returning the extended slice. It is the LookUp lane
// worker body: per-flow counter updates accumulate in a local tally that
// is flushed to the shared stats block once per batch, keeping the hit
// path free of both allocations and shared-cache-line traffic.
func (c *Correlator) CorrelateBatch(dst []CorrelatedFlow, frs []netflow.FlowRecord) []CorrelatedFlow {
	var tally lookTally
	for i := range frs {
		dst = append(dst, CorrelatedFlow{})
		c.correlateInto(&dst[len(dst)-1], &frs[i], &tally)
	}
	tally.flush(&c.stats)
	return dst
}

// correlateInto is Algorithm 2 for a single flow, writing the result into
// cf. The pointer shape avoids copying the (large) flow and result structs
// through every call; all counters go to tally, not the shared atomics —
// callers flush.
func (c *Correlator) correlateInto(cf *CorrelatedFlow, fr *netflow.FlowRecord, tally *lookTally) {
	cf.Flow = *fr
	tally.flows++
	tally.flowBytes += fr.Bytes
	if !fr.IsValid() {
		tally.flowInvalid++
		return
	}
	var name string
	tier := TierNone
	switch c.cfg.Key {
	case LookupDestination:
		name, tier = c.lookupIP(fr.Timestamp, fr.DstIP)
	case LookupBoth:
		name, tier = c.lookupIP(fr.Timestamp, fr.SrcIP)
		if tier == TierNone {
			name, tier = c.lookupIP(fr.Timestamp, fr.DstIP)
		}
	default:
		name, tier = c.lookupIP(fr.Timestamp, fr.SrcIP)
	}
	if tier == TierNone {
		tally.misses++
		return
	}
	cf.Tier = tier
	tally.hits[tier]++

	// Walk the CNAME chain backwards: answer(canonical) -> query(alias),
	// ending at the name nothing else aliases — the original service name.
	first := name
	result := name
	hops := 0
	for hops < c.cfg.CNAMEChainLimit {
		next, t := c.nameCname.get(fr.Timestamp, result)
		if t == TierNone || next == result {
			break
		}
		result = next
		hops++
	}
	if hops > 1 {
		// §3.3 step 7: memoize multi-hop resolutions for later use.
		c.nameCname.memoize(first, result)
		tally.memoized++
	}
	cf.Name = result
	cf.ChainLen = hops
	tally.correlated++
	tally.correlatedBytes += fr.Bytes
	b := hops
	if b >= maxChainBucket {
		b = maxChainBucket - 1
	}
	tally.chain[b]++
}

// StoreSizes returns current entry counts of the two map families; the
// experiments use this as the state-size series behind the memory figures.
func (c *Correlator) StoreSizes() (ipName, nameCname int) {
	return c.ipName.size(), c.nameCname.size()
}

func (c *Correlator) observeWriteDelay(d time.Duration) {
	for {
		cur := c.stats.maxWriteDelay.Load()
		if int64(d) <= cur {
			return
		}
		if c.stats.maxWriteDelay.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}
