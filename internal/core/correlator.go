package core

import (
	"context"
	"encoding/binary"
	"errors"
	"math/bits"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnsname"
	"repro/internal/dnswire"
	"repro/internal/netflow"
	"repro/internal/queue"
	"repro/internal/stream"
)

// CorrelatedFlow is the output record: the original flow annotated with the
// service name FlowDNS resolved for its source IP. It is what the Write
// workers hand to the sink and what the ISP joins with BGP data downstream.
type CorrelatedFlow struct {
	Flow netflow.FlowRecord
	// Name is the resolved service/domain name, "" when the lookup missed
	// (result = NULL in Algorithm 2).
	Name string
	// ChainLen counts NAME-CNAME hops taken (0 = the IP-NAME hit was final).
	ChainLen int
	// Tier records which generation satisfied the IP-NAME lookup.
	Tier Tier
	// EnqueuedAt is the wall-clock instant the flow entered the LookUp
	// queue (stamped by OfferFlow/OfferFlowBatch; zero for synchronous
	// CorrelateFlow calls). The write-delay metric — time from flow arrival
	// to the sink write, spanning the LookUp wait, the correlation, and the
	// write queue — derives from it.
	EnqueuedAt time.Time
}

// Correlated reports whether a name was resolved.
func (c *CorrelatedFlow) Correlated() bool { return c.Name != "" }

// ErrAlreadyRunning is returned by Run when the correlator has already been
// run; a Correlator's lifecycle is single-use.
var ErrAlreadyRunning = errors.New("core: correlator already running")

// flowEntry is one LookUp queue item: the flow plus its arrival instant.
type flowEntry struct {
	fr netflow.FlowRecord
	at time.Time
}

// ingestBatchSize bounds how many records a FillUp/LookUp worker drains per
// queue round trip; batching here cuts per-record channel overhead without
// adding latency (workers never wait for a batch to fill).
const ingestBatchSize = 128

// Option configures optional Correlator behaviour at construction.
type Option func(*Correlator)

// WithSink routes correlated flows to s. Without this option output is
// discarded (pure measurement runs). The correlator owns the sink's
// lifecycle from Run's perspective: Flush then Close at the end of the
// drain.
func WithSink(s Sink) Option {
	return func(c *Correlator) {
		if s != nil {
			c.sink = s
		}
	}
}

// WithSources attaches input streams. Run launches every source with the
// run context and the correlator as the ingest façade; when all sources
// complete, the pipeline drains and Run returns.
func WithSources(srcs ...stream.Source) Option {
	return func(c *Correlator) {
		for _, s := range srcs {
			if s != nil {
				c.sources = append(c.sources, s)
			}
		}
	}
}

// WithMetrics invokes observe with a stats snapshot every interval while
// Run is active, plus once at the end of the drain — the hook the daemon
// uses for periodic logging and exporters use for scraping.
func WithMetrics(interval time.Duration, observe func(Stats)) Option {
	return func(c *Correlator) {
		if interval > 0 && observe != nil {
			c.metricsInterval = interval
			c.observe = observe
		}
	}
}

// Correlator is the FlowDNS pipeline of Figure 1. Construct with New, feed
// it via the stream.Ingest façade (OfferDNS/OfferFlow and their batch
// forms) or attach Sources, run the workers with Run(ctx) — cancellation
// stops intake and drains every stage through the sink — and read Stats
// at any time. The deterministic IngestDNS/CorrelateFlow methods bypass
// the queues for offline replays.
type Correlator struct {
	cfg     Config
	sink    Sink
	sources []stream.Source

	metricsInterval time.Duration
	observe         func(Stats)

	ipName    *store // A/AAAA answer(IP) -> query name
	nameCname *store // CNAME answer(canonical) -> query (alias)

	fillQ *queue.Queue[stream.DNSRecord]
	// lanes are the sharded LookUp stage: each lane owns its own lookup
	// queue and its own workers, and flows are partitioned onto lanes by a
	// hash of the destination IP (same dst IP → same lane). The store's
	// lane-major split layout aligns with this partition, so
	// destination-keyed lookups from different lanes never touch the same
	// generation shards.
	lanes  []*corrLane
	writeQ *queue.Queue[CorrelatedFlow]

	// stagePool recycles the per-lane staging buffers OfferFlowBatch uses
	// to partition a batch in one pass.
	stagePool sync.Pool

	started atomic.Bool

	// sinkErr holds the first WriteBatch error; once set, write workers
	// drain without writing and Run begins shutdown.
	sinkErr     atomic.Pointer[error]
	sinkFailed  chan struct{}
	sinkErrOnce sync.Once

	stats statsCounters
}

// New builds a Correlator with the given config. With no options the
// correlator discards output and has no sources.
func New(cfg Config, opts ...Option) *Correlator {
	cfg = cfg.normalized()
	c := &Correlator{
		cfg:  cfg,
		sink: DiscardSink{},
		ipName: newStore(storeConfig{
			splits:        cfg.NumSplit,
			lanes:         cfg.Lanes,
			interval:      cfg.AClearUpInterval,
			rotation:      !cfg.DisableRotation,
			clearUp:       !cfg.DisableClearUp,
			longEnabled:   !cfg.DisableLong && !cfg.DisableClearUp,
			exactTTL:      cfg.ExactTTL,
			sweepInterval: cfg.ExactTTLSweepInterval,
		}),
		// Table 1 lists NAME-CNAME without a split subscript: CNAME volume
		// is far below A/AAAA volume, so one split suffices.
		nameCname: newStore(storeConfig{
			splits:        1,
			interval:      cfg.CClearUpInterval,
			rotation:      !cfg.DisableRotation,
			clearUp:       !cfg.DisableClearUp,
			longEnabled:   !cfg.DisableLong && !cfg.DisableClearUp,
			exactTTL:      cfg.ExactTTL,
			sweepInterval: cfg.ExactTTLSweepInterval,
		}),
		fillQ:      queue.New[stream.DNSRecord](cfg.FillQueueCap),
		lanes:      make([]*corrLane, cfg.Lanes),
		writeQ:     queue.New[CorrelatedFlow](cfg.WriteQueueCap),
		sinkFailed: make(chan struct{}),
	}
	// LookQueueCap is the total lookup buffer, divided evenly across
	// lanes, so the stage's memory footprint and the configured loss
	// bound do not scale with the lane count. The flip side: a burst to
	// one hot destination only gets its lane's share — raise
	// LookQueueCap (and watch LaneDepths) for skewed traffic.
	perLaneCap := cfg.LookQueueCap / cfg.Lanes
	if perLaneCap < 1 {
		perLaneCap = 1
	}
	for i := range c.lanes {
		c.lanes[i] = &corrLane{q: queue.New[flowEntry](perLaneCap)}
	}
	laneCount := len(c.lanes)
	c.stagePool.New = func() any {
		return &laneStage{perLane: make([][]flowEntry, laneCount)}
	}
	for _, opt := range opts {
		if opt != nil {
			opt(c)
		}
	}
	return c
}

// corrLane is one correlation lane: an independent slice of the LookUp
// stage with its own queue; its workers are launched by Run.
type corrLane struct {
	q *queue.Queue[flowEntry]
}

// laneStage is the reusable per-lane staging buffer OfferFlowBatch
// partitions a flow batch into.
type laneStage struct {
	perLane [][]flowEntry
}

// ipHash hashes the 16-byte canonical address form in two 64-bit loads
// plus a SplitMix64-style finalizer — a fraction of the cost of hashing 16
// bytes through byte-at-a-time FNV on the per-flow path. Every operation
// on binary IP keys (lane selection, store split labeling, shard
// selection, fills) must use this same hash; that shared value is what
// makes lane ↔ split-slice ownership line up.
func ipHash(key *[16]byte) uint32 {
	lo := binary.LittleEndian.Uint64(key[:8])
	hi := binary.LittleEndian.Uint64(key[8:])
	x := lo ^ bits.RotateLeft64(hi, 32)
	x *= 0x9E3779B97F4A7C15
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return uint32(x)
}

// laneFor returns the correlation lane owning addr: the low bits of the
// shared IP-key hash, exactly as the store's lane-major split layout uses
// them.
func (c *Correlator) laneFor(addr netip.Addr) int {
	if len(c.lanes) == 1 {
		return 0
	}
	a16 := addr.As16()
	return int(ipHash(&a16) % uint32(len(c.lanes)))
}

// Lanes returns the number of correlation lanes in effect.
func (c *Correlator) Lanes() int { return len(c.lanes) }

// Config returns the normalized configuration in effect.
func (c *Correlator) Config() Config { return c.cfg }

// --- stream.Ingest façade (live pipeline) ---

// OfferDNS places a DNS record on the FillUp queue; a false return is a
// dropped record (stream loss).
func (c *Correlator) OfferDNS(rec stream.DNSRecord) bool { return c.fillQ.Offer(rec) }

// OfferDNSBatch places a batch of DNS records on the FillUp queue and
// returns how many were accepted.
func (c *Correlator) OfferDNSBatch(recs []stream.DNSRecord) int {
	return c.fillQ.OfferBatch(recs)
}

// OfferFlow places a flow on its correlation lane's LookUp queue, stamping
// its arrival instant; a false return is a dropped record (stream loss).
// The lane is chosen by a hash of the destination IP, so flows to the same
// destination always land on the same lane.
func (c *Correlator) OfferFlow(fr netflow.FlowRecord) bool {
	return c.lanes[c.laneFor(fr.DstIP)].q.Offer(flowEntry{fr: fr, at: time.Now()})
}

// OfferFlowBatch partitions a batch of flows onto their correlation lanes —
// one arrival stamp for the whole batch — and returns how many were
// accepted. Partitioning is one pass through reusable staging buffers, so
// the offer cost stays amortized per batch, not per record.
func (c *Correlator) OfferFlowBatch(frs []netflow.FlowRecord) int {
	if len(frs) == 0 {
		return 0
	}
	now := time.Now()
	st := c.stagePool.Get().(*laneStage)
	for i := range frs {
		l := c.laneFor(frs[i].DstIP)
		st.perLane[l] = append(st.perLane[l], flowEntry{fr: frs[i], at: now})
	}
	accepted := 0
	for l := range st.perLane {
		if len(st.perLane[l]) == 0 {
			continue
		}
		accepted += c.lanes[l].q.OfferBatch(st.perLane[l])
		st.perLane[l] = st.perLane[l][:0]
	}
	c.stagePool.Put(st)
	return accepted
}

var _ stream.Ingest = (*Correlator)(nil)

// QueueDepths reports the current occupancy of the three stage queues —
// the "buffer usage" the paper's operators watch to keep loss at zero. The
// look depth aggregates every correlation lane; LaneDepths has the
// per-lane breakdown.
func (c *Correlator) QueueDepths() (fill, look, write int) {
	for _, l := range c.lanes {
		look += l.q.Len()
	}
	return c.fillQ.Len(), look, c.writeQ.Len()
}

// LaneDepths reports each correlation lane's lookup-queue occupancy — the
// skew monitor for the dst-IP partition (a hot destination shows up as one
// deep lane).
func (c *Correlator) LaneDepths() []int {
	out := make([]int, len(c.lanes))
	for i, l := range c.lanes {
		out[i] = l.q.Len()
	}
	return out
}

// Run executes the pipeline: it launches the FillUp, LookUp, and Write
// workers plus every attached source, then blocks until one of
//
//   - ctx is cancelled (graceful shutdown request),
//   - all attached sources complete (end of finite input),
//   - a source fails (abnormal stream death must not leave the pipeline
//     running blind), or
//   - the sink fails (first WriteBatch error)
//
// and performs a graceful drain: sources stop, every stage queue is closed
// and drained in order, in-flight records reach the sink, and the sink is
// flushed and closed. Run returns source and sink errors joined;
// cancellation itself is a clean shutdown, not an error. A Correlator runs
// at most once.
func (c *Correlator) Run(ctx context.Context) error {
	if !c.started.CompareAndSwap(false, true) {
		return ErrAlreadyRunning
	}

	var wgFill, wgLook, wgWrite sync.WaitGroup
	for i := 0; i < c.cfg.FillUpWorkers; i++ {
		wgFill.Add(1)
		go func() {
			defer wgFill.Done()
			batch := make([]stream.DNSRecord, 0, ingestBatchSize)
			for {
				var ok bool
				batch, ok = c.fillQ.TakeBatch(batch[:0], ingestBatchSize, 0)
				if !ok {
					return
				}
				for i := range batch {
					c.IngestDNS(batch[i])
				}
			}
		}()
	}
	// LookUp workers are divided evenly across lanes (at least one per
	// lane): a worker drains only its own lane's queue, so two workers
	// never contend on one queue unless the operator asked for more
	// workers than lanes. The handoff to the Write stage uses blocking
	// PutBatch, not the dropping OfferBatch: a flow accepted into a lane
	// is already part of the pipeline and must reach the sink — loss is
	// accounted only at intake. This also makes the drain lossless: a full
	// lane queue at cancellation backpressures into the Write workers
	// instead of overflowing the write queue.
	baseWorkers := c.cfg.LookUpWorkers / len(c.lanes)
	extraWorkers := c.cfg.LookUpWorkers % len(c.lanes)
	if baseWorkers < 1 {
		// Fewer workers than lanes: every lane still needs one (a lane
		// without a worker would never drain), so the effective total is
		// the lane count.
		baseWorkers, extraWorkers = 1, 0
	}
	for li, lane := range c.lanes {
		workersPerLane := baseWorkers
		if li < extraWorkers {
			workersPerLane++ // distribute the remainder; the configured total is honored
		}
		for i := 0; i < workersPerLane; i++ {
			wgLook.Add(1)
			go func(lane *corrLane) {
				defer wgLook.Done()
				batch := make([]flowEntry, 0, ingestBatchSize)
				out := make([]CorrelatedFlow, 0, ingestBatchSize)
				var tally lookTally
				for {
					var ok bool
					batch, ok = lane.q.TakeBatch(batch[:0], ingestBatchSize, 0)
					if !ok {
						return
					}
					out = out[:0]
					for i := range batch {
						out = append(out, CorrelatedFlow{})
						cf := &out[len(out)-1]
						c.correlateInto(cf, &batch[i].fr, &tally)
						cf.EnqueuedAt = batch[i].at
					}
					tally.flush(&c.stats)
					c.writeQ.PutBatch(out)
				}
			}(lane)
		}
	}
	// The drain must finish even after ctx is cancelled: in-flight records
	// belong to the sink, so sink writes run under an uncancellable child.
	writeCtx := context.WithoutCancel(ctx)
	for i := 0; i < c.cfg.WriteWorkers; i++ {
		wgWrite.Add(1)
		go func() {
			defer wgWrite.Done()
			batch := make([]CorrelatedFlow, 0, c.cfg.WriteBatchSize)
			for {
				var ok bool
				batch, ok = c.writeQ.TakeBatch(batch[:0], c.cfg.WriteBatchSize, c.cfg.WriteFlushInterval)
				if !ok {
					return
				}
				now := time.Now()
				for i := range batch {
					if !batch[i].EnqueuedAt.IsZero() {
						c.observeWriteDelay(now.Sub(batch[i].EnqueuedAt))
					}
				}
				if c.sinkErr.Load() != nil {
					continue // sink already failed: drain without writing
				}
				if err := c.sink.WriteBatch(writeCtx, batch); err != nil {
					c.failSink(err)
					continue
				}
				c.stats.written.Add(uint64(len(batch)))
				// Push buffered sink output down to the writer whenever the
				// flush-interval timer fired (partial batch) or no more
				// records are imminent (queue drained) — so
				// WriteFlushInterval bounds end-to-end latency even when a
				// burst ends on an exactly-full batch or WriteBatchSize is
				// 1. Under sustained load batches are full and the queue
				// non-empty, so the buffer amortizes naturally.
				if len(batch) < c.cfg.WriteBatchSize || c.writeQ.Len() == 0 {
					if err := c.sink.Flush(); err != nil {
						c.failSink(err)
					}
				}
			}
		}()
	}

	// Sources run under their own cancellable context so that sink
	// failure, source failure, and source completion can stop intake
	// before ctx itself is done.
	srcCtx, stopSources := context.WithCancel(ctx)
	defer stopSources()
	var wgSrc sync.WaitGroup
	var srcFailedOnce sync.Once
	srcFailed := make(chan struct{})
	srcErrs := make([]error, len(c.sources))
	for i, src := range c.sources {
		wgSrc.Add(1)
		go func(i int, src stream.Source) {
			defer wgSrc.Done()
			if err := src.Run(srcCtx, c); err != nil {
				srcErrs[i] = err
				// Fail fast: a source that dies abnormally must not leave
				// the pipeline running blind until process exit.
				srcFailedOnce.Do(func() { close(srcFailed) })
			}
		}(i, src)
	}
	var sourcesDone chan struct{}
	if len(c.sources) > 0 {
		sourcesDone = make(chan struct{})
		go func() {
			wgSrc.Wait()
			close(sourcesDone)
		}()
	}

	var wgMetrics sync.WaitGroup
	metricsStop := make(chan struct{})
	if c.observe != nil {
		wgMetrics.Add(1)
		go func() {
			defer wgMetrics.Done()
			ticker := time.NewTicker(c.metricsInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					c.observe(c.Stats())
				case <-metricsStop:
					return
				}
			}
		}()
	}

	select {
	case <-ctx.Done():
	case <-c.sinkFailed:
	case <-srcFailed:
	case <-sourcesDone:
	}

	// Graceful drain: stop intake, then close and drain stage by stage.
	// Every lane queue closes before the write queue does, and the
	// LookUp→Write handoff blocks rather than drops, so every flow
	// accepted into any lane reaches the sink exactly once.
	stopSources()
	wgSrc.Wait()
	c.fillQ.Close()
	for _, lane := range c.lanes {
		lane.q.Close()
	}
	wgFill.Wait()
	wgLook.Wait()
	c.writeQ.Close()
	wgWrite.Wait()
	close(metricsStop)
	wgMetrics.Wait()

	errs := make([]error, 0, len(srcErrs)+3)
	errs = append(errs, srcErrs...)
	if perr := c.sinkErr.Load(); perr != nil {
		errs = append(errs, *perr)
	}
	errs = append(errs, c.sink.Flush(), c.sink.Close())
	if c.observe != nil {
		c.observe(c.Stats())
	}
	return errors.Join(errs...)
}

// failSink records the first sink error and triggers shutdown.
func (c *Correlator) failSink(err error) {
	c.sinkErrOnce.Do(func() {
		c.sinkErr.Store(&err)
		close(c.sinkFailed)
	})
}

// --- synchronous API (deterministic replays, tests, examples) ---

// IngestDNS validates one DNS record and fills it into the hashmaps
// (Algorithm 1). It is the FillUp worker body and may be called directly
// for deterministic offline replays. A/AAAA answers are keyed by the
// 16-byte binary address form — the same key LookUp builds from a flow's
// address without formatting a string — so an answer that fails to parse
// as an address is rejected by the §3.2 filter.
func (c *Correlator) IngestDNS(rec stream.DNSRecord) {
	if !rec.IsValid() {
		c.stats.dnsInvalid.Add(1)
		return
	}
	value := dnsname.Normalize(rec.Query)
	switch rec.RType {
	case dnswire.TypeA, dnswire.TypeAAAA:
		addr, err := netip.ParseAddr(rec.Answer)
		if err != nil {
			c.stats.dnsInvalid.Add(1)
			return
		}
		key := addr.As16()
		c.ipName.putBytesHash(rec.Timestamp, rec.TTL, ipHash(&key), key[:], value)
	case dnswire.TypeCNAME:
		c.nameCname.put(rec.Timestamp, rec.TTL, dnsname.Normalize(rec.Answer), value)
	}
	c.stats.dnsRecords.Add(1)
}

// lookupIP resolves one address against the IP-NAME store with a stack
// key: As16 never allocates and the byte-keyed probe never retains the
// slice, so the whole lookup is allocation-free.
func (c *Correlator) lookupIP(ts time.Time, addr netip.Addr) (string, Tier) {
	key := addr.As16()
	return c.ipName.getBytesHash(ts, ipHash(&key), key[:])
}

// CorrelateFlow resolves one flow (Algorithm 2) and returns the correlated
// record. It may be called directly for deterministic offline replays; the
// async pipeline's lane workers use the batch form, which amortizes the
// stats updates.
func (c *Correlator) CorrelateFlow(fr netflow.FlowRecord) CorrelatedFlow {
	var tally lookTally
	var cf CorrelatedFlow
	c.correlateInto(&cf, &fr, &tally)
	tally.flush(&c.stats)
	return cf
}

// CorrelateBatch resolves every flow in frs, appending the correlated
// records to dst and returning the extended slice. It is the LookUp lane
// worker body: per-flow counter updates accumulate in a local tally that
// is flushed to the shared stats block once per batch, keeping the hit
// path free of both allocations and shared-cache-line traffic.
func (c *Correlator) CorrelateBatch(dst []CorrelatedFlow, frs []netflow.FlowRecord) []CorrelatedFlow {
	var tally lookTally
	for i := range frs {
		dst = append(dst, CorrelatedFlow{})
		c.correlateInto(&dst[len(dst)-1], &frs[i], &tally)
	}
	tally.flush(&c.stats)
	return dst
}

// correlateInto is Algorithm 2 for a single flow, writing the result into
// cf. The pointer shape avoids copying the (large) flow and result structs
// through every call; all counters go to tally, not the shared atomics —
// callers flush.
func (c *Correlator) correlateInto(cf *CorrelatedFlow, fr *netflow.FlowRecord, tally *lookTally) {
	cf.Flow = *fr
	tally.flows++
	tally.flowBytes += fr.Bytes
	if !fr.IsValid() {
		tally.flowInvalid++
		return
	}
	var name string
	tier := TierNone
	switch c.cfg.Key {
	case LookupDestination:
		name, tier = c.lookupIP(fr.Timestamp, fr.DstIP)
	case LookupBoth:
		name, tier = c.lookupIP(fr.Timestamp, fr.SrcIP)
		if tier == TierNone {
			name, tier = c.lookupIP(fr.Timestamp, fr.DstIP)
		}
	default:
		name, tier = c.lookupIP(fr.Timestamp, fr.SrcIP)
	}
	if tier == TierNone {
		tally.misses++
		return
	}
	cf.Tier = tier
	tally.hits[tier]++

	// Walk the CNAME chain backwards: answer(canonical) -> query(alias),
	// ending at the name nothing else aliases — the original service name.
	first := name
	result := name
	hops := 0
	for hops < c.cfg.CNAMEChainLimit {
		next, t := c.nameCname.get(fr.Timestamp, result)
		if t == TierNone || next == result {
			break
		}
		result = next
		hops++
	}
	if hops > 1 {
		// §3.3 step 7: memoize multi-hop resolutions for later use.
		c.nameCname.memoize(first, result)
		tally.memoized++
	}
	cf.Name = result
	cf.ChainLen = hops
	tally.correlated++
	tally.correlatedBytes += fr.Bytes
	b := hops
	if b >= maxChainBucket {
		b = maxChainBucket - 1
	}
	tally.chain[b]++
}

// StoreSizes returns current entry counts of the two map families; the
// experiments use this as the state-size series behind the memory figures.
func (c *Correlator) StoreSizes() (ipName, nameCname int) {
	return c.ipName.size(), c.nameCname.size()
}

func (c *Correlator) observeWriteDelay(d time.Duration) {
	for {
		cur := c.stats.maxWriteDelay.Load()
		if int64(d) <= cur {
			return
		}
		if c.stats.maxWriteDelay.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}
