package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnsname"
	"repro/internal/dnswire"
	"repro/internal/netflow"
	"repro/internal/queue"
	"repro/internal/stream"
)

// CorrelatedFlow is the output record: the original flow annotated with the
// service name FlowDNS resolved for its source IP. It is what the Write
// workers hand to the sink and what the ISP joins with BGP data downstream.
type CorrelatedFlow struct {
	Flow netflow.FlowRecord
	// Name is the resolved service/domain name, "" when the lookup missed
	// (result = NULL in Algorithm 2).
	Name string
	// ChainLen counts NAME-CNAME hops taken (0 = the IP-NAME hit was final).
	ChainLen int
	// Tier records which generation satisfied the IP-NAME lookup.
	Tier Tier
	// EnqueuedAt is the wall-clock instant the flow entered the LookUp
	// queue; sinks derive the paper's write-delay metric from it.
	EnqueuedAt time.Time
}

// Correlated reports whether a name was resolved.
func (c *CorrelatedFlow) Correlated() bool { return c.Name != "" }

// Sink consumes correlated flows. Implementations must be safe for
// concurrent use when Config.WriteWorkers > 1.
type Sink interface {
	Write(cf CorrelatedFlow)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(cf CorrelatedFlow)

// Write calls f.
func (f SinkFunc) Write(cf CorrelatedFlow) { f(cf) }

// Correlator is the FlowDNS pipeline of Figure 1. Construct with New, feed
// it via OfferDNS/OfferFlow (or the deterministic IngestDNS/CorrelateFlow),
// start the workers with Start, and Stop to drain.
type Correlator struct {
	cfg  Config
	sink Sink

	ipName    *store // A/AAAA answer(IP) -> query name
	nameCname *store // CNAME answer(canonical) -> query (alias)

	fillQ  *queue.Queue[stream.DNSRecord]
	lookQ  *queue.Queue[netflow.FlowRecord]
	writeQ *queue.Queue[CorrelatedFlow]

	wgFill  sync.WaitGroup
	wgLook  sync.WaitGroup
	wgWrite sync.WaitGroup
	started atomic.Bool

	stats statsCounters
}

// New builds a Correlator with the given config and sink. A nil sink
// discards output (useful for pure measurement runs).
func New(cfg Config, sink Sink) *Correlator {
	cfg = cfg.normalized()
	if sink == nil {
		sink = SinkFunc(func(CorrelatedFlow) {})
	}
	c := &Correlator{
		cfg:  cfg,
		sink: sink,
		ipName: newStore(storeConfig{
			splits:        cfg.NumSplit,
			interval:      cfg.AClearUpInterval,
			rotation:      !cfg.DisableRotation,
			clearUp:       !cfg.DisableClearUp,
			longEnabled:   !cfg.DisableLong && !cfg.DisableClearUp,
			exactTTL:      cfg.ExactTTL,
			sweepInterval: cfg.ExactTTLSweepInterval,
		}),
		// Table 1 lists NAME-CNAME without a split subscript: CNAME volume
		// is far below A/AAAA volume, so one split suffices.
		nameCname: newStore(storeConfig{
			splits:        1,
			interval:      cfg.CClearUpInterval,
			rotation:      !cfg.DisableRotation,
			clearUp:       !cfg.DisableClearUp,
			longEnabled:   !cfg.DisableLong && !cfg.DisableClearUp,
			exactTTL:      cfg.ExactTTL,
			sweepInterval: cfg.ExactTTLSweepInterval,
		}),
		fillQ:  queue.New[stream.DNSRecord](cfg.FillQueueCap),
		lookQ:  queue.New[netflow.FlowRecord](cfg.LookQueueCap),
		writeQ: queue.New[CorrelatedFlow](cfg.WriteQueueCap),
	}
	return c
}

// Config returns the normalized configuration in effect.
func (c *Correlator) Config() Config { return c.cfg }

// --- queue-facing API (live pipeline) ---

// OfferDNS places a DNS record on the FillUp queue; a false return is a
// dropped record (stream loss).
func (c *Correlator) OfferDNS(rec stream.DNSRecord) bool { return c.fillQ.Offer(rec) }

// OfferFlow places a flow on the LookUp queue; a false return is a dropped
// record (stream loss).
func (c *Correlator) OfferFlow(fr netflow.FlowRecord) bool { return c.lookQ.Offer(fr) }

// DNSQueue exposes the FillUp queue so stream sources can offer directly.
func (c *Correlator) DNSQueue() *queue.Queue[stream.DNSRecord] { return c.fillQ }

// FlowQueue exposes the LookUp queue so stream sources can offer directly.
func (c *Correlator) FlowQueue() *queue.Queue[netflow.FlowRecord] { return c.lookQ }

// Start launches the FillUp, LookUp, and Write workers.
func (c *Correlator) Start() {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	for i := 0; i < c.cfg.FillUpWorkers; i++ {
		c.wgFill.Add(1)
		go func() {
			defer c.wgFill.Done()
			for {
				rec, ok := c.fillQ.Take()
				if !ok {
					return
				}
				c.IngestDNS(rec)
			}
		}()
	}
	for i := 0; i < c.cfg.LookUpWorkers; i++ {
		c.wgLook.Add(1)
		go func() {
			defer c.wgLook.Done()
			for {
				fr, ok := c.lookQ.Take()
				if !ok {
					return
				}
				cf := c.CorrelateFlow(fr)
				cf.EnqueuedAt = time.Now()
				c.writeQ.Offer(cf)
			}
		}()
	}
	for i := 0; i < c.cfg.WriteWorkers; i++ {
		c.wgWrite.Add(1)
		go func() {
			defer c.wgWrite.Done()
			for {
				cf, ok := c.writeQ.Take()
				if !ok {
					return
				}
				c.stats.written.Add(1)
				c.observeWriteDelay(time.Since(cf.EnqueuedAt))
				c.sink.Write(cf)
			}
		}()
	}
}

// Stop closes the input queues, waits for every stage to drain, and returns
// once the sink has seen all in-flight records. Safe to call once.
func (c *Correlator) Stop() {
	c.fillQ.Close()
	c.lookQ.Close()
	c.wgFill.Wait()
	c.wgLook.Wait()
	c.writeQ.Close()
	c.wgWrite.Wait()
}

// --- synchronous API (deterministic replays, tests, examples) ---

// IngestDNS validates one DNS record and fills it into the hashmaps
// (Algorithm 1). It is the FillUp worker body and may be called directly
// for deterministic offline replays.
func (c *Correlator) IngestDNS(rec stream.DNSRecord) {
	if !rec.IsValid() {
		c.stats.dnsInvalid.Add(1)
		return
	}
	c.stats.dnsRecords.Add(1)
	value := dnsname.Normalize(rec.Query)
	switch rec.RType {
	case dnswire.TypeA, dnswire.TypeAAAA:
		c.ipName.put(rec.Timestamp, rec.TTL, rec.Answer, value)
	case dnswire.TypeCNAME:
		c.nameCname.put(rec.Timestamp, rec.TTL, dnsname.Normalize(rec.Answer), value)
	}
}

// CorrelateFlow resolves one flow (Algorithm 2) and returns the correlated
// record. It is the LookUp worker body and may be called directly.
func (c *Correlator) CorrelateFlow(fr netflow.FlowRecord) CorrelatedFlow {
	cf := CorrelatedFlow{Flow: fr}
	c.stats.flows.Add(1)
	c.stats.flowBytes.Add(fr.Bytes)
	if !fr.IsValid() {
		c.stats.flowInvalid.Add(1)
		return cf
	}
	var name string
	tier := TierNone
	switch c.cfg.Key {
	case LookupDestination:
		name, tier = c.ipName.get(fr.Timestamp, stream.AddrKey(fr.DstIP))
	case LookupBoth:
		name, tier = c.ipName.get(fr.Timestamp, stream.AddrKey(fr.SrcIP))
		if tier == TierNone {
			name, tier = c.ipName.get(fr.Timestamp, stream.AddrKey(fr.DstIP))
		}
	default:
		name, tier = c.ipName.get(fr.Timestamp, stream.AddrKey(fr.SrcIP))
	}
	if tier == TierNone {
		c.stats.misses.Add(1)
		return cf
	}
	cf.Tier = tier
	c.stats.tierHit(tier)

	// Walk the CNAME chain backwards: answer(canonical) -> query(alias),
	// ending at the name nothing else aliases — the original service name.
	first := name
	result := name
	hops := 0
	for hops < c.cfg.CNAMEChainLimit {
		next, t := c.nameCname.get(fr.Timestamp, result)
		if t == TierNone || next == result {
			break
		}
		result = next
		hops++
	}
	if hops > 1 {
		// §3.3 step 7: memoize multi-hop resolutions for later use.
		c.nameCname.memoize(first, result)
		c.stats.memoized.Add(1)
	}
	cf.Name = result
	cf.ChainLen = hops
	c.stats.correlated.Add(1)
	c.stats.correlatedBytes.Add(fr.Bytes)
	c.stats.chainHop(hops)
	return cf
}

// StoreSizes returns current entry counts of the two map families; the
// experiments use this as the state-size series behind the memory figures.
func (c *Correlator) StoreSizes() (ipName, nameCname int) {
	return c.ipName.size(), c.nameCname.size()
}

func (c *Correlator) observeWriteDelay(d time.Duration) {
	for {
		cur := c.stats.maxWriteDelay.Load()
		if int64(d) <= cur {
			return
		}
		if c.stats.maxWriteDelay.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}
