package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnsname"
	"repro/internal/dnswire"
	"repro/internal/netflow"
	"repro/internal/queue"
	"repro/internal/stream"
)

// CorrelatedFlow is the output record: the original flow annotated with the
// service name FlowDNS resolved for its source IP. It is what the Write
// workers hand to the sink and what the ISP joins with BGP data downstream.
type CorrelatedFlow struct {
	Flow netflow.FlowRecord
	// Name is the resolved service/domain name, "" when the lookup missed
	// (result = NULL in Algorithm 2).
	Name string
	// ChainLen counts NAME-CNAME hops taken (0 = the IP-NAME hit was final).
	ChainLen int
	// Tier records which generation satisfied the IP-NAME lookup.
	Tier Tier
	// EnqueuedAt is the wall-clock instant the flow entered the LookUp
	// queue (stamped by OfferFlow/OfferFlowBatch; zero for synchronous
	// CorrelateFlow calls). The write-delay metric — time from flow arrival
	// to the sink write, spanning the LookUp wait, the correlation, and the
	// write queue — derives from it.
	EnqueuedAt time.Time
}

// Correlated reports whether a name was resolved.
func (c *CorrelatedFlow) Correlated() bool { return c.Name != "" }

// ErrAlreadyRunning is returned by Run when the correlator has already been
// run; a Correlator's lifecycle is single-use.
var ErrAlreadyRunning = errors.New("core: correlator already running")

// flowEntry is one LookUp queue item: the flow plus its arrival instant.
type flowEntry struct {
	fr netflow.FlowRecord
	at time.Time
}

// ingestBatchSize bounds how many records a FillUp/LookUp worker drains per
// queue round trip; batching here cuts per-record channel overhead without
// adding latency (workers never wait for a batch to fill).
const ingestBatchSize = 128

// Option configures optional Correlator behaviour at construction.
type Option func(*Correlator)

// WithSink routes correlated flows to s. Without this option output is
// discarded (pure measurement runs). The correlator owns the sink's
// lifecycle from Run's perspective: Flush then Close at the end of the
// drain.
func WithSink(s Sink) Option {
	return func(c *Correlator) {
		if s != nil {
			c.sink = s
		}
	}
}

// WithSources attaches input streams. Run launches every source with the
// run context and the correlator as the ingest façade; when all sources
// complete, the pipeline drains and Run returns.
func WithSources(srcs ...stream.Source) Option {
	return func(c *Correlator) {
		for _, s := range srcs {
			if s != nil {
				c.sources = append(c.sources, s)
			}
		}
	}
}

// WithMetrics invokes observe with a stats snapshot every interval while
// Run is active, plus once at the end of the drain — the hook the daemon
// uses for periodic logging and exporters use for scraping.
func WithMetrics(interval time.Duration, observe func(Stats)) Option {
	return func(c *Correlator) {
		if interval > 0 && observe != nil {
			c.metricsInterval = interval
			c.observe = observe
		}
	}
}

// Correlator is the FlowDNS pipeline of Figure 1. Construct with New, feed
// it via the stream.Ingest façade (OfferDNS/OfferFlow and their batch
// forms) or attach Sources, run the workers with Run(ctx) — cancellation
// stops intake and drains every stage through the sink — and read Stats
// at any time. The deterministic IngestDNS/CorrelateFlow methods bypass
// the queues for offline replays.
type Correlator struct {
	cfg     Config
	sink    Sink
	sources []stream.Source

	metricsInterval time.Duration
	observe         func(Stats)

	ipName    *store // A/AAAA answer(IP) -> query name
	nameCname *store // CNAME answer(canonical) -> query (alias)

	fillQ  *queue.Queue[stream.DNSRecord]
	lookQ  *queue.Queue[flowEntry]
	writeQ *queue.Queue[CorrelatedFlow]

	started atomic.Bool

	// sinkErr holds the first WriteBatch error; once set, write workers
	// drain without writing and Run begins shutdown.
	sinkErr     atomic.Pointer[error]
	sinkFailed  chan struct{}
	sinkErrOnce sync.Once

	stats statsCounters
}

// New builds a Correlator with the given config. With no options the
// correlator discards output and has no sources.
func New(cfg Config, opts ...Option) *Correlator {
	cfg = cfg.normalized()
	c := &Correlator{
		cfg:  cfg,
		sink: DiscardSink{},
		ipName: newStore(storeConfig{
			splits:        cfg.NumSplit,
			interval:      cfg.AClearUpInterval,
			rotation:      !cfg.DisableRotation,
			clearUp:       !cfg.DisableClearUp,
			longEnabled:   !cfg.DisableLong && !cfg.DisableClearUp,
			exactTTL:      cfg.ExactTTL,
			sweepInterval: cfg.ExactTTLSweepInterval,
		}),
		// Table 1 lists NAME-CNAME without a split subscript: CNAME volume
		// is far below A/AAAA volume, so one split suffices.
		nameCname: newStore(storeConfig{
			splits:        1,
			interval:      cfg.CClearUpInterval,
			rotation:      !cfg.DisableRotation,
			clearUp:       !cfg.DisableClearUp,
			longEnabled:   !cfg.DisableLong && !cfg.DisableClearUp,
			exactTTL:      cfg.ExactTTL,
			sweepInterval: cfg.ExactTTLSweepInterval,
		}),
		fillQ:      queue.New[stream.DNSRecord](cfg.FillQueueCap),
		lookQ:      queue.New[flowEntry](cfg.LookQueueCap),
		writeQ:     queue.New[CorrelatedFlow](cfg.WriteQueueCap),
		sinkFailed: make(chan struct{}),
	}
	for _, opt := range opts {
		if opt != nil {
			opt(c)
		}
	}
	return c
}

// Config returns the normalized configuration in effect.
func (c *Correlator) Config() Config { return c.cfg }

// --- stream.Ingest façade (live pipeline) ---

// OfferDNS places a DNS record on the FillUp queue; a false return is a
// dropped record (stream loss).
func (c *Correlator) OfferDNS(rec stream.DNSRecord) bool { return c.fillQ.Offer(rec) }

// OfferDNSBatch places a batch of DNS records on the FillUp queue and
// returns how many were accepted.
func (c *Correlator) OfferDNSBatch(recs []stream.DNSRecord) int {
	return c.fillQ.OfferBatch(recs)
}

// OfferFlow places a flow on the LookUp queue, stamping its arrival
// instant; a false return is a dropped record (stream loss).
func (c *Correlator) OfferFlow(fr netflow.FlowRecord) bool {
	return c.lookQ.Offer(flowEntry{fr: fr, at: time.Now()})
}

// OfferFlowBatch places a batch of flows on the LookUp queue — one arrival
// stamp for the whole batch — and returns how many were accepted.
func (c *Correlator) OfferFlowBatch(frs []netflow.FlowRecord) int {
	if len(frs) == 0 {
		return 0
	}
	now := time.Now()
	entries := make([]flowEntry, len(frs))
	for i := range frs {
		entries[i] = flowEntry{fr: frs[i], at: now}
	}
	return c.lookQ.OfferBatch(entries)
}

var _ stream.Ingest = (*Correlator)(nil)

// QueueDepths reports the current occupancy of the three stage queues —
// the "buffer usage" the paper's operators watch to keep loss at zero.
func (c *Correlator) QueueDepths() (fill, look, write int) {
	return c.fillQ.Len(), c.lookQ.Len(), c.writeQ.Len()
}

// Run executes the pipeline: it launches the FillUp, LookUp, and Write
// workers plus every attached source, then blocks until one of
//
//   - ctx is cancelled (graceful shutdown request),
//   - all attached sources complete (end of finite input),
//   - a source fails (abnormal stream death must not leave the pipeline
//     running blind), or
//   - the sink fails (first WriteBatch error)
//
// and performs a graceful drain: sources stop, every stage queue is closed
// and drained in order, in-flight records reach the sink, and the sink is
// flushed and closed. Run returns source and sink errors joined;
// cancellation itself is a clean shutdown, not an error. A Correlator runs
// at most once.
func (c *Correlator) Run(ctx context.Context) error {
	if !c.started.CompareAndSwap(false, true) {
		return ErrAlreadyRunning
	}

	var wgFill, wgLook, wgWrite sync.WaitGroup
	for i := 0; i < c.cfg.FillUpWorkers; i++ {
		wgFill.Add(1)
		go func() {
			defer wgFill.Done()
			batch := make([]stream.DNSRecord, 0, ingestBatchSize)
			for {
				var ok bool
				batch, ok = c.fillQ.TakeBatch(batch[:0], ingestBatchSize, 0)
				if !ok {
					return
				}
				for i := range batch {
					c.IngestDNS(batch[i])
				}
			}
		}()
	}
	for i := 0; i < c.cfg.LookUpWorkers; i++ {
		wgLook.Add(1)
		go func() {
			defer wgLook.Done()
			batch := make([]flowEntry, 0, ingestBatchSize)
			out := make([]CorrelatedFlow, 0, ingestBatchSize)
			for {
				var ok bool
				batch, ok = c.lookQ.TakeBatch(batch[:0], ingestBatchSize, 0)
				if !ok {
					return
				}
				out = out[:0]
				for i := range batch {
					cf := c.CorrelateFlow(batch[i].fr)
					cf.EnqueuedAt = batch[i].at
					out = append(out, cf)
				}
				c.writeQ.OfferBatch(out)
			}
		}()
	}
	// The drain must finish even after ctx is cancelled: in-flight records
	// belong to the sink, so sink writes run under an uncancellable child.
	writeCtx := context.WithoutCancel(ctx)
	for i := 0; i < c.cfg.WriteWorkers; i++ {
		wgWrite.Add(1)
		go func() {
			defer wgWrite.Done()
			batch := make([]CorrelatedFlow, 0, c.cfg.WriteBatchSize)
			for {
				var ok bool
				batch, ok = c.writeQ.TakeBatch(batch[:0], c.cfg.WriteBatchSize, c.cfg.WriteFlushInterval)
				if !ok {
					return
				}
				now := time.Now()
				for i := range batch {
					if !batch[i].EnqueuedAt.IsZero() {
						c.observeWriteDelay(now.Sub(batch[i].EnqueuedAt))
					}
				}
				if c.sinkErr.Load() != nil {
					continue // sink already failed: drain without writing
				}
				if err := c.sink.WriteBatch(writeCtx, batch); err != nil {
					c.failSink(err)
					continue
				}
				c.stats.written.Add(uint64(len(batch)))
				// Push buffered sink output down to the writer whenever the
				// flush-interval timer fired (partial batch) or no more
				// records are imminent (queue drained) — so
				// WriteFlushInterval bounds end-to-end latency even when a
				// burst ends on an exactly-full batch or WriteBatchSize is
				// 1. Under sustained load batches are full and the queue
				// non-empty, so the buffer amortizes naturally.
				if len(batch) < c.cfg.WriteBatchSize || c.writeQ.Len() == 0 {
					if err := c.sink.Flush(); err != nil {
						c.failSink(err)
					}
				}
			}
		}()
	}

	// Sources run under their own cancellable context so that sink
	// failure, source failure, and source completion can stop intake
	// before ctx itself is done.
	srcCtx, stopSources := context.WithCancel(ctx)
	defer stopSources()
	var wgSrc sync.WaitGroup
	var srcFailedOnce sync.Once
	srcFailed := make(chan struct{})
	srcErrs := make([]error, len(c.sources))
	for i, src := range c.sources {
		wgSrc.Add(1)
		go func(i int, src stream.Source) {
			defer wgSrc.Done()
			if err := src.Run(srcCtx, c); err != nil {
				srcErrs[i] = err
				// Fail fast: a source that dies abnormally must not leave
				// the pipeline running blind until process exit.
				srcFailedOnce.Do(func() { close(srcFailed) })
			}
		}(i, src)
	}
	var sourcesDone chan struct{}
	if len(c.sources) > 0 {
		sourcesDone = make(chan struct{})
		go func() {
			wgSrc.Wait()
			close(sourcesDone)
		}()
	}

	var wgMetrics sync.WaitGroup
	metricsStop := make(chan struct{})
	if c.observe != nil {
		wgMetrics.Add(1)
		go func() {
			defer wgMetrics.Done()
			ticker := time.NewTicker(c.metricsInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					c.observe(c.Stats())
				case <-metricsStop:
					return
				}
			}
		}()
	}

	select {
	case <-ctx.Done():
	case <-c.sinkFailed:
	case <-srcFailed:
	case <-sourcesDone:
	}

	// Graceful drain: stop intake, then close and drain stage by stage.
	stopSources()
	wgSrc.Wait()
	c.fillQ.Close()
	c.lookQ.Close()
	wgFill.Wait()
	wgLook.Wait()
	c.writeQ.Close()
	wgWrite.Wait()
	close(metricsStop)
	wgMetrics.Wait()

	errs := make([]error, 0, len(srcErrs)+3)
	errs = append(errs, srcErrs...)
	if perr := c.sinkErr.Load(); perr != nil {
		errs = append(errs, *perr)
	}
	errs = append(errs, c.sink.Flush(), c.sink.Close())
	if c.observe != nil {
		c.observe(c.Stats())
	}
	return errors.Join(errs...)
}

// failSink records the first sink error and triggers shutdown.
func (c *Correlator) failSink(err error) {
	c.sinkErrOnce.Do(func() {
		c.sinkErr.Store(&err)
		close(c.sinkFailed)
	})
}

// --- synchronous API (deterministic replays, tests, examples) ---

// IngestDNS validates one DNS record and fills it into the hashmaps
// (Algorithm 1). It is the FillUp worker body and may be called directly
// for deterministic offline replays.
func (c *Correlator) IngestDNS(rec stream.DNSRecord) {
	if !rec.IsValid() {
		c.stats.dnsInvalid.Add(1)
		return
	}
	c.stats.dnsRecords.Add(1)
	value := dnsname.Normalize(rec.Query)
	switch rec.RType {
	case dnswire.TypeA, dnswire.TypeAAAA:
		c.ipName.put(rec.Timestamp, rec.TTL, rec.Answer, value)
	case dnswire.TypeCNAME:
		c.nameCname.put(rec.Timestamp, rec.TTL, dnsname.Normalize(rec.Answer), value)
	}
}

// CorrelateFlow resolves one flow (Algorithm 2) and returns the correlated
// record. It is the LookUp worker body and may be called directly.
func (c *Correlator) CorrelateFlow(fr netflow.FlowRecord) CorrelatedFlow {
	cf := CorrelatedFlow{Flow: fr}
	c.stats.flows.Add(1)
	c.stats.flowBytes.Add(fr.Bytes)
	if !fr.IsValid() {
		c.stats.flowInvalid.Add(1)
		return cf
	}
	var name string
	tier := TierNone
	switch c.cfg.Key {
	case LookupDestination:
		name, tier = c.ipName.get(fr.Timestamp, stream.AddrKey(fr.DstIP))
	case LookupBoth:
		name, tier = c.ipName.get(fr.Timestamp, stream.AddrKey(fr.SrcIP))
		if tier == TierNone {
			name, tier = c.ipName.get(fr.Timestamp, stream.AddrKey(fr.DstIP))
		}
	default:
		name, tier = c.ipName.get(fr.Timestamp, stream.AddrKey(fr.SrcIP))
	}
	if tier == TierNone {
		c.stats.misses.Add(1)
		return cf
	}
	cf.Tier = tier
	c.stats.tierHit(tier)

	// Walk the CNAME chain backwards: answer(canonical) -> query(alias),
	// ending at the name nothing else aliases — the original service name.
	first := name
	result := name
	hops := 0
	for hops < c.cfg.CNAMEChainLimit {
		next, t := c.nameCname.get(fr.Timestamp, result)
		if t == TierNone || next == result {
			break
		}
		result = next
		hops++
	}
	if hops > 1 {
		// §3.3 step 7: memoize multi-hop resolutions for later use.
		c.nameCname.memoize(first, result)
		c.stats.memoized.Add(1)
	}
	cf.Name = result
	cf.ChainLen = hops
	c.stats.correlated.Add(1)
	c.stats.correlatedBytes.Add(fr.Bytes)
	c.stats.chainHop(hops)
	return cf
}

// StoreSizes returns current entry counts of the two map families; the
// experiments use this as the state-size series behind the memory figures.
func (c *Correlator) StoreSizes() (ipName, nameCname int) {
	return c.ipName.size(), c.nameCname.size()
}

func (c *Correlator) observeWriteDelay(d time.Duration) {
	for {
		cur := c.stats.maxWriteDelay.Load()
		if int64(d) <= cur {
			return
		}
		if c.stats.maxWriteDelay.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}
