package core

// Contract tests for the v2 Sink interface: concurrent WriteBatch safety,
// error propagation from a failing sink through Run, and Flush/Close
// ordering during the graceful drain.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// syncWriter serializes writes so bytes.Buffer can sit under a sink that
// is hammered concurrently.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// hammer runs workers goroutines, each writing batches records through
// sink, and fails the test on any error.
func hammer(t *testing.T, sink Sink, workers, batches, perBatch int) {
	t.Helper()
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]CorrelatedFlow, perBatch)
			for b := 0; b < batches; b++ {
				for i := range batch {
					batch[i] = CorrelatedFlow{
						Flow: flow(t0, fmt.Sprintf("198.51.%d.%d", w, i%250+1), 10),
						Name: fmt.Sprintf("svc%d.example", w), Tier: TierActive,
					}
				}
				if err := sink.WriteBatch(ctx, batch); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestTSVSinkConcurrentWriteBatch(t *testing.T) {
	var w syncWriter
	sink := NewTSVSink(&w)
	const workers, batches, perBatch = 8, 50, 16
	hammer(t, sink, workers, batches, perBatch)
	lines := strings.Split(strings.TrimSpace(w.String()), "\n")
	if len(lines) != workers*batches*perBatch {
		t.Fatalf("lines = %d, want %d", len(lines), workers*batches*perBatch)
	}
	// Every line must be a complete, untorn row (8 fields).
	for i, line := range lines {
		if got := strings.Count(line, "\t"); got != 7 {
			t.Fatalf("line %d torn: %q", i, line)
		}
	}
}

func TestCountingSinkConcurrentWriteBatch(t *testing.T) {
	sink := NewCountingSink()
	const workers, batches, perBatch = 8, 50, 16
	hammer(t, sink, workers, batches, perBatch)
	var total uint64
	for _, n := range sink.Flows() {
		total += n
	}
	if total != workers*batches*perBatch {
		t.Fatalf("flows = %d, want %d", total, workers*batches*perBatch)
	}
}

func TestMultiSinkConcurrentWriteBatch(t *testing.T) {
	a, b := NewCountingSink(), NewCountingSink()
	var w syncWriter
	sink := MultiSink{a, NewTSVSink(&w), b}
	const workers, batches, perBatch = 4, 30, 8
	hammer(t, sink, workers, batches, perBatch)
	if av, bv := a.Flows(), b.Flows(); len(av) != workers || len(bv) != workers {
		t.Fatalf("fan-out uneven: %d vs %d names", len(av), len(bv))
	}
}

func TestJSONSinkWritesValidLines(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONSink(&buf)
	err := sink.WriteBatch(context.Background(), []CorrelatedFlow{
		{Flow: flow(t0, "198.51.100.7", 1234), Name: "svc.example", Tier: TierActive, ChainLen: 2},
		{Flow: flow(t0, "198.51.100.8", 10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var row map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &row); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if row["name"] != "svc.example" || row["tier"] != "active" || row["bytes"] != float64(1234) {
		t.Fatalf("row = %v", row)
	}
	// The miss row has no name/tier keys (omitempty).
	if strings.Contains(lines[1], "name") || strings.Contains(lines[1], "tier") {
		t.Fatalf("miss row carries empty fields: %q", lines[1])
	}
}

// failingSink errors after failAfter batches and records lifecycle order.
type failingSink struct {
	mu        sync.Mutex
	batches   int
	failAfter int
	calls     []string
}

func (s *failingSink) WriteBatch(_ context.Context, batch []CorrelatedFlow) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	if s.batches > s.failAfter {
		return errors.New("disk full")
	}
	return nil
}

func (s *failingSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls = append(s.calls, "flush")
	return nil
}

func (s *failingSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls = append(s.calls, "close")
	return nil
}

func TestRunPropagatesSinkError(t *testing.T) {
	sink := &failingSink{failAfter: 0} // first batch fails
	cfg := DefaultConfig()
	cfg.WriteFlushInterval = time.Millisecond
	c := New(cfg, WithSink(sink))
	runDone := make(chan error, 1)
	go func() { runDone <- c.Run(context.Background()) }()
	// Feed until Run notices the failure and shuts itself down — no
	// cancellation from our side.
	c.OfferDNS(aRec(t0, "svc.example", "198.51.100.80", 300))
	deadline := time.After(5 * time.Second)
feed:
	for {
		select {
		case err := <-runDone:
			if err == nil || !strings.Contains(err.Error(), "disk full") {
				t.Fatalf("Run = %v, want disk full", err)
			}
			break feed
		case <-deadline:
			t.Fatal("Run did not return after sink failure")
		default:
			c.OfferFlow(flow(t0.Add(time.Second), "198.51.100.80", 10))
			time.Sleep(100 * time.Microsecond)
		}
	}
	// Flush and Close still ran, in order, exactly once each.
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.calls) != 2 || sink.calls[0] != "flush" || sink.calls[1] != "close" {
		t.Fatalf("lifecycle calls = %v, want [flush close]", sink.calls)
	}
}

// orderSink records the interleaving of writes and lifecycle calls.
type orderSink struct {
	mu      sync.Mutex
	calls   []string
	written atomic.Uint64
}

func (s *orderSink) WriteBatch(_ context.Context, batch []CorrelatedFlow) error {
	s.written.Add(uint64(len(batch)))
	s.mu.Lock()
	s.calls = append(s.calls, "write")
	s.mu.Unlock()
	return nil
}

func (s *orderSink) Flush() error {
	s.mu.Lock()
	s.calls = append(s.calls, "flush")
	s.mu.Unlock()
	return nil
}

func (s *orderSink) Close() error {
	s.mu.Lock()
	s.calls = append(s.calls, "close")
	s.mu.Unlock()
	return nil
}

func TestRunFlushCloseOrderingOnDrain(t *testing.T) {
	sink := &orderSink{}
	c := New(DefaultConfig(), WithSink(sink))
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- c.Run(ctx) }()
	c.OfferDNS(aRec(t0, "svc.example", "198.51.100.81", 300))
	for c.Stats().DNSRecords < 1 {
		time.Sleep(time.Millisecond)
	}
	const flows = 100
	for i := 0; i < flows; i++ {
		c.OfferFlow(flow(t0.Add(time.Second), "198.51.100.81", 10))
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("Run = %v", err)
	}
	if got := sink.written.Load(); got != flows {
		t.Fatalf("sink saw %d records, want %d (drain incomplete)", got, flows)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	n := len(sink.calls)
	// Contract: partial batches may interleave write/flush, but the run
	// ends with flush then close, close happens exactly once and last,
	// and every write precedes it.
	if n < 3 || sink.calls[n-2] != "flush" || sink.calls[n-1] != "close" {
		t.Fatalf("calls = %v, want ... flush close", sink.calls)
	}
	for i, call := range sink.calls {
		if call == "close" && i != n-1 {
			t.Fatalf("close before end of drain: %v", sink.calls)
		}
		if call == "write" && i > n-2 {
			t.Fatalf("write after lifecycle end: %v", sink.calls)
		}
	}
}

func TestSinkRegistry(t *testing.T) {
	names := SinkNames()
	for _, want := range []string{"counting", "discard", "json", "multi", "tsv"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry missing %q: %v", want, names)
		}
	}
	var buf bytes.Buffer
	s, err := NewSinkByName("tsv", SinkOptions{W: &buf, SkipMisses: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.(*TSVSink).SkipMisses != true {
		t.Fatal("SkipMisses not applied")
	}
	// Empty name defaults to tsv.
	if s, err := NewSinkByName("", SinkOptions{W: &buf}); err != nil {
		t.Fatal(err)
	} else if _, ok := s.(*TSVSink); !ok {
		t.Fatalf("default sink = %T", s)
	}
	if _, err := NewSinkByName("tsv", SinkOptions{}); err == nil {
		t.Fatal("tsv without writer accepted")
	}
	if _, err := NewSinkByName("bogus", SinkOptions{}); err == nil {
		t.Fatal("unknown sink accepted")
	}
	if _, err := NewSinkByName("multi", SinkOptions{}); err == nil {
		t.Fatal("multi without children accepted")
	}
	m, err := NewSinkByName("multi", SinkOptions{Children: []Sink{NewCountingSink(), DiscardSink{}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.(MultiSink)) != 2 {
		t.Fatalf("multi = %T %v", m, m)
	}
	// Custom registration is visible and constructible.
	RegisterSink("test-null", false, func(SinkOptions) (Sink, error) { return DiscardSink{}, nil })
	if s, err := NewSinkByName("test-null", SinkOptions{}); err != nil || s == nil {
		t.Fatalf("custom sink: %v", err)
	}
}
